// Package tightcps reproduces and scales up "Tighter Dimensioning of
// Heterogeneous Multi-Resource Autonomous CPS with Control Performance
// Guarantees" (DAC 2019): offline switching analysis of control
// applications that borrow a shared time-triggered slot after
// disturbances, exact model checking of slot sharing, and first-fit slot
// dimensioning.
//
// The root package carries the benchmark suite regenerating every paper
// artefact; the implementation lives under internal/ (start at
// internal/core, the library facade) and the executables under cmd/.
// README.md maps the packages; DESIGN.md documents the concurrent engine
// and the wide-state verifier encoding.
package tightcps
