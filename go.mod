module tightcps

go 1.24
