// Command verifyslot model-checks whether a set of case-study applications
// can share one TT slot, printing the verdict, search statistics and (for
// violations) the adversarial disturbance schedule.
//
// Usage:
//
//	verifyslot -apps C1,C5,C4,C3 [-bounded] [-ta] [-lazy] [-workers N]
//
// The verdict is computed with the sharded parallel BFS; when a violation is
// found, the counterexample schedule is reconstructed with a second,
// sequential traced run (tracing needs deterministic parent pointers).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/ta"
	"tightcps/internal/verify"
)

func main() {
	appsFlag := flag.String("apps", "C1,C5,C4,C3", "comma-separated applications")
	bounded := flag.Bool("bounded", false, "use the bounded-disturbance acceleration")
	useTA := flag.Bool("ta", false, "check the faithful Fig. 5–7 timed-automata network instead of the packed verifier")
	lazy := flag.Bool("lazy", false, "verify the lazy-preemption policy")
	workers := flag.Int("workers", 0, "BFS worker pool size (0 = GOMAXPROCS, 1 = sequential; must be ≥ 0)")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "verifyslot: -workers must be ≥ 0 (0 = GOMAXPROCS, 1 = sequential), got %d\n", *workers)
		os.Exit(2)
	}

	names := strings.Split(*appsFlag, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	profs, err := plants.ProfileList(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t0 := time.Now()
	if *useTA {
		res, ok, err := verify.CheckNetwork(profs, ta.CheckOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("TA network: schedulable=%v states=%d depth=%d (%.2fs)\n",
			ok, res.States, res.Depth, time.Since(t0).Seconds())
		return
	}
	cfg := verify.Config{NondetTies: true, Workers: *workers}
	if *bounded {
		cfg.MaxDisturbances = verify.BoundFor(profs)
	}
	if *lazy {
		cfg.Policy = sched.PreemptLazy
	}
	res, err := verify.Slot(profs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !res.Schedulable {
		// Re-run sequentially with tracing for the disturbance schedule.
		cfg.Trace = true
		res, err = verify.Slot(profs, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("slot %v: schedulable=%v\n", names, res.Schedulable)
	fmt.Printf("  states=%d transitions=%d depth=%d bounded=%v (%.2fs)\n",
		res.States, res.Transitions, res.Depth, res.Bounded, time.Since(t0).Seconds())
	if !res.Schedulable {
		fmt.Printf("  violator: %s\n", names[res.Violator])
		fmt.Println("  adversarial disturbance schedule (sample: applications):")
		for k, apps := range res.Counterexample {
			if len(apps) == 0 {
				continue
			}
			var ns []string
			for _, a := range apps {
				ns = append(ns, names[a])
			}
			fmt.Printf("    %3d: %s\n", k, strings.Join(ns, ", "))
		}
	}
}
