// Command verifyslot model-checks whether a set of case-study applications
// can share one TT slot, printing the verdict, search statistics and (for
// violations) the adversarial disturbance schedule.
//
// Usage:
//
//	verifyslot -apps C1,C5,C4,C3 [-bounded] [-ta] [-lazy] [-workers N]
//	           [-maxstates N] [-nodes K | -connect host:port,host:port]
//	           [-mesh=false] [-json] [-tracefile out.json]
//	           [-cpuprofile out.pprof] [-memprofile out.pprof]
//	           [-mutexprofile out.pprof] [-blockprofile out.pprof]
//
// -json replaces the text report with the per-run trace as JSON (verdict,
// states, rate, per-level frontier table, wire stats) — one parseable
// document instead of grepping rate= out of the stats line. -tracefile
// writes the same trace to a file while keeping the text output, so CI
// can assert on both. Both flags record the run with an internal/obs
// trace; level spans come from whichever driver ran (local, relay, mesh).
//
// The verdict is computed with the sharded parallel BFS, or — with -nodes
// or -connect — with the distributed backend of internal/dverify: -nodes K
// runs K in-process loopback workers, -connect drives cmd/verifyd daemons
// over TCP. Distributed runs default to the worker↔worker mesh topology
// (direct node↔node frontier links, pipelined asynchronous levels);
// -mesh=false falls back to the level-synchronous relay through the
// coordinator. In distributed runs -maxstates is a per-node budget, so a
// cluster of K workers admits slots up to K times larger than one node.
// When a violation is found, the counterexample schedule is reconstructed
// with a second, local sequential traced run (tracing needs deterministic
// in-process parent pointers).
//
// The stats line reports rate=N states/s of the verification proper
// (excluding profiling and counterexample reconstruction), so throughput
// regressions — local or distributed — show up without the bench harness.
//
// -cpuprofile and -memprofile write pprof profiles of the verification —
// the expansion core is the product's hot path, so regressions are
// diagnosed here rather than by instrumenting the library. -mutexprofile
// and -blockprofile capture where worker lanes wait instead of where they
// burn — the profiles that motivated replacing the striped-mutex visited
// sets with lock-free CAS tables (DESIGN.md §10).
//
// -workers 0 (the default) runs a pool of GOMAXPROCS lanes whose active
// count a contention-aware tuner adapts level to level; an explicit N
// pins the pool size, and 1 forces the sequential search.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tightcps/internal/admit"
	"tightcps/internal/dverify"
	"tightcps/internal/obs"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/ta"
	"tightcps/internal/verify"
)

// main parses flags and delegates to run so deferred cleanups — profile
// writers, cluster teardown — fire on error exits too (os.Exit skips
// defers, which would truncate a CPU profile exactly when diagnosing a
// failing run).
func main() {
	os.Exit(run())
}

// writeLookupProfile dumps one of the runtime's named profiles (mutex,
// block) at exit, debug=0 so pprof reads it directly.
func writeLookupProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verifyslot: -%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "verifyslot: -%sprofile: %v\n", name, err)
	}
}

func run() int {
	appsFlag := flag.String("apps", "C1,C5,C4,C3", "comma-separated applications")
	bounded := flag.Bool("bounded", false, "use the bounded-disturbance acceleration")
	useTA := flag.Bool("ta", false, "check the faithful Fig. 5–7 timed-automata network instead of the packed verifier")
	lazy := flag.Bool("lazy", false, "verify the lazy-preemption policy")
	workers := flag.Int("workers", 0, "BFS worker pool size (0 = GOMAXPROCS lanes with contention-aware autotuning, 1 = sequential; must be ≥ 0)")
	maxStates := flag.Int("maxstates", 0, "visited-state budget, per node when distributed (0 = 200M)")
	nodes := flag.Int("nodes", 0, "distribute over K in-process loopback workers (0 = local verification)")
	connect := flag.String("connect", "", "distribute over verifyd workers at these comma-separated addresses")
	connectRetries := flag.Int("connect-retries", 1, "startup dial attempts per -connect worker address (1 = no retry)")
	connectBackoff := flag.Duration("connect-backoff", 500*time.Millisecond, "base backoff between -connect dial attempts (doubled per attempt, capped at 10s)")
	ft := flag.Bool("ft", false, "fault-tolerant distributed run: survive worker deaths by shard reassignment and rollback (see -ftdir)")
	ftdir := flag.String("ftdir", "", "checkpoint directory for -ft runs, visible to every worker (empty = recovery restarts the search)")
	mesh := flag.Bool("mesh", true, "distributed topology: worker↔worker mesh with pipelined levels (false = level-synchronous coordinator relay)")
	server := flag.String("server", "", "submit to an admission service at this base URL (e.g. http://host:9833) instead of verifying locally")
	serverRetries := flag.Int("server-retries", 0, "retry -server submits refused with 503 (drain, full queue) this many times, honoring Retry-After")
	jsonOut := flag.Bool("json", false, "emit the run report as JSON (the per-run trace: verdict, per-level table, wire stats) instead of text")
	traceFile := flag.String("tracefile", "", "write the per-run JSON trace report to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the verification to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the verification to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile of the verification to this file")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile of the verification to this file")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "verifyslot: -workers must be ≥ 0 (0 = autotuned GOMAXPROCS pool, 1 = sequential), got %d\n", *workers)
		return 2
	}
	if *useTA && (*nodes > 0 || *connect != "" || *maxStates != 0) {
		// The TA network checker is local-only and unbudgeted; ignoring the
		// flags silently would fake a distributed (or bounded) run.
		fmt.Fprintln(os.Stderr, "verifyslot: -ta is incompatible with -nodes/-connect/-maxstates (the TA checker runs locally)")
		return 2
	}
	if (*jsonOut || *traceFile != "") && (*useTA || *server != "") {
		// Traces are recorded by the packed engine's drivers; the TA checker
		// and the remote service don't run them in this process.
		fmt.Fprintln(os.Stderr, "verifyslot: -json/-tracefile report an engine run in this process; incompatible with -ta and -server")
		return 2
	}

	names := strings.Split(*appsFlag, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	if *server != "" {
		if *useTA || *nodes > 0 || *connect != "" || *cpuprofile != "" || *memprofile != "" ||
			*mutexprofile != "" || *blockprofile != "" {
			fmt.Fprintln(os.Stderr, "verifyslot: -server submits remotely; -ta/-nodes/-connect and the profiling flags are local-run flags")
			return 2
		}
		return runServer(*server, *serverRetries, names, verify.Spec{
			Bounded:   *bounded,
			MaxStates: *maxStates,
		}, *lazy)
	}

	profs, err := plants.ProfileList(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verifyslot: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "verifyslot: -cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyslot: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "verifyslot: -memprofile:", err)
			}
		}()
	}
	// Contention profiles answer the question the CPU profile cannot: where
	// lanes wait rather than where they burn. Sampling is enabled only when
	// asked — both profilers tax the hot path.
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			defer runtime.SetMutexProfileFraction(0)
			writeLookupProfile("mutex", *mutexprofile)
		}()
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1000) // one sample per μs blocked
		defer func() {
			defer runtime.SetBlockProfileRate(0)
			writeLookupProfile("block", *blockprofile)
		}()
	}

	t0 := time.Now()
	if *useTA {
		res, ok, err := verify.CheckNetwork(profs, ta.CheckOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("TA network: schedulable=%v states=%d depth=%d (%.2fs)\n",
			ok, res.States, res.Depth, time.Since(t0).Seconds())
		return 0
	}
	cfg := verify.Config{NondetTies: true, Workers: *workers, MaxStates: *maxStates}
	if *bounded {
		cfg.MaxDisturbances = verify.BoundFor(profs)
	}
	if *lazy {
		cfg.Policy = sched.PreemptLazy
	}
	if !*mesh {
		cfg.DistTopology = verify.TopologyRelay
	}
	var dialLogf func(format string, args ...any)
	if !*jsonOut {
		dialLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "verifyslot: "+format+"\n", args...)
		}
	}
	ts, clusterDesc, err := dverify.ClusterRetry(*nodes, *connect, *connectRetries, *connectBackoff, dialLogf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyslot:", err)
		return 2
	}
	if *ft && ts == nil {
		fmt.Fprintln(os.Stderr, "verifyslot: -ft is a distributed-run flag; it needs -nodes or -connect")
		return 2
	}
	if ts != nil {
		defer dverify.Close(ts)
		cfg.Distributed = dverify.Runner(ts)
		cfg.FaultTolerance = *ft
		if *ft {
			cfg.CheckpointDir = *ftdir
		}
		if !*jsonOut {
			fmt.Println(clusterDesc)
		}
	}
	var rtr *obs.Trace
	if *jsonOut || *traceFile != "" {
		rtr = obs.NewTrace("")
		cfg.RunID = rtr.RunID
		cfg.RunTrace = rtr
	}
	tv := time.Now()
	res, err := verify.Slot(profs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	verifySecs := time.Since(tv).Seconds()
	rate := 0 // of the verification proper; the traced re-run replaces res
	if verifySecs > 0 {
		rate = int(float64(res.States) / verifySecs)
	}
	wire := res.Wire // the traced re-run below is local and would clear it
	if rtr != nil && *traceFile != "" {
		if err := rtr.WriteFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "verifyslot: -tracefile:", err)
			return 1
		}
	}
	if *jsonOut {
		// The machine-readable report IS the trace; the text path below
		// (and its counterexample reconstruction) is the human surface.
		b, err := rtr.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "verifyslot:", err)
			return 1
		}
		os.Stdout.Write(b)
		return 0
	}
	if !res.Schedulable {
		// Re-run locally, sequentially, with tracing for the disturbance
		// schedule. Under a distributed run this may exceed the single-node
		// budget; the verdict above stands either way.
		tcfg := cfg
		tcfg.Trace = true
		tcfg.Distributed = nil
		if traced, err := verify.Slot(profs, tcfg); err != nil {
			fmt.Fprintf(os.Stderr, "verifyslot: counterexample reconstruction failed: %v\n", err)
		} else {
			res = traced
		}
	}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("slot %v: schedulable=%v\n", names, res.Schedulable)
	fmt.Printf("  states=%d transitions=%d depth=%d bounded=%v rate=%d states/s (%.2fs) [gomaxprocs=%d numcpu=%d workers=%d]\n",
		res.States, res.Transitions, res.Depth, res.Bounded, rate, time.Since(t0).Seconds(),
		runtime.GOMAXPROCS(0), runtime.NumCPU(), effWorkers)
	if wire.RawBytes > 0 {
		fmt.Printf("  %s\n", wire.Report())
	}
	if !res.Schedulable {
		fmt.Printf("  violator: %s\n", names[res.Violator])
		if res.Counterexample != nil {
			fmt.Println("  adversarial disturbance schedule (sample: applications):")
			for k, apps := range res.Counterexample {
				if len(apps) == 0 {
					continue
				}
				var ns []string
				for _, a := range apps {
					ns = append(ns, names[a])
				}
				fmt.Printf("    %3d: %s\n", k, strings.Join(ns, ", "))
			}
		}
	}
	return 0
}

// runServer is the -server client mode: the admission question goes to a
// running admission service (verifyd -http) — where fleet-wide coalescing
// and the persistent verdict cache live — and the verdict is printed in
// the same shape as a local run so scripts and CI greps work unchanged.
func runServer(base string, retries int, names []string, spec verify.Spec, lazy bool) int {
	if lazy {
		spec.Policy = "lazy"
	}
	cli := &admit.Client{BaseURL: base, Retry503: retries}
	resp, err := cli.Admit(&admit.AdmitRequest{Apps: names, Config: spec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyslot:", err)
		return 1
	}
	v := resp.Verdict
	fmt.Printf("slot %v: schedulable=%v\n", names, v.Schedulable)
	served := "verified"
	switch {
	case resp.Warm:
		served = "warm cache hit (admission bit only)"
	case resp.Cached:
		served = "cache hit"
	case resp.Coalesced:
		served = "coalesced onto a concurrent submit"
	}
	fmt.Printf("  states=%d transitions=%d depth=%d bounded=%v (%s, %.1fms via %s)\n",
		v.States, v.Transitions, v.Depth, v.Bounded, served, resp.ElapsedMs, base)
	if !v.Schedulable && v.ViolatorName != "" {
		fmt.Printf("  violator: %s\n", v.ViolatorName)
	}
	return 0
}
