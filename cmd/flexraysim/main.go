// Command flexraysim demonstrates the FlexRay substrate: a bus with static
// and dynamic segments, messages migrating between them through the
// reconfiguration middleware, and the dynamic-segment worst-case response
// time analysis that licenses the one-sample-delay ET controller model.
package main

import (
	"flag"
	"fmt"
	"os"

	"tightcps/internal/flexray"
)

func main() {
	cycles := flag.Int("cycles", 6, "communication cycles to simulate")
	flag.Parse()

	cfg := flexray.Config{
		StaticSlots: 4, SlotLen: 1.0,
		MiniSlots: 30, MiniSlotLen: 0.1,
		NITLen: 0.5, MaxFrameMinis: 10,
	}
	fmt.Printf("FlexRay cycle: %d static slots × %.1f ms + %d mini-slots × %.1f ms + NIT %.1f ms = %.1f ms\n",
		cfg.StaticSlots, cfg.SlotLen, cfg.MiniSlots, cfg.MiniSlotLen, cfg.NITLen, cfg.CycleLen())

	bus, err := flexray.NewBus(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	frames := []flexray.Frame{
		{ID: 1, Name: "steer", Minis: 4},
		{ID: 2, Name: "brake", Minis: 4},
		{ID: 3, Name: "cruise", Minis: 6},
	}
	for _, f := range frames {
		if err := bus.AddFrame(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wcrt, err := flexray.WCRTCycles(cfg, f, frames)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  frame %d (%s): dynamic-segment WCRT = %d cycle(s)\n", f.ID, f.Name, wcrt)
	}

	mw, err := flexray.NewMiddleware(bus, []int{0, 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\ncycle-by-cycle log (frame 1 acquires a TT slot in cycle 2, releases in cycle 4):")
	for c := 0; c < *cycles; c++ {
		if c == 2 {
			slot, err := mw.AcquireTT(1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  [middleware] frame 1 → static slot %d\n", slot)
		}
		if c == 4 {
			if err := mw.ReleaseTT(1); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("  [middleware] frame 1 → dynamic segment")
		}
		for _, f := range frames {
			if err := bus.Queue(f.ID); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		for _, tx := range bus.RunCycle() {
			seg := "dyn"
			if tx.Static {
				seg = "TT "
			}
			fmt.Printf("  cycle %d: frame %d [%s] %.1f–%.1f ms\n", tx.Cycle, tx.FrameID, seg, tx.Start, tx.End)
		}
	}
}
