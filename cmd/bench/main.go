// Command bench regenerates BENCH_verify.json, the repository's performance
// trajectory for the verification hot path. It measures, via
// testing.Benchmark, the workloads the dimensioning engine's capacity is
// quoted in:
//
//   - VerifyS1: the paper's hardest slot (C1+C5+C4+C3, 1.44M states) on the
//     sequential narrow-encoding search — the canonical states/second and
//     allocation number (the same workload as BenchmarkVerifyS1 in
//     bench_test.go);
//   - VerifyWideFleet9: a nine-instance fleet on the multi-word encoding
//     under the symmetry quotient;
//   - VerifyS1Loopback2 / VerifyS1Loopback4: S1 distributed over two and
//     four in-process loopback workers on the mesh topology (direct
//     worker↔worker exchange, pipelined levels), each also measured with a
//     4-lane per-node expansion pool (the ...2x4/...4x4 rows — the
//     workers_per_node dimension of the scaling study);
//   - VerifyS1Loopback2Relay: the same two-worker run on the PR-4
//     level-synchronous coordinator relay, which also reports the
//     frontier-exchange wire volume of the compressed codec (the mesh's
//     loopback links pass decoded states and ship no encoded bytes).
//
// The distributed_scaling section records states/second per node count and
// the speedup against both the single-node search and the recorded PR-4
// two-node relay baseline, so CI and later PRs can assert that adding
// nodes buys throughput (the PR-5 acceptance gate: 2-node mesh ≥ 1.5× the
// PR-4 loopback baseline). The pre-PR-4 VerifyS1 baseline stays for the
// allocation trajectory (≥ 5× fewer B/op and allocs/op).
//
// Usage:
//
//	bench [-o BENCH_verify.json]
//	bench -trace run.json        # summarize a -tracefile run report
//
// -trace consumes a per-run JSON trace written by verifyslot -tracefile
// (internal/obs), printing its throughput, level and wire numbers in the
// same shape as the benchmark rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tightcps/internal/dverify"
	"tightcps/internal/obs"
	"tightcps/internal/plants"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// benchResult is one workload's measurement. Gomaxprocs/NumCPU pin the
// builder's core budget next to every number, so 1-CPU CI figures are
// never mistaken for multi-core results. They are omitempty because the
// recorded baselines predate the pinning — a literal 0 there would read
// as a (meaningless) measurement, not as "unknown".
type benchResult struct {
	Name         string  `json:"name"`
	States       int     `json:"states"`
	NsPerOp      int64   `json:"ns_per_op"`
	StatesPerSec float64 `json:"states_per_sec"`
	BPerOp       int64   `json:"b_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Gomaxprocs   int     `json:"gomaxprocs,omitempty"`
	NumCPU       int     `json:"num_cpu,omitempty"`
}

// wireResult is the 2-node frontier-exchange volume of one S1 run.
type wireResult struct {
	RoutedStates   int     `json:"routed_states"`
	FilteredStates int     `json:"filtered_states"`
	RawBytes       int     `json:"raw_bytes"`
	WireBytes      int     `json:"wire_bytes"`
	SavedFraction  float64 `json:"saved_fraction"`
}

// scalingEntry is one cluster-shape measurement of the
// distributed_scaling study: S1 throughput at a node count and per-node
// worker-pool size, with speedups against the single-node search and the
// recorded PR-4 two-node relay baseline. CoresTotal = nodes ×
// workers_per_node distinguishes node-scaling from core-scaling in the
// trajectory.
type scalingEntry struct {
	Nodes           int     `json:"nodes"`
	Topology        string  `json:"topology"` // "local", "mesh" or "relay"
	WorkersPerNode  int     `json:"workers_per_node"`
	CoresTotal      int     `json:"cores_total"`
	StatesPerSec    float64 `json:"states_per_sec"`
	SpeedupVsSingle float64 `json:"speedup_vs_single_node"`
	SpeedupVsPR4    float64 `json:"speedup_vs_pr4_loopback2"`
}

// laneScalingEntry is one workers-per-node measurement of the lane-pool
// study, carrying the contention counters (visited-set CAS retries,
// work-queue steals) accumulated by the run alongside throughput and
// allocation. Gomaxprocs/NumCPU qualify every row: on the 1-CPU CI
// containers the multi-lane rows measure coordination overhead, not
// speedup — Note says so explicitly, so nobody quotes them as scaling.
type laneScalingEntry struct {
	Nodes          int     `json:"nodes"`
	WorkersPerNode int     `json:"workers_per_node"`
	Gomaxprocs     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	StatesPerSec   float64 `json:"states_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Steals         uint64  `json:"steals"`
	CASRetries     uint64  `json:"cas_retries"`
	Note           string  `json:"note,omitempty"`
}

// report is the BENCH_verify.json schema.
type report struct {
	Generated string `json:"generated"`
	// Baseline is the pre-PR-4 measurement of VerifyS1 (the allocating
	// expansion core), recorded once so later runs always compare against
	// the same anchor. The pre-PR wire volume is RawBytes by construction
	// (the fixed-width format shipped every routed state).
	Baseline benchResult   `json:"baseline_verify_s1_pr3"`
	Current  []benchResult `json:"current"`
	// Wire is the two-node relay run's exchange volume — the codec path;
	// mesh loopback links pass decoded states, so their shipped bytes
	// equal the raw volume by construction.
	Wire wireResult `json:"wire_2node_s1_relay"`
	// Scaling is the distributed throughput study: states/second per node
	// count, against BaselineLB2 — the PR-4 two-node loopback relay
	// measurement, recorded once.
	BaselineLB2 float64        `json:"baseline_loopback2_pr4_states_per_sec"`
	Scaling     []scalingEntry `json:"distributed_scaling"`
	// LaneScaling is the workers-per-node study with contention counters —
	// the PR-10 lock-free set / work-stealing trajectory.
	LaneScaling []laneScalingEntry `json:"lane_scaling"`
	BRatio      float64        `json:"b_per_op_improvement"`
	AllocsRat   float64        `json:"allocs_per_op_improvement"`
}

// baselineS1 is the pre-PR-4 VerifyS1 measurement (PR-3 tree, same host
// class as CI: go test -bench VerifyFullWorkers1 -benchmem).
var baselineS1 = benchResult{
	Name:         "VerifyS1",
	States:       1440712,
	NsPerOp:      390238054,
	StatesPerSec: 1440712 / 0.390238054,
	BPerOp:       202052528,
	AllocsPerOp:  4888249,
}

// baselineLoopback2PR4 is the PR-4 two-node loopback measurement (the
// coordinator-relay exchange, 625ms for S1) — the anchor the mesh's
// scaling numbers are gated against.
const baselineLoopback2PR4 = 1440712 / 0.625211794

// laneAllocCeiling is the absolute allocs/op bound for the multi-lane
// loopback rows. Post-crew runs sit around a few hundred allocations per
// op (link buffers and level bookkeeping); the ceiling leaves headroom
// for noise while staying far below the ~12k/op of the spawn-per-chunk
// leak it guards against.
const laneAllocCeiling = 2000

// fleetProfiles builds n identical synthetic profiles (distinct names) with
// constant dwell windows — the fleet workload of the wide encoding,
// mirroring bench_test.go.
func fleetProfiles(n, twStar, dm, dp, r int) []*switching.Profile {
	out := make([]*switching.Profile, n)
	for i := range out {
		k := twStar + 1
		minT, plusT := make([]int, k), make([]int, k)
		for j := range minT {
			minT[j], plusT[j] = dm, dp
		}
		out[i] = &switching.Profile{
			Name: fmt.Sprintf("F%d", i), TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
			R: r, Granularity: 1, JStar: twStar + dp,
			JAtMin: make([]int, k), JBest: make([]int, k),
		}
	}
	return out
}

// summarizeTrace prints the bench-relevant numbers of one -tracefile run
// report (states, rate, level count, wire volume) in the same shape as a
// benchmark row, so a distributed run captured in production slots into
// the trajectory next to the loopback measurements.
func summarizeTrace(path string) {
	tr, err := obs.ReadTraceFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	backend := tr.Backend
	if backend == "" {
		backend = "local"
	}
	fmt.Printf("trace %s (run %s): slot %v %s", path, tr.RunID, tr.Slot, backend)
	if tr.Nodes > 0 {
		fmt.Printf(" nodes=%d", tr.Nodes)
	}
	fmt.Printf("\n  %-22s %8.0f states/s  states=%d depth=%d levels=%d (sum %d)\n",
		"Trace"+backend, tr.StatesPerSec, tr.States, tr.Depth, len(tr.Levels), tr.LevelStates())
	if tr.Wire != nil && tr.Wire.RawBytes > 0 {
		fmt.Printf("  wire: routed=%d filtered=%d raw=%dB shipped=%dB (%.0f%% saved)\n",
			tr.Wire.RoutedStates, tr.Wire.FilteredStates, tr.Wire.RawBytes, tr.Wire.WireBytes,
			100*(1-float64(tr.Wire.WireBytes)/float64(tr.Wire.RawBytes)))
	}
}

// measure runs one verification workload under testing.Benchmark and
// packages the result.
func measure(name string, states *int, run func() (verify.Result, error)) benchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := run()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Schedulable {
				b.Fatalf("%s: workload must verify", name)
			}
			*states = res.States
		}
	})
	ns := r.NsPerOp()
	return benchResult{
		Name:         name,
		States:       *states,
		NsPerOp:      ns,
		StatesPerSec: float64(*states) / (float64(ns) / 1e9),
		BPerOp:       r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
	}
}

func main() {
	out := flag.String("o", "BENCH_verify.json", "path to write the benchmark report to")
	traceIn := flag.String("trace", "", "summarize a verifyslot/verifyd -tracefile run report at this path and exit (no benchmarks)")
	flag.Parse()

	if *traceIn != "" {
		summarizeTrace(*traceIn)
		return
	}

	s1, err := plants.ProfileList("C1", "C5", "C4", "C3")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fleet9 := fleetProfiles(9, 8, 1, 2, 9)

	var rep report
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Baseline = baselineS1

	var states int
	fmt.Fprintln(os.Stderr, "bench: VerifyS1 (narrow, sequential)...")
	rep.Current = append(rep.Current, measure("VerifyS1", &states, func() (verify.Result, error) {
		return verify.Slot(s1, verify.Config{NondetTies: true, Workers: 1})
	}))
	fmt.Fprintln(os.Stderr, "bench: VerifyWideFleet9 (wide, symmetry quotient)...")
	rep.Current = append(rep.Current, measure("VerifyWideFleet9", &states, func() (verify.Result, error) {
		return verify.Slot(fleet9, verify.Config{NondetTies: true, SymmetryReduction: true, Workers: 1})
	}))

	single := rep.Current[0].StatesPerSec
	rep.BaselineLB2 = baselineLoopback2PR4
	rep.Scaling = append(rep.Scaling, scalingEntry{
		Nodes: 1, Topology: "local", WorkersPerNode: 1, CoresTotal: 1, StatesPerSec: single,
		SpeedupVsSingle: 1, SpeedupVsPR4: single / baselineLoopback2PR4,
	})

	// Distributed S1: the mesh topology at two and four loopback workers,
	// each at per-node expansion pools of 1 and 4 lanes (the node-scaling ×
	// core-scaling study), plus the two-worker relay for the wire-volume
	// numbers of the compressed codec path.
	var mesh2w1, mesh2w4, mesh4w1 benchResult
	meshRun := func(name string, n, workers int) benchResult {
		fmt.Fprintf(os.Stderr, "bench: %s (%d-node mesh, %d workers/node)...\n", name, n, workers)
		c0 := verify.Contention()
		ts := dverify.Loopback(n)
		defer dverify.Close(ts)
		runner := dverify.Runner(ts)
		run := func() (verify.Result, error) {
			return verify.Slot(s1, verify.Config{NondetTies: true, Workers: workers, Distributed: runner})
		}
		// One untimed run first: the standing cluster reuses its workers
		// across Inits, so the quoted numbers (and the alloc-trend gate) are
		// the steady state of a warm fleet, not first-run construction.
		if _, err := run(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		r := measure(name, &states, run)
		// Contention counters flush into the engine telemetry when a worker
		// session tears down, which a follow-up Init does synchronously: one
		// more untimed run closes the books on every measured session (its
		// own contention stays unflushed and outside the delta).
		if _, err := run(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		c1 := verify.Contention()
		rep.Current = append(rep.Current, r)
		rep.Scaling = append(rep.Scaling, scalingEntry{
			Nodes: n, Topology: "mesh", WorkersPerNode: workers, CoresTotal: n * workers,
			StatesPerSec:    r.StatesPerSec,
			SpeedupVsSingle: r.StatesPerSec / single,
			SpeedupVsPR4:    r.StatesPerSec / baselineLoopback2PR4,
		})
		note := ""
		if runtime.GOMAXPROCS(0) < n*workers {
			note = "host has fewer cores than lanes: row measures coordination overhead, not speedup"
		}
		rep.LaneScaling = append(rep.LaneScaling, laneScalingEntry{
			Nodes: n, WorkersPerNode: workers,
			Gomaxprocs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			StatesPerSec: r.StatesPerSec, AllocsPerOp: r.AllocsPerOp,
			Steals:     c1.Steals - c0.Steals,
			CASRetries: c1.CASRetries - c0.CASRetries,
			Note:       note,
		})
		return r
	}
	mesh2w1 = meshRun("VerifyS1Loopback2", 2, 1)
	mesh2w4 = meshRun("VerifyS1Loopback2x4", 2, 4)
	mesh4w1 = meshRun("VerifyS1Loopback4", 4, 1)
	mesh4w4 := meshRun("VerifyS1Loopback4x4", 4, 4)

	fmt.Fprintln(os.Stderr, "bench: VerifyS1Loopback2Relay (2-node relay)...")
	ts := dverify.Loopback(2)
	defer dverify.Close(ts)
	runner := dverify.Runner(ts)
	var wire verify.WireStats
	relayRun := func() (verify.Result, error) {
		res, err := verify.Slot(s1, verify.Config{
			NondetTies: true, Workers: 1, Distributed: runner, DistTopology: verify.TopologyRelay})
		wire = res.Wire
		return res, err
	}
	if _, err := relayRun(); err != nil { // warm fleet, as for the mesh rows
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	relay := measure("VerifyS1Loopback2Relay", &states, relayRun)
	rep.Current = append(rep.Current, relay)
	rep.Scaling = append(rep.Scaling, scalingEntry{
		Nodes: 2, Topology: "relay", WorkersPerNode: 1, CoresTotal: 2,
		StatesPerSec:    relay.StatesPerSec,
		SpeedupVsSingle: relay.StatesPerSec / single,
		SpeedupVsPR4:    relay.StatesPerSec / baselineLoopback2PR4,
	})

	// Alloc-trend gate: per-op allocations of the loopback mesh must stay
	// roughly flat in the node count (each node recycles its inbox batches
	// and frontier buckets; only per-link structures scale). Before the
	// recycling fix the 4-node run allocated ~2× the 2-node run per op.
	if ratio := float64(mesh4w1.AllocsPerOp) / float64(mesh2w1.AllocsPerOp); ratio > 1.5 {
		fmt.Fprintf(os.Stderr, "bench: FAIL: 4-node mesh allocs/op is %.2f× the 2-node run (%d vs %d), want ≤ 1.5× — per-node allocation is growing with cluster size\n",
			ratio, mesh4w1.AllocsPerOp, mesh2w1.AllocsPerOp)
		os.Exit(1)
	}
	// Lane-pool alloc gates: multi-lane runs must stay within 10× the
	// one-lane figure (before the persistent crews the 2x4 run allocated
	// ~150× — a goroutine spawn plus escaped atomics per chunk) and under an
	// absolute per-op ceiling, so the leak cannot creep back gradually.
	for _, g := range []struct {
		multi, one benchResult
	}{{mesh2w4, mesh2w1}, {mesh4w4, mesh4w1}} {
		if g.multi.AllocsPerOp > 10*g.one.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s allocs/op is %.1f× the 1-lane run (%d vs %d), want ≤ 10× — the lane pool is allocating per chunk again\n",
				g.multi.Name, float64(g.multi.AllocsPerOp)/float64(g.one.AllocsPerOp), g.multi.AllocsPerOp, g.one.AllocsPerOp)
			os.Exit(1)
		}
		if g.multi.AllocsPerOp > laneAllocCeiling {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s allocates %d/op, want ≤ %d (absolute ceiling)\n",
				g.multi.Name, g.multi.AllocsPerOp, laneAllocCeiling)
			os.Exit(1)
		}
	}
	// Throughput gate, meaningful only where the lanes have cores to run
	// on: with 4+ cores the 4-lane 2-node run must not be slower than the
	// 1-lane one. On the 1-CPU CI hosts this is skipped (and the rows carry
	// the overhead note instead).
	if runtime.GOMAXPROCS(0) >= 4 && mesh2w4.StatesPerSec < mesh2w1.StatesPerSec {
		fmt.Fprintf(os.Stderr, "bench: FAIL: on a %d-proc host the 4-lane 2-node mesh (%.0f states/s) is slower than 1-lane (%.0f states/s)\n",
			runtime.GOMAXPROCS(0), mesh2w4.StatesPerSec, mesh2w1.StatesPerSec)
		os.Exit(1)
	}
	rep.Wire = wireResult{
		RoutedStates:   wire.RoutedStates,
		FilteredStates: wire.FilteredStates,
		RawBytes:       wire.RawBytes,
		WireBytes:      wire.WireBytes,
		SavedFraction:  1 - float64(wire.WireBytes)/float64(wire.RawBytes),
	}
	cur := rep.Current[0]
	rep.BRatio = float64(rep.Baseline.BPerOp) / float64(cur.BPerOp)
	rep.AllocsRat = float64(rep.Baseline.AllocsPerOp) / float64(cur.AllocsPerOp)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, c := range rep.Current {
		fmt.Printf("  %-22s %8.0f states/s  %12d B/op  %9d allocs/op\n",
			c.Name, c.StatesPerSec, c.BPerOp, c.AllocsPerOp)
	}
	fmt.Printf("  vs baseline: B/op ×%.1f, allocs/op ×%.0f; 2-node relay wire %.0f%% below raw\n",
		rep.BRatio, rep.AllocsRat, 100*rep.Wire.SavedFraction)
	for _, s := range rep.Scaling {
		fmt.Printf("  scaling: %d-node %-5s ×%d workers (%2d cores) %8.0f states/s  ×%.2f vs single  ×%.2f vs PR-4 loopback2\n",
			s.Nodes, s.Topology, s.WorkersPerNode, s.CoresTotal, s.StatesPerSec, s.SpeedupVsSingle, s.SpeedupVsPR4)
	}
}
