// Command verifyd serves one worker node of the distributed verification
// backend (internal/dverify). A coordinator — cmd/verifyslot or
// cmd/experiments with -connect — dials a set of verifyd instances, ships
// each a shard range of the packed state space, and drives the
// level-synchronous BFS over them.
//
// Usage:
//
//	verifyd -listen 127.0.0.1:9471 [-quiet]
//
// The daemon serves one coordinator session at a time (a worker node
// belongs to one cluster at a time) and keeps accepting new sessions until
// killed, so repeated CLI invocations reuse the same worker fleet.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"tightcps/internal/dverify"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9471", "address to serve the worker protocol on")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
	logger := log.New(os.Stderr, "verifyd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	logger.Printf("worker listening on %s", l.Addr())
	if err := dverify.Serve(l, logf); err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
}
