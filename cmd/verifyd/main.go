// Command verifyd is the verification daemon, serving either or both of
// two planes:
//
// Worker plane (-listen, the default): one worker node of the distributed
// verification backend (internal/dverify). A coordinator — cmd/verifyslot
// or cmd/experiments with -connect, or a front-door verifyd with -connect
// — dials a set of worker verifyds, ships each a shard range of the
// packed state space, and drives the search over them. In the default
// mesh topology the daemons also dial each other at job setup (one data
// link per ordered node pair), so frontier batches flow worker↔worker and
// never transit the coordinator.
//
// Admission plane (-http): the HTTP/JSON admission service front door
// (internal/admit). POST /v1/admit submits a profile set + slot config
// and returns the verdict with its search statistics; GET /v1/jobs/{id}
// polls an async submit; /healthz and /statsz expose liveness and
// counters. The front door verifies over loopback lanes in this process
// (-nodes), or over a worker fleet (-connect), with service-level
// coalescing of identical submits, a bounded request queue, and an
// optional persistent verdict cache (-cachedir) checkpointed
// incrementally by fingerprint-prefix shard.
//
// Usage:
//
//	verifyd -listen 127.0.0.1:9471 [-quiet]                 # worker only
//	verifyd -http 127.0.0.1:9833 -listen "" [-nodes 4]      # front door only
//	verifyd -http :9833 -connect host1:9471,host2:9471      # front door over a fleet
//
// Resilience: -connect dials with a bounded exponential-backoff retry
// (-connect-retries, -connect-backoff) so the fleet may boot in any
// order. -ft makes the distributed runs fault-tolerant — worker deaths
// are survived by reassigning the dead node's hash shards and rolling
// back to the last per-level checkpoint under -ftdir, with the verdict
// and all exhaustive counts unchanged. -retries, -breaker and
// -localfallback govern the admission plane's backend retry policy,
// circuit breaker, and local degraded mode (all off by default).
//
// Both planes drain on SIGINT/SIGTERM: new sessions and new submits are
// refused (HTTP submits get 503 + Retry-After) while in-flight searches
// and verdicts run to completion and the verdict cache checkpoints; a
// second signal forces an immediate exit.
//
// Telemetry: the admission plane serves Prometheus text exposition at
// GET /metricsz (engine counters, per-link wire bytes, queue depth,
// per-config admission latency histograms). A worker-only daemon's plane
// is raw TCP, so -metrics starts a separate HTTP admin listener serving
// the same /metricsz. -pprof mounts net/http/pprof (and /debug/vars via
// expvar) on whichever HTTP surfaces are up.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"tightcps/internal/admit"
	"tightcps/internal/dverify"
	"tightcps/internal/obs"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// mountDebug adds the pprof handlers and the expvar bridge to an admin mux.
func mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
	obs.Default.PublishExpvar("tightcps")
	mux.Handle("GET /debug/vars", expvar.Handler())
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9471", "worker-plane address (empty disables the worker plane)")
	httpAddr := flag.String("http", "", "admission-plane HTTP address (empty disables the admission plane)")
	nodes := flag.Int("nodes", 0, "admission plane: verify over N loopback lane workers in this process (0 = local engine)")
	connect := flag.String("connect", "", "admission plane: verify over this comma-separated worker fleet")
	connectRetries := flag.Int("connect-retries", 5, "startup dial attempts per -connect worker address (1 = no retry)")
	connectBackoff := flag.Duration("connect-backoff", 500*time.Millisecond, "base backoff between -connect dial attempts (doubled per attempt, capped at 10s)")
	ft := flag.Bool("ft", false, "fault-tolerant distributed runs: survive worker deaths by shard reassignment and rollback (see -ftdir)")
	ftdir := flag.String("ftdir", "", "checkpoint directory for -ft runs, visible to every worker (empty = recovery restarts the search)")
	workers := flag.Int("workers", 0, "expansion workers per search/node (0 = GOMAXPROCS lanes with contention-aware autotuning, 1 = sequential)")
	cachedir := flag.String("cachedir", "", "persist admission verdicts under this directory (sharded, incremental)")
	checkpoint := flag.Duration("checkpoint", 30*time.Second, "verdict-cache checkpoint interval")
	queue := flag.Int("queue", 64, "admission request queue depth")
	concurrency := flag.Int("concurrency", 1, "concurrent backend verifications")
	maxstates := flag.Int("maxstates", 0, "clamp per-request state budgets (0 = engine default)")
	timeout := flag.Duration("timeout", 0, "default per-request budget when the submit sets none (0 = none)")
	retries := flag.Int("retries", 0, "retry transient backend failures this many times (0 = report the first failure)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff before the first backend retry (0 = 100ms; doubled per attempt, jittered, capped at 5s)")
	breaker := flag.Int("breaker", 0, "open the backend circuit after this many consecutive failed verifications (0 = no breaker)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open circuit refuses the backend (0 = 30s)")
	localFallback := flag.Bool("localfallback", false, "serve verdicts from the in-process engine when the backend is unavailable instead of returning 502")
	metricsAddr := flag.String("metrics", "", "HTTP admin address serving /metricsz (for worker-only daemons; the admission plane serves /metricsz itself)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and /debug/vars on the HTTP surfaces")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	logger := log.New(os.Stderr, "verifyd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *listen == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "verifyd: nothing to serve (both -listen and -http empty)")
		os.Exit(2)
	}
	if *ft && *nodes == 0 && *connect == "" {
		// Workers inherit fault tolerance from the coordinator's job setup;
		// -ft only means something on the side driving a cluster.
		fmt.Fprintln(os.Stderr, "verifyd: -ft drives a cluster; it needs -nodes or -connect")
		os.Exit(2)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var wg sync.WaitGroup
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}

	// Worker plane.
	var workerSrv *dverify.Server
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fail(err)
		}
		var slogf func(string, ...any)
		if !*quiet {
			slogf = logf
		}
		workerSrv = dverify.NewServer(l, slogf)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := workerSrv.Serve(); err != nil {
				fail(err)
			}
		}()
		logf("worker listening on %s", l.Addr())
	}

	// Admin plane: a plain HTTP listener for /metricsz (and pprof) — the
	// worker plane is raw TCP, so a worker-only daemon has no other HTTP
	// surface to scrape. Dies with the process; it serves no state worth
	// draining.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metricsz", obs.Default.Handler())
		if *pprofOn {
			mountDebug(mux)
		}
		l, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fail(err)
		}
		go func() {
			if err := http.Serve(l, mux); err != nil {
				logf("admin listener: %v", err)
			}
		}()
		logf("metrics on http://%s/metricsz", l.Addr())
	}

	// Admission plane.
	var svc *admit.Service
	var httpSrv *http.Server
	if *httpAddr != "" {
		opts := admit.Options{
			Workers:          *workers,
			QueueDepth:       *queue,
			Concurrency:      *concurrency,
			MaxStates:        *maxstates,
			DefaultTimeout:   *timeout,
			CacheDir:         *cachedir,
			Checkpoint:       *checkpoint,
			RetryAttempts:    *retries,
			RetryBackoff:     *retryBackoff,
			BreakerThreshold: *breaker,
			BreakerCooldown:  *breakerCooldown,
			LocalFallback:    *localFallback,
			Logf:             logf,
		}
		ts, desc, err := dverify.ClusterRetry(*nodes, *connect, *connectRetries, *connectBackoff, logf)
		if err != nil {
			fail(err)
		}
		if ts != nil {
			defer dverify.Close(ts)
			opts.Backend = dverify.Runner(ts)
			opts.BackendNodes = len(ts)
			opts.BackendDesc = desc
			if *ft {
				// Fault tolerance is a deployment property of this cluster,
				// not a per-request knob: stamp it onto every backend run.
				run, dir := opts.Backend, *ftdir
				opts.Backend = func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
					cfg.FaultTolerance = true
					cfg.CheckpointDir = dir
					return run(ps, cfg)
				}
				opts.BackendDesc += " (fault-tolerant)"
			}
		}
		svc = admit.New(opts)
		l, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fail(err)
		}
		handler := svc.Handler()
		if *pprofOn {
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mountDebug(mux)
			handler = mux
		}
		httpSrv = &http.Server{Handler: handler}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := httpSrv.Serve(l); err != nil && err != http.ErrServerClosed {
				fail(err)
			}
		}()
		backend := opts.BackendDesc
		if backend == "" {
			backend = "local engine"
		}
		logf("admission service on http://%s (backend: %s)", l.Addr(), backend)
	}

	// Combined drain: the first signal drains both planes — the admission
	// service finishes in-flight verdicts and checkpoints while the
	// worker server finishes active sessions — the second forces exit.
	go func() {
		<-sigs
		logf("draining: refusing new work, finishing in-flight (signal again to force exit)")
		if svc != nil {
			go func() {
				svc.Drain()
				// The HTTP listener stays up through the drain so
				// in-flight responses and 503s flow; close it once the
				// last verdict is out.
				httpSrv.Close()
			}()
		}
		if workerSrv != nil {
			go workerSrv.Shutdown()
		}
		<-sigs
		logf("forced exit")
		os.Exit(1)
	}()

	wg.Wait()
	logf("drained; bye")
}
