// Command verifyd serves one worker node of the distributed verification
// backend (internal/dverify). A coordinator — cmd/verifyslot or
// cmd/experiments with -connect — dials a set of verifyd instances, ships
// each a shard range of the packed state space, and drives the search over
// them. In the default mesh topology the daemons also dial each other at
// job setup (one data link per ordered node pair), so frontier batches
// flow worker↔worker and never transit the coordinator.
//
// Usage:
//
//	verifyd -listen 127.0.0.1:9471 [-quiet]
//
// The daemon keeps accepting sessions until killed, so repeated CLI
// invocations reuse the same worker fleet. On SIGINT or SIGTERM it drains
// gracefully: new connections and new jobs are refused while active
// sessions — and the mesh links of their in-flight searches — run to
// completion; a second signal forces an immediate exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tightcps/internal/dverify"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9471", "address to serve the worker protocol on")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
	logger := log.New(os.Stderr, "verifyd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	srv := dverify.NewServer(l, logf)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Printf("draining: refusing new sessions, waiting for active ones (signal again to force exit)")
		go srv.Shutdown()
		<-sigs
		logger.Printf("forced exit")
		os.Exit(1)
	}()

	logger.Printf("worker listening on %s", l.Addr())
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
	logger.Printf("drained; bye")
}
