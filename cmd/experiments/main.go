// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	-table1     Table 1: JT, JE, T*w, Tdw−, Tdw+ for C1..C6
//	-fig2       Fig. 2: motivational response curves
//	-fig3       Fig. 3: settling-time surface, stable vs unstable pair
//	-fig4       Fig. 4: dwell-time tables vs wait time (C1, J* = 0.36 s)
//	-mapping    Sec. 5: slot dimensioning, proposed vs baseline [9]
//	-fig8       Fig. 8: co-simulated responses on slot S1
//	-fig9       Fig. 9: co-simulated responses on slot S2
//	-verifytime Sec. 5: verification-time study (exact vs bounded)
//	-all        everything above
//
// Beyond the paper's evaluation, -synthetic N dimensions a seeded random
// workload of N applications (see internal/plants.Synthetic): first-fit
// with exact wide-state verification under the symmetry quotient, a DP
// partitioner comparison on a tractable sample, and per-run statistics
// (slots needed, states explored, cache traffic). Slots of 8+ fleet
// instances exercise the multi-word encoding past the paper's 6-app scale.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"tightcps/internal/baseline"
	"tightcps/internal/mapping"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/sim"
	"tightcps/internal/switching"
	"tightcps/internal/textplot"
	"tightcps/internal/verify"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig2       = flag.Bool("fig2", false, "regenerate Fig. 2")
		fig3       = flag.Bool("fig3", false, "regenerate Fig. 3")
		fig4       = flag.Bool("fig4", false, "regenerate Fig. 4")
		mappingF   = flag.Bool("mapping", false, "regenerate the slot-dimensioning result")
		fig8       = flag.Bool("fig8", false, "regenerate Fig. 8")
		fig9       = flag.Bool("fig9", false, "regenerate Fig. 9")
		verifytime = flag.Bool("verifytime", false, "regenerate the verification-time study")
		all        = flag.Bool("all", false, "run every paper experiment above (excludes -synthetic)")
		synthetic  = flag.Int("synthetic", 0, "dimension a synthetic workload of N applications (0 = off)")
		seed       = flag.Int64("seed", 1, "random seed for -synthetic")
		maxStates  = flag.Int("maxstates", 30_000_000, "per-admission state budget for -synthetic; busted checks are rejected conservatively")
	)
	flag.IntVar(&workers, "workers", 0, "worker pool size for verification (0 = GOMAXPROCS, 1 = serial; must be ≥ 0)")
	flag.Parse()
	if workers < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be ≥ 0 (0 = GOMAXPROCS, 1 = serial), got %d\n", workers)
		os.Exit(2)
	}
	if *synthetic < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -synthetic must be ≥ 0, got %d\n", *synthetic)
		os.Exit(2)
	}
	if *all {
		*table1, *fig2, *fig3, *fig4, *mappingF, *fig8, *fig9, *verifytime = true, true, true, true, true, true, true, true
	}
	if !(*table1 || *fig2 || *fig3 || *fig4 || *mappingF || *fig8 || *fig9 || *verifytime || *synthetic > 0) {
		flag.Usage()
		os.Exit(2)
	}
	if *synthetic > 0 {
		runSynthetic(*synthetic, *seed, *maxStates)
	}
	if *fig2 {
		runFig2()
	}
	if *fig3 {
		runFig3()
	}
	if *fig4 {
		runFig4()
	}
	if *table1 {
		runTable1()
	}
	if *mappingF {
		runMapping()
	}
	if *fig8 {
		runFig8()
	}
	if *fig9 {
		runFig9()
	}
	if *verifytime {
		runVerifyTime()
	}
}

// workers is the shared -workers flag value.
var workers int

// admissionCache memoizes slot-admission verdicts across the experiments of
// one invocation (e.g. -mapping's first-fit and optimal sweeps).
var admissionCache = mapping.NewCache()

// slotVerify is the admission verifier the experiments share: the exact
// packed checker with nondeterministic ties, fanned out over -workers.
func slotVerify(ps []*switching.Profile) (bool, error) {
	res, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: workers})
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}

func profiles() map[string]*switching.Profile {
	m, err := plants.Profiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
	return m
}

func runFig2() {
	fmt.Println("== Fig. 2: response curves for different control strategies ==")
	sys := plants.Motivational()
	mk := func(kE, name string) switching.Plant {
		k := plants.MotivationalKEStable
		if kE == "u" {
			k = plants.MotivationalKEUnstable
		}
		return switching.Plant{Name: name, Sys: sys, KT: plants.MotivationalKT, KE: k,
			X0: plants.MotivationalX0, JStar: 18, R: 25}
	}
	horizon := 50
	curves := []textplot.Series{
		{Name: "KT", Y: switching.SimulateSequence(mk("s", "KT"), allMT(horizon), horizon)},
		{Name: "KsE", Y: switching.SimulateSequence(mk("s", "KsE"), nil, horizon)},
		{Name: "KuE", Y: switching.SimulateSequence(mk("u", "KuE"), nil, horizon)},
		{Name: "4KsE+4KT+nKsE", Y: switching.SimulateSequence(mk("s", "sw-s"), waitDwell(4, 4), horizon)},
		{Name: "4KuE+4KT+nKuE", Y: switching.SimulateSequence(mk("u", "sw-u"), waitDwell(4, 4), horizon)},
	}
	fmt.Print(textplot.Lines(curves, textplot.Options{}))
	for _, c := range curves {
		j, ok := settleOf(c.Y)
		fmt.Printf("  %-16s settling: %s\n", c.Name, secs(j, ok))
	}
	fmt.Println()
}

func allMT(n int) []switching.Mode {
	seq := make([]switching.Mode, n)
	for i := range seq {
		seq[i] = switching.MT
	}
	return seq
}

func waitDwell(w, d int) []switching.Mode {
	seq := make([]switching.Mode, w+d)
	for i := w; i < w+d; i++ {
		seq[i] = switching.MT
	}
	return seq
}

func settleOf(y []float64) (int, bool) {
	k := len(y)
	for i := len(y) - 1; i >= 0; i-- {
		if math.Abs(y[i]) > plants.SettleTol {
			break
		}
		k = i
	}
	return k, k < len(y)
}

func secs(j int, ok bool) string {
	if !ok {
		return ">horizon"
	}
	return fmt.Sprintf("%.2f s (%d samples)", float64(j)*plants.H, j)
}

func runFig3() {
	fmt.Println("== Fig. 3: settling time J(Tw, Tdw), stable vs unstable switching ==")
	sys := plants.Motivational()
	pairs := []struct {
		name string
		p    switching.Plant
	}{
		{"KT+KsE", switching.Plant{Name: "s", Sys: sys, KT: plants.MotivationalKT,
			KE: plants.MotivationalKEStable, X0: plants.MotivationalX0, JStar: 18, R: 25}},
		{"KT+KuE", switching.Plant{Name: "u", Sys: sys, KT: plants.MotivationalKT,
			KE: plants.MotivationalKEUnstable, X0: plants.MotivationalX0, JStar: 18, R: 25}},
	}
	for _, pr := range pairs {
		pts := switching.Surface(pr.p, 10, 8, switching.Config{})
		minJ, maxJ, unsettled := switching.SurfaceStats(pts)
		fmt.Printf("  %s: J over Tw∈[0,10] × Tdw∈[0,8]: min %.2f s, max %.2f s, unsettled %d\n",
			pr.name, float64(minJ)*plants.H, float64(maxJ)*plants.H, unsettled)
		header := []string{"Tw\\Tdw"}
		for d := 0; d <= 8; d++ {
			header = append(header, fmt.Sprint(d))
		}
		var rows [][]string
		for tw := 0; tw <= 10; tw++ {
			row := []string{fmt.Sprint(tw)}
			for d := 0; d <= 8; d++ {
				pt := pts[tw*9+d]
				if math.IsInf(pt.JSec, 1) {
					row = append(row, "inf")
				} else {
					row = append(row, fmt.Sprintf("%.2f", pt.JSec))
				}
			}
			rows = append(rows, row)
		}
		fmt.Print(textplot.Table(header, rows))
		fmt.Println()
	}
}

func runFig4() {
	fmt.Println("== Fig. 4: minimum/maximum dwell times vs wait time (C1, J*=0.36 s) ==")
	p := profiles()["C1"]
	header := []string{"Tw", "Tdw−", "J@Tdw− (s)", "Tdw+", "J@Tdw+ (s)"}
	var rows [][]string
	for tw := 0; tw <= p.TwStar; tw++ {
		rows = append(rows, []string{
			fmt.Sprint(tw),
			fmt.Sprint(p.TdwMinus[tw]),
			fmt.Sprintf("%.2f", float64(p.JAtMin[tw])*plants.H),
			fmt.Sprint(p.TdwPlus[tw]),
			fmt.Sprintf("%.2f", float64(p.JBest[tw])*plants.H),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Printf("  T*w = %d samples; RLE storage: Tdw− %d runs, Tdw+ %d runs\n\n",
		p.TwStar, switching.EncodeRLE(p.TdwMinus).Words(), switching.EncodeRLE(p.TdwPlus).Words())
}

func runTable1() {
	fmt.Println("== Table 1: case-study switching profiles (samples, h = 0.02 s) ==")
	m := profiles()
	header := []string{"App", "r", "J*", "JT", "JE", "T*w", "Tdw−", "Tdw+"}
	var rows [][]string
	for _, name := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		p := m[name]
		rows = append(rows, []string{
			name, fmt.Sprint(p.R), fmt.Sprint(p.JStar), fmt.Sprint(p.JT), fmt.Sprint(p.JE),
			fmt.Sprint(p.TwStar), textplot.IntsCSV(p.TdwMinus), textplot.IntsCSV(p.TdwPlus),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Println()
}

func runMapping() {
	fmt.Println("== Sec. 5: TT-slot dimensioning, proposed vs baseline [9] ==")
	m := profiles()
	names := []string{"C1", "C2", "C3", "C4", "C5", "C6"}
	var ps []*switching.Profile
	for _, n := range names {
		ps = append(ps, m[n])
	}
	t0 := time.Now()
	ff, err := mapping.FirstFitCached(ps, slotVerify, admissionCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  proposed (first-fit + exact model checking): %d slots %v  [%d checks, %d cached, %.2fs]\n",
		len(ff.Slots), ff.SlotNames(ps), ff.Verifications, ff.CacheHits, time.Since(t0).Seconds())
	t0 = time.Now()
	opt, err := mapping.OptimalCached(ps, slotVerify, admissionCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  exact DP partitioner (2ⁿ−1 subsets):         %d slots %v  [%d checks, %d served by cache, %.2fs]\n",
		len(opt.Slots), opt.SlotNames(ps), opt.Verifications, opt.CacheHits, time.Since(t0).Seconds())

	rs := map[string]int{}
	for n, p := range m {
		rs[n] = p.R
	}
	order := []int{0, 4, 3, 5, 1, 2} // paper order C1,C5,C4,C6,C2,C3 over name-sorted apps
	cal, err := baseline.PaperCalibratedTimings(rs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	an := baseline.Analysis{Strategy: baseline.NonPreemptiveDM}
	calSlots := an.FirstFitOrdered(cal, order)
	fmt.Printf("  baseline [9], calibrated reconstruction:     %d slots %v\n",
		len(calSlots), baseline.SlotNames(cal, calSlots))
	var def []baseline.AppTiming
	for _, n := range names {
		def = append(def, baseline.FromProfile(m[n]))
	}
	defSlots := an.FirstFitOrdered(def, order)
	fmt.Printf("  baseline [9], default reconstruction:        %d slots %v\n",
		len(defSlots), baseline.SlotNames(def, defSlots))
	saved := 100 * (1 - float64(len(ff.Slots))/float64(len(calSlots)))
	fmt.Printf("  saving vs calibrated baseline: %.0f%% (paper reports 50%%)\n\n", saved)
}

func runCoSim(title string, names []string, dists []sim.Disturbance, horizon int) {
	fmt.Println(title)
	m := profiles()
	var pls []switching.Plant
	var ps []*switching.Profile
	for _, n := range names {
		a, err := plants.ByName(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pls = append(pls, plants.SwitchingPlant(a))
		ps = append(ps, m[n])
	}
	r, err := sim.New(pls, ps, plants.SettleTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := r.Run(sim.Scenario{Disturbances: dists, Horizon: horizon})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var series []textplot.Series
	for _, a := range res.Apps {
		series = append(series, textplot.Series{Name: a.Name, Y: a.Y[:horizon/2]})
	}
	fmt.Print(textplot.Lines(series, textplot.Options{}))
	fmt.Println("  slot occupancy (first 40 samples):")
	short := res.Occupancy
	if len(short) > 40 {
		short = short[:40]
	}
	fmt.Print(textplot.Occupancy(names, short))
	for i, a := range res.Apps {
		fmt.Printf("  %s: J = %s, J* = %d samples, met = %v, TT samples used = %d\n",
			a.Name, secs(a.J, a.Settled), pls[i].JStar, a.Met, a.TTSamples)
	}
	fmt.Printf("  deadline missed: %v\n\n", res.Missed)
}

func runFig8() {
	runCoSim("== Fig. 8: responses of C1, C3, C4, C5 sharing slot S1 (simultaneous disturbances) ==",
		[]string{"C1", "C5", "C4", "C3"},
		[]sim.Disturbance{{Sample: 0, App: 0}, {Sample: 0, App: 1}, {Sample: 0, App: 2}, {Sample: 0, App: 3}},
		120)
}

func runFig9() {
	runCoSim("== Fig. 9: responses of C2 and C6 sharing slot S2 (C6 disturbed 10 samples after C2) ==",
		[]string{"C6", "C2"},
		[]sim.Disturbance{{Sample: 0, App: 1}, {Sample: 10, App: 0}},
		120)
}

// runSynthetic dimensions a seeded synthetic workload end-to-end: archetype
// profiling (one switching analysis per design, cloned across fleet
// instances), first-fit mapping with exact wide-state verification under
// the symmetry quotient, and a DP-partitioner comparison on a tractable
// sample. Admission checks are prefiltered by counterexample replay
// (verify.Refute) and bounded by the -maxstates budget; a busted budget
// rejects conservatively (never unsoundly) and is reported.
func runSynthetic(n int, seed int64, budget int) {
	t0 := time.Now()
	w := plants.Synthetic(plants.SyntheticOptions{N: n, Seed: seed})
	fmt.Printf("== Synthetic dimensioning sweep: %d applications, %d archetypes, seed %d ==\n",
		len(w.Apps), len(w.Designs), seed)

	// One profile per archetype; instances share the design.
	archProfs := make([]*switching.Profile, len(w.Designs))
	firstApp := make([]int, len(w.Designs))
	for i := range firstApp {
		firstApp[i] = -1
	}
	for i, d := range w.ArchetypeOf {
		if firstApp[d] < 0 {
			firstApp[d] = i
		}
	}
	for d := range w.Designs {
		p, err := switching.Compute(plants.SwitchingPlant(w.Apps[firstApp[d]]),
			switching.Config{Horizon: 800, Workers: workers})
		if err != nil {
			fmt.Printf("  archetype %02d dropped: %v\n", d, err)
			continue
		}
		if p.R <= p.TwStar {
			// The plant settles below tolerance during the wait itself, so
			// T*w overtakes r; clamp conservatively to the sporadic model.
			p.ClampTwStar(p.R - 1)
		}
		archProfs[d] = p
		fmt.Printf("  archetype %02d: %d instances, JT=%d J*=%d T*w=%d r=%d maxTdw−=%d%s%s\n",
			d, w.Designs[d].Instances, p.JT, p.JStar, p.TwStar, p.R, p.MaxTdwMinus(),
			flagStr(w.Designs[d].Unstable, " [unstable]"), flagStr(w.Designs[d].Slack, " [slack]"))
	}
	var ps []*switching.Profile
	var archOfPs []int // parallel to ps: the archetype each clone stems from
	dropped := 0
	for i, a := range w.Apps {
		ap := archProfs[w.ArchetypeOf[i]]
		if ap == nil {
			dropped++
			continue
		}
		ps = append(ps, ap.Clone(a.Name))
		archOfPs = append(archOfPs, w.ArchetypeOf[i])
	}
	fmt.Printf("  profiled %d applications (%d dropped) in %.1fs\n", len(ps), dropped, time.Since(t0).Seconds())

	// Admission verifier: replay prefilter, then the exact checker on the
	// symmetry quotient with the state budget.
	var statesExplored, budgetRejects, replayRefuted, encodingRejects int
	vf := func(set []*switching.Profile) (bool, error) {
		if verify.Refute(set, sched.PreemptEager) {
			replayRefuted++
			return false, nil
		}
		res, err := verify.Slot(set, verify.Config{
			NondetTies: true, SymmetryReduction: true, Workers: workers, MaxStates: budget})
		statesExplored += res.States
		if errors.Is(err, verify.ErrTooLarge) {
			budgetRejects++
			return false, nil
		}
		if errors.Is(err, verify.ErrEncoding) {
			// Candidate exceeds the packed encoding (today: 12 apps);
			// reject conservatively rather than aborting the sweep.
			encodingRejects++
			return false, nil
		}
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	// The budget makes verdicts configuration-dependent, so the sweep keeps
	// its own cache instead of sharing admissionCache.
	cache := mapping.NewCache()

	t1 := time.Now()
	ff, err := mapping.FirstFitCached(ps, vf, cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	maxSlot, deep := 0, 0
	for _, s := range ff.Slots {
		if len(s) > maxSlot {
			maxSlot = len(s)
		}
		if len(s) >= 8 {
			deep++
		}
	}
	fmt.Printf("  first-fit: %d slots for %d applications (largest slot %d apps, %d slots with ≥8 apps) in %.1fs\n",
		len(ff.Slots), len(ps), maxSlot, deep, time.Since(t1).Seconds())
	fmt.Printf("  admission checks %d (%d served by cache), states explored %d\n",
		ff.Verifications, ff.CacheHits, statesExplored)
	fmt.Printf("  rejects: %d by counterexample replay, %d by state budget (conservative), %d over the encoding cap\n",
		replayRefuted, budgetRejects, encodingRejects)
	for si, names := range ff.SlotNames(ps) {
		if len(names) >= 8 {
			fmt.Printf("    slot S%d (%d apps): %v\n", si+1, len(names), names)
		}
	}

	// DP partitioner comparison on a tractable sample: the instances of the
	// two lowest-T*w archetypes (2^n subset checks stay cheap there, and
	// the shared cache reuses every verdict first-fit already settled).
	sample := dpSample(ps, archOfPs, archProfs)
	if len(sample) >= 4 {
		t2 := time.Now()
		ffS, err1 := mapping.FirstFitCached(sample, vf, cache)
		dp, err2 := mapping.OptimalCached(sample, vf, cache)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "DP sample:", errors.Join(err1, err2))
			os.Exit(1)
		}
		fmt.Printf("  DP sample (%d apps of the 2 tightest archetypes): first-fit %d slots, optimal %d slots [%d subset checks, %d cached] in %.1fs\n",
			len(sample), len(ffS.Slots), len(dp.Slots), dp.Verifications, dp.CacheHits, time.Since(t2).Seconds())
	}
	fmt.Printf("  total sweep time %.1fs\n\n", time.Since(t0).Seconds())
}

// dpSample picks up to 5 instances of each of the two archetypes with the
// smallest T*w — a set whose 2^n subset enumeration stays tractable.
// archOfPs maps each profile in ps to its archetype index.
func dpSample(ps []*switching.Profile, archOfPs []int, archProfs []*switching.Profile) []*switching.Profile {
	var live []int
	for d, p := range archProfs {
		if p != nil {
			live = append(live, d)
		}
	}
	sort.Slice(live, func(i, j int) bool { return archProfs[live[i]].TwStar < archProfs[live[j]].TwStar })
	if len(live) > 2 {
		live = live[:2]
	}
	var out []*switching.Profile
	for _, d := range live {
		picked := 0
		for i, inst := range ps {
			if picked < 5 && archOfPs[i] == d {
				out = append(out, inst)
				picked++
			}
		}
	}
	return out
}

func flagStr(on bool, s string) string {
	if on {
		return s
	}
	return ""
}

func runVerifyTime() {
	fmt.Println("== Sec. 5: verification-time study ==")
	m := profiles()
	combos := [][]string{
		{"C6", "C2"},
		{"C1", "C5"},
		{"C1", "C5", "C4"},
		{"C1", "C5", "C4", "C3"},
	}
	header := []string{"slot set", "exact states", "exact time", "bounded states", "bounded time", "verdict"}
	var rows [][]string
	for _, names := range combos {
		var ps []*switching.Profile
		for _, n := range names {
			ps = append(ps, m[n])
		}
		t0 := time.Now()
		exact, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exactT := time.Since(t0)
		t0 = time.Now()
		bounded, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: workers,
			MaxDisturbances: verify.BoundFor(ps)})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		boundedT := time.Since(t0)
		rows = append(rows, []string{
			fmt.Sprint(names),
			fmt.Sprint(exact.States), fmt.Sprintf("%.3fs", exactT.Seconds()),
			fmt.Sprint(bounded.States), fmt.Sprintf("%.3fs", boundedT.Seconds()),
			fmt.Sprint(exact.Schedulable),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Println(`  Note: the paper accelerated UPPAAL (5 h → 15 min) by bounding disturbance
  instances. Our discrete exact checker is already fast; bounding instances
  adds per-application counters to the state and is counterproductive here —
  a negative result (see the BenchmarkVerifyBounded comment in bench_test.go).`)
}
