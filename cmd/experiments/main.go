// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	-table1     Table 1: JT, JE, T*w, Tdw−, Tdw+ for C1..C6
//	-fig2       Fig. 2: motivational response curves
//	-fig3       Fig. 3: settling-time surface, stable vs unstable pair
//	-fig4       Fig. 4: dwell-time tables vs wait time (C1, J* = 0.36 s)
//	-mapping    Sec. 5: slot dimensioning, proposed vs baseline [9]
//	-fig8       Fig. 8: co-simulated responses on slot S1
//	-fig9       Fig. 9: co-simulated responses on slot S2
//	-verifytime Sec. 5: verification-time study (exact vs bounded)
//	-all        everything above
//
// Beyond the paper's evaluation, -synthetic N dimensions a seeded random
// workload of N applications (see internal/plants.Synthetic): first-fit
// with exact wide-state verification under the symmetry quotient, a DP
// partitioner comparison on a tractable sample, and per-run statistics
// (slots needed, states explored, cache traffic). Slots of 8+ fleet
// instances exercise the multi-word encoding past the paper's 6-app scale.
//
// Scale-out and warm-start knobs:
//
//	-nodes K / -connect a,b   run every slot verification on the distributed
//	                          backend (K in-process loopback workers, or
//	                          cmd/verifyd daemons over TCP); -maxstates then
//	                          budgets states per node, and -mesh=false drops
//	                          from the default worker↔worker mesh exchange
//	                          to the level-synchronous coordinator relay
//	-cachefile warm.bin       persist the -synthetic admission cache across
//	                          invocations (config-salted, safe across runs)
//	-granularity-sweep l,h,s  re-dimension the -synthetic workload at every
//	                          Tw granularity in [l,h] step s, charting slots
//	                          needed against dwell-table words (replaces the
//	                          single-granularity sweep)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"tightcps/internal/baseline"
	"tightcps/internal/dverify"
	"tightcps/internal/mapping"
	"tightcps/internal/obs"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/sim"
	"tightcps/internal/switching"
	"tightcps/internal/textplot"
	"tightcps/internal/verify"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig2       = flag.Bool("fig2", false, "regenerate Fig. 2")
		fig3       = flag.Bool("fig3", false, "regenerate Fig. 3")
		fig4       = flag.Bool("fig4", false, "regenerate Fig. 4")
		mappingF   = flag.Bool("mapping", false, "regenerate the slot-dimensioning result")
		fig8       = flag.Bool("fig8", false, "regenerate Fig. 8")
		fig9       = flag.Bool("fig9", false, "regenerate Fig. 9")
		verifytime = flag.Bool("verifytime", false, "regenerate the verification-time study")
		jsonOut    = flag.Bool("json", false, "with -verifytime alone: emit per-combo run traces (states, rate, per-level table, wire stats) as JSON instead of the text table")
		all        = flag.Bool("all", false, "run every paper experiment above (excludes -synthetic)")
		synthetic  = flag.Int("synthetic", 0, "dimension a synthetic workload of N applications (0 = off)")
		seed       = flag.Int64("seed", 1, "random seed for -synthetic")
		maxStates  = flag.Int("maxstates", 30_000_000, "per-admission state budget for -synthetic (per node when distributed); busted checks are rejected conservatively")
		nodes      = flag.Int("nodes", 0, "distribute slot verification over K in-process loopback workers (0 = local)")
		connect    = flag.String("connect", "", "distribute slot verification over verifyd workers at these comma-separated addresses")
		meshF      = flag.Bool("mesh", true, "distributed topology: worker↔worker mesh with pipelined levels (false = level-synchronous coordinator relay)")
		cachefile  = flag.String("cachefile", "", "load/save the -synthetic admission cache at this path (warm starts across runs)")
		granSweep  = flag.String("granularity-sweep", "", "with -synthetic: re-dimension at every Tw granularity lo,hi,step (e.g. 1,8,1)")
	)
	flag.IntVar(&workers, "workers", 0, "worker pool size for verification (0 = GOMAXPROCS, 1 = serial; must be ≥ 0)")
	flag.Parse()
	if workers < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be ≥ 0 (0 = GOMAXPROCS, 1 = serial), got %d\n", workers)
		os.Exit(2)
	}
	if *synthetic < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -synthetic must be ≥ 0, got %d\n", *synthetic)
		os.Exit(2)
	}
	if *granSweep != "" && *synthetic == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -granularity-sweep requires -synthetic N")
		os.Exit(2)
	}
	if *granSweep != "" && *cachefile != "" {
		// Each granularity verifies differently-coarsened profiles under its
		// own salt, so one cache file cannot warm the sweep; reject rather
		// than silently ignore the flag.
		fmt.Fprintln(os.Stderr, "experiments: -cachefile applies to the plain -synthetic sweep, not -granularity-sweep")
		os.Exit(2)
	}
	if *all {
		*table1, *fig2, *fig3, *fig4, *mappingF, *fig8, *fig9, *verifytime = true, true, true, true, true, true, true, true
	}
	if *jsonOut && (!*verifytime || *table1 || *fig2 || *fig3 || *fig4 || *mappingF || *fig8 || *fig9 || *synthetic > 0) {
		// Only the verification-time study is a run report; mixing JSON into
		// the other experiments' text output would leave neither parseable.
		fmt.Fprintln(os.Stderr, "experiments: -json applies to -verifytime alone")
		os.Exit(2)
	}
	if !(*table1 || *fig2 || *fig3 || *fig4 || *mappingF || *fig8 || *fig9 || *verifytime || *synthetic > 0) {
		flag.Usage()
		os.Exit(2)
	}
	ts, clusterDesc, err := dverify.Cluster(*nodes, *connect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if ts != nil {
		defer dverify.Close(ts)
		distRunner, distNodes = dverify.Runner(ts), len(ts)
		if !*meshF {
			distTopology = verify.TopologyRelay
		}
		fmt.Println(clusterDesc)
	}
	if *synthetic > 0 {
		if *granSweep != "" {
			lo, hi, step, err := parseSweepRange(*granSweep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			runGranularitySweep(*synthetic, *seed, *maxStates, lo, hi, step)
		} else {
			runSynthetic(*synthetic, *seed, *maxStates, *cachefile)
		}
	}
	if *fig2 {
		runFig2()
	}
	if *fig3 {
		runFig3()
	}
	if *fig4 {
		runFig4()
	}
	if *table1 {
		runTable1()
	}
	if *mappingF {
		runMapping()
	}
	if *fig8 {
		runFig8()
	}
	if *fig9 {
		runFig9()
	}
	if *verifytime {
		runVerifyTime(*jsonOut)
	}
}

// workers is the shared -workers flag value.
var workers int

// distRunner and distNodes carry the -nodes/-connect cluster: when
// distRunner is non-nil every slot verification routes through the
// distributed backend, and distNodes salts budget-dependent cache keys
// (the per-node budget scales aggregate capacity with the cluster size).
var (
	distRunner   func([]*switching.Profile, verify.Config) (verify.Result, error)
	distNodes    int
	distTopology verify.DistTopology
)

// admissionCache memoizes slot-admission verdicts across the experiments of
// one invocation (e.g. -mapping's first-fit and optimal sweeps).
var admissionCache = mapping.NewCache()

// slotVerify is the admission verifier the experiments share: the exact
// packed checker with nondeterministic ties, fanned out over -workers (or
// over the -nodes/-connect cluster).
func slotVerify(ps []*switching.Profile) (bool, error) {
	res, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: workers,
		Distributed: distRunner, DistTopology: distTopology})
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}

// parseSweepRange parses a lo,hi,step triple.
func parseSweepRange(s string) (lo, hi, step int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("-granularity-sweep wants lo,hi,step, got %q", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("-granularity-sweep %q: %v", s, err)
		}
		vals[i] = v
	}
	lo, hi, step = vals[0], vals[1], vals[2]
	if lo < 1 || hi < lo || step < 1 {
		return 0, 0, 0, fmt.Errorf("-granularity-sweep %q wants 1 ≤ lo ≤ hi and step ≥ 1", s)
	}
	return lo, hi, step, nil
}

func profiles() map[string]*switching.Profile {
	m, err := plants.Profiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
	return m
}

func runFig2() {
	fmt.Println("== Fig. 2: response curves for different control strategies ==")
	sys := plants.Motivational()
	mk := func(kE, name string) switching.Plant {
		k := plants.MotivationalKEStable
		if kE == "u" {
			k = plants.MotivationalKEUnstable
		}
		return switching.Plant{Name: name, Sys: sys, KT: plants.MotivationalKT, KE: k,
			X0: plants.MotivationalX0, JStar: 18, R: 25}
	}
	horizon := 50
	curves := []textplot.Series{
		{Name: "KT", Y: switching.SimulateSequence(mk("s", "KT"), allMT(horizon), horizon)},
		{Name: "KsE", Y: switching.SimulateSequence(mk("s", "KsE"), nil, horizon)},
		{Name: "KuE", Y: switching.SimulateSequence(mk("u", "KuE"), nil, horizon)},
		{Name: "4KsE+4KT+nKsE", Y: switching.SimulateSequence(mk("s", "sw-s"), waitDwell(4, 4), horizon)},
		{Name: "4KuE+4KT+nKuE", Y: switching.SimulateSequence(mk("u", "sw-u"), waitDwell(4, 4), horizon)},
	}
	fmt.Print(textplot.Lines(curves, textplot.Options{}))
	for _, c := range curves {
		j, ok := settleOf(c.Y)
		fmt.Printf("  %-16s settling: %s\n", c.Name, secs(j, ok))
	}
	fmt.Println()
}

func allMT(n int) []switching.Mode {
	seq := make([]switching.Mode, n)
	for i := range seq {
		seq[i] = switching.MT
	}
	return seq
}

func waitDwell(w, d int) []switching.Mode {
	seq := make([]switching.Mode, w+d)
	for i := w; i < w+d; i++ {
		seq[i] = switching.MT
	}
	return seq
}

func settleOf(y []float64) (int, bool) {
	k := len(y)
	for i := len(y) - 1; i >= 0; i-- {
		if math.Abs(y[i]) > plants.SettleTol {
			break
		}
		k = i
	}
	return k, k < len(y)
}

func secs(j int, ok bool) string {
	if !ok {
		return ">horizon"
	}
	return fmt.Sprintf("%.2f s (%d samples)", float64(j)*plants.H, j)
}

func runFig3() {
	fmt.Println("== Fig. 3: settling time J(Tw, Tdw), stable vs unstable switching ==")
	sys := plants.Motivational()
	pairs := []struct {
		name string
		p    switching.Plant
	}{
		{"KT+KsE", switching.Plant{Name: "s", Sys: sys, KT: plants.MotivationalKT,
			KE: plants.MotivationalKEStable, X0: plants.MotivationalX0, JStar: 18, R: 25}},
		{"KT+KuE", switching.Plant{Name: "u", Sys: sys, KT: plants.MotivationalKT,
			KE: plants.MotivationalKEUnstable, X0: plants.MotivationalX0, JStar: 18, R: 25}},
	}
	for _, pr := range pairs {
		pts := switching.Surface(pr.p, 10, 8, switching.Config{})
		minJ, maxJ, unsettled := switching.SurfaceStats(pts)
		fmt.Printf("  %s: J over Tw∈[0,10] × Tdw∈[0,8]: min %.2f s, max %.2f s, unsettled %d\n",
			pr.name, float64(minJ)*plants.H, float64(maxJ)*plants.H, unsettled)
		header := []string{"Tw\\Tdw"}
		for d := 0; d <= 8; d++ {
			header = append(header, fmt.Sprint(d))
		}
		var rows [][]string
		for tw := 0; tw <= 10; tw++ {
			row := []string{fmt.Sprint(tw)}
			for d := 0; d <= 8; d++ {
				pt := pts[tw*9+d]
				if math.IsInf(pt.JSec, 1) {
					row = append(row, "inf")
				} else {
					row = append(row, fmt.Sprintf("%.2f", pt.JSec))
				}
			}
			rows = append(rows, row)
		}
		fmt.Print(textplot.Table(header, rows))
		fmt.Println()
	}
}

func runFig4() {
	fmt.Println("== Fig. 4: minimum/maximum dwell times vs wait time (C1, J*=0.36 s) ==")
	p := profiles()["C1"]
	header := []string{"Tw", "Tdw−", "J@Tdw− (s)", "Tdw+", "J@Tdw+ (s)"}
	var rows [][]string
	for tw := 0; tw <= p.TwStar; tw++ {
		rows = append(rows, []string{
			fmt.Sprint(tw),
			fmt.Sprint(p.TdwMinus[tw]),
			fmt.Sprintf("%.2f", float64(p.JAtMin[tw])*plants.H),
			fmt.Sprint(p.TdwPlus[tw]),
			fmt.Sprintf("%.2f", float64(p.JBest[tw])*plants.H),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Printf("  T*w = %d samples; RLE storage: Tdw− %d runs, Tdw+ %d runs\n\n",
		p.TwStar, switching.EncodeRLE(p.TdwMinus).Words(), switching.EncodeRLE(p.TdwPlus).Words())
}

func runTable1() {
	fmt.Println("== Table 1: case-study switching profiles (samples, h = 0.02 s) ==")
	m := profiles()
	header := []string{"App", "r", "J*", "JT", "JE", "T*w", "Tdw−", "Tdw+"}
	var rows [][]string
	for _, name := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		p := m[name]
		rows = append(rows, []string{
			name, fmt.Sprint(p.R), fmt.Sprint(p.JStar), fmt.Sprint(p.JT), fmt.Sprint(p.JE),
			fmt.Sprint(p.TwStar), textplot.IntsCSV(p.TdwMinus), textplot.IntsCSV(p.TdwPlus),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Println()
}

func runMapping() {
	fmt.Println("== Sec. 5: TT-slot dimensioning, proposed vs baseline [9] ==")
	m := profiles()
	names := []string{"C1", "C2", "C3", "C4", "C5", "C6"}
	var ps []*switching.Profile
	for _, n := range names {
		ps = append(ps, m[n])
	}
	t0 := time.Now()
	ff, err := mapping.FirstFitCached(ps, slotVerify, admissionCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  proposed (first-fit + exact model checking): %d slots %v  [%d checks, %d cached, %.2fs]\n",
		len(ff.Slots), ff.SlotNames(ps), ff.Verifications, ff.CacheHits, time.Since(t0).Seconds())
	t0 = time.Now()
	opt, err := mapping.OptimalCached(ps, slotVerify, admissionCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  exact DP partitioner (2ⁿ−1 subsets):         %d slots %v  [%d checks, %d served by cache, %.2fs]\n",
		len(opt.Slots), opt.SlotNames(ps), opt.Verifications, opt.CacheHits, time.Since(t0).Seconds())

	rs := map[string]int{}
	for n, p := range m {
		rs[n] = p.R
	}
	order := []int{0, 4, 3, 5, 1, 2} // paper order C1,C5,C4,C6,C2,C3 over name-sorted apps
	cal, err := baseline.PaperCalibratedTimings(rs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	an := baseline.Analysis{Strategy: baseline.NonPreemptiveDM}
	calSlots := an.FirstFitOrdered(cal, order)
	fmt.Printf("  baseline [9], calibrated reconstruction:     %d slots %v\n",
		len(calSlots), baseline.SlotNames(cal, calSlots))
	var def []baseline.AppTiming
	for _, n := range names {
		def = append(def, baseline.FromProfile(m[n]))
	}
	defSlots := an.FirstFitOrdered(def, order)
	fmt.Printf("  baseline [9], default reconstruction:        %d slots %v\n",
		len(defSlots), baseline.SlotNames(def, defSlots))
	saved := 100 * (1 - float64(len(ff.Slots))/float64(len(calSlots)))
	fmt.Printf("  saving vs calibrated baseline: %.0f%% (paper reports 50%%)\n\n", saved)
}

func runCoSim(title string, names []string, dists []sim.Disturbance, horizon int) {
	fmt.Println(title)
	m := profiles()
	var pls []switching.Plant
	var ps []*switching.Profile
	for _, n := range names {
		a, err := plants.ByName(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pls = append(pls, plants.SwitchingPlant(a))
		ps = append(ps, m[n])
	}
	r, err := sim.New(pls, ps, plants.SettleTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := r.Run(sim.Scenario{Disturbances: dists, Horizon: horizon})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var series []textplot.Series
	for _, a := range res.Apps {
		series = append(series, textplot.Series{Name: a.Name, Y: a.Y[:horizon/2]})
	}
	fmt.Print(textplot.Lines(series, textplot.Options{}))
	fmt.Println("  slot occupancy (first 40 samples):")
	short := res.Occupancy
	if len(short) > 40 {
		short = short[:40]
	}
	fmt.Print(textplot.Occupancy(names, short))
	for i, a := range res.Apps {
		fmt.Printf("  %s: J = %s, J* = %d samples, met = %v, TT samples used = %d\n",
			a.Name, secs(a.J, a.Settled), pls[i].JStar, a.Met, a.TTSamples)
	}
	fmt.Printf("  deadline missed: %v\n\n", res.Missed)
}

func runFig8() {
	runCoSim("== Fig. 8: responses of C1, C3, C4, C5 sharing slot S1 (simultaneous disturbances) ==",
		[]string{"C1", "C5", "C4", "C3"},
		[]sim.Disturbance{{Sample: 0, App: 0}, {Sample: 0, App: 1}, {Sample: 0, App: 2}, {Sample: 0, App: 3}},
		120)
}

func runFig9() {
	runCoSim("== Fig. 9: responses of C2 and C6 sharing slot S2 (C6 disturbed 10 samples after C2) ==",
		[]string{"C6", "C2"},
		[]sim.Disturbance{{Sample: 0, App: 1}, {Sample: 10, App: 0}},
		120)
}

// archetypeProfiles computes one switching profile per archetype of the
// workload at the given Tw granularity (instances share the design). Nil
// entries mark dropped archetypes.
func archetypeProfiles(w *plants.SyntheticWorkload, granularity int, verbose bool) []*switching.Profile {
	archProfs := make([]*switching.Profile, len(w.Designs))
	firstApp := make([]int, len(w.Designs))
	for i := range firstApp {
		firstApp[i] = -1
	}
	for i, d := range w.ArchetypeOf {
		if firstApp[d] < 0 {
			firstApp[d] = i
		}
	}
	for d := range w.Designs {
		p, err := switching.Compute(plants.SwitchingPlant(w.Apps[firstApp[d]]),
			switching.Config{Horizon: 800, Workers: workers, TwGranularity: granularity})
		if err != nil {
			if verbose {
				fmt.Printf("  archetype %02d dropped: %v\n", d, err)
			}
			continue
		}
		if p.R <= p.TwStar {
			// The plant settles below tolerance during the wait itself, so
			// T*w overtakes r; clamp conservatively to the sporadic model.
			p.ClampTwStar(p.R - 1)
		}
		archProfs[d] = p
		if verbose {
			fmt.Printf("  archetype %02d: %d instances, JT=%d J*=%d T*w=%d r=%d maxTdw−=%d%s%s\n",
				d, w.Designs[d].Instances, p.JT, p.JStar, p.TwStar, p.R, p.MaxTdwMinus(),
				flagStr(w.Designs[d].Unstable, " [unstable]"), flagStr(w.Designs[d].Slack, " [slack]"))
		}
	}
	return archProfs
}

// instanceProfiles clones the archetype profiles across their fleet
// instances, returning the instance profile list, the archetype index of
// each entry, and the number of instances dropped with their archetype.
func instanceProfiles(w *plants.SyntheticWorkload, archProfs []*switching.Profile) (ps []*switching.Profile, archOfPs []int, dropped int) {
	for i, a := range w.Apps {
		ap := archProfs[w.ArchetypeOf[i]]
		if ap == nil {
			dropped++
			continue
		}
		ps = append(ps, ap.Clone(a.Name))
		archOfPs = append(archOfPs, w.ArchetypeOf[i])
	}
	return ps, archOfPs, dropped
}

// admissionStats counts what the synthetic admission verifier did.
type admissionStats struct {
	statesExplored  int
	budgetRejects   int
	replayRefuted   int
	encodingRejects int
	verifySecs      float64          // wall time inside the exact checker
	wire            verify.WireStats // distributed runs only
}

// syntheticAdmission builds the sweep's admission verifier: counterexample
// replay prefilter, then the exact checker on the symmetry quotient with
// the per-check state budget, routed through the -nodes/-connect cluster
// when one is up. Budget and encoding busts reject conservatively (never
// unsoundly) and are counted.
func syntheticAdmission(budget int) (mapping.VerifyFunc, *admissionStats) {
	stats := &admissionStats{}
	vf := func(set []*switching.Profile) (bool, error) {
		if verify.Refute(set, sched.PreemptEager) {
			stats.replayRefuted++
			return false, nil
		}
		t0 := time.Now()
		res, err := verify.Slot(set, verify.Config{
			NondetTies: true, SymmetryReduction: true, Workers: workers,
			MaxStates: budget, Distributed: distRunner, DistTopology: distTopology})
		stats.verifySecs += time.Since(t0).Seconds()
		stats.statesExplored += res.States
		stats.wire.Add(res.Wire)
		if errors.Is(err, verify.ErrTooLarge) {
			stats.budgetRejects++
			return false, nil
		}
		if errors.Is(err, verify.ErrEncoding) {
			// Candidate exceeds the packed encoding (today: 12 apps);
			// reject conservatively rather than aborting the sweep.
			stats.encodingRejects++
			return false, nil
		}
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	return vf, stats
}

// syntheticCacheKey salts the sweep's admission cache: the budget makes
// verdicts configuration-dependent (busted checks reject conservatively),
// and a distributed run scales the aggregate budget with the cluster size,
// so both participate in the key.
func syntheticCacheKey(budget int) uint64 {
	return mapping.VerifyConfigKey(verify.Config{
		NondetTies: true, SymmetryReduction: true, MaxStates: budget,
	}, uint64(distNodes))
}

// runSynthetic dimensions a seeded synthetic workload end-to-end: archetype
// profiling (one switching analysis per design, cloned across fleet
// instances), first-fit mapping with exact wide-state verification under
// the symmetry quotient, and a DP-partitioner comparison on a tractable
// sample. Admission checks are prefiltered by counterexample replay
// (verify.Refute) and bounded by the -maxstates budget; a busted budget
// rejects conservatively (never unsoundly) and is reported. With
// -cachefile, admission verdicts persist across invocations and the run
// reports its cache hit rate.
func runSynthetic(n int, seed int64, budget int, cachefile string) {
	t0 := time.Now()
	w := plants.Synthetic(plants.SyntheticOptions{N: n, Seed: seed})
	fmt.Printf("== Synthetic dimensioning sweep: %d applications, %d archetypes, seed %d ==\n",
		len(w.Apps), len(w.Designs), seed)

	archProfs := archetypeProfiles(w, 1, true)
	ps, archOfPs, dropped := instanceProfiles(w, archProfs)
	fmt.Printf("  profiled %d applications (%d dropped) in %.1fs\n", len(ps), dropped, time.Since(t0).Seconds())

	vf, stats := syntheticAdmission(budget)
	// The budget makes verdicts configuration-dependent, so the sweep keeps
	// its own config-salted cache instead of sharing admissionCache.
	cache := mapping.NewCacheFor(syntheticCacheKey(budget))
	if cachefile != "" {
		loaded, err := cache.LoadFile(cachefile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: loading admission cache:", err)
			os.Exit(1)
		}
		if loaded {
			fmt.Printf("  admission cache: warm start with %d verdicts from %s\n", cache.Len(), cachefile)
		}
	}

	t1 := time.Now()
	ff, err := mapping.FirstFitCached(ps, vf, cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	maxSlot, deep := 0, 0
	for _, s := range ff.Slots {
		if len(s) > maxSlot {
			maxSlot = len(s)
		}
		if len(s) >= 8 {
			deep++
		}
	}
	fmt.Printf("  first-fit: %d slots for %d applications (largest slot %d apps, %d slots with ≥8 apps) in %.1fs\n",
		len(ff.Slots), len(ps), maxSlot, deep, time.Since(t1).Seconds())
	rate := 0
	if stats.verifySecs > 0 {
		rate = int(float64(stats.statesExplored) / stats.verifySecs)
	}
	effWorkers := workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("  admission checks %d (%d served by cache), states explored %d, rate=%d states/s [gomaxprocs=%d numcpu=%d workers=%d]\n",
		ff.Verifications, ff.CacheHits, stats.statesExplored, rate,
		runtime.GOMAXPROCS(0), runtime.NumCPU(), effWorkers)
	fmt.Printf("  rejects: %d by counterexample replay, %d by state budget (conservative), %d over the encoding cap\n",
		stats.replayRefuted, stats.budgetRejects, stats.encodingRejects)
	if stats.wire.RawBytes > 0 {
		fmt.Printf("  %s\n", stats.wire.Report())
	}
	for si, names := range ff.SlotNames(ps) {
		if len(names) >= 8 {
			fmt.Printf("    slot S%d (%d apps): %v\n", si+1, len(names), names)
		}
	}

	// DP partitioner comparison on a tractable sample: the instances of the
	// two lowest-T*w archetypes (2^n subset checks stay cheap there, and
	// the shared cache reuses every verdict first-fit already settled).
	sample := dpSample(ps, archOfPs, archProfs)
	if len(sample) >= 4 {
		t2 := time.Now()
		ffS, err1 := mapping.FirstFitCached(sample, vf, cache)
		dp, err2 := mapping.OptimalCached(sample, vf, cache)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "DP sample:", errors.Join(err1, err2))
			os.Exit(1)
		}
		fmt.Printf("  DP sample (%d apps of the 2 tightest archetypes): first-fit %d slots, optimal %d slots [%d subset checks, %d cached] in %.1fs\n",
			len(sample), len(ffS.Slots), len(dp.Slots), dp.Verifications, dp.CacheHits, time.Since(t2).Seconds())
	}
	hits, misses, _ := cache.Stats()
	if lookups := hits + misses; lookups > 0 {
		fmt.Printf("  admission cache: %d hits / %d lookups (%.0f%% hit rate)\n",
			hits, lookups, 100*float64(hits)/float64(lookups))
	}
	if cachefile != "" {
		if err := cache.SaveFile(cachefile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: saving admission cache:", err)
			os.Exit(1)
		}
		fmt.Printf("  admission cache: %d verdicts saved to %s\n", cache.Len(), cachefile)
	}
	fmt.Printf("  total sweep time %.1fs\n\n", time.Since(t0).Seconds())
}

// runGranularitySweep re-dimensions the synthetic workload at every Tw
// granularity in [lo, hi] (step apart), charting the paper's Sec. 3
// trade-off at scale: coarser wait-time grids shrink the dwell tables
// (fewer Tw rows to store on the ECU) but make every profile more
// conservative, which costs TT slots.
func runGranularitySweep(n int, seed int64, budget, lo, hi, step int) {
	t0 := time.Now()
	w := plants.Synthetic(plants.SyntheticOptions{N: n, Seed: seed})
	fmt.Printf("== Tw-granularity coarsening sweep: %d applications, seed %d, granularity %d..%d step %d ==\n",
		len(w.Apps), seed, lo, hi, step)

	type point struct {
		g, slots, rawWords, rleWords, checks int
		secs                                 float64
	}
	var pts []point
	for g := lo; g <= hi; g += step {
		t1 := time.Now()
		archProfs := archetypeProfiles(w, g, false)
		ps, _, dropped := instanceProfiles(w, archProfs)
		if len(ps) == 0 {
			fmt.Printf("  granularity %d: every archetype dropped\n", g)
			continue
		}
		vf, _ := syntheticAdmission(budget)
		// The cache lives for this one first-fit call and is never
		// persisted, so no config salt is needed — each granularity's
		// profiles fingerprint differently anyway.
		cache := mapping.NewCache()
		ff, err := mapping.FirstFitCached(ps, vf, cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		raw, rle := 0, 0
		for _, p := range ps {
			raw += len(p.TdwMinus) + len(p.TdwPlus)
			rle += switching.EncodeRLE(p.TdwMinus).Words() + switching.EncodeRLE(p.TdwPlus).Words()
		}
		pts = append(pts, point{g, len(ff.Slots), raw, rle, ff.Verifications, time.Since(t1).Seconds()})
		fmt.Printf("  granularity %d: %d slots, %d table words (%d RLE) for %d apps (%d dropped), %d checks, %.1fs\n",
			g, len(ff.Slots), raw, rle, len(ps), dropped, ff.Verifications, time.Since(t1).Seconds())
	}
	if len(pts) == 0 {
		return
	}
	header := []string{"granularity", "slots", "table words", "RLE words", "admission checks", "time (s)"}
	var rows [][]string
	slotsY := make([]float64, len(pts))
	wordsY := make([]float64, len(pts))
	for i, p := range pts {
		rows = append(rows, []string{
			fmt.Sprint(p.g), fmt.Sprint(p.slots), fmt.Sprint(p.rawWords),
			fmt.Sprint(p.rleWords), fmt.Sprint(p.checks), fmt.Sprintf("%.1f", p.secs),
		})
		slotsY[i] = float64(p.slots)
		wordsY[i] = float64(p.rawWords)
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Println("  slots needed vs granularity:")
	fmt.Print(textplot.Lines([]textplot.Series{{Name: "slots", Y: slotsY}}, textplot.Options{Height: 10}))
	fmt.Println("  dwell-table words vs granularity:")
	fmt.Print(textplot.Lines([]textplot.Series{{Name: "table words", Y: wordsY}}, textplot.Options{Height: 10}))
	fmt.Printf("  total sweep time %.1fs\n\n", time.Since(t0).Seconds())
}

// dpSample picks up to 5 instances of each of the two archetypes with the
// smallest T*w — a set whose 2^n subset enumeration stays tractable.
// archOfPs maps each profile in ps to its archetype index.
func dpSample(ps []*switching.Profile, archOfPs []int, archProfs []*switching.Profile) []*switching.Profile {
	var live []int
	for d, p := range archProfs {
		if p != nil {
			live = append(live, d)
		}
	}
	sort.Slice(live, func(i, j int) bool { return archProfs[live[i]].TwStar < archProfs[live[j]].TwStar })
	if len(live) > 2 {
		live = live[:2]
	}
	var out []*switching.Profile
	for _, d := range live {
		picked := 0
		for i, inst := range ps {
			if picked < 5 && archOfPs[i] == d {
				out = append(out, inst)
				picked++
			}
		}
	}
	return out
}

func flagStr(on bool, s string) string {
	if on {
		return s
	}
	return ""
}

// runVerifyTime regenerates the verification-time study. With jsonRep the
// text table is replaced by a JSON array of per-combo run reports — the
// internal/obs traces of the exact and bounded runs (states, rate,
// per-level frontier table, wire stats), one parseable document instead of
// grepping the table.
func runVerifyTime(jsonRep bool) {
	if !jsonRep {
		fmt.Println("== Sec. 5: verification-time study ==")
	}
	m := profiles()
	combos := [][]string{
		{"C6", "C2"},
		{"C1", "C5"},
		{"C1", "C5", "C4"},
		{"C1", "C5", "C4", "C3"},
	}
	type comboReport struct {
		Exact   *obs.Trace `json:"exact"`
		Bounded *obs.Trace `json:"bounded"`
	}
	var reports []comboReport
	header := []string{"slot set", "exact states", "exact time", "bounded states", "bounded time", "verdict"}
	var rows [][]string
	for _, names := range combos {
		var ps []*switching.Profile
		for _, n := range names {
			ps = append(ps, m[n])
		}
		cfg := verify.Config{NondetTies: true, Workers: workers}
		var exTr, bdTr *obs.Trace
		if jsonRep {
			exTr = obs.NewTrace("")
			cfg.RunID, cfg.RunTrace = exTr.RunID, exTr
		}
		t0 := time.Now()
		exact, err := verify.Slot(ps, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exactT := time.Since(t0)
		bcfg := verify.Config{NondetTies: true, Workers: workers,
			MaxDisturbances: verify.BoundFor(ps)}
		if jsonRep {
			bdTr = obs.NewTrace("")
			bcfg.RunID, bcfg.RunTrace = bdTr.RunID, bdTr
		}
		t0 = time.Now()
		bounded, err := verify.Slot(ps, bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		boundedT := time.Since(t0)
		if jsonRep {
			reports = append(reports, comboReport{Exact: exTr, Bounded: bdTr})
			continue
		}
		rows = append(rows, []string{
			fmt.Sprint(names),
			fmt.Sprint(exact.States), fmt.Sprintf("%.3fs", exactT.Seconds()),
			fmt.Sprint(bounded.States), fmt.Sprintf("%.3fs", boundedT.Seconds()),
			fmt.Sprint(exact.Schedulable),
		})
	}
	if jsonRep {
		b, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Println(`  Note: the paper accelerated UPPAAL (5 h → 15 min) by bounding disturbance
  instances. Our discrete exact checker is already fast; bounding instances
  adds per-application counters to the state and is counterproductive here —
  a negative result (see the BenchmarkVerifyBounded comment in bench_test.go).`)
}
