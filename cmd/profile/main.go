// Command profile prints the switching profile (a Table 1 row) of one
// case-study application, optionally with a coarser Tw granularity to show
// the memory/conservativeness trade-off.
//
// Usage:
//
//	profile -app C1 [-granularity 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"tightcps/internal/plants"
	"tightcps/internal/switching"
	"tightcps/internal/textplot"
)

func main() {
	appName := flag.String("app", "C1", "case-study application")
	gran := flag.Int("granularity", 1, "Tw grid step (1 = exact)")
	flag.Parse()

	a, err := plants.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := switching.Compute(plants.SwitchingPlant(a), switching.Config{TwGranularity: *gran})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s (h = %.0f ms, J* = %d samples, r = %d samples, Tw granularity %d)\n",
		p.Name, plants.H*1000, p.JStar, p.R, p.Granularity)
	fmt.Printf("  JT  = %d samples (%.2f s)\n", p.JT, float64(p.JT)*plants.H)
	fmt.Printf("  JE  = %d samples (%.2f s)\n", p.JE, float64(p.JE)*plants.H)
	fmt.Printf("  T*w = %d samples\n", p.TwStar)
	fmt.Printf("  Tdw− = %s\n", textplot.IntsCSV(p.TdwMinus))
	fmt.Printf("  Tdw+ = %s\n", textplot.IntsCSV(p.TdwPlus))
	rleM, rleP := switching.EncodeRLE(p.TdwMinus), switching.EncodeRLE(p.TdwPlus)
	fmt.Printf("  RLE storage: %d + %d runs (vs %d + %d plain entries)\n",
		rleM.Words(), rleP.Words(), len(p.TdwMinus), len(p.TdwPlus))
	if pr, ok := plants.PaperTable1[p.Name]; ok && *gran == 1 {
		fmt.Printf("  paper: JT=%d JE=%d T*w=%d\n", pr.JT, pr.JE, pr.TwStar)
	}
}
