// Command dimension runs the end-to-end TT-slot dimensioning flow on the
// paper's six-application case study (or a subset): switching-profile
// computation, exact slot-sharing verification, and first-fit mapping.
//
// Usage:
//
//	dimension [-apps C1,C2,...] [-stability] [-lazy] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tightcps/internal/core"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
)

func main() {
	appsFlag := flag.String("apps", "C1,C2,C3,C4,C5,C6", "comma-separated case-study applications")
	stability := flag.Bool("stability", false, "certify switching stability (CQLF) for every pair")
	lazy := flag.Bool("lazy", false, "verify under the lazy-preemption policy (paper future work)")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial; must be ≥ 0)")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "dimension: -workers must be ≥ 0 (0 = GOMAXPROCS, 1 = serial), got %d\n", *workers)
		os.Exit(2)
	}

	var apps []core.App
	for _, name := range strings.Split(*appsFlag, ",") {
		a, err := plants.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		apps = append(apps, core.FromPlants(a))
	}
	opts := core.Options{CheckSwitchingStability: *stability, Workers: *workers}
	if *lazy {
		opts.Policy = sched.PreemptLazy
	}
	d := &core.Dimensioner{Apps: apps, Opts: opts}
	t0 := time.Now()
	alloc, err := d.Dimension()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dimensioning failed:", err)
		os.Exit(1)
	}
	fmt.Printf("dimensioned %d applications onto %d TT slot(s) in %.2fs (%d verifications, %d cache hits)\n",
		len(apps), len(alloc.Slots), time.Since(t0).Seconds(), alloc.Verifications, alloc.CacheHits)
	for si, names := range alloc.SlotNames() {
		fmt.Printf("  slot S%d: %s\n", si+1, strings.Join(names, ", "))
	}
	for i, p := range alloc.Profiles {
		fmt.Printf("  %s: JT=%d JE=%d T*w=%d maxTdw−=%d maxTdw+=%d\n",
			apps[i].Name, p.JT, p.JE, p.TwStar, p.MaxTdwMinus(), p.MaxTdwPlus())
	}
}
