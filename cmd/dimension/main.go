// Command dimension runs the end-to-end TT-slot dimensioning flow on the
// paper's six-application case study (or a subset): switching-profile
// computation, exact slot-sharing verification, and first-fit mapping.
//
// Usage:
//
//	dimension [-apps C1,C2,...] [-stability] [-lazy] [-workers N] [-cachefile warm.bin]
//	          [-server http://host:9833]
//
// -cachefile persists the admission cache across invocations: verdicts are
// loaded before the run (a missing file is a cold start) and saved back
// after, so repeated dimensioning — CI sweeps in particular — skips every
// slot-sharing verification it has already settled. The file is salted
// with the verification config, so a cache produced under a different
// policy never answers for this run.
//
// -server routes every slot-sharing admission question to a running
// admission service (verifyd -http) instead of verifying in-process: the
// first-fit search still runs here, but verdicts come from the service's
// fleet-wide coalescing and persistent cache. -cachefile is redundant
// there (the service owns persistence) and refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tightcps/internal/admit"
	"tightcps/internal/core"
	"tightcps/internal/mapping"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/verify"
)

func main() {
	appsFlag := flag.String("apps", "C1,C2,C3,C4,C5,C6", "comma-separated case-study applications")
	stability := flag.Bool("stability", false, "certify switching stability (CQLF) for every pair")
	lazy := flag.Bool("lazy", false, "verify under the lazy-preemption policy (paper future work)")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial; must be ≥ 0)")
	cachefile := flag.String("cachefile", "", "load/save the admission cache at this path (warm starts across runs)")
	server := flag.String("server", "", "route admission questions to the admission service at this base URL")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "dimension: -workers must be ≥ 0 (0 = GOMAXPROCS, 1 = serial), got %d\n", *workers)
		os.Exit(2)
	}

	var apps []core.App
	for _, name := range strings.Split(*appsFlag, ",") {
		a, err := plants.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		apps = append(apps, core.FromPlants(a))
	}
	opts := core.Options{CheckSwitchingStability: *stability, Workers: *workers}
	if *lazy {
		opts.Policy = sched.PreemptLazy
	}
	if *server != "" {
		if *cachefile != "" {
			fmt.Fprintln(os.Stderr, "dimension: -server and -cachefile are exclusive (the service owns verdict persistence)")
			os.Exit(2)
		}
		// The service decides ties/policy semantics from the spec; mirror
		// what the in-process engine would verify under.
		spec := verify.SpecOf(verify.Config{NondetTies: true, Policy: opts.Policy})
		cli := &admit.Client{BaseURL: *server}
		opts.AdmitFunc = cli.VerifyFunc(spec)
		fmt.Printf("admission via %s\n", *server)
	}
	if *cachefile != "" {
		// Mirror the engine's admission config (core.Dimensioner.verifyFunc)
		// so the cache salt matches what the verdicts were computed under.
		vcfg := opts.Verify
		vcfg.NondetTies = true
		vcfg.Policy = opts.Policy
		cache := mapping.NewCacheFor(mapping.VerifyConfigKey(vcfg))
		loaded, err := cache.LoadFile(*cachefile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dimension: loading admission cache:", err)
			os.Exit(1)
		}
		if loaded {
			fmt.Printf("admission cache: warm start with %d verdicts from %s\n", cache.Len(), *cachefile)
		}
		opts.Cache = cache
		defer func() {
			if err := cache.SaveFile(*cachefile); err != nil {
				fmt.Fprintln(os.Stderr, "dimension: saving admission cache:", err)
				return
			}
			fmt.Printf("admission cache: %d verdicts saved to %s\n", cache.Len(), *cachefile)
		}()
	}
	d := &core.Dimensioner{Apps: apps, Opts: opts}
	t0 := time.Now()
	alloc, err := d.Dimension()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dimensioning failed:", err)
		os.Exit(1)
	}
	fmt.Printf("dimensioned %d applications onto %d TT slot(s) in %.2fs (%d verifications, %d cache hits)\n",
		len(apps), len(alloc.Slots), time.Since(t0).Seconds(), alloc.Verifications, alloc.CacheHits)
	for si, names := range alloc.SlotNames() {
		fmt.Printf("  slot S%d: %s\n", si+1, strings.Join(names, ", "))
	}
	for i, p := range alloc.Profiles {
		fmt.Printf("  %s: JT=%d JE=%d T*w=%d maxTdw−=%d maxTdw+=%d\n",
			apps[i].Name, p.JT, p.JE, p.TwStar, p.MaxTdwMinus(), p.MaxTdwPlus())
	}
}
