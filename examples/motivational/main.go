// Motivational example (Sec. 3.1, Figs. 2–4): the DC motor position-control
// system with one fast TT controller and two candidate ET controllers, one
// switching-stable and one not — showing why the CQLF condition matters and
// how the dwell-time tables arise.
package main

import (
	"fmt"
	"log"

	"tightcps/internal/control"
	"tightcps/internal/plants"
	"tightcps/internal/switching"
	"tightcps/internal/textplot"
)

func main() {
	sys := plants.Motivational()
	stable := switching.Plant{Name: "stable", Sys: sys, KT: plants.MotivationalKT,
		KE: plants.MotivationalKEStable, X0: plants.MotivationalX0, JStar: 18, R: 25}
	unstable := stable
	unstable.Name = "unstable"
	unstable.KE = plants.MotivationalKEUnstable

	// Fig. 2: the four-wait/four-dwell switching experiment.
	fmt.Println("Fig. 2 — settling times (threshold |y| ≤ 0.02):")
	for _, c := range []struct {
		name      string
		p         switching.Plant
		tw, dwell int
	}{
		{"KT only (dedicated slot)", stable, 0, 4000},
		{"KsE only", stable, 4000, 0},
		{"KuE only", unstable, 4000, 0},
		{"4·KsE + 4·KT + n·KsE", stable, 4, 4},
		{"4·KuE + 4·KT + n·KuE", unstable, 4, 4},
	} {
		j, ok := switching.SettleAfterSwitch(c.p, c.tw, c.dwell, switching.Config{})
		if !ok {
			fmt.Printf("  %-26s did not settle\n", c.name)
			continue
		}
		fmt.Printf("  %-26s J = %.2f s\n", c.name, float64(j)*plants.H)
	}

	// Switching stability: the difference between the two pairs.
	resS, errS := control.SwitchingStable(sys, plants.MotivationalKT, plants.MotivationalKEStable)
	resU, errU := control.SwitchingStable(sys, plants.MotivationalKT, plants.MotivationalKEUnstable)
	fmt.Printf("\nCQLF search: KT+KsE found=%v (margin %.2g), KT+KuE found=%v (err: %v)\n",
		resS.Found, resS.Margin, resU.Found, errU)
	if errS != nil {
		log.Fatal(errS)
	}

	// Fig. 4: the dwell-time tables for J* = 0.36 s.
	prof, err := switching.Compute(stable, switching.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 4 — T*w = %d; dwell tables (per Tw):\n", prof.TwStar)
	fmt.Printf("  Tdw− = %s\n  Tdw+ = %s\n",
		textplot.IntsCSV(prof.TdwMinus), textplot.IntsCSV(prof.TdwPlus))
	fmt.Printf("  distinct values: Tdw− %v, Tdw+ %v (few values ⇒ RLE-friendly)\n",
		switching.DistinctValues(prof.TdwMinus), switching.DistinctValues(prof.TdwPlus))
}
