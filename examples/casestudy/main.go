// Case study (Sec. 5): the full six-application dimensioning — Table 1
// profiles, first-fit mapping with exact verification, and the Fig. 8/9
// co-simulations with slot-occupancy timelines.
package main

import (
	"fmt"
	"log"
	"strings"

	"tightcps/internal/core"
	"tightcps/internal/plants"
	"tightcps/internal/sim"
	"tightcps/internal/switching"
	"tightcps/internal/textplot"
)

func main() {
	d := &core.Dimensioner{Apps: core.CaseStudyApps()}
	alloc, err := d.Dimension()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dimensioning: %d TT slots\n", len(alloc.Slots))
	for si, names := range alloc.SlotNames() {
		fmt.Printf("  S%d: %s\n", si+1, strings.Join(names, ", "))
	}

	// Fig. 8: simultaneous disturbances on slot S1.
	fmt.Println("\nFig. 8 — slot S1, simultaneous disturbances at C1, C5, C4, C3:")
	runScenario(alloc, 0, []sim.Disturbance{{Sample: 0, App: 0}, {Sample: 0, App: 1}, {Sample: 0, App: 2}, {Sample: 0, App: 3}})

	// Fig. 9: staggered disturbances on slot S2.
	fmt.Println("\nFig. 9 — slot S2, C6 disturbed 10 samples after C2:")
	runScenario(alloc, 1, []sim.Disturbance{{Sample: 0, App: 1}, {Sample: 10, App: 0}})
}

// runScenario co-simulates one dimensioned slot under a disturbance
// scenario whose app indices refer to the slot's member order.
func runScenario(alloc *core.Allocation, slot int, dists []sim.Disturbance) {
	var pls []switching.Plant
	var profs []*switching.Profile
	var names []string
	for _, i := range alloc.Slots[slot] {
		p := alloc.Profiles[i]
		a, err := plants.ByName(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		pls = append(pls, plants.SwitchingPlant(a))
		profs = append(profs, p)
		names = append(names, p.Name)
	}
	r, err := sim.New(pls, profs, plants.SettleTol)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(sim.Scenario{Disturbances: dists, Horizon: 120})
	if err != nil {
		log.Fatal(err)
	}
	occ := res.Occupancy
	if len(occ) > 40 {
		occ = occ[:40]
	}
	fmt.Print(textplot.Occupancy(names, occ))
	for i, a := range res.Apps {
		fmt.Printf("  %s: J = %d samples (%.2f s), J* = %d, met = %v, TT samples = %d\n",
			a.Name, a.J, float64(a.J)*plants.H, pls[i].JStar, a.Met, a.TTSamples)
	}
	if res.Missed {
		fmt.Println("  DEADLINE MISSED — should be impossible on a verified slot!")
	}
}
