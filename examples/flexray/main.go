// FlexRay example: the bus-level view of the switching strategy — the slot
// S2 co-simulation of Fig. 9 replayed over an actual FlexRay bus, showing
// each control message hopping between the dynamic segment and a pooled
// static slot as the arbiter grants and revokes TT access.
package main

import (
	"fmt"
	"log"

	"tightcps/internal/flexray"
	"tightcps/internal/plants"
	"tightcps/internal/sim"
	"tightcps/internal/switching"
)

func main() {
	m, err := plants.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"C6", "C2"}
	var pls []switching.Plant
	var profs []*switching.Profile
	for _, n := range names {
		a, err := plants.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		pls = append(pls, plants.SwitchingPlant(a))
		profs = append(profs, m[n])
	}
	r, err := sim.New(pls, profs, plants.SettleTol)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flexray.Config{StaticSlots: 2, SlotLen: 1.0, MiniSlots: 30, MiniSlotLen: 0.1, NITLen: 0.5}
	res, err := r.RunWithBus(sim.Scenario{
		Disturbances: []sim.Disturbance{{Sample: 0, App: 1}, {Sample: 10, App: 0}},
		Horizon:      40,
	}, cfg, []int{0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bus: %d static slots, %d mini-slots, cycle %.1f ms (= sampling period)\n",
		cfg.StaticSlots, cfg.MiniSlots, cfg.CycleLen())
	fmt.Println("transmissions (frame 1 = C6, frame 2 = C2):")
	for _, tx := range res.Transmissions {
		seg := "dynamic"
		if tx.Static {
			seg = "TT slot"
		}
		fmt.Printf("  cycle %2d: frame %d via %s (%.1f–%.1f ms)\n", tx.Cycle, tx.FrameID, seg, tx.Start, tx.End)
	}
	for _, a := range res.Apps {
		fmt.Printf("%s: settled in %.2f s using %d TT samples\n",
			a.Name, float64(a.J)*plants.H, a.TTSamples)
	}
}
