// Quickstart: design both controllers for a plant from scratch, compute its
// switching profile, and check whether two instances of it can share one TT
// slot — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"tightcps/internal/control"
	"tightcps/internal/core"
	"tightcps/internal/lti"
	"tightcps/internal/mat"
	"tightcps/internal/switching"
)

func main() {
	// A DC-motor-like second-order plant, discretised from ẋ = Ax + Bu at
	// h = 20 ms.
	a := mat.FromRows([][]float64{{-10, 1}, {0, -2}})
	b := mat.ColVec([]float64{0, 2})
	c := mat.RowVec([]float64{1, 0})
	sys, err := lti.C2D(a, b, c, 0.02)
	if err != nil {
		log.Fatal(err)
	}

	// Fast TT controller: aggressive pole placement on the plain plant.
	kT, err := control.PlacePoles(sys, []complex128{0.2, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	// Slow ET controller: LQR on the one-sample-delay augmented plant.
	aug := sys.Augmented()
	kE, _, err := control.DLQR(aug, mat.Identity(3), 1)
	if err != nil {
		log.Fatal(err)
	}

	// Certify switching stability (common quadratic Lyapunov function).
	stab, err := control.SwitchingStable(sys, kT, kE)
	if err != nil {
		log.Fatalf("controllers are not switching stable: %v", err)
	}
	fmt.Printf("switching stability: CQLF found via %s (margin %.2g)\n", stab.Method, stab.Margin)

	// Two identical applications with a 30-sample settling requirement.
	app := core.App{
		Name: "M1", Plant: sys, KT: kT, KE: kE,
		X0: []float64{1, 0}, JStar: 30, R: 80,
	}
	app2 := app
	app2.Name = "M2"

	prof, err := core.Profile(app, switching.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile: JT=%d JE=%d T*w=%d Tdw−=%v Tdw+=%v\n",
		prof.JT, prof.JE, prof.TwStar, prof.TdwMinus, prof.TdwPlus)

	res, _, err := core.VerifySlotSharing([]core.App{app, app2}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("can M1 and M2 share one TT slot? %v (explored %d states)\n",
		res.Schedulable, res.States)
}
