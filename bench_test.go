// Benchmarks regenerating every artefact of the paper's evaluation — one
// benchmark per artefact (Table 1, Figs. 2–4 and 8–9, the Sec. 5
// dimensioning and verification-time studies) plus ablations, the
// concurrent-engine scaling suite (Dimension/Verify at Workers=1 vs
// GOMAXPROCS, admission-cache hit rates), and the wide-state fleet
// verifications past the paper's 6-application scale. The engine and the
// state encodings are documented in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
package tightcps_test

import (
	"fmt"
	"runtime"
	"testing"

	"tightcps/internal/baseline"
	"tightcps/internal/core"
	"tightcps/internal/mapping"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/sim"
	"tightcps/internal/switching"
	"tightcps/internal/ta"
	"tightcps/internal/verify"
)

func motivationalPlant(stable bool) switching.Plant {
	kE := plants.MotivationalKEStable
	if !stable {
		kE = plants.MotivationalKEUnstable
	}
	return switching.Plant{Name: "fig", Sys: plants.Motivational(), KT: plants.MotivationalKT,
		KE: kE, X0: plants.MotivationalX0, JStar: 18, R: 25}
}

func caseProfiles(b *testing.B, names ...string) []*switching.Profile {
	b.Helper()
	ps, err := plants.ProfileList(names...)
	if err != nil {
		b.Fatal(err)
	}
	return ps
}

// BenchmarkFig2Responses regenerates the five Fig. 2 response curves.
func BenchmarkFig2Responses(b *testing.B) {
	stable, unstable := motivationalPlant(true), motivationalPlant(false)
	seq := make([]switching.Mode, 8)
	for i := 4; i < 8; i++ {
		seq[i] = switching.MT
	}
	for i := 0; i < b.N; i++ {
		_ = switching.SimulateSequence(stable, nil, 50)
		_ = switching.SimulateSequence(unstable, nil, 50)
		_ = switching.SimulateSequence(stable, seq, 50)
		_ = switching.SimulateSequence(unstable, seq, 50)
		if _, ok := switching.SettleAfterSwitch(stable, 0, 4000, switching.Config{}); !ok {
			b.Fatal("KT trajectory did not settle")
		}
	}
}

// BenchmarkFig3Surface regenerates the settling-time surface for both
// controller pairs (Fig. 3).
func BenchmarkFig3Surface(b *testing.B) {
	stable, unstable := motivationalPlant(true), motivationalPlant(false)
	for i := 0; i < b.N; i++ {
		_ = switching.Surface(stable, 10, 8, switching.Config{})
		_ = switching.Surface(unstable, 10, 8, switching.Config{})
	}
}

// BenchmarkFig4Profile regenerates the C1 dwell-time tables (Fig. 4).
func BenchmarkFig4Profile(b *testing.B) {
	p := motivationalPlant(true)
	for i := 0; i < b.N; i++ {
		if _, err := switching.Compute(p, switching.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Profiles regenerates all six Table 1 rows.
func BenchmarkTable1Profiles(b *testing.B) {
	apps := plants.CaseStudy()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := switching.Compute(plants.SwitchingPlant(a), switching.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMappingProposed regenerates the paper's dimensioning result:
// first-fit with exact model checking over the six applications (2 slots).
func BenchmarkMappingProposed(b *testing.B) {
	ps := caseProfiles(b, "C1", "C2", "C3", "C4", "C5", "C6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapping.FirstFit(ps, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Slots) != 2 {
			b.Fatalf("slots = %d, want 2", len(res.Slots))
		}
	}
}

// BenchmarkMappingBaseline regenerates the baseline [9] dimensioning
// (4 slots under the calibrated reconstruction).
func BenchmarkMappingBaseline(b *testing.B) {
	m, err := plants.Profiles()
	if err != nil {
		b.Fatal(err)
	}
	rs := map[string]int{}
	for n, p := range m {
		rs[n] = p.R
	}
	apps, err := baseline.PaperCalibratedTimings(rs)
	if err != nil {
		b.Fatal(err)
	}
	order := []int{0, 4, 3, 5, 1, 2}
	an := baseline.Analysis{Strategy: baseline.NonPreemptiveDM}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slots := an.FirstFitOrdered(apps, order)
		if len(slots) != 4 {
			b.Fatalf("baseline slots = %d, want 4", len(slots))
		}
	}
}

// BenchmarkFig8CoSim regenerates the Fig. 8 co-simulation (slot S1).
func BenchmarkFig8CoSim(b *testing.B) {
	ps := caseProfiles(b, "C1", "C5", "C4", "C3")
	var pls []switching.Plant
	for _, p := range ps {
		a, err := plants.ByName(p.Name)
		if err != nil {
			b.Fatal(err)
		}
		pls = append(pls, plants.SwitchingPlant(a))
	}
	r, err := sim.New(pls, ps, plants.SettleTol)
	if err != nil {
		b.Fatal(err)
	}
	sc := sim.Scenario{
		Disturbances: []sim.Disturbance{{Sample: 0, App: 0}, {Sample: 0, App: 1}, {Sample: 0, App: 2}, {Sample: 0, App: 3}},
		Horizon:      120,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Missed {
			b.Fatal("missed on a verified slot")
		}
	}
}

// BenchmarkFig9CoSim regenerates the Fig. 9 co-simulation (slot S2).
func BenchmarkFig9CoSim(b *testing.B) {
	ps := caseProfiles(b, "C6", "C2")
	var pls []switching.Plant
	for _, p := range ps {
		a, err := plants.ByName(p.Name)
		if err != nil {
			b.Fatal(err)
		}
		pls = append(pls, plants.SwitchingPlant(a))
	}
	r, err := sim.New(pls, ps, plants.SettleTol)
	if err != nil {
		b.Fatal(err)
	}
	sc := sim.Scenario{
		Disturbances: []sim.Disturbance{{Sample: 0, App: 1}, {Sample: 10, App: 0}},
		Horizon:      120,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyFull is the paper's hardest verification — the full
// four-application slot S1 — with the exact (unbounded) model. The paper's
// UPPAAL run took 5 hours; the packed discrete checker needs well under a
// second.
func BenchmarkVerifyFull(b *testing.B) {
	ps := caseProfiles(b, "C1", "C5", "C4", "C3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{NondetTies: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("S1 must verify")
		}
	}
}

// BenchmarkVerifyBounded is the same verification under the paper's
// bounded-disturbance acceleration (20× speedup in UPPAAL; in our discrete
// encoding the per-application counters enlarge the state space instead —
// a negative result worth keeping measured).
func BenchmarkVerifyBounded(b *testing.B) {
	ps := caseProfiles(b, "C1", "C5", "C4", "C3")
	bound := verify.BoundFor(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{NondetTies: true, MaxDisturbances: bound})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("S1 must verify")
		}
	}
}

// BenchmarkVerifyTANetwork measures the faithful Fig. 5–7 timed-automata
// network on slot S2 through the generic engine — the UPPAAL-equivalent
// path (the packed verifier is the production path).
func BenchmarkVerifyTANetwork(b *testing.B) {
	ps := caseProfiles(b, "C6", "C2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := verify.CheckNetwork(ps, ta.CheckOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("S2 must verify")
		}
	}
}

// BenchmarkAblationLazyPreemption verifies slot S2 under the future-work
// lazy-preemption policy (ablation of the paper's eager-preemption choice).
func BenchmarkAblationLazyPreemption(b *testing.B) {
	ps := caseProfiles(b, "C6", "C2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{NondetTies: true, Policy: sched.PreemptLazy})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("S2 must verify under lazy preemption")
		}
	}
}

// BenchmarkAblationGranularity profiles C1 with a coarse Tw grid — the
// memory/conservativeness trade-off knob of Sec. 3.
func BenchmarkAblationGranularity(b *testing.B) {
	p := motivationalPlant(true)
	for i := 0; i < b.N; i++ {
		if _, err := switching.Compute(p, switching.Config{TwGranularity: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalPartition computes the exact minimum slot count over all
// 63 subsets — the optimality check for the first-fit heuristic.
func BenchmarkOptimalPartition(b *testing.B) {
	if testing.Short() {
		b.Skip("verifies 63 subsets per iteration")
	}
	ps := caseProfiles(b, "C1", "C2", "C3", "C4", "C5", "C6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapping.Optimal(ps, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Slots) != 2 {
			b.Fatalf("optimal = %d slots", len(res.Slots))
		}
	}
}

// --- Concurrent-engine scaling suite -----------------------------------
//
// The serial/parallel pairs below quantify the engine's speedup: compare
// the Workers1 variant against its WorkersMax sibling (identical results,
// GOMAXPROCS-wide pools). On a single-core host the pair reports parity.

// benchDimension runs the full six-application pipeline — concurrent
// profiling, sharded-BFS-verified first-fit, memoized admission — at the
// given worker count.
func benchDimension(b *testing.B, workers int) {
	apps := core.CaseStudyApps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := &core.Dimensioner{Apps: apps, Opts: core.Options{Workers: workers}}
		alloc, err := d.Dimension()
		if err != nil {
			b.Fatal(err)
		}
		if len(alloc.Slots) != 2 {
			b.Fatalf("slots = %d, want 2", len(alloc.Slots))
		}
	}
}

// BenchmarkDimensionWorkers1 is the sequential end-to-end baseline.
func BenchmarkDimensionWorkers1(b *testing.B) { benchDimension(b, 1) }

// BenchmarkDimensionWorkersMax is the same run at full width; the ratio to
// Workers1 is the engine's wall-clock speedup.
func BenchmarkDimensionWorkersMax(b *testing.B) { benchDimension(b, runtime.GOMAXPROCS(0)) }

// benchVerifyS1 model-checks the paper's hardest slot at a worker count.
func benchVerifyS1(b *testing.B, workers int) {
	ps := caseProfiles(b, "C1", "C5", "C4", "C3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("S1 must verify")
		}
	}
}

// BenchmarkVerifyFullWorkers1 pins the exact S1 verification to the
// sequential BFS.
func BenchmarkVerifyFullWorkers1(b *testing.B) { benchVerifyS1(b, 1) }

// BenchmarkVerifyS1 is the canonical hot-path number — the sequential S1
// verification with allocation reporting. cmd/bench runs the identical
// workload into BENCH_verify.json; the PR-4 zero-allocation expansion core
// is gated on this benchmark's B/op and allocs/op staying ≥ 5× below the
// recorded PR-3 baseline (202 MB, 4.89M allocs per verification).
func BenchmarkVerifyS1(b *testing.B) {
	b.ReportAllocs()
	benchVerifyS1(b, 1)
}

// BenchmarkVerifyFullWorkersMax runs the sharded parallel BFS at full
// width on the same state space.
func BenchmarkVerifyFullWorkersMax(b *testing.B) { benchVerifyS1(b, runtime.GOMAXPROCS(0)) }

// BenchmarkOptimalPartitionCached shares one admission cache between the
// first-fit sweep and the 63-subset DP partitioner, then re-runs the
// partitioner warm: duplicate subsets are never re-verified. The reported
// hits/op metric counts admission checks served from the cache.
func BenchmarkOptimalPartitionCached(b *testing.B) {
	if testing.Short() {
		b.Skip("verifies 63 subsets per iteration")
	}
	ps := caseProfiles(b, "C1", "C2", "C3", "C4", "C5", "C6")
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := mapping.NewCache()
		if _, err := mapping.FirstFitCached(ps, nil, cache); err != nil {
			b.Fatal(err)
		}
		cold, err := mapping.OptimalCached(ps, nil, cache)
		if err != nil {
			b.Fatal(err)
		}
		warm, err := mapping.OptimalCached(ps, nil, cache)
		if err != nil {
			b.Fatal(err)
		}
		if warm.CacheMisses != 0 {
			b.Fatalf("warm partitioner missed %d subsets", warm.CacheMisses)
		}
		hits += cold.CacheHits + warm.CacheHits
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}

// --- Wide-state verifier -------------------------------------------------

// fleetProfiles builds n identical synthetic profiles (distinct names) with
// constant dwell windows — the fleet workload of the wide encoding.
func fleetProfiles(n, twStar, dm, dp, r int) []*switching.Profile {
	out := make([]*switching.Profile, n)
	for i := range out {
		k := twStar + 1
		minT, plusT := make([]int, k), make([]int, k)
		for j := range minT {
			minT[j], plusT[j] = dm, dp
		}
		out[i] = &switching.Profile{
			Name: fmt.Sprintf("F%d", i), TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
			R: r, Granularity: 1, JStar: twStar + dp,
			JAtMin: make([]int, k), JBest: make([]int, k),
		}
	}
	return out
}

// BenchmarkVerifyWideFleet9 model-checks a nine-application fleet — past
// the paper's scale — on the multi-word encoding under the symmetry
// quotient (sequentially; the parallel variant is the WorkersMax sibling).
func BenchmarkVerifyWideFleet9(b *testing.B) {
	ps := fleetProfiles(9, 8, 1, 2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{
			NondetTies: true, SymmetryReduction: true, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("9-app fleet must verify")
		}
	}
}

// BenchmarkVerifyWideFleet9WorkersMax is the same quotient search on the
// sharded parallel BFS at full width.
func BenchmarkVerifyWideFleet9WorkersMax(b *testing.B) {
	ps := fleetProfiles(9, 8, 1, 2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Slot(ps, verify.Config{
			NondetTies: true, SymmetryReduction: true, Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("9-app fleet must verify")
		}
	}
}

// BenchmarkSymmetryQuotient measures what the quotient buys on a set small
// enough to also explore concretely: a four-instance fleet with and
// without the reduction (compare against BenchmarkSymmetryFull).
func BenchmarkSymmetryQuotient(b *testing.B) {
	ps := fleetProfiles(4, 6, 1, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verify.Slot(ps, verify.Config{NondetTies: true, SymmetryReduction: true, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymmetryFull is the concrete-space sibling of
// BenchmarkSymmetryQuotient.
func BenchmarkSymmetryFull(b *testing.B) {
	ps := fleetProfiles(4, 6, 1, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstFitWarmCache measures dimensioning against a fully warmed
// admission cache — the repeated-sweep regime where verification cost
// vanishes entirely.
func BenchmarkFirstFitWarmCache(b *testing.B) {
	ps := caseProfiles(b, "C1", "C2", "C3", "C4", "C5", "C6")
	cache := mapping.NewCache()
	if _, err := mapping.FirstFitCached(ps, nil, cache); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapping.FirstFitCached(ps, nil, cache)
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheMisses != 0 {
			b.Fatalf("warm first-fit missed %d times", res.CacheMisses)
		}
	}
}
