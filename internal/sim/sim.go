// Package sim co-simulates multiple control applications sharing one TT
// slot: plant dynamics (mode MT on the slot, mode ME otherwise), the
// EDF-like arbiter of internal/sched, and optionally a FlexRay bus with the
// reconfiguration middleware routing each application's control message.
// It reproduces the paper's Figs. 8–9: response curves under concrete
// disturbance scenarios together with the slot-occupancy timeline.
package sim

import (
	"fmt"
	"math"

	"tightcps/internal/flexray"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// Scenario drives a co-simulation run.
type Scenario struct {
	// Disturbances lists (sample, application) injection points. The plant
	// state jumps to the application's X0 at that sample, and the arbiter
	// observes the request at the same sample (boundary arrival).
	Disturbances []Disturbance
	// Horizon is the number of samples to simulate.
	Horizon int
	// Policy selects the arbiter's preemption policy.
	Policy sched.PreemptionPolicy
}

// Disturbance is one injection.
type Disturbance struct {
	Sample int
	App    int
}

// AppResult is the per-application outcome.
type AppResult struct {
	Name      string
	Y         []float64 // output trajectory y[0..Horizon]
	Modes     []switching.Mode
	TTSamples int  // samples spent in MT (TT usage cost)
	Settled   bool // settled w.r.t. the tolerance after its last disturbance
	J         int  // settling time in samples after its last disturbance
	Met       bool // J ≤ J*
}

// Result is a full co-simulation outcome.
type Result struct {
	Apps      []AppResult
	Occupancy []int // slot holder per sample (−1 idle)
	Events    []sched.Event
	Missed    bool
}

// Runner couples plants, profiles and the arbiter.
type Runner struct {
	plants   []switching.Plant
	profiles []*switching.Profile
	tol      float64
}

// New creates a Runner. Profiles must correspond index-wise to plants.
func New(plantList []switching.Plant, profiles []*switching.Profile, tol float64) (*Runner, error) {
	if len(plantList) != len(profiles) {
		return nil, fmt.Errorf("sim: %d plants vs %d profiles", len(plantList), len(profiles))
	}
	if tol <= 0 {
		tol = 0.02
	}
	return &Runner{plants: plantList, profiles: profiles, tol: tol}, nil
}

// Run executes the scenario.
func (r *Runner) Run(sc Scenario) (*Result, error) {
	n := len(r.plants)
	if sc.Horizon <= 0 {
		sc.Horizon = 500
	}
	distAt := make(map[int][]int) // sample → apps
	lastDist := make([]int, n)
	for i := range lastDist {
		lastDist[i] = -1
	}
	for _, d := range sc.Disturbances {
		if d.App < 0 || d.App >= n {
			return nil, fmt.Errorf("sim: disturbance for unknown app %d", d.App)
		}
		if d.Sample < 0 || d.Sample >= sc.Horizon {
			return nil, fmt.Errorf("sim: disturbance at sample %d outside horizon", d.Sample)
		}
		distAt[d.Sample] = append(distAt[d.Sample], d.App)
	}

	arb := sched.NewArbiter(r.profiles, sched.Options{Policy: sc.Policy})
	sims := make([]*switching.Simulator, n)
	res := &Result{Apps: make([]AppResult, n)}
	for i := range sims {
		zero := make([]float64, r.plants[i].Sys.Order())
		sims[i] = switching.NewSimulator(r.plants[i])
		sims[i].Reset(zero) // steady state until disturbed
		res.Apps[i] = AppResult{
			Name:  r.plants[i].Name,
			Y:     make([]float64, sc.Horizon+1),
			Modes: make([]switching.Mode, sc.Horizon),
		}
	}

	for k := 0; k < sc.Horizon; k++ {
		// Inject disturbances: the plant state jumps at the sample instant.
		for _, app := range distAt[k] {
			sims[app].Reset(r.plants[app].X0)
			lastDist[app] = k
		}
		// Arbiter observes the same instant.
		if err := arb.Tick(distAt[k]); err != nil {
			return nil, err
		}
		// Record outputs, pick modes, advance plants.
		for i := range sims {
			res.Apps[i].Y[k] = sims[i].Output()
			if arb.InTT(i) {
				res.Apps[i].Modes[k] = switching.MT
				res.Apps[i].TTSamples++
				sims[i].StepMT()
			} else {
				res.Apps[i].Modes[k] = switching.ME
				sims[i].StepME()
			}
		}
	}
	for i := range sims {
		res.Apps[i].Y[sc.Horizon] = sims[i].Output()
	}

	res.Events = arb.Events()
	res.Occupancy = sched.Occupancy(res.Events, sc.Horizon)
	res.Missed = arb.Missed()

	// Settling per app, measured from its last disturbance.
	for i := range res.Apps {
		a := &res.Apps[i]
		if lastDist[i] < 0 {
			a.Settled, a.Met = true, true
			continue
		}
		tail := a.Y[lastDist[i]:]
		j, ok := settleIndex(tail, r.tol)
		a.Settled = ok
		a.J = j
		a.Met = ok && j <= r.plants[i].JStar
	}
	return res, nil
}

func settleIndex(y []float64, tol float64) (int, bool) {
	k := len(y)
	for i := len(y) - 1; i >= 0; i-- {
		if math.Abs(y[i]) > tol {
			break
		}
		k = i
	}
	if k == len(y) {
		return k, false
	}
	return k, true
}

// BusResult augments a co-simulation with bus-level transmission records.
type BusResult struct {
	*Result
	Transmissions []flexray.TxRecord
}

// RunWithBus executes the scenario while routing every application's
// control message over a FlexRay bus through the reconfiguration
// middleware: the arbiter's occupant holds a pooled static slot, everyone
// else transmits in the dynamic segment. One bus cycle per sample.
func (r *Runner) RunWithBus(sc Scenario, cfg flexray.Config, pool []int) (*BusResult, error) {
	bus, err := flexray.NewBus(cfg)
	if err != nil {
		return nil, err
	}
	for i := range r.plants {
		if err := bus.AddFrame(flexray.Frame{ID: i + 1, Name: r.plants[i].Name, Minis: 2}); err != nil {
			return nil, err
		}
	}
	mw, err := flexray.NewMiddleware(bus, pool)
	if err != nil {
		return nil, err
	}
	base, err := r.Run(sc)
	if err != nil {
		return nil, err
	}
	// Replay the occupancy on the bus: every sample, each active app sends
	// one message; the occupant is routed TT via the middleware.
	for k := 0; k < len(base.Occupancy); k++ {
		holder := base.Occupancy[k]
		for i := range r.plants {
			fid := i + 1
			if i == holder {
				if _, err := mw.AcquireTT(fid); err != nil {
					return nil, err
				}
			} else if mw.HoldsTT(fid) {
				if err := mw.ReleaseTT(fid); err != nil {
					return nil, err
				}
			}
			if err := bus.Queue(fid); err != nil {
				return nil, err
			}
		}
		bus.RunCycle()
	}
	return &BusResult{Result: base, Transmissions: bus.Log()}, nil
}
