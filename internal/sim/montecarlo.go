package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// SporadicConfig drives random admissible disturbance generation: each
// application is disturbed with probability Rate at every eligible sample
// (eligible = at least its r since the previous disturbance), giving the
// sporadic model of the paper with random phasing.
type SporadicConfig struct {
	Seed    int64
	Rate    float64 // per-sample disturbance probability when eligible (default 0.1)
	Horizon int     // samples per run (default 600)
	// QuietTail stops injection this many samples before the horizon so
	// that every disturbance has room to settle and the measured settling
	// times are meaningful (default 150).
	QuietTail int
}

// RandomScenario draws one admissible disturbance scenario for n
// applications with the given minimum inter-arrival times (in samples).
func RandomScenario(cfg SporadicConfig, rs []int) Scenario {
	if cfg.Rate <= 0 {
		cfg.Rate = 0.1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 600
	}
	if cfg.QuietTail <= 0 {
		cfg.QuietTail = 150
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	last := make([]int, len(rs))
	for i := range last {
		last[i] = -1 << 30
	}
	var dists []Disturbance
	for k := 0; k < cfg.Horizon-cfg.QuietTail; k++ {
		for i, r := range rs {
			if k-last[i] >= r && rng.Float64() < cfg.Rate {
				dists = append(dists, Disturbance{Sample: k, App: i})
				last[i] = k
			}
		}
	}
	return Scenario{Disturbances: dists, Horizon: cfg.Horizon}
}

// MonteCarloResult summarises a randomized validation campaign.
type MonteCarloResult struct {
	Runs         int
	Disturbances int // total injected
	Misses       int // runs with a deadline miss
	WorstJ       []int // per app: worst settling time observed (samples)
	WorstSlack   []int // per app: min (J* − J) observed; negative = violation
	TTSamples    int   // total TT samples consumed across runs
}

// MonteCarlo runs `runs` random sporadic scenarios through the co-simulator
// and aggregates worst-case observations. On a slot set the model checker
// proved schedulable, Misses must be 0 and every WorstSlack ≥ 0 — this is
// the statistical cross-check of the formal verdict (the converse direction
// of the verifier's exhaustive guarantee).
func (r *Runner) MonteCarlo(runs int, cfg SporadicConfig) (*MonteCarloResult, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be positive")
	}
	n := len(r.plants)
	rs := make([]int, n)
	for i := range rs {
		rs[i] = r.plants[i].R
	}
	out := &MonteCarloResult{
		Runs:       runs,
		WorstJ:     make([]int, n),
		WorstSlack: make([]int, n),
	}
	for i := range out.WorstSlack {
		out.WorstSlack[i] = math.MaxInt32
	}
	for run := 0; run < runs; run++ {
		sc := RandomScenario(SporadicConfig{
			Seed: cfg.Seed + int64(run), Rate: cfg.Rate,
			Horizon: cfg.Horizon, QuietTail: cfg.QuietTail,
		}, rs)
		res, err := r.Run(sc)
		if err != nil {
			return nil, err
		}
		out.Disturbances += len(sc.Disturbances)
		if res.Missed {
			out.Misses++
		}
		for i, a := range res.Apps {
			out.TTSamples += a.TTSamples
			disturbed := false
			for _, d := range sc.Disturbances {
				if d.App == i {
					disturbed = true
					break
				}
			}
			if !disturbed {
				continue
			}
			j := a.J
			if !a.Settled {
				j = math.MaxInt32 / 2
			}
			if j > out.WorstJ[i] {
				out.WorstJ[i] = j
			}
			if slack := r.plants[i].JStar - j; slack < out.WorstSlack[i] {
				out.WorstSlack[i] = slack
			}
		}
	}
	return out, nil
}
