package sim

import (
	"testing"

	"tightcps/internal/flexray"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

func runner(t *testing.T, names ...string) (*Runner, []switching.Plant) {
	t.Helper()
	m, err := plants.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	var pls []switching.Plant
	var profs []*switching.Profile
	for _, n := range names {
		a, err := plants.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		pls = append(pls, plants.SwitchingPlant(a))
		profs = append(profs, m[n])
	}
	r, err := New(pls, profs, plants.SettleTol)
	if err != nil {
		t.Fatal(err)
	}
	return r, pls
}

// TestFig8Scenario reproduces Fig. 8: simultaneous disturbances at the four
// applications of slot S1. Every application meets its requirement; the
// grant order follows EDF; the paper's preemption pattern holds (C1, C5, C4
// preempted at their Tdw−; C3, last in line, runs to its Tdw+ unpreempted).
func TestFig8Scenario(t *testing.T) {
	r, pls := runner(t, "C1", "C5", "C4", "C3")
	res, err := r.Run(Scenario{
		Disturbances: []Disturbance{{0, 0}, {0, 1}, {0, 2}, {0, 3}},
		Horizon:      120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed {
		t.Fatal("deadline missed in the verified scenario")
	}
	for i, a := range res.Apps {
		if !a.Met {
			t.Errorf("%s: J=%d exceeds J*=%d", a.Name, a.J, pls[i].JStar)
		}
	}
	// Grant order: C1 (T*w=11) first, then C5, C4, C3 (T*w=15) last.
	var order []int
	for _, e := range res.Events {
		if e.Kind == sched.GrantedEv {
			order = append(order, e.App)
		}
	}
	want := []int{0, 1, 2, 3}
	if len(order) != 4 {
		t.Fatalf("grants = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
	// Eviction pattern: first three preempted, C3 vacated at its Tdw+.
	var kinds []sched.EventKind
	for _, e := range res.Events {
		if e.Kind == sched.PreemptedEv || e.Kind == sched.VacatedEv {
			kinds = append(kinds, e.Kind)
		}
	}
	wantKinds := []sched.EventKind{sched.PreemptedEv, sched.PreemptedEv, sched.PreemptedEv, sched.VacatedEv}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("eviction kinds %v, want %v", kinds, wantKinds)
		}
	}
	// Occupancy has no gaps while all four queue: samples 0..15 are busy.
	for k := 0; k < 16; k++ {
		if res.Occupancy[k] < 0 {
			t.Fatalf("slot idle at %d while applications wait", k)
		}
	}
}

// TestFig9Scenario reproduces Fig. 9: C2 disturbed at sample 0, C6 ten
// samples later. Neither is preempted; both achieve their dedicated-slot
// settling time JT, and C2 needs only ~10 TT samples (paper: 10; our table
// gives 9 — the documented ±1 reproduction slack).
func TestFig9Scenario(t *testing.T) {
	r, _ := runner(t, "C6", "C2")
	res, err := r.Run(Scenario{
		Disturbances: []Disturbance{{0, 1}, {10, 0}},
		Horizon:      120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed {
		t.Fatal("missed")
	}
	m, _ := plants.Profiles()
	if got, want := res.Apps[1].J, m["C2"].JT; got != want {
		t.Errorf("C2 J=%d, want JT=%d", got, want)
	}
	if got, want := res.Apps[0].J, m["C6"].JT; got != want {
		t.Errorf("C6 J=%d, want JT=%d", got, want)
	}
	if res.Apps[1].TTSamples < 9 || res.Apps[1].TTSamples > 10 {
		t.Errorf("C2 used %d TT samples, paper reports 10 (±1)", res.Apps[1].TTSamples)
	}
	for _, e := range res.Events {
		if e.Kind == sched.PreemptedEv {
			t.Errorf("unexpected preemption: %+v", e)
		}
	}
}

// TestUndisturbedAppsStayQuiet: with no disturbances all outputs are zero
// and the slot stays idle.
func TestUndisturbedAppsStayQuiet(t *testing.T) {
	r, _ := runner(t, "C1", "C5")
	res, err := r.Run(Scenario{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		for k, y := range a.Y {
			if y != 0 {
				t.Fatalf("%s: y[%d]=%v without disturbance", a.Name, k, y)
			}
		}
		if a.TTSamples != 0 {
			t.Fatalf("%s: TT used while quiet", a.Name)
		}
	}
	for k, o := range res.Occupancy {
		if o != -1 {
			t.Fatalf("slot busy at %d", k)
		}
	}
}

// TestOverloadScenarioMisses: replay the verifier's counterexample for the
// unschedulable set {C1,C5,C4,C6} through the co-simulation; the miss must
// reproduce, and the failed application must overshoot its J* in the
// actual closed-loop response. (Simultaneous disturbances alone are NOT the
// worst case for this set — the adversarial schedule staggers them.)
func TestOverloadScenarioMisses(t *testing.T) {
	r, pls := runner(t, "C1", "C5", "C4", "C6")
	profs, err := plants.ProfileList("C1", "C5", "C4", "C6")
	if err != nil {
		t.Fatal(err)
	}
	vres, err := verify.Slot(profs, verify.Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if vres.Schedulable {
		t.Fatal("expected unschedulable set")
	}
	var dists []Disturbance
	for k, apps := range vres.Counterexample {
		for _, a := range apps {
			dists = append(dists, Disturbance{Sample: k, App: a})
		}
	}
	// The final adversarial step: disturb everything still quiet.
	last := len(vres.Counterexample)
	seen := map[int]int{} // app → last disturbance sample
	for _, d := range dists {
		seen[d.App] = d.Sample
	}
	for i := range pls {
		s, was := seen[i]
		if !was || last-s >= pls[i].R {
			dists = append(dists, Disturbance{Sample: last, App: i})
		}
	}
	res, err := r.Run(Scenario{Disturbances: dists, Horizon: last + 160})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missed {
		t.Fatal("verifier counterexample did not reproduce a miss in co-simulation")
	}
	anyLate := false
	for i, a := range res.Apps {
		if !a.Met && a.J > pls[i].JStar {
			anyLate = true
		}
	}
	if !anyLate {
		t.Fatal("miss flagged but every closed loop met its requirement")
	}
}

// TestSwitchingSequenceMatchesOfflineTables: in the Fig. 8 run, C1 waits 0
// and dwells exactly Tdw−(0); replaying that (Tw, dwell) through the offline
// analysis gives the same settling time as the co-simulation measured.
func TestSwitchingSequenceMatchesOfflineTables(t *testing.T) {
	r, pls := runner(t, "C1", "C5", "C4", "C3")
	res, err := r.Run(Scenario{
		Disturbances: []Disturbance{{0, 0}, {0, 1}, {0, 2}, {0, 3}},
		Horizon:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var grantTw, dwell int
	for _, e := range res.Events {
		if e.App == 0 && e.Kind == sched.GrantedEv {
			grantTw = e.Tw
		}
		if e.App == 0 && (e.Kind == sched.PreemptedEv || e.Kind == sched.VacatedEv) {
			dwell = e.CT
		}
	}
	j, ok := switching.SettleAfterSwitch(pls[0], grantTw, dwell, switching.Config{})
	if !ok {
		t.Fatal("offline replay did not settle")
	}
	if j != res.Apps[0].J {
		t.Fatalf("offline J=%d vs co-sim J=%d for (Tw=%d, dwell=%d)", j, res.Apps[0].J, grantTw, dwell)
	}
}

func TestScenarioValidation(t *testing.T) {
	r, _ := runner(t, "C1")
	if _, err := r.Run(Scenario{Disturbances: []Disturbance{{0, 5}}, Horizon: 10}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := r.Run(Scenario{Disturbances: []Disturbance{{50, 0}}, Horizon: 10}); err == nil {
		t.Fatal("out-of-horizon disturbance accepted")
	}
	m, _ := plants.Profiles()
	if _, err := New(nil, []*switching.Profile{m["C1"]}, 0.02); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestRunWithBus: the bus-level run produces TT transmissions exactly for
// the occupant and dynamic transmissions for everyone else.
func TestRunWithBus(t *testing.T) {
	r, _ := runner(t, "C6", "C2")
	cfg := flexray.Config{StaticSlots: 2, SlotLen: 1, MiniSlots: 30, MiniSlotLen: 0.1}
	res, err := r.RunWithBus(Scenario{
		Disturbances: []Disturbance{{0, 1}, {10, 0}},
		Horizon:      60,
	}, cfg, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Count per-cycle static transmissions; they must match occupancy.
	staticBy := map[int]int{} // cycle → frame
	for _, tx := range res.Transmissions {
		if tx.Static {
			if prev, dup := staticBy[tx.Cycle]; dup {
				t.Fatalf("two static txs in cycle %d: %d and %d", tx.Cycle, prev, tx.FrameID)
			}
			staticBy[tx.Cycle] = tx.FrameID
		}
	}
	for k, holder := range res.Occupancy {
		fid, has := staticBy[k]
		if holder < 0 {
			if has {
				t.Fatalf("cycle %d: static tx %d with idle slot", k, fid)
			}
			continue
		}
		if !has || fid != holder+1 {
			t.Fatalf("cycle %d: occupant %d but static tx %v", k, holder, staticBy[k])
		}
	}
	// Every sample, every app transmits exactly once (TT or ET).
	perCycle := map[int]int{}
	for _, tx := range res.Transmissions {
		perCycle[tx.Cycle]++
	}
	for k := 0; k < 60; k++ {
		if perCycle[k] != 2 {
			t.Fatalf("cycle %d carried %d transmissions, want 2", k, perCycle[k])
		}
	}
}

// TestMonteCarloVerifiedSlotNeverMisses: 50 random sporadic campaigns on
// the verified paper slot S2 — no run may miss, and the worst observed
// settling slack stays non-negative (statistical cross-check of the formal
// verdict).
func TestMonteCarloVerifiedSlotNeverMisses(t *testing.T) {
	r, pls := runner(t, "C6", "C2")
	res, err := r.MonteCarlo(50, SporadicConfig{Seed: 42, Rate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d/%d runs missed on a verified slot", res.Misses, res.Runs)
	}
	if res.Disturbances == 0 {
		t.Fatal("campaign injected no disturbances")
	}
	for i, slack := range res.WorstSlack {
		if slack < 0 {
			t.Errorf("%s: worst slack %d (J exceeded J*)", pls[i].Name, slack)
		}
	}
}

// TestMonteCarloOverloadedSlotMisses: the same campaign on the rejected set
// {C1,C5,C4,C6} must eventually hit a miss (the verifier says one exists;
// random search finds it with high probability at this rate).
func TestMonteCarloOverloadedSlotMisses(t *testing.T) {
	r, _ := runner(t, "C1", "C5", "C4", "C6")
	res, err := r.MonteCarlo(80, SporadicConfig{Seed: 7, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("no misses observed on an unschedulable set (unlucky seed or semantics bug)")
	}
}

func TestRandomScenarioRespectsInterArrival(t *testing.T) {
	rs := []int{10, 25}
	sc := RandomScenario(SporadicConfig{Seed: 3, Rate: 0.5, Horizon: 400}, rs)
	last := map[int]int{}
	for _, d := range sc.Disturbances {
		if prev, ok := last[d.App]; ok {
			if d.Sample-prev < rs[d.App] {
				t.Fatalf("app %d disturbed at %d and %d (r=%d)", d.App, prev, d.Sample, rs[d.App])
			}
		}
		last[d.App] = d.Sample
	}
	if len(sc.Disturbances) < 10 {
		t.Fatalf("suspiciously few disturbances: %d", len(sc.Disturbances))
	}
}

func TestMonteCarloValidation(t *testing.T) {
	r, _ := runner(t, "C6")
	if _, err := r.MonteCarlo(0, SporadicConfig{}); err == nil {
		t.Fatal("zero runs accepted")
	}
}
