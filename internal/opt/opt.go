// Package opt provides small derivative-free optimisation routines used by
// the controller-design layer: Nelder–Mead simplex search, golden-section
// line search, and exhaustive grid search. They are sized for the low-
// dimensional (≤ ~15 parameters) problems arising in common-Lyapunov-
// function search and design sweeps.
package opt

import (
	"errors"
	"math"
	"sort"
)

// ErrBadArgs is returned for invalid optimisation arguments.
var ErrBadArgs = errors.New("opt: invalid arguments")

// Result is the outcome of a minimisation.
type Result struct {
	X     []float64 // best point found
	F     float64   // objective at X
	Iters int       // iterations used
}

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	MaxIters int     // maximum iterations (default 200·dim)
	TolF     float64 // stop when simplex f-spread falls below TolF (default 1e-10)
	Step     float64 // initial simplex step (default 0.5)
}

// NelderMead minimises f starting from x0 using the Nelder–Mead simplex
// method with standard reflection/expansion/contraction/shrink coefficients.
func NelderMead(f func([]float64) float64, x0 []float64, o NelderMeadOptions) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, ErrBadArgs
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 200 * n
	}
	if o.TolF <= 0 {
		o.TolF = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.5
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	// Initial simplex.
	pts := make([][]float64, n+1)
	fs := make([]float64, n+1)
	pts[0] = append([]float64(nil), x0...)
	for i := 1; i <= n; i++ {
		p := append([]float64(nil), x0...)
		p[i-1] += o.Step
		pts[i] = p
	}
	for i := range pts {
		fs[i] = f(pts[i])
	}
	order := func() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return fs[idx[a]] < fs[idx[b]] })
		np := make([][]float64, n+1)
		nf := make([]float64, n+1)
		for i, j := range idx {
			np[i], nf[i] = pts[j], fs[j]
		}
		copy(pts, np)
		copy(fs, nf)
	}
	centroid := func() []float64 {
		c := make([]float64, n)
		for i := 0; i < n; i++ { // exclude worst
			for j := 0; j < n; j++ {
				c[j] += pts[i][j]
			}
		}
		for j := range c {
			c[j] /= float64(n)
		}
		return c
	}
	combine := func(c, x []float64, t float64) []float64 {
		out := make([]float64, n)
		for j := range out {
			out[j] = c[j] + t*(x[j]-c[j])
		}
		return out
	}
	var it int
	for it = 0; it < o.MaxIters; it++ {
		order()
		if math.Abs(fs[n]-fs[0]) < o.TolF {
			break
		}
		c := centroid()
		xr := combine(c, pts[n], -alpha)
		fr := f(xr)
		switch {
		case fr < fs[0]:
			xe := combine(c, pts[n], -gamma)
			fe := f(xe)
			if fe < fr {
				pts[n], fs[n] = xe, fe
			} else {
				pts[n], fs[n] = xr, fr
			}
		case fr < fs[n-1]:
			pts[n], fs[n] = xr, fr
		default:
			xc := combine(c, pts[n], rho)
			fc := f(xc)
			if fc < fs[n] {
				pts[n], fs[n] = xc, fc
			} else {
				for i := 1; i <= n; i++ {
					pts[i] = combine(pts[0], pts[i], sigma)
					fs[i] = f(pts[i])
				}
			}
		}
	}
	order()
	return Result{X: pts[0], F: fs[0], Iters: it}, nil
}

// GoldenSection minimises a unimodal f on [a, b] to within tol.
func GoldenSection(f func(float64) float64, a, b, tol float64) (float64, float64, error) {
	if b <= a || tol <= 0 {
		return 0, 0, ErrBadArgs
	}
	phi := (math.Sqrt(5) - 1) / 2
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	x := (a + b) / 2
	return x, f(x), nil
}

// GridSearch minimises f over the Cartesian product of the given axes and
// returns the best point. Axes must be non-empty.
func GridSearch(f func([]float64) float64, axes [][]float64) (Result, error) {
	if len(axes) == 0 {
		return Result{}, ErrBadArgs
	}
	for _, ax := range axes {
		if len(ax) == 0 {
			return Result{}, ErrBadArgs
		}
	}
	idx := make([]int, len(axes))
	x := make([]float64, len(axes))
	best := Result{F: math.Inf(1)}
	count := 0
	for {
		for i, ax := range axes {
			x[i] = ax[idx[i]]
		}
		if v := f(x); v < best.F {
			best.F = v
			best.X = append([]float64(nil), x...)
		}
		count++
		// Advance the multi-index.
		i := 0
		for ; i < len(axes); i++ {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(axes) {
			break
		}
	}
	best.Iters = count
	return best, nil
}

// Linspace returns n evenly spaced values over [a, b] inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n <= 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}
