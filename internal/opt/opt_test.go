package opt

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// f(x) = (x0−1)² + 2(x1+2)²
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 2*(x[1]+2)*(x[1]+2)
	}
	res, err := NelderMead(f, []float64{5, 5}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]+2) > 1e-4 {
		t.Fatalf("minimum at %v, want (1,−2)", res.X)
	}
	if res.F > 1e-7 {
		t.Fatalf("objective %v not near zero", res.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1); f=%v", res.X, res.F)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	if _, err := NelderMead(func(x []float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("empty x0 accepted")
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx, err := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.5) > 1e-6 || fx > 1e-10 {
		t.Fatalf("golden section: x=%v f=%v", x, fx)
	}
	if _, _, err := GoldenSection(math.Sin, 2, 1, 1e-8); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, _, err := GoldenSection(math.Sin, 0, 1, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

func TestGridSearch(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0]-3) + math.Abs(x[1]+1) }
	res, err := GridSearch(f, [][]float64{Linspace(0, 5, 6), Linspace(-2, 2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 3 || res.X[1] != -1 {
		t.Fatalf("grid minimum at %v, want (3,−1)", res.X)
	}
	if res.Iters != 30 {
		t.Fatalf("evaluated %d points, want 30", res.Iters)
	}
	if _, err := GridSearch(f, nil); err == nil {
		t.Fatal("empty axes accepted")
	}
	if _, err := GridSearch(f, [][]float64{{1}, {}}); err == nil {
		t.Fatal("empty axis accepted")
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", v)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
}
