package textplot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines([]Series{
		{Name: "a", Y: []float64{0, 1, 0.5, 0.2}},
		{Name: "b", Y: []float64{1, 0.5, 0.25, 0.1}},
	}, Options{Width: 40, Height: 10})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Fatalf("plot too short:\n%s", out)
	}
}

func TestLinesEmptyAndFlat(t *testing.T) {
	if out := Lines(nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	// A constant series must not divide by zero.
	out := Lines([]Series{{Name: "c", Y: []float64{2, 2, 2}}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series unplotted:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"App", "J*"}, [][]string{{"C1", "18"}, {"C2-long", "25"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows misaligned:\n%s", out)
	}
	if !strings.Contains(lines[0], "App") || !strings.Contains(lines[3], "C2-long") {
		t.Fatalf("content missing:\n%s", out)
	}
}

func TestOccupancy(t *testing.T) {
	out := Occupancy([]string{"C1", "C2"}, []int{0, 0, -1, 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lanes = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "C1") || strings.Count(lines[0], "█") != 2 {
		t.Fatalf("lane 0 wrong: %q", lines[0])
	}
	if strings.Count(lines[1], "█") != 1 {
		t.Fatalf("lane 1 wrong: %q", lines[1])
	}
}

func TestIntsCSV(t *testing.T) {
	if got := IntsCSV([]int{3, 4, 5}); got != "[3 4 5]" {
		t.Fatalf("IntsCSV = %q", got)
	}
	if got := IntsCSV(nil); got != "[]" {
		t.Fatalf("IntsCSV(nil) = %q", got)
	}
}
