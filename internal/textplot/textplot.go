// Package textplot renders small ASCII line plots and tables so the cmd
// tools can display the paper's figures in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name string
	Y    []float64
}

// Options sizes a plot.
type Options struct {
	Width  int // columns of the plot area (default 70)
	Height int // rows (default 18)
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Lines renders the series over a common x-index as an ASCII chart.
func Lines(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 70
	}
	if opt.Height <= 0 {
		opt.Height = 18
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if maxLen == 0 {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Y {
			c := 0
			if maxLen > 1 {
				c = i * (opt.Width - 1) / (maxLen - 1)
			}
			r := int(math.Round((hi - v) / (hi - lo) * float64(opt.Height-1)))
			if r >= 0 && r < opt.Height && c >= 0 && c < opt.Width {
				grid[r][c] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3g ┤\n", hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g ┼%s\n", lo, strings.Repeat("─", opt.Width))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%11s%s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// Table renders rows with a header, columns padded to equal width.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("─", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Occupancy renders a slot-occupancy timeline: one lane per application,
// '█' where the application holds the slot.
func Occupancy(names []string, occ []int) string {
	var b strings.Builder
	for i, n := range names {
		fmt.Fprintf(&b, "%-4s ", n)
		for _, holder := range occ {
			if holder == i {
				b.WriteString("█")
			} else {
				b.WriteString("·")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// IntsCSV renders an int slice compactly, e.g. "[3 4 3 3]".
func IntsCSV(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
