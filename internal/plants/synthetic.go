package plants

// Synthetic workload generation: seeded random control applications that
// scale the evaluation past the paper's six-application case study. Each
// archetype is a randomly drawn first-order LTI plant (open-loop stable or
// unstable) with a pole-placed fast TT controller and a pole-placed
// delay-tolerant ET controller, a settling requirement between the two
// loops' capabilities, and a heterogeneous disturbance inter-arrival bound.
// An archetype is instantiated many times under distinct names — the fleet
// pattern (hundreds of vehicles running the same control design) that makes
// large slots both realistic and, through the verifier's symmetry
// reduction, tractable to model-check.

import (
	"fmt"
	"math"
	"math/rand"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
)

// SyntheticOptions parameterises the generator. The same options and seed
// always produce the same workload.
type SyntheticOptions struct {
	// N is the number of applications to generate.
	N int
	// Archetypes is the number of distinct control designs; instances are
	// spread round-robin across them. 0 picks max(4, N/16) — fleets of
	// ~16 instances per design.
	Archetypes int
	// UnstableFrac is the fraction of archetypes drawn with an open-loop
	// unstable plant (pole > 1). Negative means the default 0.25.
	UnstableFrac float64
	// Seed drives the generator's randomness.
	Seed int64
}

// SyntheticDesign records the drawn parameters of one archetype.
type SyntheticDesign struct {
	A, B      float64 // plant x⁺ = A·x + B·u, y = x
	RhoT      float64 // closed-loop pole under the fast TT controller
	RhoE      float64 // double pole under the delayed ET controller
	JStar     int     // settling requirement (samples)
	R         int     // minimum disturbance inter-arrival (samples)
	X0        float64 // post-disturbance state
	Unstable  bool    // open-loop unstable plant
	Slack     bool    // high-patience design (large J* gap → deep slots)
	Instances int     // applications instantiated from this design
}

// SyntheticWorkload is a generated application set plus its provenance.
type SyntheticWorkload struct {
	Apps []App
	// ArchetypeOf maps an application index to its design index; instances
	// of one design share the plant, controllers, requirement and bounds,
	// so their switching profiles are identical (up to the name).
	ArchetypeOf []int
	Designs     []SyntheticDesign
}

// Synthetic generates a seeded random workload. Plants are first-order
// (the smallest order exhibiting the paper's fast/slow switching trade-off,
// keeping profile computation cheap at hundreds of applications); the TT
// controller places the closed-loop pole in [0.08, 0.30] (settling in 2–4
// samples) and the ET controller places a double pole of the delayed
// augmented loop in [0.82, 0.92] (settling in tens of samples), so every
// design needs the TT slot to meet its requirement but tolerates a bounded
// wait — exactly the regime the dimensioning flow arbitrates.
func Synthetic(opt SyntheticOptions) *SyntheticWorkload {
	if opt.N <= 0 {
		return &SyntheticWorkload{}
	}
	arch := opt.Archetypes
	if arch <= 0 {
		arch = opt.N / 16
		if arch < 4 {
			arch = 4
		}
	}
	if arch > opt.N {
		arch = opt.N
	}
	uf := opt.UnstableFrac
	if uf < 0 {
		uf = 0.25
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	w := &SyntheticWorkload{}
	for d := 0; d < arch; d++ {
		// Every sixth archetype is a slack design: deep slots (8+ fleet
		// instances) only arise from high-patience applications, and the
		// sweep wants a deterministic supply of them at every seed.
		slack := arch >= 6 && d%6 == 5
		des := drawDesign(rng, rng.Float64() < uf, slack)
		w.Designs = append(w.Designs, des)
	}
	for i := 0; i < opt.N; i++ {
		d := i % arch
		w.Designs[d].Instances++
		w.Apps = append(w.Apps, w.Designs[d].instantiate(
			fmt.Sprintf("A%02dx%02d", d, i/arch)))
		w.ArchetypeOf = append(w.ArchetypeOf, d)
	}
	return w
}

// drawDesign draws one archetype.
//
// Tight designs put the requirement J* 8–14 samples above the
// dedicated-slot settling time JT, which places the maximum tolerable wait
// T*w near that gap; their slots hold a handful of instances. Slack designs
// stretch the gap to ~22 samples over a fast-decaying plant, whose short
// dwell floor (Tdw− = 3, set by the held-input handover transient of the
// delayed ET controller) lets eight-plus instances rotate through one slot
// — the deep-slot workload the wide verifier exists for. r is drawn above
// J*; the computed T*w occasionally overtakes it (a plant can settle below
// tolerance during the wait itself), which the sweep repairs conservatively
// with Profile.ClampTwStar.
func drawDesign(rng *rand.Rand, unstable, slack bool) SyntheticDesign {
	des := SyntheticDesign{Unstable: unstable, Slack: slack}
	if slack {
		// Fast stable plant: small A keeps the ME handover kick
		// (a − ρT)·x small, so short dwells suffice at every wait.
		des.A = 0.22 + 0.06*rng.Float64()
		des.B = 0.8 + 0.7*rng.Float64()
		des.RhoT = 0.07 + 0.02*rng.Float64()
		des.RhoE = 0.875 + 0.01*rng.Float64()
		des.X0 = 1.0
		des.JStar = 24
		des.R = des.JStar + 2
		return des
	}
	if unstable {
		des.A = 1.01 + 0.11*rng.Float64()
	} else {
		des.A = 0.62 + 0.33*rng.Float64()
	}
	des.B = 0.5 + 1.5*rng.Float64()
	des.RhoT = 0.08 + 0.22*rng.Float64()
	des.RhoE = 0.82 + 0.10*rng.Float64()
	des.X0 = 0.6 + 0.8*rng.Float64()

	// JT for a scalar loop decaying at ρT from |x0|: first k with
	// |x0|·ρT^k ≤ SettleTol.
	jt := int(math.Ceil(math.Log(SettleTol/des.X0) / math.Log(des.RhoT)))
	if jt < 1 {
		jt = 1
	}
	des.JStar = jt + 8 + rng.Intn(7)
	des.R = des.JStar + 2 + rng.Intn(9)
	return des
}

// instantiate builds the named App of this design: the plant, the
// pole-placed controllers, and the requirement/disturbance parameters.
func (d SyntheticDesign) instantiate(name string) App {
	phi := mat.FromRows([][]float64{{d.A}})
	gamma := mat.ColVec([]float64{d.B})
	c := mat.RowVec([]float64{1})

	// TT mode: u = −kT·x gives x⁺ = (A − B·kT)x; place the pole at ρT.
	kT := (d.A - d.RhoT) / d.B

	// ET mode: state [x; uPrev] evolves by [[A, B], [−k1, −k2]] (one-sample
	// input delay, Eqs. 4–5). Placing a double pole at ρE:
	// trace = A − k2 = 2ρE and det = −A·k2 + B·k1 = ρE².
	k2 := d.A - 2*d.RhoE
	k1 := (d.RhoE*d.RhoE + d.A*k2) / d.B

	return App{
		Name:  name,
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{kT}),
		KE:    lti.NewFeedback([]float64{k1, k2}),
		JStar: d.JStar,
		R:     d.R,
		X0:    []float64{d.X0},
	}
}
