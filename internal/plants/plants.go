// Package plants is the paper's case-study library: the motivational DC
// motor position-control system (Sec. 3.1, Eqs. 6–9) and the six
// applications C1–C6 of Table 1, with every plant matrix, controller gain,
// requirement and disturbance parameter exactly as printed in the paper.
//
// All timing quantities are in samples of the common period H = 0.02 s.
package plants

import (
	"fmt"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
)

// H is the common sampling period (seconds) used by every application.
const H = 0.02

// SettleTol is the settling threshold: |y[k]| ≤ SettleTol for all k ≥ J
// (2 % of the unit disturbance).
const SettleTol = 0.02

// App bundles one control application: plant, the two controllers, its
// performance requirement and disturbance model.
type App struct {
	Name  string
	Plant *lti.System
	KT    lti.Feedback // fast controller, TT communication (order n)
	KE    lti.Feedback // slow controller, ET communication (order n+1)
	JStar int          // settling-time requirement J* (samples)
	R     int          // minimum disturbance inter-arrival time r (samples)
	X0    []float64    // post-disturbance state
}

// PaperRow holds the results Table 1 reports for an application, used to
// compare reproduction output against the paper.
type PaperRow struct {
	JT, JE, TwStar int
	TdwMinus       []int // indexed by Tw = 0..TwStar
	TdwPlus        []int
}

// Motivational returns the DC motor position-control plant of Eq. (6).
func Motivational() *lti.System {
	phi := mat.FromRows([][]float64{
		{1, 0.0182, 0.0068},
		{0, 0.7664, 0.5186},
		{0, -0.3260, 0.1011},
	})
	gamma := mat.ColVec([]float64{0.0015, 0.1944, 0.2717})
	c := mat.RowVec([]float64{1, 0, 0})
	return lti.MustSystem(phi, gamma, c, H)
}

// Motivational gains (Eqs. 7–9).
var (
	// MotivationalKT is the fast TT-mode gain of Eq. (7).
	MotivationalKT = lti.NewFeedback([]float64{30, 1.2626, 1.1071})
	// MotivationalKEStable is KsE of Eq. (8): switching with KT is stable.
	MotivationalKEStable = lti.NewFeedback([]float64{13.8921, 0.5773, 0.8672, 1.0866})
	// MotivationalKEUnstable is KuE of Eq. (9): switching with KT is unstable.
	MotivationalKEUnstable = lti.NewFeedback([]float64{2.9120, -0.6141, -1.0399, 0.1741})
)

// MotivationalX0 is the post-disturbance state of the Sec. 3.1 example.
var MotivationalX0 = []float64{1, 0, 0}

// C1 is DC motor position control [13] — the motivational plant with the
// stable gain pair (Table 1 row 1).
func C1() App {
	return App{
		Name:  "C1",
		Plant: Motivational(),
		KT:    MotivationalKT,
		KE:    MotivationalKEStable,
		JStar: 18, R: 25,
		X0: []float64{1, 0, 0},
	}
}

// C2 is DC motor position control [10] (Table 1 row 2).
func C2() App {
	phi := mat.FromRows([][]float64{
		{1, 0.0117, 0.0001},
		{0, 0.3059, 0.0018},
		{0, -0.0021, -1.2228e-5},
	})
	gamma := mat.ColVec([]float64{0.2966, 24.8672, 0.0797})
	c := mat.RowVec([]float64{1, 0, 0})
	return App{
		Name:  "C2",
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{0.1198, -0.0130, -2.9588}),
		KE:    lti.NewFeedback([]float64{0.0864, -0.0128, -1.6833, 0.4059}),
		JStar: 25, R: 100,
		X0: []float64{1, 0, 0},
	}
}

// C3 is DC motor speed control [3] (Table 1 row 3).
func C3() App {
	phi := mat.FromRows([][]float64{
		{0.9900, 0.0065},
		{-0.0974, 0.0177},
	})
	gamma := mat.ColVec([]float64{2.8097, 319.7919})
	c := mat.RowVec([]float64{1, 0})
	return App{
		Name:  "C3",
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{0.0500, -0.0002}),
		KE:    lti.NewFeedback([]float64{0.0336, 0.0004, 0.4453}),
		JStar: 20, R: 50,
		X0: []float64{1, 0},
	}
}

// C4 is DC motor speed control [10] (Table 1 row 4).
func C4() App {
	phi := mat.FromRows([][]float64{
		{0.8187, 0.0178},
		{-0.0004, 0.9608},
	})
	gamma := mat.ColVec([]float64{0.0004, 0.0392})
	c := mat.RowVec([]float64{1, 0})
	return App{
		Name:  "C4",
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{100.0000, 15.6226}),
		KE:    lti.NewFeedback([]float64{-77.8275, 24.3161, 1.0265}),
		JStar: 19, R: 40,
		X0: []float64{1, 0},
	}
}

// C5 is DC motor speed control [12] (Table 1 row 5).
func C5() App {
	phi := mat.FromRows([][]float64{
		{0.8187, 0.0156},
		{-0.0031, 0.7408},
	})
	gamma := mat.ColVec([]float64{0.0034, 0.3456})
	c := mat.RowVec([]float64{1, 0})
	return App{
		Name:  "C5",
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{10.0000, 1.0524}),
		KE:    lti.NewFeedback([]float64{-2.4223, 0.7014, 0.2950}),
		JStar: 18, R: 25,
		X0: []float64{1, 0},
	}
}

// C6 is a cruise control [10] (Table 1 row 6).
//
// Erratum: the paper prints Φ = −0.999, which makes both closed loops
// unstable (ρ(Φ−ΓKT) ≈ 1.30) and contradicts every Table 1 result for C6.
// With Φ = +0.999 — the physically correct discretisation of the CTMS
// cruise-control model ẋ = −(b/m)x + u/m — the reproduced JT = 11 and
// JE = 41 match Table 1 exactly, so we use +0.999.
func C6() App {
	phi := mat.FromRows([][]float64{{0.999}})
	gamma := mat.ColVec([]float64{1.999e-5})
	c := mat.RowVec([]float64{1})
	return App{
		Name:  "C6",
		Plant: lti.MustSystem(phi, gamma, c, H),
		KT:    lti.NewFeedback([]float64{15000}),
		KE:    lti.NewFeedback([]float64{8125.6, 0.8659}),
		JStar: 20, R: 100,
		X0: []float64{1},
	}
}

// CaseStudy returns all six applications in paper order C1..C6.
func CaseStudy() []App {
	return []App{C1(), C2(), C3(), C4(), C5(), C6()}
}

// ByName returns the named case-study application.
func ByName(name string) (App, error) {
	for _, a := range CaseStudy() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("plants: unknown application %q", name)
}

// PaperTable1 maps application name → the results the paper reports in
// Table 1 (for comparison in EXPERIMENTS.md; our reproduction recomputes
// all of these from the plant data).
var PaperTable1 = map[string]PaperRow{
	"C1": {
		JT: 9, JE: 35, TwStar: 11,
		TdwMinus: []int{3, 4, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5},
		TdwPlus:  []int{6, 6, 5, 5, 5, 6, 5, 5, 4, 4, 5, 5},
	},
	"C2": {
		JT: 15, JE: 50, TwStar: 13,
		TdwMinus: []int{7, 7, 6, 7, 6, 7, 6, 7, 6, 7, 6, 7, 7, 8},
		TdwPlus:  []int{10, 10, 9, 10, 8, 9, 9, 10, 8, 8, 9, 8, 8, 8},
	},
	"C3": {
		JT: 10, JE: 31, TwStar: 15,
		TdwMinus: []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4},
		TdwPlus:  []int{8, 8, 7, 7, 7, 6, 6, 6, 6, 5, 5, 5, 5, 4, 4, 4},
	},
	"C4": {
		JT: 10, JE: 31, TwStar: 12,
		TdwMinus: []int{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
		TdwPlus:  []int{9, 8, 8, 8, 8, 7, 7, 7, 7, 6, 6, 6, 5},
	},
	"C5": {
		JT: 10, JE: 25, TwStar: 12,
		TdwMinus: []int{4, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4},
		TdwPlus:  []int{9, 8, 7, 8, 7, 6, 7, 6, 5, 5, 4, 4, 4},
	},
	"C6": {
		JT: 11, JE: 41, TwStar: 12,
		TdwMinus: []int{7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 7, 8, 8},
		TdwPlus:  []int{11, 11, 10, 10, 10, 10, 9, 9, 9, 8, 8, 8, 8},
	},
}
