package plants

import (
	"testing"

	"tightcps/internal/lti"
	"tightcps/internal/mat"
)

func TestCaseStudyWellFormed(t *testing.T) {
	apps := CaseStudy()
	if len(apps) != 6 {
		t.Fatalf("case study has %d apps", len(apps))
	}
	for _, a := range apps {
		if a.Plant.H != H {
			t.Errorf("%s: sampling period %v", a.Name, a.Plant.H)
		}
		if a.KT.Order() != a.Plant.Order() {
			t.Errorf("%s: KT order %d vs plant %d", a.Name, a.KT.Order(), a.Plant.Order())
		}
		if a.KE.Order() != a.Plant.Order()+1 {
			t.Errorf("%s: KE order %d vs augmented %d", a.Name, a.KE.Order(), a.Plant.Order()+1)
		}
		if len(a.X0) != a.Plant.Order() {
			t.Errorf("%s: X0 length %d", a.Name, len(a.X0))
		}
		if a.R <= a.JStar {
			t.Errorf("%s: r=%d ≤ J*=%d violates the sporadic model", a.Name, a.R, a.JStar)
		}
	}
}

// TestAllClosedLoopsStable: with the documented C6 erratum corrected, every
// (plant, KT) and (augmented plant, KE) pair is Schur stable — the paper's
// design precondition.
func TestAllClosedLoopsStable(t *testing.T) {
	for _, a := range CaseStudy() {
		rT, err := mat.SpectralRadius(lti.ClosedLoop(a.Plant, a.KT))
		if err != nil || rT >= 1 {
			t.Errorf("%s: MT loop spectral radius %.4f (err=%v)", a.Name, rT, err)
		}
		rE, err := mat.SpectralRadius(lti.ClosedLoop(a.Plant.Augmented(), a.KE))
		if err != nil || rE >= 1 {
			t.Errorf("%s: ME loop spectral radius %.4f (err=%v)", a.Name, rE, err)
		}
	}
}

// TestAllPlantsControllable: each case-study plant is controllable (needed
// for the pole-placement designs the paper cites).
func TestAllPlantsControllable(t *testing.T) {
	for _, a := range CaseStudy() {
		if !a.Plant.IsControllable() {
			t.Errorf("%s: plant not controllable", a.Name)
		}
	}
}

func TestPaperTable1Consistent(t *testing.T) {
	for name, row := range PaperTable1 {
		if len(row.TdwMinus) != row.TwStar+1 {
			t.Errorf("%s: Tdw− has %d entries, T*w=%d", name, len(row.TdwMinus), row.TwStar)
		}
		if len(row.TdwPlus) != row.TwStar+1 {
			t.Errorf("%s: Tdw+ has %d entries, T*w=%d", name, len(row.TdwPlus), row.TwStar)
		}
		for i := range row.TdwMinus {
			if row.TdwMinus[i] > row.TdwPlus[i] {
				t.Errorf("%s: paper table has Tdw−[%d] > Tdw+[%d]", name, i, i)
			}
		}
		if row.JT >= row.JE {
			t.Errorf("%s: paper JT=%d ≥ JE=%d", name, row.JT, row.JE)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("C3")
	if err != nil || a.Name != "C3" {
		t.Fatalf("ByName(C3) = %v, %v", a.Name, err)
	}
	if _, err := ByName("C9"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestSwitchingPlantAdapter(t *testing.T) {
	a := C1()
	p := SwitchingPlant(a)
	if p.Name != a.Name || p.JStar != a.JStar || p.R != a.R || p.Sys != a.Plant {
		t.Fatalf("adapter mismatch: %+v", p)
	}
}

// TestProfilesCacheStable: repeated Profiles() calls return the same map
// (memoised), and ProfileList respects order.
func TestProfilesCacheStable(t *testing.T) {
	m1, err := Profiles()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Profiles()
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1 {
		if m1[k] != m2[k] {
			t.Fatalf("cache returned different pointers for %s", k)
		}
	}
	ps, err := ProfileList("C2", "C1")
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Name != "C2" || ps[1].Name != "C1" {
		t.Fatalf("ProfileList order wrong: %s, %s", ps[0].Name, ps[1].Name)
	}
	if _, err := ProfileList("C9"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestMotivationalGainsMatchC1: C1 is the motivational system with the
// stable gain pair.
func TestMotivationalGainsMatchC1(t *testing.T) {
	a := C1()
	if !mat.EqualApprox(a.KT.K, MotivationalKT.K, 0) {
		t.Fatal("C1 KT differs from Eq. (7)")
	}
	if !mat.EqualApprox(a.KE.K, MotivationalKEStable.K, 0) {
		t.Fatal("C1 KE differs from Eq. (8)")
	}
	if !mat.EqualApprox(Motivational().Phi, a.Plant.Phi, 0) {
		t.Fatal("C1 plant differs from Eq. (6)")
	}
}
