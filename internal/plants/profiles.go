package plants

import (
	"sync"

	"tightcps/internal/switching"
)

// SwitchingPlant adapts an App to the switching-analysis input type.
func SwitchingPlant(a App) switching.Plant {
	return switching.Plant{
		Name: a.Name, Sys: a.Plant, KT: a.KT, KE: a.KE,
		X0: a.X0, JStar: a.JStar, R: a.R,
	}
}

var (
	profOnce sync.Once
	profMap  map[string]*switching.Profile
	profErr  error
)

// Profiles computes (once, then caches) the switching profiles of all six
// case-study applications. The computation is the Table 1 sweep and takes
// a few seconds per application.
func Profiles() (map[string]*switching.Profile, error) {
	profOnce.Do(func() {
		profMap = make(map[string]*switching.Profile, 6)
		for _, a := range CaseStudy() {
			p, err := switching.Compute(SwitchingPlant(a), switching.Config{})
			if err != nil {
				profErr = err
				return
			}
			profMap[a.Name] = p
		}
	})
	return profMap, profErr
}

// ProfileList returns the cached profiles for the named applications, in
// the given order.
func ProfileList(names ...string) ([]*switching.Profile, error) {
	m, err := Profiles()
	if err != nil {
		return nil, err
	}
	out := make([]*switching.Profile, 0, len(names))
	for _, n := range names {
		p, ok := m[n]
		if !ok {
			return nil, &unknownAppError{n}
		}
		out = append(out, p)
	}
	return out, nil
}

type unknownAppError struct{ name string }

func (e *unknownAppError) Error() string { return "plants: unknown application " + e.name }
