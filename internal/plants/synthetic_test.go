package plants

import (
	"testing"

	"tightcps/internal/switching"
)

func TestSyntheticDeterministic(t *testing.T) {
	opt := SyntheticOptions{N: 40, Seed: 7}
	a, b := Synthetic(opt), Synthetic(opt)
	if len(a.Apps) != 40 || len(b.Apps) != 40 {
		t.Fatalf("generated %d/%d apps, want 40", len(a.Apps), len(b.Apps))
	}
	for i := range a.Designs {
		if a.Designs[i] != b.Designs[i] {
			t.Fatalf("design %d differs across identical seeds", i)
		}
	}
	c := Synthetic(SyntheticOptions{N: 40, Seed: 8})
	same := true
	for i := range a.Designs {
		if a.Designs[i] != c.Designs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical designs")
	}
}

func TestSyntheticShape(t *testing.T) {
	w := Synthetic(SyntheticOptions{N: 50, Archetypes: 5, UnstableFrac: 0.5, Seed: 3})
	if len(w.Apps) != 50 || len(w.Designs) != 5 {
		t.Fatalf("apps=%d designs=%d", len(w.Apps), len(w.Designs))
	}
	unstable := 0
	for _, d := range w.Designs {
		if d.Instances != 10 {
			t.Errorf("design instances = %d, want 10", d.Instances)
		}
		if d.Unstable {
			unstable++
			if d.A <= 1 {
				t.Errorf("unstable design has pole %v ≤ 1", d.A)
			}
		} else if d.A >= 1 {
			t.Errorf("stable design has pole %v ≥ 1", d.A)
		}
	}
	seen := map[string]bool{}
	for i, a := range w.Apps {
		if seen[a.Name] {
			t.Fatalf("duplicate app name %s", a.Name)
		}
		seen[a.Name] = true
		d := w.Designs[w.ArchetypeOf[i]]
		if a.JStar != d.JStar || a.R != d.R {
			t.Errorf("%s does not match its design", a.Name)
		}
	}
}

// TestSyntheticProfiles: generated designs must profile successfully and
// land inside the verifier's encoding envelope — a nontrivial requirement
// (JT ≤ J* < JE), a positive tolerable wait, dwell tables within the
// packed-encoding caps, and the sporadic-model constraint r > T*w.
func TestSyntheticProfiles(t *testing.T) {
	w := Synthetic(SyntheticOptions{N: 6, Archetypes: 6, UnstableFrac: 0.5, Seed: 1})
	for i, a := range w.Apps {
		p, err := switching.Compute(SwitchingPlant(a), switching.Config{Horizon: 800})
		if err != nil {
			t.Fatalf("%s (design %+v): %v", a.Name, w.Designs[i], err)
		}
		if p.JT > a.JStar {
			t.Errorf("%s: JT %d exceeds J* %d", a.Name, p.JT, a.JStar)
		}
		if p.TwStar < 1 {
			t.Errorf("%s: T*w = %d, want ≥ 1", a.Name, p.TwStar)
		}
		if p.MaxTdwPlus() > 15 {
			t.Errorf("%s: max Tdw+ %d exceeds the encoding cap 15", a.Name, p.MaxTdwPlus())
		}
		if p.R <= p.TwStar {
			t.Errorf("%s: r %d ≤ T*w %d", a.Name, p.R, p.TwStar)
		}
	}
}
