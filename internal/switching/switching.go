// Package switching implements the paper's core offline analysis (Sec. 3):
// the bi-modal switched closed loop and the exhaustive simulation over all
// switching sequences permitted by the proposed strategy, producing for each
// application the settling times JT and JE, the dwell-time tables Tdw−(Tw)
// and Tdw+(Tw), and the maximum tolerable wait T*w.
//
// Semantics (shared with the scheduler, the co-simulator and the verifier):
// a disturbance at sample 0 puts the plant at x0 with the held input u[−1]=0.
// The application runs in mode ME (controller KE over ET communication, one
// sample input delay) for Tw samples, then in mode MT (controller KT over a
// TT slot, no delay) for Tdw samples, then in ME again until it settles.
// Settling time J is the first sample index after which |y| never exceeds
// the tolerance.
package switching

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"tightcps/internal/lti"
)

// Config parameterises the offline profile computation.
type Config struct {
	// Tol is the settling threshold on |y| (default 0.02).
	Tol float64
	// Horizon is the simulation length in samples used to decide settling
	// (default 4000). Trajectories that have not settled within Horizon are
	// treated as never settling.
	Horizon int
	// MaxDwell caps the dwell times examined (default 4·J*; the useful
	// dwell never exceeds the time to settle fully inside MT).
	MaxDwell int
	// TwGranularity coarsens the wait-time grid: tables are computed only
	// for Tw that are multiples of this value, and lookups round the actual
	// wait *up* to the next grid point (conservative). Default 1 (exact).
	TwGranularity int
	// Workers bounds the goroutines used for the per-Tw dwell sweeps
	// (they are independent). 0 uses GOMAXPROCS; 1 forces serial. The
	// result is identical either way.
	Workers int
}

func (c Config) withDefaults(jStar int) Config {
	if c.Tol <= 0 {
		c.Tol = 0.02
	}
	if c.Horizon <= 0 {
		c.Horizon = 4000
	}
	if c.MaxDwell <= 0 {
		c.MaxDwell = 4 * jStar
		if c.MaxDwell < 40 {
			c.MaxDwell = 40
		}
	}
	if c.TwGranularity <= 0 {
		c.TwGranularity = 1
	}
	return c
}

// Profile is the precomputed switching profile of one application — exactly
// the data a Table 1 row reports, plus bookkeeping.
type Profile struct {
	Name  string
	JStar int // settling requirement (samples)
	R     int // minimum disturbance inter-arrival (samples)

	JT int // settling time with a dedicated TT slot (pure MT)
	JE int // settling time on ET only (pure ME); may exceed Horizon sentinel

	TwStar   int   // maximum wait for which the requirement remains attainable
	TdwMinus []int // TdwMinus[Tw]: minimum dwell to meet J ≤ J*, Tw = 0..TwStar
	TdwPlus  []int // TdwPlus[Tw]: dwell beyond which J cannot improve
	JBest    []int // JBest[Tw]: settling time achieved at dwell TdwPlus[Tw]
	JAtMin   []int // JAtMin[Tw]: settling time achieved at dwell TdwMinus[Tw]

	Granularity int // Tw grid step used (1 = exact)
}

// ErrRequirementInfeasible is returned when even a dedicated TT slot cannot
// meet the requirement (JT > J*).
var ErrRequirementInfeasible = errors.New("switching: requirement infeasible even with dedicated TT slot")

// ErrRequirementTrivial is returned when ET alone already meets the
// requirement (JE ≤ J*): the application does not need a TT slot at all.
var ErrRequirementTrivial = errors.New("switching: requirement already met by ET-only controller")

// Plant bundles what the analysis needs about one application.
type Plant struct {
	Name  string
	Sys   *lti.System
	KT    lti.Feedback // order n
	KE    lti.Feedback // order n+1 (delayed/augmented design)
	X0    []float64    // post-disturbance state
	JStar int
	R     int
}

// Simulator simulates the switched closed loop for arbitrary mode
// sequences. It is also used by the co-simulation layer.
type Simulator struct {
	sys *lti.System
	kT  lti.Feedback
	kE  lti.Feedback
	n   int

	x     []float64 // current plant state
	uPrev float64   // input still held/applied from previous sample
	z     []float64 // scratch augmented state
}

// NewSimulator returns a simulator positioned at the post-disturbance state.
func NewSimulator(p Plant) *Simulator {
	if p.KT.Order() != p.Sys.Order() || p.KE.Order() != p.Sys.Order()+1 {
		panic(lti.ErrShape)
	}
	s := &Simulator{sys: p.Sys, kT: p.KT, kE: p.KE, n: p.Sys.Order()}
	s.Reset(p.X0)
	return s
}

// Reset places the simulator at state x0 with zero held input (steady state
// immediately before the disturbance).
func (s *Simulator) Reset(x0 []float64) {
	s.x = append(s.x[:0], x0...)
	s.uPrev = 0
	if s.z == nil {
		s.z = make([]float64, s.n+1)
	}
}

// Output returns the current plant output y.
func (s *Simulator) Output() float64 { return s.sys.Output(s.x) }

// State returns a copy of the current plant state.
func (s *Simulator) State() []float64 { return append([]float64(nil), s.x...) }

// StepMT advances one sample in mode MT: u = −KT·x applied immediately.
func (s *Simulator) StepMT() {
	u := s.kT.U(s.x)
	s.x = s.sys.Step(s.x, u)
	s.uPrev = u
}

// StepME advances one sample in mode ME: the held input uPrev is applied,
// and the ET controller's command −KE·[x; uPrev] becomes the next held
// input (one-sample delay, Eqs. 4–5).
func (s *Simulator) StepME() {
	copy(s.z, s.x)
	s.z[s.n] = s.uPrev
	cmd := s.kE.U(s.z)
	s.x = s.sys.Step(s.x, s.uPrev)
	s.uPrev = cmd
}

// Mode identifies a communication/controller mode.
type Mode uint8

// Modes of the switched system.
const (
	ME Mode = iota // event-triggered: KE, one-sample delay
	MT             // time-triggered: KT, negligible delay
)

// SimulateSequence runs the switched loop from x0 through the given mode
// sequence (one entry per sample); samples beyond the sequence stay in ME.
// It returns the output trajectory of length horizon+1.
func SimulateSequence(p Plant, seq []Mode, horizon int) []float64 {
	s := NewSimulator(p)
	y := make([]float64, horizon+1)
	for k := 0; k <= horizon; k++ {
		y[k] = s.Output()
		if k == horizon {
			break
		}
		m := ME
		if k < len(seq) {
			m = seq[k]
		}
		if m == MT {
			s.StepMT()
		} else {
			s.StepME()
		}
	}
	return y
}

// SettleAfterSwitch returns the settling time J (in samples) of the
// strategy "wait Tw samples in ME, dwell in MT, then ME forever", and
// whether it settles within the horizon.
func SettleAfterSwitch(p Plant, tw, dwell int, cfg Config) (int, bool) {
	cfg = cfg.withDefaults(p.JStar)
	s := NewSimulator(p)
	return settleFrom(s, tw, dwell, cfg)
}

// settleFrom runs the wait/dwell/return pattern on an already-reset
// simulator and measures settling.
func settleFrom(s *Simulator, tw, dwell int, cfg Config) (int, bool) {
	y := make([]float64, cfg.Horizon+1)
	for k := 0; k <= cfg.Horizon; k++ {
		y[k] = s.Output()
		if k == cfg.Horizon {
			break
		}
		switch {
		case k < tw:
			s.StepME()
		case k < tw+dwell:
			s.StepMT()
		default:
			s.StepME()
		}
	}
	return lti.SettlingIndex(y, cfg.Tol)
}

// Compute derives the full switching profile of an application by
// exhaustive simulation over all (Tw, Tdw) combinations allowed by the
// strategy, exactly as Sec. 3 prescribes.
func Compute(p Plant, cfg Config) (*Profile, error) {
	cfg = cfg.withDefaults(p.JStar)
	if p.JStar <= 0 {
		return nil, fmt.Errorf("switching: J* must be positive, got %d", p.JStar)
	}

	prof := &Profile{Name: p.Name, JStar: p.JStar, R: p.R, Granularity: cfg.TwGranularity}

	// JT: dedicated slot = MT from the disturbance on.
	jt, okT := SettleAfterSwitch(p, 0, cfg.Horizon, cfg)
	if !okT {
		return nil, fmt.Errorf("switching: %s never settles in MT within horizon %d", p.Name, cfg.Horizon)
	}
	prof.JT = jt
	// JE: ET only.
	je, okE := SettleAfterSwitch(p, cfg.Horizon, 0, cfg)
	if !okE {
		je = math.MaxInt32 // ET-only loop too slow to settle in horizon (still usable if stable)
	}
	prof.JE = je

	if jt > p.JStar {
		return prof, ErrRequirementInfeasible
	}
	if je <= p.JStar {
		return prof, ErrRequirementTrivial
	}

	// Sweep every Tw until the requirement becomes unattainable; the per-Tw
	// dwell sweeps are independent, so batches run in parallel and results
	// are truncated at the first unattainable wait (identical to a serial
	// scan).
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type row struct {
		minDwell, plusDwell, jAtMin, jBest int
		attainable                         bool
	}
	done := false
	for base := 0; !done; base += workers {
		rows := make([]row, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := &rows[w]
				r.minDwell, r.plusDwell, r.jAtMin, r.jBest, r.attainable = sweepDwell(p, base+w, cfg)
			}(w)
		}
		wg.Wait()
		for w, r := range rows {
			if !r.attainable {
				done = true
				break
			}
			prof.TdwMinus = append(prof.TdwMinus, r.minDwell)
			prof.TdwPlus = append(prof.TdwPlus, r.plusDwell)
			prof.JAtMin = append(prof.JAtMin, r.jAtMin)
			prof.JBest = append(prof.JBest, r.jBest)
			prof.TwStar = base + w
		}
	}
	if len(prof.TdwMinus) == 0 {
		return prof, ErrRequirementInfeasible
	}
	if cfg.TwGranularity > 1 {
		return coarsen(prof, cfg.TwGranularity), nil
	}
	return prof, nil
}

// coarsen merges the exact per-Tw tables onto a grid of step g. Because
// Tdw− is not monotone in Tw, simply sampling grid points would not be safe;
// instead each grid cell stores the *widest window valid for every wait it
// covers*: max Tdw− and min Tdw+ over the cell (cell i covers the waits
// ((i−1)·g, i·g] that Lookup rounds up to it, and cell 0 covers Tw = 0).
// Cells whose merged window is empty, and cells extending past the exact
// T*w, truncate the coarse table — the memory/conservativeness trade-off
// the paper describes.
func coarsen(exact *Profile, g int) *Profile {
	c := &Profile{
		Name: exact.Name, JStar: exact.JStar, R: exact.R,
		JT: exact.JT, JE: exact.JE, Granularity: g,
	}
	for i := 0; ; i++ {
		lo := (i-1)*g + 1
		if i == 0 {
			lo = 0
		}
		hi := i * g
		if hi > exact.TwStar {
			break // cell not fully covered by the exact table
		}
		dm, dp := 0, 1<<30
		jb, jm := 0, 0
		for tw := lo; tw <= hi; tw++ {
			if exact.TdwMinus[tw] > dm {
				dm = exact.TdwMinus[tw]
				jm = exact.JAtMin[tw]
			}
			if exact.TdwPlus[tw] < dp {
				dp = exact.TdwPlus[tw]
			}
			if exact.JBest[tw] > jb {
				jb = exact.JBest[tw]
			}
		}
		if dm > dp {
			break // no single window covers the whole cell
		}
		c.TdwMinus = append(c.TdwMinus, dm)
		c.TdwPlus = append(c.TdwPlus, dp)
		c.JAtMin = append(c.JAtMin, jm)
		c.JBest = append(c.JBest, jb)
		c.TwStar = hi
	}
	return c
}

// sweepDwell scans dwell = 1..MaxDwell at fixed Tw. It returns the minimum
// dwell meeting J ≤ J*, the smallest dwell achieving the best attainable J
// (= Tdw+), and the settling times at those two dwells. attainable is false
// when no dwell meets the requirement (Tw > T*w).
func sweepDwell(p Plant, tw int, cfg Config) (minDwell, plusDwell, jAtMin, jBest int, attainable bool) {
	js := make([]int, cfg.MaxDwell+1)
	for d := 1; d <= cfg.MaxDwell; d++ {
		j, ok := SettleAfterSwitch(p, tw, d, cfg)
		if !ok {
			j = math.MaxInt32
		}
		js[d] = j
	}
	minDwell = -1
	for d := 1; d <= cfg.MaxDwell; d++ {
		if js[d] <= p.JStar {
			minDwell = d
			jAtMin = js[d]
			break
		}
	}
	if minDwell < 0 {
		return 0, 0, 0, 0, false
	}
	// Tdw+: the first dwell attaining the minimum achievable settling time.
	// Staying in MT beyond it "will not get improved" (and, because the
	// switch-back transient matters, can even be slightly worse), which is
	// exactly the paper's reading — e.g. for C1 at Tw=0 it reports Tdw+=6
	// with J equal to the dedicated-slot JT.
	jBest = js[1]
	plusDwell = 1
	for d := 2; d <= cfg.MaxDwell; d++ {
		if js[d] < jBest {
			jBest = js[d]
			plusDwell = d
		}
	}
	return minDwell, plusDwell, jAtMin, jBest, true
}

// Lookup returns (Tdw−, Tdw+) for an observed wait tw, applying the
// conservative rounding of the Tw grid (waits between grid points use the
// next grid point's dwell requirements). ok is false when tw exceeds T*w.
func (p *Profile) Lookup(tw int) (dtMinus, dtPlus int, ok bool) {
	if tw < 0 || tw > p.TwStar {
		return 0, 0, false
	}
	idx := (tw + p.Granularity - 1) / p.Granularity
	if idx >= len(p.TdwMinus) {
		return 0, 0, false
	}
	return p.TdwMinus[idx], p.TdwPlus[idx], true
}

// Clone returns a copy of the profile under a new name. The dwell tables
// are shared (they are read-only after computation), so instantiating a
// fleet of applications from one computed design is free.
func (p *Profile) Clone(name string) *Profile {
	cp := *p
	cp.Name = name
	return &cp
}

// ClampTwStar truncates the profile to tolerate waits of at most maxTw
// samples, dropping the table rows beyond it. The result is strictly more
// conservative (the application claims less patience than it has), so every
// guarantee derived from the clamped profile also holds for the original.
// Used to restore the sporadic-model invariant r > T*w when a synthetic
// application settles below tolerance during the wait itself (which lets
// the computed T*w exceed J* and overtake r), and to fit encoding caps.
func (p *Profile) ClampTwStar(maxTw int) {
	if maxTw < 0 {
		maxTw = 0
	}
	if p.TwStar <= maxTw {
		return
	}
	n := maxTw/p.Granularity + 1
	p.TwStar = (n - 1) * p.Granularity
	p.TdwMinus = p.TdwMinus[:n]
	p.TdwPlus = p.TdwPlus[:n]
	if len(p.JAtMin) >= n {
		p.JAtMin = p.JAtMin[:n]
	}
	if len(p.JBest) >= n {
		p.JBest = p.JBest[:n]
	}
}

// MaxTdwMinus returns max over Tw of Tdw−(Tw) — the tie-break key the
// paper's first-fit mapping uses (called T−*dw there).
func (p *Profile) MaxTdwMinus() int {
	m := 0
	for _, v := range p.TdwMinus {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxTdwPlus returns max over Tw of Tdw+(Tw) — an upper bound on any
// occupant's slot tenure, used to bound verifier state encodings.
func (p *Profile) MaxTdwPlus() int {
	m := 0
	for _, v := range p.TdwPlus {
		if v > m {
			m = v
		}
	}
	return m
}

// Validate cross-checks internal consistency of a profile: table lengths,
// Tdw− ≤ Tdw+, and that every dwell in [Tdw−, Tdw+] still meets the
// requirement (the scheduler may preempt anywhere in that window, so the
// whole window must be safe). It re-simulates, so it is not free.
func (p *Profile) Validate(pl Plant, cfg Config) error {
	cfg = cfg.withDefaults(p.JStar)
	want := p.TwStar/p.Granularity + 1
	if len(p.TdwMinus) != want || len(p.TdwPlus) != want {
		return fmt.Errorf("switching: table length %d/%d, want %d", len(p.TdwMinus), len(p.TdwPlus), want)
	}
	for i := range p.TdwMinus {
		if p.TdwMinus[i] > p.TdwPlus[i] {
			return fmt.Errorf("switching: Tdw−[%d]=%d > Tdw+[%d]=%d", i, p.TdwMinus[i], i, p.TdwPlus[i])
		}
		tw := i * p.Granularity
		for d := p.TdwMinus[i]; d <= p.TdwPlus[i]; d++ {
			j, ok := SettleAfterSwitch(pl, tw, d, cfg)
			if !ok || j > p.JStar {
				return fmt.Errorf("switching: dwell %d in window [%d,%d] at Tw=%d violates J*: J=%d",
					d, p.TdwMinus[i], p.TdwPlus[i], tw, j)
			}
		}
	}
	return nil
}
