package switching

import "testing"

func clampProfile() *Profile {
	return &Profile{
		Name: "P", JStar: 12, R: 9, TwStar: 11, Granularity: 1,
		TdwMinus: []int{3, 3, 3, 2, 2, 2, 2, 1, 1, 2, 2, 2},
		TdwPlus:  []int{5, 5, 5, 4, 4, 4, 4, 3, 3, 4, 4, 4},
		JAtMin:   make([]int, 12), JBest: make([]int, 12),
	}
}

func TestClampTwStar(t *testing.T) {
	p := clampProfile()
	p.ClampTwStar(8)
	if p.TwStar != 8 || len(p.TdwMinus) != 9 || len(p.TdwPlus) != 9 {
		t.Fatalf("clamped to T*w=%d, tables %d/%d entries", p.TwStar, len(p.TdwMinus), len(p.TdwPlus))
	}
	if _, _, ok := p.Lookup(8); !ok {
		t.Fatal("Lookup(8) failed after clamping to 8")
	}
	if _, _, ok := p.Lookup(9); ok {
		t.Fatal("Lookup(9) succeeded past the clamp")
	}
	// Clamping above the current T*w is a no-op.
	q := clampProfile()
	q.ClampTwStar(20)
	if q.TwStar != 11 || len(q.TdwMinus) != 12 {
		t.Fatalf("no-op clamp changed the profile: T*w=%d", q.TwStar)
	}
	// Coarse grids clamp to the last fully-covered grid point.
	g := clampProfile()
	g.Granularity = 3
	g.TdwMinus, g.TdwPlus = g.TdwMinus[:4], g.TdwPlus[:4] // cells 0,3,6,9
	g.JAtMin, g.JBest = g.JAtMin[:4], g.JBest[:4]
	g.TwStar = 9
	g.ClampTwStar(8)
	if g.TwStar != 6 || len(g.TdwMinus) != 3 {
		t.Fatalf("coarse clamp: T*w=%d, %d cells", g.TwStar, len(g.TdwMinus))
	}
}

func TestCloneIndependentName(t *testing.T) {
	p := clampProfile()
	c := p.Clone("Q")
	if c.Name != "Q" || p.Name != "P" {
		t.Fatalf("clone names: %s/%s", c.Name, p.Name)
	}
	if c.TwStar != p.TwStar || &c.TdwMinus[0] != &p.TdwMinus[0] {
		t.Fatal("clone must share the computed tables")
	}
	// Clamping a clone must not shrink the original.
	c.ClampTwStar(5)
	if p.TwStar != 11 || len(p.TdwMinus) != 12 {
		t.Fatal("clamping a clone mutated the original profile")
	}
}
