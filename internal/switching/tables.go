package switching

import (
	"fmt"
	"math"
	"sort"
)

// RLETable is a run-length-encoded dwell-time table. The paper notes that
// Tdw− and Tdw+ take only a few distinct values, so storing (length, value)
// runs is the memory-efficient representation it suggests for in-ECU use.
type RLETable struct {
	Runs []RLERun
}

// RLERun is one run of equal table entries.
type RLERun struct {
	Len   int
	Value int
}

// EncodeRLE compresses a dwell table.
func EncodeRLE(table []int) RLETable {
	var out RLETable
	for _, v := range table {
		if n := len(out.Runs); n > 0 && out.Runs[n-1].Value == v {
			out.Runs[n-1].Len++
			continue
		}
		out.Runs = append(out.Runs, RLERun{Len: 1, Value: v})
	}
	return out
}

// Decode expands the table back to a flat slice.
func (t RLETable) Decode() []int {
	var out []int
	for _, r := range t.Runs {
		for i := 0; i < r.Len; i++ {
			out = append(out, r.Value)
		}
	}
	return out
}

// Len returns the decoded length.
func (t RLETable) Len() int {
	n := 0
	for _, r := range t.Runs {
		n += r.Len
	}
	return n
}

// At returns entry i without decoding.
func (t RLETable) At(i int) int {
	for _, r := range t.Runs {
		if i < r.Len {
			return r.Value
		}
		i -= r.Len
	}
	panic(fmt.Sprintf("switching: RLE index %d out of range", i))
}

// Words returns the number of (len, value) pairs — the storage cost the
// paper's memory/conservativeness trade-off discussion is about.
func (t RLETable) Words() int { return len(t.Runs) }

// SurfacePoint is one (Tw, Tdw) → J sample of the Fig. 3 surface.
type SurfacePoint struct {
	Tw, Tdw int
	J       int     // settling time in samples (MaxInt32 if unsettled)
	JSec    float64 // settling time in seconds
}

// Surface computes the settling time for every switching combination
// Tw ∈ [0, twMax], Tdw ∈ [0, dwMax] — the data behind Fig. 3. Points that
// do not settle within the horizon carry J = MaxInt32 and JSec = +Inf.
func Surface(p Plant, twMax, dwMax int, cfg Config) []SurfacePoint {
	cfg = cfg.withDefaults(p.JStar)
	out := make([]SurfacePoint, 0, (twMax+1)*(dwMax+1))
	for tw := 0; tw <= twMax; tw++ {
		for d := 0; d <= dwMax; d++ {
			j, ok := SettleAfterSwitch(p, tw, d, cfg)
			pt := SurfacePoint{Tw: tw, Tdw: d, J: j}
			if !ok {
				pt.J = math.MaxInt32
				pt.JSec = math.Inf(1)
			} else {
				pt.JSec = float64(j) * p.Sys.H
			}
			out = append(out, pt)
		}
	}
	return out
}

// SurfaceStats summarises a surface for quick comparisons: the worst and
// best settling times over the sampled region (ignoring unsettled points).
func SurfaceStats(pts []SurfacePoint) (minJ, maxJ int, unsettled int) {
	minJ, maxJ = math.MaxInt32, 0
	for _, p := range pts {
		if p.J == math.MaxInt32 {
			unsettled++
			continue
		}
		if p.J < minJ {
			minJ = p.J
		}
		if p.J > maxJ {
			maxJ = p.J
		}
	}
	return minJ, maxJ, unsettled
}

// DistinctValues returns the sorted distinct entries of a dwell table —
// the paper's observation that the tables take "only a few values".
func DistinctValues(table []int) []int {
	seen := map[int]bool{}
	for _, v := range table {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
