package switching_test

import (
	"errors"
	"math"
	"testing"

	"tightcps/internal/lti"
	"tightcps/internal/plants"
	. "tightcps/internal/switching"
)

func plantOf(a plants.App) Plant {
	return Plant{Name: a.Name, Sys: a.Plant, KT: a.KT, KE: a.KE, X0: a.X0, JStar: a.JStar, R: a.R}
}

func computeAll(t *testing.T) map[string]*Profile {
	t.Helper()
	out := map[string]*Profile{}
	for _, a := range plants.CaseStudy() {
		p, err := Compute(plantOf(a), Config{})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		out[a.Name] = p
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxAbsDiff returns the largest |a[i]−b[i]| (∞ when lengths differ).
func maxAbsDiff(a, b []int) int {
	if len(a) != len(b) {
		return math.MaxInt32
	}
	m := 0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestProfileC1MatchesPaperExactly pins the headline reproduction: every
// number of Table 1 row C1 (the motivational system) is reproduced exactly.
func TestProfileC1MatchesPaperExactly(t *testing.T) {
	p, err := Compute(plantOf(plants.C1()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := plants.PaperTable1["C1"]
	if p.JT != want.JT || p.JE != want.JE || p.TwStar != want.TwStar {
		t.Fatalf("scalars: JT=%d/%d JE=%d/%d Tw*=%d/%d", p.JT, want.JT, p.JE, want.JE, p.TwStar, want.TwStar)
	}
	if !intsEqual(p.TdwMinus, want.TdwMinus) {
		t.Fatalf("Tdw−: got %v want %v", p.TdwMinus, want.TdwMinus)
	}
	if !intsEqual(p.TdwPlus, want.TdwPlus) {
		t.Fatalf("Tdw+: got %v want %v", p.TdwPlus, want.TdwPlus)
	}
}

// TestProfileC6MatchesPaperExactly: Table 1 row C6 (with the documented
// Φ sign erratum corrected) also reproduces exactly.
func TestProfileC6MatchesPaperExactly(t *testing.T) {
	p, err := Compute(plantOf(plants.C6()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := plants.PaperTable1["C6"]
	if p.JT != want.JT || p.JE != want.JE || p.TwStar != want.TwStar {
		t.Fatalf("scalars: JT=%d/%d JE=%d/%d Tw*=%d/%d", p.JT, want.JT, p.JE, want.JE, p.TwStar, want.TwStar)
	}
	if !intsEqual(p.TdwMinus, want.TdwMinus) || !intsEqual(p.TdwPlus, want.TdwPlus) {
		t.Fatalf("tables: got %v/%v want %v/%v", p.TdwMinus, p.TdwPlus, want.TdwMinus, want.TdwPlus)
	}
}

// TestProfilesWithinOneSampleOfPaper: every Table 1 entry for every
// application reproduces to within one sample (the slack is due to the
// 4-significant-digit rounding of the printed plant matrices).
func TestProfilesWithinOneSampleOfPaper(t *testing.T) {
	profs := computeAll(t)
	for name, p := range profs {
		want := plants.PaperTable1[name]
		if d := p.JT - want.JT; d < -1 || d > 1 {
			t.Errorf("%s: JT=%d, paper %d", name, p.JT, want.JT)
		}
		if d := p.JE - want.JE; d < -2 || d > 2 {
			t.Errorf("%s: JE=%d, paper %d", name, p.JE, want.JE)
		}
		if p.TwStar != want.TwStar {
			t.Errorf("%s: T*w=%d, paper %d", name, p.TwStar, want.TwStar)
		}
		if d := maxAbsDiff(p.TdwMinus, want.TdwMinus); d > 1 {
			t.Errorf("%s: Tdw− deviates by %d: %v vs %v", name, d, p.TdwMinus, want.TdwMinus)
		}
		if d := maxAbsDiff(p.TdwPlus, want.TdwPlus); d > 1 {
			t.Errorf("%s: Tdw+ deviates by %d: %v vs %v", name, d, p.TdwPlus, want.TdwPlus)
		}
	}
}

// TestBestSettlingNonDecreasing checks the paper's observation that the
// minimum achievable settling time (at Tdw+) is non-decreasing in Tw.
func TestBestSettlingNonDecreasing(t *testing.T) {
	for name, p := range computeAll(t) {
		for i := 1; i < len(p.JBest); i++ {
			if p.JBest[i] < p.JBest[i-1] {
				t.Errorf("%s: JBest not monotone at Tw=%d: %v", name, i, p.JBest)
			}
		}
	}
}

// TestZeroWaitBestEqualsDedicated checks the paper's remark that for Tw=0,
// vacating at Tdw+ achieves the dedicated-slot settling time JT. A finite
// dwell can even beat the dedicated slot by a sample (the switch-back
// transient can help, as for C3), so the general invariant is ≤, with the
// paper's exact equality holding for C1 and C6.
func TestZeroWaitBestEqualsDedicated(t *testing.T) {
	for name, p := range computeAll(t) {
		if p.JBest[0] > p.JT {
			t.Errorf("%s: JBest[0]=%d worse than dedicated JT=%d", name, p.JBest[0], p.JT)
		}
		if (name == "C1" || name == "C6") && p.JBest[0] != p.JT {
			t.Errorf("%s: JBest[0]=%d, want exactly JT=%d", name, p.JBest[0], p.JT)
		}
	}
}

// TestDwellWindowInvariants: Tdw− ≤ Tdw+ everywhere, and both tables have
// the T*w+1 length Table 1 implies.
func TestDwellWindowInvariants(t *testing.T) {
	for name, p := range computeAll(t) {
		if len(p.TdwMinus) != p.TwStar+1 || len(p.TdwPlus) != p.TwStar+1 {
			t.Errorf("%s: table length %d/%d, want %d", name, len(p.TdwMinus), len(p.TdwPlus), p.TwStar+1)
		}
		for i := range p.TdwMinus {
			if p.TdwMinus[i] > p.TdwPlus[i] {
				t.Errorf("%s: Tdw−[%d]=%d > Tdw+[%d]=%d", name, i, p.TdwMinus[i], i, p.TdwPlus[i])
			}
			if p.JAtMin[i] > p.JStar {
				t.Errorf("%s: J at Tdw−[%d] is %d > J*=%d", name, i, p.JAtMin[i], p.JStar)
			}
		}
	}
}

// TestValidateWholeWindowSafe re-simulates every dwell in [Tdw−, Tdw+] for
// every Tw of every case-study application: any preemption point the
// scheduler may choose keeps J ≤ J*.
func TestValidateWholeWindowSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("re-simulation sweep is slow")
	}
	for _, a := range plants.CaseStudy() {
		pl := plantOf(a)
		p, err := Compute(pl, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(pl, Config{}); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestWaitBeyondTwStarFails: at Tw = T*w+1 no dwell meets the requirement —
// the definition of T*w.
func TestWaitBeyondTwStarFails(t *testing.T) {
	for _, a := range []plants.App{plants.C1(), plants.C5()} {
		pl := plantOf(a)
		p, err := Compute(pl, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for d := 1; d <= 4*a.JStar; d++ {
			j, ok := SettleAfterSwitch(pl, p.TwStar+1, d, Config{})
			if ok && j <= a.JStar {
				t.Fatalf("%s: dwell %d at Tw=T*w+1 still meets J*: J=%d", a.Name, d, j)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	p := &Profile{TwStar: 3, TdwMinus: []int{3, 4, 4, 5}, TdwPlus: []int{6, 6, 5, 5}, Granularity: 1}
	dm, dp, ok := p.Lookup(0)
	if !ok || dm != 3 || dp != 6 {
		t.Fatalf("Lookup(0) = %d,%d,%v", dm, dp, ok)
	}
	dm, dp, ok = p.Lookup(3)
	if !ok || dm != 5 || dp != 5 {
		t.Fatalf("Lookup(3) = %d,%d,%v", dm, dp, ok)
	}
	if _, _, ok := p.Lookup(4); ok {
		t.Fatalf("Lookup past T*w should fail")
	}
	if _, _, ok := p.Lookup(-1); ok {
		t.Fatalf("Lookup(-1) should fail")
	}
}

// TestGranularityIsConservative: with a coarser Tw grid, lookups round the
// wait up, so the dwell window demanded at any actual wait must still keep
// J ≤ J* (it uses the requirements of a longer wait).
func TestGranularityIsConservative(t *testing.T) {
	pl := plantOf(plants.C1())
	exact, err := Compute(pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Compute(pl, Config{TwGranularity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Granularity != 3 {
		t.Fatalf("granularity not recorded")
	}
	// Memory shrinks.
	if len(coarse.TdwMinus) >= len(exact.TdwMinus) {
		t.Fatalf("coarse table not smaller: %d vs %d", len(coarse.TdwMinus), len(exact.TdwMinus))
	}
	// Every wait covered by the coarse table still meets the requirement
	// when the coarse dwell window is applied.
	for tw := 0; tw <= coarse.TwStar; tw++ {
		dm, _, ok := coarse.Lookup(tw)
		if !ok {
			continue
		}
		j, settled := SettleAfterSwitch(pl, tw, dm, Config{})
		if !settled || j > pl.JStar {
			t.Errorf("coarse dwell %d at Tw=%d gives J=%d > J*=%d", dm, tw, j, pl.JStar)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	pl := plantOf(plants.C1())
	pl.JStar = 5 // tighter than JT=9: infeasible even with a dedicated slot
	if _, err := Compute(pl, Config{}); !errors.Is(err, ErrRequirementInfeasible) {
		t.Fatalf("want ErrRequirementInfeasible, got %v", err)
	}
	pl.JStar = 200 // looser than JE=35: no TT slot needed at all
	if _, err := Compute(pl, Config{}); !errors.Is(err, ErrRequirementTrivial) {
		t.Fatalf("want ErrRequirementTrivial, got %v", err)
	}
	pl.JStar = 0
	if _, err := Compute(pl, Config{}); err == nil {
		t.Fatalf("J*=0 accepted")
	}
}

// TestSimulatorModesMatchLTIHelpers: StepMT/StepME must agree with the
// standalone lti simulation helpers.
func TestSimulatorModesMatchLTIHelpers(t *testing.T) {
	a := plants.C1()
	pl := plantOf(a)
	// Pure MT.
	s := NewSimulator(pl)
	trT := lti.SimulateFeedback(a.Plant, a.KT, a.X0, 50)
	for k := 0; k <= 50; k++ {
		if d := math.Abs(s.Output() - trT.Y[k]); d > 1e-12 {
			t.Fatalf("MT mismatch at k=%d: %g", k, d)
		}
		s.StepMT()
	}
	// Pure ME.
	s.Reset(a.X0)
	trE := lti.SimulateDelayedFeedback(a.Plant, a.KE, a.X0, 0, 50)
	for k := 0; k <= 50; k++ {
		if d := math.Abs(s.Output() - trE.Y[k]); d > 1e-12 {
			t.Fatalf("ME mismatch at k=%d: %g", k, d)
		}
		s.StepME()
	}
}

// TestSimulateSequenceMatchesSettleAfterSwitch: the generic mode-sequence
// runner and the wait/dwell runner agree.
func TestSimulateSequenceMatchesSettleAfterSwitch(t *testing.T) {
	pl := plantOf(plants.C5())
	const horizon, tol = 4000, 0.02 // the Config{} defaults
	tw, dwell := 3, 4
	seq := make([]Mode, tw+dwell)
	for i := tw; i < tw+dwell; i++ {
		seq[i] = MT
	}
	y := SimulateSequence(pl, seq, horizon)
	j1, ok1 := lti.SettlingIndex(y, tol)
	j2, ok2 := SettleAfterSwitch(pl, tw, dwell, Config{})
	if j1 != j2 || ok1 != ok2 {
		t.Fatalf("sequence J=%d(%v) vs switch J=%d(%v)", j1, ok1, j2, ok2)
	}
}

// TestMotivationalFig2SettlingTimes reproduces the Fig. 2 headline numbers:
// JT = 0.18 s, JE = 0.68 s for both KE designs, and the 4-wait/4-dwell
// switching cases: 0.28 s with the stable pair vs 0.58 s with the unstable
// pair.
func TestMotivationalFig2SettlingTimes(t *testing.T) {
	sys := plants.Motivational()
	mk := func(kE lti.Feedback) Plant {
		return Plant{Name: "fig2", Sys: sys, KT: plants.MotivationalKT, KE: kE,
			X0: plants.MotivationalX0, JStar: 18, R: 25}
	}
	stable := mk(plants.MotivationalKEStable)
	unstable := mk(plants.MotivationalKEUnstable)

	jT, ok := SettleAfterSwitch(stable, 0, 4000, Config{})
	if !ok || jT != 9 { // 0.18 s
		t.Errorf("JT = %d samples, want 9 (0.18 s)", jT)
	}
	jEs, ok := SettleAfterSwitch(stable, 4000, 0, Config{})
	if !ok || jEs < 33 || jEs > 35 { // paper plots 0.68 s
		t.Errorf("JE(KsE) = %d samples, want ≈34 (0.68 s)", jEs)
	}
	jEu, ok := SettleAfterSwitch(unstable, 4000, 0, Config{})
	if !ok || jEu < 33 || jEu > 35 {
		t.Errorf("JE(KuE) = %d samples, want ≈34 (0.68 s)", jEu)
	}
	// 4 samples ME, 4 samples MT, then ME: stable pair settles ≈0.28 s,
	// unstable pair ≈0.58 s — the experiment motivating the CQLF condition.
	jSw, ok := SettleAfterSwitch(stable, 4, 4, Config{})
	if !ok || jSw < 13 || jSw > 15 {
		t.Errorf("switching J (stable pair) = %d samples, want ≈14 (0.28 s)", jSw)
	}
	jSwU, ok := SettleAfterSwitch(unstable, 4, 4, Config{})
	if !ok || jSwU < 27 || jSwU > 30 {
		t.Errorf("switching J (unstable pair) = %d samples, want ≈29 (0.58 s)", jSwU)
	}
	if jSw >= jSwU {
		t.Errorf("stable pair (%d) should settle faster than unstable pair (%d)", jSw, jSwU)
	}
}

func TestSurface(t *testing.T) {
	pl := plantOf(plants.C5())
	pts := Surface(pl, 5, 6, Config{})
	if len(pts) != 6*7 {
		t.Fatalf("surface size %d", len(pts))
	}
	minJ, maxJ, _ := SurfaceStats(pts)
	if minJ > maxJ || minJ <= 0 {
		t.Fatalf("stats: min=%d max=%d", minJ, maxJ)
	}
	// Dwell 0 column equals pure-ME settling.
	jE, _ := SettleAfterSwitch(pl, 4000, 0, Config{})
	for _, p := range pts {
		if p.Tdw == 0 && p.J != jE {
			t.Fatalf("dwell-0 J=%d, want JE=%d", p.J, jE)
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]int{
		{3, 4, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5},
		{7, 7, 7, 7},
		{1},
		{},
		{1, 2, 3, 4},
	}
	for _, c := range cases {
		enc := EncodeRLE(c)
		dec := enc.Decode()
		if !intsEqual(dec, c) && !(len(c) == 0 && len(dec) == 0) {
			t.Errorf("round trip %v -> %v", c, dec)
		}
		if enc.Len() != len(c) {
			t.Errorf("Len() = %d, want %d", enc.Len(), len(c))
		}
		for i, v := range c {
			if enc.At(i) != v {
				t.Errorf("At(%d) = %d, want %d", i, enc.At(i), v)
			}
		}
	}
	// Compression actually happens on a Table-1-like array.
	enc := EncodeRLE([]int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if enc.Words() != 1 {
		t.Errorf("constant table should compress to 1 run, got %d", enc.Words())
	}
}

func TestRLEAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeRLE([]int{1, 2}).At(5)
}

func TestDistinctValues(t *testing.T) {
	got := DistinctValues([]int{3, 4, 3, 5, 4})
	if !intsEqual(got, []int{3, 4, 5}) {
		t.Fatalf("DistinctValues = %v", got)
	}
}

// TestMaxTdwHelpers exercises the mapping tie-break keys.
func TestMaxTdwHelpers(t *testing.T) {
	p := &Profile{TdwMinus: []int{3, 4, 5, 4}, TdwPlus: []int{6, 6, 5, 7}}
	if p.MaxTdwMinus() != 5 {
		t.Fatalf("MaxTdwMinus = %d", p.MaxTdwMinus())
	}
	if p.MaxTdwPlus() != 7 {
		t.Fatalf("MaxTdwPlus = %d", p.MaxTdwPlus())
	}
}

// TestNewSimulatorRejectsWrongGainOrders guards the panic contract.
func TestNewSimulatorRejectsWrongGainOrders(t *testing.T) {
	a := plants.C1()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulator(Plant{Sys: a.Plant, KT: a.KE, KE: a.KE, X0: a.X0, JStar: 18})
}

// TestUnstableSwitchingSurfaceWorse reproduces the Fig. 3 qualitative
// result: over the same (Tw, Tdw) region the unstable pair's settling times
// are never better and substantially worse somewhere.
func TestUnstableSwitchingSurfaceWorse(t *testing.T) {
	sys := plants.Motivational()
	mk := func(kE lti.Feedback) Plant {
		return Plant{Name: "fig3", Sys: sys, KT: plants.MotivationalKT, KE: kE,
			X0: plants.MotivationalX0, JStar: 18, R: 25}
	}
	stab := Surface(mk(plants.MotivationalKEStable), 10, 8, Config{})
	unst := Surface(mk(plants.MotivationalKEUnstable), 10, 8, Config{})
	worse, better := 0, 0
	for i := range stab {
		if unst[i].J > stab[i].J {
			worse++
		}
		if unst[i].J < stab[i].J {
			better++
		}
	}
	if worse < 5*better {
		t.Errorf("unstable pair not clearly worse: worse=%d better=%d", worse, better)
	}
}
