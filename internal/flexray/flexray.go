// Package flexray models the communication substrate of the paper: a
// FlexRay bus whose cycle is split into a static (time-triggered) segment
// of equal-length slots and a dynamic (event-triggered) segment of
// mini-slots (Sec. 2). It provides
//
//   - a cycle-accurate bus simulator for both segments,
//   - a worst-case response-time analysis for dynamic-segment frames in the
//     spirit of Pop et al. [11] (simplified to the single-channel,
//     non-cycle-multiplexed configuration the paper uses), and
//   - the runtime-reconfiguration middleware of Majumdar et al. [8] that
//     lets a control message migrate between a static slot and a dynamic
//     channel — the mechanism the switching strategy relies on, since raw
//     FlexRay schedules are fixed at design time.
//
// The control layer uses exactly two facts that this package substantiates:
// a message in a static slot arrives within its slot window of the same
// cycle (negligible sensing-to-actuation delay), and a dynamic-segment
// message arrives within a bounded number of cycles (one, when the analysis
// of WCRTCycles returns 1), justifying the one-sample-delay model of Eq. 4.
package flexray

import (
	"errors"
	"fmt"
	"sort"
)

// Config describes one FlexRay communication cycle.
type Config struct {
	StaticSlots   int     // number of static slots per cycle
	SlotLen       float64 // Ψ: static slot length (ms)
	MiniSlots     int     // number of mini-slots in the dynamic segment
	MiniSlotLen   float64 // ψ: mini-slot length (ms), typically ψ ≪ Ψ
	NITLen        float64 // network idle time at the end of the cycle (ms)
	MaxFrameMinis int     // pLatestTx guard: a dynamic frame must start early enough
}

// CycleLen returns the cycle length in ms.
func (c Config) CycleLen() float64 {
	return float64(c.StaticSlots)*c.SlotLen + float64(c.MiniSlots)*c.MiniSlotLen + c.NITLen
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StaticSlots < 0 || c.MiniSlots < 0 {
		return errors.New("flexray: negative segment sizes")
	}
	if c.StaticSlots > 0 && c.SlotLen <= 0 {
		return errors.New("flexray: static slots need a positive slot length")
	}
	if c.MiniSlots > 0 && c.MiniSlotLen <= 0 {
		return errors.New("flexray: mini-slots need a positive length")
	}
	if c.MaxFrameMinis < 0 || c.MaxFrameMinis > c.MiniSlots {
		return errors.New("flexray: MaxFrameMinis out of range")
	}
	return nil
}

// Frame is a message configured on the bus.
type Frame struct {
	ID    int // unique; also the dynamic-segment priority (lower = earlier)
	Name  string
	Minis int // transmission length in mini-slots (dynamic segment)
	// Slot is the static slot index when the frame is currently routed
	// through the static segment; −1 when routed through the dynamic
	// segment. Managed by the Middleware.
	Slot int
}

// TxRecord reports one completed transmission.
type TxRecord struct {
	FrameID int
	Cycle   int     // cycle in which the frame was transmitted
	Start   float64 // offset within the cycle (ms)
	End     float64
	Static  bool
}

// Bus simulates cycles of the configured FlexRay schedule.
type Bus struct {
	cfg    Config
	frames map[int]*Frame
	// pending dynamic transmissions queued per frame id (count of queued
	// messages; FlexRay transmits at most one frame instance per cycle).
	pending map[int]int
	cycle   int
	// static slot assignment: slot index → frame id (−1 free)
	slots []int
	log   []TxRecord
}

// NewBus creates an empty bus.
func NewBus(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	slots := make([]int, cfg.StaticSlots)
	for i := range slots {
		slots[i] = -1
	}
	return &Bus{cfg: cfg, frames: map[int]*Frame{}, pending: map[int]int{}, slots: slots}, nil
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Cycle returns the current cycle number.
func (b *Bus) Cycle() int { return b.cycle }

// AddFrame registers a frame, initially routed through the dynamic segment.
func (b *Bus) AddFrame(f Frame) error {
	if _, dup := b.frames[f.ID]; dup {
		return fmt.Errorf("flexray: duplicate frame id %d", f.ID)
	}
	if f.Minis <= 0 {
		return fmt.Errorf("flexray: frame %d needs a positive length", f.ID)
	}
	if b.cfg.MaxFrameMinis > 0 && f.Minis > b.cfg.MaxFrameMinis {
		return fmt.Errorf("flexray: frame %d length %d exceeds pLatestTx budget %d", f.ID, f.Minis, b.cfg.MaxFrameMinis)
	}
	nf := f
	nf.Slot = -1
	b.frames[f.ID] = &nf
	return nil
}

// AssignStatic routes a frame through the given static slot (exclusive).
func (b *Bus) AssignStatic(frameID, slot int) error {
	f, ok := b.frames[frameID]
	if !ok {
		return fmt.Errorf("flexray: unknown frame %d", frameID)
	}
	if slot < 0 || slot >= b.cfg.StaticSlots {
		return fmt.Errorf("flexray: slot %d out of range", slot)
	}
	if b.slots[slot] != -1 && b.slots[slot] != frameID {
		return fmt.Errorf("flexray: slot %d already owned by frame %d", slot, b.slots[slot])
	}
	if f.Slot >= 0 {
		b.slots[f.Slot] = -1
	}
	f.Slot = slot
	b.slots[slot] = frameID
	return nil
}

// ReleaseStatic moves a frame back to the dynamic segment.
func (b *Bus) ReleaseStatic(frameID int) error {
	f, ok := b.frames[frameID]
	if !ok {
		return fmt.Errorf("flexray: unknown frame %d", frameID)
	}
	if f.Slot >= 0 {
		b.slots[f.Slot] = -1
		f.Slot = -1
	}
	return nil
}

// Queue enqueues one message instance of the frame for transmission.
func (b *Bus) Queue(frameID int) error {
	if _, ok := b.frames[frameID]; !ok {
		return fmt.Errorf("flexray: unknown frame %d", frameID)
	}
	b.pending[frameID]++
	return nil
}

// RunCycle simulates one communication cycle and returns the transmissions
// completed in it. Static-slot owners with a pending message transmit in
// their slot window; dynamic frames are served in priority (frame ID)
// order, each consuming its length in mini-slots, as long as the remaining
// dynamic segment admits them (the pLatestTx rule); leftovers wait for the
// next cycle.
func (b *Bus) RunCycle() []TxRecord {
	var out []TxRecord
	// Static segment.
	for slot, fid := range b.slots {
		if fid < 0 || b.pending[fid] == 0 {
			continue
		}
		start := float64(slot) * b.cfg.SlotLen
		rec := TxRecord{FrameID: fid, Cycle: b.cycle, Start: start, End: start + b.cfg.SlotLen, Static: true}
		b.pending[fid]--
		out = append(out, rec)
	}
	// Dynamic segment: walk the mini-slot counter.
	dynStart := float64(b.cfg.StaticSlots) * b.cfg.SlotLen
	ids := make([]int, 0, len(b.frames))
	for id, f := range b.frames {
		if f.Slot < 0 && b.pending[id] > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids) // frame ID = priority
	mini := 0
	for _, id := range ids {
		f := b.frames[id]
		// pLatestTx: the frame must fit before the dynamic segment ends.
		if mini+f.Minis > b.cfg.MiniSlots {
			mini++ // the empty mini-slot still elapses
			continue
		}
		start := dynStart + float64(mini)*b.cfg.MiniSlotLen
		end := start + float64(f.Minis)*b.cfg.MiniSlotLen
		out = append(out, TxRecord{FrameID: id, Cycle: b.cycle, Start: start, End: end, Static: false})
		b.pending[id]--
		mini += f.Minis
	}
	b.log = append(b.log, out...)
	b.cycle++
	return out
}

// Log returns all transmissions so far.
func (b *Bus) Log() []TxRecord { return b.log }

// WCRTCycles bounds the worst-case number of cycles a dynamic frame waits
// before its transmission completes, given the set of frames that may
// compete in the dynamic segment (after Pop et al. [11], restricted to one
// instance per competitor per cycle — the sampled-control traffic model).
// A result of 1 means the frame always goes out in the cycle it is queued,
// which is what licenses the one-sample-delay controller model (Eq. 4)
// when the sampling period equals the cycle length.
func WCRTCycles(cfg Config, frame Frame, competitors []Frame) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if frame.Minis > cfg.MiniSlots {
		return 0, fmt.Errorf("flexray: frame %d cannot fit the dynamic segment", frame.ID)
	}
	// Higher-priority load per cycle (mini-slots), one instance each.
	hp := 0
	for _, c := range competitors {
		if c.ID < frame.ID {
			hp += c.Minis
		}
	}
	// Within one cycle the frame makes it iff the higher-priority load plus
	// its own length fits the segment. Otherwise the surplus spills over at
	// one segment-length per cycle (competitors re-queue at most once per
	// cycle in the sampled model).
	if hp+frame.Minis <= cfg.MiniSlots {
		return 1, nil
	}
	cycles := 1
	remaining := hp + frame.Minis
	for remaining > cfg.MiniSlots {
		remaining -= cfg.MiniSlots
		cycles++
		if cycles > 1000 {
			return 0, errors.New("flexray: WCRT does not converge (overload)")
		}
	}
	return cycles, nil
}
