package flexray

import (
	"errors"
	"fmt"
)

// Middleware is the runtime-reconfiguration layer of Majumdar et al. [8]:
// FlexRay schedules are frozen at design time, so switching a control
// message between TT and ET communication needs a software layer that owns
// a pool of static slots and re-routes messages on request. This is the
// mechanism the paper's switching strategy assumes; the scheduler's grant/
// release decisions map one-to-one onto AcquireTT/ReleaseTT calls here.
type Middleware struct {
	bus *Bus
	// pool of static slot indices the middleware may hand out
	pool []int
	// owner[slot] = frame currently routed through the pooled slot
	owner map[int]int
	// slotOf[frame] = pooled slot held by the frame
	slotOf map[int]int
}

// ErrNoFreeSlot is returned when every pooled slot is taken.
var ErrNoFreeSlot = errors.New("flexray: middleware has no free TT slot")

// NewMiddleware wraps a bus with a pool of reconfigurable static slots.
func NewMiddleware(bus *Bus, pool []int) (*Middleware, error) {
	for _, s := range pool {
		if s < 0 || s >= bus.Config().StaticSlots {
			return nil, fmt.Errorf("flexray: pooled slot %d out of range", s)
		}
	}
	return &Middleware{
		bus:    bus,
		pool:   append([]int(nil), pool...),
		owner:  map[int]int{},
		slotOf: map[int]int{},
	}, nil
}

// AcquireTT routes the frame through a free pooled static slot and returns
// the slot index. The frame transmits time-triggered from the next cycle.
func (m *Middleware) AcquireTT(frameID int) (int, error) {
	if s, has := m.slotOf[frameID]; has {
		return s, nil // idempotent
	}
	for _, s := range m.pool {
		if _, taken := m.owner[s]; taken {
			continue
		}
		if err := m.bus.AssignStatic(frameID, s); err != nil {
			return 0, err
		}
		m.owner[s] = frameID
		m.slotOf[frameID] = s
		return s, nil
	}
	return 0, ErrNoFreeSlot
}

// ReleaseTT moves the frame back to the dynamic segment, freeing its slot.
func (m *Middleware) ReleaseTT(frameID int) error {
	s, has := m.slotOf[frameID]
	if !has {
		return nil // idempotent
	}
	if err := m.bus.ReleaseStatic(frameID); err != nil {
		return err
	}
	delete(m.owner, s)
	delete(m.slotOf, frameID)
	return nil
}

// Holder returns the frame holding the pooled slot, or −1.
func (m *Middleware) Holder(slot int) int {
	if f, ok := m.owner[slot]; ok {
		return f
	}
	return -1
}

// HoldsTT reports whether the frame currently owns a pooled static slot.
func (m *Middleware) HoldsTT(frameID int) bool {
	_, ok := m.slotOf[frameID]
	return ok
}

// FreeSlots returns how many pooled slots are currently unassigned.
func (m *Middleware) FreeSlots() int { return len(m.pool) - len(m.owner) }
