package flexray

import (
	"errors"
	"math"
	"testing"
)

func testCfg() Config {
	return Config{StaticSlots: 4, SlotLen: 1.0, MiniSlots: 20, MiniSlotLen: 0.1, NITLen: 0.5, MaxFrameMinis: 10}
}

func newTestBus(t *testing.T) *Bus {
	t.Helper()
	b, err := NewBus(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCycleLen(t *testing.T) {
	c := testCfg()
	want := 4*1.0 + 20*0.1 + 0.5
	if math.Abs(c.CycleLen()-want) > 1e-12 {
		t.Fatalf("CycleLen = %v, want %v", c.CycleLen(), want)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{StaticSlots: -1},
		{StaticSlots: 2, SlotLen: 0},
		{MiniSlots: 5, MiniSlotLen: 0},
		{MiniSlots: 5, MiniSlotLen: 0.1, MaxFrameMinis: 9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	if err := testCfg().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestStaticTransmission(t *testing.T) {
	b := newTestBus(t)
	if err := b.AddFrame(Frame{ID: 1, Name: "m1", Minis: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.AssignStatic(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Queue(1); err != nil {
		t.Fatal(err)
	}
	recs := b.RunCycle()
	if len(recs) != 1 || !recs[0].Static || recs[0].Start != 2.0 || recs[0].End != 3.0 {
		t.Fatalf("static tx = %+v", recs)
	}
	// Nothing pending next cycle.
	if got := b.RunCycle(); len(got) != 0 {
		t.Fatalf("spurious tx: %+v", got)
	}
}

func TestDynamicPriorityOrder(t *testing.T) {
	b := newTestBus(t)
	for id := 3; id >= 1; id-- {
		if err := b.AddFrame(Frame{ID: id, Minis: 3}); err != nil {
			t.Fatal(err)
		}
		if err := b.Queue(id); err != nil {
			t.Fatal(err)
		}
	}
	recs := b.RunCycle()
	if len(recs) != 3 {
		t.Fatalf("want 3 transmissions, got %d", len(recs))
	}
	// Priority = ascending frame ID; mini-slot walk: 0,3,6.
	for i, want := range []struct {
		id   int
		mini int
	}{{1, 0}, {2, 3}, {3, 6}} {
		r := recs[i]
		start := 4.0 + float64(want.mini)*0.1
		if r.FrameID != want.id || math.Abs(r.Start-start) > 1e-12 || r.Static {
			t.Fatalf("tx %d = %+v, want frame %d at %v", i, r, want.id, start)
		}
	}
}

func TestDynamicOverflowDefersToNextCycle(t *testing.T) {
	b := newTestBus(t)
	// Three frames of 8 minis: only two fit in 20 minis (8+8=16; the third
	// would need 24).
	for id := 1; id <= 3; id++ {
		if err := b.AddFrame(Frame{ID: id, Minis: 8}); err != nil {
			t.Fatal(err)
		}
		if err := b.Queue(id); err != nil {
			t.Fatal(err)
		}
	}
	first := b.RunCycle()
	if len(first) != 2 || first[0].FrameID != 1 || first[1].FrameID != 2 {
		t.Fatalf("cycle 0 = %+v", first)
	}
	second := b.RunCycle()
	if len(second) != 1 || second[0].FrameID != 3 || second[0].Cycle != 1 {
		t.Fatalf("cycle 1 = %+v", second)
	}
}

func TestSlotExclusivity(t *testing.T) {
	b := newTestBus(t)
	_ = b.AddFrame(Frame{ID: 1, Minis: 1})
	_ = b.AddFrame(Frame{ID: 2, Minis: 1})
	if err := b.AssignStatic(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AssignStatic(2, 0); err == nil {
		t.Fatal("double slot assignment accepted")
	}
	if err := b.ReleaseStatic(1); err != nil {
		t.Fatal(err)
	}
	if err := b.AssignStatic(2, 0); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
}

func TestFrameValidation(t *testing.T) {
	b := newTestBus(t)
	if err := b.AddFrame(Frame{ID: 1, Minis: 0}); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	if err := b.AddFrame(Frame{ID: 1, Minis: 11}); err == nil {
		t.Fatal("frame above pLatestTx budget accepted")
	}
	if err := b.AddFrame(Frame{ID: 1, Minis: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFrame(Frame{ID: 1, Minis: 2}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := b.Queue(99); err == nil {
		t.Fatal("queue for unknown frame accepted")
	}
	if err := b.AssignStatic(99, 0); err == nil {
		t.Fatal("assign for unknown frame accepted")
	}
	if err := b.AssignStatic(1, 9); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestWCRTSingleCycle(t *testing.T) {
	cfg := testCfg()
	me := Frame{ID: 5, Minis: 4}
	comp := []Frame{{ID: 1, Minis: 4}, {ID: 2, Minis: 4}, {ID: 9, Minis: 12}}
	// hp load = 8, mine 4 → 12 ≤ 20: one cycle. (Frame 9 is lower priority.)
	c, err := WCRTCycles(cfg, me, comp)
	if err != nil || c != 1 {
		t.Fatalf("WCRT = %d (%v), want 1", c, err)
	}
}

func TestWCRTMultiCycle(t *testing.T) {
	cfg := testCfg()
	me := Frame{ID: 9, Minis: 8}
	comp := []Frame{{ID: 1, Minis: 10}, {ID: 2, Minis: 10}, {ID: 3, Minis: 10}}
	// hp = 30, +8 = 38 > 20 → 1 + spillover cycles.
	c, err := WCRTCycles(cfg, me, comp)
	if err != nil {
		t.Fatal(err)
	}
	if c < 2 {
		t.Fatalf("WCRT = %d, want ≥ 2", c)
	}
}

func TestWCRTTooBig(t *testing.T) {
	if _, err := WCRTCycles(testCfg(), Frame{ID: 1, Minis: 30}, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestMiddlewareAcquireRelease(t *testing.T) {
	b := newTestBus(t)
	for id := 1; id <= 3; id++ {
		if err := b.AddFrame(Frame{ID: id, Minis: 2}); err != nil {
			t.Fatal(err)
		}
	}
	mw, err := NewMiddleware(b, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := mw.AcquireTT(1)
	if err != nil {
		t.Fatal(err)
	}
	if !mw.HoldsTT(1) || mw.Holder(s1) != 1 || mw.FreeSlots() != 1 {
		t.Fatalf("acquire state wrong: slot=%d", s1)
	}
	// Idempotent acquire.
	s1b, err := mw.AcquireTT(1)
	if err != nil || s1b != s1 {
		t.Fatalf("re-acquire: %d, %v", s1b, err)
	}
	if _, err := mw.AcquireTT(2); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AcquireTT(3); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("pool exhaustion not detected: %v", err)
	}
	if err := mw.ReleaseTT(1); err != nil {
		t.Fatal(err)
	}
	if mw.HoldsTT(1) || mw.Holder(s1) != -1 {
		t.Fatal("release did not clear ownership")
	}
	if _, err := mw.AcquireTT(3); err != nil {
		t.Fatalf("freed slot not reusable: %v", err)
	}
	// Releasing a non-holder is a no-op.
	if err := mw.ReleaseTT(99); err != nil {
		t.Fatalf("release of non-holder errored: %v", err)
	}
}

func TestMiddlewareRouteSwitchAffectsBus(t *testing.T) {
	// The same message goes out TT (in its slot window) after AcquireTT and
	// ET (in the dynamic segment) after ReleaseTT — the paper's mode switch
	// at bus level.
	b := newTestBus(t)
	_ = b.AddFrame(Frame{ID: 1, Minis: 2})
	mw, _ := NewMiddleware(b, []int{0})
	if _, err := mw.AcquireTT(1); err != nil {
		t.Fatal(err)
	}
	_ = b.Queue(1)
	tt := b.RunCycle()
	if len(tt) != 1 || !tt[0].Static {
		t.Fatalf("TT route not used: %+v", tt)
	}
	if err := mw.ReleaseTT(1); err != nil {
		t.Fatal(err)
	}
	_ = b.Queue(1)
	et := b.RunCycle()
	if len(et) != 1 || et[0].Static {
		t.Fatalf("ET route not used: %+v", et)
	}
	// ET latency is bounded within the cycle: justifies one-sample delay.
	if et[0].End > b.Config().CycleLen() {
		t.Fatalf("ET tx spilled past the cycle: %+v", et[0])
	}
}

func TestMiddlewarePoolValidation(t *testing.T) {
	b := newTestBus(t)
	if _, err := NewMiddleware(b, []int{9}); err == nil {
		t.Fatal("out-of-range pooled slot accepted")
	}
}
