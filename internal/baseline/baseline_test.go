package baseline

import (
	"reflect"
	"testing"

	"tightcps/internal/plants"
)

// paperOrder lists C1..C6 indices (in name order C1,C2,...,C6) sorted the
// paper's way: ascending T*w, ties by smaller max Tdw−.
var paperOrder = []int{0, 4, 3, 5, 1, 2} // C1, C5, C4, C6, C2, C3

func calTimings(t *testing.T) []AppTiming {
	t.Helper()
	m, err := plants.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	rs := map[string]int{}
	for n, p := range m {
		rs[n] = p.R
	}
	apps, err := PaperCalibratedTimings(rs)
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

// TestPaperBaselinePartition reproduces the paper's reported [9] result:
// four slots partitioned {C1,C5}, {C4,C3}, {C6}, {C2}.
func TestPaperBaselinePartition(t *testing.T) {
	apps := calTimings(t)
	an := Analysis{Strategy: NonPreemptiveDM}
	got := SlotNames(apps, an.FirstFitOrdered(apps, paperOrder))
	want := [][]string{{"C1", "C5"}, {"C4", "C3"}, {"C6"}, {"C2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partition %v, want %v", got, want)
	}
}

// TestDefaultReconstructionAtLeastThreeSlots: even the least conservative
// defensible reading of [9] needs ≥3 slots where the proposed strategy
// needs 2 — the paper's headline saving holds under either reading.
func TestDefaultReconstructionAtLeastThreeSlots(t *testing.T) {
	m, err := plants.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	var apps []AppTiming
	for _, n := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		apps = append(apps, FromProfile(m[n]))
	}
	an := Analysis{Strategy: NonPreemptiveDM}
	slots := an.FirstFitOrdered(apps, paperOrder)
	if len(slots) < 3 {
		t.Fatalf("default baseline used %d slots; even the loosest reading needs ≥3", len(slots))
	}
}

func TestSchedulableSingleAndEmpty(t *testing.T) {
	an := Analysis{}
	if !an.Schedulable(nil) {
		t.Fatal("empty set unschedulable")
	}
	if !an.Schedulable([]AppTiming{{Name: "A", C: 100, D: 1, R: 200}}) {
		t.Fatal("single app unschedulable (it never waits)")
	}
}

func TestSchedulablePairRules(t *testing.T) {
	// Higher-priority app (smaller D) is blocked by the lower's tenure;
	// lower-priority app waits out the higher's tenure.
	cases := []struct {
		name string
		a, b AppTiming
		want bool
	}{
		{"both fit", AppTiming{Name: "A", C: 5, D: 10, R: 50}, AppTiming{Name: "B", C: 8, D: 20, R: 50}, true},
		{"hp blocked too long", AppTiming{Name: "A", C: 5, D: 7, R: 50}, AppTiming{Name: "B", C: 8, D: 20, R: 50}, false},
		{"lp starved", AppTiming{Name: "A", C: 15, D: 10, R: 50}, AppTiming{Name: "B", C: 2, D: 12, R: 50}, false},
	}
	an := Analysis{}
	for _, tc := range cases {
		if got := an.Schedulable([]AppTiming{tc.a, tc.b}); got != tc.want {
			t.Errorf("%s: Schedulable=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestResponseTimeIterationCountsRearrivals(t *testing.T) {
	// Higher-priority app re-arrives within the lower's wait window: the
	// iteration must count two hits. hp: C=6, R=10. lp: C=1, D=12.
	// w = 6 → (1+0)*6; but w=6 < 10, one hit... make hp tenure 8, R=10,
	// lp D=17: w starts 8, iter: 1+8/10=1 → 8; with blocking 0 stays 8 ≤ 17.
	// Use hp C=8 R=10 and lp D=17 with an extra mid app to push w past 10.
	hp := AppTiming{Name: "H", C: 8, D: 5, R: 10}
	mid := AppTiming{Name: "M", C: 4, D: 10, R: 100}
	lp := AppTiming{Name: "L", C: 1, D: 17, R: 100}
	an := Analysis{}
	// lp's wait: C_H + C_M = 12 > R_H = 10 → H hits again: 8+8+4 = 20 > 17.
	if an.Schedulable([]AppTiming{hp, mid, lp}) {
		t.Fatal("re-arrival interference not counted")
	}
	// With R_H large, one hit each: 12 ≤ 17 → schedulable... but H itself:
	// blocked by max(C_M, C_L) = 4 ≤ 5 ✓; M: block 1 + C_H = 9 ≤ 10 ✓.
	hp.R = 100
	if !an.Schedulable([]AppTiming{hp, mid, lp}) {
		t.Fatal("single-hit case rejected")
	}
}

func TestDelayedRequestStrategy(t *testing.T) {
	// Strategy 2 removes lower-priority blocking from the higher-priority
	// app at the cost of delaying the lower one.
	hp := AppTiming{Name: "H", C: 5, D: 6, R: 50}
	lp := AppTiming{Name: "L", C: 8, D: 20, R: 50}
	s1 := Analysis{Strategy: NonPreemptiveDM}
	s2 := Analysis{Strategy: DelayedRequest}
	// Under strategy 1, H is blocked 8 > 6: unschedulable.
	if s1.Schedulable([]AppTiming{hp, lp}) {
		t.Fatal("strategy 1 should reject")
	}
	// Under strategy 2, H sees no blocking (L delays its requests); L pays
	// the delay: wait = C_H + delay C_H = 10 ≤ 20.
	if !s2.Schedulable([]AppTiming{hp, lp}) {
		t.Fatal("strategy 2 should accept")
	}
	// But a tight lower-priority deadline makes strategy 2 fail instead.
	lp.D = 9
	if s2.Schedulable([]AppTiming{hp, lp}) {
		t.Fatal("strategy 2 must charge the delay to the delayed app")
	}
}

func TestFromProfile(t *testing.T) {
	m, err := plants.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	at := FromProfile(m["C1"])
	if at.C != m["C1"].JT || at.D != m["C1"].TwStar || at.R != m["C1"].R {
		t.Fatalf("FromProfile = %+v", at)
	}
}

func TestPaperCalibratedTimingsMissingR(t *testing.T) {
	if _, err := PaperCalibratedTimings(map[string]int{"C1": 25}); err == nil {
		t.Fatal("missing inter-arrival times accepted")
	}
}

func TestFirstFitDMOrderDiffersFromPaperOrder(t *testing.T) {
	// Sanity: the DM-ordered first-fit is also available and uses no more
	// slots than one per application.
	apps := calTimings(t)
	slots := Analysis{}.FirstFit(apps)
	if len(slots) == 0 || len(slots) > len(apps) {
		t.Fatalf("slots = %v", slots)
	}
	// Every app appears exactly once.
	seen := map[int]bool{}
	for _, s := range slots {
		for _, i := range s {
			if seen[i] {
				t.Fatalf("app %d placed twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(apps) {
		t.Fatalf("placed %d of %d apps", len(seen), len(apps))
	}
}
