// Package baseline reconstructs the comparison scheme of Masrur et al. [9]
// ("Timing analysis of cyber-physical applications for hybrid communication
// protocols", DATE 2012) as the DAC paper describes it: a conservative
// switching strategy in which an application that obtains the TT slot holds
// it non-preemptively until its disturbance is fully rejected, with slot
// admission decided by a non-preemptive deadline-monotonic schedulability
// analysis (strategy 1) or its delayed-request refinement (strategy 2).
//
// [9] itself is not reproducible from the DAC paper alone, so the analysis
// is parameterised (blocking and deadline rules); the default rule set is
// the most natural reading (blocking = full-rejection dwell JT, deadline =
// T*w), and a calibrated deadline table reproducing the paper's reported
// 4-slot partition is provided alongside. EXPERIMENTS.md reports both.
package baseline

import (
	"fmt"
	"sort"

	"tightcps/internal/switching"
)

// Strategy selects one of the two schemes of [9].
type Strategy uint8

// Baseline strategies.
const (
	// NonPreemptiveDM is strategy 1: standard non-preemptive deadline-
	// monotonic acquisition analysis.
	NonPreemptiveDM Strategy = iota
	// DelayedRequest is strategy 2: lower-priority applications delay their
	// slot requests so higher-priority ones see shorter blocking; the
	// delayed application's own deadline budget shrinks by the delay.
	DelayedRequest
)

// AppTiming is the baseline view of one application.
type AppTiming struct {
	Name string
	// C is the slot tenure: the baseline occupant holds the slot until full
	// rejection, i.e. its dedicated-slot settling time JT (samples).
	C int
	// D is the acquisition deadline: the latest wait that still allows the
	// requirement to be met (T*w by default).
	D int
	// R is the minimum disturbance inter-arrival time (samples).
	R int
	// Delay is the request offset of strategy 2 (0 under strategy 1).
	Delay int
}

// FromProfile derives the default baseline timing of an application from
// its switching profile: C = JT (hold until rejected), D = T*w.
func FromProfile(p *switching.Profile) AppTiming {
	return AppTiming{Name: p.Name, C: p.JT, D: p.TwStar, R: p.R}
}

// Analysis performs the slot-sharing admission test.
type Analysis struct {
	Strategy Strategy
}

// priorityOrder sorts by deadline (DM), ties by smaller C, then name.
func priorityOrder(apps []AppTiming) []int {
	idx := make([]int, len(apps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		x, y := apps[idx[a]], apps[idx[b]]
		if x.D != y.D {
			return x.D < y.D
		}
		if x.C != y.C {
			return x.C < y.C
		}
		return x.Name < y.Name
	})
	return idx
}

// Schedulable decides whether the applications can share one TT slot under
// the baseline strategy: for each application, the worst-case slot
// acquisition wait — non-preemptive blocking by at most one lower-priority
// occupant plus the tenures of all higher-priority applications, iterated
// for re-arrivals within the wait window — must not exceed its deadline.
func (an Analysis) Schedulable(apps []AppTiming) bool {
	if len(apps) <= 1 {
		return true
	}
	order := priorityOrder(apps)
	for rank, i := range order {
		a := apps[i]
		// Blocking: the longest tenure among lower-priority apps (the slot
		// is non-preemptive).
		block := 0
		for _, j := range order[rank+1:] {
			if apps[j].C > block {
				block = apps[j].C
			}
		}
		// Strategy 2 removes lower-priority blocking (requests are delayed
		// past the contention window) but charges the app its own delay.
		delay := 0
		if an.Strategy == DelayedRequest {
			block = 0
			// The app's own request is delayed by the longest higher-
			// priority tenure it would otherwise block.
			for _, j := range order[:rank] {
				if apps[j].C > delay {
					delay = apps[j].C
				}
			}
			// Highest-priority app needs no delay.
			if rank == 0 {
				delay = 0
			}
		}
		// Response-time iteration: w = block + Σ_hp ⌈w / r_j⌉ · C_j.
		w := block
		for _, j := range order[:rank] {
			w += apps[j].C
		}
		for iter := 0; iter < 1000; iter++ {
			next := block
			for _, j := range order[:rank] {
				hits := 1 + w/apps[j].R
				next += hits * apps[j].C
			}
			if next == w {
				break
			}
			w = next
		}
		if w+delay > a.D {
			return false
		}
	}
	return true
}

// FirstFit maps applications to slots with the first-fit heuristic,
// processing them in deadline-monotonic order. It returns the slot
// partitions as index lists into apps.
func (an Analysis) FirstFit(apps []AppTiming) [][]int {
	return an.FirstFitOrdered(apps, priorityOrder(apps))
}

// FirstFitOrdered runs first-fit processing applications in the given
// order (the paper compares both methods under its T*w-sorted order, so
// the placement order is decoupled from the DM priorities the
// schedulability test uses internally).
func (an Analysis) FirstFitOrdered(apps []AppTiming, order []int) [][]int {
	var slots [][]int
	for _, i := range order {
		placed := false
		for si := range slots {
			trial := make([]AppTiming, 0, len(slots[si])+1)
			for _, j := range slots[si] {
				trial = append(trial, apps[j])
			}
			trial = append(trial, apps[i])
			if an.Schedulable(trial) {
				slots[si] = append(slots[si], i)
				placed = true
				break
			}
		}
		if !placed {
			slots = append(slots, []int{i})
		}
	}
	return slots
}

// CalibratedTiming is one row of the paper-calibrated baseline input: the
// published Table 1 values (JT as tenure, T*w as deadline) with a single
// adjustment — C4's deadline is 10 instead of its T*w = 12. That adjustment
// stands in for the extra conservatism of [9]'s own analysis, which the DAC
// paper reports (4 slots: {C1,C5}, {C4,C3}, {C6}, {C2}) but does not
// reproduce in detail; it is the unique single-parameter change consistent
// with all six of the paper's reported accept/reject decisions.
type CalibratedTiming struct {
	Name    string
	JT      int
	TwStar  int
	DMApply int // deadline used by the analysis
}

// PaperCalibratedTimings returns the baseline timings reproducing the
// paper's reported [9] result, built from the published Table 1 numbers.
// rs maps application name → minimum inter-arrival time.
func PaperCalibratedTimings(rs map[string]int) ([]AppTiming, error) {
	rows := []CalibratedTiming{
		{"C1", 9, 11, 11},
		{"C2", 15, 13, 13},
		{"C3", 10, 15, 15},
		{"C4", 10, 12, 10}, // calibrated deadline
		{"C5", 10, 12, 12},
		{"C6", 11, 12, 12},
	}
	out := make([]AppTiming, 0, len(rows))
	for _, row := range rows {
		r, ok := rs[row.Name]
		if !ok {
			return nil, fmt.Errorf("baseline: missing inter-arrival time for %s", row.Name)
		}
		out = append(out, AppTiming{Name: row.Name, C: row.JT, D: row.DMApply, R: r})
	}
	return out, nil
}

// SlotNames renders a partition using application names.
func SlotNames(apps []AppTiming, slots [][]int) [][]string {
	out := make([][]string, len(slots))
	for si, slot := range slots {
		for _, i := range slot {
			out[si] = append(out[si], apps[i].Name)
		}
	}
	return out
}
