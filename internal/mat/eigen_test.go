package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedComplex(v []complex128) []complex128 {
	out := append([]complex128(nil), v...)
	sort.Slice(out, func(i, j int) bool {
		if real(out[i]) != real(out[j]) {
			return real(out[i]) < real(out[j])
		}
		return imag(out[i]) < imag(out[j])
	})
	return out
}

func complexSetsEqual(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("eigenvalue count %d, want %d", len(got), len(want))
	}
	g, w := sortedComplex(got), sortedComplex(want)
	for i := range g {
		if cmplx.Abs(g[i]-w[i]) > tol {
			t.Fatalf("eigenvalues differ at %d: got %v want %v\nall got:  %v\nall want: %v", i, g[i], w[i], g, w)
		}
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := Diag([]float64{3, -1, 0.5})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{3, -1, 0.5}, 1e-10)
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := FromRows([][]float64{{1, 5, 7}, {0, 2, 9}, {0, 0, 3}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{1, 2, 3}, 1e-9)
}

func TestEigenvaluesRotation(t *testing.T) {
	// Rotation by θ has eigenvalues e^{±iθ}.
	th := 0.7
	a := FromRows([][]float64{{math.Cos(th), -math.Sin(th)}, {math.Sin(th), math.Cos(th)}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{cmplx.Exp(complex(0, th)), cmplx.Exp(complex(0, -th))}, 1e-10)
}

func TestEigenvaluesSymmetricKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{1, 3}, 1e-10)
}

func TestEigenvaluesCompanionRoots(t *testing.T) {
	// z³ − 6z² + 11z − 6 = (z−1)(z−2)(z−3).
	roots, err := PolyRoots([]float64{-6, 11, -6})
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, roots, []complex128{1, 2, 3}, 1e-8)
}

func TestEigenvalues1x1(t *testing.T) {
	eig, err := Eigenvalues(FromRows([][]float64{{4.2}}))
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{4.2}, 0)
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	eig, err := Eigenvalues(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, eig, []complex128{0, 0, 0}, 0)
}

func TestHessenbergPreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 5, 5)
		h := Hessenberg(a)
		// Hessenberg structure: zeros below first subdiagonal.
		for i := 2; i < 5; i++ {
			for j := 0; j < i-1; j++ {
				if math.Abs(h.At(i, j)) > 1e-10 {
					t.Fatalf("not Hessenberg at (%d,%d): %v", i, j, h.At(i, j))
				}
			}
		}
		ea, err := Eigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		eh, err := Eigenvalues(h)
		if err != nil {
			t.Fatal(err)
		}
		complexSetsEqual(t, ea, eh, 1e-6)
	}
}

// Property: sum of eigenvalues = trace, product = det.
func TestEigenvalueTraceDetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomMatrix(r, n, n)
		eig, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		var sum, prod complex128 = 0, 1
		for _, l := range eig {
			sum += l
			prod *= l
		}
		if math.Abs(real(sum)-a.Trace()) > 1e-7*(1+math.Abs(a.Trace())) {
			return false
		}
		if math.Abs(imag(sum)) > 1e-7 {
			return false
		}
		d := Det(a)
		return cmplx.Abs(prod-complex(d, 0)) < 1e-6*(1+math.Abs(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalues satisfy the characteristic polynomial det(A−λI)≈0.
func TestEigenvaluesAnnihilateCharPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		eig, err := Eigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range eig {
			if imag(l) != 0 {
				continue // det(A−λI) only directly checkable for real λ
			}
			shifted := a.Clone()
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-real(l))
			}
			d := Det(shifted)
			// Scale by norm^n for a meaningful relative check.
			scale := math.Pow(a.NormFro()+1, float64(n))
			if math.Abs(d) > 1e-6*scale {
				t.Fatalf("det(A-λI) = %v for eigenvalue %v (scale %v)", d, l, scale)
			}
		}
	}
}

func TestSpectralRadiusAndStability(t *testing.T) {
	stable := FromRows([][]float64{{0.5, 0.1}, {0, 0.3}})
	r, err := SpectralRadius(stable)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, r, 0.5, 1e-10, "spectral radius")
	ok, err := IsSchurStable(stable)
	if err != nil || !ok {
		t.Fatalf("stable matrix reported unstable (err=%v)", err)
	}
	unstable := Diag([]float64{1.01, 0.2})
	ok, err = IsSchurStable(unstable)
	if err != nil || ok {
		t.Fatalf("unstable matrix reported stable (err=%v)", err)
	}
}

func TestPolyFromRootsRealAndConjugate(t *testing.T) {
	// (z−2)(z−(1+i))(z−(1−i)) = z³ −4z² +6z −4.
	c := PolyFromRoots([]complex128{2, complex(1, 1), complex(1, -1)})
	want := []float64{-4, 6, -4}
	for i := range want {
		almostEq(t, c[i], want[i], 1e-12, "coef")
	}
}

func TestPolyEvalMatrixCayleyHamilton(t *testing.T) {
	// Every matrix annihilates its own characteristic polynomial.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		a := randomMatrix(rng, n, n)
		eig, err := Eigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		c := PolyFromRoots(eig)
		p := PolyEvalMatrix(c, a)
		if p.MaxAbs() > 1e-6*math.Pow(a.NormFro()+1, float64(n)) {
			t.Fatalf("Cayley–Hamilton violated, residual %v", p.MaxAbs())
		}
	}
}

func TestPolyRootsQuadratic(t *testing.T) {
	roots, err := PolyRoots([]float64{2, -3}) // z²−3z+2 = (z−1)(z−2)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, roots, []complex128{1, 2}, 1e-12)
	roots, err = PolyRoots([]float64{1, 0}) // z²+1
	if err != nil {
		t.Fatal(err)
	}
	complexSetsEqual(t, roots, []complex128{complex(0, 1), complex(0, -1)}, 1e-12)
}

func TestExpmKnown(t *testing.T) {
	// expm(0) = I.
	e, err := Expm(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(e, Identity(3), 1e-12) {
		t.Fatalf("expm(0) != I")
	}
	// expm(diag(a)) = diag(e^a).
	d, err := Expm(Diag([]float64{1, -2}))
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, d.At(0, 0), math.E, 1e-9, "e^1")
	almostEq(t, d.At(1, 1), math.Exp(-2), 1e-9, "e^-2")
}

func TestExpmRotationGenerator(t *testing.T) {
	// expm([[0,−θ],[θ,0]]) is rotation by θ.
	th := 0.9
	g := FromRows([][]float64{{0, -th}, {th, 0}})
	e, err := Expm(g)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{math.Cos(th), -math.Sin(th)}, {math.Sin(th), math.Cos(th)}})
	if !EqualApprox(e, want, 1e-9) {
		t.Fatalf("expm rotation wrong:\n%v\nwant\n%v", e, want)
	}
}

// Property: expm(A)·expm(−A) = I.
func TestExpmInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		a := Scale(0.5, randomMatrix(r, n, n))
		e1, err := Expm(a)
		if err != nil {
			return false
		}
		e2, err := Expm(Scale(-1, a))
		if err != nil {
			return false
		}
		return EqualApprox(Mul(e1, e2), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
