package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveVec(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, x[0], 0.8, 1e-12, "x0")
	almostEq(t, x[1], 1.4, 1e-12, "x1")
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveVec(a, []float64{1, 2}); err == nil {
		t.Fatalf("expected singular error")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 1; n <= 6; n++ {
		a := randomMatrix(rng, n, n)
		// Diagonal boost keeps it comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !EqualApprox(Mul(a, inv), Identity(n), 1e-9) {
			t.Fatalf("A·A⁻¹ != I for n=%d", n)
		}
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	almostEq(t, Det(a), -2, 1e-12, "det 2x2")
	b := FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	almostEq(t, Det(b), 24, 1e-12, "det diag")
	// Row swap flips sign.
	c := FromRows([][]float64{{3, 4}, {1, 2}})
	almostEq(t, Det(c), 2, 1e-12, "det swapped")
}

func TestDetSingularIsZero(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	almostEq(t, Det(a), 0, 1e-12, "det singular")
}

// Property: det(AB) = det(A)det(B).
func TestDetProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 3)
		b := randomMatrix(r, 3, 3)
		lhs := Det(Mul(a, b))
		rhs := Det(a) * Det(b)
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve returns x with A·x = b.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(Mul(l, l.T()), a, 1e-12) {
		t.Fatalf("L·Lᵀ != A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := Cholesky(a); err == nil {
		t.Fatalf("expected ErrNotSPD")
	}
	b := FromRows([][]float64{{1, 5}, {2, 1}}) // not symmetric
	if _, err := Cholesky(b); err == nil {
		t.Fatalf("expected ErrNotSPD for asymmetric input")
	}
}

func TestIsPositiveDefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Gram matrices are PSD; add εI to make them PD.
	for trial := 0; trial < 20; trial++ {
		g := randomMatrix(rng, 4, 4)
		a := Add(Mul(g.T(), g), Scale(0.1, Identity(4)))
		if !IsPositiveDefinite(a) {
			t.Fatalf("Gram+0.1I not reported PD:\n%v", a)
		}
		if IsPositiveDefinite(Scale(-1, a)) {
			t.Fatalf("negative definite reported PD")
		}
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(New(2, 3)); err == nil {
		t.Fatalf("expected dimension error")
	}
}

func TestRankFullAndDeficient(t *testing.T) {
	if r := Rank(Identity(4)); r != 4 {
		t.Fatalf("rank(I4) = %d", r)
	}
	// Rank-1 outer product.
	u := ColVec([]float64{1, 2, 3})
	if r := Rank(Mul(u, u.T())); r != 1 {
		t.Fatalf("rank(uuᵀ) = %d", r)
	}
	if r := Rank(New(3, 3)); r != 0 {
		t.Fatalf("rank(0) = %d", r)
	}
	// Tall and wide shapes.
	tall := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	if r := Rank(tall); r != 2 {
		t.Fatalf("rank(tall) = %d", r)
	}
	if r := Rank(tall.T()); r != 2 {
		t.Fatalf("rank(wide) = %d", r)
	}
}

func TestRankNearDeficient(t *testing.T) {
	// Two nearly parallel columns: rank 2 numerically collapses to 1 when
	// the perturbation is below the tolerance.
	a := FromRows([][]float64{{1, 1}, {1, 1 + 1e-14}})
	if r := Rank(a); r != 1 {
		t.Fatalf("near-singular rank = %d, want 1", r)
	}
	b := FromRows([][]float64{{1, 1}, {1, 1.001}})
	if r := Rank(b); r != 2 {
		t.Fatalf("clearly regular rank = %d, want 2", r)
	}
}

func TestRankRandomProducts(t *testing.T) {
	// rank(AB) ≤ min(rank A, rank B); with random full-rank factors of
	// inner dimension k the product has rank k.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(3)
		a := randomMatrix(rng, 5, k)
		b := randomMatrix(rng, k, 5)
		if r := Rank(Mul(a, b)); r != k {
			t.Fatalf("rank of rank-%d product = %d", k, r)
		}
	}
}
