// Package mat provides the dense linear algebra needed by the control,
// switching and verification layers: basic matrix arithmetic, LU-based
// solving, Cholesky factorisation, Hessenberg reduction with a shifted-QR
// eigenvalue iteration, matrix exponentials and Kronecker products.
//
// The package is deliberately small and allocation-honest: matrices are
// row-major []float64 slices, all dimensions are checked, and every routine
// that can fail numerically returns an error instead of panicking. It is
// tuned for the small (n ≤ 10) systems that appear in control co-design, not
// for large-scale numerical work.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorisation meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// New returns a zero-initialised r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows requires a non-empty row set")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mat: FromRows rows have unequal lengths")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// FromSlice builds an r×c matrix from row-major data (copied).
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic("mat: FromSlice data length mismatch")
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// ColVec returns a len(v)×1 column vector matrix.
func ColVec(v []float64) *Matrix { return FromSlice(len(v), 1, v) }

// RowVec returns a 1×len(v) row vector matrix.
func RowVec(v []float64) *Matrix { return FromSlice(1, len(v), v) }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := New(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	mustSameShape(a, b)
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape(a, b)
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = s * a.data[i]
	}
	return out
}

// Mul returns a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(ErrDimension)
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.data[i*a.cols+k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
	return out
}

// MulVec returns a·x for a vector x (len = a.Cols()).
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(ErrDimension)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

func mustSameShape(a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(ErrDimension)
	}
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(ErrDimension)
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// NormFro returns the Frobenius norm.
func (m *Matrix) NormFro() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute row sum.
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for j := 0; j < m.cols; j++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Norm1 returns the maximum absolute column sum.
func (m *Matrix) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.cols; j++ {
		s := 0.0
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MaxAbs returns the largest |entry|.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// EqualApprox reports whether a and b have the same shape and all entries
// within tol of each other.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize returns (m + mᵀ)/2.
func (m *Matrix) Symmetrize() *Matrix {
	return Scale(0.5, Add(m, m.T()))
}

// HStack concatenates matrices horizontally.
func HStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("mat: HStack of nothing")
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(ErrDimension)
		}
		cols += m.cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		for _, m := range ms {
			copy(out.data[i*cols+off:i*cols+off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
			off += m.cols
		}
	}
	return out
}

// VStack concatenates matrices vertically.
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("mat: VStack of nothing")
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(ErrDimension)
		}
		rows += m.rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off*cols:off*cols+len(m.data)], m.data)
		off += m.rows
	}
	return out
}

// Kron returns the Kronecker product a⊗b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.data[i*a.cols+j]
			if av == 0 {
				continue
			}
			for p := 0; p < b.rows; p++ {
				for q := 0; q < b.cols; q++ {
					out.data[(i*b.rows+p)*out.cols+(j*b.cols+q)] = av * b.data[p*b.cols+q]
				}
			}
		}
	}
	return out
}

// Vec stacks the columns of m into a single column vector (column-major
// vectorisation, as used by the Kronecker identity vec(AXB) = (Bᵀ⊗A)vec(X)).
func Vec(m *Matrix) []float64 {
	out := make([]float64, m.rows*m.cols)
	k := 0
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			out[k] = m.data[i*m.cols+j]
			k++
		}
	}
	return out
}

// Unvec is the inverse of Vec for an r×c target shape.
func Unvec(v []float64, r, c int) *Matrix {
	if len(v) != r*c {
		panic(ErrDimension)
	}
	m := New(r, c)
	k := 0
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			m.data[i*c+j] = v[k]
			k++
		}
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "% .6g", m.data[i*m.cols+j])
		}
		b.WriteString("]")
		if i != m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
