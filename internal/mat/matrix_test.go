package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("zero init violated")
	}
}

func TestFromRowsAndSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if !EqualApprox(a, b, 0) {
		t.Fatalf("FromRows != FromSlice:\n%v\n%v", a, b)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on out-of-range access")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !EqualApprox(i3, d, 0) {
		t.Fatalf("Identity(3) != Diag(ones)")
	}
	if i3.Trace() != 3 {
		t.Fatalf("trace(I3) = %v", i3.Trace())
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	sum := Add(a, b)
	want := FromRows([][]float64{{5, 5}, {5, 5}})
	if !EqualApprox(sum, want, 0) {
		t.Fatalf("Add wrong: %v", sum)
	}
	if !EqualApprox(Sub(sum, b), a, 0) {
		t.Fatalf("Sub(Add(a,b),b) != a")
	}
	if !EqualApprox(Scale(2, a), Add(a, a), 0) {
		t.Fatalf("Scale(2,a) != a+a")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !EqualApprox(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 6; n++ {
		a := randomMatrix(rng, n, n)
		if !EqualApprox(Mul(a, Identity(n)), a, 1e-12) {
			t.Fatalf("A·I != A for n=%d", n)
		}
		if !EqualApprox(Mul(Identity(n), a), a, 1e-12) {
			t.Fatalf("I·A != A for n=%d", n)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 3)
	x := []float64{1, -2, 0.5}
	got := a.MulVec(x)
	want := Mul(a, ColVec(x))
	for i, v := range got {
		almostEq(t, v, want.At(i, 0), 1e-12, "MulVec")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape wrong")
	}
	if !EqualApprox(at.T(), a, 0) {
		t.Fatalf("(Aᵀ)ᵀ != A")
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestTransposeProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		return EqualApprox(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestHVStack(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3}, {4}})
	h := HStack(a, b)
	if h.Rows() != 2 || h.Cols() != 2 || h.At(0, 1) != 3 {
		t.Fatalf("HStack wrong: %v", h)
	}
	v := VStack(a.T(), b.T())
	if v.Rows() != 2 || v.Cols() != 2 || v.At(1, 0) != 3 {
		t.Fatalf("VStack wrong: %v", v)
	}
}

func TestKronVecIdentity(t *testing.T) {
	// vec(A·X·B) = (Bᵀ ⊗ A)·vec(X)
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 3, 3)
	x := randomMatrix(rng, 3, 2)
	b := randomMatrix(rng, 2, 2)
	lhs := Vec(Mul(Mul(a, x), b))
	rhs := Kron(b.T(), a).MulVec(Vec(x))
	for i := range lhs {
		almostEq(t, rhs[i], lhs[i], 1e-10, "Kron/Vec identity")
	}
}

func TestUnvecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 3, 4)
	if !EqualApprox(Unvec(Vec(m), 3, 4), m, 0) {
		t.Fatalf("Unvec(Vec(m)) != m")
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {-3, 4}})
	almostEq(t, a.NormFro(), math.Sqrt(30), 1e-12, "fro")
	almostEq(t, a.NormInf(), 7, 0, "inf")
	almostEq(t, a.Norm1(), 6, 0, "one")
	almostEq(t, a.MaxAbs(), 4, 0, "maxabs")
}

func TestSymmetric(t *testing.T) {
	s := FromRows([][]float64{{2, 1}, {1, 2}})
	if !s.IsSymmetric(0) {
		t.Fatalf("symmetric matrix reported asymmetric")
	}
	a := FromRows([][]float64{{2, 1}, {0, 2}})
	if a.IsSymmetric(1e-12) {
		t.Fatalf("asymmetric matrix reported symmetric")
	}
	if !Scale(2, a.Symmetrize()).IsSymmetric(0) {
		t.Fatalf("Symmetrize not symmetric")
	}
}

func TestRowColClone(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatalf("Clone aliases data")
	}
	r := a.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	col := a.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("Col(1) = %v", col)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = FromRows([][]float64{{1, 2}, {3, 4}}).String()
}

func TestTraceProperty(t *testing.T) {
	// trace(AB) == trace(BA)
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 4, 4)
		b := randomMatrix(r, 4, 4)
		return math.Abs(Mul(a, b).Trace()-Mul(b, a).Trace()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
