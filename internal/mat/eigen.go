package mat

import (
	"errors"
	"math"
	"sort"
)

// ErrNoConvergence is returned when the QR iteration fails to converge.
var ErrNoConvergence = errors.New("mat: eigenvalue iteration did not converge")

const machEps = 2.220446049250313e-16

// Hessenberg reduces a square matrix to upper Hessenberg form by Householder
// similarity transformations and returns the reduced matrix. The input is not
// modified. The result has the same eigenvalues as the input.
func Hessenberg(a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic(ErrDimension)
	}
	n := a.rows
	h := a.Clone()
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		// Householder vector for column k, rows k+1..n-1.
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm += h.data[i*n+k] * h.data[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm < machEps*(1+h.MaxAbs()) {
			continue
		}
		alpha := -norm
		if h.data[(k+1)*n+k] < 0 {
			alpha = norm
		}
		vnorm := 0.0
		for i := k + 1; i < n; i++ {
			v[i] = h.data[i*n+k]
			if i == k+1 {
				v[i] -= alpha
			}
			vnorm += v[i] * v[i]
		}
		vnorm = math.Sqrt(vnorm)
		if vnorm == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			v[i] /= vnorm
		}
		// A ← H·A with H = I − 2vvᵀ acting on rows k+1..n-1.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * h.data[i*n+j]
			}
			s *= 2
			for i := k + 1; i < n; i++ {
				h.data[i*n+j] -= s * v[i]
			}
		}
		// A ← A·H acting on columns k+1..n-1.
		for i := 0; i < n; i++ {
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += h.data[i*n+j] * v[j]
			}
			s *= 2
			for j := k + 1; j < n; j++ {
				h.data[i*n+j] -= s * v[j]
			}
		}
		// Clean the annihilated entries.
		h.data[(k+1)*n+k] = alpha
		for i := k + 2; i < n; i++ {
			h.data[i*n+k] = 0
		}
	}
	return h
}

// Eigenvalues returns all eigenvalues of a square matrix, sorted by real
// part then imaginary part. It reduces to Hessenberg form and runs a
// Francis double-shift QR iteration (the classic hqr algorithm).
func Eigenvalues(a *Matrix) ([]complex128, error) {
	if a.rows != a.cols {
		panic(ErrDimension)
	}
	n := a.rows
	if n == 1 {
		return []complex128{complex(a.data[0], 0)}, nil
	}
	h := Hessenberg(a)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := hqr(h, wr, wi); err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(wr[i], wi[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if real(out[i]) != real(out[j]) {
			return real(out[i]) < real(out[j])
		}
		return imag(out[i]) < imag(out[j])
	})
	return out, nil
}

// SpectralRadius returns max |λ| over the eigenvalues of a.
func SpectralRadius(a *Matrix) (float64, error) {
	eig, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, l := range eig {
		if m := cmplxAbs(l); m > r {
			r = m
		}
	}
	return r, nil
}

// IsSchurStable reports whether all eigenvalues of a lie strictly inside the
// unit circle (discrete-time asymptotic stability).
func IsSchurStable(a *Matrix) (bool, error) {
	r, err := SpectralRadius(a)
	if err != nil {
		return false, err
	}
	return r < 1, nil
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func sign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// hqr finds the eigenvalues of an upper Hessenberg matrix h (destroyed) via
// the Francis double-shift QR iteration. Adapted from the classic EISPACK
// hqr routine (0-indexed).
func hqr(h *Matrix, wr, wi []float64) error {
	n := h.rows
	a := func(i, j int) float64 { return h.data[i*n+j] }
	set := func(i, j int, v float64) { h.data[i*n+j] = v }

	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := maxInt(i-1, 0); j < n; j++ {
			anorm += math.Abs(a(i, j))
		}
	}
	if anorm == 0 {
		return nil // zero matrix
	}
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := math.Abs(a(l-1, l-1)) + math.Abs(a(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(a(l, l-1)) <= machEps*s {
					set(l, l-1, 0)
					break
				}
			}
			x := a(nn, nn)
			if l == nn {
				// One real root found.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y := a(nn-1, nn-1)
			w := a(nn, nn-1) * a(nn-1, nn)
			if l == nn-1 {
				// Two roots found.
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					z = p + sign(z, p)
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1], wi[nn] = 0, 0
				} else {
					wr[nn-1] = x + p
					wr[nn] = x + p
					wi[nn] = z
					wi[nn-1] = -z
				}
				nn -= 2
				break
			}
			// No roots yet; continue iterating.
			if its == 60 {
				return ErrNoConvergence
			}
			if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					set(i, i, a(i, i)-x)
				}
				s := math.Abs(a(nn, nn-1)) + math.Abs(a(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift and look for two consecutive small subdiagonals.
			var m int
			var p, q, r, z float64
			for m = nn - 2; m >= l; m-- {
				z = a(m, m)
				rr := x - z
				ss := y - z
				p = (rr*ss-w)/a(m+1, m) + a(m, m+1)
				q = a(m+1, m+1) - z - rr - ss
				r = a(m+2, m+1)
				s := math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(a(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(a(m-1, m-1)) + math.Abs(z) + math.Abs(a(m+1, m+1)))
				if u <= machEps*v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				set(i, i-2, 0)
				if i != m+2 {
					set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn and columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = a(k, k-1)
					q = a(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = a(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := sign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						set(k, k-1, -a(k, k-1))
					}
				} else {
					set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := a(k, j) + q*a(k+1, j)
					if k != nn-1 {
						pp += r * a(k+2, j)
						set(k+2, j, a(k+2, j)-pp*z)
					}
					set(k+1, j, a(k+1, j)-pp*y)
					set(k, j, a(k, j)-pp*x)
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				// Column modification.
				for i := l; i <= mmin; i++ {
					pp := x*a(i, k) + y*a(i, k+1)
					if k != nn-1 {
						pp += z * a(i, k+2)
						set(i, k+2, a(i, k+2)-pp*r)
					}
					set(i, k+1, a(i, k+1)-pp*q)
					set(i, k, a(i, k)-pp)
				}
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
