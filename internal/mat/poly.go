package mat

import "math"

// PolyFromRoots expands ∏(z − rᵢ) into real monic polynomial coefficients
// c[0] + c[1]z + … + c[n−1]zⁿ⁻¹ + zⁿ, returned as c (length n, excluding the
// leading 1). Complex roots must come in conjugate pairs; the imaginary
// residue of the expansion is discarded (it is ~machine epsilon for true
// conjugate pairs).
func PolyFromRoots(roots []complex128) []float64 {
	// coeffs of the monic polynomial, degree grows as we multiply factors.
	c := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(c)+1)
		for i, v := range c {
			next[i+1] += v
			next[i] -= r * v
		}
		c = next
	}
	// c[i] is the coefficient of z^i with c[n] = 1.
	out := make([]float64, len(roots))
	for i := 0; i < len(roots); i++ {
		out[i] = real(c[i])
	}
	return out
}

// PolyEvalMatrix evaluates the monic polynomial with low-order coefficients
// c (as produced by PolyFromRoots) at the square matrix A:
//
//	P(A) = Aⁿ + c[n−1]Aⁿ⁻¹ + … + c[1]A + c[0]I.
func PolyEvalMatrix(c []float64, a *Matrix) *Matrix {
	n := a.rows
	// Horner: P = ((A + c[n-1] I) A + c[n-2] I) A + ...
	p := Identity(n)
	for i := len(c) - 1; i >= 0; i-- {
		p = Mul(p, a)
		for d := 0; d < n; d++ {
			p.data[d*n+d] += c[i]
		}
	}
	return p
}

// Companion returns the companion matrix of the monic polynomial with
// low-order coefficients c (degree = len(c)). Its eigenvalues are the
// polynomial's roots.
func Companion(c []float64) *Matrix {
	n := len(c)
	m := New(n, n)
	for i := 1; i < n; i++ {
		m.data[i*n+i-1] = 1
	}
	for i := 0; i < n; i++ {
		m.data[i*n+n-1] = -c[i]
	}
	return m
}

// PolyRoots returns the roots of the monic polynomial with low-order
// coefficients c, via the companion-matrix eigenvalues.
func PolyRoots(c []float64) ([]complex128, error) {
	if len(c) == 0 {
		return nil, nil
	}
	if len(c) == 1 {
		return []complex128{complex(-c[0], 0)}, nil
	}
	if len(c) == 2 {
		// Quadratic z² + c1 z + c0: solve directly for accuracy.
		b, c0 := c[1], c[0]
		disc := b*b - 4*c0
		if disc >= 0 {
			s := math.Sqrt(disc)
			return []complex128{complex((-b - s) / 2, 0), complex((-b + s) / 2, 0)}, nil
		}
		s := math.Sqrt(-disc)
		return []complex128{complex(-b/2, -s/2), complex(-b/2, s/2)}, nil
	}
	return Eigenvalues(Companion(c))
}

// Expm returns the matrix exponential of a via 6th-order Padé approximation
// with scaling and squaring.
func Expm(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		panic(ErrDimension)
	}
	n := a.rows
	norm := a.NormInf()
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	x := Scale(1/math.Pow(2, float64(s)), a)
	// Padé (6,6): coefficients c_k = c_{k-1}·(p−k+1)/(k·(2p−k+1)).
	const p = 6
	c := 1.0
	num := Identity(n)
	den := Identity(n)
	pow := Identity(n)
	for k := 1; k <= p; k++ {
		c = c * float64(p-k+1) / float64(k*(2*p-k+1))
		pow = Mul(pow, x)
		term := Scale(c, pow)
		num = Add(num, term)
		if k%2 == 0 {
			den = Add(den, term)
		} else {
			den = Sub(den, term)
		}
	}
	e, err := Solve(den, num)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s; i++ {
		e = Mul(e, e)
	}
	return e, nil
}
