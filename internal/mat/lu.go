package mat

import "math"

// LU holds an LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// Factor computes the LU factorisation of a square matrix with partial
// pivoting. It returns ErrSingular when a pivot underflows to (near) zero.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, ErrDimension
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = m
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= m * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// SolveVec solves A·x = b for one right-hand side.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(ErrDimension)
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.data[i*n+j] * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.data[i*n+j] * x[j]
		}
		x[i] /= f.lu.data[i*n+i]
	}
	return x
}

// Solve solves A·X = B column by column.
func (f *LU) Solve(b *Matrix) *Matrix {
	if b.rows != f.lu.rows {
		panic(ErrDimension)
	}
	out := New(b.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		col := f.SolveVec(b.Col(j))
		for i, v := range col {
			out.data[i*out.cols+j] = v
		}
	}
	return out
}

// Solve solves the square system A·X = B.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveVec solves the square system A·x = b.
func SolveVec(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix (0 when singular).
func Det(a *Matrix) float64 {
	f, err := Factor(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive definite A. It returns ErrNotSPD otherwise.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, ErrDimension
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, ErrNotSPD
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return l, nil
}

// IsPositiveDefinite reports whether the symmetric part of a is positive
// definite (via Cholesky of the symmetrised matrix).
func IsPositiveDefinite(a *Matrix) bool {
	_, err := Cholesky(a.Symmetrize())
	return err == nil
}
