package mat

import "math"

// QRP holds a column-pivoted Householder QR factorisation A·P = Q·R, used
// for numerically robust rank decisions (the controllability and
// observability tests in the lti package rely on it).
type QRP struct {
	qr         *Matrix // packed Householder vectors + R
	rows, cols int
	piv        []int
	rdag       []float64 // |R[k][k]| in pivot order
}

// FactorQRP computes the column-pivoted QR factorisation of a (any shape).
func FactorQRP(a *Matrix) *QRP {
	m, n := a.rows, a.cols
	qr := a.Clone()
	piv := make([]int, n)
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		piv[j] = j
		s := 0.0
		for i := 0; i < m; i++ {
			v := qr.data[i*n+j]
			s += v * v
		}
		norms[j] = s
	}
	steps := m
	if n < m {
		steps = n
	}
	rdiag := make([]float64, 0, steps)
	for k := 0; k < steps; k++ {
		// Pivot: bring the column with the largest remaining norm to k.
		best := k
		for j := k + 1; j < n; j++ {
			if norms[j] > norms[best] {
				best = j
			}
		}
		if best != k {
			for i := 0; i < m; i++ {
				qr.data[i*n+k], qr.data[i*n+best] = qr.data[i*n+best], qr.data[i*n+k]
			}
			piv[k], piv[best] = piv[best], piv[k]
			norms[k], norms[best] = norms[best], norms[k]
		}
		// Householder vector for column k below the diagonal.
		alpha := 0.0
		for i := k; i < m; i++ {
			v := qr.data[i*n+k]
			alpha += v * v
		}
		alpha = math.Sqrt(alpha)
		if qr.data[k*n+k] > 0 {
			alpha = -alpha
		}
		rdiag = append(rdiag, math.Abs(alpha))
		if alpha == 0 {
			continue
		}
		// v = x − α·e1, normalised so v[k] carries the factor.
		qr.data[k*n+k] -= alpha
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vnorm2 += qr.data[i*n+k] * qr.data[i*n+k]
		}
		if vnorm2 == 0 {
			qr.data[k*n+k] = alpha
			continue
		}
		// Apply H = I − 2vvᵀ/‖v‖² to the trailing columns.
		for j := k + 1; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += qr.data[i*n+k] * qr.data[i*n+j]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				qr.data[i*n+j] -= f * qr.data[i*n+k]
			}
		}
		// Store α as the R diagonal; keep v below (packed form).
		qr.data[k*n+k] = alpha
		// Downdate column norms.
		for j := k + 1; j < n; j++ {
			v := qr.data[k*n+j]
			norms[j] -= v * v
			if norms[j] < 0 {
				norms[j] = 0
			}
		}
	}
	return &QRP{qr: qr, rows: m, cols: n, piv: piv, rdag: rdiag}
}

// Rank returns the numerical rank relative to tol·|R[0][0]| (tol defaults
// to 1e-10 when ≤ 0).
func (f *QRP) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	if len(f.rdag) == 0 || f.rdag[0] == 0 {
		return 0
	}
	thresh := tol * f.rdag[0]
	r := 0
	for _, d := range f.rdag {
		if d > thresh {
			r++
		}
	}
	return r
}

// Rank returns the numerical rank of a via column-pivoted QR.
func Rank(a *Matrix) int {
	return FactorQRP(a).Rank(0)
}
