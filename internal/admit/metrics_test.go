package admit

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics GETs url and parses the Prometheus text into a flat
// series→value map (comments skipped, histogram buckets included under
// their full name{labels} key).
func scrapeMetrics(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricszExposition: the admission handler serves the whole telemetry
// plane at GET /metricsz — after one verified submit, the engine counters
// have absorbed the search, the admission counters the request, and the
// per-config latency histogram one observation. Values are asserted as
// deltas: the registry is process-global and other tests feed it too.
func TestMetricszExposition(t *testing.T) {
	rig := newRig(t, backendCase{"local", 0, false}, nil)
	url := rig.ts.URL + "/metricsz"
	before := scrapeMetrics(t, url)

	resp, body := rig.postRaw(t, `{"apps":["C6","C2"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"runId":"`) {
		t.Errorf("admission response carries no run ID: %s", body)
	}

	after := scrapeMetrics(t, url)
	// S2 = C6+C2 = 10201 states through the engine counters.
	if d := after["tightcps_verify_states_total"] - before["tightcps_verify_states_total"]; d < 10201 {
		t.Errorf("verify states counter moved by %v, want ≥ 10201", d)
	}
	if d := after["tightcps_verify_runs_total"] - before["tightcps_verify_runs_total"]; d < 1 {
		t.Errorf("verify runs counter moved by %v, want ≥ 1", d)
	}
	if d := after["tightcps_admit_submissions_total"] - before["tightcps_admit_submissions_total"]; d < 1 {
		t.Errorf("submissions counter moved by %v, want ≥ 1", d)
	}
	// Exactly one latency histogram series must have absorbed this request:
	// its _count is labeled by the config fingerprint, so sum the family.
	latDelta := 0.0
	for k, v := range after {
		if strings.HasPrefix(k, "tightcps_admit_latency_seconds_count{") {
			latDelta += v - before[k]
		}
	}
	if latDelta < 1 {
		t.Errorf("admission latency histograms absorbed %v observations, want ≥ 1", latDelta)
	}
	if _, ok := after["tightcps_admit_queue_depth"]; !ok {
		t.Error("queue depth gauge missing from exposition")
	}
	if d := after["tightcps_admit_backend_seconds_count"] - before["tightcps_admit_backend_seconds_count"]; d < 1 {
		t.Errorf("backend-run histogram moved by %v, want ≥ 1", d)
	}
}

// TestStatszTimings: the JSON stats surface mirrors the histograms as
// count/mean summaries once requests have flowed.
func TestStatszTimings(t *testing.T) {
	rig := newRig(t, backendCase{"local", 0, false}, nil)
	if resp, body := rig.postRaw(t, `{"apps":["C1","C5"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	resp, err := http.Get(rig.ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"queueWait"`, `"backendRun"`, `"admitLatency"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("statsz missing %s: %s", want, raw)
		}
	}
}
