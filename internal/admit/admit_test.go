package admit

// End-to-end equivalence: every HTTP verdict must be byte-identical to
// the in-process engine's, across the whole backend matrix — the paper's
// S1/S2 slots, violating synthetics, narrow and wide encodings, with and
// without the symmetry quotient. Plus the service semantics riding the
// same rig: cache hits, warm starts, async jobs, stats, validation.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// equivalenceCases: schedulable and violating sets on both encodings.
// S1 (1 440 712 states) is the paper's hardest verification; overload7
// exercises the wide encoding's violation path; the sym cases run the
// quotient on both encodings.
var equivalenceCases = []struct {
	name string
	apps []string // named case-study slot, or
	ps   func() []*switching.Profile
	spec verify.Spec
}{
	{name: "S2", apps: []string{"C6", "C2"}},
	{name: "S1", apps: []string{"C1", "C5", "C4", "C3"}},
	{name: "overloadNarrow", ps: func() []*switching.Profile {
		return []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}
	}},
	{name: "overloadWide", ps: func() []*switching.Profile { return fleet(7, 2, 1, 2, 5) }},
	{name: "narrowSym", ps: func() []*switching.Profile { return fleet(6, 5, 2, 4, 20) },
		spec: verify.Spec{Symmetry: true}},
	{name: "wideSym", ps: func() []*switching.Profile { return fleet(7, 6, 1, 2, 10) },
		spec: verify.Spec{Symmetry: true}},
	{name: "wideBounded", ps: func() []*switching.Profile { return fleet(6, 5, 2, 4, 20) },
		spec: verify.Spec{Bounded: true}},
}

// TestServiceVerdictEquivalence is the tentpole assertion: one service
// per backend, every case submitted twice — the first answer byte-equal
// to the local engine's verdict JSON, the second a cache hit carrying the
// identical bytes.
func TestServiceVerdictEquivalence(t *testing.T) {
	for _, bc := range backendMatrix {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			r := newRig(t, bc, nil)
			for _, tc := range equivalenceCases {
				var req *AdmitRequest
				var ps []*switching.Profile
				var names []string
				if tc.apps != nil {
					ps = caseProfiles(t, tc.apps...)
					names = tc.apps
					req = &AdmitRequest{Apps: tc.apps, Config: tc.spec}
				} else {
					ps = tc.ps()
					names = namesOf(ps)
					req = inlineReq(ps, tc.spec)
				}
				want := localVerdictJSON(t, ps, tc.spec, names)

				status, resp, gotVerdict := r.submit(t, req)
				if status != http.StatusOK {
					t.Fatalf("%s: HTTP %d (%s)", tc.name, status, resp.Error)
				}
				if resp.Cached || resp.Warm {
					t.Fatalf("%s: first submit served from cache", tc.name)
				}
				if !bytes.Equal(gotVerdict, want) {
					t.Errorf("%s: verdict over %s diverges from local engine:\n got %s\nwant %s",
						tc.name, bc.name, gotVerdict, want)
				}

				status, resp, cachedVerdict := r.submit(t, req)
				if status != http.StatusOK || !resp.Cached {
					t.Fatalf("%s: second identical submit: HTTP %d cached=%v", tc.name, status, resp.Cached)
				}
				if !bytes.Equal(cachedVerdict, want) {
					t.Errorf("%s: cached verdict diverges:\n got %s\nwant %s", tc.name, cachedVerdict, want)
				}
			}
		})
	}
}

// TestServiceOrderIndependence: permutations of one profile set are one
// admission question — the second order must hit the cache and answer
// with the identical verdict bytes.
func TestServiceOrderIndependence(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	ps := []*switching.Profile{prof("A", 2, 2, 3, 15), prof("B", 6, 2, 4, 25), prof("C", 9, 3, 5, 30)}
	status, _, first := r.submit(t, inlineReq(ps, verify.Spec{}))
	if status != http.StatusOK {
		t.Fatalf("HTTP %d", status)
	}
	perm := []*switching.Profile{ps[2], ps[0], ps[1]}
	status, resp, second := r.submit(t, inlineReq(perm, verify.Spec{}))
	if status != http.StatusOK || !resp.Cached {
		t.Fatalf("permuted resubmit: HTTP %d cached=%v", status, resp.Cached)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("permuted resubmit verdict diverges:\n got %s\nwant %s", second, first)
	}
}

// TestServiceAsyncJob: an async submit returns 202 + a job id, the job
// polls to done with the same verdict bytes a sync submit yields, and
// unknown jobs are 404.
func TestServiceAsyncJob(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	ps := fleet(3, 6, 1, 2, 10)
	want := localVerdictJSON(t, ps, verify.Spec{}, namesOf(ps))

	req := inlineReq(ps, verify.Spec{})
	req.Async = true
	status, resp, _ := r.submit(t, req)
	if status != http.StatusAccepted || resp.Job == "" {
		t.Fatalf("async submit: HTTP %d job=%q", status, resp.Job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		hr, err := http.Get(r.ts.URL + "/v1/jobs/" + resp.Job)
		if err != nil {
			t.Fatal(err)
		}
		var jr struct {
			Status     string          `json:"status"`
			Error      string          `json:"error"`
			RawVerdict json.RawMessage `json:"verdict"`
		}
		if err := json.NewDecoder(hr.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if jr.Status == "done" {
			if !bytes.Equal([]byte(jr.RawVerdict), want) {
				t.Fatalf("async verdict diverges:\n got %s\nwant %s", jr.RawVerdict, want)
			}
			break
		}
		if jr.Status != "pending" {
			t.Fatalf("job status %q (%s)", jr.Status, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("async job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	hr, err := http.Get(r.ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", hr.StatusCode)
	}
}

// TestServiceStatsAndHealth: the counters move and /healthz answers.
func TestServiceStatsAndHealth(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	req := inlineReq(fleet(2, 8, 2, 4, 40), verify.Spec{})
	for i := 0; i < 3; i++ {
		if status, _, _ := r.submit(t, req); status != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d", i, status)
		}
	}
	st, err := r.cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 3 || st.Verifications != 1 || st.CacheHits != 2 {
		t.Fatalf("stats after 3 identical submits: %+v", st)
	}
	if st.Backend != "local engine" || st.Draining {
		t.Fatalf("stats identity: %+v", st)
	}
	hr, err := http.Get(r.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", hr.StatusCode)
	}
}

// TestServiceWarmStart: a drained service checkpoints its shard files; a
// fresh service over the same cache dir answers the admission bit from
// disk, marked warm, without a backend run.
func TestServiceWarmStart(t *testing.T) {
	dir := t.TempDir()
	ps := fleet(3, 6, 1, 2, 10)
	req := inlineReq(ps, verify.Spec{})

	r1 := newRig(t, backendCase{name: "local"}, func(o *Options) { o.CacheDir = dir })
	status, resp, _ := r1.submit(t, req)
	if status != http.StatusOK || !resp.Verdict.Schedulable {
		t.Fatalf("cold submit: HTTP %d %+v", status, resp.Verdict)
	}
	r1.svc.Drain()
	if !r1.svc.Drained() {
		t.Fatal("Drain returned but Drained() is false")
	}

	r2 := newRig(t, backendCase{name: "local"}, func(o *Options) { o.CacheDir = dir })
	status, resp, _ = r2.submit(t, req)
	if status != http.StatusOK {
		t.Fatalf("warm submit: HTTP %d", status)
	}
	if !resp.Warm || resp.Verdict == nil || !resp.Verdict.Schedulable {
		t.Fatalf("warm submit not served from the persistent cache: %+v", resp)
	}
	if resp.Verdict.States != 0 || resp.Verdict.Violator != -1 {
		t.Fatalf("warm verdict invented search counts: %+v", resp.Verdict)
	}
	st, err := r2.cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Verifications != 0 || st.WarmHits != 1 {
		t.Fatalf("warm start ran a backend verification: %+v", st)
	}
}

// TestServiceValidation: malformed submissions are 400s with a reason,
// and never reach the backend.
func TestServiceValidation(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	cases := []struct {
		name string
		body string
		want string
	}{
		{"malformedJSON", `{`, "malformed"},
		{"empty", `{}`, "no profiles"},
		{"bothAppsAndProfiles", `{"apps":["C1"],"profiles":[{"r":5,"twStar":0,"tdwMinus":[1],"tdwPlus":[2]}]}`, "both"},
		{"unknownApp", `{"apps":["C9"]}`, "c9"},
		{"badPolicy", `{"apps":["C6","C2"],"config":{"policy":"chaotic"}}`, "policy"},
		{"negativeBudget", `{"apps":["C6","C2"],"config":{"maxStates":-5}}`, "negative"},
		{"badDwellTables", `{"profiles":[{"r":5,"twStar":3,"tdwMinus":[1],"tdwPlus":[2]}]}`, "dwell"},
		{"badInterArrival", `{"profiles":[{"r":0,"twStar":0,"tdwMinus":[1],"tdwPlus":[2]}]}`, "positive"},
	}
	for _, tc := range cases {
		resp, raw := r.postRaw(t, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		var ar AdmitResponse
		if err := json.Unmarshal(raw, &ar); err != nil {
			t.Errorf("%s: undecodable 400 body %q", tc.name, raw)
			continue
		}
		if !strings.Contains(strings.ToLower(ar.Error), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, ar.Error, tc.want)
		}
	}
	st, err := r.cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Verifications != 0 {
		t.Fatalf("invalid submissions reached the backend: %+v", st)
	}
}

// TestServiceStateBudgetRefusal: a request whose search busts its state
// budget is a 422, and the budget-capped verdict is not served to
// uncapped submits (MaxStates salts the key).
func TestServiceStateBudgetRefusal(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	ps := fleet(4, 8, 2, 4, 40) // 2.9M states, far over the budget below
	req := inlineReq(ps, verify.Spec{MaxStates: 1000})
	status, resp, _ := r.submit(t, req)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("busted budget: HTTP %d (%s)", status, resp.Error)
	}
	if !strings.Contains(resp.Error, "state") {
		t.Fatalf("busted budget error does not say why: %q", resp.Error)
	}
}
