package admit

// The HTTP/JSON surface of the admission service.
//
//	POST /v1/admit      submit a profile set + slot config; sync by default,
//	                    {"async":true} returns 202 + a job id
//	GET  /v1/jobs/{id}  poll an async submit
//	GET  /healthz       liveness ("draining" while refusing submits)
//	GET  /statsz        service counters (Stats)
//
// The deterministic verdict lives in its own sub-object ("verdict") so
// clients — and the e2e harness — can compare verdicts byte-for-byte
// across backends; the variable serving fields (cached, coalesced,
// elapsedMs) sit beside it, never inside.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tightcps/internal/obs"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// ProfileJSON is the wire form of a switching profile: the
// admission-relevant content (what mapping.Fingerprint hashes) plus the
// name used in verdict reporting.
type ProfileJSON struct {
	Name        string `json:"name,omitempty"`
	JStar       int    `json:"jStar"`
	R           int    `json:"r"`
	TwStar      int    `json:"twStar"`
	TdwMinus    []int  `json:"tdwMinus"`
	TdwPlus     []int  `json:"tdwPlus"`
	Granularity int    `json:"granularity,omitempty"`
}

// profile validates and converts the wire form. The dwell tables must
// cover Tw = 0..TwStar on the declared granularity grid.
func (pj ProfileJSON) profile(i int) (*switching.Profile, error) {
	name := pj.Name
	if name == "" {
		name = fmt.Sprintf("app%d", i)
	}
	g := pj.Granularity
	if g == 0 {
		g = 1
	}
	want := pj.TwStar/g + 1
	switch {
	case pj.R <= 0:
		return nil, fmt.Errorf("profile %q: inter-arrival r must be positive, got %d", name, pj.R)
	case pj.TwStar < 0 || g < 0:
		return nil, fmt.Errorf("profile %q: negative twStar/granularity", name)
	case len(pj.TdwMinus) != want || len(pj.TdwPlus) != want:
		return nil, fmt.Errorf("profile %q: dwell tables must hold %d entries for twStar=%d granularity=%d, got %d/%d",
			name, want, pj.TwStar, g, len(pj.TdwMinus), len(pj.TdwPlus))
	}
	return &switching.Profile{
		Name: name, JStar: pj.JStar, R: pj.R, TwStar: pj.TwStar,
		TdwMinus:    append([]int(nil), pj.TdwMinus...),
		TdwPlus:     append([]int(nil), pj.TdwPlus...),
		Granularity: g,
	}, nil
}

// ProfileJSONOf converts a profile to its wire form.
func ProfileJSONOf(p *switching.Profile) ProfileJSON {
	return ProfileJSON{
		Name: p.Name, JStar: p.JStar, R: p.R, TwStar: p.TwStar,
		TdwMinus:    append([]int(nil), p.TdwMinus...),
		TdwPlus:     append([]int(nil), p.TdwPlus...),
		Granularity: p.Granularity,
	}
}

// AdmitRequest is the POST /v1/admit body. Exactly one of Apps (named
// case-study applications) or Profiles (inline profile content) selects
// the profile set.
type AdmitRequest struct {
	Apps     []string      `json:"apps,omitempty"`
	Profiles []ProfileJSON `json:"profiles,omitempty"`
	Config   verify.Spec   `json:"config,omitempty"`
	// Async makes the submit return 202 + a job id for GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// TimeoutMs bounds the caller's wait; on expiry the caller gets 504
	// while the verification completes and populates the cache.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// Verdict is the deterministic outcome of one admission question —
// identical across backends (local engine, loopback lanes, TCP mesh) and
// across repeats, so it is safe to cache, share between coalesced
// waiters, and compare byte-for-byte in tests. On schedulable sets the
// search is exhaustive and the counts are part of the verdict; on
// violations States/Transitions measure how far the concurrent search ran
// before detection — a timing artifact, not a property of the slot — so
// they are omitted and the verdict is the bit, the first-violating-level
// depth, and the minimal violator.
type Verdict struct {
	Schedulable bool `json:"schedulable"`
	States      int  `json:"states,omitempty"`
	Transitions int  `json:"transitions,omitempty"`
	Depth       int  `json:"depth"`
	// Violator is the index of the minimal violating application (-1 when
	// schedulable or unknown), ViolatorName its reported name.
	Violator     int    `json:"violator"`
	ViolatorName string `json:"violatorName,omitempty"`
	Bounded      bool   `json:"bounded,omitempty"`
}

// VerdictOf shapes an engine result for the wire.
func VerdictOf(res verify.Result, names []string) Verdict {
	v := Verdict{
		Schedulable: res.Schedulable,
		States:      res.States,
		Transitions: res.Transitions,
		Depth:       res.Depth,
		Violator:    -1,
		Bounded:     res.Bounded,
	}
	if !res.Schedulable {
		v.States, v.Transitions = 0, 0
		v.Violator = res.Violator
		if res.Violator >= 0 && res.Violator < len(names) {
			v.ViolatorName = names[res.Violator]
		}
	}
	return v
}

// AdmitResponse is the body of every admission-path response.
type AdmitResponse struct {
	Verdict *Verdict `json:"verdict,omitempty"`
	// Cached: served from the in-memory full-verdict map. Coalesced: this
	// caller shared another submit's in-flight verification. Warm: the
	// admission bit came from the persistent cache — no search counts.
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	Warm      bool    `json:"warm,omitempty"`
	ElapsedMs float64 `json:"elapsedMs,omitempty"`
	// RunID is the telemetry correlation ID of the verification that
	// produced (or is producing) the verdict — grep it across the front
	// door's logs, the coordinator's trace and the workers' sessions.
	RunID string `json:"runId,omitempty"`
	// Job/Status report async submits ("pending", "done", "error").
	Job    string `json:"job,omitempty"`
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// maxBody bounds a request body (a 100-profile set is ~50KB).
const maxBody = 4 << 20

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", s.handleAdmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	mux.Handle("GET /metricsz", obs.Default.Handler())
	return mux
}

func (s *Service) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	body := io.LimitReader(r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.countError()
		writeJSON(w, http.StatusBadRequest, &AdmitResponse{Error: "malformed request: " + err.Error()})
		return
	}
	var resp *AdmitResponse
	var status int
	if req.Async {
		resp, status = s.submitAsync(&req)
	} else {
		resp, status = s.Admit(&req)
	}
	writeJSON(w, status, resp)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	resp, status := s.jobStatus(r.PathValue("id"))
	writeJSON(w, status, resp)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ServiceStats())
}

// writeJSON emits one response; 503s carry Retry-After so fleet load
// balancers and clients back off instead of hammering a draining or
// saturated instance.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// StatusError is an HTTP-classified client-side error.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("admit: server returned %d: %s", e.Status, e.Msg)
}

// IsRetryable reports whether the error is a 503-class refusal (draining
// instance, full queue) worth retrying elsewhere.
func (e *StatusError) IsRetryable() bool {
	return e.Status == http.StatusServiceUnavailable || e.Status == http.StatusGatewayTimeout
}

// AsStatusError unwraps err to a StatusError if one is in the chain.
func AsStatusError(err error) (*StatusError, bool) {
	var se *StatusError
	ok := errors.As(err, &se)
	return se, ok
}

// Client submits admission questions to a running service; the CLIs'
// -server mode is this type.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:9833".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry503 re-submits up to this many times when the service refuses
	// with 503 (draining instance, full queue, open breaker), honoring
	// the server's Retry-After header. 0 (the default) returns the 503
	// to the caller unchanged.
	Retry503 int
	// MaxRetryWait caps one Retry-After wait — a server advertising a
	// long drain must not pin the client (0 = 5s cap).
	MaxRetryWait time.Duration
}

// Admit submits one question and returns the service's response. Non-2xx
// responses return a *StatusError carrying the service's message; 503
// refusals are re-submitted per Retry503, waiting out the server's
// (capped) Retry-After between attempts.
func (c *Client) Admit(req *AdmitRequest) (*AdmitResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, wait, err := c.post(body)
		se, ok := AsStatusError(err)
		if !ok || se.Status != http.StatusServiceUnavailable || attempt >= c.Retry503 {
			return resp, err
		}
		time.Sleep(wait)
	}
}

// post runs one submit attempt, returning the capped Retry-After wait
// alongside any 503-class refusal.
func (c *Client) post(body []byte) (*AdmitResponse, time.Duration, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	httpResp, err := hc.Post(c.BaseURL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("admit: submitting to %s: %w", c.BaseURL, err)
	}
	defer httpResp.Body.Close()
	var resp AdmitResponse
	if err := json.NewDecoder(io.LimitReader(httpResp.Body, maxBody)).Decode(&resp); err != nil {
		return nil, 0, fmt.Errorf("admit: decoding response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if httpResp.StatusCode/100 != 2 {
		msg := resp.Error
		if msg == "" {
			msg = "status " + strconv.Itoa(httpResp.StatusCode)
		}
		return &resp, c.retryWait(httpResp.Header.Get("Retry-After")), &StatusError{Status: httpResp.StatusCode, Msg: msg}
	}
	return &resp, 0, nil
}

// retryWait converts a Retry-After header (delta-seconds form) into a
// capped wait; absent or unparseable headers wait 1s.
func (c *Client) retryWait(header string) time.Duration {
	wait := time.Second
	if sec, err := strconv.Atoi(header); err == nil && sec >= 0 {
		wait = time.Duration(sec) * time.Second
	}
	cap := c.MaxRetryWait
	if cap <= 0 {
		cap = 5 * time.Second
	}
	if wait > cap {
		wait = cap
	}
	return wait
}

// Verify asks the service for one verdict over inline profiles, the
// remote analogue of verify.Slot. Warm answers (admission bit without
// counts) are returned as-is; check AdmitResponse.Warm if the counts
// matter.
func (c *Client) Verify(profiles []*switching.Profile, spec verify.Spec) (*AdmitResponse, error) {
	req := &AdmitRequest{Config: spec, Profiles: make([]ProfileJSON, len(profiles))}
	for i, p := range profiles {
		req.Profiles[i] = ProfileJSONOf(p)
	}
	return c.Admit(req)
}

// VerifyFunc adapts the client to the dimensioning loop's verification
// hook (mapping.VerifyFunc): dimension -server runs its FirstFit/optimal
// search locally while every admission question goes to the service —
// where fleet-wide coalescing and the persistent cache live.
func (c *Client) VerifyFunc(spec verify.Spec) func(profiles []*switching.Profile) (bool, error) {
	return func(profiles []*switching.Profile) (bool, error) {
		resp, err := c.Verify(profiles, spec)
		if err != nil {
			return false, err
		}
		if resp.Verdict == nil {
			return false, errors.New("admit: response carried no verdict")
		}
		return resp.Verdict.Schedulable, nil
	}
}

// Stats fetches /statsz.
func (c *Client) Stats() (*Stats, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(c.BaseURL + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
