package admit

// Service-level coalescing: N concurrent submits of one admission
// question (order-permuted, so fingerprint-equal but not byte-equal) must
// run the backend exactly once, with N-1 waiters sharing the leader's
// verdict. The backend is gated so the test controls exactly when the one
// verification completes — the waiters are provably parked, not racing.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

func TestServiceCoalescing(t *testing.T) {
	const n = 8

	var runs atomic.Int32
	gate := make(chan struct{})
	backend := func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		runs.Add(1)
		<-gate
		return verify.Slot(ps, cfg)
	}
	r := newRig(t, backendCase{name: "gated"}, func(o *Options) {
		o.Backend = backend
		o.BackendDesc = "gated local"
	})

	// One profile set, submitted under n different orders: every rotation
	// is the same fingerprint, so the same service key.
	ps := []*switching.Profile{
		prof("A", 2, 2, 3, 15), prof("B", 6, 2, 4, 25),
		prof("C", 9, 3, 5, 30), prof("D", 5, 2, 4, 20),
	}
	rotate := func(k int) []*switching.Profile {
		out := append(append([]*switching.Profile{}, ps[k%len(ps):]...), ps[:k%len(ps)]...)
		return out
	}

	var wg sync.WaitGroup
	type outcome struct {
		status    int
		resp      *AdmitResponse
		verdict   []byte
		coalesced bool
	}
	outs := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp, verdict := r.submit(t, inlineReq(rotate(i), verify.Spec{}))
			outs[i] = outcome{status, resp, verdict, resp.Coalesced}
		}(i)
	}

	// Release the backend only after all n submits are accounted for at
	// the service: 1 leader in flight, n-1 coalesced waiters. Polling the
	// public stats (not sleeping) makes the parking provable.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := r.svc.ServiceStats()
		if st.Coalesced == n-1 && st.Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d identical submits, want exactly 1", got, n)
	}
	st := r.svc.ServiceStats()
	if st.Coalesced != n-1 || st.Verifications != 1 || st.Submitted != n {
		t.Fatalf("stats after coalesced burst: %+v", st)
	}

	coalesced := 0
	for i, o := range outs {
		if o.status != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d (%s)", i, o.status, o.resp.Error)
		}
		if !bytes.Equal(o.verdict, outs[0].verdict) {
			t.Fatalf("submit %d verdict diverges:\n got %s\nwant %s", i, o.verdict, outs[0].verdict)
		}
		if o.coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coalesced, n-1)
	}

	// The burst's verdict is now cached: one more submit is a pure hit.
	status, resp, verdict := r.submit(t, inlineReq(rotate(3), verify.Spec{}))
	if status != http.StatusOK || !resp.Cached || !bytes.Equal(verdict, outs[0].verdict) {
		t.Fatalf("post-burst submit: HTTP %d cached=%v", status, resp.Cached)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("post-burst submit ran the backend again (%d runs)", got)
	}
}

// TestServiceQueueBound: with the queue full, distinct submits are
// refused with 503 + Retry-After instead of queuing unboundedly; the
// in-flight work still completes.
func TestServiceQueueBound(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	backend := func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		started <- struct{}{}
		<-gate
		return verify.Slot(ps, cfg)
	}
	r := newRig(t, backendCase{name: "gated"}, func(o *Options) {
		o.Backend = backend
		o.QueueDepth = 1
		o.Concurrency = 1
	})

	// Fill the worker: submit one leader and wait until the backend holds
	// it, so the queue slot is provably free for the second.
	results := make(chan int, 2)
	submit := func(ps []*switching.Profile) {
		go func() {
			status, _, _ := r.submit(t, inlineReq(ps, verify.Spec{}))
			results <- status
		}()
	}
	submit(fleet(2, 8, 2, 4, 40))
	<-started

	// Fill the queue with a second distinct leader.
	submit(fleet(3, 8, 2, 4, 40))
	deadline := time.Now().Add(30 * time.Second)
	for r.svc.ServiceStats().Inflight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("second leader never enqueued: %+v", r.svc.ServiceStats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A third distinct submit finds the queue full.
	resp, _ := r.postRaw(t, mustBody(t, inlineReq(fleet(5, 8, 2, 4, 40), verify.Spec{})))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("queued submit %d: HTTP %d", i, status)
		}
	}
}

func mustBody(t testing.TB, req *AdmitRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
