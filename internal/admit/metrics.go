package admit

// Service telemetry. The histograms close the ROADMAP item "per-config
// latency histograms in /statsz": end-to-end admission latency is labeled
// by the config salt — bounded cardinality, one series per distinct
// verification config — never by the full service key, which grows with
// every distinct profile set. All observations are per request or per
// backend run; nothing here sits on the engine's hot path.

import (
	"fmt"
	"time"

	"tightcps/internal/obs"
)

var (
	obsSubmissions = obs.NewCounter("tightcps_admit_submissions_total",
		"Admission questions received (sync and async submits, before caching and coalescing).")
	obsQueueWait = obs.NewHistogram("tightcps_admit_queue_wait_seconds",
		"Time a leader call spent in the bounded queue before a worker picked it up.", obs.DefBuckets)
	obsBackendRun = obs.NewHistogram("tightcps_admit_backend_seconds",
		"Backend verification duration, one observation per actual search (cache and warm hits excluded).", obs.DefBuckets)
	obsBackendRetries = obs.NewCounter("tightcps_admit_backend_retries_total",
		"Backend verifications re-attempted after a transient cluster failure.")
	obsBreakerTrips = obs.NewCounter("tightcps_admit_breaker_trips_total",
		"Circuit-breaker openings after consecutive backend failures.")
	obsLocalFallbacks = obs.NewCounter("tightcps_admit_local_fallbacks_total",
		"Admission verdicts served by the in-process engine while the cluster was unavailable.")
)

// latencyFor returns the end-to-end admission latency histogram for one
// config salt, registering it on first use (idempotent by name+label).
func latencyFor(cfgKey uint64) *obs.Histogram {
	return obs.NewHistogram("tightcps_admit_latency_seconds",
		"End-to-end admission latency per config fingerprint, cached and coalesced answers included.",
		obs.DefBuckets, "cfg", fmt.Sprintf("%016x", cfgKey))
}

// latency finds (caching the handle) the per-config latency histogram and
// records one request's elapsed time.
func (s *Service) observeLatency(cfgKey uint64, t0 time.Time) {
	s.mu.Lock()
	h, ok := s.lat[cfgKey]
	s.mu.Unlock()
	if !ok {
		h = latencyFor(cfgKey)
		s.mu.Lock()
		s.lat[cfgKey] = h
		s.mu.Unlock()
	}
	h.Observe(time.Since(t0).Seconds())
}

// TimingStats is the /statsz summary of one latency histogram; the full
// bucketed distribution lives in /metricsz.
type TimingStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
}

func timingOf(h *obs.Histogram) *TimingStats {
	n := h.Count()
	if n == 0 {
		return nil
	}
	return &TimingStats{Count: n, MeanMs: h.Sum() / float64(n) * 1000}
}
