// Package admit is the admission service front door: a long-running
// HTTP/JSON control plane over the dimensioning engine, the config-salted
// persistent admission cache (internal/mapping) and an optionally attached
// distributed verification cluster (internal/dverify).
//
// The paper's dimensioning loop is an admission decision — "does this
// profile set fit the slot?" — and this package serves it: POST /v1/admit
// submits a profile set plus a slot configuration and returns the verdict
// with its search statistics (states, depth, minimal violator);
// GET /v1/jobs/{id} polls an asynchronous submit; /healthz and /statsz
// expose liveness and counters.
//
// Three service-level disciplines sit between the HTTP surface and the
// engine:
//
//   - Coalescing. Concurrent submits whose profile sets are
//     fingerprint-equal (any permutation of the same profiles, under the
//     same verdict-relevant config) collapse into ONE backend
//     verification: the first becomes the leader, the rest park as
//     waiters and share the leader's full verdict. This lifts the
//     in-process singleflight of mapping.Cache to the service boundary,
//     where a fleet of clients asking the same hot question costs one
//     search no matter the fan-in.
//
//   - Bounded queue with per-request budgets. Leaders pass through a
//     bounded queue drained by a fixed worker pool; a full queue refuses
//     with 503 + Retry-After instead of building unbounded backlog. Every
//     request carries an optional wall-clock budget (timeoutMs) and a
//     state budget (config.maxStates, clamped by the server): a waiter
//     whose budget expires gets 504 while the leader keeps running and
//     populates the cache for the retry.
//
//   - Drain. Drain (wired to SIGTERM by cmd/verifyd) refuses new submits
//     with 503 + Retry-After while in-flight verdicts run to completion,
//     then checkpoints the persistent cache — so a fleet of admission
//     daemons rolls without dropping or corrupting a verdict. A second
//     signal forces exit (DrainOnSignal).
//
// Verdicts are cached at two levels: an in-memory full-verdict map
// (states/depth/violator included) serving repeat submits instantly, and
// the persistent mapping.Cache sharded by fingerprint prefix
// (Cache.SaveDir) holding the admission bit across restarts. A warm-start
// hit answers schedulable/not from disk without search counts; the
// response marks it "warm" so clients can re-verify if they need the
// statistics. Verification errors are never cached — a failed backend run
// poisons nothing.
package admit

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tightcps/internal/mapping"
	"tightcps/internal/obs"
	"tightcps/internal/plants"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// VerifyBackend runs one slot-sharing verification. The service's backend
// is dverify.Runner over an attached cluster, or the local engine when
// nil. Backends are invoked from the service's worker pool, at most
// Options.Concurrency at a time.
type VerifyBackend func(profiles []*switching.Profile, cfg verify.Config) (verify.Result, error)

// Options configures a Service.
type Options struct {
	// Backend verifies admission questions; nil uses the in-process
	// engine (verify.Slot).
	Backend VerifyBackend
	// BackendNodes is the attached cluster's size. It salts cache keys —
	// MaxStates is a per-node budget in distributed runs, so aggregate
	// capacity (and budget-capped verdicts) depends on it — and is
	// reported by /statsz.
	BackendNodes int
	// BackendDesc names the backend in /statsz ("local engine" when "").
	BackendDesc string
	// QueueDepth bounds the leader queue (default 64). A full queue
	// refuses submits with 503 + Retry-After.
	QueueDepth int
	// Concurrency is the worker-pool size draining the queue (default 1:
	// a distributed backend serializes its cluster sessions anyway, and
	// the local engine already parallelizes inside one search).
	Concurrency int
	// Workers is the per-search (per-node, when distributed) expansion
	// pool size passed to the engine. 0 uses GOMAXPROCS. Values below 2
	// are raised to 2: the parallel driver's minimum-state violator rule
	// is what keeps verdicts identical across backends, so the service
	// never runs the sequential driver's insertion-order tie-break.
	Workers int
	// MaxStates clamps per-request state budgets (0 = engine default
	// only). Requests asking for more are capped, not refused.
	MaxStates int
	// DefaultTimeout is the per-request wall budget when the request does
	// not set one (0 = wait for the verdict).
	DefaultTimeout time.Duration
	// CacheDir, when non-empty, persists admission bits across restarts:
	// one shard directory per verification config under this root,
	// written incrementally by Checkpoint/Drain.
	CacheDir string
	// Checkpoint is the periodic checkpoint interval for a hot service
	// (default 30s when CacheDir is set).
	Checkpoint time.Duration
	// RetryAttempts is the number of times a failed backend verification
	// is retried before the failure is reported (0 = no retries, the
	// default). Only transient cluster faults are retried — budget
	// (ErrTooLarge) and encoding errors are deterministic properties of
	// the request and never retry; see retryable.
	RetryAttempts int
	// RetryBackoff is the base delay before the first retry; successive
	// retries double it (with jitter, capped at 5s). 0 = 100ms.
	RetryBackoff time.Duration
	// BreakerThreshold opens the backend circuit after this many
	// consecutive failed verifications (retries exhausted); while open,
	// submits skip the cluster entirely — served locally when
	// LocalFallback is set, refused with 503 + Retry-After otherwise.
	// 0 (the default) disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open (0 = 30s). The
	// first submit after the cooldown probes the cluster again.
	BreakerCooldown time.Duration
	// LocalFallback serves verdicts from the in-process engine when the
	// cluster is unavailable (retries exhausted, or breaker open) instead
	// of returning 502. Off by default: the local engine's MaxStates is a
	// per-process budget, so a budget-capped question can get a
	// different (still sound) ErrTooLarge boundary than the cluster.
	LocalFallback bool
	// Profiles resolves named applications ("apps" in a request) to
	// profiles; nil uses the paper's case study (plants.ProfileList).
	Profiles func(names []string) ([]*switching.Profile, error)
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// record is one completed admission question: the full verdict, or the
// error that ended it. Error records are never stored in the result map.
type record struct {
	verdict Verdict
	runID   string // telemetry run ID of the verification that produced it
	warm    bool   // admission bit from the persistent cache, no search counts
	err     error
	status  int // HTTP status classifying err
}

// call is one in-flight admission question. The leader owns the slot in
// Service.inflight; waiters block on done and share rec.
type call struct {
	key      uint64
	cfgKey   uint64
	runID    string // minted at enqueue — the admission boundary
	profiles []*switching.Profile
	names    []string
	cfg      verify.Config
	enqueued time.Time
	deadline time.Time // leader's budget; zero = none
	done     chan struct{}
	rec      *record
}

// job is one asynchronous submit, holding the (possibly shared) call.
type job struct {
	id string
	c  *call
}

// Service is the admission front door. Create with New, serve its
// Handler, Drain before exit.
type Service struct {
	opts  Options
	start time.Time

	mu       sync.Mutex
	caches   map[uint64]*mapping.Cache // persistent bit caches, per config salt
	results  map[uint64]*record        // full verdicts, per service key
	lat      map[uint64]*obs.Histogram // admission latency, per config salt
	inflight map[uint64]*call
	jobs     map[string]*job
	jobOrder []string
	jobSeq   int
	queue    chan *call
	draining bool
	stats    Stats

	// Circuit-breaker state (under mu): consecutive backend failures and
	// the instant until which the circuit stays open.
	breakerFails int
	breakerUntil time.Time

	workers   sync.WaitGroup
	drainOnce sync.Once
	drained   chan struct{}
	stopCk    chan struct{}
}

// maxJobs caps the async-job table; the oldest completed jobs are evicted
// beyond it.
const maxJobs = 1024

// New starts a Service: the worker pool begins draining the queue
// immediately, and the checkpoint loop runs when persistence is on.
func New(opts Options) *Service {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Checkpoint <= 0 {
		opts.Checkpoint = 30 * time.Second
	}
	if opts.Profiles == nil {
		opts.Profiles = func(names []string) ([]*switching.Profile, error) {
			return plants.ProfileList(names...)
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Service{
		opts:     opts,
		start:    time.Now(),
		caches:   map[uint64]*mapping.Cache{},
		results:  map[uint64]*record{},
		lat:      map[uint64]*obs.Histogram{},
		inflight: map[uint64]*call{},
		jobs:     map[string]*job{},
		queue:    make(chan *call, opts.QueueDepth),
		drained:  make(chan struct{}),
		stopCk:   make(chan struct{}),
	}
	// Function gauges read the live service at scrape time; re-registering
	// rebinds the series, so the newest Service in a process (tests start
	// several) is the one exposed.
	obs.NewGaugeFunc("tightcps_admit_queue_depth",
		"Leader calls waiting in the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	obs.NewGaugeFunc("tightcps_admit_inflight",
		"Admission questions currently holding an in-flight verification.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.inflight))
		})
	for i := 0; i < opts.Concurrency; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	if opts.CacheDir != "" {
		go s.checkpointLoop()
	}
	return s
}

// resolved is a parsed, validated admission question.
type resolved struct {
	profiles []*switching.Profile
	names    []string
	cfg      verify.Config
	cfgKey   uint64
	key      uint64
	deadline time.Time
}

// resolve parses and validates a request into the canonical question:
// profiles, effective config, and the service key every coalescing and
// caching decision hangs on. Errors report the HTTP status to return.
func (s *Service) resolve(req *AdmitRequest) (*resolved, int, error) {
	var profiles []*switching.Profile
	var names []string
	switch {
	case len(req.Profiles) > 0 && len(req.Apps) > 0:
		return nil, http.StatusBadRequest, errors.New("request carries both inline profiles and named apps; send one")
	case len(req.Profiles) > 0:
		profiles = make([]*switching.Profile, len(req.Profiles))
		names = make([]string, len(req.Profiles))
		for i, pj := range req.Profiles {
			p, err := pj.profile(i)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
			profiles[i] = p
			names[i] = p.Name
		}
	case len(req.Apps) > 0:
		ps, err := s.opts.Profiles(req.Apps)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		profiles, names = ps, req.Apps
	default:
		return nil, http.StatusBadRequest, errors.New("request names no profiles (send \"profiles\" or \"apps\")")
	}

	cfg, err := req.Config.Config(profiles)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if s.opts.MaxStates > 0 && (cfg.MaxStates <= 0 || cfg.MaxStates > s.opts.MaxStates) {
		cfg.MaxStates = s.opts.MaxStates
	}
	cfg.Workers = s.opts.Workers
	if cfg.Workers < 2 {
		// The parallel driver's minimum-violating-state rule makes the
		// reported violator identical across worker counts, cluster sizes
		// and topologies; the sequential driver's insertion-order
		// tie-break does not. A service answer must not depend on the
		// box it ran on, so Workers ≥ 2 always.
		cfg.Workers = 2
	}
	if _, err := verify.New(profiles, cfg); err != nil {
		return nil, http.StatusBadRequest, err
	}

	// The config salt covers every verdict-relevant knob plus the cluster
	// size (per-node budgets scale aggregate capacity); the service key
	// folds in the order-independent profile-set fingerprint. Symmetry
	// reduction is salted in too — mapping.VerifyConfigKey excludes it
	// because it never flips the admission bit, but the service serves
	// full verdicts whose state/depth counts the quotient does change.
	var extra []uint64
	if s.opts.Backend != nil && s.opts.BackendNodes > 0 {
		extra = append(extra, uint64(s.opts.BackendNodes))
	}
	if cfg.SymmetryReduction {
		extra = append(extra, 0xa11ce5)
	}
	cfgKey := mapping.VerifyConfigKey(cfg, extra...)
	key := mapping.VerifyConfigKey(cfg, append(extra, mapping.Fingerprint(profiles))...)

	rq := &resolved{profiles: profiles, names: names, cfg: cfg, cfgKey: cfgKey, key: key}
	if req.TimeoutMs > 0 {
		rq.deadline = time.Now().Add(time.Duration(req.TimeoutMs) * time.Millisecond)
	} else if s.opts.DefaultTimeout > 0 {
		rq.deadline = time.Now().Add(s.opts.DefaultTimeout)
	}
	return rq, 0, nil
}

// Admit answers one admission question synchronously, returning the
// response and its HTTP status. Identical concurrent questions coalesce
// onto one backend verification.
func (s *Service) Admit(req *AdmitRequest) (*AdmitResponse, int) {
	t0 := time.Now()
	rq, status, err := s.resolve(req)
	if err != nil {
		s.countError()
		return &AdmitResponse{Error: err.Error()}, status
	}
	c, state, status := s.lookup(rq)
	switch state {
	case lookupCached:
		s.observeLatency(rq.cfgKey, t0)
		v := c.rec.verdict
		return &AdmitResponse{Verdict: &v, Cached: true, Warm: c.rec.warm, RunID: c.rec.runID, ElapsedMs: msSince(t0)}, http.StatusOK
	case lookupRefused:
		return &AdmitResponse{Error: refusalText(status, s.Draining())}, status
	}
	resp, status := s.wait(c, rq.deadline, state == lookupCoalesced, t0)
	s.observeLatency(rq.cfgKey, t0)
	return resp, status
}

type lookupState int

const (
	lookupLeader lookupState = iota
	lookupCoalesced
	lookupCached
	lookupRefused
)

// lookup resolves the question against the result map, the in-flight
// table and the queue, under one lock acquisition: a cached record, an
// existing call to coalesce onto, a freshly enqueued leader call, or a
// refusal (draining / queue full). For cached results the returned call
// carries only rec.
func (s *Service) lookup(rq *resolved) (*call, lookupState, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted++
	obsSubmissions.Inc()
	if rec, ok := s.results[rq.key]; ok {
		s.stats.CacheHits++
		return &call{rec: rec}, lookupCached, http.StatusOK
	}
	if c, ok := s.inflight[rq.key]; ok {
		s.stats.Coalesced++
		return c, lookupCoalesced, http.StatusOK
	}
	if s.draining {
		s.stats.Refused++
		return nil, lookupRefused, http.StatusServiceUnavailable
	}
	c := &call{
		key: rq.key, cfgKey: rq.cfgKey,
		runID:    obs.NewRunID(),
		profiles: rq.profiles, names: rq.names, cfg: rq.cfg,
		enqueued: time.Now(),
		deadline: rq.deadline, done: make(chan struct{}),
	}
	select {
	case s.queue <- c:
	default:
		s.stats.Refused++
		return nil, lookupRefused, http.StatusServiceUnavailable
	}
	s.inflight[rq.key] = c
	return c, lookupLeader, http.StatusOK
}

func refusalText(status int, draining bool) string {
	if draining {
		return "service is draining; retry against another instance"
	}
	return "request queue is full; retry"
}

// wait parks on the call until the verdict lands or the caller's budget
// expires. A timed-out waiter does not cancel the leader — the search
// completes and populates the cache, so the retry is free.
func (s *Service) wait(c *call, deadline time.Time, coalesced bool, t0 time.Time) (*AdmitResponse, int) {
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-c.done:
	case <-timeout:
		s.countError()
		return &AdmitResponse{
			Error:     "deadline exceeded while the verification runs; retry for the cached verdict",
			ElapsedMs: msSince(t0),
		}, http.StatusGatewayTimeout
	}
	rec := c.rec
	if rec.err != nil {
		return &AdmitResponse{Error: rec.err.Error(), RunID: rec.runID, ElapsedMs: msSince(t0)}, rec.status
	}
	v := rec.verdict
	return &AdmitResponse{Verdict: &v, Coalesced: coalesced, Warm: rec.warm, RunID: rec.runID, ElapsedMs: msSince(t0)}, http.StatusOK
}

// submitAsync registers the question as a pollable job. Async submits
// coalesce with sync ones — the job may share its call.
func (s *Service) submitAsync(req *AdmitRequest) (*AdmitResponse, int) {
	rq, status, err := s.resolve(req)
	if err != nil {
		s.countError()
		return &AdmitResponse{Error: err.Error()}, status
	}
	c, state, status := s.lookup(rq)
	if state == lookupRefused {
		return &AdmitResponse{Error: refusalText(status, s.Draining())}, status
	}
	if state == lookupCached {
		// Completed on arrival: fabricate a done call so the job is
		// immediately pollable.
		done := make(chan struct{})
		close(done)
		c = &call{rec: c.rec, done: done}
	}
	s.mu.Lock()
	s.jobSeq++
	j := &job{id: fmt.Sprintf("j%d", s.jobSeq), c: c}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.pruneJobsLocked()
	s.mu.Unlock()
	return &AdmitResponse{Job: j.id, Status: "pending"}, http.StatusAccepted
}

// pruneJobsLocked evicts the oldest completed jobs beyond maxJobs.
func (s *Service) pruneJobsLocked() {
	for len(s.jobs) > maxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			select {
			case <-j.c.done:
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i:i], s.jobOrder[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything pending; let the table run hot
		}
	}
}

// jobStatus reports an async job's state without blocking.
func (s *Service) jobStatus(id string) (*AdmitResponse, int) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return &AdmitResponse{Error: "unknown job " + id}, http.StatusNotFound
	}
	select {
	case <-j.c.done:
		rec := j.c.rec
		if rec.err != nil {
			return &AdmitResponse{Job: id, Status: "error", Error: rec.err.Error(), RunID: rec.runID}, rec.status
		}
		v := rec.verdict
		return &AdmitResponse{Job: id, Status: "done", Verdict: &v, Warm: rec.warm, RunID: rec.runID}, http.StatusOK
	default:
		return &AdmitResponse{Job: id, Status: "pending"}, http.StatusOK
	}
}

// worker drains the leader queue until Drain closes it.
func (s *Service) worker() {
	defer s.workers.Done()
	for c := range s.queue {
		s.run(c)
	}
}

// run executes one leader call: through the persistent cache's
// singleflight into the backend, then publishes the record and wakes the
// waiters. Errors are published but never cached.
func (s *Service) run(c *call) {
	obsQueueWait.Observe(time.Since(c.enqueued).Seconds())
	rec := &record{runID: c.runID}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		rec.err = errors.New("request budget exhausted while queued")
		rec.status = http.StatusServiceUnavailable
	} else {
		cache := s.cacheFor(c.cfgKey)
		ran := false
		var res verify.Result
		ok, err := cache.Do(c.profiles, func(ps []*switching.Profile) (bool, error) {
			ran = true
			s.mu.Lock()
			s.stats.Verifications++
			s.mu.Unlock()
			cfg := c.cfg
			cfg.RunID = c.runID
			t := time.Now()
			var verr error
			res, verr = s.verify(ps, cfg)
			obsBackendRun.Observe(time.Since(t).Seconds())
			return res.Schedulable, verr
		})
		switch {
		case err != nil:
			rec.err = err
			rec.status = s.statusOf(err)
		case ran:
			rec.verdict = VerdictOf(res, c.names)
		default:
			// Persistent warm-start hit: the admission bit without search
			// counts. The response marks it so a client needing the
			// statistics can ask for a fresh search (distinct MaxStates ⇒
			// distinct key) or accept the bit.
			rec.verdict = Verdict{Schedulable: ok, Violator: -1, Bounded: c.cfg.MaxDisturbances > 0}
			rec.warm = true
			s.mu.Lock()
			s.stats.WarmHits++
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	delete(s.inflight, c.key)
	if rec.err == nil {
		s.results[c.key] = rec
	} else {
		s.stats.Errors++
	}
	s.mu.Unlock()
	c.rec = rec
	close(c.done)
}

// statusOf classifies a verification error: budget and encoding problems
// are the request's fault; an open circuit is a 503 (with Retry-After —
// the cooldown will pass); anything else from an attached cluster is a
// bad gateway (a crashed worker, a broken mesh link — the error names the
// node).
func (s *Service) statusOf(err error) int {
	switch {
	case errors.Is(err, verify.ErrTooLarge):
		return http.StatusUnprocessableEntity
	case errors.Is(err, verify.ErrEncoding):
		return http.StatusBadRequest
	case errors.Is(err, errBreakerOpen):
		return http.StatusServiceUnavailable
	case s.opts.Backend != nil:
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// cacheFor returns (creating and warm-loading on first use) the
// persistent bit cache for one config salt.
func (s *Service) cacheFor(cfgKey uint64) *mapping.Cache {
	s.mu.Lock()
	if c, ok := s.caches[cfgKey]; ok {
		s.mu.Unlock()
		return c
	}
	c := mapping.NewCacheFor(cfgKey)
	s.caches[cfgKey] = c
	s.mu.Unlock()
	if s.opts.CacheDir != "" {
		// A bad shard is skipped, not fatal: the healthy shards still
		// warm-start, and the damage is logged for the operator.
		n, err := c.LoadDir(s.cacheSubdir(cfgKey))
		if err != nil {
			s.opts.Logf("admit: unreadable cache shards for cfg %016x skipped: %v", cfgKey, err)
		}
		if n > 0 {
			s.opts.Logf("admit: warm start: %d verdicts from %d shards (cfg %016x)", c.Len(), n, cfgKey)
		}
	}
	return c
}

func (s *Service) cacheSubdir(cfgKey uint64) string {
	return filepath.Join(s.opts.CacheDir, fmt.Sprintf("cfg-%016x", cfgKey))
}

// Checkpoint incrementally persists every config's dirty cache shards,
// returning the number of shard files rewritten.
func (s *Service) Checkpoint() (int, error) {
	if s.opts.CacheDir == "" {
		return 0, nil
	}
	s.mu.Lock()
	keys := make([]uint64, 0, len(s.caches))
	for k := range s.caches {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	total := 0
	var first error
	for _, k := range keys {
		s.mu.Lock()
		c := s.caches[k]
		s.mu.Unlock()
		n, err := c.SaveDir(s.cacheSubdir(k))
		total += n
		if err != nil && first == nil {
			first = err
		}
	}
	return total, first
}

func (s *Service) checkpointLoop() {
	t := time.NewTicker(s.opts.Checkpoint)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n, err := s.Checkpoint(); err != nil {
				s.opts.Logf("admit: checkpoint: %v", err)
			} else if n > 0 {
				s.opts.Logf("admit: checkpointed %d cache shard(s)", n)
			}
		case <-s.stopCk:
			return
		}
	}
}

// Drain refuses new submits (503 + Retry-After), lets in-flight verdicts
// run to completion, checkpoints the persistent cache, and returns.
// Idempotent; concurrent callers all block until the drain completes.
func (s *Service) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		close(s.stopCk)
		// No submit can enqueue after draining=true was published under
		// the lock, and every earlier enqueue completed before we took
		// it, so closing the intake here is race-free.
		close(s.queue)
		s.workers.Wait()
		if _, err := s.Checkpoint(); err != nil {
			s.opts.Logf("admit: final checkpoint: %v", err)
		}
		close(s.drained)
		s.opts.Logf("admit: drained")
	})
	<-s.drained
}

// Draining reports whether the service is refusing new submits.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drained reports whether every in-flight verdict has completed and the
// final checkpoint is on disk.
func (s *Service) Drained() bool {
	select {
	case <-s.drained:
		return true
	default:
		return false
	}
}

// DrainOnSignal implements the fleet drain discipline on a signal stream
// (bpm-style: first signal drains, second forces): the first delivery
// starts Drain in the background, a second calls force — the caller's
// immediate-exit path. Runs in its own goroutine; returns immediately.
func (s *Service) DrainOnSignal(sigs <-chan os.Signal, force func()) {
	go func() {
		<-sigs
		s.opts.Logf("admit: draining on signal (signal again to force exit)")
		go s.Drain()
		<-sigs
		force()
	}()
}

// Stats are the /statsz counters.
type Stats struct {
	UptimeSec     float64 `json:"uptimeSec"`
	Backend       string  `json:"backend"`
	BackendNodes  int     `json:"backendNodes,omitempty"`
	Submitted     int     `json:"submitted"`
	Verifications int     `json:"verifications"`
	Coalesced     int     `json:"coalesced"`
	CacheHits     int     `json:"cacheHits"`
	WarmHits      int     `json:"warmHits"`
	Refused       int     `json:"refused"`
	Errors        int     `json:"errors"`
	// Backend resilience counters (zero unless the retry policy, breaker
	// or local fallback are configured).
	Retries        int  `json:"retries,omitempty"`
	BreakerTrips   int  `json:"breakerTrips,omitempty"`
	LocalFallbacks int  `json:"localFallbacks,omitempty"`
	QueueDepth     int  `json:"queueDepth"`
	Inflight       int  `json:"inflight"`
	Jobs           int  `json:"jobs"`
	Verdicts       int  `json:"verdicts"`           // full in-memory verdicts
	PersistentLen  int  `json:"persistentVerdicts"` // admission bits across configs
	Draining       bool `json:"draining"`
	// Latency summaries; the full bucketed histograms live in /metricsz.
	QueueWait  *TimingStats           `json:"queueWait,omitempty"`
	BackendRun *TimingStats           `json:"backendRun,omitempty"`
	Latency    map[string]TimingStats `json:"admitLatency,omitempty"` // per config salt
}

// ServiceStats snapshots the counters.
func (s *Service) ServiceStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.UptimeSec = time.Since(s.start).Seconds()
	st.Backend = s.opts.BackendDesc
	if st.Backend == "" {
		st.Backend = "local engine"
	}
	st.BackendNodes = s.opts.BackendNodes
	st.QueueDepth = len(s.queue)
	st.Inflight = len(s.inflight)
	st.Jobs = len(s.jobs)
	st.Verdicts = len(s.results)
	for _, c := range s.caches {
		st.PersistentLen += c.Len()
	}
	st.Draining = s.draining
	st.QueueWait = timingOf(obsQueueWait)
	st.BackendRun = timingOf(obsBackendRun)
	for k, h := range s.lat {
		if t := timingOf(h); t != nil {
			if st.Latency == nil {
				st.Latency = map[string]TimingStats{}
			}
			st.Latency[fmt.Sprintf("%016x", k)] = *t
		}
	}
	return st
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}
