package admit

// The e2e rig: boots the admission service over a real HTTP listener
// (httptest) in front of each backend of the matrix — the in-process
// engine, 1/2/4-node loopback lane clusters, and a 2-node TCP mesh — and
// gives the tests raw-JSON submit plumbing so verdicts can be compared
// byte-for-byte.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tightcps/internal/dverify"
	"tightcps/internal/plants"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// rigWorkers pins the per-search expansion pool for both the service and
// the local reference runs. Any value ≥ 2 yields identical verdicts (the
// parallel driver's minimum-violator rule is worker-count-independent);
// pinning one value just keeps the comparison honest about it.
const rigWorkers = 4

// prof mirrors the synthetic profile helper of the verify and dverify
// tests: constant dwell tables, the knobs that matter being T*w,
// Tdw−/Tdw+ and r.
func prof(name string, twStar, dm, dp, r int) *switching.Profile {
	n := twStar + 1
	minT := make([]int, n)
	plusT := make([]int, n)
	for i := range minT {
		minT[i] = dm
		plusT[i] = dp
	}
	return &switching.Profile{Name: name, TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
		R: r, Granularity: 1, JStar: twStar + dp, JAtMin: make([]int, n), JBest: make([]int, n)}
}

func fleet(n, twStar, dm, dp, r int) []*switching.Profile {
	out := make([]*switching.Profile, n)
	for i := range out {
		out[i] = prof(fmt.Sprintf("F%d", i), twStar, dm, dp, r)
	}
	return out
}

func caseProfiles(t testing.TB, names ...string) []*switching.Profile {
	t.Helper()
	ps, err := plants.ProfileList(names...)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// backendCase is one entry of the service-backend matrix.
type backendCase struct {
	name  string
	nodes int // 0 = in-process engine
	tcp   bool
}

var backendMatrix = []backendCase{
	{"local", 0, false},
	{"loopback1", 1, false},
	{"loopback2", 2, false},
	{"loopback4", 4, false},
	{"tcp2", 2, true},
}

// rig is one booted admission service: HTTP listener, client, and the
// Service itself (for stats and drain assertions).
type rig struct {
	svc *Service
	ts  *httptest.Server
	cli *Client
}

// newRig boots a service over the named backend. mod, when non-nil,
// adjusts Options before New.
func newRig(t testing.TB, bc backendCase, mod func(*Options)) *rig {
	t.Helper()
	opts := Options{Workers: rigWorkers}
	if bc.nodes > 0 {
		var ts []dverify.Transport
		if bc.tcp {
			addrs := make([]string, bc.nodes)
			for i := range addrs {
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { l.Close() })
				go dverify.Serve(l, nil)
				addrs[i] = l.Addr().String()
			}
			var err error
			ts, err = dverify.Dial(addrs, time.Second)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			ts = dverify.Loopback(bc.nodes)
		}
		t.Cleanup(func() { dverify.Close(ts) })
		opts.Backend = dverify.Runner(ts)
		opts.BackendNodes = bc.nodes
		opts.BackendDesc = bc.name
	}
	if mod != nil {
		mod(&opts)
	}
	svc := New(opts)
	hts := httptest.NewServer(svc.Handler())
	t.Cleanup(hts.Close)
	return &rig{svc: svc, ts: hts, cli: &Client{BaseURL: hts.URL}}
}

// postRaw submits a raw JSON body to POST /v1/admit, returning the HTTP
// response and its full body.
func (r *rig) postRaw(t testing.TB, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(r.ts.URL+"/v1/admit", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// submit marshals and submits a request, returning status, the decoded
// response and the verdict sub-object's raw bytes (for byte-equality).
func (r *rig) submit(t testing.TB, req *AdmitRequest) (int, *AdmitResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := r.postRaw(t, string(body))
	var decoded struct {
		AdmitResponse
		RawVerdict json.RawMessage `json:"verdict"` // shadows the struct field to capture exact bytes
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("undecodable response %q: %v", raw, err)
	}
	if len(decoded.RawVerdict) > 0 {
		decoded.Verdict = new(Verdict)
		if err := json.Unmarshal(decoded.RawVerdict, decoded.Verdict); err != nil {
			t.Fatalf("undecodable verdict %q: %v", decoded.RawVerdict, err)
		}
	}
	return resp.StatusCode, &decoded.AdmitResponse, []byte(decoded.RawVerdict)
}

// inlineReq builds an inline-profile request.
func inlineReq(ps []*switching.Profile, spec verify.Spec) *AdmitRequest {
	req := &AdmitRequest{Config: spec, Profiles: make([]ProfileJSON, len(ps))}
	for i, p := range ps {
		req.Profiles[i] = ProfileJSONOf(p)
	}
	return req
}

// localVerdictJSON runs the reference verification in-process — the exact
// config the service resolves, same worker pool — and serializes the
// verdict as the service would. This is the byte-equality oracle.
func localVerdictJSON(t testing.TB, ps []*switching.Profile, spec verify.Spec, names []string) []byte {
	t.Helper()
	cfg, err := spec.Config(ps)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = rigWorkers
	res, err := verify.Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(VerdictOf(res, names))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func namesOf(ps []*switching.Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
