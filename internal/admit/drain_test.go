package admit

// The fleet drain discipline, end to end with a real SIGTERM: a
// verification that takes >1s is in flight when the signal lands — it
// must complete with a real verdict while new submits get 503 +
// Retry-After, and a second signal forces shutdown. Extends the dverify
// Server graceful-drain e2e one layer up, at the HTTP boundary.

import (
	"bytes"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

func TestServiceDrainOnSIGTERM(t *testing.T) {
	// Catch SIGTERM before raising it: Notify routes the signal here
	// instead of killing the test binary.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM)
	defer signal.Stop(sigs)

	started := make(chan struct{})
	backend := func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		close(started)
		time.Sleep(1100 * time.Millisecond) // the >1s in-flight verification
		return verify.Slot(ps, cfg)
	}
	r := newRig(t, backendCase{name: "slow"}, func(o *Options) {
		o.Backend = backend
		o.BackendDesc = "slow local"
	})

	var forced atomic.Bool
	r.svc.DrainOnSignal(sigs, func() { forced.Store(true) })

	// The long verification goes in flight...
	ps := fleet(3, 6, 1, 2, 10)
	want := localVerdictJSON(t, ps, verify.Spec{}, namesOf(ps))
	inflight := make(chan struct{})
	var gotStatus int
	var gotVerdict []byte
	go func() {
		defer close(inflight)
		status, _, verdict := r.submit(t, inlineReq(ps, verify.Spec{}))
		gotStatus, gotVerdict = status, verdict
	}()
	<-started

	// ...SIGTERM lands...
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !r.svc.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("service never started draining after SIGTERM")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// ...new submits are refused with 503 + Retry-After...
	resp, _ := r.postRaw(t, mustBody(t, inlineReq(fleet(2, 8, 2, 4, 40), verify.Spec{})))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	if hr, err := http.Get(r.ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/healthz while draining: HTTP %d, want 503", hr.StatusCode)
		}
	}

	// ...the in-flight verdict still completes, for real...
	select {
	case <-inflight:
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	if gotStatus != http.StatusOK {
		t.Fatalf("in-flight request during drain: HTTP %d", gotStatus)
	}
	if !bytes.Equal(gotVerdict, want) {
		t.Fatalf("drained verdict diverges:\n got %s\nwant %s", gotVerdict, want)
	}

	deadline = time.Now().Add(10 * time.Second)
	for !r.svc.Drained() {
		if time.Now().After(deadline) {
			t.Fatal("drain never completed after the in-flight verdict")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if forced.Load() {
		t.Fatal("force fired on the first signal")
	}

	// ...and a second signal forces shutdown.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !forced.Load() {
		if time.Now().After(deadline) {
			t.Fatal("second SIGTERM did not force shutdown")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceDrainIdempotent: concurrent Drain calls all block until one
// drain completes; submits after drain stay refused.
func TestServiceDrainIdempotent(t *testing.T) {
	r := newRig(t, backendCase{name: "local"}, nil)
	done := make(chan struct{}, 2)
	go func() { r.svc.Drain(); done <- struct{}{} }()
	go func() { r.svc.Drain(); done <- struct{}{} }()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent Drain wedged")
		}
	}
	status, resp, _ := r.submit(t, inlineReq(fleet(2, 8, 2, 4, 40), verify.Spec{}))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: HTTP %d (%s)", status, resp.Error)
	}
}
