package admit

// Backend-resilience tests: the retry policy (transient faults retried,
// deterministic classes never), the circuit breaker, the local-fallback
// degraded mode, and the client's capped Retry-After handling — all
// default-off, so these rigs opt in explicitly.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// flakyBackend fails its first n calls with a transient cluster error,
// then delegates to the local engine.
func flakyBackend(n int, calls *atomic.Int64) VerifyBackend {
	return func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		c := calls.Add(1)
		if c <= int64(n) {
			return verify.Result{}, fmt.Errorf("dverify: node 1: connection reset (injected fault %d)", c)
		}
		cfg.Distributed = nil
		return verify.Slot(ps, cfg)
	}
}

func TestBackendRetryRecovers(t *testing.T) {
	var calls atomic.Int64
	r := newRig(t, backendCase{name: "flaky"}, func(o *Options) {
		o.Backend = flakyBackend(2, &calls)
		o.BackendDesc = "flaky (2 injected faults)"
		o.RetryAttempts = 3
		o.RetryBackoff = time.Millisecond
	})
	ps := fleet(2, 5, 2, 4, 20)
	want := localVerdictJSON(t, ps, verify.Spec{}, namesOf(ps))
	status, resp, verdict := r.submit(t, inlineReq(ps, verify.Spec{}))
	if status != http.StatusOK {
		t.Fatalf("retried submit: HTTP %d (%s)", status, resp.Error)
	}
	if !bytes.Equal(verdict, want) {
		t.Fatalf("verdict after retries diverges:\n got %s\nwant %s", verdict, want)
	}
	if calls.Load() != 3 {
		t.Errorf("backend called %d times, want 3 (2 faults + 1 success)", calls.Load())
	}
	st := r.svc.ServiceStats()
	if st.Retries != 2 || st.Verifications != 1 {
		t.Errorf("stats: retries=%d verifications=%d, want 2/1", st.Retries, st.Verifications)
	}
}

func TestBackendNeverRetriesDeterministicErrors(t *testing.T) {
	var calls atomic.Int64
	r := newRig(t, backendCase{name: "overbudget"}, func(o *Options) {
		o.Backend = func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
			calls.Add(1)
			return verify.Result{}, fmt.Errorf("state budget: %w", verify.ErrTooLarge)
		}
		o.BackendDesc = "budget-tripping"
		o.RetryAttempts = 3
		o.RetryBackoff = time.Millisecond
	})
	status, resp, _ := r.submit(t, inlineReq(fleet(2, 5, 2, 4, 20), verify.Spec{}))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budget error: HTTP %d (%s), want 422", status, resp.Error)
	}
	if calls.Load() != 1 {
		t.Errorf("deterministic failure was retried: %d backend calls", calls.Load())
	}
}

func TestBreakerTripsToLocalFallback(t *testing.T) {
	var calls atomic.Int64
	r := newRig(t, backendCase{name: "dead"}, func(o *Options) {
		o.Backend = func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
			calls.Add(1)
			return verify.Result{}, errors.New("dverify: node 0: cluster unplugged (injected)")
		}
		o.BackendDesc = "permanently dead"
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Minute
		o.LocalFallback = true
	})
	// Three distinct questions: the first two hit the dead cluster (and
	// fall back locally), tripping the breaker; the third must be served
	// locally without touching the backend at all.
	for i, r20 := range []int{20, 25, 30} {
		ps := fleet(2, 5, 2, 4, r20)
		want := localVerdictJSON(t, ps, verify.Spec{}, namesOf(ps))
		status, resp, verdict := r.submit(t, inlineReq(ps, verify.Spec{}))
		if status != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d (%s), want 200 via local fallback", i, status, resp.Error)
		}
		if !bytes.Equal(verdict, want) {
			t.Fatalf("submit %d: fallback verdict diverges:\n got %s\nwant %s", i, verdict, want)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("backend called %d times, want 2 (breaker open for the third)", calls.Load())
	}
	st := r.svc.ServiceStats()
	if st.LocalFallbacks != 3 || st.BreakerTrips != 1 {
		t.Errorf("stats: fallbacks=%d trips=%d, want 3/1", st.LocalFallbacks, st.BreakerTrips)
	}
}

func TestBreakerWithoutFallbackRefuses(t *testing.T) {
	r := newRig(t, backendCase{name: "dead"}, func(o *Options) {
		o.Backend = func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
			return verify.Result{}, errors.New("dverify: node 0: cluster unplugged (injected)")
		}
		o.BackendDesc = "permanently dead"
		o.BreakerThreshold = 1
		o.BreakerCooldown = time.Minute
	})
	status, resp, _ := r.submit(t, inlineReq(fleet(2, 5, 2, 4, 20), verify.Spec{}))
	if status != http.StatusBadGateway {
		t.Fatalf("first failure: HTTP %d (%s), want 502", status, resp.Error)
	}
	// Breaker now open: the next question is refused up front with 503 +
	// Retry-After instead of burning another cluster session.
	body, _ := inlineReqBody(fleet(2, 5, 2, 4, 25))
	httpResp, raw := r.postRaw(t, body)
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker open: HTTP %d (%s), want 503", httpResp.StatusCode, raw)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("breaker-open 503 carries no Retry-After")
	}
}

// inlineReqBody marshals an inline request to its JSON body.
func inlineReqBody(ps []*switching.Profile) (string, error) {
	b, err := json.Marshal(inlineReq(ps, verify.Spec{}))
	return string(b), err
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3600") // must be capped, not slept
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"draining"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"verdict":{"schedulable":true,"depth":0,"violator":-1}}`)
	}))
	defer srv.Close()

	cli := &Client{BaseURL: srv.URL, Retry503: 3, MaxRetryWait: 10 * time.Millisecond}
	t0 := time.Now()
	resp, err := cli.Admit(&AdmitRequest{Apps: []string{"x"}})
	if err != nil {
		t.Fatalf("retried client: %v", err)
	}
	if resp.Verdict == nil || !resp.Verdict.Schedulable {
		t.Fatalf("retried client got no verdict: %+v", resp)
	}
	if hits.Load() != 3 {
		t.Errorf("server hit %d times, want 3", hits.Load())
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("Retry-After was not capped: total wait %v", d)
	}

	// Default client: no retries, the 503 surfaces directly.
	hits.Store(0)
	plain := &Client{BaseURL: srv.URL}
	_, err = plain.Admit(&AdmitRequest{Apps: []string{"x"}})
	if se, ok := AsStatusError(err); !ok || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("default client should surface the 503, got %v", err)
	}
	if hits.Load() != 1 {
		t.Errorf("default client retried: %d hits", hits.Load())
	}
}
