package admit

// Fault injection at the service boundary: a mesh worker process dies
// mid-job behind the admission service. The HTTP client must get a clean
// 502 naming the dead node — no hang — and the failed fingerprint must
// not be poisoned in any cache layer: the next submit of the same
// question runs a fresh backend verification and returns the real
// verdict.

import (
	"bytes"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tightcps/internal/dverify"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// crashListener records accepted connections so the test can sever them
// all at once, like a killed worker process.
type crashListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *crashListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *crashListener) kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.Listener.Close()
	for _, c := range l.conns {
		c.Close()
	}
}

func TestServiceMeshWorkerCrash(t *testing.T) {
	// A 2-node TCP mesh, the second worker rigged to crash.
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l0.Close() })
	go dverify.Serve(l0, nil)

	l1raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1 := &crashListener{Listener: l1raw}
	t.Cleanup(l1.kill)
	go dverify.Serve(l1, nil)

	ts, err := dverify.Dial([]string{l0.Addr().String(), l1.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dverify.Close(ts) })

	// The backend routes to the doomed cluster until the test flips it to
	// the local engine — the post-crash resubmit then proves no cache
	// layer memorized the failure.
	var useLocal atomic.Bool
	mesh := dverify.Runner(ts)
	backend := func(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		if useLocal.Load() {
			return verify.Slot(ps, cfg)
		}
		return mesh(ps, cfg)
	}
	r := newRig(t, backendCase{name: "crashy"}, func(o *Options) {
		o.Backend = backend
		o.BackendNodes = 2
		o.BackendDesc = "tcp2 (crash-rigged)"
	})

	// The 4-app r=40 fleet runs to 2.9M states (seconds over TCP); the
	// kill 100ms in lands mid-job.
	ps := fleet(4, 8, 2, 4, 40)
	req := inlineReq(ps, verify.Spec{})
	time.AfterFunc(100*time.Millisecond, l1.kill)

	type result struct {
		status int
		resp   *AdmitResponse
	}
	done := make(chan result, 1)
	go func() {
		status, resp, _ := r.submit(t, req)
		done <- result{status, resp}
	}()
	var got result
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("HTTP client hung after the worker crash")
	}
	if got.status != http.StatusBadGateway {
		t.Fatalf("crashed backend: HTTP %d (%s), want 502", got.status, got.resp.Error)
	}
	if !strings.Contains(got.resp.Error, "node") {
		t.Fatalf("502 does not name the dead node: %q", got.resp.Error)
	}

	st := r.svc.ServiceStats()
	if st.Errors == 0 || st.Verifications != 1 {
		t.Fatalf("stats after crash: %+v", st)
	}

	// No poison: the same question over a healthy backend runs fresh and
	// yields the real verdict — neither the full-verdict map nor the
	// persistent bit cache may have recorded the failure.
	useLocal.Store(true)
	want := localVerdictJSON(t, ps, verify.Spec{}, namesOf(ps))
	status, resp, verdict := r.submit(t, req)
	if status != http.StatusOK {
		t.Fatalf("resubmit after crash: HTTP %d (%s)", status, resp.Error)
	}
	if resp.Cached || resp.Warm {
		t.Fatalf("resubmit served from cache — the failure was memorized: %+v", resp)
	}
	if !bytes.Equal(verdict, want) {
		t.Fatalf("resubmit verdict diverges:\n got %s\nwant %s", verdict, want)
	}
	if st := r.svc.ServiceStats(); st.Verifications != 2 {
		t.Fatalf("resubmit did not run a fresh verification: %+v", st)
	}
}
