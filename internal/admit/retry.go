package admit

// Backend resilience. The admission service fronts a distributed
// cluster whose workers can die mid-run; with fault tolerance on the
// cluster side (verify.Config.FaultTolerance) most deaths recover
// transparently, and this layer covers what remains: transient whole-run
// failures retry with exponential backoff and jitter, a run of
// consecutive failures opens a circuit breaker so a dead cluster stops
// eating full search budgets per submit, and an optional local fallback
// keeps answering from the in-process engine while the cluster is down —
// a degraded mode (local MaxStates semantics, one machine's throughput)
// that still produces sound verdicts.
//
// Everything here defaults OFF: a plain Options{Backend: ...} service
// reports backend failures as 502 exactly as before, which the fault
// tests pin.

import (
	"errors"
	"math/rand"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// errBreakerOpen fails a submit while the circuit is open and no local
// fallback is configured; classified 503 so clients back off.
var errBreakerOpen = errors.New("admit: verification backend circuit open (cluster failing); retry after the cooldown")

// retryCap bounds one backoff wait regardless of attempt count.
const retryCap = 5 * time.Second

// retryable reports whether a backend error class is safe and useful to
// retry. Verification is idempotent — every attempt starts with a fresh
// KindInit that resets the workers, so a retry can never observe a
// half-applied run. What must not retry are the deterministic classes:
// ErrTooLarge (budget) and ErrEncoding (profile shape) are properties of
// the request itself, and a retry would re-run an expensive search for
// the same answer.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, verify.ErrTooLarge) && !errors.Is(err, verify.ErrEncoding)
}

// retryDelay is the wait before retry attempt n (1-based): the base
// doubles per attempt, capped, with half-width jitter so a fleet of
// waiters does not re-converge on the cluster in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// verify dispatches to the attached backend or the local engine — through
// verify.Slot either way, so every admission verdict passes the engine's
// single recording point (run counters, trace finalization) exactly like
// a CLI-driven run. With a backend attached, this is also the resilience
// boundary: retries, the circuit breaker and the local fallback all
// happen here, invisible to the caching and coalescing layers above.
func (s *Service) verify(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
	if s.opts.Backend == nil {
		return verify.Slot(ps, cfg)
	}
	if s.breakerOpen() {
		if s.opts.LocalFallback {
			return s.verifyLocal(ps, cfg, "breaker open")
		}
		return verify.Result{}, errBreakerOpen
	}
	res, err := s.verifyBackend(ps, cfg)
	s.breakerNote(err)
	if retryable(err) && s.opts.LocalFallback {
		return s.verifyLocal(ps, cfg, "retries exhausted")
	}
	return res, err
}

// verifyBackend runs one cluster verification, retrying transient
// failures per the retry policy.
func (s *Service) verifyBackend(ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
	cfg.Distributed = s.opts.Backend
	res, err := verify.Slot(ps, cfg)
	for attempt := 1; attempt <= s.opts.RetryAttempts && retryable(err); attempt++ {
		d := retryDelay(s.opts.RetryBackoff, attempt)
		s.opts.Logf("admit: backend run %s failed (retry %d/%d in %v): %v",
			cfg.RunID, attempt, s.opts.RetryAttempts, d, err)
		obsBackendRetries.Inc()
		s.mu.Lock()
		s.stats.Retries++
		s.mu.Unlock()
		time.Sleep(d)
		res, err = verify.Slot(ps, cfg)
	}
	return res, err
}

// verifyLocal is the degraded path: the in-process engine answers while
// the cluster cannot. MaxStates reverts to single-process semantics, so
// a budget-capped question may hit its (sound) ErrTooLarge boundary
// earlier than the cluster would.
func (s *Service) verifyLocal(ps []*switching.Profile, cfg verify.Config, why string) (verify.Result, error) {
	s.opts.Logf("admit: %s: run %s verified on the local engine", why, cfg.RunID)
	obsLocalFallbacks.Inc()
	s.mu.Lock()
	s.stats.LocalFallbacks++
	s.mu.Unlock()
	cfg.Distributed = nil
	return verify.Slot(ps, cfg)
}

// breakerOpen reports whether the circuit is currently open.
func (s *Service) breakerOpen() bool {
	if s.opts.BreakerThreshold <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Now().Before(s.breakerUntil)
}

// breakerNote feeds one backend outcome into the breaker: a success (or
// a deterministic, non-backend failure) closes the window, a transient
// failure with retries exhausted counts toward the threshold.
func (s *Service) breakerNote(err error) {
	if s.opts.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !retryable(err) {
		s.breakerFails = 0
		return
	}
	s.breakerFails++
	if s.breakerFails >= s.opts.BreakerThreshold {
		cd := s.opts.BreakerCooldown
		if cd <= 0 {
			cd = 30 * time.Second
		}
		s.breakerUntil = time.Now().Add(cd)
		s.breakerFails = 0
		s.stats.BreakerTrips++
		obsBreakerTrips.Inc()
		s.opts.Logf("admit: circuit breaker open for %v after %d consecutive backend failures",
			cd, s.opts.BreakerThreshold)
	}
}
