// Package sched implements the paper's TT-slot arbiter (Sec. 4, Fig. 7):
// an EDF-like scheduler in which the deadline of a waiting application is
// D = T*w − Tw, an occupant is non-preemptable until Tdw−(Tw), preemptable
// by any waiter in [Tdw−, Tdw+), and vacates the slot at Tdw+. Disturbances
// arriving between samples are observed at the next sample boundary
// (the buffer0/buffer construction of Figs. 6–7).
//
// The same step semantics are used by the co-simulator (internal/sim) and
// cross-validated against the exact verifier (internal/verify), so a grant
// schedule produced here is exactly a run of the verified model.
package sched

import (
	"fmt"

	"tightcps/internal/switching"
)

// Phase is the lifecycle phase of an application with respect to the slot.
type Phase uint8

// Application phases (mirroring the states of the Fig. 5 application
// automaton).
const (
	Steady   Phase = iota // no active disturbance; may be disturbed anytime
	Waiting                // disturbed, waiting for the TT slot (ET_Wait)
	Granted                // holding the TT slot (TT)
	Cooldown               // left the slot, quiescent until r elapses (ET_SAFE)
	Failed                 // missed its deadline: wait exceeded T*w (Error)
)

func (p Phase) String() string {
	switch p {
	case Steady:
		return "Steady"
	case Waiting:
		return "Waiting"
	case Granted:
		return "Granted"
	case Cooldown:
		return "Cooldown"
	case Failed:
		return "Failed"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// PreemptionPolicy selects when a preemptable occupant is actually evicted.
type PreemptionPolicy uint8

const (
	// PreemptEager is the paper's strategy: evict the occupant as soon as
	// its minimum dwell has elapsed and any application is waiting.
	PreemptEager PreemptionPolicy = iota
	// PreemptLazy is the paper's future-work variant: let the occupant keep
	// improving until the most urgent waiter is about to run out of slack,
	// then evict. Improves average performance; safety must be re-verified.
	PreemptLazy
)

// Options configures an Arbiter.
type Options struct {
	Policy PreemptionPolicy
}

// Event records one scheduler action at a given sample instant.
type Event struct {
	Time int    // sample instant
	App  int    // application index
	Kind EventKind
	Tw   int // wait at grant time (Granted events)
	CT   int // dwell at eviction (PreemptedEv/VacatedEv events)
}

// EventKind enumerates scheduler actions.
type EventKind uint8

// Scheduler event kinds.
const (
	GrantedEv EventKind = iota
	PreemptedEv
	VacatedEv
	MissedEv // deadline exceeded: the application will violate J*
)

func (k EventKind) String() string {
	switch k {
	case GrantedEv:
		return "granted"
	case PreemptedEv:
		return "preempted"
	case VacatedEv:
		return "vacated"
	case MissedEv:
		return "missed"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// appState is the arbiter's per-application runtime state.
type appState struct {
	phase Phase
	clock int // samples since the disturbance was observed
	wt    int // wait so far (== clock while Waiting)
	cT    int // dwell so far (Granted only)
	dtMin int // Tdw−(Tw) latched at grant
	dtMax int // Tdw+(Tw) latched at grant
	tw    int // wait latched at grant
}

// Arbiter is the runtime slot scheduler for one TT slot shared by a set of
// applications.
type Arbiter struct {
	profiles []*switching.Profile
	opts     Options
	apps     []appState
	occupant int // index of slot holder, −1 when idle
	now      int // current sample instant
	events   []Event
}

// NewArbiter creates an arbiter for the applications described by the given
// switching profiles, all in Steady phase, slot idle, at sample 0.
func NewArbiter(profiles []*switching.Profile, opts Options) *Arbiter {
	a := &Arbiter{
		profiles: profiles,
		opts:     opts,
		apps:     make([]appState, len(profiles)),
		occupant: -1,
	}
	return a
}

// Now returns the current sample instant (number of Tick calls so far).
func (a *Arbiter) Now() int { return a.now }

// Occupant returns the current slot holder index, or −1 when idle.
func (a *Arbiter) Occupant() int { return a.occupant }

// Phase returns application i's phase.
func (a *Arbiter) Phase(i int) Phase { return a.apps[i].phase }

// Wait returns application i's current wait (valid while Waiting).
func (a *Arbiter) Wait(i int) int { return a.apps[i].wt }

// Events returns the event log accumulated so far.
func (a *Arbiter) Events() []Event { return a.events }

// InTT reports whether application i transmits over the TT slot during the
// sample starting at the current instant.
func (a *Arbiter) InTT(i int) bool { return a.occupant == i }

// Tick advances the arbiter by one sample. disturbed lists the applications
// whose disturbance is observed at this instant (it must be ≥ r samples
// since their previous disturbance observation; violations are reported as
// an error). The very first call processes instant 0.
func (a *Arbiter) Tick(disturbed []int) error {
	if a.now > 0 {
		a.advanceClocks()
	}
	a.finishCooldowns()
	if err := a.admit(disturbed); err != nil {
		return err
	}
	a.evictIfDue()
	a.grant()
	a.flagMisses()
	a.now++
	return nil
}

// advanceClocks moves every per-application clock one sample forward.
func (a *Arbiter) advanceClocks() {
	for i := range a.apps {
		st := &a.apps[i]
		switch st.phase {
		case Waiting:
			st.clock++
			st.wt++
		case Granted:
			st.clock++
			st.cT++
		case Cooldown:
			st.clock++
		}
	}
}

// finishCooldowns returns applications whose minimum inter-arrival time has
// elapsed to Steady.
func (a *Arbiter) finishCooldowns() {
	for i := range a.apps {
		st := &a.apps[i]
		if st.phase == Cooldown && st.clock >= a.profiles[i].R {
			st.phase = Steady
		}
	}
}

// admit moves newly disturbed Steady applications into Waiting.
func (a *Arbiter) admit(disturbed []int) error {
	for _, i := range disturbed {
		if i < 0 || i >= len(a.apps) {
			return fmt.Errorf("sched: disturbance for unknown app %d", i)
		}
		st := &a.apps[i]
		if st.phase == Failed {
			continue // Error is absorbing (Fig. 5); later disturbances are moot
		}
		if st.phase != Steady {
			return fmt.Errorf("sched: app %d disturbed in phase %s (min inter-arrival r=%d violated)",
				i, st.phase, a.profiles[i].R)
		}
		st.phase = Waiting
		st.clock = 0
		st.wt = 0
	}
	return nil
}

// evictIfDue applies the forced vacate at Tdw+ and the policy-dependent
// preemption in [Tdw−, Tdw+).
func (a *Arbiter) evictIfDue() {
	if a.occupant < 0 {
		return
	}
	st := &a.apps[a.occupant]
	if st.cT >= st.dtMax {
		a.release(VacatedEv)
		return
	}
	if st.cT < st.dtMin {
		return // non-preemptable window
	}
	waiter := a.mostUrgentWaiter()
	if waiter < 0 {
		return
	}
	switch a.opts.Policy {
	case PreemptEager:
		a.release(PreemptedEv)
	case PreemptLazy:
		// Evict only when the most urgent waiter has exhausted its slack:
		// granting any later would exceed its T*w.
		if a.profiles[waiter].TwStar-a.apps[waiter].wt <= 0 {
			a.release(PreemptedEv)
		}
	}
}

// release moves the occupant to Cooldown and frees the slot.
func (a *Arbiter) release(kind EventKind) {
	st := &a.apps[a.occupant]
	a.events = append(a.events, Event{Time: a.now, App: a.occupant, Kind: kind, CT: st.cT})
	st.phase = Cooldown
	a.occupant = -1
}

// mostUrgentWaiter returns the waiting application with the smallest
// deadline D = T*w − Tw, breaking ties by smaller max Tdw− (the paper's
// secondary sort key) and then by index. Returns −1 when none waits.
func (a *Arbiter) mostUrgentWaiter() int {
	best := -1
	bestD, bestTie := 0, 0
	for i := range a.apps {
		if a.apps[i].phase != Waiting {
			continue
		}
		d := a.profiles[i].TwStar - a.apps[i].wt
		tie := a.profiles[i].MaxTdwMinus()
		if best < 0 || d < bestD || (d == bestD && tie < bestTie) {
			best, bestD, bestTie = i, d, tie
		}
	}
	return best
}

// grant hands an idle slot to the most urgent waiter, latching its dwell
// window from the profile table.
func (a *Arbiter) grant() {
	if a.occupant >= 0 {
		return
	}
	w := a.mostUrgentWaiter()
	if w < 0 {
		return
	}
	st := &a.apps[w]
	dtMin, dtMax, ok := a.profiles[w].Lookup(st.wt)
	if !ok {
		// Past T*w: no dwell window can save it; flagMisses will record it.
		return
	}
	st.phase = Granted
	st.cT = 0
	st.tw = st.wt
	st.dtMin, st.dtMax = dtMin, dtMax
	a.occupant = w
	a.events = append(a.events, Event{Time: a.now, App: w, Kind: GrantedEv, Tw: st.wt})
}

// flagMisses records deadline violations: a still-waiting application whose
// wait has reached T*w cannot be granted in time anymore (the next
// opportunity would be at Tw = T*w+1).
func (a *Arbiter) flagMisses() {
	for i := range a.apps {
		st := &a.apps[i]
		if st.phase == Waiting && st.wt >= a.profiles[i].TwStar {
			st.phase = Failed
			a.events = append(a.events, Event{Time: a.now, App: i, Kind: MissedEv, Tw: st.wt})
		}
	}
}

// Missed reports whether any application has missed its deadline so far.
func (a *Arbiter) Missed() bool {
	for i := range a.apps {
		if a.apps[i].phase == Failed {
			return true
		}
	}
	return false
}

// Occupancy reconstructs, from the event log, which application held the
// slot during each sample [0, horizon): entry k is the occupant index
// during sample k, or −1 when idle.
func Occupancy(events []Event, horizon int) []int {
	out := make([]int, horizon)
	for i := range out {
		out[i] = -1
	}
	holder := -1
	since := 0
	fill := func(until int) {
		for k := since; k < until && k < horizon; k++ {
			out[k] = holder
		}
	}
	for _, e := range events {
		switch e.Kind {
		case GrantedEv:
			fill(e.Time)
			holder, since = e.App, e.Time
		case PreemptedEv, VacatedEv:
			fill(e.Time)
			holder, since = -1, e.Time
		}
	}
	fill(horizon)
	return out
}
