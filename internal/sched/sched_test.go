package sched

import (
	"testing"

	"tightcps/internal/switching"
)

// prof builds a synthetic profile with constant dwell windows: Tdw−=dm,
// Tdw+=dp for every Tw ∈ [0, twStar].
func prof(name string, twStar, dm, dp, r int) *switching.Profile {
	n := twStar + 1
	minT := make([]int, n)
	plusT := make([]int, n)
	for i := range minT {
		minT[i] = dm
		plusT[i] = dp
	}
	return &switching.Profile{Name: name, TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
		R: r, Granularity: 1, JStar: twStar + dp, JAtMin: make([]int, n), JBest: make([]int, n)}
}

func mustTick(t *testing.T, a *Arbiter, disturbed ...int) {
	t.Helper()
	if err := a.Tick(disturbed); err != nil {
		t.Fatal(err)
	}
}

func TestSingleAppImmediateGrantAndVacate(t *testing.T) {
	p := prof("A", 5, 2, 4, 30)
	a := NewArbiter([]*switching.Profile{p}, Options{})
	mustTick(t, a, 0) // disturbance observed at instant 0
	if a.Occupant() != 0 {
		t.Fatalf("not granted immediately: occupant=%d", a.Occupant())
	}
	// Holds for Tdw+ = 4 samples (no competitor), then vacates.
	for k := 1; k <= 3; k++ {
		mustTick(t, a)
		if a.Occupant() != 0 {
			t.Fatalf("evicted early at sample %d", k)
		}
	}
	mustTick(t, a) // cT reaches 4 = Tdw+
	if a.Occupant() != -1 {
		t.Fatalf("not vacated at Tdw+")
	}
	if a.Phase(0) != Cooldown {
		t.Fatalf("phase after vacate = %v", a.Phase(0))
	}
	ev := a.Events()
	if len(ev) != 2 || ev[0].Kind != GrantedEv || ev[0].Tw != 0 || ev[1].Kind != VacatedEv || ev[1].CT != 4 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestCooldownThenSteadyAfterR(t *testing.T) {
	p := prof("A", 5, 2, 4, 10)
	a := NewArbiter([]*switching.Profile{p}, Options{})
	mustTick(t, a, 0)
	for a.Phase(0) != Cooldown {
		mustTick(t, a)
	}
	// Disturbance clock started at observation (instant 0); the app becomes
	// Steady when the instant with clock = r = 10 is processed.
	for k := a.Now(); k < 10; k++ {
		if a.Phase(0) == Steady {
			t.Fatalf("steady before r at instant %d", k)
		}
		mustTick(t, a)
	}
	mustTick(t, a) // process instant 10: clock reaches r
	if a.Phase(0) != Steady {
		t.Fatalf("not steady at r: %v", a.Phase(0))
	}
	// Now a new disturbance is admissible.
	mustTick(t, a, 0)
	if a.Phase(0) != Granted {
		t.Fatalf("second disturbance not served: %v", a.Phase(0))
	}
}

func TestPrematureDisturbanceRejected(t *testing.T) {
	p := prof("A", 5, 2, 4, 30)
	a := NewArbiter([]*switching.Profile{p}, Options{})
	mustTick(t, a, 0)
	if err := a.Tick([]int{0}); err == nil {
		t.Fatalf("disturbance during Granted accepted (violates r)")
	}
}

func TestEDFOrderAndPreemption(t *testing.T) {
	// App 0: tight deadline (T*w=3); app 1: loose (T*w=10). Simultaneous
	// disturbances: app 0 must win; app 1 preempts only after app 0's Tdw−.
	p0 := prof("A", 3, 2, 5, 40)
	p1 := prof("B", 10, 2, 5, 40)
	a := NewArbiter([]*switching.Profile{p0, p1}, Options{Policy: PreemptEager})
	mustTick(t, a, 0, 1)
	if a.Occupant() != 0 {
		t.Fatalf("EDF violated: occupant=%d", a.Occupant())
	}
	mustTick(t, a) // cT=1 < Tdw−: non-preemptable
	if a.Occupant() != 0 {
		t.Fatalf("preempted inside non-preemptable window")
	}
	mustTick(t, a) // cT=2 = Tdw−: eager policy preempts, B granted
	if a.Occupant() != 1 {
		t.Fatalf("waiter not granted after Tdw−: occupant=%d", a.Occupant())
	}
	if a.Phase(0) != Cooldown {
		t.Fatalf("preempted app phase = %v", a.Phase(0))
	}
	var kinds []EventKind
	for _, e := range a.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{GrantedEv, PreemptedEv, GrantedEv}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
}

func TestDeadlineMissFlagged(t *testing.T) {
	// Occupant holds ≥ 4 samples (Tdw−=4); waiter's T*w=2 expires first.
	p0 := prof("A", 8, 4, 6, 40)
	p1 := prof("B", 2, 2, 4, 40)
	a := NewArbiter([]*switching.Profile{p0, p1}, Options{})
	mustTick(t, a, 0) // A granted
	mustTick(t, a, 1) // B arrives; A non-preemptable (cT=1)
	mustTick(t, a)    // cT=2, B wt=1
	if a.Missed() {
		t.Fatalf("missed too early")
	}
	mustTick(t, a) // cT=3 < Tdw−; B wt=2 = T*w → miss
	if !a.Missed() {
		t.Fatalf("deadline miss not detected")
	}
	if a.Phase(1) != Failed {
		t.Fatalf("phase = %v, want Failed", a.Phase(1))
	}
	last := a.Events()[len(a.Events())-1]
	if last.Kind != MissedEv || last.App != 1 {
		t.Fatalf("last event %+v", last)
	}
}

func TestLazyPreemptionDelaysEviction(t *testing.T) {
	// Occupant A (Tdw−=2, Tdw+=6); waiter B with slack: lazy policy lets A
	// run past Tdw− until B's deadline forces the switch.
	p0 := prof("A", 10, 2, 6, 60)
	p1 := prof("B", 5, 2, 4, 60)
	lazy := NewArbiter([]*switching.Profile{p0, p1}, Options{Policy: PreemptLazy})
	mustTick(t, lazy, 0)
	mustTick(t, lazy, 1) // B waits, wt=0
	// Eager would evict at cT=2; lazy keeps A until B's slack hits 0
	// (wt = T*w = 5).
	for lazy.Occupant() == 0 {
		mustTick(t, lazy)
	}
	evictAt := 0
	for _, e := range lazy.Events() {
		if e.App == 0 && (e.Kind == PreemptedEv || e.Kind == VacatedEv) {
			evictAt = e.CT
		}
	}
	if evictAt <= 2 {
		t.Fatalf("lazy policy evicted at cT=%d, expected later than eager's 2", evictAt)
	}
	if lazy.Missed() {
		t.Fatalf("lazy policy missed B's deadline")
	}
	if lazy.Occupant() != 1 {
		t.Fatalf("B not granted after lazy eviction")
	}
}

func TestVacateThenImmediateGrant(t *testing.T) {
	// A vacates at Tdw+ while B waits; B must be granted in the same tick.
	p0 := prof("A", 10, 3, 3, 60) // window [3,3]: vacates at cT=3
	p1 := prof("B", 20, 2, 4, 60)
	a := NewArbiter([]*switching.Profile{p0, p1}, Options{Policy: PreemptLazy})
	mustTick(t, a, 0)
	mustTick(t, a, 1)
	mustTick(t, a)
	mustTick(t, a) // cT=3 = Tdw+ → vacate; grant B same tick
	if a.Occupant() != 1 {
		t.Fatalf("slot not handed over in the vacate tick: occupant=%d", a.Occupant())
	}
}

func TestTieBreakByMaxTdwMinus(t *testing.T) {
	// Same T*w; app 1 has the smaller max Tdw− and must win the tie.
	p0 := prof("A", 6, 5, 7, 60)
	p1 := prof("B", 6, 3, 7, 60)
	a := NewArbiter([]*switching.Profile{p0, p1}, Options{})
	mustTick(t, a, 0, 1)
	if a.Occupant() != 1 {
		t.Fatalf("tie-break wrong: occupant=%d, want 1 (smaller max Tdw−)", a.Occupant())
	}
}

func TestOccupancyReconstruction(t *testing.T) {
	events := []Event{
		{Time: 0, App: 2, Kind: GrantedEv},
		{Time: 3, App: 2, Kind: PreemptedEv},
		{Time: 3, App: 0, Kind: GrantedEv},
		{Time: 5, App: 0, Kind: VacatedEv},
	}
	occ := Occupancy(events, 7)
	want := []int{2, 2, 2, 0, 0, -1, -1}
	for i := range want {
		if occ[i] != want[i] {
			t.Fatalf("occupancy = %v, want %v", occ, want)
		}
	}
}

func TestUnknownAppRejected(t *testing.T) {
	a := NewArbiter([]*switching.Profile{prof("A", 5, 2, 4, 30)}, Options{})
	if err := a.Tick([]int{7}); err == nil {
		t.Fatalf("unknown app index accepted")
	}
}

func TestPhaseAndKindStrings(t *testing.T) {
	for _, p := range []Phase{Steady, Waiting, Granted, Cooldown, Failed, Phase(9)} {
		if p.String() == "" {
			t.Fatalf("empty Phase string")
		}
	}
	for _, k := range []EventKind{GrantedEv, PreemptedEv, VacatedEv, MissedEv, EventKind(9)} {
		if k.String() == "" {
			t.Fatalf("empty EventKind string")
		}
	}
}

// TestGrantBeyondTwStarNeverHappens: an app whose wait already exceeded
// T*w is flagged, not granted with an out-of-range table index.
func TestGrantBeyondTwStarNeverHappens(t *testing.T) {
	p0 := prof("A", 10, 6, 8, 60) // long occupancy
	p1 := prof("B", 2, 2, 4, 60)
	a := NewArbiter([]*switching.Profile{p0, p1}, Options{})
	mustTick(t, a, 0)
	mustTick(t, a, 1)
	for k := 0; k < 10; k++ {
		mustTick(t, a)
	}
	for _, e := range a.Events() {
		if e.Kind == GrantedEv && e.App == 1 {
			t.Fatalf("B was granted after missing its deadline: %+v", e)
		}
	}
	if !a.Missed() {
		t.Fatalf("B's miss not recorded")
	}
}
