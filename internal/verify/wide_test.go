package verify

import (
	"errors"
	"fmt"
	"testing"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// fleet builds n identical synthetic profiles (distinct names), the
// symmetric workload the wide encoding and the symmetry quotient target.
func fleet(n, twStar, dm, dp, r int) []*switching.Profile {
	out := make([]*switching.Profile, n)
	for i := range out {
		out[i] = prof(fmt.Sprintf("F%d", i), twStar, dm, dp, r)
	}
	return out
}

// TestEncodingBoundary is the n = 6 / 7 / 12 table of the wide-state
// change: every count up to maxApps constructs without ErrEncoding, and the
// first count beyond it still fails cleanly.
func TestEncodingBoundary(t *testing.T) {
	for _, tc := range []struct {
		n      int
		wantOK bool
	}{
		{6, true},
		{7, true},
		{12, true},
		{13, false},
	} {
		v, err := New(fleet(tc.n, 5, 2, 4, 20), Config{NondetTies: true})
		if tc.wantOK {
			if err != nil {
				t.Errorf("n=%d: unexpected error %v", tc.n, err)
			}
			if tc.n > 6 && !v.wide {
				t.Errorf("n=%d: expected the wide encoding", tc.n)
			}
			if tc.n <= 6 && v.wide {
				t.Errorf("n=%d: expected the one-word fast path", tc.n)
			}
		} else if !errors.Is(err, ErrEncoding) {
			t.Errorf("n=%d: want ErrEncoding, got %v", tc.n, err)
		}
	}
	// Six bounded-mode apps no longer fit one word (6·11+8 = 74 bits) but
	// now run on the wide path instead of failing — a regression the old
	// encoding had.
	v, err := New(fleet(6, 5, 2, 4, 20), Config{MaxDisturbances: 2})
	if err != nil {
		t.Fatalf("bounded n=6: %v", err)
	}
	if !v.wide {
		t.Fatal("bounded n=6 should use the wide encoding")
	}
}

// TestWidePackUnpackRoundTrip exercises the multi-word lane layout at the
// full 12-app width, bounded mode (11-bit lanes, 5 per word).
func TestWidePackUnpackRoundTrip(t *testing.T) {
	v, err := New(fleet(12, 5, 2, 4, 20), Config{MaxDisturbances: 2})
	if err != nil {
		t.Fatal(err)
	}
	states := []cstate{
		{occ: -1},
		{phase: [maxApps]uint8{pWaiting, pSteady, pCooldown, pGranted, pWaiting, pCooldown, pSteady, pWaiting, pCooldown, pWaiting, pSteady, pCooldown},
			val: [maxApps]uint8{3, 0, 17, 5, 1, 9, 0, 4, 12, 2, 0, 19},
			cnt: [maxApps]uint8{1, 0, 2, 1, 0, 2, 1, 0, 1, 2, 0, 1}, occ: 3, cT: 2},
		{phase: [maxApps]uint8{pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown, pCooldown},
			val: [maxApps]uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, occ: -1},
	}
	for i, c := range states {
		var d cstate
		v.unpackWide(v.packWide(&c), &d)
		if d != c {
			t.Fatalf("state %d round trip: %+v vs %+v", i, d, c)
		}
	}
}

// TestNarrowWideAgree forces sets that fit one word through the multi-word
// path and cross-checks verdicts AND exhaustive search statistics against
// the narrow fast path — the two encodings must describe the same state
// graph bit for bit.
func TestNarrowWideAgree(t *testing.T) {
	cases := []struct {
		name string
		ps   []*switching.Profile
	}{
		{"single", []*switching.Profile{prof("A", 5, 2, 4, 20)}},
		{"overload", []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}},
		{"loosePair", []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}},
		{"tightPair", []*switching.Profile{prof("A", 3, 4, 6, 30), prof("B", 3, 4, 6, 30)}},
		{"asymTriple", []*switching.Profile{prof("A", 2, 2, 3, 15), prof("B", 6, 2, 4, 25), prof("C", 9, 3, 5, 30)}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			cfg := Config{NondetTies: true, Workers: workers}
			narrow, err := Slot(tc.ps, cfg)
			if err != nil {
				t.Fatalf("%s: narrow: %v", tc.name, err)
			}
			v, err := New(tc.ps, cfg)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if v.wide {
				t.Fatalf("%s: expected a narrow set", tc.name)
			}
			v.wide = true // force the multi-word path
			wide, err := v.Run()
			if err != nil {
				t.Fatalf("%s: wide: %v", tc.name, err)
			}
			if wide.Schedulable != narrow.Schedulable {
				t.Errorf("%s workers=%d: wide=%v narrow=%v", tc.name, workers, wide.Schedulable, narrow.Schedulable)
			}
			if narrow.Schedulable &&
				(wide.States != narrow.States || wide.Transitions != narrow.Transitions || wide.Depth != narrow.Depth) {
				t.Errorf("%s workers=%d: wide counts (%d,%d,%d), narrow (%d,%d,%d)", tc.name, workers,
					wide.States, wide.Transitions, wide.Depth, narrow.States, narrow.Transitions, narrow.Depth)
			}
		}
	}
}

// TestWideSevenAppSlot is the first verification past the paper's scale: a
// fleet of seven identical applications that is schedulable exactly at the
// round-robin boundary (T*w = 6 tolerates the six other dwells), checked
// with the symmetry quotient sequentially and in parallel.
func TestWideSevenAppSlot(t *testing.T) {
	ps := fleet(7, 6, 1, 2, 10)
	cfg := Config{NondetTies: true, SymmetryReduction: true, Workers: 1}
	seq, err := Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Schedulable {
		t.Fatalf("7-app round-robin fleet unschedulable: violator %d", seq.Violator)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := Slot(ps, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Schedulable != seq.Schedulable || par.States != seq.States ||
			par.Transitions != seq.Transitions || par.Depth != seq.Depth {
			t.Errorf("workers=%d: (%v,%d,%d,%d), sequential (%v,%d,%d,%d)", workers,
				par.Schedulable, par.States, par.Transitions, par.Depth,
				seq.Schedulable, seq.States, seq.Transitions, seq.Depth)
		}
	}
	// One more identical app breaks the boundary: eight waiters cannot all
	// be served within T*w = 6.
	over, err := Slot(fleet(8, 6, 1, 2, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if over.Schedulable {
		t.Fatal("8-app fleet reported schedulable at the 7-app boundary")
	}
}

// TestWideParallelMatchesSequential covers the n > 6 verdict-equivalence
// requirement on quickly-deciding sets without the symmetry quotient: the
// wide parallel search must return the sequential verdict, and identical
// counts on exhaustively-searched (schedulable) sets.
func TestWideParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		ps   []*switching.Profile
		sym  bool
	}{
		{"overload7", fleet(7, 2, 1, 2, 5), false},
		{"overload12", fleet(12, 1, 1, 2, 6), false},
		{"fleet7", fleet(7, 6, 1, 2, 10), true},
		{"fleet9", fleet(9, 8, 1, 2, 9), true},
		{"mixed7", append(fleet(6, 7, 1, 2, 8), prof("X", 4, 2, 3, 12)), true},
	}
	for _, tc := range cases {
		cfg := Config{NondetTies: true, SymmetryReduction: tc.sym, Workers: 1}
		seq, err := Slot(tc.ps, cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		var par [2]Result
		for wi, workers := range []int{2, 8} {
			cfg.Workers = workers
			p, err := Slot(tc.ps, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, workers, err)
			}
			par[wi] = p
			if p.Schedulable != seq.Schedulable {
				t.Errorf("%s: workers=%d schedulable=%v, sequential=%v",
					tc.name, workers, p.Schedulable, seq.Schedulable)
			}
			if seq.Schedulable {
				if p.States != seq.States || p.Transitions != seq.Transitions || p.Depth != seq.Depth {
					t.Errorf("%s: workers=%d counts (%d,%d,%d), sequential (%d,%d,%d)",
						tc.name, workers, p.States, p.Transitions, p.Depth,
						seq.States, seq.Transitions, seq.Depth)
				}
			}
		}
		if !seq.Schedulable && par[0].Violator != par[1].Violator {
			t.Errorf("%s: violator differs across worker counts: %d vs %d",
				tc.name, par[0].Violator, par[1].Violator)
		}
	}
}

// TestSymmetryReductionSound cross-checks the quotient against the full
// state space on sets small enough to explore both ways: the verdict must
// match, and the quotient must never visit more states.
func TestSymmetryReductionSound(t *testing.T) {
	cases := []struct {
		name string
		ps   []*switching.Profile
	}{
		{"pairTight", fleet(2, 0, 3, 5, 20)},
		{"pairLoose", fleet(2, 8, 2, 4, 40)},
		{"tripleMid", fleet(3, 3, 2, 3, 10)},
		{"quadLoose", fleet(4, 6, 1, 2, 10)},
		{"mixed", append(fleet(3, 6, 1, 2, 10), prof("X", 4, 2, 3, 12))},
	}
	for _, tc := range cases {
		full, err := Slot(tc.ps, Config{NondetTies: true})
		if err != nil {
			t.Fatalf("%s: full: %v", tc.name, err)
		}
		quot, err := Slot(tc.ps, Config{NondetTies: true, SymmetryReduction: true})
		if err != nil {
			t.Fatalf("%s: quotient: %v", tc.name, err)
		}
		if quot.Schedulable != full.Schedulable {
			t.Errorf("%s: quotient=%v full=%v", tc.name, quot.Schedulable, full.Schedulable)
		}
		if quot.States > full.States {
			t.Errorf("%s: quotient states %d exceed full %d", tc.name, quot.States, full.States)
		}
	}
}

// TestWideTraceReplaysInArbiter: a counterexample found on the wide path
// must replay to a deadline miss in the runtime arbiter, exactly like the
// narrow path's traces.
func TestWideTraceReplaysInArbiter(t *testing.T) {
	ps := fleet(7, 2, 1, 2, 5)
	res, err := Slot(ps, Config{Trace: true}) // deterministic ties, like the arbiter
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("expected a violation")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample recorded with Trace on")
	}
	arb := sched.NewArbiter(ps, sched.Options{})
	for _, dist := range res.Counterexample {
		if err := arb.Tick(dist); err != nil {
			t.Fatalf("replay error: %v", err)
		}
	}
	var dist []int
	for i := range ps {
		if arb.Phase(i) == sched.Steady {
			dist = append(dist, i)
		}
	}
	if err := arb.Tick(dist); err != nil {
		t.Fatalf("final replay tick: %v", err)
	}
	for k := 0; k <= ps[res.Violator].TwStar+1 && !arb.Missed(); k++ {
		if err := arb.Tick(nil); err != nil {
			t.Fatalf("drain tick: %v", err)
		}
	}
	if !arb.Missed() {
		t.Error("wide-path violation did not reproduce in the arbiter")
	}
}

// TestWideSetZeroKeyPanics mirrors the narrow set's sentinel guard.
func TestWideSetZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newWideSet(4).add(wstate{})
}

// TestWideSetGrowth exercises the multi-word open-addressing set through
// several rehashes against a reference map.
func TestWideSetGrowth(t *testing.T) {
	s := newWideSet(4)
	ref := map[wstate]bool{}
	mk := func(i int) wstate {
		return wstate{uint64(i)*0x9e3779b97f4a7c15 + 1, uint64(i), uint64(i % 7), uint64(i % 3)}
	}
	for i := 0; i < 5000; i++ {
		k := mk(i)
		if s.add(k) != !ref[k] {
			t.Fatalf("add(%v) freshness mismatch", k)
		}
		ref[k] = true
	}
	for k := range ref {
		if !s.contains(k) {
			t.Fatalf("lost key %v after growth", k)
		}
	}
	if s.len() != len(ref) {
		t.Fatalf("len=%d, want %d", s.len(), len(ref))
	}
}
