package verify

import (
	"testing"
	"time"
)

// TestLaneTunerPolicy pins the hill-climb policy: windows too small to be
// a signal are ignored, improvement keeps the direction, regression
// reverses it, contention forces a step down, and the walk stays clamped
// to [1, max].
func TestLaneTunerPolicy(t *testing.T) {
	t.Run("singleLanePoolNeverMoves", func(t *testing.T) {
		tu := NewLaneTuner(1)
		tu.Observe(1_000_000, time.Second, 1_000_000)
		if got := tu.Lanes(); got != 1 {
			t.Fatalf("lanes = %d, want 1", got)
		}
	})
	t.Run("smallWindowIgnored", func(t *testing.T) {
		tu := NewLaneTuner(8)
		tu.Observe(tuneMinStates-1, time.Second, 0)
		if got := tu.Lanes(); got != 8 {
			t.Fatalf("lanes = %d after sub-threshold window, want 8", got)
		}
	})
	t.Run("contentionForcesDown", func(t *testing.T) {
		tu := NewLaneTuner(8)
		// Prime an upward walk, then hit it with a contended window.
		tu.Observe(100_000, time.Second, 0) // first signal: step down (dir=-1)
		if tu.Lanes() != 7 {
			t.Fatalf("lanes = %d after first signal, want 7", tu.Lanes())
		}
		tu.Observe(80_000, time.Second, 0) // regression: reverse, step up
		if tu.Lanes() != 8 {
			t.Fatalf("lanes = %d after regression, want 8", tu.Lanes())
		}
		retries := int64(float64(100_000)*tuneRetryPerState) + 1
		tu.Observe(100_000, time.Second, retries) // contended: forced down
		if tu.Lanes() != 7 {
			t.Fatalf("lanes = %d after contended window, want 7", tu.Lanes())
		}
	})
	t.Run("improvementKeepsDirection", func(t *testing.T) {
		tu := NewLaneTuner(8)
		rate := 100_000
		for want := 7; want >= 5; want-- { // each window 10% faster: keep stepping down
			tu.Observe(rate, time.Second, 0)
			if tu.Lanes() != want {
				t.Fatalf("lanes = %d, want %d", tu.Lanes(), want)
			}
			rate += rate / 10
		}
	})
	t.Run("clampedAtOne", func(t *testing.T) {
		tu := NewLaneTuner(2)
		rate := 100_000
		for i := 0; i < 6; i++ { // ever-improving: would walk below 1 unclamped
			tu.Observe(rate, time.Second, 0)
			if l := tu.Lanes(); l < 1 || l > 2 {
				t.Fatalf("lanes = %d escaped [1,2]", l)
			}
			rate += rate / 5
		}
	})
	t.Run("plateauHolds", func(t *testing.T) {
		tu := NewLaneTuner(8)
		tu.Observe(100_000, time.Second, 0)
		at := tu.Lanes()
		tu.Observe(101_000, time.Second, 0) // within ±5%: hold
		if tu.Lanes() != at {
			t.Fatalf("lanes moved on a plateau: %d → %d", at, tu.Lanes())
		}
	})
}

// TestAutoWorkersMatchesSequential: Workers = 0 (the autotuned pool) must
// reproduce the sequential search bit-identically on both encodings —
// lane-count adaptation may change timing, never the verdict or the
// exhaustive counts.
func TestAutoWorkersMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		apps []string
		sym  bool
	}{
		{"S2", []string{"C6", "C2"}, false},
		{"S1prefix", []string{"C1", "C5", "C4"}, false},
		{"rejected", []string{"C1", "C5", "C4", "C6"}, false},
	} {
		ps := caseProfiles(t, tc.apps...)
		seq, err := Slot(ps, Config{NondetTies: true, SymmetryReduction: tc.sym, Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		auto, err := Slot(ps, Config{NondetTies: true, SymmetryReduction: tc.sym, Workers: 0})
		if err != nil {
			t.Fatalf("%s: auto: %v", tc.name, err)
		}
		if auto.Schedulable != seq.Schedulable {
			t.Errorf("%s: auto schedulable=%v, sequential=%v", tc.name, auto.Schedulable, seq.Schedulable)
		}
		if seq.Schedulable && (auto.States != seq.States || auto.Transitions != seq.Transitions || auto.Depth != seq.Depth) {
			t.Errorf("%s: auto counts (%d,%d,%d), sequential (%d,%d,%d)", tc.name,
				auto.States, auto.Transitions, auto.Depth, seq.States, seq.Transitions, seq.Depth)
		}
	}
}
