package verify

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedSetRandomizedOracle drives both lock-free sets with a
// randomized concurrent workload and replays the identical key stream
// through the single-goroutine sets as the oracle: the fresh-add total,
// the cardinality and the membership of every key must agree exactly.
// Under -race this doubles as a memory-model check of the CAS-claim
// (narrow) and busy-publish (wide) protocols.
func TestShardedSetRandomizedOracle(t *testing.T) {
	const (
		goroutines = 8
		perG       = 15000
	)
	// One shared key stream with heavy cross-goroutine overlap: every
	// goroutine walks a different permutation window of the same pool.
	rng := rand.New(rand.NewSource(42))
	pool := make([]uint64, 6000)
	for i := range pool {
		for pool[i] == 0 {
			pool[i] = rng.Uint64()
		}
	}
	t.Run("narrow", func(t *testing.T) {
		s := newShardedU64Set(64)
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := pool[(i*(g+3)+g*997)%len(pool)]
					if s.addHashed(k, hashU64(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		oracle := newU64Set(64)
		want := 0
		for g := 0; g < goroutines; g++ {
			for i := 0; i < perG; i++ {
				k := pool[(i*(g+3)+g*997)%len(pool)]
				if oracle.add(k) {
					want++
				}
			}
		}
		if got := int(fresh.Load()); got != want {
			t.Fatalf("concurrent fresh adds = %d, oracle says %d", got, want)
		}
		if got := s.len(); got != want {
			t.Fatalf("len = %d, oracle cardinality %d", got, want)
		}
		for _, k := range pool {
			if oracle.contains(k) != s.contains(k) {
				t.Fatalf("membership of %#x disagrees with oracle", k)
			}
		}
	})
	t.Run("wide", func(t *testing.T) {
		key := func(v uint64) wstate {
			return wstate{v, v * 0x9e3779b97f4a7c15, ^v, 1}
		}
		s := newShardedWideSet(64)
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := key(pool[(i*(g+3)+g*997)%len(pool)])
					if s.addHashed(k, hashW(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		oracle := newWideSet(64)
		want := 0
		for g := 0; g < goroutines; g++ {
			for i := 0; i < perG; i++ {
				if oracle.add(key(pool[(i*(g+3)+g*997)%len(pool)])) {
					want++
				}
			}
		}
		if got := int(fresh.Load()); got != want {
			t.Fatalf("concurrent fresh adds = %d, oracle says %d", got, want)
		}
		if got := s.len(); got != want {
			t.Fatalf("len = %d, oracle cardinality %d", got, want)
		}
		for _, v := range pool {
			if oracle.contains(key(v)) != s.contains(key(v)) {
				t.Fatalf("membership of %#x disagrees with oracle", v)
			}
		}
	})
}

// TestShardedSetProbeWraparound pins the positional window across the
// table's end: synthetic hashes aim every key at the last slot of stripe
// zero, so the probe must wrap to index 0 and keep going. Duplicate
// detection across the wrap is exactly what the bounded-window exactness
// argument requires.
func TestShardedSetProbeWraparound(t *testing.T) {
	t.Run("narrow", func(t *testing.T) {
		s := newShardedU64Set(64) // 16 slots per stripe
		st := &s.stripes[0]
		h := st.mask // home slot = last index of stripe 0
		for k := uint64(1); k <= 10; k++ {
			if !s.addHashed(k, h) {
				t.Fatalf("fresh key %d reported duplicate", k)
			}
		}
		for k := uint64(1); k <= 10; k++ {
			if s.addHashed(k, h) {
				t.Fatalf("duplicate key %d re-admitted across the wrap", k)
			}
		}
		if got := s.len(); got != 10 {
			t.Fatalf("len = %d, want 10", got)
		}
		if st.probes.Load() == 0 {
			t.Fatal("no probe steps recorded despite forced collisions")
		}
	})
	t.Run("wide", func(t *testing.T) {
		s := newShardedWideSet(64)
		st := &s.stripes[0]
		h := st.mask
		key := func(v uint64) wstate { return wstate{v, 0, 0, 1} }
		for v := uint64(1); v <= 10; v++ {
			if !s.addHashed(key(v), h) {
				t.Fatalf("fresh key %d reported duplicate", v)
			}
		}
		for v := uint64(1); v <= 10; v++ {
			if s.addHashed(key(v), h) {
				t.Fatalf("duplicate key %d re-admitted across the wrap", v)
			}
		}
		if got := s.len(); got != 10 {
			t.Fatalf("len = %d, want 10", got)
		}
	})
}

// TestShardedSetOverflowValveAndDrain saturates whole stripes (tables far
// smaller than the key count, windows clamped to the table length) so
// adds fall through to the overflow maps, then checks that quiescent
// reserves fold every parked key back into grown tables with nothing
// lost or double-counted.
func TestShardedSetOverflowValveAndDrain(t *testing.T) {
	const distinct = 5000
	t.Run("narrow", func(t *testing.T) {
		s := newShardedU64Set(64) // 1024 slots total, no reserve: must overflow
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(4)
		for g := 0; g < 4; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 4*distinct; i++ {
					k := uint64(1 + (i+g*13)%distinct)
					if s.addHashed(k, hashU64(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := int(fresh.Load()); got != distinct {
			t.Fatalf("fresh adds = %d, want %d", got, distinct)
		}
		if s.stats().Overflows == 0 {
			t.Fatal("expected saturated windows to park keys in the overflow maps")
		}
		for i := 0; i < 8 && s.stats().Overflows > 0; i++ {
			s.reserve(0) // quiescent growth drains the overflow
		}
		if ov := s.stats().Overflows; ov != 0 {
			t.Fatalf("overflow maps still hold %d keys after repeated reserves", ov)
		}
		if got := s.len(); got != distinct {
			t.Fatalf("len = %d after drain, want %d", got, distinct)
		}
		for k := uint64(1); k <= distinct; k++ {
			if !s.contains(k) {
				t.Fatalf("key %d lost in the drain", k)
			}
		}
	})
	t.Run("wide", func(t *testing.T) {
		s := newShardedWideSet(64)
		key := func(i int) wstate {
			v := uint64(i)
			return wstate{v, v * 0x9e3779b97f4a7c15, ^v, 1}
		}
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(4)
		for g := 0; g < 4; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 4*distinct; i++ {
					k := key(1 + (i+g*13)%distinct)
					if s.addHashed(k, hashW(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := int(fresh.Load()); got != distinct {
			t.Fatalf("fresh adds = %d, want %d", got, distinct)
		}
		if s.stats().Overflows == 0 {
			t.Fatal("expected saturated windows to park keys in the overflow maps")
		}
		for i := 0; i < 8 && s.stats().Overflows > 0; i++ {
			s.reserve(0)
		}
		if ov := s.stats().Overflows; ov != 0 {
			t.Fatalf("overflow maps still hold %d keys after repeated reserves", ov)
		}
		if got := s.len(); got != distinct {
			t.Fatalf("len = %d after drain, want %d", got, distinct)
		}
		for i := 1; i <= distinct; i++ {
			if !s.contains(key(i)) {
				t.Fatalf("key %d lost in the drain", i)
			}
		}
	})
}

// TestShardedSetGrowUnderLoad alternates concurrent insertion waves with
// quiescent reserves — the exact rhythm of the BFS drivers (lanes within
// a level, Reserve at the level boundary) — and checks exact cardinality
// and membership after every wave.
func TestShardedSetGrowUnderLoad(t *testing.T) {
	const (
		waves    = 6
		perWave  = 3000
		laneCnt  = 4
		overlapK = 500 // each wave re-offers this many keys of the previous one
	)
	s := newShardedU64Set(64)
	total := 0
	for wave := 0; wave < waves; wave++ {
		s.reserve(perWave) // quiescent, as at a level boundary
		base := wave*perWave - overlapK
		if base < 0 {
			base = 0
		}
		hi := (wave + 1) * perWave
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(laneCnt)
		for g := 0; g < laneCnt; g++ {
			go func(g int) {
				defer wg.Done()
				for k := base + 1 + g; k <= hi; k += laneCnt {
					kk := uint64(k)
					if s.addHashed(kk, hashU64(kk)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		total = hi
		if got := s.len(); got != total {
			t.Fatalf("wave %d: len = %d, want %d", wave, got, total)
		}
	}
	for k := uint64(1); k <= uint64(total); k++ {
		if !s.contains(k) {
			t.Fatalf("key %d missing after %d growth waves", k, waves)
		}
	}
}
