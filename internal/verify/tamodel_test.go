package verify

import (
	"fmt"
	"testing"

	"tightcps/internal/switching"
	"tightcps/internal/ta"
)

// TestTAModelAgreesWithPackedVerifier is the semantic anchor of the whole
// verification layer: the faithful Fig. 5–7 timed-automata network checked
// by the generic engine must give the same schedulability verdict as the
// optimised packed verifier on a spread of synthetic application sets.
func TestTAModelAgreesWithPackedVerifier(t *testing.T) {
	cases := []struct {
		name string
		ps   []*profSpec
	}{
		{"tight-pair", []*profSpec{{0, 3, 5, 20}, {0, 3, 5, 20}}},
		{"loose-pair", []*profSpec{{8, 2, 4, 25}, {8, 2, 4, 25}}},
		{"mid-pair", []*profSpec{{3, 4, 6, 20}, {3, 4, 6, 20}}},
		{"asym-pair", []*profSpec{{2, 2, 3, 15}, {9, 4, 6, 30}}},
		{"barely", []*profSpec{{4, 2, 3, 20}, {4, 2, 3, 20}}},
		{"hopeless-triple", []*profSpec{{1, 2, 3, 15}, {1, 2, 3, 15}, {1, 2, 3, 15}}},
		// Past the old 6-app cap: the packed side runs the wide encoding.
		// T*w = 0 keeps the generic engine's interleaving explosion shallow.
		{"hopeless-seven", []*profSpec{
			{0, 2, 3, 10}, {0, 2, 3, 10}, {0, 2, 3, 10}, {0, 2, 3, 10},
			{0, 2, 3, 10}, {0, 2, 3, 10}, {0, 2, 3, 10}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ps := buildSpecs(tc.ps)
			_, taOK, err := CheckNetwork(ps, ta.CheckOptions{MaxStates: 5_000_000})
			if err != nil {
				t.Fatalf("TA check: %v", err)
			}
			packed, err := Slot(ps, Config{NondetTies: true})
			if err != nil {
				t.Fatalf("packed check: %v", err)
			}
			if taOK != packed.Schedulable {
				t.Fatalf("verdicts disagree: TA=%v packed=%v", taOK, packed.Schedulable)
			}
		})
	}
}

type profSpec struct{ twStar, dm, dp, r int }

func buildSpecs(specs []*profSpec) []*switching.Profile {
	out := make([]*switching.Profile, 0, len(specs))
	for i, s := range specs {
		out = append(out, prof(fmt.Sprintf("A%d", i), s.twStar, s.dm, s.dp, s.r))
	}
	return out
}

// TestTAModelPaperSlotS2 checks the real case-study pair {C6, C2} through
// the faithful network (the heavier S1 quadruple is covered by the packed
// verifier; the TA engine explores ~25× more states for the same model).
func TestTAModelPaperSlotS2(t *testing.T) {
	if testing.Short() {
		t.Skip("TA network exploration of the real pair takes ~1 s")
	}
	ps := caseProfiles(t, "C6", "C2")
	res, ok, err := CheckNetwork(ps, ta.CheckOptions{MaxStates: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("TA model rejects paper slot S2 (states=%d)", res.States)
	}
}

// TestTAWitnessEndsInError: for an unschedulable set, the witness trace
// must exist and its final step must be an application's miss transition.
func TestTAWitnessEndsInError(t *testing.T) {
	ps := buildSpecs([]*profSpec{{0, 3, 5, 20}, {0, 3, 5, 20}})
	net, err := BuildNetwork(ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Reachable(net.AnyLocation("App", "Error"), ta.CheckOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || len(res.Witness) == 0 {
		t.Fatal("expected a witness")
	}
	last := res.Witness[len(res.Witness)-1]
	if last.Step.Label != "miss" {
		t.Fatalf("witness final step %q, want miss\n%s", last.Step.Label, net.FormatTrace(res.Witness))
	}
}

func TestBuildNetworkEmpty(t *testing.T) {
	if _, err := BuildNetwork(nil); err == nil {
		t.Fatal("empty set accepted")
	}
}
