package verify

import (
	"testing"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// TestRefuteAgreesWithVerifier: every replay-refuted set must be
// unschedulable under the exact checker (soundness), and no schedulable
// set may be refuted.
func TestRefuteAgreesWithVerifier(t *testing.T) {
	cases := []struct {
		name string
		ps   []*switching.Profile
	}{
		{"overloadPair", fleet(2, 0, 3, 5, 20)},
		{"loosePair", fleet(2, 8, 2, 4, 40)},
		{"fleet7ok", fleet(7, 6, 1, 2, 10)},
		{"fleet8over", fleet(8, 6, 1, 2, 10)},
		{"fleet12over", fleet(12, 3, 2, 3, 8)},
	}
	for _, tc := range cases {
		refuted := Refute(tc.ps, sched.PreemptEager)
		res, err := Slot(tc.ps, Config{NondetTies: true, SymmetryReduction: len(tc.ps) > 6})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if refuted && res.Schedulable {
			t.Errorf("%s: replay refuted a schedulable set (unsound)", tc.name)
		}
		if !refuted && !res.Schedulable {
			t.Logf("%s: unschedulable but not refuted by replay (expected: replay is incomplete)", tc.name)
		}
	}
	// The saturation replay must actually catch the canonical overload —
	// one instance past a fleet's round-robin capacity.
	if !Refute(fleet(12, 3, 2, 3, 8), sched.PreemptEager) {
		t.Error("replay missed the saturated-fleet overload")
	}
}
