package verify

import (
	"fmt"

	"tightcps/internal/switching"
	"tightcps/internal/ta"
)

// BuildNetwork constructs the paper's timed-automata network (Figs. 5–7)
// for the given application profiles: one application automaton per
// profile (Steady → ET_Wait → TT → ET_SAFE cycle with an Error location), a
// Policy automaton and a Sort automaton implementing the two-stage
// buffer0→buffer EDF admission, and the Scheduler automaton that processes
// requests at every sample tick (clock x with invariant x ≤ 1).
//
// The network is checked with the generic discrete-time engine in
// internal/ta; the packed verifier in this package implements the same
// semantics ~100× faster. Cross-validation tests keep the two in agreement.
func BuildNetwork(profiles []*switching.Profile) (*ta.Network, error) {
	n := len(profiles)
	if n == 0 {
		return nil, fmt.Errorf("verify: empty application set")
	}

	net := &ta.Network{}

	// ---- Variables ------------------------------------------------------
	// Layout (all int): per-app WT, get, leave, DTm, DTp; then buffers.
	addVar := func(name string) int {
		id := len(net.VarNames)
		net.VarNames = append(net.VarNames, name)
		return id
	}
	vWT := make([]int, n)
	vGet := make([]int, n)
	vLeave := make([]int, n)
	vDTm := make([]int, n)
	vDTp := make([]int, n)
	for i := 0; i < n; i++ {
		vWT[i] = addVar(fmt.Sprintf("WT[%d]", i))
		vGet[i] = addVar(fmt.Sprintf("get[%d]", i))
		vLeave[i] = addVar(fmt.Sprintf("leave[%d]", i))
		vDTm[i] = addVar(fmt.Sprintf("DTm[%d]", i))
		vDTp[i] = addVar(fmt.Sprintf("DTp[%d]", i))
	}
	vDist := addVar("dist")     // id carried by a reqTT synchronisation
	vApp := addVar("app")       // current occupant
	vRun := addVar("run")       // slot busy flag
	vMoving := addVar("moving") // app id being transferred buffer0→buffer
	vPlace := addVar("place")   // Sort's insertion cursor
	vB0Len := addVar("b0len")
	vBLen := addVar("blen")
	vB0 := make([]int, n)
	vB := make([]int, n)
	for i := 0; i < n; i++ {
		vB0[i] = addVar(fmt.Sprintf("b0[%d]", i))
		vB[i] = addVar(fmt.Sprintf("buf[%d]", i))
	}

	// ---- Clocks ----------------------------------------------------------
	cTime := make([]int, n)
	for i := 0; i < n; i++ {
		cTime[i] = len(net.ClockNames)
		net.ClockNames = append(net.ClockNames, fmt.Sprintf("time[%d]", i))
		net.ClockMax = append(net.ClockMax, profiles[i].R)
	}
	cX := len(net.ClockNames)
	net.ClockNames = append(net.ClockNames, "x")
	net.ClockMax = append(net.ClockMax, 1)
	cCT := len(net.ClockNames)
	net.ClockNames = append(net.ClockNames, "cT")
	maxDw := 0
	for _, p := range profiles {
		if m := p.MaxTdwPlus(); m > maxDw {
			maxDw = m
		}
	}
	net.ClockMax = append(net.ClockMax, maxDw)

	// ---- Channels --------------------------------------------------------
	addChan := func(name string) int {
		id := len(net.ChanNames)
		net.ChanNames = append(net.ChanNames, name)
		return id
	}
	chReq := addChan("reqTT")
	chCall := addChan("callPolicy")
	chDone := addChan("donePolicy")
	chFind := addChan("findPlace")
	chFound := addChan("placeFound")
	chGet := make([]int, n)
	chLeave := make([]int, n)
	for i := 0; i < n; i++ {
		chGet[i] = addChan(fmt.Sprintf("getTT[%d]", i))
		chLeave[i] = addChan(fmt.Sprintf("leaveTT[%d]", i))
	}

	// ---- Application automata (Fig. 5) -----------------------------------
	for i := 0; i < n; i++ {
		i := i
		p := profiles[i]
		app := &ta.Automaton{Name: fmt.Sprintf("App%d", i)}
		const (
			lSteady = iota
			lWait
			lTT
			lSafe
			lError
		)
		app.Locations = []ta.Location{
			{Name: "Steady"},
			{Name: "ET_Wait"},
			{Name: "TT"},
			{Name: "ET_SAFE", Invariant: func(s *ta.State) bool { return s.Clocks[cTime[i]] <= p.R }},
			{Name: "Error"},
		}
		app.Init = lSteady
		app.Edges = []ta.Edge{
			// Disturbance: request the TT slot (observed by the scheduler at
			// the next tick through buffer0). dist carries the sender id.
			// Fig. 5 resets time[id] here; the Policy automaton resets it
			// again at the buffer0→buffer transfer, which marks the sample
			// at which the scheduler first observes the disturbance.
			{From: lSteady, To: lWait, Chan: chReq, Dir: ta.Emit, Label: "reqTT",
				Update: func(s *ta.State) {
					s.Vars[vDist] = i
					s.Clocks[cTime[i]] = 0
				}},
			// Deadline miss: waited past T*w without a grant.
			{From: lWait, To: lError, Label: "miss",
				Guard: func(s *ta.State) bool { return s.Clocks[cTime[i]] > p.TwStar }},
			// Grant: latch the dwell window for the observed wait. (The
			// paper guards this edge with get[id]==1; with per-application
			// channels the synchronisation itself identifies the grantee,
			// and UPPAAL evaluates guards before the emitter's update, so
			// the flag is mirrored in the update instead.)
			{From: lWait, To: lTT, Chan: chGet[i], Dir: ta.Recv, Label: "getTT",
				Update: func(s *ta.State) {
					dm, dp, ok := p.Lookup(s.Vars[vWT[i]])
					if !ok {
						dm, dp = 0, 0 // unreachable: grants respect T*w
					}
					s.Vars[vDTm[i]] = dm
					s.Vars[vDTp[i]] = dp
				}},
			// Eviction (preemption or Tdw+ expiry).
			{From: lTT, To: lSafe, Chan: chLeave[i], Dir: ta.Recv, Label: "leaveTT",
				Guard:  func(s *ta.State) bool { return s.Clocks[cTime[i]] < p.R },
				Update: func(s *ta.State) { s.Vars[vGet[i]] = 0 }},
			// Eviction when the inter-arrival window already elapsed while
			// holding the slot (r ≤ Tw+dwell): go straight to Steady.
			{From: lTT, To: lSteady, Chan: chLeave[i], Dir: ta.Recv, Label: "leaveTT(late)",
				Guard:  func(s *ta.State) bool { return s.Clocks[cTime[i]] >= p.R },
				Update: func(s *ta.State) { s.Vars[vGet[i]] = 0 }},
			// Quiescence over: eligible for the next disturbance.
			{From: lSafe, To: lSteady, Label: "steady",
				Guard: func(s *ta.State) bool { return s.Clocks[cTime[i]] == p.R }},
		}
		net.Automata = append(net.Automata, app)
	}

	// ---- Policy automaton (Fig. 6 top) ------------------------------------
	policy := &ta.Automaton{Name: "Policy"}
	const (
		polIdle = iota
		polLoop
		polWait
	)
	policy.Locations = []ta.Location{
		{Name: "Idle"},
		{Name: "Loop", Kind: ta.Committed},
		{Name: "WaitSort", Kind: ta.Committed},
	}
	policy.Init = polIdle
	policy.Edges = []ta.Edge{
		{From: polIdle, To: polLoop, Chan: chCall, Dir: ta.Recv, Label: "callPolicy"},
		// Take the newest buffer0 entry, reset its clocks, hand to Sort.
		{From: polLoop, To: polWait, Chan: chFind, Dir: ta.Emit, Label: "findPlace",
			Guard: func(s *ta.State) bool { return s.Vars[vB0Len] > 0 },
			Update: func(s *ta.State) {
				last := s.Vars[vB0Len] - 1
				id := s.Vars[vB0[last]]
				s.Vars[vMoving] = id
				s.Vars[vB0Len] = last // remove_buffer0()
				s.Clocks[cTime[id]] = 0
				s.Vars[vWT[id]] = 0
			}},
		{From: polWait, To: polLoop, Chan: chFound, Dir: ta.Recv, Label: "placeFound"},
		{From: polLoop, To: polIdle, Chan: chDone, Dir: ta.Emit, Label: "donePolicy",
			Guard: func(s *ta.State) bool { return s.Vars[vB0Len] == 0 }},
	}
	net.Automata = append(net.Automata, policy)

	// ---- Sort automaton (Fig. 6 bottom) -----------------------------------
	// EDF insertion: advance place past entries at least as urgent as the
	// moving application (deadline D = T*w − time since observation; the
	// moving application's clock was just reset, so its deadline is its
	// T*w). Ties keep FIFO order.
	deadline := func(s *ta.State, id int) int {
		return profiles[id].TwStar - s.Vars[vWT[id]]
	}
	sort := &ta.Automaton{Name: "Sort"}
	const (
		srtIdle = iota
		srtScan
	)
	sort.Locations = []ta.Location{
		{Name: "Idle"},
		{Name: "Scan", Kind: ta.Committed},
	}
	sort.Init = srtIdle
	sort.Edges = []ta.Edge{
		{From: srtIdle, To: srtScan, Chan: chFind, Dir: ta.Recv, Label: "findPlace",
			Update: func(s *ta.State) { s.Vars[vPlace] = 0 }},
		{From: srtScan, To: srtScan, Label: "advance",
			Guard: func(s *ta.State) bool {
				pl := s.Vars[vPlace]
				return pl < s.Vars[vBLen] &&
					deadline(s, s.Vars[vB[pl]]) <= deadline(s, s.Vars[vMoving])
			},
			Update: func(s *ta.State) { s.Vars[vPlace]++ }},
		{From: srtScan, To: srtIdle, Chan: chFound, Dir: ta.Emit, Label: "placeFound",
			Guard: func(s *ta.State) bool {
				pl := s.Vars[vPlace]
				return pl == s.Vars[vBLen] ||
					deadline(s, s.Vars[vB[pl]]) > deadline(s, s.Vars[vMoving])
			},
			Update: func(s *ta.State) {
				pl := s.Vars[vPlace]
				for j := s.Vars[vBLen]; j > pl; j-- {
					s.Vars[vB[j]] = s.Vars[vB[j-1]]
				}
				s.Vars[vB[pl]] = s.Vars[vMoving]
				s.Vars[vBLen]++
			}},
	}
	net.Automata = append(net.Automata, sort)

	// ---- Scheduler automaton (Fig. 7) --------------------------------------
	shiftBuffer := func(s *ta.State) {
		for j := 1; j < s.Vars[vBLen]; j++ {
			s.Vars[vB[j-1]] = s.Vars[vB[j]]
		}
		s.Vars[vBLen]--
	}
	schd := &ta.Automaton{Name: "Scheduler"}
	const (
		schMain    = iota
		schSorted  // after WT update, before/after policy
		schWaitPol // waiting for Policy/Sort to finish the transfer
		schSlot    // slot decision point
		schGranted // emitted getTT, cleanup
	)
	schd.Locations = []ta.Location{
		{Name: "Main", Invariant: func(s *ta.State) bool { return s.Clocks[cX] <= 1 }},
		{Name: "Sorted", Kind: ta.Committed},
		{Name: "WaitPolicy", Kind: ta.Committed},
		{Name: "Slot", Kind: ta.Committed},
		{Name: "Granted", Kind: ta.Committed},
	}
	schd.Init = schMain
	schd.Edges = []ta.Edge{
		// Asynchronous request registration into buffer0.
		{From: schMain, To: schMain, Chan: chReq, Dir: ta.Recv, Label: "reqTT",
			Update: func(s *ta.State) {
				s.Vars[vB0[s.Vars[vB0Len]]] = s.Vars[vDist]
				s.Vars[vB0Len]++
			}},
		// Sample tick: update wait counters of buffered (= ET_Wait) apps.
		{From: schMain, To: schSorted, Label: "tick",
			Guard: func(s *ta.State) bool { return s.Clocks[cX] == 1 },
			Update: func(s *ta.State) {
				for j := 0; j < s.Vars[vBLen]; j++ {
					s.Vars[vWT[s.Vars[vB[j]]]]++
				}
			}},
		// Transfer new requests through Policy/Sort when any are pending;
		// the scheduler parks in WaitPolicy until donePolicy so no slot
		// decision interleaves with the transfer.
		{From: schSorted, To: schWaitPol, Chan: chCall, Dir: ta.Emit, Label: "callPolicy",
			Guard: func(s *ta.State) bool { return s.Vars[vB0Len] > 0 }},
		{From: schSorted, To: schSlot, Label: "noNew",
			Guard: func(s *ta.State) bool { return s.Vars[vB0Len] == 0 }},
		{From: schWaitPol, To: schSlot, Chan: chDone, Dir: ta.Recv, Label: "donePolicy"},
	}
	// Slot decision edges (per-app where a channel is involved).
	// Forced vacate at cT == DT+.
	for i := 0; i < n; i++ {
		i := i
		schd.Edges = append(schd.Edges, ta.Edge{
			From: schSlot, To: schSlot, Chan: chLeave[i], Dir: ta.Emit, Label: "vacate",
			Guard: func(s *ta.State) bool {
				return s.Vars[vRun] == 1 && s.Vars[vApp] == i &&
					s.Clocks[cCT] >= s.Vars[vDTp[i]]
			},
			Update: func(s *ta.State) {
				s.Vars[vLeave[i]] = 1
				s.Vars[vRun] = 0
			},
		})
		// Preemption inside [DT−, DT+) when a transferred request waits.
		schd.Edges = append(schd.Edges, ta.Edge{
			From: schSlot, To: schSlot, Chan: chLeave[i], Dir: ta.Emit, Label: "preempt",
			Guard: func(s *ta.State) bool {
				return s.Vars[vRun] == 1 && s.Vars[vApp] == i &&
					s.Clocks[cCT] >= s.Vars[vDTm[i]] && s.Clocks[cCT] < s.Vars[vDTp[i]] &&
					s.Vars[vBLen] > 0
			},
			Update: func(s *ta.State) {
				s.Vars[vLeave[i]] = 1
				s.Vars[vRun] = 0
			},
		})
		// Grant to the buffer head.
		schd.Edges = append(schd.Edges, ta.Edge{
			From: schSlot, To: schGranted, Chan: chGet[i], Dir: ta.Emit, Label: "grant",
			Guard: func(s *ta.State) bool {
				return s.Vars[vRun] == 0 && s.Vars[vBLen] > 0 && s.Vars[vB[0]] == i
			},
			Update: func(s *ta.State) {
				s.Vars[vGet[i]] = 1
				s.Vars[vApp] = i
				s.Vars[vRun] = 1
			},
		})
	}
	schd.Edges = append(schd.Edges,
		// Cleanup after a grant: pop the buffer, restart the dwell clock,
		// and come back for a possible further action (none: slot busy).
		ta.Edge{From: schGranted, To: schSlot, Label: "remove",
			Update: func(s *ta.State) {
				shiftBuffer(s)
				s.Clocks[cCT] = 0
			}},
		// End of tick: slot busy in its non-preemptable window, or no
		// waiter, or nothing to do. Reset x for the next period.
		ta.Edge{From: schSlot, To: schMain, Label: "endTick",
			Guard: func(s *ta.State) bool {
				if s.Vars[vRun] == 1 {
					i := s.Vars[vApp]
					// No pending action: below DT+, and (below DT− or no waiter).
					if s.Clocks[cCT] >= s.Vars[vDTp[i]] {
						return false
					}
					if s.Clocks[cCT] >= s.Vars[vDTm[i]] && s.Vars[vBLen] > 0 {
						return false
					}
					return true
				}
				return s.Vars[vBLen] == 0
			},
			Update: func(s *ta.State) { s.Clocks[cX] = 0 }},
	)
	net.Automata = append(net.Automata, schd)

	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// CheckNetwork model-checks the Fig. 5–7 network for Error reachability
// using the generic engine: the slot set is schedulable iff no application
// automaton can reach its Error location (the paper's verification query).
func CheckNetwork(profiles []*switching.Profile, opt ta.CheckOptions) (ta.CheckResult, bool, error) {
	net, err := BuildNetwork(profiles)
	if err != nil {
		return ta.CheckResult{}, false, err
	}
	res, err := net.Reachable(net.AnyLocation("App", "Error"), opt)
	if err != nil {
		return res, false, err
	}
	return res, !res.Reachable, nil
}
