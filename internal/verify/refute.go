package verify

import (
	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// Refute searches for a concrete counterexample by replaying a few canned
// adversarial disturbance schedules through the runtime arbiter
// (internal/sched — the same per-sample semantics the model checker
// explores). A true result proves the set unschedulable without any state
// search; false is inconclusive and the caller must fall back to Slot.
//
// Soundness: the deterministic arbiter's grant choices are a subset of the
// verifier's nondeterministic ones, and every replayed schedule respects
// the per-application inter-arrival bound, so any deadline miss found here
// is reachable in the model. The dimensioning sweep uses this as a
// prefilter — saturated fleets one instance past capacity are refuted in
// microseconds instead of exhausting a multi-million-state search budget.
func Refute(profiles []*switching.Profile, policy sched.PreemptionPolicy) bool {
	horizon := 0
	for _, p := range profiles {
		if l := p.R + p.TwStar; l > horizon {
			horizon = l
		}
	}
	horizon *= 4

	// Stagger 0: all applications disturbed at sample 0, then re-disturbed
	// the moment they become eligible (greedy saturation — the classic
	// critical instant). Larger staggers spread the initial burst, catching
	// sets whose worst case needs a partially drained buffer.
	for _, stagger := range []int{0, 1, 2, 3} {
		arb := sched.NewArbiter(profiles, sched.Options{Policy: policy})
		started := make([]bool, len(profiles))
		for k := 0; k <= horizon; k++ {
			var dist []int
			for i := range profiles {
				if !started[i] && k < i*stagger {
					continue
				}
				if arb.Phase(i) == sched.Steady {
					dist = append(dist, i)
					started[i] = true
				}
			}
			if err := arb.Tick(dist); err != nil {
				return false // malformed set; let the verifier report it
			}
			if arb.Missed() {
				return true
			}
		}
	}
	return false
}
