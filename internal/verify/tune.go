package verify

import "time"

// LaneTuner adapts the number of active expansion lanes between sampling
// windows (BFS levels locally, poll batches in the mesh workers). It exists
// for Config.Workers = 0 ("auto"): the pool is sized at GOMAXPROCS but the
// tuner decides how many lanes actually wake each window, hill-climbing on
// observed throughput with a contention override.
//
// Policy: start with every lane active. After each window big enough to be a
// signal (tuneMinStates states), compare states/sec against the previous
// window: a ≥5% improvement keeps stepping the lane count in the current
// direction, a ≥5% regression reverses direction and steps back, anything in
// between holds. A window whose visited-set CAS-retry rate exceeds
// tuneRetryPerState forces the direction down regardless — retries measure
// lanes serializing on the same cache lines, which throughput alone notices
// one window late. The walk is clamped to [1, max]. All state is owned by
// the single orchestrator goroutine; Observe is never called concurrently.
type LaneTuner struct {
	max      int
	lanes    int
	dir      int
	prevRate float64
}

const (
	// tuneMinStates is the smallest window that updates the tuner —
	// levels below it are noise (and usually run sequentially anyway).
	tuneMinStates = 4096
	// tuneRetryPerState is the CAS-retry rate above which a window is
	// called contended and the tuner steps down regardless of throughput.
	tuneRetryPerState = 0.05
)

// NewLaneTuner returns a tuner over at most max lanes, all initially active,
// probing downward first (the cheap direction on oversubscribed hosts).
func NewLaneTuner(max int) *LaneTuner {
	if max < 1 {
		max = 1
	}
	return &LaneTuner{max: max, lanes: max, dir: -1}
}

// Lanes returns the lane count the next window should run with.
func (t *LaneTuner) Lanes() int { return t.lanes }

// Max returns the pool size the tuner was built for.
func (t *LaneTuner) Max() int { return t.max }

// Observe folds one completed window into the walk: states expanded, wall
// time, and the visited-set CAS-retry delta for the window.
func (t *LaneTuner) Observe(states int, elapsed time.Duration, retries int64) {
	if t.max == 1 || states < tuneMinStates || elapsed <= 0 {
		return
	}
	rate := float64(states) / elapsed.Seconds()
	contended := float64(retries) > tuneRetryPerState*float64(states)
	switch {
	case contended:
		t.dir = -1
	case t.prevRate == 0:
		// First signal: keep exploring in the current direction.
	case rate >= t.prevRate*1.05:
		// Improved: keep going.
	case rate <= t.prevRate*0.95:
		t.dir = -t.dir
	default:
		// Plateau: hold the lane count, keep the rate fresh.
		t.prevRate = rate
		obsAutoLanes.Set(int64(t.lanes))
		return
	}
	t.prevRate = rate
	t.lanes += t.dir
	if t.lanes < 1 {
		t.lanes = 1
		t.dir = 1
	}
	if t.lanes > t.max {
		t.lanes = t.max
		t.dir = -1
	}
	obsAutoLanes.Set(int64(t.lanes))
	obsLaneOccupancy.Observe(float64(t.lanes) / float64(t.max))
}
