package verify

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel BFS tuning.
const (
	// serialLevelThreshold: levels with fewer frontier states than this are
	// expanded on the calling goroutine — spawning workers for tiny levels
	// (the first few samples, or single-app checks) costs more than it saves.
	serialLevelThreshold = 512
	// chunkSize is the work-stealing granularity: lanes claim frontier
	// states in blocks of this many from their WorkQueue partition,
	// balancing levels whose expansion cost varies state to state.
	chunkSize = 128
)

// noViolation is the sentinel for the atomic minimum-violating-state value.
// Packed states are compared as raw uint64s; the minimum over all violating
// states of a level is independent of frontier order, which makes the
// parallel verdict (and Violator) deterministic across runs and worker
// counts.
const noViolation = math.MaxUint64

// violRec records one violating frontier state found during a level.
type violRec struct {
	state uint64 // the packed frontier state whose expansion violated
	app   int    // the application that missed its deadline
}

// bfsWorker holds one worker's reusable scratch and per-level output.
type bfsWorker struct {
	sc     expandScratch
	succ   []uint64
	choice []uint32
	next   []uint64 // fresh states discovered this level
	trans  int      // successors generated this level
	viols  []violRec
}

// runParallel performs the level-synchronous sharded BFS. It visits exactly
// the states the sequential search visits: the visited set is sharded 64-way
// by state hash, every level is a barrier, and within a level lanes claim
// frontier chunks from a work-stealing queue (own partition first, then the
// busiest other lane's). For schedulable sets the search is exhaustive, so
// States, Transitions and Depth equal the sequential counts. On a violation
// the level is still swept far enough to find the minimum violating packed
// state, so Schedulable and Violator are deterministic (though Violator may
// differ from the sequential path's first-in-expansion-order pick when
// several applications can violate at the same depth).
//
// With auto set (Config.Workers = 0) the pool holds `workers` lanes but a
// LaneTuner picks how many wake each level, adapting to contention; the
// verdict does not depend on the active count, so tuning is free of
// determinism cost.
func (v *Verifier) runParallel(workers int, auto bool) (Result, error) {
	res := Result{Schedulable: true, Bounded: v.cfg.MaxDisturbances > 0}
	visited := newShardedU64Set(1 << 16)
	init := v.initial()
	visited.add(init)
	frontier := []uint64{init}

	var states atomic.Int64 // fresh states across the whole search
	states.Store(1)
	maxStates := int64(v.cfg.MaxStates)
	var tooLarge atomic.Bool

	ws := make([]*bfsWorker, workers)
	for i := range ws {
		ws[i] = &bfsWorker{}
	}
	var wq WorkQueue
	var tuner *LaneTuner
	if auto {
		tuner = NewLaneTuner(workers)
	}
	defer func() {
		flushContention(visited.stats(), int64(res.Transitions), wq.Steals())
	}()
	var spare []uint64 // recycled merge buffer, swapped with frontier per level

	prevFrontier := 1
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		obsLevels.Inc()
		levelTrans := res.Transitions
		visited.reserve(levelReserve(len(frontier), prevFrontier))
		var minViol atomic.Uint64
		minViol.Store(noViolation)

		expand := func(w *bfsWorker, lane int) {
			w.next = w.next[:0]
			w.trans = 0
			w.viols = w.viols[:0]
			for {
				lo, hi, ok := wq.Next(lane)
				if !ok || tooLarge.Load() {
					return
				}
				for _, s := range frontier[lo:hi] {
					// A violating state smaller than s already decides this
					// level; expanding s cannot change the verdict.
					if mv := minViol.Load(); mv != noViolation && s > mv {
						continue
					}
					w.succ = w.succ[:0]
					w.choice = w.choice[:0]
					var viol int
					w.succ, w.choice, viol = v.successors(s, &w.sc, w.succ, w.choice)
					if viol >= 0 {
						w.viols = append(w.viols, violRec{state: s, app: viol})
						for {
							mv := minViol.Load()
							if s >= mv || minViol.CompareAndSwap(mv, s) {
								break
							}
						}
						continue
					}
					w.trans += len(w.succ)
					for _, ns := range w.succ {
						if visited.add(ns) {
							w.next = append(w.next, ns)
							if states.Add(1) > maxStates {
								tooLarge.Store(true)
								return
							}
						}
					}
				}
			}
		}

		act := workers
		if tuner != nil {
			act = tuner.Lanes()
		}
		if len(frontier) < serialLevelThreshold || act == 1 {
			act = 1
			wq.Reset(len(frontier), 1, chunkSize)
			expand(ws[0], 0)
		} else {
			wq.Reset(len(frontier), act, chunkSize)
			retries0 := visited.stats().Retries
			start := time.Now()
			var wg sync.WaitGroup
			wg.Add(act)
			for lane, w := range ws[:act] {
				go func(w *bfsWorker, lane int) {
					defer wg.Done()
					expand(w, lane)
				}(w, lane)
			}
			wg.Wait()
			if tuner != nil {
				tuner.Observe(len(frontier), time.Since(start),
					visited.stats().Retries-retries0)
			}
		}

		res.States = int(states.Load())
		// A recorded violation is definitive even when the state budget
		// tripped in the same level — prefer the verdict over ErrTooLarge.
		if mv := minViol.Load(); mv != noViolation {
			res.Schedulable = false
			for _, w := range ws[:act] {
				for _, vr := range w.viols {
					if vr.state == mv {
						res.Violator = vr.app
					}
				}
				res.Transitions += w.trans
			}
			v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
			return res, nil
		}
		if tooLarge.Load() {
			return res, ErrTooLarge
		}

		total := 0
		for _, w := range ws[:act] {
			res.Transitions += w.trans
			total += len(w.next)
		}
		v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
		if cap(spare) < total {
			spare = make([]uint64, 0, total)
		}
		spare = spare[:0]
		for _, w := range ws[:act] {
			spare = append(spare, w.next...)
		}
		prevFrontier = len(frontier)
		frontier, spare = spare, frontier
	}
	return res, nil
}

// violRecW records one violating wide frontier state found during a level.
type violRecW struct {
	state wstate
	app   int
}

// bfsWideWorker holds one worker's reusable scratch and per-level output
// for the multi-word search.
type bfsWideWorker struct {
	sc     expandScratch
	succ   []wstate
	choice []uint32
	next   []wstate
	trans  int
	viols  []violRecW
}

// runParallelWide is runParallel over the multi-word encoding: the same
// level-synchronous sharded BFS, with the minimum-violator tie-break taken
// lexicographically over the state words (lessW) through an atomic pointer
// instead of an atomic uint64. The determinism argument is unchanged: the
// minimum violating packed state of the first violating level does not
// depend on frontier order or worker count.
func (v *Verifier) runParallelWide(workers int, auto bool) (Result, error) {
	res := Result{Schedulable: true, Bounded: v.cfg.MaxDisturbances > 0}
	visited := newShardedWideSet(1 << 12)
	init := v.initialWide()
	visited.add(init)
	frontier := []wstate{init}

	var states atomic.Int64
	states.Store(1)
	maxStates := int64(v.cfg.MaxStates)
	var tooLarge atomic.Bool

	ws := make([]*bfsWideWorker, workers)
	for i := range ws {
		ws[i] = &bfsWideWorker{}
	}
	var wq WorkQueue
	var tuner *LaneTuner
	if auto {
		tuner = NewLaneTuner(workers)
	}
	defer func() {
		flushContention(visited.stats(), int64(res.Transitions), wq.Steals())
	}()
	var spare []wstate // recycled merge buffer, swapped with frontier per level

	prevFrontier := 1
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		obsLevels.Inc()
		levelTrans := res.Transitions
		visited.reserve(levelReserve(len(frontier), prevFrontier))
		var minViol atomic.Pointer[wstate]

		expand := func(w *bfsWideWorker, lane int) {
			w.next = w.next[:0]
			w.trans = 0
			w.viols = w.viols[:0]
			for {
				lo, hi, ok := wq.Next(lane)
				if !ok || tooLarge.Load() {
					return
				}
				for _, s := range frontier[lo:hi] {
					// A violating state smaller than s already decides this
					// level; expanding s cannot change the verdict.
					if mv := minViol.Load(); mv != nil && lessW(*mv, s) {
						continue
					}
					w.succ = w.succ[:0]
					w.choice = w.choice[:0]
					var viol int
					w.succ, w.choice, viol = v.successorsWide(s, &w.sc, w.succ, w.choice)
					if viol >= 0 {
						w.viols = append(w.viols, violRecW{state: s, app: viol})
						for {
							mv := minViol.Load()
							if mv != nil && !lessW(s, *mv) {
								break
							}
							sc := s
							if minViol.CompareAndSwap(mv, &sc) {
								break
							}
						}
						continue
					}
					w.trans += len(w.succ)
					for _, ns := range w.succ {
						if visited.add(ns) {
							w.next = append(w.next, ns)
							if states.Add(1) > maxStates {
								tooLarge.Store(true)
								return
							}
						}
					}
				}
			}
		}

		act := workers
		if tuner != nil {
			act = tuner.Lanes()
		}
		if len(frontier) < serialLevelThreshold || act == 1 {
			act = 1
			wq.Reset(len(frontier), 1, chunkSize)
			expand(ws[0], 0)
		} else {
			wq.Reset(len(frontier), act, chunkSize)
			retries0 := visited.stats().Retries
			start := time.Now()
			var wg sync.WaitGroup
			wg.Add(act)
			for lane, w := range ws[:act] {
				go func(w *bfsWideWorker, lane int) {
					defer wg.Done()
					expand(w, lane)
				}(w, lane)
			}
			wg.Wait()
			if tuner != nil {
				tuner.Observe(len(frontier), time.Since(start),
					visited.stats().Retries-retries0)
			}
		}

		res.States = int(states.Load())
		// A recorded violation is definitive even when the state budget
		// tripped in the same level — prefer the verdict over ErrTooLarge.
		if mv := minViol.Load(); mv != nil {
			res.Schedulable = false
			for _, w := range ws[:act] {
				for _, vr := range w.viols {
					if vr.state == *mv {
						res.Violator = vr.app
					}
				}
				res.Transitions += w.trans
			}
			v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
			return res, nil
		}
		if tooLarge.Load() {
			return res, ErrTooLarge
		}

		total := 0
		for _, w := range ws[:act] {
			res.Transitions += w.trans
			total += len(w.next)
		}
		v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
		if cap(spare) < total {
			spare = make([]wstate, 0, total)
		}
		spare = spare[:0]
		for _, w := range ws[:act] {
			spare = append(spare, w.next...)
		}
		prevFrontier = len(frontier)
		frontier, spare = spare, frontier
	}
	return res, nil
}
