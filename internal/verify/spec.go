package verify

// Spec is the wire-serializable form of Config: the knobs a remote caller
// of the admission service may set, under stable JSON names. Only the
// verdict-relevant fields exist here — Workers, Trace, Distributed and the
// exchange topology are serving-side decisions (they never change a
// verdict, see mapping.VerifyConfigKey), so a client cannot pin them.

import (
	"fmt"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// Spec selects a verification configuration over the wire. The zero value
// is the admission service's default: exact disturbances, the paper's
// eager policy, sound nondeterministic tie exploration, the default state
// budget.
type Spec struct {
	// Bounded switches on the paper's bounded-disturbance acceleration,
	// with the sound per-set bound of BoundFor (unless MaxDisturbances
	// pins a tighter one).
	Bounded bool `json:"bounded,omitempty"`
	// MaxDisturbances pins the per-application disturbance bound directly
	// (implies Bounded). 0 defers to Bounded/BoundFor.
	MaxDisturbances int `json:"maxDisturbances,omitempty"`
	// Policy names the preemption policy: "" or "eager" (the paper's
	// strategy), or "lazy".
	Policy string `json:"policy,omitempty"`
	// DetTies switches to the runtime arbiter's deterministic tie-break
	// (cross-validation only; the default nondeterministic exploration is
	// what makes verdicts sound).
	DetTies bool `json:"detTies,omitempty"`
	// MaxStates is the visited-state budget — per node on a distributed
	// backend. 0 is the engine default (200M); the serving side may clamp
	// it further.
	MaxStates int `json:"maxStates,omitempty"`
	// Symmetry enables the identical-profile symmetry quotient.
	Symmetry bool `json:"symmetry,omitempty"`
}

// Config resolves the spec against a concrete profile set (the
// bounded-mode disturbance bound depends on the profiles). The returned
// Config carries no Workers/Trace/Distributed — callers layer those on.
func (s Spec) Config(profiles []*switching.Profile) (Config, error) {
	cfg := Config{
		NondetTies:        !s.DetTies,
		MaxStates:         s.MaxStates,
		SymmetryReduction: s.Symmetry,
	}
	switch s.Policy {
	case "", "eager":
		cfg.Policy = sched.PreemptEager
	case "lazy":
		cfg.Policy = sched.PreemptLazy
	default:
		return Config{}, fmt.Errorf("verify: unknown preemption policy %q (want \"eager\" or \"lazy\")", s.Policy)
	}
	if s.MaxStates < 0 {
		return Config{}, fmt.Errorf("verify: negative state budget %d", s.MaxStates)
	}
	if s.MaxDisturbances < 0 {
		return Config{}, fmt.Errorf("verify: negative disturbance bound %d", s.MaxDisturbances)
	}
	switch {
	case s.MaxDisturbances > 0:
		cfg.MaxDisturbances = s.MaxDisturbances
	case s.Bounded:
		cfg.MaxDisturbances = BoundFor(profiles)
	}
	return cfg, nil
}

// SpecOf captures the verdict-relevant fields of a Config as a Spec, the
// inverse of Spec.Config for configs built by the CLIs. A nonzero
// MaxDisturbances is carried explicitly (the receiving side must not
// recompute BoundFor over a possibly different profile set).
func SpecOf(cfg Config) Spec {
	s := Spec{
		MaxDisturbances: cfg.MaxDisturbances,
		DetTies:         !cfg.NondetTies,
		MaxStates:       cfg.MaxStates,
		Symmetry:        cfg.SymmetryReduction,
	}
	if cfg.Policy == sched.PreemptLazy {
		s.Policy = "lazy"
	}
	return s
}
