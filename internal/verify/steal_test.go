package verify

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestWorkQueueExactCoverage: across lanes claiming concurrently, every
// index in [0, n) is handed out exactly once — the property the BFS
// transition counts and the distributed fresh counts lean on.
func TestWorkQueueExactCoverage(t *testing.T) {
	for _, tc := range []struct{ n, lanes, chunk int }{
		{0, 4, 8},
		{1, 4, 8},
		{7, 3, 8},   // fewer items than lanes*chunk
		{100, 4, 8}, // partitions not multiples of chunk
		{1000, 8, 16},
		{4096, 5, 128},
	} {
		var wq WorkQueue
		wq.Reset(tc.n, tc.lanes, tc.chunk)
		counts := make([]atomic.Int32, tc.n)
		var wg sync.WaitGroup
		wg.Add(tc.lanes)
		for lane := 0; lane < tc.lanes; lane++ {
			go func(lane int) {
				defer wg.Done()
				for {
					lo, hi, ok := wq.Next(lane)
					if !ok {
						return
					}
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				}
			}(lane)
		}
		wg.Wait()
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d lanes=%d chunk=%d: index %d claimed %d times",
					tc.n, tc.lanes, tc.chunk, i, c)
			}
		}
	}
}

// TestWorkQueueStealsFromBusiest: a lone active lane must drain every
// partition, counting one steal per foreign chunk, and Steals must be
// monotone across Resets (it feeds a cumulative telemetry counter).
func TestWorkQueueStealsFromBusiest(t *testing.T) {
	var wq WorkQueue
	wq.Reset(256, 4, 16)
	seen := make([]bool, 256)
	for {
		lo, hi, ok := wq.Next(0) // only lane 0 ever claims
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Fatalf("index %d claimed twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never claimed", i)
		}
	}
	steals := wq.Steals()
	if steals == 0 {
		t.Fatal("lane 0 drained three foreign partitions without a recorded steal")
	}
	wq.Reset(64, 2, 16)
	for {
		if _, _, ok := wq.Next(0); !ok {
			break
		}
	}
	if got := wq.Steals(); got < steals {
		t.Fatalf("Steals went backwards across Reset: %d then %d", steals, got)
	}
}
