package verify

import "sync"

// Sharding of the visited set for the parallel BFS: the shard is selected by
// the top bits of the mixed hash, the open-addressing probe inside a shard by
// the low bits, so the two never correlate.
const (
	shardBits = 6
	numShards = 1 << shardBits
)

// shardedU64Set is a 64-way sharded variant of u64Set. Each shard carries its
// own mutex, so concurrent adds from the BFS workers contend only when two
// states hash to the same shard. The padding keeps shards on separate cache
// lines.
type shardedU64Set struct {
	shards [numShards]setShard
}

type setShard struct {
	mu  sync.Mutex
	set *u64Set
	_   [64 - 16]byte
}

// newShardedU64Set creates a sharded set with the given total initial
// capacity spread across the shards.
func newShardedU64Set(capacity int) *shardedU64Set {
	per := capacity / numShards
	if per < 16 {
		per = 16
	}
	s := &shardedU64Set{}
	for i := range s.shards {
		s.shards[i].set = newU64Set(per)
	}
	return s
}

// add inserts k and reports whether it was absent. Safe for concurrent use.
func (s *shardedU64Set) add(k uint64) bool {
	return s.addHashed(k, hashU64(k))
}

// addHashed is add with the key's hash precomputed — drivers that already
// hashed a state for shard routing (the mesh workers' expansion lanes)
// skip the second mix. Safe for concurrent use: the stripe is selected by
// the hash's top bits, so two goroutines contend only when their states
// share a stripe.
func (s *shardedU64Set) addHashed(k, h uint64) bool {
	sh := &s.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	fresh := sh.set.addHashed(k, h)
	sh.mu.Unlock()
	return fresh
}

// contains reports membership. Safe for concurrent use.
func (s *shardedU64Set) contains(k uint64) bool {
	sh := &s.shards[hashU64(k)>>(64-shardBits)]
	sh.mu.Lock()
	ok := sh.set.contains(k)
	sh.mu.Unlock()
	return ok
}

// reserve pre-sizes every shard for its even share of n additional keys, so
// a level whose fanout was predicted from the previous one inserts without
// mid-level rehashing. Safe for concurrent use, though the drivers call it
// only between levels.
func (s *shardedU64Set) reserve(n int) {
	per := n / numShards
	if per == 0 {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.set.reserve(per)
		sh.mu.Unlock()
	}
}

// reset empties every shard in place, keeping the tables at their grown
// sizes. Callers guarantee quiescence (no concurrent adds); the locks are
// still taken so the happens-before edge to the next run's lanes is free.
func (s *shardedU64Set) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.set.reset()
		sh.mu.Unlock()
	}
}

// len returns the number of stored keys across all shards.
func (s *shardedU64Set) len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.set.len()
		sh.mu.Unlock()
	}
	return n
}

// shardedWideSet is the multi-word sibling of shardedU64Set: the shard is
// selected by the top bits of the chained word hash, so the wide parallel
// BFS contends only when two states hash to the same shard.
type shardedWideSet struct {
	shards [numShards]wideShard
}

type wideShard struct {
	mu  sync.Mutex
	set *wideSet
	_   [64 - 16]byte
}

// newShardedWideSet creates a sharded wide set with the given total initial
// capacity spread across the shards.
func newShardedWideSet(capacity int) *shardedWideSet {
	per := capacity / numShards
	if per < 16 {
		per = 16
	}
	s := &shardedWideSet{}
	for i := range s.shards {
		s.shards[i].set = newWideSet(per)
	}
	return s
}

// add inserts k and reports whether it was absent. Safe for concurrent use.
func (s *shardedWideSet) add(k wstate) bool {
	return s.addHashed(k, hashW(k))
}

// addHashed is add with the key's hash precomputed (see
// shardedU64Set.addHashed). Safe for concurrent use.
func (s *shardedWideSet) addHashed(k wstate, h uint64) bool {
	sh := &s.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	fresh := sh.set.addHashed(k, h)
	sh.mu.Unlock()
	return fresh
}

// contains reports membership. Safe for concurrent use.
func (s *shardedWideSet) contains(k wstate) bool {
	sh := &s.shards[hashW(k)>>(64-shardBits)]
	sh.mu.Lock()
	ok := sh.set.contains(k)
	sh.mu.Unlock()
	return ok
}

// reserve pre-sizes every shard for its even share of n additional keys
// (see shardedU64Set.reserve).
func (s *shardedWideSet) reserve(n int) {
	per := n / numShards
	if per == 0 {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.set.reserve(per)
		sh.mu.Unlock()
	}
}

// reset empties every shard in place (see shardedU64Set.reset).
func (s *shardedWideSet) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.set.reset()
		sh.mu.Unlock()
	}
}

// len returns the number of stored keys across all shards.
func (s *shardedWideSet) len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.set.len()
		sh.mu.Unlock()
	}
	return n
}
