package verify

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sharding of the visited set for the parallel BFS: the stripe is selected by
// the top bits of the mixed hash, the open-addressing probe inside a stripe by
// the low bits, so the two never correlate.
//
// The stripes are lock-free on the hot path. A narrow stripe is a slice of
// atomic uint64 slots (zero = empty; the packed encoding never produces zero)
// claimed with a single CompareAndSwap. A wide stripe publishes its [4]uint64
// payload through an atomic header word per slot. Both are insert-only while
// lanes run: a slot transitions 0 → key exactly once and never changes again,
// which is what makes the probe protocol exact (see DESIGN.md §10).
//
// Exactness argument, narrow case. Every adder of key k probes the identical
// positional window [h&mask, h&mask+lfMaxProbe). A lost CAS re-inspects the
// same position (the race winner's value decides dup-vs-step), so a position
// is never skipped while empty. Slots fill monotonically, so the three
// position verdicts — holds k (duplicate), holds another key (step), empty
// (claim) — can only move toward "holds something", and a verdict of "holds
// x" is permanent. Hence exactly one adder of k wins a CAS, every other
// adder of k observes k and reports duplicate. If the whole window is
// non-k-occupied the adder falls through to the stripe's mutex-guarded
// overflow map; permanence means every adder of k then reaches the same map,
// where the mutex restores exact once-only semantics. Overflow keys migrate
// back into the table when `reserve` grows it (quiescent by the driver
// contract: Reserve/Reset run only between levels, with no lanes in flight).
const (
	shardBits = 6
	numShards = 1 << shardBits

	// lfMaxProbe bounds the positional probe window of the lock-free
	// stripes. Stripes hold at most ¾ load, so a window this long ends at
	// an empty slot with overwhelming probability; the rare saturated
	// window falls through to the stripe's overflow map rather than
	// probing unboundedly (and `reserve` then folds the overflow back in
	// at the next quiescent growth point).
	lfMaxProbe = 128

	// lfBusy marks a wide slot claimed but not yet published; readers
	// spin (briefly — the writer is four plain stores away) until the
	// writer replaces it with the key's tag.
	lfBusy = 1
)

// SetStats is the cumulative contention ledger of one sharded set. Deltas
// are sampled by the drivers at level boundaries (the autotuner's signal)
// and folded into the obs counters at run teardown; the distributed workers
// read it through StateSet.Stats.
type SetStats struct {
	Probes    int64 // probe steps beyond the home slot
	Retries   int64 // lost CAS claims
	Overflows int64 // keys parked in an overflow map
}

// shardedU64Set is a 64-way striped, lock-free variant of u64Set.
type shardedU64Set struct {
	stripes [numShards]lfU64Stripe
}

// lfU64Stripe is one lock-free stripe: atomic slots plus a mutex-guarded
// overflow map used only when a probe window saturates. Padded so adjacent
// stripes' hot words (count, probes) sit on separate cache lines.
type lfU64Stripe struct {
	slots   []uint64 // accessed via sync/atomic; 0 = empty
	mask    uint64
	count   atomic.Int64
	probes  atomic.Int64
	retries atomic.Int64
	mu      sync.Mutex
	over    map[uint64]struct{}
	overN   atomic.Int64
	_       [40]byte
}

// newShardedU64Set creates a sharded set with the given total initial
// capacity spread across the stripes.
func newShardedU64Set(capacity int) *shardedU64Set {
	per := capacity / numShards
	if per < 16 {
		per = 16
	}
	size := 16
	for size < per {
		size <<= 1
	}
	s := &shardedU64Set{}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.slots = make([]uint64, size)
		st.mask = uint64(size - 1)
	}
	return s
}

// add inserts k and reports whether it was absent. Safe for concurrent use.
func (s *shardedU64Set) add(k uint64) bool {
	return s.addHashed(k, hashU64(k))
}

// addHashed is add with the key's hash precomputed — drivers that already
// hashed a state for shard routing (the mesh workers' expansion lanes) skip
// the second mix. Safe for concurrent use and lock-free unless the probe
// window saturates: the stripe is selected by the hash's top bits, the probe
// by its low bits.
func (s *shardedU64Set) addHashed(k, h uint64) bool {
	if k == 0 {
		panic("shardedU64Set: zero key is reserved")
	}
	st := &s.stripes[h>>(64-shardBits)]
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.slots); n < bound {
		bound = n
	}
	steps := 0
	for w := 0; w < bound; {
		v := atomic.LoadUint64(&st.slots[i])
		if v == k {
			if steps > 0 {
				st.probes.Add(int64(steps))
			}
			return false
		}
		if v == 0 {
			if atomic.CompareAndSwapUint64(&st.slots[i], 0, k) {
				st.count.Add(1)
				if steps > 0 {
					st.probes.Add(int64(steps))
				}
				return true
			}
			// Lost the claim: re-inspect the same position — the
			// winner may have written k.
			st.retries.Add(1)
			continue
		}
		steps++
		w++
		i = (i + 1) & st.mask
	}
	st.probes.Add(int64(steps))
	return st.addOverflow(k)
}

// addOverflow parks a key whose probe window saturated. Permanence of slot
// verdicts guarantees every adder of the same key reaches this map, so the
// mutex restores exact once-only counting for these rare keys.
func (st *lfU64Stripe) addOverflow(k uint64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.over == nil {
		st.over = make(map[uint64]struct{})
	}
	if _, dup := st.over[k]; dup {
		return false
	}
	st.over[k] = struct{}{}
	st.overN.Add(1)
	return true
}

// contains reports membership. Exact when quiescent; during concurrent adds
// a key being inserted may be reported either way.
func (s *shardedU64Set) contains(k uint64) bool {
	h := hashU64(k)
	st := &s.stripes[h>>(64-shardBits)]
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.slots); n < bound {
		bound = n
	}
	for w := 0; w < bound; w++ {
		v := atomic.LoadUint64(&st.slots[i])
		if v == k {
			return true
		}
		if v == 0 {
			return false
		}
		i = (i + 1) & st.mask
	}
	st.mu.Lock()
	_, ok := st.over[k]
	st.mu.Unlock()
	return ok
}

// reserve pre-sizes every stripe for its even share of n additional keys, so
// a level whose fanout was predicted from the previous one inserts without
// mid-level growth. Callers guarantee quiescence (the drivers call it only
// between levels); growth rehashes in place and drains the overflow maps
// back into the enlarged tables.
func (s *shardedU64Set) reserve(n int) {
	per := n / numShards
	for i := range s.stripes {
		s.stripes[i].reserve(per)
	}
}

func (st *lfU64Stripe) reserve(per int) {
	need := int(st.count.Load()+st.overN.Load()) + per
	size := len(st.slots)
	grow := false
	for 4*need > 3*size {
		size <<= 1
		grow = true
	}
	if st.overN.Load() > 0 && !grow {
		// Probe windows saturated at the current size even though the
		// load factor allows more: the table is unlucky, not full.
		// Doubling rehashes every key to a fresh window.
		size <<= 1
		grow = true
	}
	if !grow {
		return
	}
	// Drain the overflow into a scratch slice before reinserting anything:
	// reinsert may re-park a key whose window saturates even in the grown
	// table, and it must land in (and be counted by) the fresh map, not be
	// wiped by a clear racing the drain.
	spill := make([]uint64, 0, st.overN.Load())
	for k := range st.over {
		spill = append(spill, k)
	}
	clear(st.over)
	st.overN.Store(0)
	old := st.slots
	st.slots = make([]uint64, size)
	st.mask = uint64(size - 1)
	st.count.Store(0)
	for _, v := range old {
		if v != 0 {
			st.reinsert(v)
		}
	}
	for _, k := range spill {
		st.reinsert(k)
	}
}

// reinsert places a key during a quiescent rebuild — plain writes, but the
// same positional window rule as addHashed so later bounded probes find it.
func (st *lfU64Stripe) reinsert(k uint64) {
	h := hashU64(k)
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.slots); n < bound {
		bound = n
	}
	for w := 0; w < bound; w++ {
		if st.slots[i] == 0 {
			st.slots[i] = k
			st.count.Add(1)
			return
		}
		i = (i + 1) & st.mask
	}
	if st.over == nil {
		st.over = make(map[uint64]struct{})
	}
	st.over[k] = struct{}{}
	st.overN.Add(1)
}

// reset empties every stripe in place, keeping the tables at their grown
// sizes. Callers guarantee quiescence; the next run's lane handoff provides
// the happens-before edge.
func (s *shardedU64Set) reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		clear(st.slots)
		st.count.Store(0)
		if st.overN.Load() > 0 {
			clear(st.over)
			st.overN.Store(0)
		}
	}
}

// len returns the number of stored keys across all stripes. Exact when
// quiescent.
func (s *shardedU64Set) len() int {
	n := int64(0)
	for i := range s.stripes {
		n += s.stripes[i].count.Load() + s.stripes[i].overN.Load()
	}
	return int(n)
}

// stats returns the cumulative contention ledger across the stripes.
func (s *shardedU64Set) stats() SetStats {
	var t SetStats
	for i := range s.stripes {
		st := &s.stripes[i]
		t.Probes += st.probes.Load()
		t.Retries += st.retries.Load()
		t.Overflows += st.overN.Load()
	}
	return t
}

// wtagOf derives a wide slot's published header tag from the key's hash.
// Tags are ≥2, so they never collide with the empty (0) or busy (1) markers.
// Two distinct keys may share a tag (the shift drops two hash bits); readers
// therefore always confirm the payload after a tag match.
func wtagOf(h uint64) uint64 { return h<<2 | 2 }

// shardedWideSet is the multi-word sibling of shardedU64Set. A slot is a
// header word (atomic: 0 empty, lfBusy claimed, else tag) plus a [4]uint64
// payload published by the header's release store: a writer CASes 0→busy,
// fills the payload with plain stores, then publishes the tag; a reader that
// loads the tag (acquire) therefore sees the complete payload.
type shardedWideSet struct {
	stripes [numShards]lfWideStripe
}

type lfWideStripe struct {
	hdrs    []uint64 // accessed via sync/atomic
	slots   []wstate // payload, published via hdrs
	mask    uint64
	count   atomic.Int64
	probes  atomic.Int64
	retries atomic.Int64
	mu      sync.Mutex
	over    map[wstate]struct{}
	overN   atomic.Int64
	_       [16]byte
}

// newShardedWideSet creates a sharded wide set with the given total initial
// capacity spread across the stripes.
func newShardedWideSet(capacity int) *shardedWideSet {
	per := capacity / numShards
	if per < 16 {
		per = 16
	}
	size := 16
	for size < per {
		size <<= 1
	}
	s := &shardedWideSet{}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.hdrs = make([]uint64, size)
		st.slots = make([]wstate, size)
		st.mask = uint64(size - 1)
	}
	return s
}

// add inserts k and reports whether it was absent. Safe for concurrent use.
func (s *shardedWideSet) add(k wstate) bool {
	return s.addHashed(k, hashW(k))
}

// addHashed is add with the key's hash precomputed (see
// shardedU64Set.addHashed). Safe for concurrent use; lock-free except for
// saturated probe windows and brief spins on a slot another lane is mid-way
// through publishing.
func (s *shardedWideSet) addHashed(k wstate, h uint64) bool {
	if k == (wstate{}) {
		panic("shardedWideSet: zero key is reserved")
	}
	st := &s.stripes[h>>(64-shardBits)]
	tag := wtagOf(h)
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.hdrs); n < bound {
		bound = n
	}
	steps, spins := 0, 0
	for w := 0; w < bound; {
		hv := atomic.LoadUint64(&st.hdrs[i])
		switch {
		case hv == 0:
			if atomic.CompareAndSwapUint64(&st.hdrs[i], 0, lfBusy) {
				st.slots[i] = k
				atomic.StoreUint64(&st.hdrs[i], tag)
				st.count.Add(1)
				if steps > 0 {
					st.probes.Add(int64(steps))
				}
				return true
			}
			st.retries.Add(1)
		case hv == lfBusy:
			// Claimed but not yet published — possibly with k, so
			// the position cannot be skipped. Yield occasionally so
			// the writer gets the core on GOMAXPROCS=1 hosts.
			if spins++; spins&15 == 0 {
				runtime.Gosched()
			}
		case hv == tag && st.slots[i] == k:
			if steps > 0 {
				st.probes.Add(int64(steps))
			}
			return false
		default:
			steps++
			w++
			i = (i + 1) & st.mask
		}
	}
	st.probes.Add(int64(steps))
	return st.addOverflow(k)
}

func (st *lfWideStripe) addOverflow(k wstate) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.over == nil {
		st.over = make(map[wstate]struct{})
	}
	if _, dup := st.over[k]; dup {
		return false
	}
	st.over[k] = struct{}{}
	st.overN.Add(1)
	return true
}

// contains reports membership (see shardedU64Set.contains).
func (s *shardedWideSet) contains(k wstate) bool {
	h := hashW(k)
	st := &s.stripes[h>>(64-shardBits)]
	tag := wtagOf(h)
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.hdrs); n < bound {
		bound = n
	}
	spins := 0
	for w := 0; w < bound; {
		hv := atomic.LoadUint64(&st.hdrs[i])
		switch {
		case hv == 0:
			return false
		case hv == lfBusy:
			if spins++; spins&15 == 0 {
				runtime.Gosched()
			}
		case hv == tag && st.slots[i] == k:
			return true
		default:
			w++
			i = (i + 1) & st.mask
		}
	}
	st.mu.Lock()
	_, ok := st.over[k]
	st.mu.Unlock()
	return ok
}

// reserve pre-sizes every stripe for its even share of n additional keys
// (see shardedU64Set.reserve). Callers guarantee quiescence.
func (s *shardedWideSet) reserve(n int) {
	per := n / numShards
	for i := range s.stripes {
		s.stripes[i].reserve(per)
	}
}

func (st *lfWideStripe) reserve(per int) {
	need := int(st.count.Load()+st.overN.Load()) + per
	size := len(st.hdrs)
	grow := false
	for 4*need > 3*size {
		size <<= 1
		grow = true
	}
	if st.overN.Load() > 0 && !grow {
		size <<= 1
		grow = true
	}
	if !grow {
		return
	}
	// Spill-then-reinsert, as in the narrow stripe: a key re-parked by
	// reinsert must survive in the fresh overflow map.
	spill := make([]wstate, 0, st.overN.Load())
	for k := range st.over {
		spill = append(spill, k)
	}
	clear(st.over)
	st.overN.Store(0)
	oldH, oldS := st.hdrs, st.slots
	st.hdrs = make([]uint64, size)
	st.slots = make([]wstate, size)
	st.mask = uint64(size - 1)
	st.count.Store(0)
	for j, hv := range oldH {
		if hv != 0 {
			st.reinsert(oldS[j])
		}
	}
	for _, k := range spill {
		st.reinsert(k)
	}
}

func (st *lfWideStripe) reinsert(k wstate) {
	h := hashW(k)
	i := h & st.mask
	bound := lfMaxProbe
	if n := len(st.hdrs); n < bound {
		bound = n
	}
	for w := 0; w < bound; w++ {
		if st.hdrs[i] == 0 {
			st.hdrs[i] = wtagOf(h)
			st.slots[i] = k
			st.count.Add(1)
			return
		}
		i = (i + 1) & st.mask
	}
	if st.over == nil {
		st.over = make(map[wstate]struct{})
	}
	st.over[k] = struct{}{}
	st.overN.Add(1)
}

// reset empties every stripe in place (see shardedU64Set.reset).
func (s *shardedWideSet) reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		clear(st.hdrs)
		clear(st.slots)
		st.count.Store(0)
		if st.overN.Load() > 0 {
			clear(st.over)
			st.overN.Store(0)
		}
	}
}

// len returns the number of stored keys across all stripes. Exact when
// quiescent.
func (s *shardedWideSet) len() int {
	n := int64(0)
	for i := range s.stripes {
		n += s.stripes[i].count.Load() + s.stripes[i].overN.Load()
	}
	return int(n)
}

// stats returns the cumulative contention ledger across the stripes.
func (s *shardedWideSet) stats() SetStats {
	var t SetStats
	for i := range s.stripes {
		st := &s.stripes[i]
		t.Probes += st.probes.Load()
		t.Retries += st.retries.Load()
		t.Overflows += st.overN.Load()
	}
	return t
}
