package verify

// The expansion-core seam: external search drivers — today the distributed
// backend of internal/dverify — need to expand states, hash them for
// partitioning, order them for the minimum-violator tie-break, and move
// frontiers across process boundaries, all without re-implementing the
// per-sample semantics. Expander exposes exactly that surface over a single
// encoding-independent state type, so the narrow one-word and wide
// multi-word encodings flow through one driver loop.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"tightcps/internal/switching"
)

// PackedState is the encoding-independent packed form of one composed
// state: narrow (one-word) states occupy word 0 with words 1..3 zero, wide
// states are the multi-word encoding verbatim. Neither encoding produces
// the all-zero value (an idle slot stores a nonzero occupant sentinel), so
// the zero PackedState remains the empty-slot sentinel of the hash sets.
type PackedState [wideWords]uint64

// Expander exposes a Verifier's expansion core to external search drivers.
// Its methods are read-only over the underlying Verifier and safe for
// concurrent use, except where a caller-owned buffer or scratch is passed
// in.
type Expander struct {
	v    *Verifier
	pool sync.Pool // spare *ExpandScratch for the concurrency-safe Successors
}

// Expander returns the verifier's expansion core.
func (v *Verifier) Expander() *Expander { return &Expander{v: v} }

// NewExpander builds the expansion core for the profiles directly (the
// worker-node entry point: nodes never call Run).
func NewExpander(profiles []*switching.Profile, cfg Config) (*Expander, error) {
	v, err := New(profiles, cfg)
	if err != nil {
		return nil, err
	}
	return v.Expander(), nil
}

// Wide reports whether the composed state uses the multi-word encoding.
func (e *Expander) Wide() bool { return e.v.wide }

// StateWords is the number of significant words per state: 1 on the narrow
// fast path, the full word count on the wide path. It sizes the wire
// encoding of AppendState/DecodeStates.
func (e *Expander) StateWords() int {
	if e.v.wide {
		return wideWords
	}
	return 1
}

// Initial returns the all-Steady, slot-idle state.
func (e *Expander) Initial() PackedState {
	if e.v.wide {
		return PackedState(e.v.initialWide())
	}
	return PackedState{e.v.initial()}
}

// ExpandScratch owns the expansion core's reusable buffers — the decoded
// base state and the successor arena — for one external search driver.
// A scratch is not safe for concurrent use: give every driver goroutine its
// own, exactly as the internal searches give one to every BFS worker. The
// arena grows to the verifier's maximum fanout and is then recycled, so
// steady-state expansion through SuccessorsInto performs no allocation.
type ExpandScratch struct {
	sc expandScratch
}

// NewScratch returns a fresh scratch for SuccessorsInto.
func (e *Expander) NewScratch() *ExpandScratch { return &ExpandScratch{} }

// SuccessorsInto appends s's successors to out and returns the extended
// slice together with the index of the application whose deadline the
// expansion violated, or −1 when every disturbance choice stays safe. On a
// violation out is returned unchanged — no partial successors are appended
// (only the scratch's internal arena holds the truncated expansion), so
// callers accumulating successors from several states keep the earlier
// ones. The scratch carries the expansion's buffers between calls; its
// arena contents are overwritten on every call.
func (e *Expander) SuccessorsInto(s PackedState, scr *ExpandScratch, out []PackedState) ([]PackedState, int) {
	v, sc := e.v, &scr.sc
	if v.wide {
		v.unpackWide(wstate(s), &sc.base)
	} else {
		v.unpack(s[0], &sc.base)
	}
	if viol := v.expand(&sc.base, sc); viol >= 0 {
		return out, viol
	}
	if v.wide {
		for i := range sc.states {
			out = append(out, PackedState(v.packWide(&sc.states[i])))
		}
	} else {
		for i := range sc.states {
			out = append(out, PackedState{v.pack(&sc.states[i])})
		}
	}
	return out, -1
}

// HashedState pairs a packed state with its Expander.Hash. It is the unit
// of the batched-hashing expansion path: SuccessorsHashedInto mixes each
// successor while it is still hot from the packing sweep, and the driver
// carries the hash from shard routing through the send filter to the
// visited-set probe — one mix per expanded state on the whole hot path.
type HashedState struct {
	S PackedState
	H uint64
}

// SuccessorsHashedInto is SuccessorsInto with the hash computed during the
// packing sweep over the scratch arena, so callers that route or dedup by
// hash never mix a state twice. The contract is otherwise identical: on a
// violation out is returned unchanged, and the scratch's arena is
// overwritten on every call.
func (e *Expander) SuccessorsHashedInto(s PackedState, scr *ExpandScratch, out []HashedState) ([]HashedState, int) {
	v, sc := e.v, &scr.sc
	if v.wide {
		v.unpackWide(wstate(s), &sc.base)
	} else {
		v.unpack(s[0], &sc.base)
	}
	if viol := v.expand(&sc.base, sc); viol >= 0 {
		return out, viol
	}
	if v.wide {
		for i := range sc.states {
			ws := v.packWide(&sc.states[i])
			out = append(out, HashedState{S: PackedState(ws), H: hashW(ws)})
		}
	} else {
		for i := range sc.states {
			ns := v.pack(&sc.states[i])
			out = append(out, HashedState{S: PackedState{ns}, H: hashU64(ns)})
		}
	}
	return out, -1
}

// Successors is SuccessorsInto over a pooled scratch: safe for concurrent
// use, at the cost of the pool round-trip. Hot drivers hold their own
// scratch and call SuccessorsInto directly.
func (e *Expander) Successors(s PackedState, out []PackedState) ([]PackedState, int) {
	scr, _ := e.pool.Get().(*ExpandScratch)
	if scr == nil {
		scr = &ExpandScratch{}
	}
	out, app := e.SuccessorsInto(s, scr, out)
	e.pool.Put(scr)
	return out, app
}

// Hash mixes a state for shard selection and set probing. Narrow states use
// the one-word splitmix finalizer (the same function behind the local
// sharded set), wide states the chained word hash. Every driver of one run
// must partition by the same hash, which this method guarantees: it depends
// only on the profiles and config the Expander was built from.
func (e *Expander) Hash(s PackedState) uint64 {
	if e.v.wide {
		return hashW(wstate(s))
	}
	return hashU64(s[0])
}

// LessState orders states lexicographically (word 0 most significant, the
// lessW order). For narrow states — words 1..3 zero — this coincides with
// the raw uint64 order of the one-word encoding, so the minimum-violator
// tie-break of a distributed run matches the local parallel search on
// either encoding.
func LessState(a, b PackedState) bool {
	return lessW(wstate(a), wstate(b))
}

// AppendState appends the wire encoding of s to dst: StateWords() words,
// little-endian. Batches are built by repeated appends and decoded in one
// call by DecodeStates.
func (e *Expander) AppendState(dst []byte, s PackedState) []byte {
	w := e.StateWords()
	for k := 0; k < w; k++ {
		dst = binary.LittleEndian.AppendUint64(dst, s[k])
	}
	return dst
}

// DecodeStates appends every state encoded in b (a batch built with
// AppendState under the same profiles and config) to out.
func (e *Expander) DecodeStates(b []byte, out []PackedState) ([]PackedState, error) {
	w := e.StateWords()
	stride := 8 * w
	if len(b)%stride != 0 {
		return out, fmt.Errorf("verify: frontier batch of %d bytes is not a multiple of the %d-byte state stride", len(b), stride)
	}
	for len(b) > 0 {
		var s PackedState
		for k := 0; k < w; k++ {
			s[k] = binary.LittleEndian.Uint64(b[8*k:])
		}
		out = append(out, s)
		b = b[stride:]
	}
	return out, nil
}

// NewSet returns an empty visited set sized for the expander's encoding:
// narrow states are stored as bare words (8 bytes each), wide states as
// full multi-word keys. Not safe for concurrent use — each search driver
// owns its partition.
func (e *Expander) NewSet(capacity int) *StateSet {
	if e.v.wide {
		return &StateSet{wide: newWideSet(capacity)}
	}
	return &StateSet{narrow: newU64Set(capacity)}
}

// NewShardedSet returns a visited set striped 64-way by hash — the same
// sharding as the local parallel searches — for drivers that absorb
// states from several goroutines at once. Add and AddHashed are lock-free
// (CAS-claimed slots; see shardset.go for the exactness argument) and
// contend only when two states race for the same slot. Len is exact and
// Reserve/Reset rebuild tables in place, so both require quiescence —
// drivers count fresh adds for budgets and call Reserve only between
// levels, with no lanes in flight.
func (e *Expander) NewShardedSet(capacity int) *StateSet {
	if e.v.wide {
		return &StateSet{shWide: newShardedWideSet(capacity)}
	}
	return &StateSet{shNarrow: newShardedU64Set(capacity)}
}

// StateSet is an open-addressing set of PackedStates backing one search
// driver's visited partition. Exactly one of the underlying sets is
// non-nil, matching the encoding of the Expander that created it and the
// concurrency of the constructor (NewSet single-goroutine, NewShardedSet
// striped).
type StateSet struct {
	narrow   *u64Set
	wide     *wideSet
	shNarrow *shardedU64Set
	shWide   *shardedWideSet
}

// Add inserts k and reports whether it was absent.
func (s *StateSet) Add(k PackedState) bool {
	switch {
	case s.wide != nil:
		return s.wide.add(wstate(k))
	case s.shNarrow != nil:
		return s.shNarrow.add(k[0])
	case s.shWide != nil:
		return s.shWide.add(wstate(k))
	}
	return s.narrow.add(k[0])
}

// AddHashed is Add with the state's Expander.Hash precomputed — drivers
// that already hashed the state for shard routing skip the second mix.
func (s *StateSet) AddHashed(k PackedState, h uint64) bool {
	switch {
	case s.wide != nil:
		return s.wide.addHashed(wstate(k), h)
	case s.shNarrow != nil:
		return s.shNarrow.addHashed(k[0], h)
	case s.shWide != nil:
		return s.shWide.addHashed(wstate(k), h)
	}
	return s.narrow.addHashed(k[0], h)
}

// Len returns the number of stored states. On a sharded set it locks
// every stripe — search drivers track their own fresh-add counters for
// budget checks instead of calling this per insert.
func (s *StateSet) Len() int {
	switch {
	case s.wide != nil:
		return s.wide.len()
	case s.shNarrow != nil:
		return s.shNarrow.len()
	case s.shWide != nil:
		return s.shWide.len()
	}
	return s.narrow.len()
}

// Reserve grows the set — in a single rehash per stripe — until it can
// absorb n more states without exceeding the load factor. Search drivers
// call it with the expected fanout of the coming level so inserts never
// rehash mid-level, exactly like the internal BFS drivers.
func (s *StateSet) Reserve(n int) {
	switch {
	case s.wide != nil:
		s.wide.reserve(n)
	case s.shNarrow != nil:
		s.shNarrow.reserve(n)
	case s.shWide != nil:
		s.shWide.reserve(n)
	default:
		s.narrow.reserve(n)
	}
}

// Reset empties the set in place, keeping the tables at their grown sizes.
// A standing worker serving repeated runs clears its visited partition
// instead of reallocating it — the dominant per-run allocation otherwise.
// Not safe concurrently with Add; callers reset between runs, when the
// lanes are quiescent.
func (s *StateSet) Reset() {
	switch {
	case s.wide != nil:
		s.wide.reset()
	case s.shNarrow != nil:
		s.shNarrow.reset()
	case s.shWide != nil:
		s.shWide.reset()
	default:
		s.narrow.reset()
	}
}

// Stats returns the cumulative contention ledger of a sharded set (zero for
// the single-goroutine sets, which never contend). Distributed drivers
// sample deltas between levels for lane autotuning and fold the totals into
// the engine telemetry at session teardown via FlushContention.
func (s *StateSet) Stats() SetStats {
	switch {
	case s.shNarrow != nil:
		return s.shNarrow.stats()
	case s.shWide != nil:
		return s.shWide.stats()
	}
	return SetStats{}
}
