// Package verify decides the paper's central question (Sec. 4): can a set
// of applications share one TT slot such that every application, under
// every admissible disturbance scenario, is granted the slot within its
// maximum wait T*w?
//
// The paper models applications, arbitration policy and scheduler as a
// network of timed automata (Figs. 5–7) and checks Error-state reachability
// with UPPAAL. Because the plant is sampled and the scheduler observes
// disturbances only at sample boundaries, integer-clock semantics at sample
// granularity is exact; this package therefore performs explicit-state
// breadth-first reachability over a bit-packed encoding of the composed
// discrete state. Disturbances are adversarial: at every sample, any subset
// of quiescent applications may have been disturbed during the preceding
// interval (subject to the per-application minimum inter-arrival time r).
//
// Two packed encodings back the same semantics: application sets whose
// composed state fits one machine word use the original single-uint64
// encoding (the fast path — every paper result runs here), larger sets up
// to maxApps applications use the multi-word wide encoding of widestate.go.
// Sets of applications with identical profiles can additionally be checked
// under a sound symmetry quotient (Config.SymmetryReduction), collapsing
// the state space of homogeneous fleets by up to n! per class.
//
// Two disturbance modes are provided:
//
//   - exact (default): unbounded disturbance instances — full reachability;
//   - bounded: each application is limited to a given number of disturbance
//     instances, the paper's acceleration that cut one verification from
//     5 h to 15 min. It under-approximates reachability and is sound under
//     the paper's critical-instant argument (a worst-case wait occurs
//     within a window that bounds how many times each interferer can fire).
//
// The same per-sample semantics are implemented by the runtime arbiter
// (internal/sched); cross-validation tests keep them in lock-step.
package verify

import (
	"errors"
	"fmt"
	"runtime"
	"slices"

	"tightcps/internal/obs"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// Limits of the packed encodings. maxApps is the wide-encoding cap; sets
// whose composed state fits 64 bits (≤ 6 apps exact, ≤ 5 bounded) stay on
// the one-word fast path.
const (
	maxApps   = 12  // wide-encoding application cap
	maxClock  = 127 // r, T*w ≤ 127 samples
	maxTdw    = 15  // Tdw+ ≤ 15 samples
	phaseBits = 2
	valBits   = 7
	cntBits   = 2 // bounded-mode disturbance counters
)

// Phases in the packed encoding (Granted is tracked via the occupant field;
// a granted app keeps phase pWaiting's slot... see pack/unpack).
const (
	pSteady uint8 = iota
	pWaiting
	pGranted
	pCooldown
)

// Config tunes a verification run.
type Config struct {
	// MaxDisturbances bounds the number of disturbance instances per
	// application (the paper's acceleration). 0 means unbounded (exact).
	MaxDisturbances int
	// Policy selects the preemption policy to verify (default the paper's
	// eager policy).
	Policy sched.PreemptionPolicy
	// NondetTies explores all equally-urgent grant choices (sound for
	// verification). When false, ties break deterministically exactly like
	// the runtime arbiter (used for cross-validation).
	NondetTies bool
	// MaxStates aborts the search beyond this many visited states
	// (0 = 200 million).
	MaxStates int
	// Trace records parent pointers so a counterexample trace can be
	// reconstructed. Costs ~2× memory. Tracing forces the sequential
	// search path regardless of Workers.
	Trace bool
	// Workers bounds the goroutines expanding the BFS frontier. 0 means
	// auto: a pool of GOMAXPROCS lanes whose active count a contention-
	// aware tuner adapts level to level (LaneTuner); 1 forces the
	// sequential search. The parallel search
	// shards the visited set 64-way by state hash and synchronises at
	// level boundaries; it visits exactly the same state space, so the
	// verdict — and, for schedulable sets, States/Transitions/Depth — is
	// identical to the sequential path. Small levels are expanded
	// serially either way, so single-app checks do not regress.
	Workers int
	// SymmetryReduction canonicalises every state by sorting the lanes of
	// applications with identical profiles (name excluded), exploring the
	// quotient under those lane permutations. Permuting identical
	// applications is an automorphism of the composed transition system,
	// so Error reachability — the verdict — is preserved, while the state
	// space of a fleet of k identical applications shrinks by up to k!.
	// Disturbance choices over interchangeable applications collapse from
	// subsets to counts, shrinking the branching factor the same way.
	// With the reduction on, Result.Violator and state counts refer to
	// the quotient (the violator index identifies the app's equivalence
	// class). Incompatible with Trace.
	SymmetryReduction bool
	// Distributed, when non-nil, hands the whole reachability run to an
	// external backend (internal/dverify.Runner): Run ships the profiles
	// and this Config — with Distributed cleared — to the hook instead of
	// searching in-process. In distributed runs MaxStates is a per-node
	// visited budget (it models per-node memory), so the aggregate capacity
	// grows with the cluster size. Incompatible with Trace: counterexample
	// reconstruction needs in-process parent pointers, so callers re-run a
	// violating slot locally to obtain the schedule.
	Distributed func(profiles []*switching.Profile, cfg Config) (Result, error)
	// DistTopology selects the exchange topology of a distributed run; it
	// rides the Config into the Distributed hook and is ignored by local
	// searches. The verdict and all exhaustive counts are topology-
	// independent (mapping.VerifyConfigKey excludes it), so the knob trades
	// only performance: TopologyMesh routes frontiers over direct
	// worker↔worker links with pipelined asynchronous levels, TopologyRelay
	// is the level-synchronous coordinator relay.
	DistTopology DistTopology
	// RunID tags this run in logs, traces and distributed worker sessions.
	// Minted at the admission boundary (or by the CLI) via obs.NewRunID and
	// propagated through the Distributed hook onto every mesh worker; it
	// never affects the verdict or any cache key.
	RunID string
	// RunTrace, when non-nil, receives the run's telemetry: per-level spans
	// from the search drivers, per-node/per-link breakdowns from a
	// distributed backend, and the verdict totals on completion. Recording
	// is level-granular — the expansion hot path is untouched — so the
	// zero-allocation gates hold with a trace attached. Distinct from
	// Trace, which records parent pointers for counterexample
	// reconstruction.
	RunTrace *obs.Trace
	// FaultTolerance, meaningful only for distributed runs, keeps the run
	// alive through worker deaths: the coordinator detects dead workers by
	// transport failure or poll timeout, reassigns their hash shards to
	// survivors (or late-joining replacements) and rolls the cluster back
	// to the last checkpointed level. The verdict and all exhaustive
	// counts are unchanged by recovery — mapping.VerifyConfigKey excludes
	// this knob, so cached verdicts stay valid. Without CheckpointDir,
	// recovery degrades to a full restart of the search on the survivors.
	FaultTolerance bool
	// CheckpointDir is where fault-tolerant distributed runs persist
	// per-level visited-set segments (a per-session subdirectory is
	// created and removed on completion). Every worker must see the same
	// path — same host or shared filesystem — for takeover to restore a
	// dead worker's shards. Empty disables checkpointing (see
	// FaultTolerance). Ignored by local searches and cache keys.
	CheckpointDir string
}

// DistTopology names a distributed frontier-exchange topology.
type DistTopology string

const (
	// TopologyAuto picks the mesh whenever the cluster's transports
	// support direct worker↔worker links, the relay otherwise.
	TopologyAuto DistTopology = ""
	// TopologyMesh demands direct worker↔worker frontier exchange with
	// pipelined asynchronous levels (errors when the transports cannot
	// form a mesh).
	TopologyMesh DistTopology = "mesh"
	// TopologyRelay forces the level-synchronous exchange through the
	// coordinator.
	TopologyRelay DistTopology = "relay"
)

// Result reports a verification outcome.
type Result struct {
	Schedulable bool
	States      int // states visited
	Transitions int // transitions taken
	Depth       int // BFS depth reached (samples)
	// Violator is the application that missed its deadline (valid when
	// !Schedulable).
	Violator int
	// Counterexample is the disturbance schedule leading to the violation:
	// step k lists the applications disturbed at sample k. Nil unless
	// Config.Trace was set and a violation was found.
	Counterexample [][]int
	// Bounded records whether the accelerated (bounded-disturbance) model
	// was used.
	Bounded bool
	// Wire aggregates the frontier-exchange volume of a distributed run
	// (zero for local searches): the backend behind Config.Distributed
	// fills it in so CLIs can report routing and compression effect.
	Wire WireStats
}

// WireStats counts the bytes and states a distributed search moved between
// nodes. RawBytes is what the exchange would have cost in the fixed-width
// format with no sender-side filtering; WireBytes is what actually crossed
// the wire, so RawBytes−WireBytes is the volume the filter and the
// compressed codec saved together.
type WireStats struct {
	RoutedStates   int // states encoded onto the wire (post-filter)
	FilteredStates int // states suppressed by sender-side recent filters
	RawBytes       int // fixed-width cost of routed+filtered states
	WireBytes      int // bytes actually shipped (batches incl. codec byte)
	// Links breaks the totals down per directed worker↔worker link of a
	// mesh-topology run, ordered by (From, To). Nil for relay runs, where
	// every batch transits the coordinator and no direct links exist.
	Links []LinkWire
}

// LinkWire is the frontier volume of one directed mesh link.
type LinkWire struct {
	From, To int // node IDs, From ≠ To
	States   int // states shipped over the link (post-filter)
	Bytes    int // bytes shipped (encoded batches; raw width on loopback)
}

// Add accumulates other into w, merging per-link counters by (From, To).
func (w *WireStats) Add(other WireStats) {
	w.RoutedStates += other.RoutedStates
	w.FilteredStates += other.FilteredStates
	w.RawBytes += other.RawBytes
	w.WireBytes += other.WireBytes
	for _, l := range other.Links {
		merged := false
		for i := range w.Links {
			if w.Links[i].From == l.From && w.Links[i].To == l.To {
				w.Links[i].States += l.States
				w.Links[i].Bytes += l.Bytes
				merged = true
				break
			}
		}
		if !merged {
			w.Links = append(w.Links, l)
		}
	}
	// slices.SortFunc, not sort.Slice: the mesh tracker folds a WireStats
	// per node into its total every poll round, and sort.Slice's
	// reflection-based swapper allocates on each call.
	slices.SortFunc(w.Links, func(a, b LinkWire) int {
		if a.From != b.From {
			return a.From - b.From
		}
		return a.To - b.To
	})
}

// Report formats the counters as the one-line summary every CLI prints —
// the distributed CI smoke greps this exact shape, so it lives here rather
// than being duplicated per command. Call only when RawBytes > 0.
func (w WireStats) Report() string {
	saved := 100 * (1 - float64(w.WireBytes)/float64(w.RawBytes))
	return fmt.Sprintf("wire: routed=%d filtered=%d raw=%dB shipped=%dB (%.0f%% saved)",
		w.RoutedStates, w.FilteredStates, w.RawBytes, w.WireBytes, saved)
}

// ErrTooLarge is returned when the state cap is exceeded.
var ErrTooLarge = errors.New("verify: state space exceeds configured limit")

// ErrEncoding is returned when the application set does not fit the packed
// state encoding.
var ErrEncoding = errors.New("verify: application set exceeds packed-encoding limits")

// Verifier checks slot-sharing feasibility for one application set.
type Verifier struct {
	profs []*switching.Profile
	cfg   Config
	n     int

	appBits  uint
	occShift uint
	ctShift  uint
	wide     bool // state does not fit one uint64 (multi-word encoding)
	lanes    int  // wide layout: application lanes per word

	// Symmetry quotient (nil unless Config.SymmetryReduction found classes).
	symOf     []int   // app index → symmetry-group index, −1 when unique
	symGroups [][]int // groups of ≥ 2 interchangeable application indices
}

// New constructs a Verifier for the applications described by the profiles.
func New(profiles []*switching.Profile, cfg Config) (*Verifier, error) {
	n := len(profiles)
	if n == 0 || n > maxApps {
		return nil, fmt.Errorf("%w: %d applications (max %d)", ErrEncoding, n, maxApps)
	}
	for _, p := range profiles {
		if p.TwStar > maxClock || p.R > maxClock {
			return nil, fmt.Errorf("%w: clocks up to %d samples exceed %d", ErrEncoding, p.R, maxClock)
		}
		if p.MaxTdwPlus() > maxTdw {
			return nil, fmt.Errorf("%w: Tdw+ %d exceeds %d", ErrEncoding, p.MaxTdwPlus(), maxTdw)
		}
		if p.R <= p.TwStar {
			return nil, fmt.Errorf("verify: %s has r=%d ≤ T*w=%d; the sporadic model requires r > T*w",
				p.Name, p.R, p.TwStar)
		}
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 200_000_000
	}
	v := &Verifier{profs: profiles, cfg: cfg, n: n}
	v.appBits = phaseBits + valBits
	if cfg.MaxDisturbances > 0 {
		if cfg.MaxDisturbances >= 1<<cntBits {
			return nil, fmt.Errorf("%w: disturbance bound %d exceeds %d", ErrEncoding, cfg.MaxDisturbances, 1<<cntBits-1)
		}
		v.appBits += cntBits
	}
	total := uint(n)*v.appBits + 4 /*occupant*/ + 4 /*cT*/
	v.occShift = uint(n) * v.appBits
	v.ctShift = v.occShift + 4
	v.wide = total > 64
	v.lanes = int(64 / v.appBits)
	if n > v.lanes*wideAppWords {
		return nil, fmt.Errorf("%w: %d applications exceed the %d lanes of the wide encoding",
			ErrEncoding, n, v.lanes*wideAppWords)
	}
	if cfg.SymmetryReduction {
		if cfg.Trace {
			return nil, errors.New("verify: SymmetryReduction is incompatible with Trace (lane identities are quotiented away)")
		}
		v.buildSymmetry()
	}
	if cfg.Distributed != nil && cfg.Trace {
		return nil, errors.New("verify: Distributed is incompatible with Trace (re-run the slot locally for a counterexample)")
	}
	return v, nil
}

// buildSymmetry groups applications whose profiles are identical in every
// field the verifier consults (name excluded): such applications are
// interchangeable, and sorting their lanes yields a canonical quotient
// representative.
func (v *Verifier) buildSymmetry() {
	v.symOf = make([]int, v.n)
	for i := range v.symOf {
		v.symOf[i] = -1
	}
	for i := 0; i < v.n; i++ {
		if v.symOf[i] >= 0 {
			continue
		}
		group := []int{i}
		for j := i + 1; j < v.n; j++ {
			if v.symOf[j] < 0 && sameProfile(v.profs[i], v.profs[j]) {
				group = append(group, j)
			}
		}
		if len(group) < 2 {
			continue
		}
		id := len(v.symGroups)
		for _, a := range group {
			v.symOf[a] = id
		}
		v.symGroups = append(v.symGroups, group)
	}
	if len(v.symGroups) == 0 {
		v.symOf = nil
	}
}

// sameProfile reports whether two profiles are indistinguishable to the
// verifier: same timing parameters and dwell tables. Names are ignored —
// two fleet instances of one application design are interchangeable.
func sameProfile(a, b *switching.Profile) bool {
	if a.R != b.R || a.TwStar != b.TwStar || a.Granularity != b.Granularity ||
		len(a.TdwMinus) != len(b.TdwMinus) || len(a.TdwPlus) != len(b.TdwPlus) {
		return false
	}
	for i := range a.TdwMinus {
		if a.TdwMinus[i] != b.TdwMinus[i] {
			return false
		}
	}
	for i := range a.TdwPlus {
		if a.TdwPlus[i] != b.TdwPlus[i] {
			return false
		}
	}
	return true
}

// cstate is the decoded composed state.
type cstate struct {
	phase [maxApps]uint8
	val   [maxApps]uint8 // Waiting: wt; Cooldown: clock; Granted: tw at grant
	cnt   [maxApps]uint8 // bounded mode: disturbances used
	occ   int8           // occupant index, −1 idle
	cT    uint8          // occupant dwell
}

func (v *Verifier) pack(c *cstate) uint64 {
	var s uint64
	for i := 0; i < v.n; i++ {
		f := uint64(c.phase[i]) | uint64(c.val[i])<<phaseBits
		if v.cfg.MaxDisturbances > 0 {
			f |= uint64(c.cnt[i]) << (phaseBits + valBits)
		}
		s |= f << (uint(i) * v.appBits)
	}
	occ := uint64(0xF)
	if c.occ >= 0 {
		occ = uint64(c.occ)
	}
	s |= occ << v.occShift
	s |= uint64(c.cT) << v.ctShift
	return s
}

func (v *Verifier) unpack(s uint64, c *cstate) {
	for i := 0; i < v.n; i++ {
		f := s >> (uint(i) * v.appBits)
		c.phase[i] = uint8(f & (1<<phaseBits - 1))
		c.val[i] = uint8(f >> phaseBits & (1<<valBits - 1))
		if v.cfg.MaxDisturbances > 0 {
			c.cnt[i] = uint8(f >> (phaseBits + valBits) & (1<<cntBits - 1))
		} else {
			c.cnt[i] = 0
		}
	}
	occ := s >> v.occShift & 0xF
	if occ == 0xF {
		c.occ = -1
	} else {
		c.occ = int8(occ)
	}
	c.cT = uint8(s >> v.ctShift & 0xF)
}

// initial returns the all-Steady, slot-idle state.
func (v *Verifier) initial() uint64 {
	var c cstate
	c.occ = -1
	return v.pack(&c)
}

// expandScratch owns every buffer the expansion core writes through: the
// decoded base state, the successor arena (states plus the disturbance
// bitmask that produced each) and the fixed-size index buffers of the
// scheduling helpers. Each search goroutine owns exactly one scratch —
// the sequential drivers keep one on the stack, every parallel BFS worker
// and every distributed node embeds its own — so the hot path performs no
// allocation once the arena has grown to the verifier's maximum fanout
// (TestExpansionCoreAllocFree gates this).
type expandScratch struct {
	base   cstate
	states []cstate // successor arena, reset by expand
	masks  []uint32 // disturbance bitmask per successor, parallel to states

	elig [maxApps]int8 // eligible-disturbance buffer (expand)
	wait [maxApps]int8 // waiter buffer (schedule)
	cand [maxApps]int8 // grant-candidate buffer (schedule)
}

// laneKey totally orders one application's lane content for the symmetry
// canonicalisation.
func laneKey(c *cstate, i int) int {
	return int(c.phase[i]) | int(c.val[i])<<2 | int(c.cnt[i])<<9
}

// canon rewrites c into the canonical representative of its symmetry orbit:
// within every group of identical-profile applications, lanes are sorted by
// content, and the occupant index follows its lane. A no-op when no
// symmetry groups exist.
func (v *Verifier) canon(c *cstate) {
	for _, g := range v.symGroups {
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && laneKey(c, g[j]) < laneKey(c, g[j-1]); j-- {
				a, b := g[j], g[j-1]
				c.phase[a], c.phase[b] = c.phase[b], c.phase[a]
				c.val[a], c.val[b] = c.val[b], c.val[a]
				c.cnt[a], c.cnt[b] = c.cnt[b], c.cnt[a]
				if int(c.occ) == a {
					c.occ = int8(b)
				} else if int(c.occ) == b {
					c.occ = int8(a)
				}
			}
		}
	}
}

// expand applies the shared per-sample semantics to one decoded state: it
// advances clocks, enumerates the adversarial disturbance choices, and
// appends every post-scheduling successor — together with the disturbance
// bitmask that produced it — to sc's arena. base is consumed (clock-advanced
// in place) and the arena is reset on entry, so callers must consume it
// between calls. The return value is the index of the application whose
// deadline some choice violated, or −1 when every choice stays safe; on a
// violation the arena is truncated mid-choice and must be discarded. Both
// packed encodings route their successor generation through here, so narrow
// and wide searches explore identical semantics — without allocating.
func (v *Verifier) expand(base *cstate, sc *expandScratch) int {
	sc.states = sc.states[:0]
	sc.masks = sc.masks[:0]

	// Step 1–2: advance clocks; finish cooldowns.
	for i := 0; i < v.n; i++ {
		switch base.phase[i] {
		case pWaiting:
			base.val[i]++
		case pCooldown:
			if int(base.val[i])+1 >= v.profs[i].R {
				base.phase[i] = pSteady
				base.val[i] = 0
			} else {
				base.val[i]++
			}
		}
	}
	if base.occ >= 0 {
		base.cT++
	}

	// Eligible disturbance set.
	nelig := 0
	for i := 0; i < v.n; i++ {
		if base.phase[i] != pSteady {
			continue
		}
		if v.cfg.MaxDisturbances > 0 && int(base.cnt[i]) >= v.cfg.MaxDisturbances {
			continue
		}
		sc.elig[nelig] = int8(i)
		nelig++
	}

	if v.symGroups != nil {
		return v.expandGrouped(base, sc.elig[:nelig], sc)
	}

	for mask := 0; mask < 1<<nelig; mask++ {
		c := *base
		var m uint32
		for b := 0; b < nelig; b++ {
			if mask&(1<<b) != 0 {
				app := int(sc.elig[b])
				c.phase[app] = pWaiting
				c.val[app] = 0
				if v.cfg.MaxDisturbances > 0 {
					c.cnt[app]++
				}
				m |= 1 << uint(app)
			}
		}
		if viol := v.schedule(&c, m, sc); viol >= 0 {
			return viol
		}
	}
	return -1
}

// expandGrouped is the symmetry-aware disturbance enumeration: eligible
// applications are partitioned into interchangeable groups (same symmetry
// class, same disturbance count — identical lane content, since Steady
// lanes carry val 0), and only the number disturbed per group is chosen.
// The branching factor drops from 2^e subsets to Π(|group|+1) count
// vectors; every successor is canonicalised in the arena before the next
// choice runs. All scratch lives in fixed-size stack arrays and sc — this
// runs once per explored state, tens of millions of times per fleet check.
func (v *Verifier) expandGrouped(base *cstate, elig []int8, sc *expandScratch) int {
	// members holds the eligible apps reordered group by group;
	// groupEnd[g] is the end offset of group g within it.
	var members [maxApps]int8
	var groupEnd [maxApps]int8
	var groupCls [maxApps]int16 // symmetry class of each group, −1 singleton
	var groupCnt [maxApps]uint8 // disturbance count shared by the group
	ngroups := 0
	pos := int8(0)
	for _, a := range elig {
		gi := -1
		if cls := v.symOf[a]; cls >= 0 {
			for g := 0; g < ngroups; g++ {
				if groupCls[g] == int16(cls) && groupCnt[g] == base.cnt[a] {
					gi = g
					break
				}
			}
			if gi < 0 {
				gi = ngroups
				groupCls[gi] = int16(cls)
			}
		} else {
			gi = ngroups
			groupCls[gi] = -1
		}
		if gi == ngroups {
			groupCnt[gi] = base.cnt[a]
			ngroups++
			// New groups open at the end; existing groups grow by shifting
			// the (few) later members right.
			members[pos] = a
			groupEnd[gi] = pos + 1
			pos++
			continue
		}
		insert := groupEnd[gi]
		for j := pos; j > insert; j-- {
			members[j] = members[j-1]
		}
		members[insert] = a
		for g := gi; g < ngroups; g++ {
			groupEnd[g]++
		}
		pos++
	}

	var counts [maxApps]int8
	for {
		c := *base
		var m uint32
		start := int8(0)
		for g := 0; g < ngroups; g++ {
			for k := start; k < start+counts[g]; k++ {
				app := int(members[k])
				c.phase[app] = pWaiting
				c.val[app] = 0
				if v.cfg.MaxDisturbances > 0 {
					c.cnt[app]++
				}
				m |= 1 << uint(app)
			}
			start = groupEnd[g]
		}
		first := len(sc.states)
		if viol := v.schedule(&c, m, sc); viol >= 0 {
			return viol
		}
		for i := first; i < len(sc.states); i++ {
			v.canon(&sc.states[i])
		}
		// Odometer over per-group disturbance counts.
		gi := 0
		for ; gi < ngroups; gi++ {
			size := groupEnd[gi]
			if gi > 0 {
				size -= groupEnd[gi-1]
			}
			counts[gi]++
			if counts[gi] <= size {
				break
			}
			counts[gi] = 0
		}
		if gi == ngroups {
			return -1
		}
	}
}

// successors expands one narrow-packed state through sc, appending the
// resulting packed states to out. choices records, parallel to out, the
// disturbance subset (bitmask) that produced each successor. The returned
// violator index is −1 when every disturbance choice stays safe; on a
// violation out and choices carry no new entries.
func (v *Verifier) successors(s uint64, sc *expandScratch, out []uint64, choices []uint32) ([]uint64, []uint32, int) {
	v.unpack(s, &sc.base)
	if viol := v.expand(&sc.base, sc); viol >= 0 {
		return out, choices, viol
	}
	for i := range sc.states {
		out = append(out, v.pack(&sc.states[i]))
	}
	choices = append(choices, sc.masks...)
	return out, choices, -1
}

// successorsWide is successors over the multi-word encoding.
func (v *Verifier) successorsWide(s wstate, sc *expandScratch, out []wstate, choices []uint32) ([]wstate, []uint32, int) {
	v.unpackWide(s, &sc.base)
	if viol := v.expand(&sc.base, sc); viol >= 0 {
		return out, choices, viol
	}
	for i := range sc.states {
		out = append(out, v.packWide(&sc.states[i]))
	}
	choices = append(choices, sc.masks...)
	return out, choices, -1
}

// schedule applies eviction, granting and the deadline check to c,
// appending the possible post-scheduling states (more than one only with
// nondeterministic tie-breaking) to sc's arena, each paired with the
// disturbance mask m. It returns the violating application's index, or −1;
// on a violation the arena may hold a truncated choice and must be
// discarded by the caller.
func (v *Verifier) schedule(c *cstate, m uint32, sc *expandScratch) int {
	// Forced vacate at Tdw+; preemption in [Tdw−, Tdw+).
	if c.occ >= 0 {
		o := int(c.occ)
		dtMin, dtMax, ok := v.profs[o].Lookup(int(c.val[o]))
		if !ok {
			// Cannot happen: grants only occur with a valid window.
			panic("verify: occupant without dwell window")
		}
		evict := false
		if int(c.cT) >= dtMax {
			evict = true
		} else if int(c.cT) >= dtMin {
			if nw := v.waiters(c, &sc.wait); nw > 0 {
				switch v.cfg.Policy {
				case sched.PreemptEager:
					evict = true
				case sched.PreemptLazy:
					u := v.mostUrgent(c, sc.wait[:nw])
					if v.profs[u].TwStar-int(c.val[u]) <= 0 {
						evict = true
					}
				}
			}
		}
		if evict {
			clk := int(c.val[o]) + int(c.cT) // time since disturbance
			if clk >= v.profs[o].R {
				c.phase[o] = pSteady
				c.val[o] = 0
			} else {
				c.phase[o] = pCooldown
				c.val[o] = uint8(clk)
			}
			c.occ = -1
			c.cT = 0
		}
	}

	// Grant: candidate states are built directly in the arena.
	if c.occ < 0 {
		if nw := v.waiters(c, &sc.wait); nw > 0 {
			ncand := v.grantCandidates(c, sc.wait[:nw], &sc.cand)
			granted := false
			for _, g8 := range sc.cand[:ncand] {
				g := int(g8)
				if _, _, ok := v.profs[g].Lookup(int(c.val[g])); !ok {
					continue // past T*w — the miss check below will fire
				}
				sc.states = append(sc.states, *c)
				nc := &sc.states[len(sc.states)-1]
				nc.phase[g] = pGranted
				// val keeps tw (the wait at grant); cT restarts.
				nc.occ = int8(g)
				nc.cT = 0
				if viol := v.missCheck(nc); viol >= 0 {
					return viol
				}
				sc.masks = append(sc.masks, m)
				granted = true
			}
			if granted {
				return -1
			}
		}
	}
	if viol := v.missCheck(c); viol >= 0 {
		return viol
	}
	sc.states = append(sc.states, *c)
	sc.masks = append(sc.masks, m)
	return -1
}

// waiters writes the indices of Waiting applications into buf (ascending)
// and returns how many there are.
func (v *Verifier) waiters(c *cstate, buf *[maxApps]int8) int {
	n := 0
	for i := 0; i < v.n; i++ {
		if c.phase[i] == pWaiting {
			buf[n] = int8(i)
			n++
		}
	}
	return n
}

// mostUrgent returns the waiter with minimum deadline D = T*w − wt, with
// the runtime arbiter's deterministic tie-break.
func (v *Verifier) mostUrgent(c *cstate, w []int8) int {
	best := -1
	bestD, bestTie := 0, 0
	for _, i8 := range w {
		i := int(i8)
		d := v.profs[i].TwStar - int(c.val[i])
		tie := v.profs[i].MaxTdwMinus()
		if best < 0 || d < bestD || (d == bestD && tie < bestTie) {
			best, bestD, bestTie = i, d, tie
		}
	}
	return best
}

// grantCandidates writes into buf the waiters that may legally receive an
// idle slot — the unique most-urgent one (deterministic mode) or all
// waiters tied at the minimum deadline (nondeterministic mode) — and
// returns how many there are.
func (v *Verifier) grantCandidates(c *cstate, w []int8, buf *[maxApps]int8) int {
	if !v.cfg.NondetTies {
		buf[0] = int8(v.mostUrgent(c, w))
		return 1
	}
	minD := 1 << 30
	for _, i := range w {
		if d := v.profs[i].TwStar - int(c.val[i]); d < minD {
			minD = d
		}
	}
	n := 0
	for _, i := range w {
		if v.profs[i].TwStar-int(c.val[i]) == minD {
			buf[n] = i
			n++
		}
	}
	return n
}

// missCheck returns the index of a still-waiting application whose wait has
// reached T*w — the earliest possible future grant (next sample) would
// exceed T*w — or −1.
func (v *Verifier) missCheck(c *cstate) int {
	for i := 0; i < v.n; i++ {
		if c.phase[i] == pWaiting && int(c.val[i]) >= v.profs[i].TwStar {
			return i
		}
	}
	return -1
}

// Run performs the BFS reachability analysis, fanning the frontier out over
// Config.Workers goroutines (sequentially when Workers is 1 or a trace is
// requested). Application sets that do not fit the one-word encoding run on
// the multi-word wide path with identical semantics. Every completed run —
// local or distributed — is folded into the engine metrics and, when
// Config.RunTrace is set, finalizes the run trace here.
func (v *Verifier) Run() (Result, error) {
	obsActive.Add(1)
	res, err := v.dispatch()
	obsActive.Add(-1)
	v.recordRun(res, err)
	return res, err
}

// dispatch routes the run to the distributed hook or a local driver.
func (v *Verifier) dispatch() (Result, error) {
	if v.cfg.Distributed != nil {
		cfg := v.cfg
		cfg.Distributed = nil
		return v.cfg.Distributed(v.profs, cfg)
	}
	workers := v.cfg.Workers
	auto := workers <= 0
	if auto {
		workers = runtime.GOMAXPROCS(0)
	}
	if v.wide {
		if workers == 1 || v.cfg.Trace {
			return v.runSequentialWide()
		}
		return v.runParallelWide(workers, auto)
	}
	if workers == 1 || v.cfg.Trace {
		return v.runSequential()
	}
	return v.runParallel(workers, auto)
}

// levelReserve estimates how many fresh states the coming level will
// discover from the previous level's fanout — the previous level turned
// prevFrontier frontier states into frontier fresh ones, so the coming one
// is sized at the same ratio — letting the visited sets grow to the level's
// size in one rehash instead of doubling mid-level.
func levelReserve(frontier, prevFrontier int) int {
	if prevFrontier <= 0 {
		return frontier
	}
	est := frontier * frontier / prevFrontier
	if max := 8 * frontier; est > max {
		est = max // cap runaway extrapolation on early ragged levels
	}
	return est
}

// runSequential is the single-goroutine BFS: frontier states are expanded in
// insertion order and the search stops at the first violation encountered.
// The frontier slices and the expansion scratch are recycled across levels,
// so the steady-state loop allocates only when the visited set grows.
func (v *Verifier) runSequential() (Result, error) {
	res := Result{Schedulable: true, Bounded: v.cfg.MaxDisturbances > 0}
	visited := newU64Set(1 << 16)
	init := v.initial()
	visited.add(init)
	frontier := []uint64{init}
	var next []uint64 // recycled: swapped with frontier at every level
	var parents map[uint64]parentEdge
	if v.cfg.Trace {
		parents = map[uint64]parentEdge{}
	}
	res.States = 1

	var sc expandScratch
	var succBuf []uint64
	var choiceBuf []uint32
	prevFrontier := 1
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		obsLevels.Inc()
		levelTrans := res.Transitions
		visited.reserve(levelReserve(len(frontier), prevFrontier))
		next = next[:0]
		for _, s := range frontier {
			succBuf = succBuf[:0]
			choiceBuf = choiceBuf[:0]
			var viol int
			succBuf, choiceBuf, viol = v.successors(s, &sc, succBuf, choiceBuf)
			if viol >= 0 {
				res.Schedulable = false
				res.Violator = viol
				if v.cfg.Trace {
					res.Counterexample = v.rebuildTrace(parents, s, init)
				}
				v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
				return res, nil
			}
			res.Transitions += len(succBuf)
			for i, ns := range succBuf {
				if visited.add(ns) {
					res.States++
					if res.States > v.cfg.MaxStates {
						return res, ErrTooLarge
					}
					if v.cfg.Trace {
						parents[ns] = parentEdge{prev: s, disturbed: choiceBuf[i]}
					}
					next = append(next, ns)
				}
			}
		}
		v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
		prevFrontier = len(frontier)
		frontier, next = next, frontier
	}
	return res, nil
}

// runSequentialWide mirrors runSequential over the multi-word encoding.
func (v *Verifier) runSequentialWide() (Result, error) {
	res := Result{Schedulable: true, Bounded: v.cfg.MaxDisturbances > 0}
	visited := newWideSet(1 << 12)
	init := v.initialWide()
	visited.add(init)
	frontier := []wstate{init}
	var next []wstate // recycled: swapped with frontier at every level
	var parents map[wstate]parentEdgeWide
	if v.cfg.Trace {
		parents = map[wstate]parentEdgeWide{}
	}
	res.States = 1

	var sc expandScratch
	var succBuf []wstate
	var choiceBuf []uint32
	prevFrontier := 1
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		obsLevels.Inc()
		levelTrans := res.Transitions
		visited.reserve(levelReserve(len(frontier), prevFrontier))
		next = next[:0]
		for _, s := range frontier {
			succBuf = succBuf[:0]
			choiceBuf = choiceBuf[:0]
			var viol int
			succBuf, choiceBuf, viol = v.successorsWide(s, &sc, succBuf, choiceBuf)
			if viol >= 0 {
				res.Schedulable = false
				res.Violator = viol
				if v.cfg.Trace {
					res.Counterexample = v.rebuildTraceWide(parents, s, init)
				}
				v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
				return res, nil
			}
			res.Transitions += len(succBuf)
			for i, ns := range succBuf {
				if visited.add(ns) {
					res.States++
					if res.States > v.cfg.MaxStates {
						return res, ErrTooLarge
					}
					if v.cfg.Trace {
						parents[ns] = parentEdgeWide{prev: s, disturbed: choiceBuf[i]}
					}
					next = append(next, ns)
				}
			}
		}
		v.cfg.RunTrace.AddLevel(depth, len(frontier), res.Transitions-levelTrans)
		prevFrontier = len(frontier)
		frontier, next = next, frontier
	}
	return res, nil
}

type parentEdge struct {
	prev      uint64
	disturbed uint32
}

type parentEdgeWide struct {
	prev      wstate
	disturbed uint32
}

// rebuildTrace walks parent pointers from the state whose expansion
// violated the deadline back to the initial state, returning the
// disturbance schedule (step k → apps disturbed at sample k). The final
// adversarial step that triggers the miss during expansion of `last` is not
// in the parent map; the violation occurs one sample after the returned
// schedule ends.
func (v *Verifier) rebuildTrace(parents map[uint64]parentEdge, last, init uint64) [][]int {
	var rev []uint32
	for s := last; s != init; {
		e, ok := parents[s]
		if !ok {
			break
		}
		rev = append(rev, e.disturbed)
		s = e.prev
	}
	return v.traceFromMasks(rev)
}

// rebuildTraceWide is rebuildTrace over the multi-word encoding.
func (v *Verifier) rebuildTraceWide(parents map[wstate]parentEdgeWide, last, init wstate) [][]int {
	var rev []uint32
	for s := last; s != init; {
		e, ok := parents[s]
		if !ok {
			break
		}
		rev = append(rev, e.disturbed)
		s = e.prev
	}
	return v.traceFromMasks(rev)
}

// traceFromMasks converts a reversed list of disturbance bitmasks into the
// forward schedule (step k → apps disturbed at sample k).
func (v *Verifier) traceFromMasks(rev []uint32) [][]int {
	out := make([][]int, len(rev))
	for i := range rev {
		m := rev[len(rev)-1-i]
		var apps []int
		for a := 0; a < v.n; a++ {
			if m&(1<<uint(a)) != 0 {
				apps = append(apps, a)
			}
		}
		out[i] = apps
	}
	return out
}

// Slot verifies whether the applications described by the given profiles
// can share one TT slot (convenience wrapper).
func Slot(profiles []*switching.Profile, cfg Config) (Result, error) {
	v, err := New(profiles, cfg)
	if err != nil {
		return Result{}, err
	}
	return v.Run()
}

// BoundFor computes a sound per-application disturbance bound for the
// accelerated model, following the paper's argument: the worst-case wait of
// any application unfolds within a busy window no longer than
// W = max_i (T*w_i + maxTdw+_i) samples, during which application j can
// fire at most ⌈W / r_j⌉ + 1 times. The returned bound is the maximum over
// j of that count (the encoding uses one shared bound).
func BoundFor(profiles []*switching.Profile) int {
	w := 0
	for _, p := range profiles {
		if l := p.TwStar + p.MaxTdwPlus(); l > w {
			w = l
		}
	}
	bound := 1
	for _, p := range profiles {
		b := (w+p.R-1)/p.R + 1
		if b > bound {
			bound = b
		}
	}
	return bound
}
