// Package verify decides the paper's central question (Sec. 4): can a set
// of applications share one TT slot such that every application, under
// every admissible disturbance scenario, is granted the slot within its
// maximum wait T*w?
//
// The paper models applications, arbitration policy and scheduler as a
// network of timed automata (Figs. 5–7) and checks Error-state reachability
// with UPPAAL. Because the plant is sampled and the scheduler observes
// disturbances only at sample boundaries, integer-clock semantics at sample
// granularity is exact; this package therefore performs explicit-state
// breadth-first reachability over a bit-packed encoding of the composed
// discrete state. Disturbances are adversarial: at every sample, any subset
// of quiescent applications may have been disturbed during the preceding
// interval (subject to the per-application minimum inter-arrival time r).
//
// Two modes are provided:
//
//   - exact (default): unbounded disturbance instances — full reachability;
//   - bounded: each application is limited to a given number of disturbance
//     instances, the paper's acceleration that cut one verification from
//     5 h to 15 min. It under-approximates reachability and is sound under
//     the paper's critical-instant argument (a worst-case wait occurs
//     within a window that bounds how many times each interferer can fire).
//
// The same per-sample semantics are implemented by the runtime arbiter
// (internal/sched); cross-validation tests keep them in lock-step.
package verify

import (
	"errors"
	"fmt"
	"runtime"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// Limits of the packed encoding.
const (
	maxApps   = 6
	maxClock  = 127 // r, T*w ≤ 127 samples
	maxTdw    = 15  // Tdw+ ≤ 15 samples
	phaseBits = 2
	valBits   = 7
	cntBits   = 2 // bounded-mode disturbance counters
)

// Phases in the packed encoding (Granted is tracked via the occupant field;
// a granted app keeps phase pWaiting's slot... see pack/unpack).
const (
	pSteady uint8 = iota
	pWaiting
	pGranted
	pCooldown
)

// Config tunes a verification run.
type Config struct {
	// MaxDisturbances bounds the number of disturbance instances per
	// application (the paper's acceleration). 0 means unbounded (exact).
	MaxDisturbances int
	// Policy selects the preemption policy to verify (default the paper's
	// eager policy).
	Policy sched.PreemptionPolicy
	// NondetTies explores all equally-urgent grant choices (sound for
	// verification). When false, ties break deterministically exactly like
	// the runtime arbiter (used for cross-validation).
	NondetTies bool
	// MaxStates aborts the search beyond this many visited states
	// (0 = 200 million).
	MaxStates int
	// Trace records parent pointers so a counterexample trace can be
	// reconstructed. Costs ~2× memory. Tracing forces the sequential
	// search path regardless of Workers.
	Trace bool
	// Workers bounds the goroutines expanding the BFS frontier. 0 uses
	// GOMAXPROCS; 1 forces the sequential search. The parallel search
	// shards the visited set 64-way by state hash and synchronises at
	// level boundaries; it visits exactly the same state space, so the
	// verdict — and, for schedulable sets, States/Transitions/Depth — is
	// identical to the sequential path. Small levels are expanded
	// serially either way, so single-app checks do not regress.
	Workers int
}

// Result reports a verification outcome.
type Result struct {
	Schedulable bool
	States      int // states visited
	Transitions int // transitions taken
	Depth       int // BFS depth reached (samples)
	// Violator is the application that missed its deadline (valid when
	// !Schedulable).
	Violator int
	// Counterexample is the disturbance schedule leading to the violation:
	// step k lists the applications disturbed at sample k. Nil unless
	// Config.Trace was set and a violation was found.
	Counterexample [][]int
	// Bounded records whether the accelerated (bounded-disturbance) model
	// was used.
	Bounded bool
}

// ErrTooLarge is returned when the state cap is exceeded.
var ErrTooLarge = errors.New("verify: state space exceeds configured limit")

// ErrEncoding is returned when the application set does not fit the packed
// state encoding.
var ErrEncoding = errors.New("verify: application set exceeds packed-encoding limits")

// Verifier checks slot-sharing feasibility for one application set.
type Verifier struct {
	profs []*switching.Profile
	cfg   Config
	n     int

	appBits  uint
	occShift uint
	ctShift  uint
	wide     bool // state does not fit one uint64 (uses two-word set)
}

// New constructs a Verifier for the applications described by the profiles.
func New(profiles []*switching.Profile, cfg Config) (*Verifier, error) {
	n := len(profiles)
	if n == 0 || n > maxApps {
		return nil, fmt.Errorf("%w: %d applications (max %d)", ErrEncoding, n, maxApps)
	}
	for _, p := range profiles {
		if p.TwStar > maxClock || p.R > maxClock {
			return nil, fmt.Errorf("%w: clocks up to %d samples exceed %d", ErrEncoding, p.R, maxClock)
		}
		if p.MaxTdwPlus() > maxTdw {
			return nil, fmt.Errorf("%w: Tdw+ %d exceeds %d", ErrEncoding, p.MaxTdwPlus(), maxTdw)
		}
		if p.R <= p.TwStar {
			return nil, fmt.Errorf("verify: %s has r=%d ≤ T*w=%d; the sporadic model requires r > T*w",
				p.Name, p.R, p.TwStar)
		}
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 200_000_000
	}
	v := &Verifier{profs: profiles, cfg: cfg, n: n}
	v.appBits = phaseBits + valBits
	if cfg.MaxDisturbances > 0 {
		if cfg.MaxDisturbances >= 1<<cntBits {
			return nil, fmt.Errorf("%w: disturbance bound %d exceeds %d", ErrEncoding, cfg.MaxDisturbances, 1<<cntBits-1)
		}
		v.appBits += cntBits
	}
	total := uint(n)*v.appBits + 4 /*occupant*/ + 4 /*cT*/
	v.occShift = uint(n) * v.appBits
	v.ctShift = v.occShift + 4
	v.wide = total > 64
	if v.wide {
		return nil, fmt.Errorf("%w: %d state bits exceed 64 (reduce apps or use unbounded mode)", ErrEncoding, total)
	}
	return v, nil
}

// cstate is the decoded composed state.
type cstate struct {
	phase [maxApps]uint8
	val   [maxApps]uint8 // Waiting: wt; Cooldown: clock; Granted: tw at grant
	cnt   [maxApps]uint8 // bounded mode: disturbances used
	occ   int8           // occupant index, −1 idle
	cT    uint8          // occupant dwell
}

func (v *Verifier) pack(c *cstate) uint64 {
	var s uint64
	for i := 0; i < v.n; i++ {
		f := uint64(c.phase[i]) | uint64(c.val[i])<<phaseBits
		if v.cfg.MaxDisturbances > 0 {
			f |= uint64(c.cnt[i]) << (phaseBits + valBits)
		}
		s |= f << (uint(i) * v.appBits)
	}
	occ := uint64(0xF)
	if c.occ >= 0 {
		occ = uint64(c.occ)
	}
	s |= occ << v.occShift
	s |= uint64(c.cT) << v.ctShift
	return s
}

func (v *Verifier) unpack(s uint64, c *cstate) {
	for i := 0; i < v.n; i++ {
		f := s >> (uint(i) * v.appBits)
		c.phase[i] = uint8(f & (1<<phaseBits - 1))
		c.val[i] = uint8(f >> phaseBits & (1<<valBits - 1))
		if v.cfg.MaxDisturbances > 0 {
			c.cnt[i] = uint8(f >> (phaseBits + valBits) & (1<<cntBits - 1))
		} else {
			c.cnt[i] = 0
		}
	}
	occ := s >> v.occShift & 0xF
	if occ == 0xF {
		c.occ = -1
	} else {
		c.occ = int8(occ)
	}
	c.cT = uint8(s >> v.ctShift & 0xF)
}

// initial returns the all-Steady, slot-idle state.
func (v *Verifier) initial() uint64 {
	var c cstate
	c.occ = -1
	return v.pack(&c)
}

// violation describes a deadline miss discovered during expansion.
type violation struct {
	app int
}

// successors expands one state. For every subset of disturbance-eligible
// applications it applies the shared per-sample semantics and appends the
// resulting packed states to out. It returns a non-nil violation if any
// choice leads to a deadline miss. choices records, parallel to out, the
// disturbance subset (bitmask) that produced each successor.
func (v *Verifier) successors(s uint64, out []uint64, choices []uint32) ([]uint64, []uint32, *violation) {
	var base cstate
	v.unpack(s, &base)

	// Step 1–2: advance clocks; finish cooldowns.
	for i := 0; i < v.n; i++ {
		switch base.phase[i] {
		case pWaiting:
			base.val[i]++
		case pCooldown:
			if int(base.val[i])+1 >= v.profs[i].R {
				base.phase[i] = pSteady
				base.val[i] = 0
			} else {
				base.val[i]++
			}
		}
	}
	if base.occ >= 0 {
		base.cT++
	}

	// Eligible disturbance set.
	var elig []int
	for i := 0; i < v.n; i++ {
		if base.phase[i] != pSteady {
			continue
		}
		if v.cfg.MaxDisturbances > 0 && int(base.cnt[i]) >= v.cfg.MaxDisturbances {
			continue
		}
		elig = append(elig, i)
	}

	for mask := 0; mask < 1<<len(elig); mask++ {
		c := base
		for b, app := range elig {
			if mask&(1<<b) != 0 {
				c.phase[app] = pWaiting
				c.val[app] = 0
				if v.cfg.MaxDisturbances > 0 {
					c.cnt[app]++
				}
			}
		}
		viol, granted := v.schedule(&c)
		if viol != nil {
			return out, choices, viol
		}
		for _, g := range granted {
			out = append(out, v.pack(g))
			choices = append(choices, eligMask(elig, mask))
		}
	}
	return out, choices, nil
}

// eligMask converts a subset index over elig into an app bitmask.
func eligMask(elig []int, mask int) uint32 {
	var m uint32
	for b, app := range elig {
		if mask&(1<<b) != 0 {
			m |= 1 << uint(app)
		}
	}
	return m
}

// schedule applies eviction, granting and the deadline check to c. It
// returns the possible post-scheduling states (more than one only with
// nondeterministic tie-breaking) or a violation.
func (v *Verifier) schedule(c *cstate) (*violation, []*cstate) {
	// Forced vacate at Tdw+; preemption in [Tdw−, Tdw+).
	if c.occ >= 0 {
		o := int(c.occ)
		dtMin, dtMax, ok := v.profs[o].Lookup(int(c.val[o]))
		if !ok {
			// Cannot happen: grants only occur with a valid window.
			panic("verify: occupant without dwell window")
		}
		evict := false
		if int(c.cT) >= dtMax {
			evict = true
		} else if int(c.cT) >= dtMin {
			w := v.waiters(c)
			if len(w) > 0 {
				switch v.cfg.Policy {
				case sched.PreemptEager:
					evict = true
				case sched.PreemptLazy:
					u := v.mostUrgent(c, w)
					if v.profs[u].TwStar-int(c.val[u]) <= 0 {
						evict = true
					}
				}
			}
		}
		if evict {
			clk := int(c.val[o]) + int(c.cT) // time since disturbance
			if clk >= v.profs[o].R {
				c.phase[o] = pSteady
				c.val[o] = 0
			} else {
				c.phase[o] = pCooldown
				c.val[o] = uint8(clk)
			}
			c.occ = -1
			c.cT = 0
		}
	}

	// Grant.
	var results []*cstate
	if c.occ < 0 {
		w := v.waiters(c)
		if len(w) > 0 {
			cands := v.grantCandidates(c, w)
			for _, g := range cands {
				nc := *c
				if _, _, ok := v.profs[g].Lookup(int(nc.val[g])); !ok {
					continue // past T*w — the miss check below will fire
				}
				nc.phase[g] = pGranted
				// val keeps tw (the wait at grant); cT restarts.
				nc.occ = int8(g)
				nc.cT = 0
				if viol := v.missCheck(&nc); viol != nil {
					return viol, nil
				}
				cp := nc
				results = append(results, &cp)
			}
			if len(results) > 0 {
				return nil, results
			}
		}
	}
	if viol := v.missCheck(c); viol != nil {
		return viol, nil
	}
	cp := *c
	return nil, []*cstate{&cp}
}

// waiters returns the indices of Waiting applications.
func (v *Verifier) waiters(c *cstate) []int {
	var w []int
	for i := 0; i < v.n; i++ {
		if c.phase[i] == pWaiting {
			w = append(w, i)
		}
	}
	return w
}

// mostUrgent returns the waiter with minimum deadline D = T*w − wt, with
// the runtime arbiter's deterministic tie-break.
func (v *Verifier) mostUrgent(c *cstate, w []int) int {
	best := -1
	bestD, bestTie := 0, 0
	for _, i := range w {
		d := v.profs[i].TwStar - int(c.val[i])
		tie := v.profs[i].MaxTdwMinus()
		if best < 0 || d < bestD || (d == bestD && tie < bestTie) {
			best, bestD, bestTie = i, d, tie
		}
	}
	return best
}

// grantCandidates returns the waiters that may legally receive an idle
// slot: the unique most-urgent one (deterministic mode) or all waiters tied
// at the minimum deadline (nondeterministic mode).
func (v *Verifier) grantCandidates(c *cstate, w []int) []int {
	if !v.cfg.NondetTies {
		return []int{v.mostUrgent(c, w)}
	}
	minD := 1 << 30
	for _, i := range w {
		if d := v.profs[i].TwStar - int(c.val[i]); d < minD {
			minD = d
		}
	}
	var out []int
	for _, i := range w {
		if v.profs[i].TwStar-int(c.val[i]) == minD {
			out = append(out, i)
		}
	}
	return out
}

// missCheck flags a still-waiting application whose wait has reached T*w:
// the earliest possible future grant (next sample) would exceed T*w.
func (v *Verifier) missCheck(c *cstate) *violation {
	for i := 0; i < v.n; i++ {
		if c.phase[i] == pWaiting && int(c.val[i]) >= v.profs[i].TwStar {
			return &violation{app: i}
		}
	}
	return nil
}

// Run performs the BFS reachability analysis, fanning the frontier out over
// Config.Workers goroutines (sequentially when Workers is 1 or a trace is
// requested).
func (v *Verifier) Run() (Result, error) {
	workers := v.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || v.cfg.Trace {
		return v.runSequential()
	}
	return v.runParallel(workers)
}

// runSequential is the single-goroutine BFS: frontier states are expanded in
// insertion order and the search stops at the first violation encountered.
func (v *Verifier) runSequential() (Result, error) {
	res := Result{Schedulable: true, Bounded: v.cfg.MaxDisturbances > 0}
	visited := newU64Set(1 << 16)
	init := v.initial()
	visited.add(init)
	frontier := []uint64{init}
	var parents map[uint64]parentEdge
	if v.cfg.Trace {
		parents = map[uint64]parentEdge{}
	}
	res.States = 1

	var succBuf []uint64
	var choiceBuf []uint32
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		var next []uint64
		for _, s := range frontier {
			succBuf = succBuf[:0]
			choiceBuf = choiceBuf[:0]
			var viol *violation
			succBuf, choiceBuf, viol = v.successors(s, succBuf, choiceBuf)
			if viol != nil {
				res.Schedulable = false
				res.Violator = viol.app
				if v.cfg.Trace {
					res.Counterexample = v.rebuildTrace(parents, s, init)
				}
				return res, nil
			}
			res.Transitions += len(succBuf)
			for i, ns := range succBuf {
				if visited.add(ns) {
					res.States++
					if res.States > v.cfg.MaxStates {
						return res, ErrTooLarge
					}
					if v.cfg.Trace {
						parents[ns] = parentEdge{prev: s, disturbed: choiceBuf[i]}
					}
					next = append(next, ns)
				}
			}
		}
		frontier = next
	}
	return res, nil
}

type parentEdge struct {
	prev      uint64
	disturbed uint32
}

// rebuildTrace walks parent pointers from the state whose expansion
// violated the deadline back to the initial state, returning the
// disturbance schedule (step k → apps disturbed at sample k). The final
// adversarial step that triggers the miss during expansion of `last` is not
// in the parent map; the violation occurs one sample after the returned
// schedule ends.
func (v *Verifier) rebuildTrace(parents map[uint64]parentEdge, last, init uint64) [][]int {
	var rev []uint32
	for s := last; s != init; {
		e, ok := parents[s]
		if !ok {
			break
		}
		rev = append(rev, e.disturbed)
		s = e.prev
	}
	out := make([][]int, len(rev))
	for i := range rev {
		m := rev[len(rev)-1-i]
		var apps []int
		for a := 0; a < v.n; a++ {
			if m&(1<<uint(a)) != 0 {
				apps = append(apps, a)
			}
		}
		out[i] = apps
	}
	return out
}

// Slot verifies whether the applications described by the given profiles
// can share one TT slot (convenience wrapper).
func Slot(profiles []*switching.Profile, cfg Config) (Result, error) {
	v, err := New(profiles, cfg)
	if err != nil {
		return Result{}, err
	}
	return v.Run()
}

// BoundFor computes a sound per-application disturbance bound for the
// accelerated model, following the paper's argument: the worst-case wait of
// any application unfolds within a busy window no longer than
// W = max_i (T*w_i + maxTdw+_i) samples, during which application j can
// fire at most ⌈W / r_j⌉ + 1 times. The returned bound is the maximum over
// j of that count (the encoding uses one shared bound).
func BoundFor(profiles []*switching.Profile) int {
	w := 0
	for _, p := range profiles {
		if l := p.TwStar + p.MaxTdwPlus(); l > w {
			w = l
		}
	}
	bound := 1
	for _, p := range profiles {
		b := (w+p.R-1)/p.R + 1
		if b > bound {
			bound = b
		}
	}
	return bound
}
