package verify

// Multi-word ("wide") packed encoding: application sets whose composed
// state exceeds 64 bits are packed into a fixed-size array of words.
// Applications occupy straddle-free lanes of appBits bits each,
// ⌊64/appBits⌋ lanes per word, filling words 0..wideAppWords−1; the final
// header word carries the occupant index (low byte, 0xFF = slot idle) and
// the occupant dwell cT (next 4 bits). See DESIGN.md for the field diagram.
//
// The all-zero wstate is unreachable — an idle slot stores 0xFF in the
// header, and any occupied slot puts phase pGranted (2) in the occupant's
// lane — so zero doubles as the empty-slot sentinel of the open-addressing
// sets, exactly as it does for the one-word encoding.

const (
	wideWords    = 4             // words per wide state (32 bytes)
	wideAppWords = wideWords - 1 // words carrying application lanes
	wideIdle     = 0xFF          // header occupant byte when the slot is idle
)

// wstate is the multi-word packed composed state. It is comparable, so it
// keys Go maps (trace parents) and compares with == in the hash sets.
type wstate [wideWords]uint64

func (v *Verifier) packWide(c *cstate) wstate {
	var s wstate
	for i := 0; i < v.n; i++ {
		f := uint64(c.phase[i]) | uint64(c.val[i])<<phaseBits
		if v.cfg.MaxDisturbances > 0 {
			f |= uint64(c.cnt[i]) << (phaseBits + valBits)
		}
		s[i/v.lanes] |= f << (uint(i%v.lanes) * v.appBits)
	}
	occ := uint64(wideIdle)
	if c.occ >= 0 {
		occ = uint64(c.occ)
	}
	s[wideAppWords] = occ | uint64(c.cT)<<8
	return s
}

func (v *Verifier) unpackWide(s wstate, c *cstate) {
	for i := 0; i < v.n; i++ {
		f := s[i/v.lanes] >> (uint(i%v.lanes) * v.appBits)
		c.phase[i] = uint8(f & (1<<phaseBits - 1))
		c.val[i] = uint8(f >> phaseBits & (1<<valBits - 1))
		if v.cfg.MaxDisturbances > 0 {
			c.cnt[i] = uint8(f >> (phaseBits + valBits) & (1<<cntBits - 1))
		} else {
			c.cnt[i] = 0
		}
	}
	h := s[wideAppWords]
	if h&0xFF == wideIdle {
		c.occ = -1
	} else {
		c.occ = int8(h & 0xFF)
	}
	c.cT = uint8(h >> 8 & 0xF)
}

// initialWide returns the all-Steady, slot-idle state in the wide encoding.
func (v *Verifier) initialWide() wstate {
	var c cstate
	c.occ = -1
	return v.packWide(&c)
}

// hashW chains the splitmix64 finalizer across the words, so every bit of
// every word diffuses into the shard selector and the probe index.
func hashW(s wstate) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range s {
		h = hashU64(h ^ w)
	}
	return h
}

// lessW orders wide states lexicographically (word 0 most significant) —
// the total order behind the parallel search's minimum-violator tie-break.
func lessW(a, b wstate) bool {
	for i := 0; i < wideWords; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
