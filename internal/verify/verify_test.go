package verify

import (
	"errors"
	"math/rand"
	"testing"

	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
)

// prof builds a synthetic profile with constant dwell windows.
func prof(name string, twStar, dm, dp, r int) *switching.Profile {
	n := twStar + 1
	minT := make([]int, n)
	plusT := make([]int, n)
	for i := range minT {
		minT[i] = dm
		plusT[i] = dp
	}
	return &switching.Profile{Name: name, TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
		R: r, Granularity: 1, JStar: twStar + dp, JAtMin: make([]int, n), JBest: make([]int, n)}
}

func caseProfiles(t testing.TB, names ...string) []*switching.Profile {
	t.Helper()
	ps, err := plants.ProfileList(names...)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestSingleAppAlwaysSchedulable(t *testing.T) {
	res, err := Slot([]*switching.Profile{prof("A", 5, 2, 4, 20)}, Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("single app unschedulable: %+v", res)
	}
}

func TestObviousOverloadUnschedulable(t *testing.T) {
	// Two apps, each needing the slot immediately (T*w=0): simultaneous
	// disturbances cannot both be served.
	ps := []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}
	res, err := Slot(ps, Config{NondetTies: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatalf("overload reported schedulable")
	}
	if res.Counterexample == nil {
		t.Fatalf("no counterexample recorded with Trace on")
	}
}

func TestTwoLooseAppsSchedulable(t *testing.T) {
	// Each can wait longer than the other's maximum tenure.
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	res, err := Slot(ps, Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("loose pair unschedulable: violator %d", res.Violator)
	}
}

// TestPaperSlotS1 reproduces the paper's hardest verification: C1, C5, C4
// and C3 share slot S1 and meet all requirements in every scenario.
func TestPaperSlotS1(t *testing.T) {
	res, err := Slot(caseProfiles(t, "C1", "C5", "C4", "C3"), Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("paper slot S1 unschedulable: violator %d", res.Violator)
	}
	if res.States < 100000 {
		t.Fatalf("suspiciously few states for S1: %d", res.States)
	}
}

// TestPaperSlotS2 reproduces slot S2 = {C6, C2}.
func TestPaperSlotS2(t *testing.T) {
	res, err := Slot(caseProfiles(t, "C6", "C2"), Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("paper slot S2 unschedulable")
	}
}

// TestPaperRejections: the combinations the paper's first-fit had to reject
// are indeed unschedulable.
func TestPaperRejections(t *testing.T) {
	for _, names := range [][]string{
		{"C1", "C5", "C4", "C6"},
		{"C1", "C5", "C4", "C2"},
	} {
		res, err := Slot(caseProfiles(t, names...), Config{NondetTies: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable {
			t.Errorf("%v reported schedulable; paper rejects it", names)
		}
	}
}

// TestBoundedAgreesWithExact: on every paper combination, the accelerated
// (bounded-disturbance) model returns the same verdict as the exact model.
func TestBoundedAgreesWithExact(t *testing.T) {
	combos := [][]string{
		{"C1", "C5"},
		{"C1", "C5", "C4"},
		{"C1", "C5", "C4", "C6"},
		{"C6", "C2"},
	}
	for _, names := range combos {
		ps := caseProfiles(t, names...)
		exact, err := Slot(ps, Config{NondetTies: true})
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := Slot(ps, Config{NondetTies: true, MaxDisturbances: BoundFor(ps)})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Schedulable != bounded.Schedulable {
			t.Errorf("%v: exact=%v bounded=%v", names, exact.Schedulable, bounded.Schedulable)
		}
		if !bounded.Bounded || exact.Bounded {
			t.Errorf("%v: Bounded flags wrong", names)
		}
	}
}

// TestCounterexampleReplaysInArbiter: a violation trace found by the
// verifier, replayed through the runtime arbiter with deterministic ties,
// must reproduce a deadline miss — the two implementations share semantics.
func TestCounterexampleReplaysInArbiter(t *testing.T) {
	cases := [][]*switching.Profile{
		{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)},
		{prof("A", 3, 4, 6, 30), prof("B", 3, 4, 6, 30)},
		caseProfiles(t, "C1", "C5", "C4", "C6"),
	}
	for ci, ps := range cases {
		res, err := Slot(ps, Config{Trace: true}) // deterministic ties, like the arbiter
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable {
			t.Fatalf("case %d: expected violation", ci)
		}
		arb := sched.NewArbiter(ps, sched.Options{})
		for _, dist := range res.Counterexample {
			if err := arb.Tick(dist); err != nil {
				t.Fatalf("case %d: replay error: %v", ci, err)
			}
		}
		// One more adversarial sample (the violating expansion step): all
		// eligible apps get disturbed.
		var dist []int
		for i := range ps {
			if arb.Phase(i) == sched.Steady {
				dist = append(dist, i)
			}
		}
		if err := arb.Tick(dist); err != nil {
			t.Fatalf("case %d: final replay tick: %v", ci, err)
		}
		// The miss may need a few more empty ticks to surface (waiting out
		// the occupant), bounded by the violator's T*w.
		for k := 0; k <= ps[res.Violator].TwStar+1 && !arb.Missed(); k++ {
			if err := arb.Tick(nil); err != nil {
				t.Fatalf("case %d: drain tick: %v", ci, err)
			}
		}
		if !arb.Missed() {
			t.Errorf("case %d: verifier violation did not reproduce in the arbiter", ci)
		}
	}
}

// TestRandomSchedulesNeverMissOnVerifiedSets: fuzz the runtime arbiter with
// admissible random disturbance schedules on sets the verifier proved
// schedulable; no run may miss a deadline.
func TestRandomSchedulesNeverMissOnVerifiedSets(t *testing.T) {
	sets := [][]*switching.Profile{
		caseProfiles(t, "C6", "C2"),
		caseProfiles(t, "C1", "C5", "C4"),
		{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)},
	}
	for si, ps := range sets {
		res, err := Slot(ps, Config{NondetTies: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Fatalf("set %d: expected schedulable", si)
		}
		rng := rand.New(rand.NewSource(int64(1000 + si)))
		for trial := 0; trial < 30; trial++ {
			arb := sched.NewArbiter(ps, sched.Options{})
			for k := 0; k < 400; k++ {
				var dist []int
				for i := range ps {
					if arb.Phase(i) == sched.Steady && rng.Float64() < 0.3 {
						dist = append(dist, i)
					}
				}
				if err := arb.Tick(dist); err != nil {
					t.Fatalf("set %d trial %d: %v", si, trial, err)
				}
			}
			if arb.Missed() {
				t.Fatalf("set %d trial %d: arbiter missed on a verified set", si, trial)
			}
		}
	}
}

// TestLazyPolicyVerification: the future-work lazy-preemption policy is
// also safe for the paper's slot S2 (verified) — an ablation the paper
// suggests.
func TestLazyPolicyVerification(t *testing.T) {
	res, err := Slot(caseProfiles(t, "C6", "C2"), Config{NondetTies: true, Policy: sched.PreemptLazy})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("lazy policy unsafe for S2")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty app set accepted")
	}
	// r ≤ T*w violates the sporadic model.
	if _, err := New([]*switching.Profile{prof("A", 10, 2, 4, 5)}, Config{}); err == nil {
		t.Fatal("r ≤ T*w accepted")
	}
	// Oversized clocks.
	if _, err := New([]*switching.Profile{prof("A", 5, 2, 4, 200)}, Config{}); err == nil {
		t.Fatal("r > 127 accepted")
	}
	// Too many disturbance-counter bits.
	if _, err := New([]*switching.Profile{prof("A", 5, 2, 4, 20)}, Config{MaxDisturbances: 9}); err == nil {
		t.Fatal("bound 9 accepted (needs >2 bits)")
	}
	// Thirteen apps exceed even the wide packing.
	var many []*switching.Profile
	for i := 0; i < 13; i++ {
		many = append(many, prof("A", 5, 2, 4, 20))
	}
	if _, err := New(many, Config{}); err == nil {
		t.Fatal("13 apps accepted")
	}
	// Symmetry reduction cannot produce counterexample traces.
	if _, err := New([]*switching.Profile{prof("A", 5, 2, 4, 20)}, Config{SymmetryReduction: true, Trace: true}); err == nil {
		t.Fatal("SymmetryReduction+Trace accepted")
	}
}

func TestMaxStatesAborts(t *testing.T) {
	ps := caseProfiles(t, "C1", "C5", "C4", "C3")
	_, err := Slot(ps, Config{NondetTies: true, MaxStates: 1000})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	ps := caseProfiles(t, "C1", "C5", "C4", "C3")
	v, err := New(ps, Config{MaxDisturbances: 2})
	if err != nil {
		t.Fatal(err)
	}
	states := []cstate{
		{occ: -1},
		{phase: [maxApps]uint8{pWaiting, pSteady, pCooldown, pGranted}, val: [maxApps]uint8{3, 0, 17, 5},
			cnt: [maxApps]uint8{1, 0, 2, 1}, occ: 3, cT: 2},
		{phase: [maxApps]uint8{pCooldown, pCooldown, pCooldown, pCooldown}, val: [maxApps]uint8{24, 24, 39, 49}, occ: -1},
	}
	for i, c := range states {
		var d cstate
		v.unpack(v.pack(&c), &d)
		if d != c {
			t.Fatalf("state %d round trip: %+v vs %+v", i, d, c)
		}
	}
}

func TestBoundFor(t *testing.T) {
	ps := []*switching.Profile{prof("A", 10, 2, 4, 20)}
	// Window = 10+4 = 14; ⌈14/20⌉+1 = 2.
	if b := BoundFor(ps); b != 2 {
		t.Fatalf("BoundFor = %d, want 2", b)
	}
}

func TestU64Set(t *testing.T) {
	s := newU64Set(4)
	keys := []uint64{1, 2, 3, 0xFFFFFFFFFFFFFFFF, 42, 1 << 40}
	for _, k := range keys {
		if !s.add(k) {
			t.Fatalf("fresh add(%d) returned false", k)
		}
	}
	for _, k := range keys {
		if s.add(k) {
			t.Fatalf("duplicate add(%d) returned true", k)
		}
		if !s.contains(k) {
			t.Fatalf("contains(%d) false", k)
		}
	}
	if s.contains(99) {
		t.Fatal("contains(99) true")
	}
	if s.len() != len(keys) {
		t.Fatalf("len=%d", s.len())
	}
	// Growth path: insert enough to trigger multiple rehashes.
	rng := rand.New(rand.NewSource(7))
	ref := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() | 1
		fresh := !ref[k]
		ref[k] = true
		if s.add(k) != fresh && !contains(keys, k) {
			t.Fatalf("add(%d) fresh mismatch", k)
		}
	}
	for k := range ref {
		if !s.contains(k) {
			t.Fatalf("lost key %d after growth", k)
		}
	}
}

func contains(ks []uint64, k uint64) bool {
	for _, v := range ks {
		if v == k {
			return true
		}
	}
	return false
}

func TestU64SetZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newU64Set(4).add(0)
}
