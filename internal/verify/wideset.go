package verify

// wideSet is the multi-word sibling of u64Set: an open-addressing hash set
// of wstate keys. The all-zero wstate is the empty-slot sentinel; the wide
// encoding can never produce it (the header word is nonzero whenever the
// slot is idle, and an occupant's lane is nonzero otherwise).
type wideSet struct {
	slots []wstate
	n     int
	mask  uint64
}

// newWideSet creates a set with the given initial capacity (rounded up to a
// power of two).
func newWideSet(capacity int) *wideSet {
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &wideSet{slots: make([]wstate, size), mask: uint64(size - 1)}
}

// add inserts k and reports whether it was absent.
func (s *wideSet) add(k wstate) bool {
	return s.addHashed(k, hashW(k))
}

// addHashed is add with the key's hash precomputed (see u64Set.addHashed).
func (s *wideSet) addHashed(k wstate, h uint64) bool {
	if k == (wstate{}) {
		panic("wideSet: zero key is reserved")
	}
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	i := h & s.mask
	for {
		v := s.slots[i]
		if v == (wstate{}) {
			s.slots[i] = k
			s.n++
			return true
		}
		if v == k {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// contains reports membership.
func (s *wideSet) contains(k wstate) bool {
	i := hashW(k) & s.mask
	for {
		v := s.slots[i]
		if v == (wstate{}) {
			return false
		}
		if v == k {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// len returns the number of stored keys.
func (s *wideSet) len() int { return s.n }

// reset empties the set in place, keeping the table at its grown size (see
// u64Set.reset).
func (s *wideSet) reset() {
	clear(s.slots)
	s.n = 0
}

// reserve grows the table — in a single rehash — until it can absorb n more
// keys without exceeding the load factor (see u64Set.reserve).
func (s *wideSet) reserve(n int) {
	need := s.n + n
	if 4*need <= 3*len(s.slots) {
		return
	}
	size := len(s.slots)
	for 4*need > 3*size {
		size <<= 1
	}
	s.growTo(size)
}

func (s *wideSet) grow() { s.growTo(2 * len(s.slots)) }

func (s *wideSet) growTo(size int) {
	old := s.slots
	s.slots = make([]wstate, size)
	s.mask = uint64(len(s.slots) - 1)
	s.n = 0
	for _, v := range old {
		if v != (wstate{}) {
			i := hashW(v) & s.mask
			for s.slots[i] != (wstate{}) {
				i = (i + 1) & s.mask
			}
			s.slots[i] = v
			s.n++
		}
	}
}
