package verify

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedSetConcurrentAddHashedExact hammers addHashed from many
// goroutines inserting overlapping key ranges and asserts exact
// cardinality: every distinct key is admitted exactly once (the summed
// fresh count equals the distinct count equals len), on both encodings.
// This is the correctness contract the mesh workers' lane pools lean on —
// a lost or double admission would corrupt the distributed state counts.
func TestShardedSetConcurrentAddHashedExact(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
		distinct   = 5000
	)
	t.Run("narrow", func(t *testing.T) {
		s := newShardedU64Set(64) // deliberately small: grows under contention
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := uint64(1 + (i+g*7919)%distinct) // nonzero, overlapping across goroutines
					if s.addHashed(k, hashU64(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := s.len(); got != distinct {
			t.Fatalf("len = %d after concurrent adds, want %d", got, distinct)
		}
		if got := int(fresh.Load()); got != distinct {
			t.Fatalf("%d fresh admissions, want exactly %d", got, distinct)
		}
		for k := uint64(1); k <= distinct; k++ {
			if !s.contains(k) {
				t.Fatalf("key %d lost", k)
			}
		}
	})
	t.Run("wide", func(t *testing.T) {
		s := newShardedWideSet(64)
		key := func(i int) wstate {
			k := uint64(i)
			return wstate{k, k * 0x9e3779b97f4a7c15, ^k, 1} // word 3 keeps the zero sentinel free
		}
		var fresh atomic.Int64
		var wg sync.WaitGroup
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					k := key(1 + (i+g*7919)%distinct)
					if s.addHashed(k, hashW(k)) {
						fresh.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := s.len(); got != distinct {
			t.Fatalf("len = %d after concurrent adds, want %d", got, distinct)
		}
		if got := int(fresh.Load()); got != distinct {
			t.Fatalf("%d fresh admissions, want exactly %d", got, distinct)
		}
		for i := 1; i <= distinct; i++ {
			if !s.contains(key(i)) {
				t.Fatalf("key %d lost", i)
			}
		}
	})
}
