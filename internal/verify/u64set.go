package verify

// u64Set is an open-addressing hash set of uint64 keys tuned for the
// verifier's packed states. Zero is reserved as the empty-slot sentinel;
// the packed encoding can never produce 0 (the idle-slot occupant field is
// 0xF), so no remapping is needed.
type u64Set struct {
	slots []uint64
	n     int
	mask  uint64
}

// newU64Set creates a set with the given initial capacity (rounded up to a
// power of two).
func newU64Set(capacity int) *u64Set {
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &u64Set{slots: make([]uint64, size), mask: uint64(size - 1)}
}

// hash mixes the key (splitmix64 finalizer).
func hashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add inserts k and reports whether it was absent.
func (s *u64Set) add(k uint64) bool {
	return s.addHashed(k, hashU64(k))
}

// addHashed is add with the key's hash precomputed — search drivers that
// already hashed a state for shard routing skip the second mix.
func (s *u64Set) addHashed(k, h uint64) bool {
	if k == 0 {
		panic("u64Set: zero key is reserved")
	}
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	i := h & s.mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = k
			s.n++
			return true
		}
		if v == k {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// contains reports membership.
func (s *u64Set) contains(k uint64) bool {
	i := hashU64(k) & s.mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == k {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// len returns the number of stored keys.
func (s *u64Set) len() int { return s.n }

// reset empties the set in place, keeping the table at its grown size: a
// standing worker serving repeated runs clears instead of reallocating.
func (s *u64Set) reset() {
	clear(s.slots)
	s.n = 0
}

// reserve grows the table — in a single rehash — until it can absorb n more
// keys without exceeding the load factor. The BFS drivers call it with the
// expected fanout of the coming level, so inserts inside a level never
// rehash.
func (s *u64Set) reserve(n int) {
	need := s.n + n
	if 4*need <= 3*len(s.slots) {
		return
	}
	size := len(s.slots)
	for 4*need > 3*size {
		size <<= 1
	}
	s.growTo(size)
}

func (s *u64Set) grow() { s.growTo(2 * len(s.slots)) }

func (s *u64Set) growTo(size int) {
	old := s.slots
	s.slots = make([]uint64, size)
	s.mask = uint64(len(s.slots) - 1)
	s.n = 0
	for _, v := range old {
		if v != 0 {
			i := hashU64(v) & s.mask
			for s.slots[i] != 0 {
				i = (i + 1) & s.mask
			}
			s.slots[i] = v
			s.n++
		}
	}
}
