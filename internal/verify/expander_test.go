package verify

import (
	"sort"
	"testing"

	"tightcps/internal/switching"
)

// TestExpanderMatchesInternalSuccessors pins the seam to the internal
// search: the exported Successors must produce exactly the packed states
// the narrow path's successors() produces, embedded in word 0.
func TestExpanderMatchesInternalSuccessors(t *testing.T) {
	ps := []*switching.Profile{prof("A", 2, 2, 3, 15), prof("B", 6, 2, 4, 25), prof("C", 9, 3, 5, 30)}
	v, err := New(ps, Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	e := v.Expander()
	if e.Wide() || e.StateWords() != 1 {
		t.Fatalf("narrow triple reported wide=%v words=%d", e.Wide(), e.StateWords())
	}
	init := v.initial()
	if e.Initial() != (PackedState{init}) {
		t.Fatalf("Initial() = %v, want word0 %d", e.Initial(), init)
	}
	var sc expandScratch
	want, _, viol := v.successors(init, &sc, nil, nil)
	if viol >= 0 {
		t.Fatal("initial state violated")
	}
	got, app := e.Successors(PackedState{init}, nil)
	if app != -1 {
		t.Fatalf("Successors reported violator %d", app)
	}
	if len(got) != len(want) {
		t.Fatalf("%d successors via the seam, %d internally", len(got), len(want))
	}
	gw := make([]uint64, len(got))
	for i, s := range got {
		if s[1]|s[2]|s[3] != 0 {
			t.Fatalf("narrow successor %v has nonzero high words", s)
		}
		gw[i] = s[0]
	}
	sort.Slice(gw, func(a, b int) bool { return gw[a] < gw[b] })
	ww := append([]uint64(nil), want...)
	sort.Slice(ww, func(a, b int) bool { return ww[a] < ww[b] })
	for i := range ww {
		if gw[i] != ww[i] {
			t.Fatalf("successor sets differ at %d: %d vs %d", i, gw[i], ww[i])
		}
	}
}

// TestExpanderViolationSurfaces: the seam reports the same violating app
// the internal expansion finds.
func TestExpanderViolationSurfaces(t *testing.T) {
	ps := []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}
	v, err := New(ps, Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	e := v.Expander()
	// Walk until a violation: BFS over the seam only.
	seen := e.NewSet(64)
	frontier := []PackedState{e.Initial()}
	seen.Add(frontier[0])
	for len(frontier) > 0 {
		var next []PackedState
		for _, s := range frontier {
			succ, app := e.Successors(s, nil)
			if app >= 0 {
				return // violation surfaced, as expected for the overload pair
			}
			for _, ns := range succ {
				if seen.Add(ns) {
					next = append(next, ns)
				}
			}
		}
		frontier = next
	}
	t.Fatal("overloaded pair never violated through the seam")
}

// TestExpanderBatchRoundTrip covers the wire codec on both encodings,
// including the stride-mismatch error.
func TestExpanderBatchRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		ps   []*switching.Profile
		wide bool
	}{
		{"narrow", fleet(3, 5, 2, 4, 20), false},
		{"wide", fleet(7, 6, 1, 2, 10), true},
	} {
		e, err := NewExpander(tc.ps, Config{NondetTies: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Wide() != tc.wide {
			t.Fatalf("%s: wide=%v", tc.name, e.Wide())
		}
		states, app := e.Successors(e.Initial(), nil)
		if app >= 0 {
			t.Fatalf("%s: initial expansion violated", tc.name)
		}
		var b []byte
		for _, s := range states {
			b = e.AppendState(b, s)
		}
		if len(b) != len(states)*8*e.StateWords() {
			t.Fatalf("%s: batch is %d bytes for %d states of %d words", tc.name, len(b), len(states), e.StateWords())
		}
		back, err := e.DecodeStates(b, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if len(back) != len(states) {
			t.Fatalf("%s: %d states decoded, want %d", tc.name, len(back), len(states))
		}
		for i := range back {
			if back[i] != states[i] {
				t.Fatalf("%s: state %d round trip: %v vs %v", tc.name, i, back[i], states[i])
			}
		}
		if _, err := e.DecodeStates(b[:len(b)-1], nil); err == nil {
			t.Fatalf("%s: truncated batch decoded without error", tc.name)
		}
	}
}

// TestSuccessorsHashedIntoMatches pins the batched-hashing expansion
// path: on both encodings it must produce exactly SuccessorsInto's
// states in the same order, each paired with its Expander.Hash — the
// "hashed exactly once" contract of the mesh workers' hot path — and
// surface violations with out unchanged, like SuccessorsInto.
func TestSuccessorsHashedIntoMatches(t *testing.T) {
	for _, tc := range []struct {
		name string
		ps   []*switching.Profile
	}{
		{"narrow", fleet(3, 5, 2, 4, 20)},
		{"wide", fleet(7, 6, 1, 2, 10)},
	} {
		e, err := NewExpander(tc.ps, Config{NondetTies: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sc, hsc := e.NewScratch(), e.NewScratch()
		var plain []PackedState
		var hashed []HashedState
		frontier := []PackedState{e.Initial()}
		seen := e.NewSet(64)
		seen.Add(frontier[0])
		for level := 0; level < 3 && len(frontier) > 0; level++ {
			var next []PackedState
			for _, s := range frontier {
				var appP, appH int
				plain, appP = e.SuccessorsInto(s, sc, plain[:0])
				hashed, appH = e.SuccessorsHashedInto(s, hsc, hashed[:0])
				if appP != appH {
					t.Fatalf("%s: violator %d via hashed path, %d plain", tc.name, appH, appP)
				}
				if appP >= 0 {
					if len(hashed) != 0 {
						t.Fatalf("%s: violation appended %d hashed successors", tc.name, len(hashed))
					}
					continue
				}
				if len(hashed) != len(plain) {
					t.Fatalf("%s: %d hashed successors, %d plain", tc.name, len(hashed), len(plain))
				}
				for i := range plain {
					if hashed[i].S != plain[i] {
						t.Fatalf("%s: successor %d: %v hashed, %v plain", tc.name, i, hashed[i].S, plain[i])
					}
					if hashed[i].H != e.Hash(plain[i]) {
						t.Fatalf("%s: successor %d: carried hash %#x, Hash says %#x", tc.name, i, hashed[i].H, e.Hash(plain[i]))
					}
				}
				for _, ns := range plain {
					if seen.Add(ns) {
						next = append(next, ns)
					}
				}
			}
			frontier = next
		}
	}
}

// TestLessStateMatchesEncodings: the exported order must coincide with the
// raw uint64 order on narrow embeddings and lessW on wide states.
func TestLessStateMatchesEncodings(t *testing.T) {
	if !LessState(PackedState{1}, PackedState{2}) || LessState(PackedState{2}, PackedState{1}) {
		t.Fatal("narrow embedding order broken")
	}
	a := PackedState{1, 9, 0, 0}
	b := PackedState{2, 0, 0, 0}
	if !LessState(a, b) || LessState(b, a) {
		t.Fatal("word-0-most-significant order broken")
	}
	if LessState(a, a) {
		t.Fatal("irreflexivity broken")
	}
	if lessW(wstate{3, 4, 5, 6}, wstate{3, 4, 5, 5}) != LessState(PackedState{3, 4, 5, 6}, PackedState{3, 4, 5, 5}) {
		t.Fatal("LessState disagrees with lessW")
	}
}
