package verify

import (
	"testing"

	"tightcps/internal/obs"
)

// The allocation gates of the zero-allocation expansion core: once a
// search goroutine's scratch has grown to the verifier's maximum fanout,
// expanding a state must not allocate at all, and a whole sequential
// verification must stay at O(1) amortized allocations per visited state
// (set growth and frontier doubling are the only remaining sources).
// Regressions here are what -cpuprofile/-memprofile on cmd/verifyslot and
// the cmd/bench trajectory exist to diagnose.

// collectLevels runs the first depth BFS levels through the expansion core
// and returns all frontier states encountered, warming sc and the buffers.
func collectLevels(v *Verifier, sc *expandScratch, depth int) (states []uint64, succBuf []uint64, choiceBuf []uint32) {
	visited := newU64Set(1 << 12)
	frontier := []uint64{v.initial()}
	visited.add(frontier[0])
	for d := 0; d < depth; d++ {
		var next []uint64
		for _, s := range frontier {
			states = append(states, s)
			var viol int
			succBuf, choiceBuf, viol = v.successors(s, sc, succBuf[:0], choiceBuf[:0])
			if viol >= 0 {
				continue
			}
			for _, ns := range succBuf {
				if visited.add(ns) {
					next = append(next, ns)
				}
			}
		}
		frontier = next
	}
	return states, succBuf, choiceBuf
}

// TestExpansionCoreAllocFree gates the steady state of the core: expanding
// any warmed-up batch of states through a scratch performs zero
// allocations, on the narrow encoding, the wide encoding, and the symmetry
// quotient.
func TestExpansionCoreAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race CI job")
	}
	for _, tc := range []struct {
		name string
		n    int
		cfg  Config
	}{
		{"narrow", 4, Config{NondetTies: true}},
		{"narrow-bounded", 4, Config{NondetTies: true, MaxDisturbances: 2}},
		{"wide", 7, Config{NondetTies: true}},
		{"symmetry", 5, Config{NondetTies: true, SymmetryReduction: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, err := New(fleet(tc.n, 6, 1, 2, 10), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sc expandScratch
			if !v.wide {
				states, succBuf, choiceBuf := collectLevels(v, &sc, 3)
				allocs := testing.AllocsPerRun(10, func() {
					for _, s := range states {
						succBuf, choiceBuf, _ = v.successors(s, &sc, succBuf[:0], choiceBuf[:0])
					}
				})
				if allocs != 0 {
					t.Fatalf("narrow expansion of %d states allocates %.1f times per sweep, want 0", len(states), allocs)
				}
				return
			}
			// Wide path: warm on the initial state's closure, then re-expand.
			var states []wstate
			var succBuf []wstate
			var choiceBuf []uint32
			frontier := []wstate{v.initialWide()}
			for d := 0; d < 3; d++ {
				var next []wstate
				for _, s := range frontier {
					states = append(states, s)
					succBuf, choiceBuf, _ = v.successorsWide(s, &sc, succBuf[:0], choiceBuf[:0])
					next = append(next, succBuf...)
				}
				frontier = next
			}
			allocs := testing.AllocsPerRun(10, func() {
				for _, s := range states {
					succBuf, choiceBuf, _ = v.successorsWide(s, &sc, succBuf[:0], choiceBuf[:0])
				}
			})
			if allocs != 0 {
				t.Fatalf("wide expansion of %d states allocates %.1f times per sweep, want 0", len(states), allocs)
			}
		})
	}
}

// TestSequentialSearchAllocAmortized gates the whole sequential driver:
// verifying slot S2 (10201 states) end to end — verifier construction
// included — must cost far less than one allocation per hundred states.
// The PR-3 core allocated ~3 per state. The traced subtest runs the same
// search with the full telemetry plane attached (metrics are always on; a
// RunTrace adds the per-level spans) under the same budget: telemetry is
// level-granular, so it must not change the gate.
func TestSequentialSearchAllocAmortized(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race CI job")
	}
	ps := caseProfiles(t, "C6", "C2")
	for _, tc := range []struct {
		name   string
		traced bool
	}{
		{"plain", false},
		{"telemetry", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var states int
			allocs := testing.AllocsPerRun(2, func() {
				cfg := Config{NondetTies: true, Workers: 1}
				if tc.traced {
					tr := obs.NewTrace("")
					cfg.RunID, cfg.RunTrace = tr.RunID, tr
				}
				res, err := Slot(ps, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Schedulable {
					t.Fatal("S2 must verify")
				}
				states = res.States
			})
			if budget := float64(states)/100 + 100; allocs > budget {
				t.Fatalf("sequential S2 search (%d states, traced=%v) allocates %.0f times, budget %.0f (O(1) amortized per state)",
					states, tc.traced, allocs, budget)
			}
		})
	}
}

// TestExpanderSuccessorsIntoAllocFree pins the exported seam the
// distributed nodes drive: SuccessorsInto with an owned scratch and a
// recycled buffer is allocation-free too.
func TestExpanderSuccessorsIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race CI job")
	}
	e, err := NewExpander(fleet(4, 6, 1, 2, 10), Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := e.NewScratch()
	out, app := e.SuccessorsInto(e.Initial(), sc, nil)
	if app >= 0 {
		t.Fatal("initial expansion violated")
	}
	states := append([]PackedState(nil), out...)
	allocs := testing.AllocsPerRun(10, func() {
		for _, s := range states {
			out, _ = e.SuccessorsInto(s, sc, out[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("SuccessorsInto allocates %.1f times per sweep, want 0", allocs)
	}
}

// TestExpanderSuccessorsHashedIntoAllocFree pins the batched-hashing
// variant the mesh workers drive: hashing during the packing sweep must
// not reintroduce allocation on the steady-state expansion path.
func TestExpanderSuccessorsHashedIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race CI job")
	}
	e, err := NewExpander(fleet(4, 6, 1, 2, 10), Config{NondetTies: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := e.NewScratch()
	out, app := e.SuccessorsHashedInto(e.Initial(), sc, nil)
	if app >= 0 {
		t.Fatal("initial expansion violated")
	}
	states := make([]PackedState, len(out))
	for i := range out {
		states[i] = out[i].S
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, s := range states {
			out, _ = e.SuccessorsHashedInto(s, sc, out[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("SuccessorsHashedInto allocates %.1f times per sweep, want 0", allocs)
	}
}
