package verify

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tightcps/internal/switching"
)

// TestParallelMatchesSequential: on every combination — schedulable and not,
// exact and bounded — the sharded parallel BFS must return the sequential
// verdict, and on schedulable sets (exhaustive search) the exact same
// state/transition/depth counts.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name    string
		ps      []*switching.Profile
		bounded bool
	}{
		{"single", []*switching.Profile{prof("A", 5, 2, 4, 20)}, false},
		{"overload", []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}, false},
		{"loosePair", []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}, false},
		{"tight", []*switching.Profile{prof("A", 3, 4, 6, 30), prof("B", 3, 4, 6, 30)}, false},
		{"S2", caseProfiles(t, "C6", "C2"), false},
		{"S1prefix", caseProfiles(t, "C1", "C5", "C4"), false},
		{"rejected", caseProfiles(t, "C1", "C5", "C4", "C6"), false},
		{"S2bounded", caseProfiles(t, "C6", "C2"), true},
	}
	for _, tc := range cases {
		cfg := Config{NondetTies: true}
		if tc.bounded {
			cfg.MaxDisturbances = BoundFor(tc.ps)
		}
		cfg.Workers = 1
		seq, err := Slot(tc.ps, cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		var par [2]Result
		for wi, workers := range []int{2, 8} {
			cfg.Workers = workers
			p, err := Slot(tc.ps, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, workers, err)
			}
			par[wi] = p
			if p.Schedulable != seq.Schedulable {
				t.Errorf("%s: workers=%d schedulable=%v, sequential=%v",
					tc.name, workers, p.Schedulable, seq.Schedulable)
			}
			if seq.Schedulable {
				if p.States != seq.States || p.Transitions != seq.Transitions || p.Depth != seq.Depth {
					t.Errorf("%s: workers=%d counts (%d,%d,%d), sequential (%d,%d,%d)",
						tc.name, workers, p.States, p.Transitions, p.Depth,
						seq.States, seq.Transitions, seq.Depth)
				}
			}
		}
		// The parallel verdict and violator are deterministic across worker
		// counts (minimum violating packed state, independent of ordering).
		if !seq.Schedulable && par[0].Violator != par[1].Violator {
			t.Errorf("%s: violator differs across worker counts: %d vs %d",
				tc.name, par[0].Violator, par[1].Violator)
		}
	}
}

// TestParallelFullSlotS1 runs the paper's hardest verification in parallel
// and cross-checks the exhaustive counts against the sequential search.
func TestParallelFullSlotS1(t *testing.T) {
	if testing.Short() {
		t.Skip("full S1 state space twice")
	}
	ps := caseProfiles(t, "C1", "C5", "C4", "C3")
	seq, err := Slot(ps, Config{NondetTies: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Slot(ps, Config{NondetTies: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Schedulable || par.States != seq.States ||
		par.Transitions != seq.Transitions || par.Depth != seq.Depth {
		t.Fatalf("parallel %+v, sequential %+v", par, seq)
	}
}

// TestParallelMaxStatesAborts: the state cap also aborts the sharded search.
func TestParallelMaxStatesAborts(t *testing.T) {
	ps := caseProfiles(t, "C1", "C5", "C4", "C3")
	res, err := Slot(ps, Config{NondetTies: true, MaxStates: 1000, Workers: 4})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if res.States <= 1000 {
		t.Fatalf("aborted with only %d states", res.States)
	}
}

// TestShardedU64Set exercises the sharded set serially against a reference
// map and concurrently for add-once semantics.
func TestShardedU64Set(t *testing.T) {
	s := newShardedU64Set(64)
	rng := rand.New(rand.NewSource(11))
	ref := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() | 1
		if s.add(k) != !ref[k] {
			t.Fatalf("add(%d) freshness mismatch", k)
		}
		ref[k] = true
	}
	for k := range ref {
		if !s.contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	if s.len() != len(ref) {
		t.Fatalf("len=%d, want %d", s.len(), len(ref))
	}

	// Concurrently: every key claimed exactly once across goroutines.
	s = newShardedU64Set(64)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
	}
	var fresh atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				if s.add(k) {
					fresh.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	want := len(uniq(keys))
	if int(fresh.Load()) != want {
		t.Fatalf("fresh adds = %d, want %d", fresh.Load(), want)
	}
	if s.len() != want {
		t.Fatalf("len = %d, want %d", s.len(), want)
	}
}

func uniq(ks []uint64) map[uint64]bool {
	m := map[uint64]bool{}
	for _, k := range ks {
		m[k] = true
	}
	return m
}
