package verify

import "sync/atomic"

// WorkQueue hands out chunks of an index range [0, n) to a set of lanes with
// work stealing. Each lane owns a contiguous partition and claims chunks from
// its own cursor; a lane whose partition drains steals chunks from the victim
// with the most work remaining, so a skewed frontier (one hot shard, one hot
// bucket) no longer idles the other lanes the way a static split did.
//
// Ownership rules (see DESIGN.md §10): partitions are fixed for one Reset
// cycle; every claim — owner or thief — goes through the same atomic
// fetch-add on the partition's cursor, so a chunk is handed out exactly once
// and two lanes never hold overlapping ranges. Claims beyond the partition
// end are lost races, not errors: the cursor overshoots harmlessly (it is
// bounded by one chunk per racing lane) and the loser moves to another
// victim. The queue itself allocates only when the lane count first grows.
type WorkQueue struct {
	parts  []workPart
	lanes  int
	chunk  int64
	steals atomic.Int64
}

// workPart is one lane's partition. Padded so two lanes' cursors never share
// a cache line — the whole point is that an owner claiming from its own
// partition does not bounce a line that other owners are hammering.
type workPart struct {
	cur atomic.Int64
	end int64
	_   [48]byte
}

// Reset re-partitions [0, n) evenly across lanes with the given claim chunk
// size. Not safe concurrently with Next; the drivers call it between levels
// or batches, on the orchestrator, before lanes wake.
func (q *WorkQueue) Reset(n, lanes, chunk int) {
	if lanes < 1 {
		lanes = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	if cap(q.parts) < lanes {
		q.parts = make([]workPart, lanes)
	}
	q.parts = q.parts[:lanes]
	q.lanes = lanes
	q.chunk = int64(chunk)
	for i := range q.parts {
		lo := int64(i) * int64(n) / int64(lanes)
		hi := int64(i+1) * int64(n) / int64(lanes)
		q.parts[i].cur.Store(lo)
		q.parts[i].end = hi
	}
}

// Next claims the lane's next chunk, stealing from the busiest other lane
// once its own partition drains. ok=false means the whole range is claimed.
// Safe for concurrent use by distinct lanes.
func (q *WorkQueue) Next(lane int) (lo, hi int, ok bool) {
	p := &q.parts[lane]
	if c := p.cur.Add(q.chunk) - q.chunk; c < p.end {
		e := c + q.chunk
		if e > p.end {
			e = p.end
		}
		return int(c), int(e), true
	}
	for {
		victim, best := -1, int64(0)
		for i := range q.parts {
			if i == lane {
				continue
			}
			if left := q.parts[i].end - q.parts[i].cur.Load(); left > best {
				victim, best = i, left
			}
		}
		if victim < 0 {
			return 0, 0, false
		}
		v := &q.parts[victim]
		if c := v.cur.Add(q.chunk) - q.chunk; c < v.end {
			e := c + q.chunk
			if e > v.end {
				e = v.end
			}
			q.steals.Add(1)
			return int(c), int(e), true
		}
		// Lost the race to the victim's last chunk; rescan.
	}
}

// Steals returns the number of chunks claimed from a foreign partition since
// the queue was created. Read at level boundaries by the autotuner and the
// bench harness; monotone across Resets.
func (q *WorkQueue) Steals() int64 { return q.steals.Load() }
