package verify

// Engine telemetry. The registry handles live at package level — one
// registration at init, lock-free atomic updates after — and every update
// sits at run or level granularity, never per state: the expansion core's
// zero-allocation contract (alloc_test.go) and the ~80 allocs/op S1 gate
// hold with telemetry enabled because the hot loop is untouched.

import (
	"fmt"
	"sync"

	"tightcps/internal/obs"
)

var (
	obsRuns = obs.NewCounter("tightcps_verify_runs_total",
		"Completed verification runs (coordinator side: local searches and distributed runs both count once).")
	obsStates = obs.NewCounter("tightcps_verify_states_total",
		"States visited across completed verification runs.")
	obsTransitions = obs.NewCounter("tightcps_verify_transitions_total",
		"Transitions generated across completed verification runs.")
	obsLevels = obs.NewCounter("tightcps_verify_levels_total",
		"BFS levels expanded by local search drivers.")
	obsViolations = obs.NewCounter("tightcps_verify_violations_total",
		"Completed runs whose verdict was a deadline violation.")
	obsErrors = obs.NewCounter("tightcps_verify_errors_total",
		"Verification runs that ended in an error (budget exhaustion, encoding limits, backend failures).")
	obsActive = obs.NewGauge("tightcps_verify_active_runs",
		"Verification runs currently executing.")
	obsSetCASRetries = obs.NewCounter("tightcps_verify_set_cas_retries_total",
		"Lost CAS claims in the lock-free visited sets (lanes racing for the same slot).")
	obsSetProbeSteps = obs.NewCounter("tightcps_verify_set_probe_steps_total",
		"Open-addressing probe steps beyond the home slot in the lock-free visited sets.")
	obsSetOverflows = obs.NewCounter("tightcps_verify_set_overflow_keys_total",
		"Keys parked in a stripe's overflow map because a probe window saturated.")
	obsSteals = obs.NewCounter("tightcps_verify_lane_steals_total",
		"Frontier chunks claimed from a foreign lane's partition by the work-stealing queues.")
	obsAutoLanes = obs.NewGauge("tightcps_verify_autotune_lanes",
		"Active lane count last chosen by the contention-aware autotuner (workers=0 runs).")
	obsProbeLen = obs.NewHistogram("tightcps_verify_set_probe_len",
		"Mean probe steps per visited-set add, observed once per run.",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8})
	obsLaneOccupancy = obs.NewHistogram("tightcps_verify_lane_occupancy",
		"Fraction of the lane pool the autotuner kept active, observed per adjustment.",
		[]float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1})
)

// ContentionStats is the cumulative contention ledger of the lock-free
// visited sets and work-stealing queues, as folded into the obs counters at
// run teardown. The bench harness snapshots it around a measured run to
// report per-run deltas in BENCH_verify.json's lane_scaling rows.
type ContentionStats struct {
	CASRetries uint64
	ProbeSteps uint64
	Overflows  uint64
	Steals     uint64
}

// Contention returns the process-wide cumulative contention counters.
func Contention() ContentionStats {
	return ContentionStats{
		CASRetries: obsSetCASRetries.Value(),
		ProbeSteps: obsSetProbeSteps.Value(),
		Overflows:  obsSetOverflows.Value(),
		Steals:     obsSteals.Value(),
	}
}

// flushContention folds one run's visited-set ledger and steal count into
// the obs counters — called at run teardown, never per state or per level.
func flushContention(set SetStats, adds int64, steals int64) {
	if set.Probes > 0 {
		obsSetProbeSteps.Add(uint64(set.Probes))
	}
	if set.Retries > 0 {
		obsSetCASRetries.Add(uint64(set.Retries))
	}
	if set.Overflows > 0 {
		obsSetOverflows.Add(uint64(set.Overflows))
	}
	if steals > 0 {
		obsSteals.Add(uint64(steals))
	}
	if adds > 0 {
		obsProbeLen.Observe(float64(set.Probes) / float64(adds))
	}
}

// FlushContention is flushContention for the distributed workers: they own
// standing visited sets and work queues, so they fold ledger *deltas* into
// the obs counters at session teardown.
func FlushContention(set SetStats, adds int64, steals int64) {
	flushContention(set, adds, steals)
}

// linkCounters are the labeled wire-volume handles of one directed mesh
// link. They are cached in wireCounters below because the registry lookup
// renders labels (and allocates) on every call: a 4-node mesh has 12
// directed links, and re-registering them per run made the mesh's per-op
// allocations grow with cluster size — exactly what the bench alloc-trend
// gate exists to catch. With the cache, repeat runs on a standing cluster
// touch only a map read and two atomics per link.
type linkCounters struct {
	bytes  *obs.Counter
	states *obs.Counter
}

var (
	linkMu     sync.Mutex
	linkSeries = map[uint64]linkCounters{}
)

// wireCounters finds (or registers once) the counter handles for the
// from→to link.
func wireCounters(from, to int) linkCounters {
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	linkMu.Lock()
	defer linkMu.Unlock()
	c, ok := linkSeries[key]
	if !ok {
		lbl := fmt.Sprintf("%d->%d", from, to)
		c = linkCounters{
			bytes: obs.NewCounter("tightcps_verify_wire_bytes_total",
				"Bytes shipped over each directed worker-to-worker mesh link (coordinator view).",
				"link", lbl),
			states: obs.NewCounter("tightcps_verify_wire_states_total",
				"States shipped over each directed worker-to-worker mesh link (coordinator view).",
				"link", lbl),
		}
		linkSeries[key] = c
	}
	return c
}

// recordRun folds one completed run into the engine metrics and finishes
// the run trace, if one rides the config. Runs once per Run call — the
// only allocations (first-sighting link registration, trace finalization)
// are per-run and only on distributed/traced runs.
func (v *Verifier) recordRun(res Result, err error) {
	if err != nil {
		obsErrors.Inc()
		return
	}
	obsRuns.Inc()
	obsStates.Add(uint64(res.States))
	obsTransitions.Add(uint64(res.Transitions))
	if !res.Schedulable {
		obsViolations.Inc()
	}
	for _, l := range res.Wire.Links {
		c := wireCounters(l.From, l.To)
		c.bytes.Add(uint64(l.Bytes))
		c.states.Add(uint64(l.States))
	}
	tr := v.cfg.RunTrace
	if tr == nil {
		return
	}
	tr.SetWire(res.Wire.RoutedStates, res.Wire.FilteredStates, res.Wire.RawBytes, res.Wire.WireBytes)
	for _, l := range res.Wire.Links {
		tr.AddLink(l.From, l.To, l.States, l.Bytes)
	}
	names := make([]string, len(v.profs))
	for i, p := range v.profs {
		names[i] = p.Name
	}
	violator := ""
	if !res.Schedulable && res.Violator >= 0 && res.Violator < len(names) {
		violator = names[res.Violator]
	}
	tr.SetSlot(names, violator)
	tr.SetResult(res.Schedulable, res.States, res.Transitions, res.Depth)
}
