package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the ≤-bound (Prometheus le) bucketing
// convention: a value exactly on a bound lands in that bound's bucket, a
// value above every bound lands in +Inf, and the snapshot's cumulative
// counts all end at Count.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "test", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 6, 1e9} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	if want := 0.5 + 1 + 1.0000001 + 2 + 5 + 6 + 1e9; snap.Sum != want {
		t.Fatalf("sum = %v, want %v", snap.Sum, want)
	}
	// Cumulative: le=1 gets {0.5, 1}; le=2 adds {1.0000001, 2}; le=5 adds
	// {5}; +Inf adds {6, 1e9}.
	wantCum := []uint64{2, 4, 5, 7}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%v): cumulative %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[len(snap.Buckets)-1].LE, 1) {
		t.Error("last bucket bound must be +Inf")
	}
}

// TestWritePrometheus checks the exposition text: HELP/TYPE lines per
// family, label rendering with escaping, cumulative histogram buckets with
// le labels, and the _sum/_count pair.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "Counts\nthings with a \\ in the help.").Add(3)
	r.Counter("t_labeled_total", "Labeled.", "link", `0->1`).Add(7)
	r.Counter("t_labeled_total", "Labeled.", "link", "quote\"back\\slash\nnl").Inc()
	r.Gauge("t_depth", "Depth.").Set(-2)
	r.GaugeFunc("t_fn", "Func gauge.", func() float64 { return 2.5 })
	h := r.Histogram("t_seconds", "Latency.", []float64{0.1, 1})
	// Dyadic values: the CAS-accumulated sum must format exactly.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(32)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP t_total Counts\\nthings with a \\\\ in the help.\n",
		"# TYPE t_total counter\n",
		"t_total 3\n",
		`t_labeled_total{link="0->1"} 7` + "\n",
		`t_labeled_total{link="quote\"back\\slash\nnl"} 1` + "\n",
		"# TYPE t_depth gauge\n",
		"t_depth -2\n",
		"t_fn 2.5\n",
		"# TYPE t_seconds histogram\n",
		`t_seconds_bucket{le="0.1"} 1` + "\n",
		`t_seconds_bucket{le="1"} 2` + "\n",
		`t_seconds_bucket{le="+Inf"} 3` + "\n",
		"t_seconds_sum 32.5625\n",
		"t_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
}

// TestRegistrationIdempotent: the same name+labels returns the same handle
// (lazy per-link registration relies on this), distinct label values make
// distinct series, and GaugeFunc re-registration replaces the function.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "help", "k", "v")
	b := r.Counter("t_total", "help", "k", "v")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("t_total", "help", "k", "w"); c == a {
		t.Fatal("distinct label values must make distinct series")
	}
	r.GaugeFunc("t_fn", "help", func() float64 { return 1 })
	r.GaugeFunc("t_fn", "help", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t_fn 2\n") {
		t.Fatalf("re-registered gauge func must win, got:\n%s", sb.String())
	}
}

// TestConcurrentUpdates hammers one counter, one striped counter and one
// histogram from many goroutines (run under -race in CI) and checks the
// totals are exact — the hot-path updates must be atomic, not just fast.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "c")
	sc := r.Striped("t_striped_total", "s")
	h := r.Histogram("t_seconds", "h", DefBuckets)
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				sc.AddLane(lane, 2)
				h.Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := sc.Value(); got != 2*workers*perWorker {
		t.Errorf("striped = %d, want %d", got, 2*workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), float64(workers*perWorker)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestHotPathAllocFree gates the telemetry hot path itself: once the
// handles exist, counter/gauge/histogram updates are 0 allocs/op — the
// engine's ~80 allocs/op budget has no room for metrics.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race CI job")
	}
	r := NewRegistry()
	c := r.Counter("t_total", "c")
	sc := r.Striped("t_striped_total", "s")
	g := r.Gauge("t_depth", "g")
	h := r.Histogram("t_seconds", "h", DefBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		sc.AddLane(5, 7)
		g.Add(1)
		g.Set(-4)
		h.Observe(0.25)
		h.Observe(1e6) // overflow bucket
	})
	if allocs != 0 {
		t.Fatalf("hot-path updates allocate %.1f times per run, want 0", allocs)
	}
	// Re-looking-up an existing handle must not allocate new state either
	// (it may allocate for the label signature; that's registration, not
	// the hot path — so only the handle identity is asserted here).
	if r.Counter("t_total", "c") != c {
		t.Fatal("lookup must return the registered handle")
	}
}
