//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build; the
// allocation gates skip under it (instrumentation allocates on its own).
const raceEnabled = true
