package obs

import (
	"path/filepath"
	"testing"
)

// TestAddLevelMerge: levels arrive out of order and in fragments (the mesh
// folds per-node cumulative counts), and AddLevel must grow the span list
// densely and merge fragments of the same level.
func TestAddLevelMerge(t *testing.T) {
	tr := NewTrace("")
	tr.AddLevel(2, 5, 7)
	tr.AddLevel(0, 1, 0)
	tr.AddLevel(2, 3, 2) // second node's share of level 2
	tr.AddLevel(1, 4, 6)
	if len(tr.Levels) != 3 {
		t.Fatalf("levels = %d, want 3 dense spans", len(tr.Levels))
	}
	for i, want := range []struct{ states, trans int }{{1, 0}, {4, 6}, {8, 9}} {
		l := tr.Levels[i]
		if l.Level != i || l.States != want.states || l.Transitions != want.trans {
			t.Errorf("level %d = %+v, want states=%d transitions=%d", i, l, want.states, want.trans)
		}
	}
	if got := tr.LevelStates(); got != 13 {
		t.Errorf("LevelStates = %d, want 13", got)
	}
}

// TestTraceNilSafe: every mutator on a nil trace is a no-op — the engine
// calls them unconditionally, traced or not.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddLevel(0, 1, 1)
	tr.AddNode(0, 1, 1, 0, 0)
	tr.AddLink(0, 1, 2, 3)
	tr.SetWire(1, 2, 3, 4)
	tr.SetBackend("mesh", 2, 4)
	tr.SetEpochs(9)
	tr.SetResult(true, 1, 1, 1)
	tr.SetSlot([]string{"C1"}, "")
	if tr.LevelStates() != 0 {
		t.Fatal("nil trace must report 0 level states")
	}
}

// TestTraceRoundTrip: WriteFile → ReadTraceFile preserves the spans, and
// the run ID survives (the file is the cross-process join key).
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace("deadbeef00000000")
	tr.SetSlot([]string{"C1", "C5"}, "")
	tr.SetBackend("mesh", 2, 1)
	tr.AddLevel(0, 1, 0)
	tr.AddLevel(1, 3, 4)
	tr.AddNode(0, 2, 1, 5, 6)
	tr.AddLink(0, 1, 10, 80)
	tr.SetWire(10, 2, 80, 40)
	tr.SetEpochs(3)
	tr.SetResult(true, 4, 4, 1)

	path := filepath.Join(t.TempDir(), "run.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != "deadbeef00000000" {
		t.Errorf("run ID = %q", got.RunID)
	}
	if got.Backend != "mesh" || got.Nodes != 2 || got.Epochs != 3 {
		t.Errorf("backend round-trip = %q/%d/%d", got.Backend, got.Nodes, got.Epochs)
	}
	if got.LevelStates() != 4 || got.States != 4 || !got.Schedulable {
		t.Errorf("result round-trip: levels=%d states=%d sched=%v",
			got.LevelStates(), got.States, got.Schedulable)
	}
	if len(got.Links) != 1 || got.Links[0].Bytes != 80 {
		t.Errorf("links round-trip = %+v", got.Links)
	}
	if got.Wire == nil || got.Wire.WireBytes != 40 {
		t.Errorf("wire round-trip = %+v", got.Wire)
	}
	if got.ElapsedSec <= 0 || got.StatesPerSec <= 0 {
		t.Errorf("timing not stamped: elapsed=%v rate=%v", got.ElapsedSec, got.StatesPerSec)
	}
}

// TestNewRunID: IDs are 16 hex chars and distinct.
func TestNewRunID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if len(id) != 16 {
			t.Fatalf("run ID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("run ID %q repeated", id)
		}
		seen[id] = true
	}
}
