// Package obs is the stack's telemetry plane: a dependency-free metrics
// registry with Prometheus-style text exposition, and per-run traces that
// follow a verification from the admission boundary through the engine
// and the distributed mesh.
//
// The registry serves the hot paths of internal/verify and
// internal/dverify, so its update operations — Counter.Add,
// Gauge.Set/Add, Histogram.Observe, StripedCounter.AddLane — are
// lock-free atomics and allocation-free: the S1 sequential search holds
// an ~80 allocs/op gate with telemetry enabled, which no map lookup or
// label rendering on the update path would survive. All allocation
// happens at registration: a metric handle is created (or found) once,
// with its label set pre-rendered into the series line, and updates touch
// only the handle's atomics. StripedCounter spreads one logical counter
// over cache-line-padded stripes for lane pools that would otherwise
// contend on a single word.
//
// Exposition is the Prometheus text format (HELP/TYPE lines, escaped
// label values, cumulative histogram buckets) via Registry.WritePrometheus
// or the /metricsz handler; Snapshot/PublishExpvar bridge the same data
// into expvar for tooling that already scrapes /debug/vars.
//
// Run traces (trace.go) are the second half of the plane: obs.Trace
// records per-level spans, per-node and per-link breakdowns of one
// verification run under a run ID minted at the admission boundary, and
// serializes to structured JSON (log/slog or a -tracefile report).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family. Exactly one of the value
// holders is non-nil, matching the family's kind; all are set under the
// registry lock when the series is created. gfn is atomic because
// GaugeFunc re-registration replaces it while exposition may be reading.
type series struct {
	labels string // pre-rendered `key="val",...` (no braces), "" when unlabeled
	ctr    *Counter
	sctr   *StripedCounter
	gauge  *Gauge
	gfn    atomic.Pointer[func() float64]
	hist   *Histogram
}

// family is one metric name with its help text, type and series set.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram bucket upper bounds (ascending, +Inf implied)
	series []*series // insertion-ordered for stable exposition
	bySig  map[string]*series
}

// Registry holds metric families and renders them. Registration takes the
// registry lock and may allocate; handles returned from it update without
// either. The zero value is not usable — create with NewRegistry or use
// Default.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	expvar bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Default is the process-wide registry every package-level constructor
// registers on; /metricsz endpoints serve it.
var Default = NewRegistry()

// DefBuckets are the default latency histogram bounds, in seconds, spanning
// sub-millisecond cache hits to minute-long distributed searches.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}

// labelSig renders k/v pairs into the canonical label body, sorted by key
// so the same label set always maps to the same series.
func labelSig(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the exposition format's HELP-text escaping.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup finds or creates the (family, series) slot for a registration.
// init fills a freshly created series' value holder; it runs under the
// registry lock, so a concurrent lookup of the same series never observes
// a handle-less series.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string, init func(f *family, s *series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bySig: map[string]*series{}}
		r.fams = append(r.fams, f)
		r.byName[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	sig := labelSig(kv)
	if s, ok := f.bySig[sig]; ok {
		return s
	}
	s := &series{labels: sig}
	init(f, s)
	f.bySig[sig] = s
	f.series = append(f.series, s)
	return s
}

// Counter is a monotonically increasing metric. Add and Inc are lock-free
// and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// stripeCount is the stripe fan-out of a StripedCounter: enough to spread
// a per-node lane pool, small enough that summing stays trivial.
const stripeCount = 16

// paddedU64 occupies a full cache line so adjacent stripes never
// false-share.
type paddedU64 struct {
	v atomic.Uint64
	_ [56]byte
}

// StripedCounter is a Counter whose updates spread over cache-line-padded
// stripes, for hot paths where several goroutines (mesh lanes, BFS
// workers) bump one logical counter concurrently.
type StripedCounter struct{ s [stripeCount]paddedU64 }

// AddLane adds n on the stripe selected by lane (any int; reduced mod the
// stripe count). Lock-free and allocation-free.
func (c *StripedCounter) AddLane(lane int, n uint64) {
	c.s[uint(lane)%stripeCount].v.Add(n)
}

// Add adds n on stripe 0 — for callers without a lane identity.
func (c *StripedCounter) Add(n uint64) { c.s[0].v.Add(n) }

// Value sums the stripes.
func (c *StripedCounter) Value() uint64 {
	var t uint64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: a binary search over the immutable bounds plus three
// atomic updates (bucket, count, CAS-accumulated float sum).
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v (sort.SearchFloat64s allocates
	// nothing, but an explicit loop avoids the func-value indirection).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count is the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum is the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram, JSON-shaped
// for /statsz.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative bucket of a snapshot; LE is the upper
// bound (math.Inf(1) for the overflow bucket, serialized as omitted).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"` // cumulative, Prometheus-style
}

// Snapshot copies the histogram's state. Buckets are cumulative and
// include the +Inf bucket (whose count equals Count).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
	}
	return s
}

// Counter registers (or finds) a counter series. Labels are key,value
// pairs constant for the handle's lifetime; the same name+labels always
// returns the same handle, so lazy per-link registration is idempotent.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(_ *family, s *series) {
		s.ctr = &Counter{}
	})
	if s.ctr == nil {
		panic(fmt.Sprintf("obs: counter %q already registered striped", name))
	}
	return s.ctr
}

// Striped registers (or finds) a striped counter series; it exposes like a
// plain counter.
func (r *Registry) Striped(name, help string, labels ...string) *StripedCounter {
	s := r.lookup(name, help, kindCounter, labels, func(_ *family, s *series) {
		s.sctr = &StripedCounter{}
	})
	if s.sctr == nil {
		panic(fmt.Sprintf("obs: counter %q already registered unstriped", name))
	}
	return s.sctr
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(_ *family, s *series) {
		s.gauge = &Gauge{}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q already registered as a func gauge", name))
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read at exposition time.
// Re-registering the same name+labels replaces the function — a restarted
// service rebinds the series to its live state instead of exposing a
// predecessor's.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.lookup(name, help, kindGauge, labels, func(_ *family, _ *series) {})
	s.gfn.Store(&fn)
}

// Histogram registers (or finds) a histogram series over the given bucket
// upper bounds (ascending; a +Inf bucket is implied). All series of one
// family share the first registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(f *family, s *series) {
		if f.bounds == nil {
			f.bounds = append([]float64(nil), bounds...)
		}
		s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	})
	return s.hist
}

// Package-level constructors on the Default registry.

// NewCounter registers a counter on Default.
func NewCounter(name, help string, labels ...string) *Counter {
	return Default.Counter(name, help, labels...)
}

// NewStriped registers a striped counter on Default.
func NewStriped(name, help string, labels ...string) *StripedCounter {
	return Default.Striped(name, help, labels...)
}

// NewGauge registers a gauge on Default.
func NewGauge(name, help string, labels ...string) *Gauge {
	return Default.Gauge(name, help, labels...)
}

// NewGaugeFunc registers a function gauge on Default.
func NewGaugeFunc(name, help string, fn func() float64, labels ...string) {
	Default.GaugeFunc(name, help, fn, labels...)
}

// NewHistogram registers a histogram on Default.
func NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return Default.Histogram(name, help, bounds, labels...)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		sers := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range sers {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	brace := func(extra string) string {
		switch {
		case s.labels == "" && extra == "":
			return ""
		case s.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + s.labels + "}"
		}
		return "{" + s.labels + "," + extra + "}"
	}
	switch {
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, brace(""), s.ctr.Value())
		return err
	case s.sctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, brace(""), s.sctr.Value())
		return err
	case s.gfn.Load() != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, brace(""), formatFloat((*s.gfn.Load())()))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, brace(""), s.gauge.Value())
		return err
	case s.hist != nil:
		snap := s.hist.Snapshot()
		for _, b := range snap.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, brace(`le="`+formatFloat(b.LE)+`"`), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, brace(""), formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, brace(""), snap.Count)
		return err
	}
	return nil
}

// Handler serves the registry at any path — mount it at GET /metricsz.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot flattens the registry into an expvar-friendly map: one entry
// per series keyed "name{labels}"; histograms map to their snapshots.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	out := map[string]any{}
	for _, f := range fams {
		r.mu.Lock()
		sers := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range sers {
			key := f.name
			if s.labels != "" {
				key += "{" + s.labels + "}"
			}
			switch {
			case s.ctr != nil:
				out[key] = s.ctr.Value()
			case s.sctr != nil:
				out[key] = s.sctr.Value()
			case s.gfn.Load() != nil:
				out[key] = (*s.gfn.Load())()
			case s.gauge != nil:
				out[key] = s.gauge.Value()
			case s.hist != nil:
				out[key] = s.hist.Snapshot()
			}
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name
// (/debug/vars). Safe to call once per registry; further calls are no-ops
// (expvar panics on duplicate names).
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	done := r.expvar
	r.expvar = true
	r.mu.Unlock()
	if done {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
