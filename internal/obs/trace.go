package obs

// Run traces: one obs.Trace follows a verification run end to end. The
// run ID is minted where the question enters the system — the admission
// service, or the CLI for direct runs — and rides verify.Config through
// the engine and dverify's Job onto every mesh worker, so one grep joins
// the front door's log line, the coordinator's epochs and each worker's
// session. The trace itself is coordinator-side: the engine's drivers
// record one LevelSpan per BFS level, the mesh coordinator folds each
// node's per-level fresh-commit counts, per-node totals and per-link wire
// counters in, and the finished trace serializes as structured JSON — a
// log/slog record, or a -tracefile report whose per-level state counts
// sum exactly to the run's visited-state total.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"
)

// runIDCounter disambiguates fallback run IDs minted in the same
// nanosecond when the random source is unavailable.
var runIDCounter struct {
	mu sync.Mutex
	n  uint64
}

// NewRunID mints a 16-hex-char run identifier.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		runIDCounter.mu.Lock()
		runIDCounter.n++
		n := runIDCounter.n
		runIDCounter.mu.Unlock()
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^n<<48)
	}
	return hex.EncodeToString(b[:])
}

// LevelSpan is the per-BFS-level record of a run: States counts the
// states whose BFS depth is exactly Level (every visited state lands in
// exactly one level, so the spans' States sum to the run total), and
// Transitions the successors generated expanding that level.
type LevelSpan struct {
	Level       int `json:"level"`
	States      int `json:"states"`
	Transitions int `json:"transitions,omitempty"`
}

// NodeSpan is one distributed worker's contribution.
type NodeSpan struct {
	Node     int `json:"node"`
	States   int `json:"states"`               // fresh states committed by this node
	MaxLevel int `json:"maxLevel"`             // deepest level it committed at
	Sent     int `json:"sentStates,omitempty"` // states shipped onto its mesh links
	Recv     int `json:"recvStates,omitempty"` // states drained from its mesh links
}

// LinkSpan is the wire volume of one directed worker↔worker link.
type LinkSpan struct {
	From   int `json:"from"`
	To     int `json:"to"`
	States int `json:"states"`
	Bytes  int `json:"bytes"`
}

// FailoverSpan records one recovery of a fault-tolerant distributed run:
// which nodes the coordinator declared dead, the checkpoint level the
// cluster rolled back to (-1 = full restart), and how many hash shards
// moved to new owners.
type FailoverSpan struct {
	Era    int   `json:"era"`  // post-recovery routing era
	Dead   []int `json:"dead"` // complete dead set after this recovery
	Cut    int   `json:"cut"`
	Shards int   `json:"shardsReassigned"`
}

// WireSpan summarizes a distributed run's frontier-exchange volume.
type WireSpan struct {
	RoutedStates   int `json:"routedStates"`
	FilteredStates int `json:"filteredStates"`
	RawBytes       int `json:"rawBytes"`
	WireBytes      int `json:"wireBytes"`
}

// Trace is the per-run record. Create with NewTrace, hand it to the
// engine via verify.Config, then Finish and serialize. All mutators are
// safe for concurrent use (distributed coordinators fold several nodes
// in); the exported fields are read directly only after the run.
type Trace struct {
	mu sync.Mutex

	RunID   string   `json:"runId"`
	Slot    []string `json:"slot,omitempty"`    // application names
	Backend string   `json:"backend,omitempty"` // "local", "mesh", "relay", ...
	Nodes   int      `json:"nodes,omitempty"`   // cluster size (0 = local)
	Workers int      `json:"workers,omitempty"` // expansion pool per node

	Schedulable bool   `json:"schedulable"`
	Violator    string `json:"violator,omitempty"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Depth       int    `json:"depth"`

	Levels    []LevelSpan    `json:"levels"`
	Cluster   []NodeSpan     `json:"cluster,omitempty"`
	Links     []LinkSpan     `json:"links,omitempty"`
	Failovers []FailoverSpan `json:"failovers,omitempty"`
	Wire      *WireSpan      `json:"wire,omitempty"`
	// Epochs counts the coordinator's poll rounds on a mesh run.
	Epochs int `json:"epochs,omitempty"`

	Started    time.Time `json:"started"`
	ElapsedSec float64   `json:"elapsedSec"`
	// StatesPerSec is the verification-proper throughput (States over the
	// elapsed time Finish measured).
	StatesPerSec float64 `json:"statesPerSec"`
}

// NewTrace starts a trace under the given run ID ("" mints one).
func NewTrace(runID string) *Trace {
	if runID == "" {
		runID = NewRunID()
	}
	return &Trace{RunID: runID, Started: time.Now()}
}

// AddLevel folds states/transitions into the span for the given level,
// growing the span table as needed. Called once per level per node, so
// amortized allocation stays far below the engine's O(1)-per-state gate.
func (t *Trace) AddLevel(level, states, transitions int) {
	if t == nil || level < 0 {
		return
	}
	t.mu.Lock()
	for len(t.Levels) <= level {
		t.Levels = append(t.Levels, LevelSpan{Level: len(t.Levels)})
	}
	t.Levels[level].States += states
	t.Levels[level].Transitions += transitions
	t.mu.Unlock()
}

// AddNode records one distributed worker's totals.
func (t *Trace) AddNode(node, states, maxLevel, sent, recv int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Cluster = append(t.Cluster, NodeSpan{Node: node, States: states, MaxLevel: maxLevel, Sent: sent, Recv: recv})
	t.mu.Unlock()
}

// AddLink records (accumulating by direction) one mesh link's volume.
func (t *Trace) AddLink(from, to, states, bytes int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.Links {
		if t.Links[i].From == from && t.Links[i].To == to {
			t.Links[i].States += states
			t.Links[i].Bytes += bytes
			t.mu.Unlock()
			return
		}
	}
	t.Links = append(t.Links, LinkSpan{From: from, To: to, States: states, Bytes: bytes})
	t.mu.Unlock()
}

// AddFailover records one recovery of a fault-tolerant distributed run.
func (t *Trace) AddFailover(era int, dead []int, cut, shards int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Failovers = append(t.Failovers, FailoverSpan{
		Era: era, Dead: append([]int(nil), dead...), Cut: cut, Shards: shards,
	})
	t.mu.Unlock()
}

// SetWire records the run's aggregate exchange volume.
func (t *Trace) SetWire(routed, filtered, rawBytes, wireBytes int) {
	if t == nil || rawBytes == 0 && routed == 0 && filtered == 0 {
		return
	}
	t.mu.Lock()
	t.Wire = &WireSpan{RoutedStates: routed, FilteredStates: filtered, RawBytes: rawBytes, WireBytes: wireBytes}
	t.mu.Unlock()
}

// SetBackend names the execution backend and cluster shape.
func (t *Trace) SetBackend(backend string, nodes, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Backend, t.Nodes, t.Workers = backend, nodes, workers
	t.mu.Unlock()
}

// SetEpochs records the mesh coordinator's poll-round count.
func (t *Trace) SetEpochs(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Epochs = n
	t.mu.Unlock()
}

// SetResult records the verdict and totals and stamps the elapsed time
// and throughput. Call once, when the run completes.
func (t *Trace) SetResult(schedulable bool, states, transitions, depth int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Schedulable, t.States, t.Transitions, t.Depth = schedulable, states, transitions, depth
	t.ElapsedSec = time.Since(t.Started).Seconds()
	if t.ElapsedSec > 0 {
		t.StatesPerSec = float64(states) / t.ElapsedSec
	}
	t.mu.Unlock()
}

// SetSlot records the application names (and optionally the violator).
func (t *Trace) SetSlot(names []string, violator string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Slot = append([]string(nil), names...)
	t.Violator = violator
	t.mu.Unlock()
}

// LevelStates sums the per-level state counts — for a completed exhaustive
// run it equals States (every visited state has exactly one BFS level).
func (t *Trace) LevelStates() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, l := range t.Levels {
		total += l.States
	}
	return total
}

// JSON serializes the trace (indented, trailing newline).
func (t *Trace) JSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the trace report to path.
func (t *Trace) WriteFile(path string) error {
	b, err := t.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadTraceFile loads a trace report written by WriteFile — cmd/bench
// consumes these to fold a run's per-level profile into its report.
func ReadTraceFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	if err := json.Unmarshal(b, t); err != nil {
		return nil, fmt.Errorf("obs: parsing trace %s: %w", path, err)
	}
	return t, nil
}

// Emit logs the trace summary as one structured record.
func (t *Trace) Emit(lg *slog.Logger, msg string) {
	if t == nil || lg == nil {
		return
	}
	t.mu.Lock()
	attrs := []any{
		"runId", t.RunID,
		"schedulable", t.Schedulable,
		"states", t.States,
		"transitions", t.Transitions,
		"depth", t.Depth,
		"levels", len(t.Levels),
		"elapsedSec", t.ElapsedSec,
		"statesPerSec", int64(t.StatesPerSec),
	}
	if t.Backend != "" {
		attrs = append(attrs, "backend", t.Backend, "nodes", t.Nodes)
	}
	if t.Wire != nil {
		attrs = append(attrs, "wireBytes", t.Wire.WireBytes, "routedStates", t.Wire.RoutedStates)
	}
	if t.Violator != "" {
		attrs = append(attrs, "violator", t.Violator)
	}
	t.mu.Unlock()
	lg.Info(msg, attrs...)
}
