package lti

import (
	"fmt"
	"math"

	"tightcps/internal/mat"
)

// Trajectory is the result of a closed- or open-loop simulation.
type Trajectory struct {
	H  float64     // sampling period (seconds)
	Y  []float64   // output sequence y[0..K]
	U  []float64   // applied input sequence u[0..K]
	X  [][]float64 // state sequence (optional, nil unless requested)
	K  int         // number of simulated steps
	X0 []float64   // initial state
}

// Times returns the time stamps t[k] = k·H for the trajectory samples.
func (tr *Trajectory) Times() []float64 {
	out := make([]float64, len(tr.Y))
	for i := range out {
		out[i] = float64(i) * tr.H
	}
	return out
}

// SettlingSamples returns the settling time in samples: the smallest k such
// that |y[j]| ≤ tol for all j ≥ k. It returns (len(Y), false) when the
// trajectory never settles within its horizon.
func (tr *Trajectory) SettlingSamples(tol float64) (int, bool) {
	return SettlingIndex(tr.Y, tol)
}

// SettlingIndex returns the smallest index k such that |y[j]| ≤ tol for all
// j ≥ k, scanning from the end. ok is false when even the last sample
// violates the tolerance.
func SettlingIndex(y []float64, tol float64) (int, bool) {
	if len(y) == 0 {
		return 0, false
	}
	k := len(y)
	for i := len(y) - 1; i >= 0; i-- {
		if math.Abs(y[i]) > tol {
			break
		}
		k = i
	}
	if k == len(y) {
		return k, false
	}
	return k, true
}

// InitialResponse simulates the autonomous closed-loop system
// x[k+1] = Acl·x[k], y = C·x from x0 for steps samples and returns the
// output sequence (length steps+1, including y[0]).
func InitialResponse(acl, c *mat.Matrix, x0 []float64, steps int, h float64) *Trajectory {
	y := make([]float64, steps+1)
	x := append([]float64(nil), x0...)
	for k := 0; k <= steps; k++ {
		y[k] = c.MulVec(x)[0]
		if k < steps {
			x = acl.MulVec(x)
		}
	}
	return &Trajectory{H: h, Y: y, K: steps, X0: append([]float64(nil), x0...)}
}

// Feedback is a state-feedback law u = −K·x (or −K·z for augmented states).
type Feedback struct {
	K *mat.Matrix // 1×n gain
}

// NewFeedback wraps a gain row vector.
func NewFeedback(k []float64) Feedback {
	return Feedback{K: mat.RowVec(k)}
}

// U computes the control input u = −K·x.
func (f Feedback) U(x []float64) float64 {
	return -f.K.MulVec(x)[0]
}

// Order returns the gain's state dimension.
func (f Feedback) Order() int { return f.K.Cols() }

// ClosedLoop returns Φ − Γ·K for a plant and a gain of matching order.
func ClosedLoop(s *System, f Feedback) *mat.Matrix {
	if f.Order() != s.Order() {
		panic(ErrShape)
	}
	return mat.Sub(s.Phi, mat.Mul(s.Gamma, f.K))
}

// SimulateFeedback simulates the plant under instantaneous state feedback
// (mode MT: u[k] = −K·x[k] applied at t[k]) from x0 for steps samples.
func SimulateFeedback(s *System, f Feedback, x0 []float64, steps int) *Trajectory {
	x := append([]float64(nil), x0...)
	y := make([]float64, steps+1)
	u := make([]float64, steps+1)
	for k := 0; k <= steps; k++ {
		y[k] = s.Output(x)
		u[k] = f.U(x)
		if k < steps {
			x = s.Step(x, u[k])
		}
	}
	return &Trajectory{H: s.H, Y: y, U: u, K: steps, X0: append([]float64(nil), x0...)}
}

// SimulateDelayedFeedback simulates the plant in mode ME (Eq. 4–5): the
// input applied at t[k] is the command computed at t[k−1]; the controller
// computes u[k] = −K·[x[k]; u[k−1]] with a gain of order n+1. uPrev0 is the
// input still in flight at k=0 (0 when starting from steady state).
func SimulateDelayedFeedback(s *System, f Feedback, x0 []float64, uPrev0 float64, steps int) *Trajectory {
	if f.Order() != s.Order()+1 {
		panic(ErrShape)
	}
	x := append([]float64(nil), x0...)
	uPrev := uPrev0
	y := make([]float64, steps+1)
	u := make([]float64, steps+1)
	z := make([]float64, s.Order()+1)
	for k := 0; k <= steps; k++ {
		y[k] = s.Output(x)
		u[k] = uPrev // applied input this sample
		copy(z, x)
		z[s.Order()] = uPrev
		cmd := f.U(z)
		if k < steps {
			x = s.Step(x, uPrev)
			uPrev = cmd
		}
	}
	return &Trajectory{H: s.H, Y: y, U: u, K: steps, X0: append([]float64(nil), x0...)}
}

// StepResponse simulates the open-loop response to a unit input step from
// the zero state for steps samples.
func StepResponse(s *System, steps int) *Trajectory {
	x := make([]float64, s.Order())
	y := make([]float64, steps+1)
	u := make([]float64, steps+1)
	for k := 0; k <= steps; k++ {
		y[k] = s.Output(x)
		u[k] = 1
		if k < steps {
			x = s.Step(x, 1)
		}
	}
	return &Trajectory{H: s.H, Y: y, U: u, K: steps, X0: make([]float64, s.Order())}
}

// DCGain returns the steady-state gain C·(I−Φ)⁻¹·Γ of a stable plant.
func DCGain(s *System) (float64, error) {
	n := s.Order()
	m := mat.Sub(mat.Identity(n), s.Phi)
	x, err := mat.SolveVec(m, s.Gamma.Col(0))
	if err != nil {
		return 0, fmt.Errorf("lti: DC gain undefined (pole at z=1): %w", err)
	}
	return s.C.MulVec(x)[0], nil
}
