// Package lti models discrete-time linear time-invariant (LTI) systems of
// the form used throughout the paper:
//
//	x[k+1] = Φ·x[k] + Γ·u[k],   y[k] = C·x[k]            (Eq. 1)
//
// together with the one-sample input-delay variant used for event-triggered
// communication:
//
//	x[k+1] = Φ·x[k] + Γ·u[k−1], y[k] = C·x[k]            (Eq. 4)
//
// It provides simulation, settling-time measurement, stability tests,
// controllability/observability analysis, and continuous-to-discrete
// conversion for building new plants.
package lti

import (
	"errors"
	"fmt"

	"tightcps/internal/mat"
)

// System is a discrete-time LTI plant x[k+1] = Phi·x[k] + Gamma·u[k],
// y[k] = C·x[k], sampled with period H seconds. Single-input single-output
// in this library (Gamma is n×1, C is 1×n), matching the paper's plants.
type System struct {
	Phi   *mat.Matrix // n×n state matrix
	Gamma *mat.Matrix // n×1 input matrix
	C     *mat.Matrix // 1×n output matrix
	H     float64     // sampling period in seconds
}

// ErrShape is returned when the system matrices have inconsistent shapes.
var ErrShape = errors.New("lti: inconsistent system matrix shapes")

// NewSystem validates shapes and returns a System.
func NewSystem(phi, gamma, c *mat.Matrix, h float64) (*System, error) {
	n := phi.Rows()
	if phi.Cols() != n || gamma.Rows() != n || gamma.Cols() != 1 || c.Rows() != 1 || c.Cols() != n {
		return nil, fmt.Errorf("%w: Phi %dx%d, Gamma %dx%d, C %dx%d",
			ErrShape, phi.Rows(), phi.Cols(), gamma.Rows(), gamma.Cols(), c.Rows(), c.Cols())
	}
	if h <= 0 {
		return nil, fmt.Errorf("lti: sampling period must be positive, got %v", h)
	}
	return &System{Phi: phi, Gamma: gamma, C: c, H: h}, nil
}

// MustSystem is NewSystem that panics on error; for package-level tables of
// known-good plants.
func MustSystem(phi, gamma, c *mat.Matrix, h float64) *System {
	s, err := NewSystem(phi, gamma, c, h)
	if err != nil {
		panic(err)
	}
	return s
}

// Order returns the state dimension n.
func (s *System) Order() int { return s.Phi.Rows() }

// Output returns y = C·x for a state vector.
func (s *System) Output(x []float64) float64 {
	return s.C.MulVec(x)[0]
}

// Step advances the plant one sample: x' = Phi·x + Gamma·u.
func (s *System) Step(x []float64, u float64) []float64 {
	next := s.Phi.MulVec(x)
	for i := range next {
		next[i] += s.Gamma.At(i, 0) * u
	}
	return next
}

// IsStable reports whether the open-loop plant is Schur stable.
func (s *System) IsStable() (bool, error) {
	return mat.IsSchurStable(s.Phi)
}

// ControllabilityMatrix returns [Γ ΦΓ Φ²Γ … Φⁿ⁻¹Γ].
func (s *System) ControllabilityMatrix() *mat.Matrix {
	n := s.Order()
	cols := make([]*mat.Matrix, n)
	col := s.Gamma.Clone()
	for i := 0; i < n; i++ {
		cols[i] = col
		col = mat.Mul(s.Phi, col)
	}
	return mat.HStack(cols...)
}

// ObservabilityMatrix returns [C; CΦ; …; CΦⁿ⁻¹].
func (s *System) ObservabilityMatrix() *mat.Matrix {
	n := s.Order()
	rows := make([]*mat.Matrix, n)
	row := s.C.Clone()
	for i := 0; i < n; i++ {
		rows[i] = row
		row = mat.Mul(row, s.Phi)
	}
	return mat.VStack(rows...)
}

// IsControllable reports whether the controllability matrix has full
// numerical rank (column-pivoted QR).
func (s *System) IsControllable() bool {
	return mat.Rank(s.ControllabilityMatrix()) == s.Order()
}

// IsObservable reports whether the observability matrix has full numerical
// rank.
func (s *System) IsObservable() bool {
	return mat.Rank(s.ObservabilityMatrix()) == s.Order()
}

// Augmented returns the one-sample-delay augmented system of Eq. (4)–(5):
// state z[k] = [x[k]; u[k−1]], input is the *commanded* u[k] which reaches
// the plant one sample later:
//
//	z[k+1] = [Φ  Γ; 0  0]·z[k] + [0; 1]·u[k],  y = [C 0]·z.
func (s *System) Augmented() *System {
	n := s.Order()
	phiA := mat.New(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			phiA.Set(i, j, s.Phi.At(i, j))
		}
		phiA.Set(i, n, s.Gamma.At(i, 0))
	}
	gammaA := mat.New(n+1, 1)
	gammaA.Set(n, 0, 1)
	cA := mat.New(1, n+1)
	for j := 0; j < n; j++ {
		cA.Set(0, j, s.C.At(0, j))
	}
	return &System{Phi: phiA, Gamma: gammaA, C: cA, H: s.H}
}

// C2D discretises a continuous-time system ẋ = A·x + B·u, y = C·x with a
// zero-order hold at sampling period h:
//
//	Φ = e^{Ah},  Γ = (∫₀ʰ e^{As} ds)·B.
//
// The integral is computed exactly via the block-matrix exponential of
// [[A B],[0 0]].
func C2D(a, b, c *mat.Matrix, h float64) (*System, error) {
	n := a.Rows()
	if a.Cols() != n || b.Rows() != n || b.Cols() != 1 {
		return nil, ErrShape
	}
	blk := mat.New(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			blk.Set(i, j, a.At(i, j)*h)
		}
		blk.Set(i, n, b.At(i, 0)*h)
	}
	e, err := mat.Expm(blk)
	if err != nil {
		return nil, err
	}
	phi := mat.New(n, n)
	gamma := mat.New(n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			phi.Set(i, j, e.At(i, j))
		}
		gamma.Set(i, 0, e.At(i, n))
	}
	return NewSystem(phi, gamma, c.Clone(), h)
}
