package lti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tightcps/internal/mat"
)

// doubleIntegrator returns the exact ZOH discretisation of ẍ = u.
func doubleIntegrator(h float64) *System {
	phi := mat.FromRows([][]float64{{1, h}, {0, 1}})
	gamma := mat.FromRows([][]float64{{h * h / 2}, {h}})
	c := mat.RowVec([]float64{1, 0})
	return MustSystem(phi, gamma, c, h)
}

func TestNewSystemValidation(t *testing.T) {
	phi := mat.Identity(2)
	gamma := mat.New(2, 1)
	c := mat.New(1, 2)
	if _, err := NewSystem(phi, gamma, c, 0.02); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	if _, err := NewSystem(phi, mat.New(3, 1), c, 0.02); err == nil {
		t.Fatalf("bad Gamma accepted")
	}
	if _, err := NewSystem(phi, gamma, mat.New(1, 3), 0.02); err == nil {
		t.Fatalf("bad C accepted")
	}
	if _, err := NewSystem(phi, gamma, c, 0); err == nil {
		t.Fatalf("zero sampling period accepted")
	}
}

func TestStepAndOutput(t *testing.T) {
	s := doubleIntegrator(0.1)
	x := []float64{1, 2}
	nx := s.Step(x, 3)
	// x1' = 1 + 0.1*2 + 0.005*3 = 1.215; x2' = 2 + 0.1*3 = 2.3
	if math.Abs(nx[0]-1.215) > 1e-12 || math.Abs(nx[1]-2.3) > 1e-12 {
		t.Fatalf("Step = %v", nx)
	}
	if s.Output(x) != 1 {
		t.Fatalf("Output = %v", s.Output(x))
	}
}

func TestControllabilityObservability(t *testing.T) {
	s := doubleIntegrator(0.1)
	if !s.IsControllable() {
		t.Fatalf("double integrator should be controllable")
	}
	if !s.IsObservable() {
		t.Fatalf("double integrator with position output should be observable")
	}
	// Unobservable: output reads nothing.
	s2 := MustSystem(s.Phi, s.Gamma, mat.RowVec([]float64{0, 0}), 0.1)
	if s2.IsObservable() {
		t.Fatalf("zero-output system reported observable")
	}
	// Uncontrollable: input drives nothing.
	s3 := MustSystem(s.Phi, mat.ColVec([]float64{0, 0}), s.C, 0.1)
	if s3.IsControllable() {
		t.Fatalf("zero-input system reported controllable")
	}
}

func TestStability(t *testing.T) {
	stable := MustSystem(mat.Diag([]float64{0.5, -0.2}), mat.ColVec([]float64{1, 1}), mat.RowVec([]float64{1, 0}), 0.1)
	ok, err := stable.IsStable()
	if err != nil || !ok {
		t.Fatalf("stable plant reported unstable: %v", err)
	}
	unstable := doubleIntegrator(0.1) // eigenvalues at 1 (marginally unstable)
	ok, err = unstable.IsStable()
	if err != nil || ok {
		t.Fatalf("double integrator reported Schur stable")
	}
}

func TestAugmentedShapeAndDynamics(t *testing.T) {
	s := doubleIntegrator(0.1)
	a := s.Augmented()
	if a.Order() != 3 {
		t.Fatalf("augmented order = %d", a.Order())
	}
	// Simulating the augmented plant with z0=[x0;u−1] must track the delayed
	// original: x[k+1] = Φx[k] + Γu[k−1].
	x := []float64{1, -1}
	uPrev := 0.7
	z := []float64{1, -1, 0.7}
	uCmd := -0.3
	zNext := a.Step(z, uCmd)
	xNext := s.Step(x, uPrev)
	for i := 0; i < 2; i++ {
		if math.Abs(zNext[i]-xNext[i]) > 1e-12 {
			t.Fatalf("augmented dynamics mismatch at %d: %v vs %v", i, zNext[i], xNext[i])
		}
	}
	if math.Abs(zNext[2]-uCmd) > 1e-12 {
		t.Fatalf("augmented input hold = %v, want %v", zNext[2], uCmd)
	}
	if a.Output(z) != s.Output(x) {
		t.Fatalf("augmented output mismatch")
	}
}

func TestC2DDoubleIntegrator(t *testing.T) {
	// Continuous double integrator A=[[0,1],[0,0]], B=[0;1] has an exact ZOH
	// discretisation Φ=[[1,h],[0,1]], Γ=[h²/2; h].
	a := mat.FromRows([][]float64{{0, 1}, {0, 0}})
	b := mat.ColVec([]float64{0, 1})
	c := mat.RowVec([]float64{1, 0})
	h := 0.05
	d, err := C2D(a, b, c, h)
	if err != nil {
		t.Fatal(err)
	}
	want := doubleIntegrator(h)
	if !mat.EqualApprox(d.Phi, want.Phi, 1e-10) {
		t.Fatalf("C2D Phi wrong:\n%v", d.Phi)
	}
	if !mat.EqualApprox(d.Gamma, want.Gamma, 1e-10) {
		t.Fatalf("C2D Gamma wrong:\n%v", d.Gamma)
	}
}

func TestC2DFirstOrderLag(t *testing.T) {
	// ẋ = −a·x + u ⇒ Φ = e^{−ah}, Γ = (1−e^{−ah})/a.
	al := 3.0
	h := 0.02
	d, err := C2D(mat.FromRows([][]float64{{-al}}), mat.ColVec([]float64{1}), mat.RowVec([]float64{1}), h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Phi.At(0, 0)-math.Exp(-al*h)) > 1e-12 {
		t.Fatalf("Phi = %v", d.Phi.At(0, 0))
	}
	if math.Abs(d.Gamma.At(0, 0)-(1-math.Exp(-al*h))/al) > 1e-12 {
		t.Fatalf("Gamma = %v", d.Gamma.At(0, 0))
	}
}

func TestSettlingIndex(t *testing.T) {
	cases := []struct {
		name string
		y    []float64
		tol  float64
		want int
		ok   bool
	}{
		{"settles mid", []float64{1, 0.5, 0.01, 0.005, 0.001}, 0.02, 2, true},
		{"never settles", []float64{1, 0.5, 0.3}, 0.02, 3, false},
		{"settled from start", []float64{0.01, 0.005}, 0.02, 0, true},
		{"re-excursion counts", []float64{1, 0.01, 0.5, 0.01, 0.001}, 0.02, 3, true},
		{"boundary is inside", []float64{1, 0.02}, 0.02, 1, true},
		{"empty", nil, 0.02, 0, false},
	}
	for _, tc := range cases {
		got, ok := SettlingIndex(tc.y, tc.tol)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: SettlingIndex = (%d,%v), want (%d,%v)", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSimulateFeedbackDeadbeat(t *testing.T) {
	// For the double integrator, the deadbeat gain drives the state to zero
	// in exactly 2 samples. Deadbeat K places both poles at 0:
	// K = [1/h², 3/(2h)] (classical result).
	h := 0.1
	s := doubleIntegrator(h)
	k := NewFeedback([]float64{1 / (h * h), 3 / (2 * h)})
	acl := ClosedLoop(s, k)
	r, err := mat.SpectralRadius(acl)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-8 {
		t.Fatalf("deadbeat closed loop spectral radius = %v", r)
	}
	tr := SimulateFeedback(s, k, []float64{1, 0}, 10)
	for k := 2; k <= 10; k++ {
		if math.Abs(tr.Y[k]) > 1e-9 {
			t.Fatalf("deadbeat output not zero at k=%d: %v", k, tr.Y[k])
		}
	}
	if set, ok := tr.SettlingSamples(1e-6); !ok || set > 2 {
		t.Fatalf("deadbeat settling = %d (ok=%v), want ≤2", set, ok)
	}
}

func TestSimulateDelayedFeedbackMatchesAugmented(t *testing.T) {
	// SimulateDelayedFeedback must equal simulating the augmented plant with
	// instantaneous feedback.
	s := doubleIntegrator(0.1)
	kE := NewFeedback([]float64{2.0, 1.5, 0.3})
	x0 := []float64{1, 0}
	steps := 40
	trD := SimulateDelayedFeedback(s, kE, x0, 0, steps)
	aug := s.Augmented()
	trA := SimulateFeedback(aug, kE, []float64{1, 0, 0}, steps)
	for k := 0; k <= steps; k++ {
		if math.Abs(trD.Y[k]-trA.Y[k]) > 1e-9 {
			t.Fatalf("delayed vs augmented mismatch at k=%d: %v vs %v", k, trD.Y[k], trA.Y[k])
		}
	}
}

func TestInitialResponseGeometricDecay(t *testing.T) {
	acl := mat.Diag([]float64{0.5})
	c := mat.RowVec([]float64{1})
	tr := InitialResponse(acl, c, []float64{1}, 10, 0.02)
	for k := 0; k <= 10; k++ {
		if math.Abs(tr.Y[k]-math.Pow(0.5, float64(k))) > 1e-12 {
			t.Fatalf("geometric decay wrong at %d", k)
		}
	}
	if set, ok := tr.SettlingSamples(0.02); !ok || set != 6 {
		// 0.5^6 = 0.015625 ≤ 0.02 < 0.5^5 = 0.03125
		t.Fatalf("settling = %d, ok=%v; want 6", set, ok)
	}
}

func TestTrajectoryTimes(t *testing.T) {
	tr := &Trajectory{H: 0.02, Y: make([]float64, 3)}
	ts := tr.Times()
	want := []float64{0, 0.02, 0.04}
	for i := range want {
		if math.Abs(ts[i]-want[i]) > 1e-15 {
			t.Fatalf("Times = %v", ts)
		}
	}
}

// Property: for any stable diagonal closed loop, the trajectory is
// non-increasing in |y| and always settles.
func TestStableDecayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := 0.98 * (2*r.Float64() - 1) // in (−0.98, 0.98)
		acl := mat.Diag([]float64{lambda})
		tr := InitialResponse(acl, mat.RowVec([]float64{1}), []float64{1}, 800, 0.02)
		_, ok := tr.SettlingSamples(0.02)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestStepResponseFirstOrder(t *testing.T) {
	// x' = 0.5x + u, y = x: step response converges to DC gain 1/(1−0.5)=2.
	s := MustSystem(mat.Diag([]float64{0.5}), mat.ColVec([]float64{1}), mat.RowVec([]float64{1}), 0.02)
	tr := StepResponse(s, 60)
	if math.Abs(tr.Y[60]-2) > 1e-6 {
		t.Fatalf("step response final value %v, want 2", tr.Y[60])
	}
	gain, err := DCGain(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain-2) > 1e-12 {
		t.Fatalf("DCGain = %v, want 2", gain)
	}
}

func TestDCGainIntegratorUndefined(t *testing.T) {
	// A pole at z=1 has no finite DC gain.
	if _, err := DCGain(doubleIntegrator(0.1)); err == nil {
		t.Fatal("DC gain of an integrator accepted")
	}
}

func TestStepResponseMatchesDCGainOnCaseStudyLikePlant(t *testing.T) {
	s := MustSystem(
		mat.FromRows([][]float64{{0.8187, 0.0178}, {-0.0004, 0.9608}}),
		mat.ColVec([]float64{0.0004, 0.0392}),
		mat.RowVec([]float64{1, 0}), 0.02)
	gain, err := DCGain(s)
	if err != nil {
		t.Fatal(err)
	}
	tr := StepResponse(s, 2000)
	if math.Abs(tr.Y[2000]-gain) > 1e-6 {
		t.Fatalf("step final %v vs DC gain %v", tr.Y[2000], gain)
	}
}
