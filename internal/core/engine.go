package core

// The engine stage model: Dimension is a two-stage pipeline. Stage one fans
// the per-application work (CQLF certification, switching-profile
// computation) out over a bounded worker pool; stage two maps the profiles
// onto slots with admission verdicts memoized through a cache and the
// verifier's own frontier parallelism. Results keep the input application
// order regardless of worker count, and the first per-app error cancels the
// remaining work.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tightcps/internal/control"
	"tightcps/internal/switching"
)

// forEachApp runs fn(i) for every index in [0, n) on a pool of at most
// workers goroutines (0 = GOMAXPROCS). fn writes its result into
// caller-owned, index-addressed slots, so result ordering is deterministic.
// The first error cancels ctx for the remaining work; among the errors that
// do occur, the lowest-index one is returned.
func forEachApp(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// profileStage certifies (optionally) and profiles every application
// concurrently, returning profiles — and CQLF results when the stability
// check ran — in application order.
func (d *Dimensioner) profileStage(ctx context.Context) ([]*switching.Profile, []control.CQLFResult, error) {
	n := len(d.Apps)
	profiles := make([]*switching.Profile, n)
	stability := make([]control.CQLFResult, n)
	budget := d.Opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	outer := budget
	if outer > n {
		outer = n
	}
	scfg := d.Opts.Switching
	if scfg.Workers == 0 {
		// Split the budget between the app fan-out and each app's per-Tw
		// dwell sweeps so total concurrency stays ≈ Workers: with more apps
		// than workers each sweep runs serially; with few apps the spare
		// budget goes into the sweeps. Workers=1 means a fully serial run.
		scfg.Workers = budget / outer
		if scfg.Workers < 1 {
			scfg.Workers = 1
		}
	}
	err := forEachApp(ctx, n, outer, func(ctx context.Context, i int) error {
		a := d.Apps[i]
		if d.Opts.CheckSwitchingStability {
			res, err := control.SwitchingStable(a.Plant, a.KT, a.KE)
			if err != nil || !res.Found {
				return fmt.Errorf("%w: %s", ErrNotSwitchingStable, a.Name)
			}
			stability[i] = res
		}
		p, err := switching.Compute(plantOf(a), scfg)
		if err != nil {
			return fmt.Errorf("core: profiling %s: %w", a.Name, err)
		}
		profiles[i] = p
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if !d.Opts.CheckSwitchingStability {
		stability = nil
	}
	return profiles, stability, nil
}
