package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tightcps/internal/mapping"
)

// TestDimensionDeterministicAcrossWorkers: the engine's fan-out must not
// change the result — a fully serial run (Workers=1) and a wide run
// (Workers=8) return identical allocations, profiles included. Run under
// -race this also exercises the profiling pool, the sharded BFS and the
// admission cache for data races.
func TestDimensionDeterministicAcrossWorkers(t *testing.T) {
	apps := caseApps()
	serial := &Dimensioner{Apps: apps, Opts: Options{Workers: 1}}
	wide := &Dimensioner{Apps: apps, Opts: Options{Workers: 8}}
	a1, err := serial.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	a8, err := wide.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a8) {
		t.Fatalf("allocations differ:\nWorkers=1: %+v\nWorkers=8: %+v", a1, a8)
	}
	want := [][]string{{"C1", "C5", "C4", "C3"}, {"C6", "C2"}}
	if got := a8.SlotNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("allocation %v, want %v", got, want)
	}
}

// TestDimensionSharedCacheReuse: a cache supplied via Options survives
// across Dimension calls — the second run answers every admission check
// from the cache.
func TestDimensionSharedCacheReuse(t *testing.T) {
	cache := mapping.NewCache()
	d := &Dimensioner{Apps: caseApps(), Opts: Options{Cache: cache}}
	first, err := d.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses != first.Verifications || first.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d verifications=%d",
			first.CacheHits, first.CacheMisses, first.Verifications)
	}
	second, err := d.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 || second.CacheHits != second.Verifications {
		t.Fatalf("warm run: hits=%d misses=%d verifications=%d",
			second.CacheHits, second.CacheMisses, second.Verifications)
	}
	if !reflect.DeepEqual(first.Slots, second.Slots) {
		t.Fatalf("warm slots %v, cold %v", second.Slots, first.Slots)
	}
}

// TestForEachAppOrderingAndCancellation: results land in input order for
// any worker count, and an error cancels the remaining work.
func TestForEachAppOrderingAndCancellation(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, 16} {
		out := make([]int, n)
		err := forEachApp(context.Background(), n, workers, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}

	sentinel := errors.New("boom")
	var ran atomic.Int64
	err := forEachApp(context.Background(), n, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return sentinel
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran.Load() >= n {
		t.Fatal("error did not cancel remaining work")
	}
}
