package core

import (
	"errors"
	"reflect"
	"testing"

	"tightcps/internal/plants"
	"tightcps/internal/switching"
)

func caseApps() []App {
	return CaseStudyApps()
}

// TestEndToEndDimensioning runs the whole pipeline on the case study and
// must land on the paper's 2-slot allocation.
func TestEndToEndDimensioning(t *testing.T) {
	d := &Dimensioner{Apps: caseApps()}
	alloc, err := d.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	got := alloc.SlotNames()
	want := [][]string{{"C1", "C5", "C4", "C3"}, {"C6", "C2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("allocation %v, want %v", got, want)
	}
	if alloc.Verifications != 6 {
		t.Fatalf("verifications = %d, want 6", alloc.Verifications)
	}
}

// TestDimensionWithStabilityCheck also certifies every pair's CQLF.
func TestDimensionWithStabilityCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("CQLF searches + full profiling")
	}
	d := &Dimensioner{Apps: caseApps(), Opts: Options{CheckSwitchingStability: true}}
	alloc, err := d.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Stability) != 6 {
		t.Fatalf("stability results = %d", len(alloc.Stability))
	}
	for i, s := range alloc.Stability {
		if !s.Found || s.Margin <= 0 {
			t.Errorf("app %d: CQLF missing", i)
		}
	}
}

// TestStabilityCheckRejectsUnstablePair: swapping in the unstable KuE for
// C1 must abort the dimensioning with ErrNotSwitchingStable.
func TestStabilityCheckRejectsUnstablePair(t *testing.T) {
	apps := caseApps()
	apps[0].KE = plants.MotivationalKEUnstable
	d := &Dimensioner{Apps: apps[:1], Opts: Options{CheckSwitchingStability: true}}
	_, err := d.Dimension()
	if !errors.Is(err, ErrNotSwitchingStable) {
		t.Fatalf("want ErrNotSwitchingStable, got %v", err)
	}
}

func TestDimensionEmpty(t *testing.T) {
	d := &Dimensioner{}
	if _, err := d.Dimension(); err == nil {
		t.Fatal("empty app set accepted")
	}
}

func TestProfileSingleApp(t *testing.T) {
	a := caseApps()[0]
	p, err := Profile(a, switching.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TwStar != 11 || p.JT != 9 {
		t.Fatalf("C1 profile: T*w=%d JT=%d", p.TwStar, p.JT)
	}
}

func TestVerifySlotSharing(t *testing.T) {
	apps := caseApps()
	// C6 + C2 share (paper slot S2).
	res, ps, err := VerifySlotSharing([]App{apps[5], apps[1]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || len(ps) != 2 {
		t.Fatalf("S2 sharing rejected: %+v", res)
	}
}
