// Package core is the library facade: it ties the offline switching
// analysis, the exact model-checking verification and the first-fit mapping
// into the paper's end-to-end flow —
//
//	applications → switching profiles → verified slot partition.
//
// A downstream user describes each application (plant, the two controllers,
// requirement J*, inter-arrival bound r) and receives a dimensioned TT-slot
// allocation with control performance guaranteed in every admissible
// disturbance scenario.
package core

import (
	"errors"
	"fmt"

	"tightcps/internal/control"
	"tightcps/internal/lti"
	"tightcps/internal/mapping"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// App describes one distributed control application.
type App struct {
	Name  string
	Plant *lti.System
	KT    lti.Feedback // fast controller (TT communication, order n)
	KE    lti.Feedback // delay-tolerant controller (ET communication, order n+1)
	X0    []float64    // post-disturbance state
	JStar int          // settling requirement, samples
	R     int          // minimum disturbance inter-arrival, samples
}

// Options tunes the dimensioning flow.
type Options struct {
	Switching switching.Config       // offline analysis knobs
	Verify    verify.Config          // model-checking knobs
	Policy    sched.PreemptionPolicy // runtime policy to verify
	// CheckSwitchingStability requires a common quadratic Lyapunov function
	// for every application's (KT, KE) pair before profiling, as Sec. 3
	// recommends. Applications failing the check abort the run.
	CheckSwitchingStability bool
}

// Allocation is the dimensioning result.
type Allocation struct {
	Profiles []*switching.Profile
	Slots    [][]int // per TT slot: indices into Apps/Profiles
	// Verifications counts slot-sharing model-checking runs.
	Verifications int
	// Stability holds the CQLF results when the stability check ran.
	Stability []control.CQLFResult
}

// SlotNames renders the allocation with application names.
func (a *Allocation) SlotNames() [][]string {
	out := make([][]string, len(a.Slots))
	for si, slot := range a.Slots {
		for _, i := range slot {
			out[si] = append(out[si], a.Profiles[i].Name)
		}
	}
	return out
}

// ErrNotSwitchingStable is returned when CheckSwitchingStability is set and
// no CQLF is found for some application.
var ErrNotSwitchingStable = errors.New("core: controller pair not switching stable")

// Dimensioner runs the end-to-end flow for a set of applications.
type Dimensioner struct {
	Apps []App
	Opts Options
}

// Profile computes the switching profile of a single application.
func Profile(a App, cfg switching.Config) (*switching.Profile, error) {
	return switching.Compute(plantOf(a), cfg)
}

func plantOf(a App) switching.Plant {
	return switching.Plant{Name: a.Name, Sys: a.Plant, KT: a.KT, KE: a.KE,
		X0: a.X0, JStar: a.JStar, R: a.R}
}

// Dimension executes: (optional) switching-stability certification, profile
// computation, then verified first-fit slot mapping.
func (d *Dimensioner) Dimension() (*Allocation, error) {
	if len(d.Apps) == 0 {
		return nil, errors.New("core: no applications")
	}
	alloc := &Allocation{}
	for _, a := range d.Apps {
		if d.Opts.CheckSwitchingStability {
			res, err := control.SwitchingStable(a.Plant, a.KT, a.KE)
			if err != nil || !res.Found {
				return nil, fmt.Errorf("%w: %s", ErrNotSwitchingStable, a.Name)
			}
			alloc.Stability = append(alloc.Stability, res)
		}
		p, err := Profile(a, d.Opts.Switching)
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", a.Name, err)
		}
		alloc.Profiles = append(alloc.Profiles, p)
	}
	vf := func(ps []*switching.Profile) (bool, error) {
		cfg := d.Opts.Verify
		cfg.NondetTies = true
		cfg.Policy = d.Opts.Policy
		res, err := verify.Slot(ps, cfg)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	res, err := mapping.FirstFit(alloc.Profiles, vf)
	if err != nil {
		return nil, err
	}
	alloc.Slots = res.Slots
	alloc.Verifications = res.Verifications
	return alloc, nil
}

// VerifySlotSharing checks whether the given applications can share one TT
// slot, returning the detailed verification result.
func VerifySlotSharing(apps []App, opts Options) (verify.Result, []*switching.Profile, error) {
	var ps []*switching.Profile
	for _, a := range apps {
		p, err := Profile(a, opts.Switching)
		if err != nil {
			return verify.Result{}, nil, err
		}
		ps = append(ps, p)
	}
	cfg := opts.Verify
	cfg.NondetTies = true
	cfg.Policy = opts.Policy
	res, err := verify.Slot(ps, cfg)
	return res, ps, err
}
