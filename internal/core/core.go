// Package core is the library facade: it ties the offline switching
// analysis, the exact model-checking verification and the first-fit mapping
// into the paper's end-to-end flow —
//
//	applications → switching profiles → verified slot partition.
//
// A downstream user describes each application (plant, the two controllers,
// requirement J*, inter-arrival bound r) and receives a dimensioned TT-slot
// allocation with control performance guaranteed in every admissible
// disturbance scenario.
package core

import (
	"context"
	"errors"

	"tightcps/internal/control"
	"tightcps/internal/lti"
	"tightcps/internal/mapping"
	"tightcps/internal/plants"
	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// App describes one distributed control application.
type App struct {
	Name  string
	Plant *lti.System
	KT    lti.Feedback // fast controller (TT communication, order n)
	KE    lti.Feedback // delay-tolerant controller (ET communication, order n+1)
	X0    []float64    // post-disturbance state
	JStar int          // settling requirement, samples
	R     int          // minimum disturbance inter-arrival, samples
}

// Options tunes the dimensioning flow.
type Options struct {
	Switching switching.Config       // offline analysis knobs
	Verify    verify.Config          // model-checking knobs
	Policy    sched.PreemptionPolicy // runtime policy to verify
	// CheckSwitchingStability requires a common quadratic Lyapunov function
	// for every application's (KT, KE) pair before profiling, as Sec. 3
	// recommends. Applications failing the check abort the run.
	CheckSwitchingStability bool
	// Workers is the engine's concurrency budget. During profiling it is
	// split between the per-application fan-out and each application's
	// dwell sweeps (total ≈ Workers); during mapping it sizes the
	// verifier's BFS-frontier pool. Pinning Switching.Workers or
	// Verify.Workers overrides the respective pool. 0 uses GOMAXPROCS;
	// 1 forces a fully serial run. The allocation is identical for every
	// worker count.
	Workers int
	// Cache memoizes slot-admission verdicts. Nil uses a fresh per-call
	// cache (which still deduplicates within the run); supplying one reuses
	// verdicts across Dimension calls. Do not share a cache between Options
	// that verify differently (Policy or Verify knobs).
	Cache *mapping.Cache
	// AdmitFunc, when non-nil, replaces the in-process slot-sharing
	// verification: the dimensioning loop sends every admission question
	// through it instead of verify.Slot. This is the seam the admission
	// service's client mode plugs into (admit.Client.VerifyFunc), so a
	// dimensioning run shares the service's fleet-wide coalescing and
	// persistent cache. The caller must configure it to verify under the
	// semantics Options would otherwise use (NondetTies, Policy, Verify
	// knobs) — the engine cannot inspect a remote service's config.
	AdmitFunc mapping.VerifyFunc
}

// Allocation is the dimensioning result.
type Allocation struct {
	Profiles []*switching.Profile
	Slots    [][]int // per TT slot: indices into Apps/Profiles
	// Verifications counts slot-sharing admission checks (cache hits
	// included).
	Verifications int
	// CacheHits and CacheMisses report the admission-cache traffic of this
	// run.
	CacheHits   int
	CacheMisses int
	// Stability holds the CQLF results when the stability check ran.
	Stability []control.CQLFResult
}

// SlotNames renders the allocation with application names.
func (a *Allocation) SlotNames() [][]string {
	out := make([][]string, len(a.Slots))
	for si, slot := range a.Slots {
		for _, i := range slot {
			out[si] = append(out[si], a.Profiles[i].Name)
		}
	}
	return out
}

// ErrNotSwitchingStable is returned when CheckSwitchingStability is set and
// no CQLF is found for some application.
var ErrNotSwitchingStable = errors.New("core: controller pair not switching stable")

// Dimensioner runs the end-to-end flow for a set of applications.
type Dimensioner struct {
	Apps []App
	Opts Options
}

// Profile computes the switching profile of a single application.
func Profile(a App, cfg switching.Config) (*switching.Profile, error) {
	return switching.Compute(plantOf(a), cfg)
}

// FromPlants adapts a case-study application to the engine's input type.
func FromPlants(a plants.App) App {
	return App{Name: a.Name, Plant: a.Plant, KT: a.KT, KE: a.KE,
		X0: a.X0, JStar: a.JStar, R: a.R}
}

// CaseStudyApps returns the paper's six case-study applications ready for
// dimensioning.
func CaseStudyApps() []App {
	var out []App
	for _, a := range plants.CaseStudy() {
		out = append(out, FromPlants(a))
	}
	return out
}

func plantOf(a App) switching.Plant {
	return switching.Plant{Name: a.Name, Sys: a.Plant, KT: a.KT, KE: a.KE,
		X0: a.X0, JStar: a.JStar, R: a.R}
}

// Dimension executes the engine's two stages: (optional) switching-stability
// certification plus profile computation fanned out per application, then
// verified first-fit slot mapping with memoized admission.
func (d *Dimensioner) Dimension() (*Allocation, error) {
	if len(d.Apps) == 0 {
		return nil, errors.New("core: no applications")
	}
	alloc := &Allocation{}
	var err error
	alloc.Profiles, alloc.Stability, err = d.profileStage(context.Background())
	if err != nil {
		return nil, err
	}
	cache := d.Opts.Cache
	if cache == nil {
		cache = mapping.NewCache()
	}
	res, err := mapping.FirstFitCached(alloc.Profiles, d.verifyFunc(), cache)
	if err != nil {
		return nil, err
	}
	alloc.Slots = res.Slots
	alloc.Verifications = res.Verifications
	alloc.CacheHits = res.CacheHits
	alloc.CacheMisses = res.CacheMisses
	return alloc, nil
}

// verifyFunc builds the admission verifier from the options, threading the
// engine's worker budget into the BFS unless the caller pinned it.
func (d *Dimensioner) verifyFunc() mapping.VerifyFunc {
	if d.Opts.AdmitFunc != nil {
		return d.Opts.AdmitFunc
	}
	cfg := d.Opts.Verify
	cfg.NondetTies = true
	cfg.Policy = d.Opts.Policy
	if cfg.Workers == 0 {
		cfg.Workers = d.Opts.Workers
	}
	return func(ps []*switching.Profile) (bool, error) {
		res, err := verify.Slot(ps, cfg)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
}

// VerifySlotSharing checks whether the given applications can share one TT
// slot, returning the detailed verification result.
func VerifySlotSharing(apps []App, opts Options) (verify.Result, []*switching.Profile, error) {
	var ps []*switching.Profile
	for _, a := range apps {
		p, err := Profile(a, opts.Switching)
		if err != nil {
			return verify.Result{}, nil, err
		}
		ps = append(ps, p)
	}
	cfg := opts.Verify
	cfg.NondetTies = true
	cfg.Policy = opts.Policy
	if cfg.Workers == 0 {
		cfg.Workers = opts.Workers
	}
	res, err := verify.Slot(ps, cfg)
	return res, ps, err
}
