package ta

import (
	"errors"
	"fmt"
	"strings"
)

// Property is a state predicate checked for reachability.
type Property func(s *State) bool

// CheckResult reports a reachability analysis outcome.
type CheckResult struct {
	Reachable bool
	States    int
	Depth     int
	Witness   []TraceEntry // path to the first satisfying state (if tracing)
}

// TraceEntry is one step of a witness trace.
type TraceEntry struct {
	Step  Step
	State *State
}

// CheckOptions tunes Reachable.
type CheckOptions struct {
	MaxStates int  // abort limit (default 50 million)
	Trace     bool // record a witness path
}

// ErrStateLimit is returned when exploration exceeds MaxStates.
var ErrStateLimit = errors.New("ta: state limit exceeded")

// parentInfo records how a state was first reached (for witness traces).
type parentInfo struct {
	key  string
	step Step
}

// encode flattens a state into a string key for the visited set.
func encode(s *State) string {
	var b strings.Builder
	b.Grow(2 * (len(s.Locs) + len(s.Vars) + len(s.Clocks)))
	for _, v := range s.Locs {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
	}
	for _, v := range s.Vars {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
	}
	for _, v := range s.Clocks {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
	}
	return b.String()
}

// Reachable performs breadth-first reachability analysis for the property.
func (n *Network) Reachable(p Property, opt CheckOptions) (CheckResult, error) {
	if err := n.Validate(); err != nil {
		return CheckResult{}, err
	}
	if opt.MaxStates <= 0 {
		opt.MaxStates = 50_000_000
	}
	init := n.Initial()
	if !n.invariantsHold(init) {
		return CheckResult{}, errors.New("ta: initial state violates invariants")
	}
	res := CheckResult{States: 1}
	if p(init) {
		res.Reachable = true
		return res, nil
	}
	visited := map[string]bool{encode(init): true}
	var parents map[string]parentInfo
	var byKey map[string]*State
	if opt.Trace {
		parents = map[string]parentInfo{}
		byKey = map[string]*State{encode(init): init}
	}
	frontier := []*State{init}
	var succ []*State
	var steps []Step
	for depth := 0; len(frontier) > 0; depth++ {
		res.Depth = depth
		var next []*State
		for _, s := range frontier {
			sk := ""
			if opt.Trace {
				sk = encode(s)
			}
			succ = succ[:0]
			steps = steps[:0]
			succ, steps = n.Successors(s, succ, steps)
			for i, ns := range succ {
				k := encode(ns)
				if visited[k] {
					continue
				}
				visited[k] = true
				res.States++
				if res.States > opt.MaxStates {
					return res, ErrStateLimit
				}
				if opt.Trace {
					parents[k] = parentInfo{key: sk, step: steps[i]}
					byKey[k] = ns
				}
				if p(ns) {
					res.Reachable = true
					if opt.Trace {
						res.Witness = rebuild(parents, byKey, k)
					}
					return res, nil
				}
				next = append(next, ns)
			}
		}
		frontier = next
	}
	return res, nil
}

func rebuild(parents map[string]parentInfo, byKey map[string]*State, last string) []TraceEntry {
	var rev []TraceEntry
	for k := last; ; {
		pi, ok := parents[k]
		if !ok {
			break
		}
		rev = append(rev, TraceEntry{Step: pi.step, State: byKey[k]})
		k = pi.key
	}
	out := make([]TraceEntry, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// FormatTrace renders a witness trace using the network's names.
func (n *Network) FormatTrace(tr []TraceEntry) string {
	var b strings.Builder
	for i, e := range tr {
		if e.Step.Delay {
			fmt.Fprintf(&b, "%3d: delay 1\n", i)
			continue
		}
		who := "?"
		if e.Step.AutoA >= 0 {
			who = n.Automata[e.Step.AutoA].Name
			if e.Step.AutoB >= 0 {
				who += "×" + n.Automata[e.Step.AutoB].Name
			}
		}
		fmt.Fprintf(&b, "%3d: %-30s %s\n", i, who, e.Step.Label)
	}
	return b.String()
}

// LocationIs returns a property that holds when the named automaton
// occupies the named location.
func (n *Network) LocationIs(autoName, locName string) (Property, error) {
	for ai, a := range n.Automata {
		if a.Name != autoName {
			continue
		}
		for li, l := range a.Locations {
			if l.Name == locName {
				ai, li := ai, li
				return func(s *State) bool { return s.Locs[ai] == li }, nil
			}
		}
		return nil, fmt.Errorf("ta: automaton %s has no location %s", autoName, locName)
	}
	return nil, fmt.Errorf("ta: no automaton named %s", autoName)
}

// AnyLocation returns a property that holds when any automaton whose name
// has the given prefix occupies the named location (e.g. any application in
// its Error state).
func (n *Network) AnyLocation(prefix, locName string) Property {
	type pair struct{ ai, li int }
	var ps []pair
	for ai, a := range n.Automata {
		if !strings.HasPrefix(a.Name, prefix) {
			continue
		}
		for li, l := range a.Locations {
			if l.Name == locName {
				ps = append(ps, pair{ai, li})
			}
		}
	}
	return func(s *State) bool {
		for _, p := range ps {
			if s.Locs[p.ai] == p.li {
				return true
			}
		}
		return false
	}
}
