package ta

import (
	"errors"
	"testing"
)

// counterNet builds a one-automaton network with a clock that must reach
// the guard value to move Init→Done.
func counterNet(threshold, clockMax int) *Network {
	a := &Automaton{
		Name: "A",
		Locations: []Location{
			{Name: "Init"},
			{Name: "Done"},
		},
		Edges: []Edge{{
			From: 0, To: 1, Label: "go",
			Guard: func(s *State) bool { return s.Clocks[0] == threshold },
		}},
	}
	return &Network{
		Automata:   []*Automaton{a},
		ClockNames: []string{"c"},
		ClockMax:   []int{clockMax},
	}
}

func TestDelayReachesGuard(t *testing.T) {
	n := counterNet(3, 10)
	p, err := n.LocationIs("A", "Done")
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Reachable(p, CheckOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("Done unreachable")
	}
	// Witness: 3 delays then the action.
	delays := 0
	for _, e := range res.Witness {
		if e.Step.Delay {
			delays++
		}
	}
	if delays != 3 {
		t.Fatalf("witness has %d delays, want 3:\n%s", delays, n.FormatTrace(res.Witness))
	}
}

func TestClockSaturationBlocksLargeConstants(t *testing.T) {
	// Guard at 5 with ceiling 3: clock saturates at 4 and never equals 5.
	n := counterNet(5, 3)
	p, _ := n.LocationIs("A", "Done")
	res, err := n.Reachable(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("saturated clock reached a constant above its ceiling")
	}
	// The state space stays finite despite unbounded delays.
	if res.States > 10 {
		t.Fatalf("saturation did not bound states: %d", res.States)
	}
}

func TestInvariantBlocksDelay(t *testing.T) {
	// Invariant c ≤ 2 with an exit guard at c==2: time cannot pass 2, the
	// automaton must leave.
	exitTaken := false
	a := &Automaton{
		Name: "A",
		Locations: []Location{
			{Name: "Bounded", Invariant: func(s *State) bool { return s.Clocks[0] <= 2 }},
			{Name: "Out"},
		},
		Edges: []Edge{{
			From: 0, To: 1, Label: "exit",
			Guard:  func(s *State) bool { return s.Clocks[0] == 2 },
			Update: func(s *State) { exitTaken = true },
		}},
	}
	n := &Network{Automata: []*Automaton{a}, ClockNames: []string{"c"}, ClockMax: []int{5}}
	p, _ := n.LocationIs("A", "Out")
	res, err := n.Reachable(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || !exitTaken {
		t.Fatal("exit not taken")
	}
	// No state with clock 3 in location Bounded may exist: check by asking
	// for it as a property.
	bad := func(s *State) bool { return s.Locs[0] == 0 && s.Clocks[0] >= 3 }
	res, err = n.Reachable(bad, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("delay violated the invariant")
	}
}

func TestSynchronisationPairs(t *testing.T) {
	// Emitter sets a var; receiver doubles it. Order must be emit-then-recv.
	em := &Automaton{
		Name:      "E",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges: []Edge{{From: 0, To: 1, Chan: 0, Dir: Emit, Label: "a",
			Update: func(s *State) { s.Vars[0] = 21 }}},
	}
	rc := &Automaton{
		Name:      "R",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges: []Edge{{From: 0, To: 1, Chan: 0, Dir: Recv, Label: "a",
			Update: func(s *State) { s.Vars[0] *= 2 }}},
	}
	n := &Network{Automata: []*Automaton{em, rc}, VarNames: []string{"v"},
		ChanNames: []string{"a"}, ClockNames: nil, ClockMax: nil}
	p := func(s *State) bool { return s.Locs[0] == 1 && s.Locs[1] == 1 }
	res, err := n.Reachable(p, CheckOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("sync did not fire")
	}
	final := res.Witness[len(res.Witness)-1].State
	if final.Vars[0] != 42 {
		t.Fatalf("v = %d, want 42 (emitter update must run first)", final.Vars[0])
	}
}

func TestEmitterAloneCannotMove(t *testing.T) {
	// An a! edge with no matching a? anywhere must not fire.
	em := &Automaton{
		Name:      "E",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges:     []Edge{{From: 0, To: 1, Chan: 0, Dir: Emit, Label: "a"}},
	}
	n := &Network{Automata: []*Automaton{em}, ChanNames: []string{"a"}}
	p, _ := n.LocationIs("E", "T")
	res, err := n.Reachable(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("unpaired emit fired")
	}
}

func TestCommittedPriority(t *testing.T) {
	// Automaton A enters a committed location; B has a competing internal
	// edge. From the committed state, only A's continuation may fire, and no
	// delay may occur.
	a := &Automaton{
		Name: "A",
		Locations: []Location{
			{Name: "S"},
			{Name: "Mid", Kind: Committed},
			{Name: "T"},
		},
		Edges: []Edge{
			{From: 0, To: 1, Label: "enter"},
			{From: 1, To: 2, Label: "leave", Update: func(s *State) { s.Vars[1] = 1 }},
		},
	}
	b := &Automaton{
		Name:      "B",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges: []Edge{{From: 0, To: 1, Label: "race",
			// Records whether A was mid-transaction when B moved.
			Update: func(s *State) {
				if s.Locs[0] == 1 {
					s.Vars[0] = 1
				}
			}}},
	}
	n := &Network{Automata: []*Automaton{a, b},
		VarNames: []string{"interleaved", "done"}}
	bad := func(s *State) bool { return s.Vars[0] == 1 }
	res, err := n.Reachable(bad, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("B interleaved with A's committed transaction")
	}
}

func TestUrgentBlocksDelayOnly(t *testing.T) {
	// In an urgent location, time must not pass, but other automata may act.
	a := &Automaton{
		Name:      "A",
		Locations: []Location{{Name: "U", Kind: Urgent}, {Name: "T"}},
		Edges:     []Edge{{From: 0, To: 1, Label: "go", Guard: func(s *State) bool { return s.Vars[0] == 1 }}},
	}
	b := &Automaton{
		Name:      "B",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges:     []Edge{{From: 0, To: 1, Label: "set", Update: func(s *State) { s.Vars[0] = 1 }}},
	}
	n := &Network{Automata: []*Automaton{a, b}, VarNames: []string{"flag"},
		ClockNames: []string{"c"}, ClockMax: []int{3}}
	// Clock must never advance while A is urgent (A only leaves via B's flag).
	bad := func(s *State) bool { return s.Clocks[0] > 0 && s.Locs[0] == 0 }
	res, err := n.Reachable(bad, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("delay occurred in an urgent location")
	}
	p, _ := n.LocationIs("A", "T")
	res, err = n.Reachable(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("B's action could not unblock A")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	n := &Network{}
	if err := n.Validate(); err == nil {
		t.Fatal("empty network validated")
	}
	bad := &Network{Automata: []*Automaton{{
		Name:      "A",
		Locations: []Location{{Name: "S"}},
		Init:      2,
	}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad init accepted")
	}
	badEdge := &Network{Automata: []*Automaton{{
		Name:      "A",
		Locations: []Location{{Name: "S"}},
		Edges:     []Edge{{From: 0, To: 5}},
	}}}
	if err := badEdge.Validate(); err == nil {
		t.Fatal("bad edge accepted")
	}
	badChan := &Network{Automata: []*Automaton{{
		Name:      "A",
		Locations: []Location{{Name: "S"}},
		Edges:     []Edge{{From: 0, To: 0, Chan: 3, Dir: Emit}},
	}}}
	if err := badChan.Validate(); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestMaxStatesLimit(t *testing.T) {
	n := counterNet(5, 100)
	p, _ := n.LocationIs("A", "Done")
	_, err := n.Reachable(p, CheckOptions{MaxStates: 2})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
}

func TestInitVars(t *testing.T) {
	a := &Automaton{
		Name:      "A",
		Locations: []Location{{Name: "S"}, {Name: "T"}},
		Edges:     []Edge{{From: 0, To: 1, Guard: func(s *State) bool { return s.Vars[0] == 7 }}},
	}
	n := &Network{Automata: []*Automaton{a}, VarNames: []string{"v"}, InitVars: []int{7}}
	p, _ := n.LocationIs("A", "T")
	res, err := n.Reachable(p, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("InitVars not applied")
	}
}

func TestLocationIsUnknownNames(t *testing.T) {
	n := counterNet(1, 2)
	if _, err := n.LocationIs("Nope", "Done"); err == nil {
		t.Fatal("unknown automaton accepted")
	}
	if _, err := n.LocationIs("A", "Nope"); err == nil {
		t.Fatal("unknown location accepted")
	}
}
