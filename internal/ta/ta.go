// Package ta is a discrete-time timed-automata network engine — the
// model-checking substrate this reproduction uses in place of UPPAAL.
//
// A network is a set of automata with locations (normal, urgent or
// committed), edges carrying guards, updates and binary channel
// synchronisations, shared integer variables, and integer clocks that
// advance synchronously in unit steps (one sampling period). Because the
// paper's system is sampled — disturbances are observed and scheduling
// decisions taken only at sample boundaries — unit-step integer clocks give
// the exact semantics of the continuous-time model (Sec. 4 discusses
// precisely this discretisation), with no zone abstraction needed.
//
// Semantics follow UPPAAL's:
//
//   - committed locations: if any automaton is committed, only transitions
//     involving a committed automaton may fire and time may not pass;
//   - urgent locations: time may not pass while occupied;
//   - invariants: a state whose invariant fails is not admissible; delay is
//     blocked when it would violate any invariant;
//   - synchronisation: an a! edge fires together with a matching a? edge of
//     another automaton, emitter update first;
//   - clocks saturate at a per-clock ceiling (max-constant abstraction),
//     keeping the reachable state space finite.
package ta

import (
	"errors"
	"fmt"
)

// Kind classifies a location.
type Kind uint8

// Location kinds.
const (
	Normal Kind = iota
	Urgent
	Committed
)

// State is a network configuration: one location per automaton, the shared
// integer variables, and the clock values. Guards and updates receive the
// state; they must treat Locs as read-only.
type State struct {
	Locs   []int
	Vars   []int
	Clocks []int
}

// clone deep-copies a state.
func (s *State) clone() *State {
	n := &State{
		Locs:   append([]int(nil), s.Locs...),
		Vars:   append([]int(nil), s.Vars...),
		Clocks: append([]int(nil), s.Clocks...),
	}
	return n
}

// Guard is an edge guard; nil means "always enabled".
type Guard func(s *State) bool

// Update is an edge effect; nil means "no effect".
type Update func(s *State)

// SyncDir is the direction of a channel synchronisation.
type SyncDir uint8

// Synchronisation directions.
const (
	NoSync SyncDir = iota
	Emit           // a!
	Recv           // a?
)

// Edge connects two locations of one automaton.
type Edge struct {
	From, To int
	Guard    Guard
	Chan     int // channel id; meaningful when Dir != NoSync
	Dir      SyncDir
	Update   Update
	Label    string // for traces
}

// Location is a named node with a kind and an optional invariant.
type Location struct {
	Name      string
	Kind      Kind
	Invariant Guard // nil = true
}

// Automaton is one component of the network.
type Automaton struct {
	Name      string
	Locations []Location
	Edges     []Edge
	Init      int

	out [][]int // edge indices by source location (built by Network)
}

// Network is a closed system of automata over shared variables and clocks.
type Network struct {
	Automata   []*Automaton
	VarNames   []string
	ClockNames []string
	ChanNames  []string
	// ClockMax is the saturation ceiling per clock (max-constant
	// abstraction): after reaching ClockMax[c]+1 a clock no longer grows.
	// Guards must not compare clock c against constants above ClockMax[c].
	ClockMax []int
	// InitVars optionally overrides the all-zero initial variable values.
	InitVars []int
}

// Validate checks structural sanity and builds edge indices.
func (n *Network) Validate() error {
	if len(n.Automata) == 0 {
		return errors.New("ta: empty network")
	}
	for _, a := range n.Automata {
		if a.Init < 0 || a.Init >= len(a.Locations) {
			return fmt.Errorf("ta: %s: init location %d out of range", a.Name, a.Init)
		}
		a.out = make([][]int, len(a.Locations))
		for ei, e := range a.Edges {
			if e.From < 0 || e.From >= len(a.Locations) || e.To < 0 || e.To >= len(a.Locations) {
				return fmt.Errorf("ta: %s: edge %d endpoints out of range", a.Name, ei)
			}
			if e.Dir != NoSync && (e.Chan < 0 || e.Chan >= len(n.ChanNames)) {
				return fmt.Errorf("ta: %s: edge %d channel %d out of range", a.Name, ei, e.Chan)
			}
			a.out[e.From] = append(a.out[e.From], ei)
		}
	}
	if len(n.ClockMax) != len(n.ClockNames) {
		return fmt.Errorf("ta: ClockMax length %d != clocks %d", len(n.ClockMax), len(n.ClockNames))
	}
	if n.InitVars != nil && len(n.InitVars) != len(n.VarNames) {
		return fmt.Errorf("ta: InitVars length %d != vars %d", len(n.InitVars), len(n.VarNames))
	}
	return nil
}

// Initial returns the initial configuration.
func (n *Network) Initial() *State {
	s := &State{
		Locs:   make([]int, len(n.Automata)),
		Vars:   make([]int, len(n.VarNames)),
		Clocks: make([]int, len(n.ClockNames)),
	}
	for i, a := range n.Automata {
		s.Locs[i] = a.Init
	}
	if n.InitVars != nil {
		copy(s.Vars, n.InitVars)
	}
	return s
}

// invariantsHold reports whether every occupied location's invariant holds.
func (n *Network) invariantsHold(s *State) bool {
	for i, a := range n.Automata {
		if inv := a.Locations[s.Locs[i]].Invariant; inv != nil && !inv(s) {
			return false
		}
	}
	return true
}

// anyCommitted reports whether some automaton occupies a committed location.
func (n *Network) anyCommitted(s *State) bool {
	for i, a := range n.Automata {
		if a.Locations[s.Locs[i]].Kind == Committed {
			return true
		}
	}
	return false
}

// anyUrgentOrCommitted reports whether time is frozen by a location kind.
func (n *Network) anyUrgentOrCommitted(s *State) bool {
	for i, a := range n.Automata {
		k := a.Locations[s.Locs[i]].Kind
		if k == Committed || k == Urgent {
			return true
		}
	}
	return false
}

// Step describes one transition for traces.
type Step struct {
	Delay   bool
	AutoA   int    // acting automaton (emitter for syncs)
	AutoB   int    // receiver for syncs, −1 otherwise
	Label   string // edge label(s)
	Elapsed int    // cumulative delay steps before this action
}

// Successors appends all successor states of s to out, with matching Step
// descriptors appended to steps. The committed-location priority rule and
// delay blocking are applied.
func (n *Network) Successors(s *State, out []*State, steps []Step) ([]*State, []Step) {
	committed := n.anyCommitted(s)

	fire := func(ns *State) *State { // apply invariant admissibility
		if n.invariantsHold(ns) {
			return ns
		}
		return nil
	}

	// Internal edges.
	for ai, a := range n.Automata {
		if committed && a.Locations[s.Locs[ai]].Kind != Committed {
			continue
		}
		for _, ei := range a.out[s.Locs[ai]] {
			e := &a.Edges[ei]
			if e.Dir != NoSync {
				continue
			}
			if e.Guard != nil && !e.Guard(s) {
				continue
			}
			ns := s.clone()
			ns.Locs[ai] = e.To
			if e.Update != nil {
				e.Update(ns)
			}
			if ns = fire(ns); ns != nil {
				out = append(out, ns)
				steps = append(steps, Step{AutoA: ai, AutoB: -1, Label: e.Label})
			}
		}
	}

	// Channel synchronisations: emitter × receiver pairs.
	for ai, a := range n.Automata {
		for _, ei := range a.out[s.Locs[ai]] {
			e := &a.Edges[ei]
			if e.Dir != Emit {
				continue
			}
			if e.Guard != nil && !e.Guard(s) {
				continue
			}
			for bi, b := range n.Automata {
				if bi == ai {
					continue
				}
				if committed &&
					a.Locations[s.Locs[ai]].Kind != Committed &&
					b.Locations[s.Locs[bi]].Kind != Committed {
					continue
				}
				for _, fi := range b.out[s.Locs[bi]] {
					f := &b.Edges[fi]
					if f.Dir != Recv || f.Chan != e.Chan {
						continue
					}
					if f.Guard != nil && !f.Guard(s) {
						continue
					}
					ns := s.clone()
					ns.Locs[ai] = e.To
					ns.Locs[bi] = f.To
					if e.Update != nil {
						e.Update(ns)
					}
					if f.Update != nil {
						f.Update(ns)
					}
					if ns = fire(ns); ns != nil {
						out = append(out, ns)
						steps = append(steps, Step{AutoA: ai, AutoB: bi,
							Label: e.Label + "!/" + f.Label + "?"})
					}
				}
			}
		}
	}

	// Delay step (one time unit) with clock saturation.
	if !n.anyUrgentOrCommitted(s) {
		ns := s.clone()
		for c := range ns.Clocks {
			if ns.Clocks[c] <= n.ClockMax[c] {
				ns.Clocks[c]++
			}
		}
		if n.invariantsHold(ns) {
			out = append(out, ns)
			steps = append(steps, Step{Delay: true, AutoA: -1, AutoB: -1, Label: "delay"})
		}
	}
	return out, steps
}
