package mapping

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tightcps/internal/sched"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// waitForCoalesced parks the calling test until n callers are blocked on
// the cache's in-flight verification.
func waitForCoalesced(t *testing.T, c *Cache, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, coalesced := c.Stats(); coalesced >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("callers never coalesced onto the in-flight verification")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheSingleflight: concurrent misses on one key run the verifier
// once; the rest wait and share the verdict, counted as coalesced.
func TestCacheSingleflight(t *testing.T) {
	a, b := mkProfile("A", 3, 2), mkProfile("B", 5, 1)
	const waiters = 7

	gate := make(chan struct{})
	started := make(chan struct{})
	calls := 0
	vf := func([]*switching.Profile) (bool, error) {
		calls++ // the singleflight guarantees this never runs concurrently
		if calls == 1 {
			close(started)
		}
		<-gate
		return true, nil
	}

	c := NewCache()
	set := []*switching.Profile{a, b}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if ok, err := c.Do(set, vf); !ok || err != nil {
			t.Errorf("leader: verdict=%v err=%v", ok, err)
		}
	}()
	<-started // the leader is parked inside vf; everyone else must coalesce

	var wg sync.WaitGroup
	results := make([]bool, waiters)
	errs := make([]error, waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(set, vf)
		}(i)
	}
	waitForCoalesced(t, c, waiters)
	close(gate)
	wg.Wait()
	<-leaderDone

	for i := 0; i < waiters; i++ {
		if !results[i] || errs[i] != nil {
			t.Fatalf("waiter %d: verdict=%v err=%v", i, results[i], errs[i])
		}
	}
	if calls != 1 {
		t.Fatalf("verifier ran %d times under concurrent misses, want 1", calls)
	}
	hits, misses, coalesced := c.Stats()
	if hits != 0 || misses != 1 || coalesced != waiters {
		t.Fatalf("hits=%d misses=%d coalesced=%d, want 0/1/%d", hits, misses, coalesced, waiters)
	}
}

// TestCacheSingleflightError: waiters coalesced onto a failing run receive
// its error, and the failure is not memoized.
func TestCacheSingleflightError(t *testing.T) {
	a := mkProfile("A", 3, 2)
	gate := make(chan struct{})
	started := make(chan struct{})
	vf := func([]*switching.Profile) (bool, error) {
		close(started)
		<-gate
		return false, errTest
	}
	c := NewCache()
	done := make(chan error, 1)
	go func() {
		_, err := c.Do([]*switching.Profile{a}, vf)
		done <- err
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.Do([]*switching.Profile{a}, vf)
		waiterErr <- err
	}()
	// The waiter must be parked on the in-flight call before it resolves.
	waitForCoalesced(t, c, 1)
	close(gate)
	if err := <-done; !errors.Is(err, errTest) {
		t.Fatalf("leader error = %v", err)
	}
	if err := <-waiterErr; !errors.Is(err, errTest) {
		t.Fatalf("coalesced waiter error = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed verification was memoized")
	}
}

// TestCacheSaveLoadRoundTrip: verdicts survive serialization, a warm
// loaded cache answers without running the verifier, and mismatched config
// salts are rejected.
func TestCacheSaveLoadRoundTrip(t *testing.T) {
	a, b, c := mkProfile("A", 3, 2), mkProfile("B", 5, 1), mkProfile("C", 7, 4)
	cfgKey := VerifyConfigKey(verify.Config{NondetTies: true, MaxStates: 1000})
	src := NewCacheFor(cfgKey)
	verdicts := map[string]bool{"ab": true, "abc": false, "c": true}
	sets := map[string][]*switching.Profile{
		"ab": {a, b}, "abc": {a, b, c}, "c": {c},
	}
	for name, ps := range sets {
		want := verdicts[name]
		got, err := src.Do(ps, func([]*switching.Profile) (bool, error) { return want, nil })
		if err != nil || got != want {
			t.Fatalf("seeding %s: %v %v", name, got, err)
		}
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewCacheFor(cfgKey)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("loaded %d verdicts, want 3", dst.Len())
	}
	for name, ps := range sets {
		got, err := dst.Do(ps, func([]*switching.Profile) (bool, error) {
			t.Fatalf("verifier ran on the warm cache for %s", name)
			return false, nil
		})
		if err != nil || got != verdicts[name] {
			t.Fatalf("warm %s: %v %v", name, got, err)
		}
	}
	if hits, _, _ := dst.Stats(); hits != 3 {
		t.Fatalf("warm cache served %d hits, want 3", hits)
	}

	// A differently-configured cache must refuse the file.
	other := NewCacheFor(VerifyConfigKey(verify.Config{NondetTies: true, MaxStates: 2000}))
	if err := other.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCacheConfig) {
		t.Fatalf("mismatched salt: want ErrCacheConfig, got %v", err)
	}
	if other.Len() != 0 {
		t.Fatal("mismatched load still imported verdicts")
	}

	// Corruption: bad magic and truncation both fail loudly.
	if err := NewCacheFor(cfgKey).Load(bytes.NewReader([]byte("not a cache file at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := NewCacheFor(cfgKey).Load(bytes.NewReader(buf.Bytes()[:buf.Len()-1])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

// TestCacheFileRoundTrip covers the file convenience wrappers, including
// the missing-file cold start.
func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.bin")
	c := NewCacheFor(7)
	if loaded, err := c.LoadFile(path); err != nil || loaded {
		t.Fatalf("missing file: loaded=%v err=%v", loaded, err)
	}
	a := mkProfile("A", 3, 2)
	if _, err := c.Do([]*switching.Profile{a}, func([]*switching.Profile) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCacheFor(7)
	if loaded, err := warm.LoadFile(path); err != nil || !loaded {
		t.Fatalf("loaded=%v err=%v", loaded, err)
	}
	if warm.Len() != 1 {
		t.Fatalf("loaded %d verdicts, want 1", warm.Len())
	}
}

// TestVerifyConfigKey: verdict-relevant knobs change the key, concurrency
// and reduction knobs do not, and extra salts fold in.
func TestVerifyConfigKey(t *testing.T) {
	base := verify.Config{NondetTies: true, MaxStates: 1000}
	key := VerifyConfigKey(base)
	same := []verify.Config{
		{NondetTies: true, MaxStates: 1000, Workers: 8},
		{NondetTies: true, MaxStates: 1000, SymmetryReduction: true},
	}
	for i, cfg := range same {
		if VerifyConfigKey(cfg) != key {
			t.Errorf("verdict-neutral knob %d changed the key", i)
		}
	}
	different := []verify.Config{
		{NondetTies: true, MaxStates: 2000},
		{NondetTies: false, MaxStates: 1000},
		{NondetTies: true, MaxStates: 1000, MaxDisturbances: 2},
		{NondetTies: true, MaxStates: 1000, Policy: sched.PreemptLazy},
	}
	seen := map[uint64]int{key: -1}
	for i, cfg := range different {
		k := VerifyConfigKey(cfg)
		if prev, clash := seen[k]; clash {
			t.Errorf("configs %d and %d share a key", i, prev)
		}
		seen[k] = i
	}
	if VerifyConfigKey(base, 2) == key || VerifyConfigKey(base, 2) == VerifyConfigKey(base, 3) {
		t.Error("extra salts do not separate keys")
	}
}
