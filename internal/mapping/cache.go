package mapping

// Admission memoization: slot-sharing verification is by far the most
// expensive step of dimensioning, and both the first-fit heuristic and the
// exact DP partitioner — let alone repeated experiment sweeps — keep asking
// the verifier about profile sets they have asked about before. The cache
// keys each admission question by a canonical, order-independent fingerprint
// of the profile set, salted with a fingerprint of the verification
// configuration, so any permutation of the same profiles (and any
// recomputation of identical profiles) reuses the stored verdict while runs
// that verify differently never cross-contaminate.
//
// Concurrent misses on one key coalesce: the first caller runs the verifier,
// the rest wait for its verdict (singleflight), so the expensive admission
// question runs once no matter how many engine workers ask it at the same
// time. Caches also serialize — Save/Load move the verdict map through a
// versioned, length-prefixed binary format so repeated CLI invocations and
// CI sweeps start warm.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sync"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// mix64 is the splitmix64 finalizer, used to scatter fingerprint words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// profileFingerprint hashes the admission-relevant content of one profile:
// timing parameters and the full T*w/Tdw tables. The name is deliberately
// excluded — admission verdicts depend only on profile content, so fleet
// instances of one design (identical tables, distinct names) share cache
// entries. A fleet's k-th admission check then hits the verdict computed
// for the first k instances regardless of which instances fill the slot,
// which collapses the dimensioning of large synthetic workloads from
// O(instances × slots) verifications to one per distinct slot shape.
func profileFingerprint(p *switching.Profile) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	word := func(v int) {
		h = mix64(h ^ uint64(int64(v))*0x9e3779b97f4a7c15)
	}
	word(p.R)
	word(p.JStar)
	word(p.TwStar)
	word(p.Granularity)
	word(len(p.TdwMinus))
	for _, v := range p.TdwMinus {
		word(v)
	}
	word(len(p.TdwPlus))
	for _, v := range p.TdwPlus {
		word(v)
	}
	return h
}

// Fingerprint returns a canonical fingerprint of a profile set: per-profile
// hashes combined commutatively (sum and rotated xor), so every permutation
// of the same profiles yields the same key while sets differing in any
// profile's tables or timing parameters yield different keys (modulo 64-bit
// collisions). Names do not participate: sets that differ only in which
// fleet instances of a design they contain share one key.
func Fingerprint(profiles []*switching.Profile) uint64 {
	var sum, xor uint64
	for _, p := range profiles {
		h := profileFingerprint(p)
		sum += h
		xor ^= bits.RotateLeft64(h, 17)
	}
	return mix64(sum ^ bits.RotateLeft64(xor, 32) ^ uint64(len(profiles))*0x9e3779b97f4a7c15)
}

// VerifyConfigKey fingerprints the verdict-relevant fields of a
// verification config — policy, disturbance bound, tie exploration and the
// state budget (sweeps reject conservatively on a busted budget, making
// their cached verdicts budget-dependent) — plus any extra salts the caller
// folds in (e.g. the cluster size of a distributed run, whose per-node
// budget scales aggregate capacity). Workers, Trace, SymmetryReduction,
// Distributed and DistTopology do not change verdicts and are excluded, so
// warm caches carry across those knobs.
func VerifyConfigKey(cfg verify.Config, extra ...uint64) uint64 {
	h := uint64(0x5107ad3415510c4e) // arbitrary nonzero seed
	word := func(v uint64) {
		h = mix64(h ^ v*0x9e3779b97f4a7c15)
	}
	word(uint64(cfg.MaxDisturbances))
	word(uint64(cfg.Policy))
	if cfg.NondetTies {
		word(1)
	} else {
		word(2)
	}
	word(uint64(cfg.MaxStates))
	for _, e := range extra {
		word(e)
	}
	return h
}

// inflight is one running admission question; waiters block on done and
// read the leader's outcome.
type inflight struct {
	done    chan struct{}
	verdict bool
	err     error
}

// Cache memoizes admission verdicts across FirstFit attempts, the DP
// partitioner's subset enumeration, and repeated dimensioning runs. It is
// safe for concurrent use; concurrent misses on one key run the verifier
// once. Verification errors are not cached (waiters coalesced onto a
// failing run do receive its error).
//
// Keys cover the profile set and the config salt the cache was built with
// (NewCacheFor); the zero salt of NewCache means "unspecified config" and
// must not be mixed with differently-configured runs.
type Cache struct {
	mu       sync.Mutex
	cfgKey   uint64
	verdicts map[uint64]bool
	running  map[uint64]*inflight

	// dirty marks the fingerprint-prefix shards whose verdicts changed
	// since the last SaveDir, so a hot service checkpoints incrementally:
	// only the shard files behind new verdicts are rewritten.
	dirty [SaveShards]bool

	hits, misses, coalesced int
}

// NewCache returns an empty admission cache with no config salt.
func NewCache() *Cache { return NewCacheFor(0) }

// NewCacheFor returns an empty admission cache whose keys are salted with
// cfgKey (see VerifyConfigKey), making serialized caches safe across runs:
// a cache file produced under one verification config never answers for
// another.
func NewCacheFor(cfgKey uint64) *Cache {
	return &Cache{
		cfgKey:   cfgKey,
		verdicts: map[uint64]bool{},
		running:  map[uint64]*inflight{},
	}
}

// key folds the config salt into the profile-set fingerprint.
func (c *Cache) key(profiles []*switching.Profile) uint64 {
	k := Fingerprint(profiles)
	if c.cfgKey != 0 {
		k = mix64(k ^ c.cfgKey)
	}
	return k
}

// Do answers the admission question for the profile set, consulting the
// cache before falling back to vf. Exactly one caller per key runs the
// verifier at a time: concurrent misses wait for the in-flight run and
// share its verdict (or its error), counted in Stats as coalesced.
func (c *Cache) Do(profiles []*switching.Profile, vf VerifyFunc) (bool, error) {
	key := c.key(profiles)
	c.mu.Lock()
	if ok, hit := c.verdicts[key]; hit {
		c.hits++
		c.mu.Unlock()
		return ok, nil
	}
	if fl, running := c.running[key]; running {
		c.coalesced++
		c.mu.Unlock()
		<-fl.done
		return fl.verdict, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	c.running[key] = fl
	c.mu.Unlock()

	ok, err := vf(profiles)

	c.mu.Lock()
	delete(c.running, key)
	if err == nil {
		c.verdicts[key] = ok
		c.dirty[shardOf(key)] = true
		c.misses++
	}
	c.mu.Unlock()
	fl.verdict, fl.err = ok, err
	close(fl.done)
	if err != nil {
		return false, err
	}
	return ok, nil
}

// Wrap returns a VerifyFunc that memoizes vf through the cache.
func (c *Cache) Wrap(vf VerifyFunc) VerifyFunc {
	return func(profiles []*switching.Profile) (bool, error) {
		return c.Do(profiles, vf)
	}
}

// Stats returns the cumulative hit, miss and coalesced-wait counts. A
// coalesced wait is a miss that piggybacked on an in-flight verification
// instead of running its own.
func (c *Cache) Stats() (hits, misses, coalesced int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.coalesced
}

// Len returns the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.verdicts)
}

// Serialization format (little-endian throughout):
//
//	magic   [8]byte  "TCPSADM\x01"   (format version in the last byte)
//	cfgKey  uint64   config salt the cache was built with
//	count   uint64   length prefix of the entry block
//	entry   count × { key uint64, verdict uint8 }
var cacheMagic = [8]byte{'T', 'C', 'P', 'S', 'A', 'D', 'M', 1}

// ErrCacheConfig is returned by Load when the file was produced under a
// different verification config (mismatched salt): its verdicts would be
// unsound to reuse, so none are loaded.
var ErrCacheConfig = errors.New("mapping: cache file was produced under a different verification config")

// Save writes every cached verdict to w in the versioned binary format.
// In-flight verifications and hit/miss statistics are not persisted.
func (c *Cache) Save(w io.Writer) error { return c.save(w, -1) }

// save writes the verdicts of one fingerprint-prefix shard (or all of
// them, shard < 0) to w.
func (c *Cache) save(w io.Writer, shard int) error {
	c.mu.Lock()
	cfgKey := c.cfgKey
	entries := make([]uint64, 0, 2*len(c.verdicts))
	for k, ok := range c.verdicts {
		if shard >= 0 && shardOf(k) != shard {
			continue
		}
		v := uint64(0)
		if ok {
			v = 1
		}
		entries = append(entries, k, v)
	}
	c.mu.Unlock()

	buf := make([]byte, 0, 24+9*len(entries)/2)
	buf = append(buf, cacheMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, cfgKey)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)/2))
	for i := 0; i < len(entries); i += 2 {
		buf = binary.LittleEndian.AppendUint64(buf, entries[i])
		buf = append(buf, byte(entries[i+1]))
	}
	_, err := w.Write(buf)
	return err
}

// Load merges the verdicts serialized in r into the cache. The file's
// config salt must match the cache's (ErrCacheConfig otherwise); existing
// entries win over file entries with the same key, so loading after a few
// fresh verifications never regresses them. Loaded entries count as dirty
// — a following SaveDir carries them into the shard layout — so a legacy
// single-file cache converts by Load + SaveDir.
func (c *Cache) Load(r io.Reader) error { return c.load(r, true) }

func (c *Cache) load(r io.Reader, markDirty bool) error {
	var header [24]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return fmt.Errorf("mapping: reading cache header: %w", err)
	}
	if [8]byte(header[:8]) != cacheMagic {
		return fmt.Errorf("mapping: not an admission cache file (bad magic %q)", header[:8])
	}
	cfgKey := binary.LittleEndian.Uint64(header[8:16])
	count := binary.LittleEndian.Uint64(header[16:24])
	if cfgKey != c.cfgKey {
		return fmt.Errorf("%w: file salt %#x, cache salt %#x", ErrCacheConfig, cfgKey, c.cfgKey)
	}
	// The count is untrusted until the records behind it materialize: read
	// in fixed-size chunks so a corrupt header fails with a read error
	// instead of a giant up-front allocation.
	const chunkRecords = 4096
	var body [9 * chunkRecords]byte
	c.mu.Lock()
	defer c.mu.Unlock()
	for read := uint64(0); read < count; {
		n := count - read
		if n > chunkRecords {
			n = chunkRecords
		}
		chunk := body[:9*n]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return fmt.Errorf("mapping: reading cache entries %d..%d of %d: %w", read, read+n, count, err)
		}
		for i := uint64(0); i < n; i++ {
			rec := chunk[9*i:]
			key := binary.LittleEndian.Uint64(rec)
			if _, exists := c.verdicts[key]; !exists {
				c.verdicts[key] = rec[8] != 0
				if markDirty {
					c.dirty[shardOf(key)] = true
				}
			}
		}
		read += n
	}
	return nil
}

// Sharded persistence: a long-running admission service cannot afford to
// rewrite one monolithic cache file on every checkpoint, so SaveDir
// partitions the verdict map into SaveShards files by fingerprint prefix
// (the top bits of the salted key) and rewrites only the shards dirtied
// since the previous checkpoint. Each shard file is a complete,
// independently-loadable cache file in the versioned format above.

// SaveShards is the fingerprint-prefix fan-out of SaveDir: keys land in
// shard key>>60, so one shard holds ~1/16 of the verdicts and a checkpoint
// after a handful of fresh admissions rewrites a few small files instead
// of the whole cache.
const SaveShards = 16

func shardOf(key uint64) int { return int(key >> 60) }

// shardPath names shard files so LoadDir can enumerate them without
// globbing: admit-00.shard .. admit-0f.shard.
func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("admit-%02x.shard", shard))
}

// SaveDir checkpoints the cache into dir (created if missing), rewriting
// only the shards with verdicts added since the last SaveDir. Each shard
// file is written atomically via a sibling temp file. It returns how many
// shard files were rewritten — 0 means the checkpoint was free.
func (c *Cache) SaveDir(dir string) (written int, err error) {
	c.mu.Lock()
	var todo []int
	for s, d := range c.dirty {
		if d {
			todo = append(todo, s)
			c.dirty[s] = false
		}
	}
	c.mu.Unlock()
	if len(todo) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.remarkDirty(todo)
		return 0, err
	}
	for _, s := range todo {
		if err := c.saveShardFile(dir, s); err != nil {
			c.remarkDirty(todo[written:])
			return written, err
		}
		written++
	}
	return written, nil
}

// remarkDirty restores dirty flags after a failed checkpoint so the next
// SaveDir retries the unwritten shards.
func (c *Cache) remarkDirty(shards []int) {
	c.mu.Lock()
	for _, s := range shards {
		c.dirty[s] = true
	}
	c.mu.Unlock()
}

func (c *Cache) saveShardFile(dir string, shard int) error {
	path := shardPath(dir, shard)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.save(f, shard); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDir merges every shard file present in dir into the cache,
// returning how many files were read. A missing directory (or one with no
// shard files) is the cold-start case and reports 0 without error. A
// corrupt or config-mismatched shard does not abort the load: the healthy
// shards still warm-start the service — losing one shard's verdicts only
// costs re-verification, never correctness — and the joined error names
// every bad shard so the operator sees the damage. Entries loaded from
// dir are clean — they are already on disk in this layout — so a
// following SaveDir does not rewrite them (a corrupt shard file is
// likewise left in place until its entries are re-earned and re-saved).
func (c *Cache) LoadDir(dir string) (loaded int, err error) {
	var bad []error
	for s := 0; s < SaveShards; s++ {
		f, ferr := os.Open(shardPath(dir, s))
		if errors.Is(ferr, os.ErrNotExist) {
			continue
		}
		if ferr != nil {
			bad = append(bad, ferr)
			continue
		}
		ferr = c.load(f, false)
		f.Close()
		if ferr != nil {
			bad = append(bad, fmt.Errorf("mapping: cache shard %02x: %w", s, ferr))
			continue
		}
		loaded++
	}
	return loaded, errors.Join(bad...)
}

// SaveFile writes the cache to path (atomically via a sibling temp file).
func (c *Cache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges the cache file at path. A missing file is not an error —
// it is the cold-start case — and reports false; any other failure
// (corruption, config mismatch) is returned.
func (c *Cache) LoadFile(path string) (loaded bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := c.Load(f); err != nil {
		return false, err
	}
	return true, nil
}
