package mapping

// Admission memoization: slot-sharing verification is by far the most
// expensive step of dimensioning, and both the first-fit heuristic and the
// exact DP partitioner — let alone repeated experiment sweeps — keep asking
// the verifier about profile sets they have asked about before. The cache
// keys each admission question by a canonical, order-independent fingerprint
// of the profile set, so any permutation of the same profiles (and any
// recomputation of identical profiles) reuses the stored verdict.

import (
	"math/bits"
	"sync"

	"tightcps/internal/switching"
)

// mix64 is the splitmix64 finalizer, used to scatter fingerprint words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const fnvPrime = 1099511628211

// profileFingerprint hashes the admission-relevant content of one profile:
// timing parameters and the full T*w/Tdw tables. The name is deliberately
// excluded — admission verdicts depend only on profile content, so fleet
// instances of one design (identical tables, distinct names) share cache
// entries. A fleet's k-th admission check then hits the verdict computed
// for the first k instances regardless of which instances fill the slot,
// which collapses the dimensioning of large synthetic workloads from
// O(instances × slots) verifications to one per distinct slot shape.
func profileFingerprint(p *switching.Profile) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	word := func(v int) {
		h = mix64(h ^ uint64(int64(v))*0x9e3779b97f4a7c15)
	}
	word(p.R)
	word(p.JStar)
	word(p.TwStar)
	word(p.Granularity)
	word(len(p.TdwMinus))
	for _, v := range p.TdwMinus {
		word(v)
	}
	word(len(p.TdwPlus))
	for _, v := range p.TdwPlus {
		word(v)
	}
	return h
}

// Fingerprint returns a canonical fingerprint of a profile set: per-profile
// hashes combined commutatively (sum and rotated xor), so every permutation
// of the same profiles yields the same key while sets differing in any
// profile's tables or timing parameters yield different keys (modulo 64-bit
// collisions). Names do not participate: sets that differ only in which
// fleet instances of a design they contain share one key.
func Fingerprint(profiles []*switching.Profile) uint64 {
	var sum, xor uint64
	for _, p := range profiles {
		h := profileFingerprint(p)
		sum += h
		xor ^= bits.RotateLeft64(h, 17)
	}
	return mix64(sum ^ bits.RotateLeft64(xor, 32) ^ uint64(len(profiles))*0x9e3779b97f4a7c15)
}

// Cache memoizes admission verdicts across FirstFit attempts, the DP
// partitioner's subset enumeration, and repeated dimensioning runs. It is
// safe for concurrent use. Verification errors are not cached.
//
// The key covers only the profile set, not the verifier configuration: a
// Cache must not be shared between runs that verify under different policies
// or disturbance bounds.
type Cache struct {
	mu           sync.Mutex
	verdicts     map[uint64]bool
	hits, misses int
}

// NewCache returns an empty admission cache.
func NewCache() *Cache {
	return &Cache{verdicts: map[uint64]bool{}}
}

// Do answers the admission question for the profile set, consulting the
// cache before falling back to vf. The verifier runs outside the cache lock,
// so concurrent callers may race to compute the same key; both runs return
// the same verdict (the verifier is deterministic) and the first store wins.
func (c *Cache) Do(profiles []*switching.Profile, vf VerifyFunc) (bool, error) {
	key := Fingerprint(profiles)
	c.mu.Lock()
	if ok, hit := c.verdicts[key]; hit {
		c.hits++
		c.mu.Unlock()
		return ok, nil
	}
	c.mu.Unlock()
	ok, err := vf(profiles)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	c.verdicts[key] = ok
	c.misses++
	c.mu.Unlock()
	return ok, nil
}

// Wrap returns a VerifyFunc that memoizes vf through the cache.
func (c *Cache) Wrap(vf VerifyFunc) VerifyFunc {
	return func(profiles []*switching.Profile) (bool, error) {
		return c.Do(profiles, vf)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.verdicts)
}
