package mapping

import (
	"reflect"
	"testing"

	"tightcps/internal/plants"
	"tightcps/internal/switching"
)

func caseStudyProfiles(t *testing.T) []*switching.Profile {
	t.Helper()
	ps, err := plants.ProfileList("C1", "C2", "C3", "C4", "C5", "C6")
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestSortOrderMatchesPaper: ascending T*w with the max-Tdw− tie-break
// yields the paper's order {C1, C5, C4, C6, C2, C3}.
func TestSortOrderMatchesPaper(t *testing.T) {
	ps := caseStudyProfiles(t)
	var names []string
	for _, i := range SortOrder(ps) {
		names = append(names, ps[i].Name)
	}
	want := []string{"C1", "C5", "C4", "C6", "C2", "C3"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("order %v, want %v", names, want)
	}
}

// TestFirstFitReproducesPaperPartition is the paper's headline dimensioning
// result: first-fit with exact verification maps the six applications onto
// two TT slots, partitioned {C1,C5,C4,C3} and {C6,C2}.
func TestFirstFitReproducesPaperPartition(t *testing.T) {
	ps := caseStudyProfiles(t)
	res, err := FirstFit(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SlotNames(ps)
	want := [][]string{{"C1", "C5", "C4", "C3"}, {"C6", "C2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partition %v, want %v", got, want)
	}
	if res.Verifications == 0 {
		t.Fatal("no verifications counted")
	}
}

// TestOptimalMatchesFirstFitOnCaseStudy: for the case study the exact
// minimum is also 2 slots — first-fit is optimal here.
func TestOptimalMatchesFirstFitOnCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("verifies all 63 subsets")
	}
	ps := caseStudyProfiles(t)
	res, err := Optimal(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 2 {
		t.Fatalf("optimal uses %d slots, want 2 (%v)", len(res.Slots), res.SlotNames(ps))
	}
}

// stubVerify makes feasibility depend on a provided predicate over name
// sets, for fast unit tests of the mapping logic itself.
func stubVerify(ok func(names []string) bool) VerifyFunc {
	return func(ps []*switching.Profile) (bool, error) {
		var names []string
		for _, p := range ps {
			names = append(names, p.Name)
		}
		return ok(names), nil
	}
}

func mkProfile(name string, twStar, maxTdwMinus int) *switching.Profile {
	n := twStar + 1
	minT := make([]int, n)
	plusT := make([]int, n)
	for i := range minT {
		minT[i] = maxTdwMinus
		plusT[i] = maxTdwMinus + 1
	}
	return &switching.Profile{Name: name, TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
		R: twStar + 50, Granularity: 1}
}

func TestFirstFitPacksGreedily(t *testing.T) {
	ps := []*switching.Profile{
		mkProfile("A", 1, 1),
		mkProfile("B", 2, 1),
		mkProfile("C", 3, 1),
	}
	// Only pairs {A,B} and singletons are feasible.
	vf := stubVerify(func(names []string) bool {
		if len(names) == 1 {
			return true
		}
		if len(names) == 2 && names[0] == "A" && names[1] == "B" {
			return true
		}
		return false
	})
	res, err := FirstFit(ps, vf)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SlotNames(ps)
	want := [][]string{{"A", "B"}, {"C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partition %v, want %v", got, want)
	}
}

func TestOptimalBeatsFirstFitWhenGreedyTraps(t *testing.T) {
	// Feasible pairs: {A,B}, {C,D}, {A,C}, {B,D} — but first-fit in order
	// A,B,C,D pairs A+B then C+D: 2 slots; optimal also 2. Construct a trap:
	// feasible sets {A,B}, {A,C}, {B,C} singles... classic trap: first-fit
	// order A,B,C with feasible {A,C},{B} only as pairs: FF: A alone (B
	// can't join? {A,B} infeasible) → A; B → {A,B} no → B; C → {A,C} yes →
	// {A,C},{B}: 2 slots, optimal 2. Use 4 apps: feasible pairs {A,C},{B,D}
	// but FF tries {A,B} no, {A,C} later... order A,B,C,D: A→s1; B: {A,B}
	// no → s2; C: {A,C} yes → s1={A,C}; D: {A,C,D} no, {B,D} yes → 2 slots.
	// To actually trap FF we need triples: feasible {A,B} and {C,D} and
	// {A,C} — FF: A; B joins A; C alone; D joins C → 2; optimal 2. Greedy
	// bin covering is hard to trap with pairs; use asymmetric sizes:
	// feasible: {A,B,C} and {D}; also {A,D}. FF: A; B→{A,B}? make it
	// infeasible... then {A,B,C} can't form under FF (built incrementally).
	ps := []*switching.Profile{
		mkProfile("A", 1, 1), mkProfile("B", 2, 1),
		mkProfile("C", 3, 1), mkProfile("D", 4, 1),
	}
	feasible := map[string]bool{
		"A": true, "B": true, "C": true, "D": true,
		"A,B,C": true, "A,D": true,
	}
	vf := stubVerify(func(names []string) bool {
		key := ""
		for i, n := range names {
			if i > 0 {
				key += ","
			}
			key += n
		}
		// Normalize: the stub receives names in insertion order; sort-free
		// keys cover the combos used here.
		return feasible[key]
	})
	ff, err := FirstFit(ps, vf)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(ps, vf)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Slots) > len(ff.Slots) {
		t.Fatalf("optimal (%d) worse than first-fit (%d)", len(opt.Slots), len(ff.Slots))
	}
	if len(opt.Slots) != 2 { // {A,B,C} + {D} — wait, D pairs only with A.
		// {A,B,C} and {D}: both feasible → 2 slots.
		t.Fatalf("optimal = %v", opt.SlotNames(ps))
	}
	if len(ff.Slots) != 3 { // FF: A; B can't join {A} ({A,B} infeasible) ...
		t.Fatalf("first-fit = %v, expected the 3-slot trap", ff.SlotNames(ps))
	}
}

func TestOptimalInfeasibleSingleton(t *testing.T) {
	ps := []*switching.Profile{mkProfile("A", 1, 1)}
	vf := stubVerify(func([]string) bool { return false })
	if _, err := Optimal(ps, vf); err == nil {
		t.Fatal("infeasible singleton accepted")
	}
}

func TestOptimalEmpty(t *testing.T) {
	res, err := Optimal(nil, nil)
	if err != nil || len(res.Slots) != 0 {
		t.Fatalf("empty optimal: %v, %v", res, err)
	}
}

func TestFirstFitVerifierErrorPropagates(t *testing.T) {
	ps := []*switching.Profile{mkProfile("A", 1, 1), mkProfile("B", 2, 1)}
	vf := func([]*switching.Profile) (bool, error) {
		return false, errTest
	}
	if _, err := FirstFit(ps, vf); err == nil {
		t.Fatal("verifier error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
