// Package mapping implements the paper's resource-mapping layer (Sec. 5):
// applications are sorted by ascending T*w (ties by smaller max Tdw−) and
// placed first-fit into TT slots, where admission into a slot is decided by
// the exact model-checking verification of internal/verify. For small
// application sets an exact minimum-slot partition (DP over verified
// subsets) is also provided, quantifying how close first-fit comes to the
// optimum.
package mapping

import (
	"fmt"
	"math/bits"
	"sort"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// VerifyFunc decides whether a set of applications can share one slot.
// The default uses the packed exact verifier.
type VerifyFunc func(profiles []*switching.Profile) (bool, error)

// DefaultVerify verifies via the exact packed model checker with
// nondeterministic tie exploration (sound).
func DefaultVerify(profiles []*switching.Profile) (bool, error) {
	res, err := verify.Slot(profiles, verify.Config{NondetTies: true})
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}

// Result is a slot dimensioning outcome.
type Result struct {
	// Slots lists, per TT slot, the indices into the input profile list.
	Slots [][]int
	// Verifications counts admission checks performed (cache hits included).
	Verifications int
	// CacheHits and CacheMisses count admission checks served from / added
	// to the memoization cache. Both stay zero when no cache is used.
	CacheHits   int
	CacheMisses int
}

// SlotNames renders the partition with application names.
func (r *Result) SlotNames(profiles []*switching.Profile) [][]string {
	out := make([][]string, len(r.Slots))
	for si, slot := range r.Slots {
		for _, i := range slot {
			out[si] = append(out[si], profiles[i].Name)
		}
	}
	return out
}

// SortOrder returns the paper's mapping order: ascending T*w, ties broken
// by smaller max Tdw− (T−*dw), then by name for determinism.
func SortOrder(profiles []*switching.Profile) []int {
	idx := make([]int, len(profiles))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		x, y := profiles[idx[a]], profiles[idx[b]]
		if x.TwStar != y.TwStar {
			return x.TwStar < y.TwStar
		}
		if mx, my := x.MaxTdwMinus(), y.MaxTdwMinus(); mx != my {
			return mx < my
		}
		return x.Name < y.Name
	})
	return idx
}

// FirstFit runs the paper's first-fit heuristic with the given admission
// verifier (DefaultVerify when nil).
func FirstFit(profiles []*switching.Profile, vf VerifyFunc) (*Result, error) {
	return FirstFitCached(profiles, vf, nil)
}

// FirstFitCached is FirstFit with admission verdicts memoized through cache
// (nil behaves like FirstFit). Result.CacheHits/CacheMisses report the
// cache traffic of this run alone, so a cache shared across runs still
// yields per-run accounting.
func FirstFitCached(profiles []*switching.Profile, vf VerifyFunc, cache *Cache) (*Result, error) {
	if vf == nil {
		vf = DefaultVerify
	}
	res := &Result{}
	var h0, m0 int
	if cache != nil {
		h0, m0, _ = cache.Stats()
		vf = cache.Wrap(vf)
		defer func() {
			h1, m1, _ := cache.Stats()
			res.CacheHits, res.CacheMisses = h1-h0, m1-m0
		}()
	}
	for _, i := range SortOrder(profiles) {
		placed := false
		for si := range res.Slots {
			trial := make([]*switching.Profile, 0, len(res.Slots[si])+1)
			for _, j := range res.Slots[si] {
				trial = append(trial, profiles[j])
			}
			trial = append(trial, profiles[i])
			res.Verifications++
			ok, err := vf(trial)
			if err != nil {
				return nil, fmt.Errorf("mapping: verifying slot %d + %s: %w", si, profiles[i].Name, err)
			}
			if ok {
				res.Slots[si] = append(res.Slots[si], i)
				placed = true
				break
			}
		}
		if !placed {
			res.Slots = append(res.Slots, []int{i})
		}
	}
	return res, nil
}

// Optimal computes the exact minimum number of slots by verifying every
// subset of applications (2ⁿ admission checks) and covering the set with
// the fewest feasible subsets (set-partition DP). Practical for n ≤ 10ish;
// the case study has n = 6.
func Optimal(profiles []*switching.Profile, vf VerifyFunc) (*Result, error) {
	return OptimalCached(profiles, vf, nil)
}

// OptimalCached is Optimal with admission verdicts memoized through cache
// (nil behaves like Optimal). A cache pre-populated by an earlier FirstFit
// run — or by a previous sweep over the same profiles — eliminates every
// duplicate subset verification from the 2ⁿ enumeration.
func OptimalCached(profiles []*switching.Profile, vf VerifyFunc, cache *Cache) (*Result, error) {
	if vf == nil {
		vf = DefaultVerify
	}
	var h0, m0 int
	if cache != nil {
		h0, m0, _ = cache.Stats()
		vf = cache.Wrap(vf)
	}
	n := len(profiles)
	if n == 0 {
		return &Result{}, nil
	}
	if n > 16 {
		return nil, fmt.Errorf("mapping: optimal partitioning limited to 16 apps, got %d", n)
	}
	res := &Result{}
	if cache != nil {
		defer func() {
			h1, m1, _ := cache.Stats()
			res.CacheHits, res.CacheMisses = h1-h0, m1-m0
		}()
	}
	full := 1<<n - 1
	feasible := make([]bool, full+1)
	feasible[0] = true
	for mask := 1; mask <= full; mask++ {
		// Monotonicity shortcut: a superset of an infeasible set is
		// infeasible — but slot feasibility is not necessarily monotone
		// under EDF (anomalies), so every subset is verified directly.
		var sub []*switching.Profile
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, profiles[i])
			}
		}
		res.Verifications++
		ok, err := vf(sub)
		if err != nil {
			return nil, err
		}
		feasible[mask] = ok
	}
	// DP over subsets: best[mask] = min slots covering mask.
	const inf = 1 << 30
	best := make([]int, full+1)
	choice := make([]int, full+1)
	for mask := 1; mask <= full; mask++ {
		best[mask] = inf
		// Iterate submasks containing the lowest set bit (canonical).
		low := mask & -mask
		for sub := mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 || !feasible[sub] {
				continue
			}
			if v := best[mask^sub] + 1; v < best[mask] {
				best[mask] = v
				choice[mask] = sub
			}
		}
		if best[mask] == inf && bits.OnesCount(uint(mask)) == 1 {
			return nil, fmt.Errorf("mapping: application %s infeasible even alone",
				profiles[bits.TrailingZeros(uint(mask))].Name)
		}
	}
	if best[full] >= inf {
		return nil, fmt.Errorf("mapping: no feasible partition")
	}
	for mask := full; mask > 0; {
		sub := choice[mask]
		var slot []int
		for i := 0; i < n; i++ {
			if sub&(1<<i) != 0 {
				slot = append(slot, i)
			}
		}
		res.Slots = append(res.Slots, slot)
		mask ^= sub
	}
	return res, nil
}
