package mapping

import (
	"reflect"
	"testing"

	"tightcps/internal/switching"
)

// TestFingerprintOrderIndependent: any permutation of the same profile set
// fingerprints identically; changed content does not.
func TestFingerprintOrderIndependent(t *testing.T) {
	a, b, c := mkProfile("A", 3, 2), mkProfile("B", 5, 1), mkProfile("C", 7, 4)
	base := Fingerprint([]*switching.Profile{a, b, c})
	perms := [][]*switching.Profile{
		{a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a},
	}
	for i, p := range perms {
		if Fingerprint(p) != base {
			t.Errorf("permutation %d fingerprints differently", i)
		}
	}
	// Recomputed-but-identical profiles hash the same.
	if Fingerprint([]*switching.Profile{mkProfile("B", 5, 1), mkProfile("A", 3, 2), mkProfile("C", 7, 4)}) != base {
		t.Error("identical recomputed profiles fingerprint differently")
	}
	// A renamed-but-identical profile is a fleet instance of the same design:
	// the fingerprint deliberately ignores names, so the set hashes the same
	// and the admission verdict is shared.
	if Fingerprint([]*switching.Profile{a, b, mkProfile("D", 7, 4)}) != base {
		t.Error("fleet instance (renamed, identical content) fingerprints differently")
	}
	distinct := map[uint64]string{base: "A,B,C"}
	for _, tc := range []struct {
		name string
		ps   []*switching.Profile
	}{
		{"subset", []*switching.Profile{a, b}},
		{"retimed", []*switching.Profile{a, b, mkProfile("C", 8, 4)}},
		{"retabled", []*switching.Profile{a, b, mkProfile("C", 7, 5)}},
		{"duplicated", []*switching.Profile{a, b, c, c}},
	} {
		fp := Fingerprint(tc.ps)
		if prev, clash := distinct[fp]; clash {
			t.Errorf("%s collides with %s", tc.name, prev)
		}
		distinct[fp] = tc.name
	}
	// A changed table entry (same length) must also change the fingerprint.
	d := mkProfile("C", 7, 4)
	d.TdwMinus[3]++
	if Fingerprint([]*switching.Profile{a, b, d}) == base {
		t.Error("changed dwell-table entry not reflected in fingerprint")
	}
}

// TestCacheHitMissAccounting: the underlying verifier runs once per distinct
// set; permutations are hits.
func TestCacheHitMissAccounting(t *testing.T) {
	a, b := mkProfile("A", 3, 2), mkProfile("B", 5, 1)
	calls := 0
	vf := func([]*switching.Profile) (bool, error) { calls++; return true, nil }
	c := NewCache()
	for i := 0; i < 3; i++ {
		if ok, err := c.Do([]*switching.Profile{a, b}, vf); !ok || err != nil {
			t.Fatalf("Do: %v %v", ok, err)
		}
	}
	if ok, err := c.Do([]*switching.Profile{b, a}, vf); !ok || err != nil {
		t.Fatalf("permuted Do: %v %v", ok, err)
	}
	if calls != 1 {
		t.Fatalf("verifier ran %d times, want 1", calls)
	}
	hits, misses, coalesced := c.Stats()
	if hits != 3 || misses != 1 || coalesced != 0 || c.Len() != 1 {
		t.Fatalf("hits=%d misses=%d coalesced=%d len=%d, want 3/1/0/1", hits, misses, coalesced, c.Len())
	}
}

// TestCacheErrorNotCached: a failing verification is retried, not memoized.
func TestCacheErrorNotCached(t *testing.T) {
	a := mkProfile("A", 3, 2)
	calls := 0
	vf := func([]*switching.Profile) (bool, error) {
		calls++
		if calls == 1 {
			return false, errTest
		}
		return true, nil
	}
	c := NewCache()
	if _, err := c.Do([]*switching.Profile{a}, vf); err == nil {
		t.Fatal("error swallowed")
	}
	ok, err := c.Do([]*switching.Profile{a}, vf)
	if !ok || err != nil {
		t.Fatalf("retry after error: %v %v", ok, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

// TestCachedFirstFitIdentical: with the real exact verifier, the cached run
// returns a byte-identical partition to the uncached one, and a warm cache
// answers every admission check without a single verifier run.
func TestCachedFirstFitIdentical(t *testing.T) {
	ps := caseStudyProfiles(t)
	plain, err := FirstFit(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	cold, err := FirstFitCached(ps, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Slots, plain.Slots) {
		t.Fatalf("cached slots %v, uncached %v", cold.Slots, plain.Slots)
	}
	if cold.CacheMisses != cold.Verifications || cold.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d verifications=%d",
			cold.CacheHits, cold.CacheMisses, cold.Verifications)
	}
	warm, err := FirstFitCached(ps, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Slots, plain.Slots) {
		t.Fatalf("warm slots %v, uncached %v", warm.Slots, plain.Slots)
	}
	if warm.CacheMisses != 0 || warm.CacheHits != warm.Verifications {
		t.Fatalf("warm run: hits=%d misses=%d verifications=%d",
			warm.CacheHits, warm.CacheMisses, warm.Verifications)
	}
}

// TestOptimalCachedEliminatesDuplicates: sharing a cache between first-fit
// and the DP partitioner, every subset is verified at most once — the
// partitioner's misses are exactly the subsets first-fit did not already
// settle, and a second sweep is all hits.
func TestOptimalCachedEliminatesDuplicates(t *testing.T) {
	ps := []*switching.Profile{
		mkProfile("A", 1, 1), mkProfile("B", 2, 1),
		mkProfile("C", 3, 1), mkProfile("D", 4, 1),
	}
	calls := 0
	vf := stubVerify(func(names []string) bool {
		return len(names) <= 2
	})
	counted := func(p []*switching.Profile) (bool, error) {
		calls++
		return vf(p)
	}
	cache := NewCache()
	ff, err := FirstFitCached(ps, counted, cache)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalCached(ps, counted, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Slots) != 2 || len(ff.Slots) != 2 {
		t.Fatalf("partitions: ff=%d opt=%d slots", len(ff.Slots), len(opt.Slots))
	}
	if calls != cache.Len() {
		t.Fatalf("verifier ran %d times for %d distinct subsets", calls, cache.Len())
	}
	if opt.CacheHits == 0 {
		t.Fatal("partitioner re-verified subsets first-fit already settled")
	}
	if opt.Verifications != 15 { // 2⁴−1 subset admission checks
		t.Fatalf("partitioner made %d admission checks, want 15", opt.Verifications)
	}
	if opt.CacheHits+opt.CacheMisses != opt.Verifications {
		t.Fatalf("hit/miss accounting: %d+%d != %d",
			opt.CacheHits, opt.CacheMisses, opt.Verifications)
	}
	calls = 0
	again, err := OptimalCached(ps, counted, cache)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 || again.CacheMisses != 0 || again.CacheHits != 15 {
		t.Fatalf("warm sweep: calls=%d hits=%d misses=%d",
			calls, again.CacheHits, again.CacheMisses)
	}
	if !reflect.DeepEqual(again.Slots, opt.Slots) {
		t.Fatalf("warm partition %v, cold %v", again.Slots, opt.Slots)
	}
}
