package mapping

// Sharded cache persistence: the admission service checkpoints its
// verdict map incrementally, so the shard layout must partition by
// fingerprint prefix, round-trip losslessly, refuse mismatched config
// salts, and — the point — rewrite only dirty shards.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"tightcps/internal/switching"
)

// shardProfiles builds a distinct single-profile set per index; distinct
// R values give distinct fingerprints.
func shardProfiles(i int) []*switching.Profile {
	return []*switching.Profile{{
		Name: fmt.Sprintf("P%d", i), TwStar: 4, R: 20 + i, Granularity: 1,
		TdwMinus: []int{2, 2, 2, 2, 2}, TdwPlus: []int{4, 4, 4, 4, 4},
	}}
}

// fill answers n distinct admission questions through the cache, with a
// deterministic verdict per index.
func fill(t *testing.T, c *Cache, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		verdict := i%3 == 0
		ok, err := c.Do(shardProfiles(i), func([]*switching.Profile) (bool, error) { return verdict, nil })
		if err != nil || ok != verdict {
			t.Fatalf("fill %d: got (%v, %v)", i, ok, err)
		}
	}
}

func TestCacheShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 200)

	written, err := c.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("no shard files written for 200 verdicts")
	}

	warm := NewCacheFor(0xfeed)
	loaded, err := warm.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != written {
		t.Fatalf("loaded %d shard files, saved %d", loaded, written)
	}
	if warm.Len() != c.Len() {
		t.Fatalf("round trip lost verdicts: %d, want %d", warm.Len(), c.Len())
	}
	// Every question must now hit — the fallback must never run.
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		ok, err := warm.Do(shardProfiles(i), func([]*switching.Profile) (bool, error) {
			t.Fatalf("question %d missed a warm cache", i)
			return false, nil
		})
		if err != nil || ok != want {
			t.Fatalf("warm verdict %d: got (%v, %v), want %v", i, ok, err, want)
		}
	}
}

// TestCacheShardIncrementalCheckpoint is the hot-service property: a
// checkpoint after no new verdicts writes nothing, and a checkpoint after
// one new verdict rewrites exactly the shard that verdict landed in.
func TestCacheShardIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 200)
	if _, err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	if n, err := c.SaveDir(dir); err != nil || n != 0 {
		t.Fatalf("clean checkpoint wrote %d shards (err %v), want 0", n, err)
	}

	fill(t, c, 200, 201)
	n, err := c.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("one fresh verdict rewrote %d shards, want exactly 1", n)
	}
	if n, err = c.SaveDir(dir); err != nil || n != 0 {
		t.Fatalf("checkpoint after checkpoint wrote %d shards (err %v), want 0", n, err)
	}
}

// TestCacheShardPrefixPartition opens each shard file raw and checks that
// every key in it carries the shard's fingerprint prefix.
func TestCacheShardPrefixPartition(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 300)
	if _, err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for s := 0; s < SaveShards; s++ {
		raw, err := os.ReadFile(shardPath(dir, s))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		count := binary.LittleEndian.Uint64(raw[16:24])
		for i := uint64(0); i < count; i++ {
			key := binary.LittleEndian.Uint64(raw[24+9*i:])
			if shardOf(key) != s {
				t.Fatalf("shard %02x holds key %#x (prefix %02x)", s, key, shardOf(key))
			}
			seen++
		}
	}
	if seen != c.Len() {
		t.Fatalf("shard files hold %d entries, cache %d", seen, c.Len())
	}
}

// TestCacheShardConfigMismatch: a shard directory written under one
// verification config must not answer for another.
func TestCacheShardConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 50)
	if _, err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	other := NewCacheFor(0xbeef)
	if _, err := other.LoadDir(dir); !errors.Is(err, ErrCacheConfig) {
		t.Fatalf("mismatched salt load: got %v, want ErrCacheConfig", err)
	}
}

// TestCacheShardColdStart: a missing directory is a cold start, not an
// error.
func TestCacheShardColdStart(t *testing.T) {
	c := NewCacheFor(1)
	if n, err := c.LoadDir(t.TempDir() + "/nonexistent"); err != nil || n != 0 {
		t.Fatalf("cold start: got (%d, %v), want (0, nil)", n, err)
	}
}

// TestCacheLegacyFileConvertsToShards: verdicts merged from a legacy
// monolithic file count as dirty, so Load + SaveDir migrates the layout;
// verdicts loaded from a shard dir are clean and are not rewritten.
func TestCacheLegacyFileConvertsToShards(t *testing.T) {
	legacy := t.TempDir() + "/cache.bin"
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 100)
	if err := c.SaveFile(legacy); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	conv := NewCacheFor(0xfeed)
	if _, err := conv.LoadFile(legacy); err != nil {
		t.Fatal(err)
	}
	n, err := conv.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("legacy-loaded verdicts were not dirty; migration wrote nothing")
	}

	warm := NewCacheFor(0xfeed)
	if _, err := warm.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if warm.Len() != c.Len() {
		t.Fatalf("migration lost verdicts: %d, want %d", warm.Len(), c.Len())
	}
	if n, err := warm.SaveDir(dir); err != nil || n != 0 {
		t.Fatalf("shard-loaded verdicts were dirty: wrote %d shards (err %v), want 0", n, err)
	}
}

// TestCacheShardCorruptSkipped: one unreadable shard must not cost the
// warm start — the healthy shards load, the error names the bad one, and
// the lost verdicts are simply re-earned through the fallback.
func TestCacheShardCorruptSkipped(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheFor(0xfeed)
	fill(t, c, 0, 200)
	written, err := c.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Scribble over the first shard file present.
	corrupted := -1
	for s := 0; s < SaveShards; s++ {
		if _, err := os.Stat(shardPath(dir, s)); err == nil {
			if err := os.WriteFile(shardPath(dir, s), []byte("not a cache shard"), 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = s
			break
		}
	}
	if corrupted < 0 {
		t.Fatal("no shard files written")
	}

	warm := NewCacheFor(0xfeed)
	loaded, err := warm.LoadDir(dir)
	if err == nil {
		t.Fatal("corrupt shard load reported no error")
	}
	if want := fmt.Sprintf("shard %02x", corrupted); !strings.Contains(err.Error(), want) {
		t.Fatalf("error does not name the bad shard: %v", err)
	}
	if loaded != written-1 {
		t.Fatalf("loaded %d healthy shards, want %d", loaded, written-1)
	}
	if warm.Len() >= c.Len() || warm.Len() == 0 {
		t.Fatalf("partial load holds %d verdicts (full cache %d)", warm.Len(), c.Len())
	}

	// Correctness: every question still answers — hits from the healthy
	// shards, the corrupted shard's keys re-verified through the fallback.
	reverified := 0
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		ok, err := warm.Do(shardProfiles(i), func([]*switching.Profile) (bool, error) {
			reverified++
			return want, nil
		})
		if err != nil || ok != want {
			t.Fatalf("verdict %d after partial load: got (%v, %v), want %v", i, ok, err, want)
		}
	}
	if reverified == 0 {
		t.Fatal("corrupted shard lost no verdicts, so the test corrupted nothing")
	}
	if warm.Len() != c.Len() {
		t.Fatalf("after re-verification the cache holds %d verdicts, want %d", warm.Len(), c.Len())
	}
}
