package dverify

// Worker-side telemetry. A verifyd daemon is a mesh worker, not a
// coordinator — the engine counters of internal/verify never move there —
// so the worker plane exports its own series, folded in once per session
// at shutdown (never per state, never per poll).

import "tightcps/internal/obs"

var (
	obsSessions = obs.NewCounter("tightcps_dverify_sessions_total",
		"Mesh worker sessions completed on this process (one per Init, counted at teardown).")
	obsFresh = obs.NewCounter("tightcps_dverify_fresh_states_total",
		"States committed into this worker's visited partitions across completed sessions.")
	obsWireBytes = obs.NewCounter("tightcps_dverify_wire_bytes_total",
		"Encoded frontier bytes this worker shipped onto its mesh links across completed sessions.")
	obsRoutedStates = obs.NewCounter("tightcps_dverify_routed_states_total",
		"Foreign successors this worker routed onto its mesh links across completed sessions.")
	obsFilteredStates = obs.NewCounter("tightcps_dverify_filtered_states_total",
		"Foreign successors suppressed by the send filters across completed sessions.")
	// Coordinator-side fault-tolerance counters: a coordinator embedded in
	// an admission service (or CLI) exposes recoveries through the same
	// registry its /metricsz serves.
	obsRecoveries = obs.NewCounter("tightcps_dverify_recoveries_total",
		"Worker-death recoveries completed by fault-tolerant distributed runs on this process.")
	obsShardsReassigned = obs.NewCounter("tightcps_dverify_shards_reassigned_total",
		"Hash shards moved to new owners across all recoveries on this process.")
)
