package dverify

// Fault tolerance: shard-ownership tables, checkpoint segments, and the
// fault-injection harness.
//
// Ownership tables. Routing in a fault-tolerant run goes through an
// explicit 64-entry table (shard → owning node) instead of the closed
// formula owner() computes. A fresh run uses the contiguous default
// (identical to owner()'s ranges, so non-FT runs are unchanged); on
// recovery the coordinator rewrites the table so survivors absorb a dead
// node's shards, and every worker routes by the new table from the next
// era on.
//
// Checkpoint segments. A segment is the deterministic global object
// "(shard s, level l)": every state whose hash shard is s and whose BFS
// depth is exactly l, plus the count of transitions generated expanding
// those states. Which worker writes a segment is irrelevant — any two
// workers owning shard s when level l finalizes would write byte-wise
// identical payloads (states are committed in deterministic per-level
// buckets and sorted before writing) — so takeover needs no writer
// identity, and a crash mid-write leaves either a stale tmp file (ignored)
// or a complete renamed segment (valid). Files live under
// <CheckpointDir>/<session-hex>/seg-<level>-<shard>, written with the
// same tmp+rename discipline as mapping.Cache's shard files.
//
// Recovery = global rollback. The coordinator computes the cut — the
// minimum fully-checkpointed level over current owners — and every
// surviving worker performs the same uniform reset: drop all volatile
// search state (buckets, counters, in-flight batches, send filters),
// restore all shards it owns under the new table from segments at levels
// ≤ cut, re-materialize the cut level as an expandable frontier, and
// resume. Exactness follows from the segments being exact level sets: the
// restored visited set is precisely the BFS closure through the cut, and
// re-expansion from the cut regenerates everything past it. Counter sums
// stay exact because every per-level sent/recv counter is zeroed in the
// same reset and post-recovery traffic never routes to dead nodes.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tightcps/internal/verify"
)

// numShards is the fixed hash-shard count the visited set, the routing
// formula and the ownership table all agree on.
const numShards = 64

// meshDeathTimeout bounds how long the coordinator waits for a KindPoll
// answer before declaring the worker dead (fault-tolerant runs only; a
// non-FT run waits forever, preserving the fail-fast error contract).
// Package variable so tests can shrink it.
var meshDeathTimeout = 30 * time.Second

// defaultOwners builds the contiguous ownership table owner() implies:
// node i owns shards [i·64/n, (i+1)·64/n).
func defaultOwners(n int) []uint8 {
	t := make([]uint8, numShards)
	for s := range t {
		t[s] = uint8(s * n / numShards)
	}
	return t
}

// ownerTable fixes an ownership table into the worker's 64-entry lookup
// array, falling back to the contiguous default when owners is nil.
func ownerTable(owners []uint8, n int) (t [numShards]uint8) {
	if owners == nil {
		owners = defaultOwners(n)
	}
	copy(t[:], owners)
	return t
}

// reassignOwners maps every shard owned by a dead node onto the alive
// nodes, round-robin in shard order so takeover load spreads evenly.
// Returns the new table and the number of shards that moved.
func reassignOwners(owners []uint8, alive []bool) ([]uint8, int) {
	var live []uint8
	for i, ok := range alive {
		if ok {
			live = append(live, uint8(i))
		}
	}
	next, moved := 0, 0
	out := append([]uint8(nil), owners...)
	for s, o := range out {
		if !alive[o] {
			out[s] = live[next%len(live)]
			next++
			moved++
		}
	}
	return out, moved
}

// nodeError wraps a worker failure with the node index, preserving the
// historical "dverify: node %d: ..." message while letting fault-tolerant
// drivers recover the failing index with errors.As.
type nodeError struct {
	node int
	err  error
}

func (e *nodeError) Error() string { return fmt.Sprintf("dverify: node %d: %v", e.node, e.err) }
func (e *nodeError) Unwrap() error { return e.err }

// Checkpoint segment file format: a fixed header (magic, state count,
// transition count) followed by the level's states in verify.AppendState
// encoding, ascending verify.LessState order.
var segMagic = [8]byte{'t', 'c', 'p', 's', 's', 'e', 'g', '1'}

// ckptSessionDir is the per-run checkpoint directory.
func ckptSessionDir(dir string, session uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x", session))
}

func segPath(sessionDir string, level, shard int) string {
	return filepath.Join(sessionDir, fmt.Sprintf("seg-%d-%d", level, shard))
}

// ckptWriteHook, when non-nil, runs before each segment write; a non-nil
// return aborts the write and fails the worker — the crash-during-
// checkpoint tests inject faults here.
var ckptWriteHook func(node, level, shard int) error

// writeSegment persists one (shard, level) segment atomically
// (tmp+rename, like mapping.Cache shard files). states must already be
// sorted; trans is the transition count attributed to this segment.
func writeSegment(path string, states []verify.PackedState, trans int64, words int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var hdr [24]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(states)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(trans))
	buf := hdr[:]
	for _, s := range states {
		for w := 0; w < words; w++ {
			buf = binary.LittleEndian.AppendUint64(buf, s[w])
		}
	}
	_, werr := f.Write(buf)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readSegment loads one segment, returning its states and transition
// count. A missing or malformed file is an error: segments are written
// for every owned shard (empty ones included), so absence means the
// checkpoint this worker was told to restore from does not exist.
func readSegment(path string, words int) ([]verify.PackedState, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < 24 || [8]byte(b[:8]) != segMagic {
		return nil, 0, fmt.Errorf("dverify: checkpoint segment %s: bad header", path)
	}
	n := int(binary.LittleEndian.Uint64(b[8:]))
	trans := int64(binary.LittleEndian.Uint64(b[16:]))
	body := b[24:]
	if len(body) != n*words*8 {
		return nil, 0, fmt.Errorf("dverify: checkpoint segment %s: truncated (%d bytes for %d states)", path, len(body), n)
	}
	states := make([]verify.PackedState, n)
	for i := range states {
		for w := 0; w < words; w++ {
			states[i][w] = binary.LittleEndian.Uint64(body[(i*words+w)*8:])
		}
	}
	return states, trans, nil
}

// sortStates orders a segment payload canonically so any owner writes
// byte-identical files.
func sortStates(states []verify.PackedState) {
	sort.Slice(states, func(i, j int) bool { return verify.LessState(states[i], states[j]) })
}

// Fault-injection harness. A faultPlan arms deterministic faults the
// coordinator fires at exact points in the run: when the tracker's final
// level first reaches atLevel (and the required number of recoveries has
// already happened, for double-fault scripts), kill() severs a worker.
// Spares are extra transports adopted as replacement workers during
// recovery, in order.
type faultPlan struct {
	faults []fault
	spares []Transport
}

type fault struct {
	// atLevel fires the fault when the coordinator's final-level knowledge
	// first reaches this level.
	atLevel int
	// afterRecoveries defers the fault until this many recoveries have
	// completed (0 = fire on the first opportunity) — the double-fault
	// scripts use it to kill a survivor mid-takeover.
	afterRecoveries int
	// kill severs the target (closes its transport, kills its loopback
	// serve loop, or closes its TCP conns).
	kill  func()
	fired bool
}

// fire triggers every armed fault whose conditions are met.
func (p *faultPlan) fire(finalLevel, recoveries int) {
	if p == nil {
		return
	}
	for i := range p.faults {
		f := &p.faults[i]
		if !f.fired && finalLevel >= f.atLevel && recoveries >= f.afterRecoveries {
			f.fired = true
			f.kill()
		}
	}
}

// ftTransAdd attributes n transitions to (level l, the shard of parent
// hash h) for checkpoint segments. Only maintained with checkpointing on.
func (w *meshWorker) ftTransAdd(l int, h uint64, n int) {
	for len(w.ftTrans) <= l {
		w.ftTrans = append(w.ftTrans, [numShards]int64{})
	}
	w.ftTrans[l][h>>58] += int64(n)
}

// ftTransMerge folds one lane's per-shard chunk transitions into level l.
func (w *meshWorker) ftTransMerge(l int, ftt *[numShards]int64) {
	for len(w.ftTrans) <= l {
		w.ftTrans = append(w.ftTrans, [numShards]int64{})
	}
	dst := &w.ftTrans[l]
	for s, v := range ftt {
		dst[s] += v
	}
}

// maybeCheckpoint runs the worker's checkpoint sweep, called once per
// poll: level ckptLevel+1 persists once its membership is final
// (coordinator-published) and this worker has fully expanded it — the
// level's bucket then IS the exact owned state set of that depth, and
// ftTrans its exact expansion transitions. A write failure fails the
// worker (the coordinator treats it as a death); segments are
// deterministic global objects, so whatever a crashed sweep left behind
// is either a complete, correct segment or an ignored tmp file.
func (w *meshWorker) maybeCheckpoint() {
	if !w.ckptOn || w.err != nil || w.finished {
		return
	}
	for {
		l := w.ckptLevel + 1
		if l > w.final {
			return
		}
		w.ensureLevel(l)
		if w.cursors[l] != len(w.buckets[l]) {
			return
		}
		if err := w.writeLevel(l); err != nil {
			w.err = fmt.Errorf("checkpoint level %d: %v", l, err)
			return
		}
		w.ckptLevel = l
		if len(w.buckets[l]) > 0 {
			w.recycleBucket(l)
		}
	}
}

// writeLevel splits level l's bucket by hash shard and writes one segment
// per owned shard (empty segments included — restore treats a missing
// file as a hard error, so absence is always detectable).
func (w *meshWorker) writeLevel(l int) error {
	var byShard [numShards][]verify.PackedState
	for _, s := range w.buckets[l] {
		sh := w.exp.Hash(s) >> 58
		byShard[sh] = append(byShard[sh], s)
	}
	var trans *[numShards]int64
	if l < len(w.ftTrans) {
		trans = &w.ftTrans[l]
	}
	for sh := 0; sh < numShards; sh++ {
		if int(w.owners[sh]) != w.id {
			continue
		}
		if ckptWriteHook != nil {
			if err := ckptWriteHook(w.id, l, sh); err != nil {
				return err
			}
		}
		sortStates(byShard[sh])
		var tr int64
		if trans != nil {
			tr = trans[sh]
		}
		if err := writeSegment(segPath(w.ckptDir, l, sh), byShard[sh], tr, w.words); err != nil {
			return err
		}
	}
	return nil
}

// restore rebuilds the worker's search state from checkpoint segments:
// every shard it owns under the current table, levels 0..cut. Levels
// below the cut land in the visited set with their counters; the cut
// level additionally becomes the re-expansion frontier (its transitions
// are recounted by the re-expansion, so the segment's count is not
// added). cut < 0 means no usable checkpoint: the run restarts from the
// initial state.
func (w *meshWorker) restore(cut int) error {
	if cut < 0 {
		w.ckptLevel = -1
		w.final = 0
		if init := w.exp.Initial(); int(w.owners[w.exp.Hash(init)>>58]) == w.id {
			w.ensureLevel(0)
			w.visited.Add(init)
			w.buckets[0] = append(w.buckets[0], init)
			w.freshAt[0] = 1
			w.fresh = 1
		}
		return nil
	}
	w.ensureLevel(cut)
	for sh := 0; sh < numShards; sh++ {
		if int(w.owners[sh]) != w.id {
			continue
		}
		for l := 0; l <= cut; l++ {
			states, trans, err := readSegment(segPath(w.ckptDir, l, sh), w.words)
			if err != nil {
				return err
			}
			for _, s := range states {
				w.visited.Add(s)
			}
			w.fresh += len(states)
			w.freshAt[l] += len(states)
			if len(states) > 0 && l > w.maxFresh {
				w.maxFresh = l
			}
			if l < cut {
				w.transitions += int(trans)
			} else if len(states) > 0 {
				if len(w.buckets[cut]) == 0 && cap(w.buckets[cut]) == 0 {
					w.buckets[cut] = w.newBucket(cut)
				}
				w.buckets[cut] = append(w.buckets[cut], states...)
			}
		}
	}
	if w.fresh > w.budget {
		w.tooLarge = true
	}
	w.ckptLevel = cut
	w.final = cut
	return nil
}

// recoverTo executes the coordinator's takeover order: the uniform global
// rollback every worker (survivor or not) performs in lockstep. Volatile
// search state is reset exactly as reinit does; what survives is the
// session's wire history (routed/filtered/bytes — true traffic that
// happened), the violation knowledge (a found violation is a property of
// the state space, not of the dead worker) and the mesh links. Send
// filters are cleared because their justification — "the receiver has
// this state in its visited set" — is broken by the rollback.
func (w *meshWorker) recoverTo(rec *Recover) {
	if rec.Era <= w.era {
		return
	}
	for l := range w.buckets {
		if cap(w.buckets[l]) > 0 {
			w.recycleBucket(l)
		}
		w.cursors[l] = 0
		for _, b := range w.pending[l] {
			w.putBatch(b)
		}
		w.pending[l] = nil
		w.freshAt[l], w.sentByLevel[l], w.recvByLevel[l] = 0, 0, 0
	}
	w.buckets, w.cursors, w.pending = w.buckets[:0], w.cursors[:0], w.pending[:0]
	w.freshAt, w.sentByLevel, w.recvByLevel = w.freshAt[:0], w.sentByLevel[:0], w.recvByLevel[:0]
	for d := range w.outBuf {
		if w.outBuf[d] != nil {
			w.outBuf[d] = w.outBuf[d][:0]
		}
	}
	w.outLevel = -1
	w.ftTrans = w.ftTrans[:0]
	for _, ln := range w.lanes {
		if ln.defr != nil {
			w.putBatch(ln.defr)
		}
		ln.reset()
	}
	w.visited.Reset()
	w.fresh, w.transitions, w.maxFresh = 0, 0, 0
	w.tooLarge, w.err = false, nil
	w.lastSnap, w.haveSnap = meshDigest{}, false

	// Adopt the new era, table and death knowledge before touching the
	// inbox, so concurrent arrivals sort against the new era. Recover.Dead
	// is the complete current dead set — rebuilding (not accumulating)
	// lets a replacement worker adopted into a dead slot receive traffic
	// again — and the cumulative LinkDown report restarts empty: the
	// coordinator already acted on everything reported before this order.
	w.era = rec.Era
	w.owners = ownerTable(rec.Owners, w.n)
	if w.deadPeers == nil {
		w.deadPeers = make([]bool, w.n)
	}
	clear(w.deadPeers)
	for _, d := range rec.Dead {
		if d >= 0 && d < w.n {
			w.deadPeers[d] = true
		}
	}
	w.linkDown = w.linkDown[:0]
	for d := range w.filters {
		if w.filters[d].slots != nil {
			clear(w.filters[d].slots)
		}
	}
	// Drop undelivered old-era batches and release anything a recovered
	// peer raced ahead with (now current-era, re-queued for the drain).
	q := w.inbox.drain(w.spareQ)
	for i := range q {
		b := &q[i]
		if b.err != nil {
			w.noteLinkDown(b.from)
			continue
		}
		if b.era >= w.era {
			w.futureQ = append(w.futureQ, *b)
		} else {
			w.putBatch(b.states)
		}
		b.states = nil
	}
	w.spareQ = q[:0]
	keep := w.futureQ[:0]
	for _, b := range w.futureQ {
		switch {
		case b.era == w.era:
			w.inbox.push(b)
		case b.era > w.era:
			keep = append(keep, b)
		default:
			w.putBatch(b.states)
		}
	}
	w.futureQ = keep

	if err := w.restore(rec.Cut); err != nil {
		w.err = fmt.Errorf("restoring checkpoint cut %d: %v", rec.Cut, err)
	}
}

// removeCkpt deletes the worker's per-session segment directory; called
// on a clean Finish (an evicted worker never Finishes — its segments are
// exactly what the survivors restore from, so only the coordinator or a
// clean end may remove them).
func (w *meshWorker) removeCkpt() {
	if w.ckptDir != "" {
		os.RemoveAll(w.ckptDir)
	}
}
