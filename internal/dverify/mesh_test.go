package dverify

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tightcps/internal/verify"
)

// loopGroupOf digs the mesh rendezvous out of a loopback cluster so tests
// can install link hooks before the run starts.
func loopGroupOf(t *testing.T, ts []Transport) *loopGroup {
	t.Helper()
	lt, ok := ts[0].(*loopTransport)
	if !ok {
		t.Fatalf("transport %T is not a loopback worker", ts[0])
	}
	return lt.group
}

// TestMeshDelayedAbsorbInterleavings drives the full equivalence matrix
// through a mesh whose links deliver every batch late and out of order —
// each delivery is parked on its own timer with a jittered delay, so
// absorbs land across later epochs and interleave adversarially with the
// coordinator's milestone advances. The verdict, the exhaustive counts
// and the minimal violator must still be bit-identical to the local
// search: late absorbs may only delay final/done, never fake them.
func TestMeshDelayedAbsorbInterleavings(t *testing.T) {
	for _, tc := range equivalenceCases {
		ps := tc.ps()
		cfg := verify.Config{NondetTies: true, SymmetryReduction: tc.sym, MaxDisturbances: tc.md,
			Workers: 4, DistTopology: verify.TopologyMesh}
		local, err := verify.Slot(ps, cfg)
		if err != nil {
			t.Fatalf("%s: local: %v", tc.name, err)
		}
		for _, nodes := range []int{2, 4} {
			ts := Loopback(nodes)
			g := loopGroupOf(t, ts)
			var mu sync.Mutex
			rng := rand.New(rand.NewSource(int64(nodes)*7919 + int64(len(tc.name))))
			g.deliver = func(from, to int, b meshBatch, push func(meshBatch)) bool {
				mu.Lock()
				d := time.Duration(rng.Intn(4)) * time.Millisecond
				mu.Unlock()
				time.AfterFunc(d, func() { push(b) })
				return true
			}
			dist, err := Verify(ps, cfg, ts)
			Close(ts)
			if err != nil {
				t.Fatalf("%s: delayed nodes=%d: %v", tc.name, nodes, err)
			}
			checkMatchesLocal(t, fmt.Sprintf("%s: delayed nodes=%d", tc.name, nodes), dist, local)
		}
	}
}

// snap builds a synthetic poll response for the tracker tests.
type snap struct {
	sent, recv []int
	drained    int
	idle       bool
	maxFresh   int
	viol       bool
	violLevel  int
	violState  verify.PackedState
	violApp    int
}

func round(snaps ...snap) []*Response {
	out := make([]*Response, len(snaps))
	for i, s := range snaps {
		out[i] = &Response{
			SentByLevel: s.sent, RecvByLevel: s.recv,
			Drained: s.drained, Idle: s.idle, MaxFresh: s.maxFresh,
			Viol: s.viol, ViolLevel: s.violLevel, ViolState: s.violState, ViolApp: s.violApp,
		}
	}
	return out
}

// TestMeshTrackerDelayedAbsorbEpochs pins the termination-detection
// invariants against adversarial in-flight interleavings: states sent in
// one epoch but absorbed epochs later must pin the final/done milestones
// and block termination until the counts reconcile.
func TestMeshTrackerDelayedAbsorbEpochs(t *testing.T) {
	tr := newMeshTracker(2)

	// Epoch 1: worker 0 shipped 10 level-1 states, worker 1 absorbed only
	// 7 of them so far (3 in flight), and neither is done with level 1.
	tr.observe(round(
		snap{sent: []int{0, 10}, recv: []int{0, 0}, drained: 0, maxFresh: 1},
		snap{sent: []int{0, 0}, recv: []int{0, 7}, drained: 0, idle: true, maxFresh: 1},
	))
	tr.advance()
	if tr.done != 0 || tr.final != 0 {
		t.Fatalf("after epoch 1: done=%d final=%d, want 0/0 (3 states in flight)", tr.done, tr.final)
	}
	if tr.terminated() {
		t.Fatal("terminated with states in flight")
	}

	// Epoch 2: worker 1 still has not absorbed everything; an idle report
	// with stale counters must not unblock the milestones.
	tr.observe(round(
		snap{sent: []int{0, 10}, recv: []int{0, 0}, drained: 0, idle: true, maxFresh: 1},
		snap{sent: []int{0, 0}, recv: []int{0, 9}, drained: 0, idle: true, maxFresh: 1},
	))
	tr.advance()
	if tr.final != 0 {
		t.Fatalf("after epoch 2: final=%d, want 0 (1 state still in flight)", tr.final)
	}
	if tr.terminated() {
		t.Fatal("terminated with a state in flight and sums unequal")
	}

	// Epoch 3: the last absorb lands and both workers drain level 1; the
	// milestones may now sweep forward and the run terminates.
	tr.observe(round(
		snap{sent: []int{0, 10}, recv: []int{0, 0}, drained: 1, idle: true, maxFresh: 1},
		snap{sent: []int{0, 0}, recv: []int{0, 10}, drained: 1, idle: true, maxFresh: 1},
	))
	tr.advance()
	if tr.done < 1 {
		t.Fatalf("after epoch 3: done=%d, want ≥ 1", tr.done)
	}
	if !tr.terminated() {
		t.Fatal("not terminated at quiescence with matching sums")
	}
}

// TestMeshTrackerViolationWaitsForLevel pins the minimal-violator
// invariant: a violation at level L is not final until done reaches L —
// a lagging worker could still find a smaller violator at L (or any
// violator at a lower level) — and the minimum is (level, state)-ordered.
func TestMeshTrackerViolationWaitsForLevel(t *testing.T) {
	tr := newMeshTracker(2)
	tr.observe(round(
		snap{sent: []int{0, 4}, recv: []int{0, 0}, drained: 1, idle: true, maxFresh: 2,
			viol: true, violLevel: 2, violState: verify.PackedState{9}, violApp: 3},
		snap{sent: []int{0, 0}, recv: []int{0, 2}, drained: 0, maxFresh: 1},
	))
	tr.advance()
	if tr.terminated() {
		t.Fatal("violation at level 2 finalized before level 2 was done everywhere")
	}

	// The lagging worker catches up and reports a smaller violator at the
	// same level; once done covers the level, that one must win.
	tr.observe(round(
		snap{sent: []int{0, 4}, recv: []int{0, 0}, drained: 2, idle: true, maxFresh: 2,
			viol: true, violLevel: 2, violState: verify.PackedState{9}, violApp: 3},
		snap{sent: []int{0, 0}, recv: []int{0, 4}, drained: 2, idle: true, maxFresh: 2,
			viol: true, violLevel: 2, violState: verify.PackedState{5}, violApp: 1},
	))
	tr.advance()
	if !tr.terminated() {
		t.Fatal("violation not finalized once its level is done")
	}
	if tr.violApp != 1 || tr.violState != (verify.PackedState{5}) {
		t.Fatalf("violator app=%d state=%v, want the (level, state) minimum app=1 state={5}", tr.violApp, tr.violState)
	}

	// A violation at a lower level always supersedes, regardless of state
	// order.
	tr2 := newMeshTracker(1)
	tr2.observe(round(
		snap{sent: []int{0}, recv: []int{0}, drained: 1, idle: true, maxFresh: 2,
			viol: true, violLevel: 2, violState: verify.PackedState{1}, violApp: 0},
	))
	tr2.observe(round(
		snap{sent: []int{0}, recv: []int{0}, drained: 1, idle: true, maxFresh: 2,
			viol: true, violLevel: 1, violState: verify.PackedState{7}, violApp: 2},
	))
	if tr2.violLevel != 1 || tr2.violApp != 2 {
		t.Fatalf("violLevel=%d app=%d, want the lower level 1 app=2", tr2.violLevel, tr2.violApp)
	}
}

// TestMeshLinkFaultInjection breaks one worker↔worker link mid-run: the
// coordinator must surface a clean error naming the victim and the peer —
// not hang an epoch — and the cluster must stay reusable afterwards.
func TestMeshLinkFaultInjection(t *testing.T) {
	ts := Loopback(2)
	defer Close(ts)
	g := loopGroupOf(t, ts)
	var mu sync.Mutex
	sends := 0
	g.failSend = func(from, to int) error {
		mu.Lock()
		defer mu.Unlock()
		if sends++; sends > 3 {
			return errors.New("injected link failure")
		}
		return nil
	}

	cfg := verify.Config{NondetTies: true, DistTopology: verify.TopologyMesh}
	done := make(chan error, 1)
	go func() {
		_, err := Verify(fleet(3, 6, 1, 2, 10), cfg, ts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "node") || !strings.Contains(err.Error(), "mesh link") {
			t.Fatalf("want a clean error naming the broken mesh link, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after a mesh link failure")
	}

	// The poisoned session must not wedge the workers: the same cluster
	// verifies cleanly once the fault is lifted.
	g.failSend = nil
	res, err := Verify(fleet(3, 6, 1, 2, 10), cfg, ts)
	if err != nil || !res.Schedulable {
		t.Fatalf("cluster not reusable after a link fault: %v %+v", err, res)
	}
}

// trackingListener records accepted connections so a test can sever them,
// simulating a worker process crash mid-epoch.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.Listener.Close()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestMeshWorkerCrashMidEpoch crashes one TCP worker in the middle of a
// mesh run (all of its connections die at once, like a killed process):
// the coordinator must return a clean error naming the node, without
// hanging, and the surviving worker must return to accepting sessions.
func TestMeshWorkerCrashMidEpoch(t *testing.T) {
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l0.Close() })
	go Serve(l0, nil)

	l1raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1 := &trackingListener{Listener: l1raw}
	t.Cleanup(func() { l1.kill() })
	go Serve(l1, nil)

	ts, err := Dial([]string{l0.Addr().String(), l1.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(ts)

	// The 4-app r=40 fleet runs to 2.9M states (≈ seconds over TCP), so a
	// kill 100ms in lands squarely inside the epoch exchange.
	time.AfterFunc(100*time.Millisecond, l1.kill)
	done := make(chan error, 1)
	go func() {
		_, err := Verify(fleet(4, 8, 2, 4, 40), verify.Config{NondetTies: true, DistTopology: verify.TopologyMesh}, ts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "node") {
			t.Fatalf("want a clean error naming the crashed node, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after a worker crash mid-epoch")
	}
}

// TestMeshTopologyForcedOnWrappedTransports: transports the mesh cannot
// see through (anything wrapped) fall back to the relay under
// TopologyAuto and are refused under an explicit TopologyMesh.
func TestMeshTopologyForcedOnWrappedTransports(t *testing.T) {
	ts := Loopback(2)
	defer Close(ts)
	wrapped := []Transport{ts[0], &flakyTransport{inner: ts[1], failAfter: 1 << 30}}

	ps := fleet(3, 6, 1, 2, 10)
	if _, err := Verify(ps, verify.Config{NondetTies: true, DistTopology: verify.TopologyMesh}, wrapped); err == nil ||
		!strings.Contains(err.Error(), "mesh") {
		t.Fatalf("forced mesh over wrapped transports: want a mesh-capability error, got %v", err)
	}
	res, err := Verify(ps, verify.Config{NondetTies: true}, wrapped)
	if err != nil || !res.Schedulable {
		t.Fatalf("auto topology should fall back to the relay over wrapped transports: %v %+v", err, res)
	}
}

// TestServerSingleClusterAdmission: a daemon's worker slot is exclusive —
// a second coordinator session's jobs are refused while the first session
// lives (the per-node MaxStates memory model budgets ONE visited
// partition), and the slot frees when that session ends.
func TestServerSingleClusterAdmission(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, nil)
	addr := l.Addr().String()

	ps := fleet(2, 6, 1, 2, 10)
	cfg := verify.Config{NondetTies: true}
	ts1, err := Dial([]string{addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(ps, cfg, ts1); err != nil {
		t.Fatalf("first session: %v", err)
	}

	// The first session still holds the slot (its connection is open).
	ts2, err := Dial([]string{addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(ts2)
	if _, err := Verify(ps, cfg, ts2); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("second concurrent session: want a busy refusal, got %v", err)
	}

	// Ending the first session frees the slot (release is asynchronous
	// with the connection close, so poll briefly).
	Close(ts1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = Verify(ps, cfg, ts2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after the first session closed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerGracefulShutdown drains a verifyd-equivalent server mid-job:
// the active session's verification must complete exactly, new sessions
// must be refused, and Serve must return once the session closes.
func TestServerGracefulShutdown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, nil)
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()

	addr := l.Addr().String()
	ts, err := Dial([]string{addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(ts)

	// Shutdown lands mid-run: the 5-app fleet runs to 432k states
	// (hundreds of milliseconds over TCP), so a trigger 30ms in drains a
	// live job.
	ps := fleet(5, 7, 1, 2, 12)
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(30*time.Millisecond, srv.Shutdown)
	res, err := Verify(ps, verify.Config{NondetTies: true}, ts)
	if err != nil {
		t.Fatalf("job interrupted by graceful drain: %v", err)
	}
	if !res.Schedulable || res.States != local.States {
		t.Fatalf("drained mid-job: %+v, local %+v", res, local)
	}
	for !srv.isDraining() {
		time.Sleep(time.Millisecond)
	}

	// New jobs on the live session are refused while draining...
	if _, err := Verify(fleet(2, 6, 1, 2, 10), verify.Config{NondetTies: true}, ts); err == nil ||
		!strings.Contains(err.Error(), "draining") {
		t.Fatalf("new job during drain: want a draining refusal, got %v", err)
	}
	// ...and new connections are not accepted at all.
	if _, err := Dial([]string{addr}, 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded against a draining server")
	}

	Close(ts)
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful Serve returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the drained session closed")
	}
}
