// Package dverify distributes the slot-sharing verification of
// internal/verify across worker nodes: the packed state space is
// partitioned by hash — each node owns a contiguous range of the 64 hash
// shards — and every node expands its own frontier through the shared
// expansion core, routing successor states to their owners.
//
// Two exchange topologies drive that partitioning (verify.Config.
// DistTopology). The default mesh keeps the coordinator out of the data
// path: workers hold one direct link per peer — in-process channels on a
// loopback cluster, dial-out TCP connections negotiated at job setup for
// verifyd fleets — and ship level-tagged successor batches straight to
// their shard owners while the coordinator runs a thin control plane
// (session setup, epoch accounting, violation short-circuit, result
// aggregation). Levels are pipelined: a worker expands level L+1 states
// as they arrive while peers still drain level L, with termination
// detected from cluster-wide states-sent vs states-absorbed counts per
// epoch (see mesh.go for the exactness invariants). The relay topology is
// the level-synchronous fallback — every batch transits the coordinator
// with a barrier per level — kept for wrapped transports and as the
// comparison baseline.
//
// TCP links are bandwidth-engineered: every node suppresses states it
// provably already routed to a destination (a fixed-size per-destination
// recent-state filter — misses are safe, owners dedup on absorb) and
// encodes each batch with a versioned codec (sorted varint-delta, DEFLATE
// when it helps, fixed-width fallback; see proto.go). Loopback mesh links
// hand decoded batches over in memory and skip both. Wire-volume counters
// — including per-link breakdowns on the mesh — flow back into
// verify.Result.Wire.
//
// Both packed encodings flow through the same drivers, so narrow and wide
// slots verify with bit-identical semantics to the local searches on
// either topology: the verdict always matches, exhaustively-searched
// (schedulable) runs report the same state/transition/depth counts, and a
// violating run reports the same minimal violator as the local parallel
// search (minimum violating packed state of the first violating level).
//
// Coordinator communication goes through the Transport interface. Two
// implementations exist: Loopback (in-process channel workers, for tests
// and single-machine multi-worker runs) and the TCP/gob client returned
// by Dial, served by the cmd/verifyd worker daemon. Config.MaxStates is a
// per-node budget in distributed runs — it models per-node memory — so a
// cluster of k nodes verifies slots up to k times larger than one node
// admits.
package dverify

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"tightcps/internal/obs"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// defaultMaxStates mirrors the local verifier's per-run state cap; in the
// distributed search it applies per node.
const defaultMaxStates = 200_000_000

// maxNodes is the cluster-size cap: nodes own contiguous ranges of the 64
// hash shards, so more nodes than shards cannot all receive work.
const maxNodes = 64

// Transport is one coordinator↔worker link carrying the request/response
// protocol of proto.go. Calls are strictly sequential per transport (the
// coordinator never has two outstanding requests to one node). A failed
// Call poisons the run — the protocol state of the cluster is undefined —
// but a new Verify over the same transports recovers, because KindInit
// resets every node.
type Transport interface {
	Call(*Request) (*Response, error)
	Close() error
}

// Verify runs the distributed reachability analysis for the profiles over
// the given worker nodes. The configuration is interpreted exactly like
// verify.Slot's, except that Workers is the per-node expansion pool size
// (0 lets each node use its own GOMAXPROCS, so an N-node cluster of
// M-core hosts searches N×M-wide; 1 keeps nodes serial), MaxStates is a
// per-node budget, and Trace is rejected. Config.DistTopology selects the
// exchange: the default (TopologyAuto) runs the worker↔worker mesh with
// pipelined levels whenever the transports support it — unwrapped
// loopback or TCP clusters — and falls back to the level-synchronous
// coordinator relay otherwise.
func Verify(profiles []*switching.Profile, cfg verify.Config, nodes []Transport) (verify.Result, error) {
	return verifyWithFaults(profiles, cfg, nodes, nil)
}

// verifyWithFaults is Verify with a deterministic fault-injection plan
// attached (nil for production runs): the plan's kills fire at exact
// tracker milestones and its spares are adopted as replacement workers
// during recovery. The fault-matrix tests drive every recovery path
// through this entry.
func verifyWithFaults(profiles []*switching.Profile, cfg verify.Config, nodes []Transport, plan *faultPlan) (verify.Result, error) {
	if len(nodes) < 1 || len(nodes) > maxNodes {
		return verify.Result{}, fmt.Errorf("dverify: %d nodes (want 1..%d)", len(nodes), maxNodes)
	}
	if cfg.Trace {
		return verify.Result{}, errors.New("dverify: tracing is local-only; re-run the slot without Distributed for a counterexample")
	}
	// Validate profiles and config (encoding limits, symmetry/trace
	// conflicts) before shipping the job anywhere.
	cfg.Distributed = nil
	if _, err := verify.New(profiles, cfg); err != nil {
		return verify.Result{}, err
	}

	job := Job{
		Proto:             protoVersion,
		Profiles:          make([]switching.Profile, len(profiles)),
		NumNodes:          len(nodes),
		MaxDisturbances:   cfg.MaxDisturbances,
		Policy:            cfg.Policy,
		NondetTies:        cfg.NondetTies,
		SymmetryReduction: cfg.SymmetryReduction,
		MaxStates:         cfg.MaxStates,
		Workers:           cfg.Workers,
		RunID:             cfg.RunID,
		FT:                cfg.FaultTolerance,
		CheckpointDir:     cfg.CheckpointDir,
	}
	for i, p := range profiles {
		job.Profiles[i] = *p
	}
	if job.MaxStates <= 0 {
		job.MaxStates = defaultMaxStates
	}

	// The run trace is coordinator-side: the drivers below fold per-level
	// and per-node spans in; verify.Run finishes it (verdict, wire, slot).
	tr := cfg.RunTrace
	switch cfg.DistTopology {
	case verify.TopologyRelay:
		tr.SetBackend("relay", len(nodes), cfg.Workers)
		return verifyRelay(job, nodes, tr, plan)
	case verify.TopologyAuto, verify.TopologyMesh:
		peers, ok := meshPeers(nodes)
		if !ok {
			if cfg.DistTopology == verify.TopologyMesh {
				return verify.Result{}, errors.New("dverify: these transports cannot form a worker mesh (an unwrapped loopback or TCP cluster is required); use the relay topology")
			}
			tr.SetBackend("relay", len(nodes), cfg.Workers)
			return verifyRelay(job, nodes, tr, plan)
		}
		tr.SetBackend("mesh", len(nodes), cfg.Workers)
		return verifyMesh(job, nodes, peers, tr, plan)
	default:
		return verify.Result{}, fmt.Errorf("dverify: unknown distributed topology %q", cfg.DistTopology)
	}
}

// meshPeers reports whether the cluster's transports can carry direct
// worker↔worker links, returning the peer address table for TCP clusters
// (nil for loopback, whose links are in-process channels). A mesh needs
// every transport to be an unwrapped loopback worker of one group, or an
// unwrapped TCP connection whose dialed address peers can also reach.
func meshPeers(nodes []Transport) (peers []string, ok bool) {
	var g *loopGroup
	var addrs []string
	for _, t := range nodes {
		switch tt := t.(type) {
		case *loopTransport:
			if addrs != nil {
				return nil, false
			}
			if g == nil {
				g = tt.group
			} else if g != tt.group {
				return nil, false
			}
		case *tcpTransport:
			if g != nil {
				return nil, false
			}
			addrs = append(addrs, tt.addr)
		default:
			return nil, false
		}
	}
	return addrs, true
}

// verifyRelay is the level-synchronous topology: every frontier batch
// transits the coordinator (KindStep collects per-destination batches,
// KindAbsorb redistributes them), with a barrier and violation
// short-circuit at every level boundary. tr (nil-safe) gains one
// LevelSpan per barrier.
//
// With job.FT set, a worker death (transport error or worker-side Err)
// does not poison the run: the relay holds no pipelined state between
// levels and every KindInit resets the survivors, so recovery is a full
// restart of the search on the remaining nodes — simpler than the mesh's
// checkpoint rollback, at the cost of re-exploring from the initial
// state. The restart sequence is bounded by the cluster size (every
// recovery loses at least one node) and the verdict is unchanged: the
// survivors re-partition all 64 shards among themselves. ErrTooLarge is
// never retried — fewer nodes means less aggregate budget, so a restart
// could only trip it again later.
func verifyRelay(job Job, nodes []Transport, tr *obs.Trace, plan *faultPlan) (verify.Result, error) {
	if !job.FT {
		return relayOnce(job, nodes, tr, plan, 0)
	}
	alive := append([]Transport(nil), nodes...)
	era := 0
	for {
		var scratch *obs.Trace
		if tr != nil {
			// Levels fold into a scratch trace so an aborted attempt's
			// partial spans never double-count in the run trace.
			scratch = obs.NewTrace(tr.RunID)
		}
		j := job
		j.NumNodes = len(alive)
		res, err := relayOnce(j, alive, scratch, plan, era)
		var ne *nodeError
		if err != nil && !errors.Is(err, verify.ErrTooLarge) && errors.As(err, &ne) && len(alive) > 1 {
			d := ne.node
			alive = append(alive[:d:d], alive[d+1:]...)
			era++
			obsRecoveries.Inc()
			obsShardsReassigned.Add(numShards) // full restart: every shard re-partitioned
			tr.AddFailover(era, []int{d}, -1, numShards)
			continue
		}
		if tr != nil && scratch != nil && (err == nil || errors.Is(err, verify.ErrTooLarge)) {
			for _, ls := range scratch.Levels {
				tr.AddLevel(ls.Level, ls.States, ls.Transitions)
			}
		}
		return res, err
	}
}

// relayOnce runs one relay attempt over the given nodes. plan (nil-safe)
// fires its kills against the depth milestone; era is the number of
// recoveries already behind us, for double-fault scripts.
func relayOnce(job Job, nodes []Transport, tr *obs.Trace, plan *faultPlan, era int) (verify.Result, error) {
	res := verify.Result{Schedulable: true, Bounded: job.MaxDisturbances > 0}
	plan.fire(0, era)
	resps, err := fanout(nodes, func(i int) *Request {
		j := job
		j.NodeID = i
		return &Request{Kind: KindInit, Job: &j}
	})
	if err != nil {
		return res, err
	}
	frontier := 0
	for i, r := range resps {
		if r.Proto != protoVersion {
			// A stale verifyd would otherwise drop renamed gob fields
			// silently and corrupt the search; refuse to start instead.
			return res, fmt.Errorf("dverify: node %d speaks protocol %d, coordinator %d (restart verifyd with the current build)",
				i, r.Proto, protoVersion)
		}
		res.States += r.Fresh
		frontier += r.Next
	}

	stepReq := &Request{Kind: KindStep}
	for depth := 0; frontier > 0; depth++ {
		plan.fire(depth, era)
		res.Depth = depth
		levelStates := frontier
		levelTrans := res.Transitions
		stepResps, err := fanout(nodes, func(int) *Request { return stepReq })
		if err != nil {
			return res, err
		}

		// Violation short-circuit: the verdict is the minimum violating
		// packed state across the partitions — the same tie-break the local
		// parallel search applies, so Violator is deterministic and
		// identical across cluster sizes. Like the local search, a recorded
		// violation is preferred over ErrTooLarge when the budget trips in
		// the same level; in that budget-edge case the tripped node stopped
		// sweeping early, so Violator is sound but may not be the level
		// minimum a larger budget would report.
		viol := false
		var violState verify.PackedState
		tooLarge := false
		for _, r := range stepResps {
			res.Transitions += r.Transitions
			res.States += r.Fresh
			res.Wire.Add(verify.WireStats{
				RoutedStates:   r.Routed,
				FilteredStates: r.Filtered,
				RawBytes:       r.RawBytes,
				WireBytes:      r.WireBytes,
			})
			tooLarge = tooLarge || r.TooLarge
			if r.Viol && (!viol || verify.LessState(r.ViolState, violState)) {
				viol, violState = true, r.ViolState
				res.Violator = r.ViolApp
			}
		}
		if viol {
			res.Schedulable = false
			tr.AddLevel(depth, levelStates, res.Transitions-levelTrans)
			return res, nil
		}
		if tooLarge {
			return res, verify.ErrTooLarge
		}

		// Hash-routed exchange: collect every node's encoded batch for
		// destination d in ascending source order and deliver them in one
		// absorb (batches stay separate — each carries its own codec
		// version byte and compression frame).
		absorbResps, err := fanout(nodes, func(d int) *Request {
			req := &Request{Kind: KindAbsorb}
			for _, r := range stepResps {
				if d < len(r.Batches) && len(r.Batches[d]) > 0 {
					req.Batches = append(req.Batches, r.Batches[d])
				}
			}
			return req
		})
		if err != nil {
			return res, err
		}
		frontier = 0
		for _, r := range absorbResps {
			res.States += r.Fresh
			frontier += r.Next
			tooLarge = tooLarge || r.TooLarge
		}
		tr.AddLevel(depth, levelStates, res.Transitions-levelTrans)
		if tooLarge {
			return res, verify.ErrTooLarge
		}
	}
	return res, nil
}

// Runner adapts a worker set to the verify.Config.Distributed hook. The
// returned function serialises concurrent calls — the transports carry one
// protocol session at a time.
func Runner(nodes []Transport) func([]*switching.Profile, verify.Config) (verify.Result, error) {
	var mu sync.Mutex
	return func(profiles []*switching.Profile, cfg verify.Config) (verify.Result, error) {
		mu.Lock()
		defer mu.Unlock()
		return Verify(profiles, cfg, nodes)
	}
}

// Cluster materializes the -nodes/-connect CLI convention the verifying
// commands share: nodes > 0 starts that many in-process loopback workers,
// a non-empty connect dials the comma-separated verifyd addresses. Exactly
// one may be set; with neither, Cluster returns a nil slice (local
// verification). desc is a banner line describing the cluster. The caller
// owns the transports (defer Close).
func Cluster(nodes int, connect string) (ts []Transport, desc string, err error) {
	return ClusterRetry(nodes, connect, 1, 0, nil)
}

// ClusterRetry is Cluster with a bounded startup retry on the -connect
// dial: each worker address is attempted up to attempts times with
// exponential backoff starting at backoff (see DialRetry), so a fleet can
// come up in any order. logf, when non-nil, receives one line per failed
// attempt. attempts ≤ 1 dials once; loopback clusters never retry (there
// is nothing to wait for).
func ClusterRetry(nodes int, connect string, attempts int, backoff time.Duration, logf func(format string, args ...any)) (ts []Transport, desc string, err error) {
	switch {
	case nodes < 0:
		return nil, "", fmt.Errorf("-nodes must be ≥ 0, got %d", nodes)
	case nodes > 0 && connect != "":
		return nil, "", errors.New("-nodes and -connect are mutually exclusive (one cluster per run)")
	case connect != "":
		addrs := strings.Split(connect, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		ts, err := DialRetry(addrs, 0, attempts, backoff, logf)
		if err != nil {
			return nil, "", err
		}
		return ts, fmt.Sprintf("distributed verification: %d TCP workers (%s)", len(ts), strings.Join(addrs, ", ")), nil
	case nodes > 0:
		return Loopback(nodes), fmt.Sprintf("distributed verification: %d loopback workers", nodes), nil
	}
	return nil, "", nil
}

// Close closes every transport, returning the first error.
func Close(nodes []Transport) error {
	var first error
	for _, t := range nodes {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanout issues one request per node concurrently and collects the
// responses, turning transport failures and worker-side Err responses into
// a single error naming the node. It always waits for every call, so a
// partial failure never leaks an in-flight request into the next round.
func fanout(nodes []Transport, req func(i int) *Request) ([]*Response, error) {
	resps := make([]*Response, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	wg.Add(len(nodes))
	for i, tr := range nodes {
		go func(i int, tr Transport) {
			defer wg.Done()
			resps[i], errs[i] = tr.Call(req(i))
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &nodeError{i, err}
		}
		if resps[i].Err != "" {
			return nil, &nodeError{i, errors.New(resps[i].Err)}
		}
	}
	return resps, nil
}
