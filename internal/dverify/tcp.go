package dverify

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tightcps/internal/verify"
)

// TCP/gob transport. The coordinator dials one long-lived connection per
// worker daemon (cmd/verifyd) and streams the Request/Response protocol
// over it; in the mesh topology the daemons additionally dial each other
// at Init (one directed connection per ordered node pair, negotiated from
// Job.Peers) and stream level-tagged Frame batches over those links, so
// frontier data never transits the coordinator. A worker disconnect
// surfaces as a Call error — io.EOF or a connection reset — which aborts
// the run cleanly rather than hanging an exchange; a broken worker↔worker
// link surfaces through the victim's next poll snapshot, naming both ends.

// Dial connects to the worker daemons at addrs (host:port each), returning
// one transport per address in order. On any failure the already-opened
// connections are closed.
func Dial(addrs []string, timeout time.Duration) ([]Transport, error) {
	return DialRetry(addrs, timeout, 1, 0, nil)
}

// DialRetry is Dial with a bounded startup-retry schedule per address:
// attempts tries each, sleeping backoff, 2·backoff, 4·backoff, … between
// them (capped at 10s per wait). It rides out workers that are still
// booting — a fleet brought up by an orchestrator rarely wins the race
// against its coordinator — without masking a dead address forever. logf
// (nil-safe) receives one line per failed attempt with the remaining
// schedule, so a stuck boot names the address it is waiting on.
func DialRetry(addrs []string, timeout time.Duration, attempts int, backoff time.Duration, logf func(format string, args ...any)) ([]Transport, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if attempts < 1 {
		attempts = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ts := make([]Transport, 0, len(addrs))
	for _, addr := range addrs {
		var conn net.Conn
		var err error
		wait := backoff
		for try := 1; ; try++ {
			conn, err = net.DialTimeout("tcp", addr, timeout)
			if err == nil {
				break
			}
			if try >= attempts {
				Close(ts)
				return nil, fmt.Errorf("dverify: dialing worker %s (%d attempts): %w", addr, attempts, err)
			}
			logf("worker %s unreachable (attempt %d/%d, retrying in %v): %v", addr, try, attempts, wait, err)
			time.Sleep(wait)
			if wait *= 2; wait > 10*time.Second {
				wait = 10 * time.Second
			}
		}
		ts = append(ts, &tcpTransport{
			addr: addr,
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		})
	}
	return ts, nil
}

type tcpTransport struct {
	addr string // as dialed — the address peers can reach the worker at
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (t *tcpTransport) Call(req *Request) (*Response, error) {
	if err := t.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("sending %v to %s: %w", req.Kind, t.conn.RemoteAddr(), err)
	}
	var resp Response
	if err := t.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("receiving from %s: %w", t.conn.RemoteAddr(), err)
	}
	return &resp, nil
}

func (t *tcpTransport) Close() error { return t.conn.Close() }

// meshHost is a daemon's rendezvous between mesh workers (registered by
// the coordinator session's Init) and inbound peer connections (which may
// arrive before the Init does — peers race their dials).
type meshHost struct {
	mu    sync.Mutex
	nodes map[uint64]map[int]*hostNode
}

// hostNode is what an inbound peer link needs from a registered worker:
// where to push batches and how to decode them.
type hostNode struct {
	inbox *meshInbox
	exp   *verify.Expander
}

func newMeshHost() *meshHost {
	return &meshHost{nodes: map[uint64]map[int]*hostNode{}}
}

func (h *meshHost) register(session uint64, id int, n *hostNode) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.nodes[session]
	if m == nil {
		m = map[int]*hostNode{}
		h.nodes[session] = m
	}
	if m[id] != nil {
		return fmt.Errorf("dverify: node %d already registered in session %#x", id, session)
	}
	m[id] = n
	return nil
}

func (h *meshHost) unregister(session uint64, id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.nodes[session]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(h.nodes, session)
		}
	}
}

func (h *meshHost) lookup(session uint64, id int) *hostNode {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[session][id]
}

// await polls for a registration: inbound peer connections park here until
// the matching Init lands (or the deadline passes — a peer dialing a
// session this daemon never joins must not leak a goroutine).
func (h *meshHost) await(session uint64, id int, timeout time.Duration) *hostNode {
	deadline := time.Now().Add(timeout)
	for {
		if n := h.lookup(session, id); n != nil {
			return n
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tcpMeshLink is one directed worker↔worker link: batches are encoded
// with the versioned frontier codec (sorted varint-delta, flate when it
// pays) and shipped as gob Frames.
type tcpMeshLink struct {
	to    int
	conn  net.Conn
	enc   *gob.Encoder
	codec *frontierCodec
	buf   []byte
}

func (l *tcpMeshLink) send(era, level int, states []verify.PackedState) (int, error) {
	l.buf = l.codec.encode(states, l.buf[:0])
	putBatch(states)
	if err := l.enc.Encode(Frame{Level: level, Era: era, Batch: l.buf}); err != nil {
		return 0, err
	}
	return len(l.buf), nil
}

// wantFilter takes the sender filter: every duplicate suppressed is bytes
// not shipped.
func (l *tcpMeshLink) wantFilter() bool { return true }

func (l *tcpMeshLink) close() error { return l.conn.Close() }

// tcpEnv wires a verifyd worker into the mesh: register with the host so
// inbound peer links find the inbox, then dial every peer for the
// outbound links.
type tcpEnv struct {
	host *meshHost
}

func (e tcpEnv) connect(job *Job, inbox *meshInbox, exp *verify.Expander) ([]meshLink, func(), error) {
	if len(job.Peers) != job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: mesh init names %d peers for %d nodes", len(job.Peers), job.NumNodes)
	}
	if err := e.host.register(job.Session, job.NodeID, &hostNode{inbox: inbox, exp: exp}); err != nil {
		return nil, nil, err
	}
	session, id := job.Session, job.NodeID
	cleanup := func() { e.host.unregister(session, id) }
	links := make([]meshLink, job.NumNodes)
	for d := range links {
		if d == id {
			continue
		}
		conn, err := net.DialTimeout("tcp", job.Peers[d], 5*time.Second)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			enc := gob.NewEncoder(conn)
			err = enc.Encode(&Request{Kind: KindPeerHello, Hello: &PeerHello{
				Proto: protoVersion, Session: session, From: id, To: d,
			}})
			if err == nil {
				links[d] = &tcpMeshLink{to: d, conn: conn, enc: enc, codec: newFrontierCodec(exp)}
				continue
			}
			conn.Close()
		}
		for _, l := range links {
			if l != nil {
				l.close()
			}
		}
		cleanup()
		return nil, nil, fmt.Errorf("dverify: node %d dialing mesh peer %d (%s): %v", id, d, job.Peers[d], err)
	}
	return links, cleanup, nil
}

// Server runs a worker daemon: it accepts coordinator sessions and
// inbound worker↔worker mesh links on one listener, distinguishing them
// by the first decoded request (mesh links open with KindPeerHello).
// Connections are served concurrently — a daemon hosts one cluster's
// worker while accepting the peer links of that same cluster — but the
// worker slot itself is exclusive: a second coordinator session's jobs
// are refused until the first ends, preserving the per-node MaxStates
// memory model (one visited partition resident at a time).
type Server struct {
	l    net.Listener
	logf func(format string, args ...any)
	host *meshHost

	mu       sync.Mutex
	draining bool
	busy     bool
	sessions sync.WaitGroup
}

// NewServer wraps a listener into a worker daemon. logf, when non-nil,
// receives one line per session and per protocol error.
func NewServer(l net.Listener, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{l: l, logf: logf, host: newMeshHost()}
}

// Serve accepts sessions until the listener fails. After Shutdown it
// drains the active coordinator sessions and returns nil.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if s.isDraining() {
				s.sessions.Wait()
				return nil
			}
			return err
		}
		// A coordinator that vanishes without FIN (partition, suspend) must
		// not wedge the worker forever: keepalive probes turn the dead link
		// into a read error, returning the session to cleanup.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
			tc.SetNoDelay(true)
		}
		// Registered before the serving goroutine exists: a drain must wait
		// for every accepted connection — including a coordinator that has
		// connected but not yet sent its first request — and Add may not
		// race a Wait that observed zero.
		s.sessions.Add(1)
		go s.serveConn(conn)
	}
}

// Shutdown drains the daemon: the listener closes (new connections and
// new jobs are refused), active sessions run to completion, and Serve
// then returns nil. Mesh links of active jobs stay up — a drain never
// drops a TCP link mid-level.
func (s *Server) Shutdown() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.l.Close()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveConn dispatches one inbound connection: a peer hello turns it into
// a mesh data link, anything else starts a coordinator session.
func (s *Server) serveConn(conn net.Conn) {
	defer s.sessions.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var first Request
	if err := dec.Decode(&first); err != nil {
		if err != io.EOF {
			s.logf("conn %s: decode: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if first.Kind == KindPeerHello {
		s.servePeer(conn, dec, first.Hello)
		return
	}
	s.logf("session from %s", conn.RemoteAddr())
	enc := gob.NewEncoder(conn)
	held := false
	acquire := func() bool {
		if held {
			return true
		}
		// Wait briefly before refusing: back-to-back CLI invocations race
		// the previous session's EOF processing by microseconds (the old
		// serial accept loop made them queue), while a genuinely
		// concurrent second cluster still gets a clean refusal.
		deadline := time.Now().Add(3 * time.Second)
		for {
			s.mu.Lock()
			if !s.busy {
				s.busy, held = true, true
				s.mu.Unlock()
				return true
			}
			s.mu.Unlock()
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	defer func() {
		if held {
			s.mu.Lock()
			s.busy = false
			s.mu.Unlock()
		}
	}()
	h := handler{env: tcpEnv{host: s.host}, draining: s.isDraining, acquire: acquire}
	defer h.reset()
	req := &first
	for {
		if req.Kind == KindInit && req.Job != nil && req.Job.RunID != "" {
			// The run ID is the cross-plane join key: grep it here, in the
			// admission front door's response, and in the coordinator trace.
			s.logf("session %s: run %s (node %d of %d)", conn.RemoteAddr(), req.Job.RunID, req.Job.NodeID, req.Job.NumNodes)
		}
		if err := enc.Encode(h.handle(req)); err != nil {
			s.logf("session %s: encode: %v", conn.RemoteAddr(), err)
			return
		}
		req = &Request{}
		if err := dec.Decode(req); err != nil {
			if err != io.EOF {
				s.logf("session %s: decode: %v", conn.RemoteAddr(), err)
			} else {
				s.logf("session %s closed", conn.RemoteAddr())
			}
			return
		}
	}
}

// servePeer pumps one inbound mesh link into the owning worker's inbox.
// The link outliving its session (late frames after a finished run) is
// normal — frames for an unregistered node are dropped.
func (s *Server) servePeer(conn net.Conn, dec *gob.Decoder, hello *PeerHello) {
	if hello == nil {
		s.logf("peer conn %s: hello without a body", conn.RemoteAddr())
		return
	}
	if hello.Proto != protoVersion {
		s.logf("peer conn %s: protocol %d, this worker speaks %d", conn.RemoteAddr(), hello.Proto, protoVersion)
		return
	}
	n := s.host.await(hello.Session, hello.To, 10*time.Second)
	if n == nil {
		s.logf("peer conn %s: session %#x node %d never registered", conn.RemoteAddr(), hello.Session, hello.To)
		return
	}
	codec := newFrontierCodec(n.exp)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			// A link failing while its node is still registered poisons the
			// run loudly through the node's next snapshot; after the session
			// ends, the sender closing the link is the expected teardown.
			if s.host.lookup(hello.Session, hello.To) == n {
				n.inbox.push(meshBatch{from: hello.From, err: fmt.Errorf("mesh link from node %d: %v", hello.From, err)})
			}
			return
		}
		states, err := codec.decode(f.Batch, getBatch())
		if err != nil {
			n.inbox.push(meshBatch{from: hello.From, err: fmt.Errorf("mesh link from node %d: %v", hello.From, err)})
			return
		}
		n.inbox.push(meshBatch{from: hello.From, level: f.Level, era: f.Era, states: states})
	}
}

// Serve runs a worker daemon on l until the listener fails: the
// non-graceful form of NewServer(l, logf).Serve(), kept for callers that
// manage shutdown by killing the process.
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	return NewServer(l, logf).Serve()
}
