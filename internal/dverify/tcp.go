package dverify

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"
)

// TCP/gob transport: the coordinator dials one long-lived connection per
// worker daemon (cmd/verifyd) and streams the Request/Response protocol
// over it. A worker disconnect surfaces as a Call error — io.EOF or a
// connection reset — which aborts the run cleanly at the next level
// boundary rather than hanging the barrier.

// Dial connects to the worker daemons at addrs (host:port each), returning
// one transport per address in order. On any failure the already-opened
// connections are closed.
func Dial(addrs []string, timeout time.Duration) ([]Transport, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ts := make([]Transport, 0, len(addrs))
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			Close(ts)
			return nil, fmt.Errorf("dverify: dialing worker %s: %w", addr, err)
		}
		ts = append(ts, &tcpTransport{
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		})
	}
	return ts, nil
}

type tcpTransport struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (t *tcpTransport) Call(req *Request) (*Response, error) {
	if err := t.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("sending %v to %s: %w", req.Kind, t.conn.RemoteAddr(), err)
	}
	var resp Response
	if err := t.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("receiving from %s: %w", t.conn.RemoteAddr(), err)
	}
	return &resp, nil
}

func (t *tcpTransport) Close() error { return t.conn.Close() }

// Serve runs a worker daemon on l: coordinator sessions are accepted one at
// a time (a worker node belongs to one cluster at a time), each session a
// gob request/response stream that ends when the coordinator disconnects.
// logf, when non-nil, receives one line per session and per protocol error.
// Serve returns only when the listener fails (e.g. it was closed).
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		// A coordinator that vanishes without FIN (partition, suspend) must
		// not wedge the worker forever: keepalive probes turn the dead link
		// into a read error, returning the daemon to Accept.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		logf("session from %s", conn.RemoteAddr())
		serveConn(conn, logf)
	}
}

// serveConn handles one coordinator session.
func serveConn(conn net.Conn, logf func(format string, args ...any)) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var h handler
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				logf("session %s: decode: %v", conn.RemoteAddr(), err)
			} else {
				logf("session %s closed", conn.RemoteAddr())
			}
			return
		}
		if err := enc.Encode(h.handle(&req)); err != nil {
			logf("session %s: encode: %v", conn.RemoteAddr(), err)
			return
		}
	}
}
