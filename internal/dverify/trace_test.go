package dverify

import (
	"testing"

	"tightcps/internal/obs"
	"tightcps/internal/verify"
)

// TestDistributedTraceLevels: on both topologies, an exhaustive distributed
// run's folded per-level spans must partition the visited states exactly —
// every state is counted in the level it was committed at, once. The mesh
// reconstructs levels from the workers' cumulative fresh-commit counts
// (Response.FreshByLevel); the relay records them at the coordinator's
// barrier. This is the engine-level half of the PR's acceptance check
// (verifyslot -tracefile on S1 = this invariant at 1.44M states).
func TestDistributedTraceLevels(t *testing.T) {
	ps := fleet(4, 6, 1, 2, 10)
	for _, tc := range []struct {
		name string
		topo verify.DistTopology
	}{
		{"mesh", verify.TopologyMesh},
		{"relay", verify.TopologyRelay},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.NewTrace("")
			cfg := verify.Config{NondetTies: true, RunID: tr.RunID, RunTrace: tr,
				DistTopology: tc.topo}
			res, err := verifyOver(t, 2, ps, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				t.Fatal("fleet must verify")
			}
			if got := tr.LevelStates(); got != res.States {
				t.Errorf("level spans sum to %d states, search visited %d", got, res.States)
			}
			if tr.Backend != tc.name || tr.Nodes != 2 {
				t.Errorf("backend recorded as %q/%d nodes, want %q/2", tr.Backend, tr.Nodes, tc.name)
			}
			if len(tr.Levels) != res.Depth+1 {
				t.Errorf("trace has %d level spans, depth %d wants %d", len(tr.Levels), res.Depth, res.Depth+1)
			}
			if tr.Levels[0].States != 1 {
				t.Errorf("level 0 records %d states, the initial state makes it 1", tr.Levels[0].States)
			}
			if tc.topo == verify.TopologyMesh {
				if len(tr.Cluster) != 2 {
					t.Fatalf("mesh trace has %d node spans, want 2", len(tr.Cluster))
				}
				nodeSum := 0
				for _, n := range tr.Cluster {
					nodeSum += n.States
				}
				if nodeSum != res.States {
					t.Errorf("node spans own %d states, search visited %d", nodeSum, res.States)
				}
				if tr.Epochs <= 0 {
					t.Error("mesh trace must record its poll epochs")
				}
			}
		})
	}
}
