package dverify

import (
	"fmt"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// owner maps a state hash to the node owning it: the 64 hash shards (top
// six bits, the same selector as the local sharded sets) are divided into
// contiguous ranges, one per node. Every state has exactly one owner, and
// only the owner stores it — the partitioning invariant behind the
// distributed visited set.
func owner(h uint64, numNodes int) int {
	return int(h>>58) * numNodes / 64
}

// filterBits sizes each per-destination recent-state filter: 1<<filterBits
// entries of one PackedState each (256 KiB per destination).
const filterBits = 13

// sendFilter is a fixed-size probing cache of the states most recently
// routed to one destination: a 2-way set at each hash index, insertion
// displacing the older way. A hit proves the exact state was routed before
// (entries store the full state, and equality — not the hash — decides), so
// suppressing it can never lose a state the owner has not seen; an evicted
// entry merely costs a redundant re-send, which the owner dedups on absorb.
// Misses are therefore safe in both directions — the soundness argument in
// DESIGN.md §4.
type sendFilter struct {
	slots []verify.PackedState
}

func newSendFilter() sendFilter {
	return sendFilter{slots: make([]verify.PackedState, 1<<filterBits)}
}

// seen records s and reports whether it was already present. h must be the
// expander's hash of s; the index bits are disjoint from the shard selector
// (top six) so one destination's filter spreads over all its shards.
func (f *sendFilter) seen(s verify.PackedState, h uint64) bool {
	i := int(h>>24) & (len(f.slots) - 1) &^ 1
	if f.slots[i] == s || f.slots[i+1] == s {
		return true
	}
	f.slots[i+1] = f.slots[i]
	f.slots[i] = s
	return false
}

// node is one worker's share of a running search: the visited-set
// partition, the current and next frontiers, the per-destination routing
// state (pending successors, recent-state filter, encoded batch) of the
// hash-routed exchange, and the expansion scratch.
type node struct {
	id, n     int
	exp       *verify.Expander
	budget    int
	visited   *verify.StateSet
	frontier  []verify.PackedState
	next      []verify.PackedState
	outStates [][]verify.PackedState // per-destination successors, pre-encode
	outBytes  [][]byte               // per-destination encoded batches
	filters   []sendFilter           // per-destination recent-state filters
	codec     *frontierCodec
	scratch   []verify.PackedState // successor / decode buffer
	esc       *verify.ExpandScratch
	tooLarge  bool
}

// newNode builds a node for the job, seeding the initial state on its
// owner. The returned Response reports the seed (Fresh/Next) so the
// coordinator can start its level loop with consistent counts.
func newNode(job *Job) (*node, *Response, error) {
	if job.Proto != protoVersion {
		return nil, nil, fmt.Errorf("dverify: coordinator speaks protocol %d, this worker speaks %d (rebuild the older side)",
			job.Proto, protoVersion)
	}
	if job.NumNodes < 1 || job.NodeID < 0 || job.NodeID >= job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: node %d of %d is not a valid placement", job.NodeID, job.NumNodes)
	}
	profs := make([]*switching.Profile, len(job.Profiles))
	for i := range job.Profiles {
		profs[i] = &job.Profiles[i]
	}
	exp, err := verify.NewExpander(profs, verify.Config{
		MaxDisturbances:   job.MaxDisturbances,
		Policy:            job.Policy,
		NondetTies:        job.NondetTies,
		SymmetryReduction: job.SymmetryReduction,
	})
	if err != nil {
		return nil, nil, err
	}
	budget := job.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	nd := &node{
		id:        job.NodeID,
		n:         job.NumNodes,
		exp:       exp,
		budget:    budget,
		visited:   exp.NewSet(1 << 12),
		outStates: make([][]verify.PackedState, job.NumNodes),
		outBytes:  make([][]byte, job.NumNodes),
		filters:   make([]sendFilter, job.NumNodes),
		codec:     newFrontierCodec(exp),
		esc:       exp.NewScratch(),
	}
	for d := range nd.filters {
		if d != nd.id {
			nd.filters[d] = newSendFilter()
		}
	}
	resp := &Response{Proto: protoVersion, ViolApp: -1}
	if init := exp.Initial(); owner(exp.Hash(init), nd.n) == nd.id {
		nd.visited.Add(init)
		nd.next = append(nd.next, init)
		resp.Fresh, resp.Next = 1, 1
	}
	return nd, resp, nil
}

// step expands the node's frontier one level: self-owned successors are
// deduplicated into the next frontier immediately, foreign ones pass the
// destination's recent-state filter and are batch-encoded for the
// coordinator to route. A deadline miss short-circuits like the local
// parallel search — frontier states greater than the node's minimum
// violating state are skipped, so the reported ViolState is the exact
// minimum of this partition.
func (nd *node) step() *Response {
	nd.frontier, nd.next = nd.next, nd.frontier[:0]
	for i := range nd.outStates {
		nd.outStates[i] = nd.outStates[i][:0]
	}
	resp := &Response{ViolApp: -1}
	for _, s := range nd.frontier {
		if resp.Viol && verify.LessState(resp.ViolState, s) {
			continue
		}
		succ, violApp := nd.exp.SuccessorsInto(s, nd.esc, nd.scratch[:0])
		nd.scratch = succ[:0]
		if violApp >= 0 {
			if !resp.Viol || verify.LessState(s, resp.ViolState) {
				resp.Viol, resp.ViolState, resp.ViolApp = true, s, violApp
			}
			continue
		}
		resp.Transitions += len(succ)
		for _, ns := range succ {
			h := nd.exp.Hash(ns)
			if dst := owner(h, nd.n); dst != nd.id {
				if nd.filters[dst].seen(ns, h) {
					resp.Filtered++
				} else {
					nd.outStates[dst] = append(nd.outStates[dst], ns)
				}
			} else if nd.visited.Add(ns) {
				if nd.visited.Len() > nd.budget {
					nd.tooLarge = true
					break
				}
				nd.next = append(nd.next, ns)
				resp.Fresh++
			}
		}
		if nd.tooLarge {
			break
		}
	}
	for d := range nd.outStates {
		nd.outBytes[d] = nd.codec.encode(nd.outStates[d], nd.outBytes[d][:0])
		resp.Routed += len(nd.outStates[d])
		resp.WireBytes += len(nd.outBytes[d])
	}
	resp.RawBytes = 8 * nd.exp.StateWords() * (resp.Routed + resp.Filtered)
	resp.Batches = nd.outBytes
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// absorb merges the routed successor batches owned by this node into its
// visited partition; fresh states join the next-level frontier.
func (nd *node) absorb(batches [][]byte) *Response {
	resp := &Response{ViolApp: -1}
	for _, b := range batches {
		states, err := nd.codec.decode(b, nd.scratch[:0])
		nd.scratch = states[:0]
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		for _, s := range states {
			if nd.tooLarge {
				break
			}
			if nd.visited.Add(s) {
				if nd.visited.Len() > nd.budget {
					nd.tooLarge = true
					break
				}
				nd.next = append(nd.next, s)
				resp.Fresh++
			}
		}
		if nd.tooLarge {
			break
		}
	}
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// handler serves one coordinator session, holding the worker node (relay
// or mesh) across the session's requests. Both transports — the loopback
// goroutine and a verifyd TCP session — dispatch through it, so worker
// behaviour is identical on either.
type handler struct {
	// env wires mesh workers into their cluster's data plane; nil on
	// transports that cannot form a mesh (mesh Inits are then refused).
	env meshEnv
	// draining, when non-nil, lets a shutting-down daemon refuse new jobs
	// while the active ones run to completion.
	draining func() bool
	// acquire, when non-nil, claims the host's single worker slot on the
	// session's first job — a worker node belongs to one cluster at a
	// time (its visited partition is sized by the per-node MaxStates
	// memory model, so concurrent coordinators would multiply residency).
	// The slot is held across re-Inits and released when the session ends.
	acquire func() bool

	nd *node
	mw *meshWorker
}

// reset tears down any live worker — a mesh worker's links and session
// registration must never outlive its job (conn reuse ships a fresh Init).
func (h *handler) reset() {
	if h.mw != nil {
		h.mw.shutdown()
		h.mw = nil
	}
	h.nd = nil
}

// handle answers one request. Errors travel in Response.Err rather than
// tearing the session down: the coordinator turns them into Go errors.
func (h *handler) handle(req *Request) *Response {
	switch req.Kind {
	case KindInit:
		if req.Job == nil {
			return &Response{Err: "init without a job"}
		}
		if h.draining != nil && h.draining() {
			return &Response{Err: "worker is draining (shutting down); refusing new jobs"}
		}
		if h.acquire != nil && !h.acquire() {
			return &Response{Err: "worker is busy with another coordinator session (one cluster per worker)"}
		}
		h.reset()
		if req.Job.Mesh {
			if h.env == nil {
				return &Response{Err: "this transport cannot form a worker mesh"}
			}
			mw, resp, err := newMeshWorker(req.Job, h.env)
			if err != nil {
				return &Response{Err: err.Error()}
			}
			h.mw = mw
			return resp
		}
		nd, resp, err := newNode(req.Job)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		h.nd = nd
		return resp
	case KindStep:
		if h.nd == nil {
			return &Response{Err: "step before init"}
		}
		return h.nd.step()
	case KindAbsorb:
		if h.nd == nil {
			return &Response{Err: "absorb before init"}
		}
		return h.nd.absorb(req.Batches)
	case KindPoll:
		if h.mw == nil {
			return &Response{Err: "poll before a mesh init"}
		}
		return h.mw.poll(req.Ctl)
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", req.Kind)}
	}
}
