package dverify

import (
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// owner maps a state hash to the node owning it under the default
// contiguous partitioning: the 64 hash shards (top six bits, the same
// selector as the local sharded sets) are divided into contiguous ranges,
// one per node. Every state has exactly one owner, and only the owner
// stores it — the partitioning invariant behind the distributed visited
// set. Fault-tolerant runs generalize this to an explicit ownership table
// (Job.Owners, ft.go) whose default is exactly these ranges.
func owner(h uint64, numNodes int) int {
	return int(h>>58) * numNodes / numShards
}

// filterBits sizes each per-destination recent-state filter: 1<<filterBits
// entries of one PackedState each (256 KiB per destination).
const filterBits = 13

// sendFilter is a fixed-size probing cache of the states most recently
// routed to one destination: a 2-way set at each hash index, insertion
// displacing the older way. A hit proves the exact state was routed before
// (entries store the full state, and equality — not the hash — decides), so
// suppressing it can never lose a state the owner has not seen; an evicted
// entry merely costs a redundant re-send, which the owner dedups on absorb.
// Misses are therefore safe in both directions — the soundness argument in
// DESIGN.md §4.
type sendFilter struct {
	slots []verify.PackedState
}

func newSendFilter() sendFilter {
	return sendFilter{slots: make([]verify.PackedState, 1<<filterBits)}
}

// seen records s and reports whether it was already present. h must be the
// expander's hash of s; the index bits are disjoint from the shard selector
// (top six) so one destination's filter spreads over all its shards.
func (f *sendFilter) seen(s verify.PackedState, h uint64) bool {
	i := int(h>>24) & (len(f.slots) - 1) &^ 1
	if f.slots[i] == s || f.slots[i+1] == s {
		return true
	}
	f.slots[i+1] = f.slots[i]
	f.slots[i] = s
	return false
}

// effectiveWorkers resolves the job's pool size the way the workers do: 0
// means the node's own GOMAXPROCS. Reuse compatibility compares resolved
// sizes, so a daemon whose GOMAXPROCS moved between runs rebuilds.
func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// jobsCompatible reports whether a worker built for prev can be reused for
// next: everything that shaped its expander, visited partition, lane pool
// and cluster placement must be identical, leaving only per-run search
// state to reset. Session, Peers and MaxStates may differ — they never
// shape worker memory (the budget is re-read at reinit). This is what
// makes a standing cluster cheap to re-Init: the bench loop and a daemon
// re-verifying the same slot skip the expander rebuild and the visited
// reallocation entirely.
func jobsCompatible(prev, next *Job) bool {
	if prev == nil || next == nil ||
		prev.NumNodes != next.NumNodes || prev.NodeID != next.NodeID ||
		prev.MaxDisturbances != next.MaxDisturbances || prev.Policy != next.Policy ||
		prev.NondetTies != next.NondetTies || prev.SymmetryReduction != next.SymmetryReduction ||
		prev.Mesh != next.Mesh ||
		effectiveWorkers(prev.Workers) != effectiveWorkers(next.Workers) ||
		len(prev.Profiles) != len(next.Profiles) {
		return false
	}
	for i := range prev.Profiles {
		if !profilesEqual(&prev.Profiles[i], &next.Profiles[i]) {
			return false
		}
	}
	return true
}

// profilesEqual compares the full precomputed profile — the expander is a
// pure function of it, so equality here is what licenses expander reuse.
func profilesEqual(a, b *switching.Profile) bool {
	return a.Name == b.Name && a.JStar == b.JStar && a.R == b.R &&
		a.JT == b.JT && a.JE == b.JE && a.TwStar == b.TwStar &&
		a.Granularity == b.Granularity &&
		slices.Equal(a.TdwMinus, b.TdwMinus) && slices.Equal(a.TdwPlus, b.TdwPlus) &&
		slices.Equal(a.JBest, b.JBest) && slices.Equal(a.JAtMin, b.JAtMin)
}

// node is one worker's share of a running search: the visited-set
// partition, the current and next frontiers, the per-destination routing
// state (pending successors, recent-state filter, encoded batch) of the
// hash-routed exchange, and the expansion scratch. With workers > 1 the
// level step fans across a lane pool over a striped visited set, just
// like the mesh workers; stored mirrors the partition's cardinality so
// budget checks never take the striped set's locks.
type node struct {
	id, n     int
	owners    [numShards]uint8 // shard → owning node (default contiguous)
	job       *Job             // what the node was built for (reuse compatibility)
	exp       *verify.Expander
	budget    int
	visited   *verify.StateSet
	frontier  []verify.PackedState
	next      []verify.PackedState
	outStates [][]verify.PackedState // per-destination successors, pre-encode
	outBytes  [][]byte               // per-destination encoded batches
	filters   []sendFilter           // per-destination recent-state filters
	codec     *frontierCodec
	scratch   []verify.PackedState // decode buffer
	hsucc     []verify.HashedState // successor buffer (serial expansion)
	esc       *verify.ExpandScratch
	lanes     []*meshLane // nil when workers == 1
	stored    int
	tooLarge  bool
	// Lane-pool machinery (workers > 1): the persistent crew, the reusable
	// fan-out task, the optional autotuner (Workers == 0), and the
	// already-flushed contention baselines (the striped set and the steal
	// counter survive reinit, so teardown flushes deltas).
	crew          laneCrew
	ptask         nodePTask
	tuner         *verify.LaneTuner
	tunRetries    int64
	transitions   int64
	contFlushed   verify.SetStats
	stealsFlushed int64
	// initResp backs reinit's Init reply; the previous one is long
	// consumed by the time a follow-up job re-Inits the node.
	initResp Response
}

// nodePTask carries one relay-node fan-out's shared atomics. Like the mesh
// workers' meshPTask it lives on the node so repeated steps reuse the same
// memory instead of escaping fresh atomics to the heap per level.
type nodePTask struct {
	minViol     atomic.Pointer[verify.PackedState]
	storedTotal atomic.Int64
	tooLarge    atomic.Bool
}

// newNode builds a node for the job, seeding the initial state on its
// owner. The returned Response reports the seed (Fresh/Next) so the
// coordinator can start its level loop with consistent counts. A previous
// node whose job is compatible is reinitialized in place instead, reusing
// its expander, visited partition and buffers.
func newNode(job *Job, prev *node) (*node, *Response, error) {
	if job.Proto != protoVersion {
		return nil, nil, fmt.Errorf("dverify: coordinator speaks protocol %d, this worker speaks %d (rebuild the older side)",
			job.Proto, protoVersion)
	}
	if job.NumNodes < 1 || job.NodeID < 0 || job.NodeID >= job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: node %d of %d is not a valid placement", job.NodeID, job.NumNodes)
	}
	if prev != nil && jobsCompatible(prev.job, job) {
		return prev.reinit(job)
	}
	profs := make([]*switching.Profile, len(job.Profiles))
	for i := range job.Profiles {
		profs[i] = &job.Profiles[i]
	}
	exp, err := verify.NewExpander(profs, verify.Config{
		MaxDisturbances:   job.MaxDisturbances,
		Policy:            job.Policy,
		NondetTies:        job.NondetTies,
		SymmetryReduction: job.SymmetryReduction,
	})
	if err != nil {
		return nil, nil, err
	}
	budget := job.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	workers := effectiveWorkers(job.Workers)
	nd := &node{
		id:        job.NodeID,
		n:         job.NumNodes,
		owners:    ownerTable(job.Owners, job.NumNodes),
		job:       job,
		exp:       exp,
		budget:    budget,
		outStates: make([][]verify.PackedState, job.NumNodes),
		outBytes:  make([][]byte, job.NumNodes),
		filters:   make([]sendFilter, job.NumNodes),
		codec:     newFrontierCodec(exp),
		esc:       exp.NewScratch(),
	}
	if workers > 1 {
		nd.visited = exp.NewShardedSet(1 << 12)
		nd.lanes = make([]*meshLane, workers)
		for i := range nd.lanes {
			nd.lanes[i] = &meshLane{
				esc:     exp.NewScratch(),
				out:     make([][]verify.HashedState, job.NumNodes),
				violApp: -1,
			}
		}
		nd.crew.body = nd.laneStep
		if job.Workers <= 0 {
			nd.tuner = verify.NewLaneTuner(workers)
		}
	} else {
		nd.visited = exp.NewSet(1 << 12)
	}
	for d := range nd.filters {
		if d != nd.id {
			nd.filters[d] = newSendFilter()
		}
	}
	resp := &Response{Proto: protoVersion, ViolApp: -1}
	if init := exp.Initial(); int(nd.owners[exp.Hash(init)>>58]) == nd.id {
		nd.visited.Add(init)
		nd.next = append(nd.next, init)
		nd.stored = 1
		resp.Fresh, resp.Next = 1, 1
	}
	return nd, resp, nil
}

// reinit rebuilds the node in place for a compatible follow-up job: the
// expander, visited partition, lane pool, codec and routing buffers all
// survive, so a standing worker re-Inits without repeating the dominant
// per-run allocations (the visited tables above all). Only per-run search
// state is cleared.
func (nd *node) reinit(job *Job) (*node, *Response, error) {
	nd.job = job
	nd.owners = ownerTable(job.Owners, job.NumNodes)
	nd.budget = job.MaxStates
	if nd.budget <= 0 {
		nd.budget = defaultMaxStates
	}
	nd.visited.Reset()
	nd.frontier = nd.frontier[:0]
	nd.next = nd.next[:0]
	for d := range nd.outStates {
		nd.outStates[d] = nd.outStates[d][:0]
		nd.outBytes[d] = nd.outBytes[d][:0]
		if nd.filters[d].slots != nil {
			clear(nd.filters[d].slots)
		}
	}
	for _, ln := range nd.lanes {
		ln.reset()
	}
	if nd.lanes != nil && job.Workers <= 0 {
		nd.tuner = verify.NewLaneTuner(len(nd.lanes))
	} else {
		nd.tuner = nil
	}
	nd.tunRetries = nd.visited.Stats().Retries
	nd.stored, nd.tooLarge = 0, false
	resp := &nd.initResp
	*resp = Response{Proto: protoVersion, ViolApp: -1}
	if init := nd.exp.Initial(); int(nd.owners[nd.exp.Hash(init)>>58]) == nd.id {
		nd.visited.Add(init)
		nd.next = append(nd.next, init)
		nd.stored = 1
		resp.Fresh, resp.Next = 1, 1
	}
	return nd, resp, nil
}

// step expands the node's frontier one level: self-owned successors are
// deduplicated into the next frontier immediately, foreign ones pass the
// destination's recent-state filter and are batch-encoded for the
// coordinator to route. A deadline miss short-circuits like the local
// parallel search — frontier states greater than the node's minimum
// violating state are skipped, so the reported ViolState is the exact
// minimum of this partition.
func (nd *node) step() *Response {
	nd.frontier, nd.next = nd.next, nd.frontier[:0]
	for i := range nd.outStates {
		nd.outStates[i] = nd.outStates[i][:0]
	}
	resp := &Response{ViolApp: -1}
	if nd.lanes != nil && len(nd.frontier) >= meshParallelThreshold && !nd.tooLarge {
		nd.stepParallel(resp)
	} else {
		nd.stepSerial(resp)
	}
	nd.transitions += int64(resp.Transitions)
	for d := range nd.outStates {
		nd.outBytes[d] = nd.codec.encode(nd.outStates[d], nd.outBytes[d][:0])
		resp.Routed += len(nd.outStates[d])
		resp.WireBytes += len(nd.outBytes[d])
	}
	resp.RawBytes = 8 * nd.exp.StateWords() * (resp.Routed + resp.Filtered)
	resp.Batches = nd.outBytes
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// stepSerial is the single-goroutine level step, hashing each successor
// once during the packing sweep (routing, filter and visited probe all
// reuse it).
func (nd *node) stepSerial(resp *Response) {
	for _, s := range nd.frontier {
		if resp.Viol && verify.LessState(resp.ViolState, s) {
			continue
		}
		succ, violApp := nd.exp.SuccessorsHashedInto(s, nd.esc, nd.hsucc[:0])
		nd.hsucc = succ[:0]
		if violApp >= 0 {
			if !resp.Viol || verify.LessState(s, resp.ViolState) {
				resp.Viol, resp.ViolState, resp.ViolApp = true, s, violApp
			}
			continue
		}
		resp.Transitions += len(succ)
		for _, ns := range succ {
			if dst := int(nd.owners[ns.H>>58]); dst != nd.id {
				if nd.filters[dst].seen(ns.S, ns.H) {
					resp.Filtered++
				} else {
					nd.outStates[dst] = append(nd.outStates[dst], ns.S)
				}
			} else if nd.visited.AddHashed(ns.S, ns.H) {
				nd.stored++
				if nd.stored > nd.budget {
					nd.tooLarge = true
					break
				}
				nd.next = append(nd.next, ns.S)
				resp.Fresh++
			}
		}
		if nd.tooLarge {
			break
		}
	}
}

// stepParallel fans the frontier across the persistent lane crew: lanes
// claim chunks from the work-stealing queue, expand through their own
// scratch, commit self-owned successors straight into the striped visited
// set and stage peer-owned ones per destination; the merge pushes the
// stages through the recent-state filters single-threaded, so filter
// state and the outgoing batches never see concurrent writers. The
// minimum violator stays exact for the same reason as the mesh lanes: the
// CAS bound only skips frontier states greater than a recorded violator.
// Under autotuning each level is one throughput window; inactive lanes
// never wake and are excluded from the merge.
func (nd *node) stepParallel(resp *Response) {
	active := len(nd.lanes)
	if nd.tuner != nil {
		if a := nd.tuner.Lanes(); a < active {
			active = a
		}
	}
	t := &nd.ptask
	t.minViol.Store(nil)
	t.storedTotal.Store(int64(nd.stored))
	t.tooLarge.Store(false)
	nd.crew.ensure(nd.lanes)
	var start time.Time
	if nd.tuner != nil {
		start = time.Now()
	}
	nd.crew.fan(active, len(nd.frontier), meshLaneChunk)
	if nd.tuner != nil {
		r := nd.visited.Stats().Retries
		nd.tuner.Observe(len(nd.frontier), time.Since(start), r-nd.tunRetries)
		nd.tunRetries = r
	}
	nd.stored = int(t.storedTotal.Load())
	if t.tooLarge.Load() {
		nd.tooLarge = true
	}
	for _, ln := range nd.lanes[:active] {
		resp.Transitions += ln.trans
		if ln.haveViol && (!resp.Viol || verify.LessState(ln.violState, resp.ViolState)) {
			resp.Viol, resp.ViolState, resp.ViolApp = true, ln.violState, ln.violApp
		}
		nd.next = append(nd.next, ln.next...)
		resp.Fresh += len(ln.next)
		ln.next = ln.next[:0]
	}
	for d := range nd.outStates {
		if d == nd.id {
			continue
		}
		for _, ln := range nd.lanes[:active] {
			for _, ns := range ln.out[d] {
				if nd.filters[d].seen(ns.S, ns.H) {
					resp.Filtered++
				} else {
					nd.outStates[d] = append(nd.outStates[d], ns.S)
				}
			}
			ln.out[d] = ln.out[d][:0]
		}
	}
}

// laneStep is the relay node's crew body: one lane's share of one level.
func (nd *node) laneStep(lane int, ln *meshLane) {
	t := &nd.ptask
	budget := int64(nd.budget)
	ln.trans, ln.haveViol = 0, false
	ln.next = ln.next[:0]
	for {
		lo, hi, ok := nd.crew.wq.Next(lane)
		if !ok || t.tooLarge.Load() {
			return
		}
		for _, s := range nd.frontier[lo:hi] {
			if mv := t.minViol.Load(); mv != nil && verify.LessState(*mv, s) {
				continue
			}
			succ, violApp := nd.exp.SuccessorsHashedInto(s, ln.esc, ln.succ[:0])
			ln.succ = succ[:0]
			if violApp >= 0 {
				if !ln.haveViol || verify.LessState(s, ln.violState) {
					ln.haveViol, ln.violState, ln.violApp = true, s, violApp
				}
				for {
					mv := t.minViol.Load()
					if mv != nil && !verify.LessState(s, *mv) {
						break
					}
					vs := s
					if t.minViol.CompareAndSwap(mv, &vs) {
						break
					}
				}
				continue
			}
			ln.trans += len(succ)
			for _, ns := range succ {
				if dst := int(nd.owners[ns.H>>58]); dst != nd.id {
					ln.out[dst] = append(ln.out[dst], ns)
				} else if nd.visited.AddHashed(ns.S, ns.H) {
					if t.storedTotal.Add(1) > budget {
						t.tooLarge.Store(true)
						return
					}
					ln.next = append(ln.next, ns.S)
				}
			}
		}
	}
}

// teardown stops the node's lane crew and folds its share of the
// contention ledger into the engine telemetry. The handler calls it when
// the session moves on; a later reuse of the node respawns the crew
// lazily on its first parallel level.
func (nd *node) teardown() {
	nd.crew.stop()
	if nd.lanes == nil {
		return
	}
	s := nd.visited.Stats()
	verify.FlushContention(verify.SetStats{
		Probes:    s.Probes - nd.contFlushed.Probes,
		Retries:   s.Retries - nd.contFlushed.Retries,
		Overflows: s.Overflows,
	}, nd.transitions, nd.crew.wq.Steals()-nd.stealsFlushed)
	nd.contFlushed = s
	nd.stealsFlushed = nd.crew.wq.Steals()
	nd.transitions = 0
}

// absorb merges the routed successor batches owned by this node into its
// visited partition; fresh states join the next-level frontier.
func (nd *node) absorb(batches [][]byte) *Response {
	resp := &Response{ViolApp: -1}
	for _, b := range batches {
		states, err := nd.codec.decode(b, nd.scratch[:0])
		nd.scratch = states[:0]
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		for _, s := range states {
			if nd.tooLarge {
				break
			}
			if nd.visited.Add(s) {
				nd.stored++
				if nd.stored > nd.budget {
					nd.tooLarge = true
					break
				}
				nd.next = append(nd.next, s)
				resp.Fresh++
			}
		}
		if nd.tooLarge {
			break
		}
	}
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// handler serves one coordinator session, holding the worker node (relay
// or mesh) across the session's requests. Both transports — the loopback
// goroutine and a verifyd TCP session — dispatch through it, so worker
// behaviour is identical on either.
type handler struct {
	// env wires mesh workers into their cluster's data plane; nil on
	// transports that cannot form a mesh (mesh Inits are then refused).
	env meshEnv
	// draining, when non-nil, lets a shutting-down daemon refuse new jobs
	// while the active ones run to completion.
	draining func() bool
	// acquire, when non-nil, claims the host's single worker slot on the
	// session's first job — a worker node belongs to one cluster at a
	// time (its visited partition is sized by the per-node MaxStates
	// memory model, so concurrent coordinators would multiply residency).
	// The slot is held across re-Inits and released when the session ends.
	acquire func() bool

	nd *node
	mw *meshWorker
}

// reset tears down any live worker — a mesh worker's links and session
// registration must never outlive its job (conn reuse ships a fresh Init).
func (h *handler) reset() {
	if h.mw != nil {
		h.mw.shutdown()
		h.mw = nil
	}
	if h.nd != nil {
		h.nd.teardown()
		h.nd = nil
	}
}

// handle answers one request. Errors travel in Response.Err rather than
// tearing the session down: the coordinator turns them into Go errors.
func (h *handler) handle(req *Request) *Response {
	switch req.Kind {
	case KindInit:
		if req.Job == nil {
			return &Response{Err: "init without a job"}
		}
		if h.draining != nil && h.draining() {
			return &Response{Err: "worker is draining (shutting down); refusing new jobs"}
		}
		if h.acquire != nil && !h.acquire() {
			return &Response{Err: "worker is busy with another coordinator session (one cluster per worker)"}
		}
		// Keep the torn-down workers around as reuse donors: a compatible
		// follow-up job reinitializes one in place instead of rebuilding.
		prevMW, prevND := h.mw, h.nd
		h.reset()
		if req.Job.Mesh {
			if h.env == nil {
				return &Response{Err: "this transport cannot form a worker mesh"}
			}
			mw, resp, err := newMeshWorker(req.Job, h.env, prevMW)
			if err != nil {
				return &Response{Err: err.Error()}
			}
			h.mw = mw
			return resp
		}
		nd, resp, err := newNode(req.Job, prevND)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		h.nd = nd
		return resp
	case KindStep:
		if h.nd == nil {
			return &Response{Err: "step before init"}
		}
		return h.nd.step()
	case KindAbsorb:
		if h.nd == nil {
			return &Response{Err: "absorb before init"}
		}
		return h.nd.absorb(req.Batches)
	case KindPoll:
		if h.mw == nil {
			return &Response{Err: "poll before a mesh init"}
		}
		return h.mw.poll(req.Ctl)
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", req.Kind)}
	}
}
