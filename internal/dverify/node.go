package dverify

import (
	"fmt"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// owner maps a state hash to the node owning it: the 64 hash shards (top
// six bits, the same selector as the local sharded sets) are divided into
// contiguous ranges, one per node. Every state has exactly one owner, and
// only the owner stores it — the partitioning invariant behind the
// distributed visited set.
func owner(h uint64, numNodes int) int {
	return int(h>>58) * numNodes / 64
}

// node is one worker's share of a running search: the visited-set
// partition, the current and next frontiers, and the per-destination batch
// buffers of the hash-routed exchange.
type node struct {
	id, n    int
	exp      *verify.Expander
	budget   int
	visited  *verify.StateSet
	frontier []verify.PackedState
	next     []verify.PackedState
	out      [][]byte             // per-destination successor batches
	scratch  []verify.PackedState // successor / decode buffer
	tooLarge bool
}

// newNode builds a node for the job, seeding the initial state on its
// owner. The returned Response reports the seed (Fresh/Next) so the
// coordinator can start its level loop with consistent counts.
func newNode(job *Job) (*node, *Response, error) {
	if job.NumNodes < 1 || job.NodeID < 0 || job.NodeID >= job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: node %d of %d is not a valid placement", job.NodeID, job.NumNodes)
	}
	profs := make([]*switching.Profile, len(job.Profiles))
	for i := range job.Profiles {
		profs[i] = &job.Profiles[i]
	}
	exp, err := verify.NewExpander(profs, verify.Config{
		MaxDisturbances:   job.MaxDisturbances,
		Policy:            job.Policy,
		NondetTies:        job.NondetTies,
		SymmetryReduction: job.SymmetryReduction,
	})
	if err != nil {
		return nil, nil, err
	}
	budget := job.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	nd := &node{
		id:      job.NodeID,
		n:       job.NumNodes,
		exp:     exp,
		budget:  budget,
		visited: exp.NewSet(1 << 12),
		out:     make([][]byte, job.NumNodes),
	}
	resp := &Response{ViolApp: -1}
	if init := exp.Initial(); owner(exp.Hash(init), nd.n) == nd.id {
		nd.visited.Add(init)
		nd.next = append(nd.next, init)
		resp.Fresh, resp.Next = 1, 1
	}
	return nd, resp, nil
}

// step expands the node's frontier one level: self-owned successors are
// deduplicated into the next frontier immediately, foreign ones are encoded
// into per-destination batches for the coordinator to route. A deadline
// miss short-circuits like the local parallel search — frontier states
// greater than the node's minimum violating state are skipped, so the
// reported ViolState is the exact minimum of this partition.
func (nd *node) step() *Response {
	nd.frontier, nd.next = nd.next, nd.frontier[:0]
	for i := range nd.out {
		nd.out[i] = nd.out[i][:0]
	}
	resp := &Response{ViolApp: -1}
	for _, s := range nd.frontier {
		if resp.Viol && verify.LessState(resp.ViolState, s) {
			continue
		}
		succ, violApp := nd.exp.Successors(s, nd.scratch[:0])
		nd.scratch = succ[:0]
		if violApp >= 0 {
			if !resp.Viol || verify.LessState(s, resp.ViolState) {
				resp.Viol, resp.ViolState, resp.ViolApp = true, s, violApp
			}
			continue
		}
		resp.Transitions += len(succ)
		for _, ns := range succ {
			if dst := owner(nd.exp.Hash(ns), nd.n); dst != nd.id {
				nd.out[dst] = nd.exp.AppendState(nd.out[dst], ns)
			} else if nd.visited.Add(ns) {
				if nd.visited.Len() > nd.budget {
					nd.tooLarge = true
					break
				}
				nd.next = append(nd.next, ns)
				resp.Fresh++
			}
		}
		if nd.tooLarge {
			break
		}
	}
	resp.Batches = nd.out
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// absorb merges the routed successors owned by this node into its visited
// partition; fresh states join the next-level frontier.
func (nd *node) absorb(batch []byte) *Response {
	resp := &Response{ViolApp: -1}
	states, err := nd.exp.DecodeStates(batch, nd.scratch[:0])
	nd.scratch = states[:0]
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	for _, s := range states {
		if nd.tooLarge {
			break
		}
		if nd.visited.Add(s) {
			if nd.visited.Len() > nd.budget {
				nd.tooLarge = true
				break
			}
			nd.next = append(nd.next, s)
			resp.Fresh++
		}
	}
	resp.Next = len(nd.next)
	resp.TooLarge = nd.tooLarge
	return resp
}

// handler serves one coordinator session, holding the node across the
// session's requests. Both transports — the loopback goroutine and a
// verifyd TCP session — dispatch through it, so worker behaviour is
// identical on either.
type handler struct {
	nd *node
}

// handle answers one request. Errors travel in Response.Err rather than
// tearing the session down: the coordinator turns them into Go errors.
func (h *handler) handle(req *Request) *Response {
	switch req.Kind {
	case KindInit:
		if req.Job == nil {
			return &Response{Err: "init without a job"}
		}
		nd, resp, err := newNode(req.Job)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		h.nd = nd
		return resp
	case KindStep:
		if h.nd == nil {
			return &Response{Err: "step before init"}
		}
		return h.nd.step()
	case KindAbsorb:
		if h.nd == nil {
			return &Response{Err: "absorb before init"}
		}
		return h.nd.absorb(req.Batch)
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", req.Kind)}
	}
}
