package dverify

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// Mesh topology: the data plane of the distributed search without the
// coordinator in it. Workers hold one direct link per peer (channels for
// loopback clusters, dial-out TCP for verifyd fleets) and route successor
// batches straight to their shard owners; the coordinator is a thin
// control plane that polls counter snapshots, publishes level milestones
// and detects termination by epoch accounting (cluster-wide states sent
// vs absorbed per level).
//
// Levels are pipelined, not barriered: a worker expands level L+1 states
// as they arrive while peers are still draining level L. Exactness — the
// same verdict, exhaustive counts, depth and minimal violator as the
// local searches — is preserved by one commit rule: a state tagged with
// level t may enter the visited set only once every level ≤ t−1 is
// *final* (all states committed and all tagged-≤(t−1) messages absorbed).
// Under that rule a freshly committed state's tag always equals its true
// BFS level (a shorter path would mean the state was already committed
// when its earlier level was finalized), so per-level counts, Depth and
// the first-violating-level minimum-violator tie-break are bit-identical
// to the level-synchronous searches. Arrivals ahead of the rule are
// deferred, bounding the pipeline to one level of lookahead — the price
// of exactness, and exactly the overlap a barrier forbids.
//
// The coordinator advances two milestones from each epoch's snapshots:
//
//	final(L): done(L−1) ∧ Σ sent[L] == Σ recv[L]   (membership final)
//	done(L):  final(L) ∧ every worker drained ≤ L  (fully expanded)
//
// Both are evaluated over cumulative, monotone counters from one poll
// round, so a lagging message can only delay a milestone, never fake
// one. Termination: a violation is final once done reaches its level; a
// schedulable run ends when every worker is idle and the sent/recv sums
// match at every level (Mattern-style quiescence — any in-flight state
// leaves the sums unequal).

// meshChunk is how many states a worker expands between inbox drains and
// control checks; meshPollBudget caps how long a busy worker holds a poll
// before answering with an interim snapshot; meshIdleWait caps how long
// an idle worker waits for data before answering an unchanged snapshot;
// meshBatchTarget is the flush threshold of per-destination send buffers.
const (
	meshChunk       = 1024
	meshPollBudget  = 25 * time.Millisecond
	meshIdleWait    = 20 * time.Millisecond
	meshBatchTarget = 4096
)

// meshBatch is one level-tagged batch of decoded states crossing a mesh
// link, or a link failure surfaced into the owner's inbox.
type meshBatch struct {
	from   int
	level  int
	states []verify.PackedState
	err    error
}

// meshInbox is a worker's unbounded, mutex-guarded receive queue. Senders
// never block (so two workers flooding each other cannot deadlock) and
// nudge the notify channel so an idle owner wakes.
type meshInbox struct {
	mu     sync.Mutex
	q      []meshBatch
	notify chan struct{}
}

func newMeshInbox() *meshInbox {
	return &meshInbox{notify: make(chan struct{}, 1)}
}

func (ib *meshInbox) push(b meshBatch) {
	ib.mu.Lock()
	ib.q = append(ib.q, b)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// drain swaps the queue out against spare, returning the pending batches.
func (ib *meshInbox) drain(spare []meshBatch) []meshBatch {
	ib.mu.Lock()
	out := ib.q
	ib.q = spare[:0]
	ib.mu.Unlock()
	return out
}

// batchPool recycles state slices between senders, receivers and level
// buckets, keeping the steady-state mesh allocation-light.
var batchPool sync.Pool

func getBatch() []verify.PackedState {
	if b, _ := batchPool.Get().([]verify.PackedState); b != nil {
		return b[:0]
	}
	return make([]verify.PackedState, 0, meshBatchTarget)
}

func putBatch(b []verify.PackedState) {
	if cap(b) > 0 {
		batchPool.Put(b[:0])
	}
}

// meshLink is one directed data link to a peer. send takes ownership of
// states and returns the bytes shipped (raw width on loopback, encoded
// batch size on TCP). wantFilter reports whether the sender-side
// recent-state filter pays on this link: probing costs more than the
// receiver-side dedup it saves when no real wire is crossed, so loopback
// links decline it and TCP links (where every state costs bytes) take it.
type meshLink interface {
	send(level int, states []verify.PackedState) (int, error)
	wantFilter() bool
	close() error
}

// meshEnv wires a worker into its cluster's data plane: the loopback
// group registry or the TCP host (register own inbox, dial peers).
type meshEnv interface {
	connect(job *Job, inbox *meshInbox, exp *verify.Expander) (links []meshLink, cleanup func(), err error)
}

// meshWorker is one node of the mesh search. It is single-goroutine: the
// transport's serve loop calls Init/Poll, and all search state is touched
// only from those calls (peer readers touch nothing but the inbox).
type meshWorker struct {
	id, n   int
	exp     *verify.Expander
	words   int
	budget  int
	visited *verify.StateSet
	esc     *verify.ExpandScratch
	succ    []verify.PackedState

	inbox   *meshInbox
	spareQ  []meshBatch
	links   []meshLink
	filters []sendFilter
	cleanup func()

	// Level-indexed search state. buckets[l][:cursors[l]] is expanded;
	// pending holds batches deferred by the commit rule (tag > final+1) —
	// whole slices, ownership transferred, so deferral never copies.
	buckets  [][]verify.PackedState
	cursors  []int
	pending  [][][]verify.PackedState
	freshAt  []int // fresh commits per level (set pre-sizing)
	final    int   // highest level known final (coordinator-published)
	outBuf   [][]verify.PackedState
	outLevel int // tag of the buffered sends (expand level + 1)

	// Cumulative accounting, snapshotted into every poll response.
	sentByLevel []int
	recvByLevel []int
	fresh       int
	transitions int
	maxFresh    int
	routed      int
	filtered    int
	wireBytes   int
	linkStates  []int
	linkBytes   []int
	tooLarge    bool
	err         error

	// Own minimum violation (reported) and the skip bound (own merged
	// with the coordinator's broadcast; never reported back).
	haveViol   bool
	violLevel  int
	violState  verify.PackedState
	violApp    int
	haveBound  bool
	boundLevel int
	boundState verify.PackedState

	finished bool
	waitT    *time.Timer
	lastSnap meshDigest
	haveSnap bool
}

// meshDigest summarizes a snapshot for the long-poll "news" check: a
// worker answers an outstanding poll as soon as its digest moves.
type meshDigest struct {
	fresh, transitions, routed, filtered int
	sent, recv, pendingN                 int
	drained, maxFresh                    int
	idle, tooLarge, haveErr, haveViol    bool
	violLevel                            int
	violState                            verify.PackedState
}

// newMeshWorker builds a node for a mesh job and wires its data links
// through env, seeding the initial state on its owner.
func newMeshWorker(job *Job, env meshEnv) (*meshWorker, *Response, error) {
	if job.Proto != protoVersion {
		return nil, nil, fmt.Errorf("dverify: coordinator speaks protocol %d, this worker speaks %d (rebuild the older side)",
			job.Proto, protoVersion)
	}
	if job.NumNodes < 1 || job.NodeID < 0 || job.NodeID >= job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: node %d of %d is not a valid placement", job.NodeID, job.NumNodes)
	}
	profs := make([]*switching.Profile, len(job.Profiles))
	for i := range job.Profiles {
		profs[i] = &job.Profiles[i]
	}
	exp, err := verify.NewExpander(profs, verify.Config{
		MaxDisturbances:   job.MaxDisturbances,
		Policy:            job.Policy,
		NondetTies:        job.NondetTies,
		SymmetryReduction: job.SymmetryReduction,
	})
	if err != nil {
		return nil, nil, err
	}
	budget := job.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	w := &meshWorker{
		id:         job.NodeID,
		n:          job.NumNodes,
		exp:        exp,
		words:      exp.StateWords(),
		budget:     budget,
		visited:    exp.NewSet(1 << 16),
		esc:        exp.NewScratch(),
		inbox:      newMeshInbox(),
		filters:    make([]sendFilter, job.NumNodes),
		outBuf:     make([][]verify.PackedState, job.NumNodes),
		linkStates: make([]int, job.NumNodes),
		linkBytes:  make([]int, job.NumNodes),
		outLevel:   -1,
		violApp:    -1,
	}
	for d := range w.outBuf {
		if d != w.id {
			w.outBuf[d] = getBatch()
		}
	}
	links, cleanup, err := env.connect(job, w.inbox, exp)
	if err != nil {
		return nil, nil, err
	}
	w.links, w.cleanup = links, cleanup
	for d, l := range links {
		if d != w.id && l != nil && l.wantFilter() {
			w.filters[d] = newSendFilter()
		}
	}
	resp := &Response{Proto: protoVersion, ViolApp: -1}
	if init := exp.Initial(); owner(exp.Hash(init), w.n) == w.id {
		w.ensureLevel(0)
		w.visited.Add(init)
		w.buckets[0] = append(w.buckets[0], init)
		w.fresh, resp.Fresh, resp.Next = 1, 1, 1
	}
	return w, resp, nil
}

// ensureLevel grows the level-indexed slices to hold level l.
func (w *meshWorker) ensureLevel(l int) {
	for len(w.buckets) <= l {
		w.buckets = append(w.buckets, nil)
		w.cursors = append(w.cursors, 0)
		w.pending = append(w.pending, nil)
		w.freshAt = append(w.freshAt, 0)
		w.sentByLevel = append(w.sentByLevel, 0)
		w.recvByLevel = append(w.recvByLevel, 0)
	}
}

// absorb applies the commit rule to a level-tagged batch, taking
// ownership of the slice: levels ≤ final+1 enter the visited set (fresh
// states join their bucket) and the slice is recycled; later tags defer
// the whole slice uncopied; levels beyond the violation bound are dropped
// (they can never reach the verdict).
func (w *meshWorker) absorb(level int, states []verify.PackedState) {
	if w.haveBound && level > w.boundLevel {
		putBatch(states)
		return
	}
	w.ensureLevel(level)
	if level > w.final+1 {
		w.pending[level] = append(w.pending[level], states)
		return
	}
	w.visited.Reserve(len(states))
	for _, s := range states {
		w.commit1(level, s, w.exp.Hash(s))
		if w.tooLarge {
			return
		}
	}
	putBatch(states)
}

// commit1 commits a single state under the same rule as absorb. h must be
// the expander's hash of s (expansion already computed it for routing, so
// the visited probe never mixes twice).
func (w *meshWorker) commit1(level int, s verify.PackedState, h uint64) {
	if w.tooLarge || (w.haveBound && level > w.boundLevel) {
		return
	}
	w.ensureLevel(level)
	if level > w.final+1 {
		lst := w.pending[level]
		if n := len(lst); n == 0 || len(lst[n-1]) == cap(lst[n-1]) {
			lst = append(lst, getBatch())
		}
		lst[len(lst)-1] = append(lst[len(lst)-1], s)
		w.pending[level] = lst
		return
	}
	if w.visited.AddHashed(s, h) {
		if w.visited.Len() > w.budget {
			w.tooLarge = true
			return
		}
		if len(w.buckets[level]) == 0 && cap(w.buckets[level]) == 0 {
			w.buckets[level] = w.newBucket(level)
		}
		w.buckets[level] = append(w.buckets[level], s)
		w.fresh++
		w.freshAt[level]++
		if level > w.maxFresh {
			w.maxFresh = level
		}
	}
}

// newBucket sizes a level's frontier bucket from the previous level's
// fresh count, so big levels fill without repeated growth copies.
func (w *meshWorker) newBucket(level int) []verify.PackedState {
	if level > 0 && w.freshAt[level-1] > meshBatchTarget {
		n := w.freshAt[level-1] + w.freshAt[level-1]/4
		return make([]verify.PackedState, 0, n)
	}
	return getBatch()
}

// setFinal raises the node's final-level knowledge, releasing deferred
// commits level by ascending level (the order the commit-rule proof
// relies on: pending level L+1 flushes only once level L is final).
func (w *meshWorker) setFinal(f int) {
	for w.final < f {
		w.final++
		l := w.final + 1
		if l < len(w.pending) && len(w.pending[l]) > 0 {
			batches := w.pending[l]
			w.pending[l] = nil
			for _, b := range batches {
				w.absorb(l, b)
			}
		}
	}
}

// noteViol records a violation found while expanding one of this node's
// bucket states, keeping the (level, state) minimum.
func (w *meshWorker) noteViol(level int, s verify.PackedState, app int) {
	if !w.haveViol || level < w.violLevel || (level == w.violLevel && verify.LessState(s, w.violState)) {
		w.haveViol, w.violLevel, w.violState, w.violApp = true, level, s, app
	}
	w.noteBound(level, s)
}

// noteBound tightens the skip bound (own findings merged with the
// coordinator's broadcast) and drops work that can no longer matter.
func (w *meshWorker) noteBound(level int, s verify.PackedState) {
	if w.haveBound && (w.boundLevel < level || (w.boundLevel == level && verify.LessState(w.boundState, s))) {
		return
	}
	w.haveBound, w.boundLevel, w.boundState = true, level, s
	for l := level + 1; l < len(w.buckets); l++ {
		if len(w.buckets[l]) > 0 {
			w.cursors[l] = len(w.buckets[l])
		}
		for _, b := range w.pending[l] {
			putBatch(b)
		}
		w.pending[l] = nil
	}
}

// drainInbox absorbs everything queued on the node's mesh links.
func (w *meshWorker) drainInbox() {
	batches := w.inbox.drain(w.spareQ)
	for i := range batches {
		b := &batches[i]
		if b.err != nil {
			if w.err == nil {
				w.err = b.err
			}
			continue
		}
		w.ensureLevel(b.level)
		w.recvByLevel[b.level] += len(b.states)
		w.absorb(b.level, b.states)
		b.states = nil
	}
	w.spareQ = batches[:0]
}

// expandable returns the lowest level with unexpanded committed work,
// skipping (and marking drained) levels beyond the violation bound.
func (w *meshWorker) expandable() int {
	for l := range w.buckets {
		if w.cursors[l] < len(w.buckets[l]) {
			if w.haveBound && l > w.boundLevel {
				w.cursors[l] = len(w.buckets[l])
				continue
			}
			return l
		}
	}
	return -1
}

// expandChunk expands up to n states from the lowest available bucket,
// routing foreign successors over the mesh and committing self-owned ones
// locally. Returns false when no work was available.
func (w *meshWorker) expandChunk(n int) bool {
	l := w.expandable()
	if l < 0 {
		return false
	}
	if w.outLevel != l+1 {
		w.flushOut()
		w.outLevel = l + 1
		// Pre-size the visited partition for the coming level from the
		// fresh-state trajectory (the local drivers' levelReserve
		// heuristic), so commits inside a level rarely rehash.
		est := w.freshAt[l]
		if l > 0 && w.freshAt[l-1] > 0 {
			est = w.freshAt[l] * w.freshAt[l] / w.freshAt[l-1]
			if max := 8 * w.freshAt[l]; est > max {
				est = max
			}
		}
		w.visited.Reserve(est)
	}
	for i := 0; i < n && w.cursors[l] < len(w.buckets[l]); i++ {
		if w.tooLarge {
			return true
		}
		s := w.buckets[l][w.cursors[l]]
		w.cursors[l]++
		if w.haveBound && l == w.boundLevel && verify.LessState(w.boundState, s) {
			continue
		}
		succ, violApp := w.exp.SuccessorsInto(s, w.esc, w.succ[:0])
		w.succ = succ[:0]
		if violApp >= 0 {
			w.noteViol(l, s, violApp)
			continue
		}
		w.transitions += len(succ)
		if w.haveBound && l+1 > w.boundLevel {
			continue // successors beyond the verdict level
		}
		for _, ns := range succ {
			h := w.exp.Hash(ns)
			if dst := owner(h, w.n); dst != w.id {
				if w.filters[dst].slots != nil && w.filters[dst].seen(ns, h) {
					w.filtered++
				} else {
					w.outBuf[dst] = append(w.outBuf[dst], ns)
					if len(w.outBuf[dst]) >= meshBatchTarget {
						w.flushDest(dst)
					}
				}
			} else {
				w.commit1(l+1, ns, h)
			}
		}
	}
	if w.cursors[l] == len(w.buckets[l]) && len(w.buckets[l]) > 0 && l <= w.final {
		// The bucket is drained and — level final — can never refill:
		// recycle it so resident memory tracks the frontier, not the
		// whole visited set.
		putBatch(w.buckets[l])
		w.buckets[l] = w.buckets[l][:0:0]
		w.cursors[l] = 0
	}
	return true
}

// flushDest ships one destination's buffered successors as a level-tagged
// batch, updating the epoch and wire accounting.
func (w *meshWorker) flushDest(d int) {
	states := w.outBuf[d]
	if len(states) == 0 {
		return
	}
	w.outBuf[d] = getBatch()
	n, level := len(states), w.outLevel
	w.ensureLevel(level)
	w.sentByLevel[level] += n
	w.routed += n
	w.linkStates[d] += n
	bytes, err := w.links[d].send(level, states)
	w.wireBytes += bytes
	w.linkBytes[d] += bytes
	if err != nil && w.err == nil {
		w.err = fmt.Errorf("mesh link to node %d: %v", d, err)
	}
}

// flushOut ships every buffered destination batch.
func (w *meshWorker) flushOut() {
	if w.outLevel < 0 {
		return
	}
	for d := range w.outBuf {
		if d != w.id {
			w.flushDest(d)
		}
	}
}

// drained computes the highest level L with every bucket ≤ L expanded,
// capped at final+1 (deeper buckets may still be refilled by peers).
func (w *meshWorker) drained() int {
	d := -1
	for l := 0; l <= w.final+1; l++ {
		if l < len(w.buckets) && w.cursors[l] < len(w.buckets[l]) {
			if !(w.haveBound && l > w.boundLevel) {
				break
			}
		}
		d = l
	}
	return d
}

// idle reports quiescence under the node's current milestone knowledge.
func (w *meshWorker) idle() bool {
	if w.expandable() >= 0 {
		return false
	}
	for d, b := range w.outBuf {
		if d != w.id && len(b) > 0 {
			return false
		}
	}
	for l, lst := range w.pending {
		if len(lst) > 0 && !(w.haveBound && l > w.boundLevel) {
			return false
		}
	}
	w.inbox.mu.Lock()
	empty := len(w.inbox.q) == 0
	w.inbox.mu.Unlock()
	return empty
}

// digest captures the snapshot fields the long-poll news check compares.
func (w *meshWorker) digest() meshDigest {
	pendingN := 0
	for _, lst := range w.pending {
		for _, b := range lst {
			pendingN += len(b)
		}
	}
	sent, recv := 0, 0
	for l := range w.sentByLevel {
		sent += w.sentByLevel[l]
		recv += w.recvByLevel[l]
	}
	return meshDigest{
		fresh: w.fresh, transitions: w.transitions, routed: w.routed, filtered: w.filtered,
		sent: sent, recv: recv, pendingN: pendingN,
		drained: w.drained(), maxFresh: w.maxFresh,
		idle: w.idle(), tooLarge: w.tooLarge, haveErr: w.err != nil, haveViol: w.haveViol,
		violLevel: w.violLevel, violState: w.violState,
	}
}

// snapshot builds a poll response from the cumulative counters.
func (w *meshWorker) snapshot() *Response {
	resp := &Response{
		Proto:       protoVersion,
		SentByLevel: append([]int(nil), w.sentByLevel...),
		RecvByLevel: append([]int(nil), w.recvByLevel...),
		Drained:     w.drained(),
		Idle:        w.idle(),
		MaxFresh:    w.maxFresh,
		Fresh:       w.fresh,
		Transitions: w.transitions,
		Routed:      w.routed,
		Filtered:    w.filtered,
		RawBytes:    8 * w.words * (w.routed + w.filtered),
		WireBytes:   w.wireBytes,
		TooLarge:    w.tooLarge,
		ViolApp:     -1,
	}
	if w.err != nil {
		resp.Err = w.err.Error()
	}
	if w.haveViol {
		resp.Viol = true
		resp.ViolLevel, resp.ViolState, resp.ViolApp = w.violLevel, w.violState, w.violApp
	}
	for d := range w.linkStates {
		if d != w.id && (w.linkStates[d] > 0 || w.linkBytes[d] > 0) {
			resp.Links = append(resp.Links, verify.LinkWire{
				From: w.id, To: d, States: w.linkStates[d], Bytes: w.linkBytes[d],
			})
		}
	}
	w.lastSnap, w.haveSnap = w.digest(), true
	return resp
}

// poll is one control-plane epoch on the worker side: absorb the
// coordinator's milestone knowledge, then expand and exchange until there
// is news (or the poll budget runs out), and answer with a snapshot.
func (w *meshWorker) poll(ctl *Control) *Response {
	if ctl != nil {
		if ctl.Finish {
			w.shutdown()
			return w.snapshot()
		}
		w.setFinal(ctl.Final)
		if ctl.HaveViol {
			w.noteBound(ctl.ViolLevel, ctl.ViolState)
		}
	}
	if w.finished {
		return w.snapshot()
	}
	deadline := time.Now().Add(meshPollBudget)
	for {
		w.drainInbox()
		if w.err != nil || w.tooLarge {
			break
		}
		if w.haveViol && (!w.haveSnap || !w.lastSnap.haveViol ||
			w.violLevel != w.lastSnap.violLevel || w.violState != w.lastSnap.violState) {
			break // a new minimum violation is always news
		}
		if !w.expandChunk(meshChunk) {
			w.flushOut()
			if !w.haveSnap || w.digest() != w.lastSnap {
				break
			}
			if !w.waitData(deadline) {
				break
			}
			continue
		}
		if time.Now().After(deadline) {
			w.flushOut()
			break
		}
	}
	return w.snapshot()
}

// waitData blocks until a mesh batch arrives or the poll deadline passes,
// reporting whether it is worth looping again.
func (w *meshWorker) waitData(deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	if d > meshIdleWait {
		d = meshIdleWait
	}
	if w.waitT == nil {
		w.waitT = time.NewTimer(d)
	} else {
		w.waitT.Reset(d)
	}
	select {
	case <-w.inbox.notify:
		if !w.waitT.Stop() {
			select {
			case <-w.waitT.C:
			default:
			}
		}
		return true
	case <-w.waitT.C:
		return false
	}
}

// shutdown tears the node's data plane down (idempotent): links closed,
// registry entry released.
func (w *meshWorker) shutdown() {
	if w.finished {
		return
	}
	w.finished = true
	for _, l := range w.links {
		if l != nil {
			l.close()
		}
	}
	if w.cleanup != nil {
		w.cleanup()
	}
}

// meshTracker is the coordinator's milestone state over one mesh run. It
// is pure bookkeeping (no I/O), so the epoch/termination invariants are
// unit-testable against adversarial snapshot interleavings.
type meshTracker struct {
	n           int
	final       int // highest level with final membership everywhere
	done        int // highest level fully expanded everywhere
	sent, recv  []int
	drained     []int
	idle        []bool
	maxLevel    int
	maxFresh    int
	fresh       int
	transitions int
	tooLarge    bool
	haveViol    bool
	violLevel   int
	violState   verify.PackedState
	violApp     int
	wire        verify.WireStats
}

func newMeshTracker(n int) *meshTracker {
	return &meshTracker{n: n, final: 0, done: -1, drained: make([]int, n), idle: make([]bool, n), violApp: -1}
}

// observe folds one full poll round into the tracker. Counters are
// cumulative, so the round replaces (never accumulates) totals.
func (t *meshTracker) observe(resps []*Response) {
	t.sent = t.sent[:0]
	t.recv = t.recv[:0]
	t.fresh, t.transitions, t.maxFresh = 0, 0, 0
	t.wire = verify.WireStats{}
	for i, r := range resps {
		t.drained[i] = r.Drained
		t.idle[i] = r.Idle
		t.fresh += r.Fresh
		t.transitions += r.Transitions
		if r.MaxFresh > t.maxFresh {
			t.maxFresh = r.MaxFresh
		}
		t.tooLarge = t.tooLarge || r.TooLarge
		for l, v := range r.SentByLevel {
			for len(t.sent) <= l {
				t.sent = append(t.sent, 0)
			}
			t.sent[l] += v
		}
		for l, v := range r.RecvByLevel {
			for len(t.recv) <= l {
				t.recv = append(t.recv, 0)
			}
			t.recv[l] += v
		}
		if r.Viol && (!t.haveViol || r.ViolLevel < t.violLevel ||
			(r.ViolLevel == t.violLevel && verify.LessState(r.ViolState, t.violState))) {
			t.haveViol, t.violLevel, t.violState, t.violApp = true, r.ViolLevel, r.ViolState, r.ViolApp
		}
		t.wire.Add(verify.WireStats{
			RoutedStates:   r.Routed,
			FilteredStates: r.Filtered,
			RawBytes:       r.RawBytes,
			WireBytes:      r.WireBytes,
			Links:          r.Links,
		})
	}
	t.maxLevel = t.maxFresh
	if len(t.sent)-1 > t.maxLevel {
		t.maxLevel = len(t.sent) - 1
	}
	if len(t.recv)-1 > t.maxLevel {
		t.maxLevel = len(t.recv) - 1
	}
}

func (t *meshTracker) sumAt(counts []int, l int) int {
	if l < len(counts) {
		return counts[l]
	}
	return 0
}

// advance raises the done/final milestones as far as the last observed
// round justifies. done(L) needs final(L) and every worker drained ≤ L;
// final(L+1) needs done(L) — sends tagged L+1 are then finished — plus
// matching cluster-wide sent/recv sums at L+1.
func (t *meshTracker) advance() {
	for {
		d := t.final
		for _, w := range t.drained {
			if w < d {
				d = w
			}
		}
		if d > t.done {
			t.done = d
			continue
		}
		if t.done == t.final && t.final < t.maxLevel+1 &&
			t.sumAt(t.sent, t.final+1) == t.sumAt(t.recv, t.final+1) {
			t.final++
			continue
		}
		return
	}
}

// terminated reports whether the verdict is final: a violation whose
// level is fully expanded, or cluster-wide quiescence with every level's
// sent/recv sums matching (no state in flight, nothing left to expand).
func (t *meshTracker) terminated() bool {
	if t.haveViol && t.done >= t.violLevel {
		return true
	}
	for _, ok := range t.idle {
		if !ok {
			return false
		}
	}
	for l := 0; l <= t.maxLevel; l++ {
		if t.sumAt(t.sent, l) != t.sumAt(t.recv, l) {
			return false
		}
	}
	return true
}

// control renders the tracker's knowledge for the next poll round.
func (t *meshTracker) control() *Control {
	c := &Control{Final: t.final, Done: t.done}
	if t.haveViol {
		c.HaveViol, c.ViolLevel, c.ViolState = true, t.violLevel, t.violState
	}
	return c
}

// newSessionID draws a random mesh-rendezvous token; daemons serving
// several coordinators key their link registries by it.
func newSessionID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 1
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id
}

// verifyMesh drives the mesh topology: Init wires the worker↔worker
// links, then the coordinator runs the poll/epoch control plane until the
// tracker proves termination, and a Finish round collects final counters.
func verifyMesh(job Job, nodes []Transport, peers []string) (verify.Result, error) {
	res := verify.Result{Schedulable: true, Bounded: job.MaxDisturbances > 0}
	job.Mesh = true
	job.Session = newSessionID()
	job.Peers = peers
	initResps, err := fanout(nodes, func(i int) *Request {
		j := job
		j.NodeID = i
		return &Request{Kind: KindInit, Job: &j}
	})
	if err != nil {
		return res, err
	}
	for i, r := range initResps {
		if r.Proto != protoVersion {
			return res, fmt.Errorf("dverify: node %d speaks protocol %d, coordinator %d (restart verifyd with the current build)",
				i, r.Proto, protoVersion)
		}
	}

	tr := newMeshTracker(len(nodes))
	finish := func() ([]*Response, error) {
		ctl := tr.control()
		ctl.Finish = true
		return fanout(nodes, func(int) *Request { return &Request{Kind: KindPoll, Ctl: ctl} })
	}
	for {
		ctl := tr.control()
		resps, err := fanout(nodes, func(int) *Request { return &Request{Kind: KindPoll, Ctl: ctl} })
		if err != nil {
			// The run is poisoned; surviving workers tear down when their
			// session ends (transport Close / next Init).
			return res, err
		}
		tr.observe(resps)
		tr.advance()
		if tr.tooLarge && !tr.haveViol {
			// Report the partial exploration like the relay path does —
			// budget-busted admission checks still count their states and
			// wire volume.
			if final, ferr := finish(); ferr == nil {
				tr.observe(final)
			}
			res.States, res.Transitions = tr.fresh, tr.transitions
			res.Depth, res.Wire = tr.maxFresh, tr.wire
			return res, verify.ErrTooLarge
		}
		if tr.terminated() || (tr.tooLarge && tr.haveViol) {
			// As in the relay path, a recorded violation is preferred over
			// ErrTooLarge when the budget trips: the verdict is sound, but
			// on the budget edge the violator may not be the level minimum
			// a larger budget would report.
			final, err := finish()
			if err != nil {
				return res, err
			}
			tr.observe(final)
			res.States = tr.fresh
			res.Transitions = tr.transitions
			res.Wire = tr.wire
			if tr.haveViol {
				res.Schedulable = false
				res.Violator = tr.violApp
				res.Depth = tr.violLevel
			} else {
				res.Depth = tr.maxFresh
			}
			return res, nil
		}
	}
}
