package dverify

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tightcps/internal/obs"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// Mesh topology: the data plane of the distributed search without the
// coordinator in it. Workers hold one direct link per peer (channels for
// loopback clusters, dial-out TCP for verifyd fleets) and route successor
// batches straight to their shard owners; the coordinator is a thin
// control plane that polls counter snapshots, publishes level milestones
// and detects termination by epoch accounting (cluster-wide states sent
// vs absorbed per level).
//
// Levels are pipelined, not barriered: a worker expands level L+1 states
// as they arrive while peers are still draining level L. Exactness — the
// same verdict, exhaustive counts, depth and minimal violator as the
// local searches — is preserved by one commit rule: a state tagged with
// level t may enter the visited set only once every level ≤ t−1 is
// *final* (all states committed and all tagged-≤(t−1) messages absorbed).
// Under that rule a freshly committed state's tag always equals its true
// BFS level (a shorter path would mean the state was already committed
// when its earlier level was finalized), so per-level counts, Depth and
// the first-violating-level minimum-violator tie-break are bit-identical
// to the level-synchronous searches. Arrivals ahead of the rule are
// deferred, bounding the pipeline to one level of lookahead — the price
// of exactness, and exactly the overlap a barrier forbids.
//
// The coordinator advances two milestones from each epoch's snapshots:
//
//	final(L): done(L−1) ∧ Σ sent[L] == Σ recv[L]   (membership final)
//	done(L):  final(L) ∧ every worker drained ≤ L  (fully expanded)
//
// Both are evaluated over cumulative, monotone counters from one poll
// round, so a lagging message can only delay a milestone, never fake
// one. Termination: a violation is final once done reaches its level; a
// schedulable run ends when every worker is idle and the sent/recv sums
// match at every level (Mattern-style quiescence — any in-flight state
// leaves the sums unequal).

// meshChunk is how many states a worker expands between inbox drains and
// control checks (per lane when the pool is parallel); meshPollBudget
// caps how long a busy worker holds a poll before answering with an
// interim snapshot; meshIdleWait caps how long an idle worker waits for
// data before answering an unchanged snapshot; meshBatchTarget is the
// flush threshold of per-destination send buffers. meshParallelThreshold
// is the smallest bucket remainder (or inbox batch) worth fanning across
// the lane pool — below it the spawn barrier costs more than the lanes
// save, mirroring the local drivers' serialLevelThreshold; meshLaneChunk
// is the lanes' work-stealing claim size; meshFreeBatches caps the
// worker-local batch free list.
const (
	meshChunk             = 1024
	meshPollBudget        = 25 * time.Millisecond
	meshIdleWait          = 20 * time.Millisecond
	meshBatchTarget       = 4096
	meshParallelThreshold = 256
	meshLaneChunk         = 64
	meshFreeBatches       = 512
	// meshTuneWindow is how many parallel-expanded states the autotuner
	// accumulates before one throughput observation — chunks are too small
	// (a millisecond or less) to be a signal on their own.
	meshTuneWindow = 8192
)

// Crew task modes (meshWorker.ptask.mode / the crew body's dispatch).
const (
	laneTaskExpand = iota
	laneTaskAbsorb
)

// meshPTask carries one parallel fan-out's parameters and shared atomics.
// It lives on the worker so repeated fan-outs reuse the same memory — the
// per-call atomics of the old spawn-per-chunk path escaped to the heap and
// were the dominant share of the multi-lane allocation leak. The
// orchestrator writes the fields before waking the crew (the wake send
// publishes them); lanes treat everything but the atomics as read-only.
type meshPTask struct {
	mode       int
	states     []verify.PackedState
	commitOK   bool
	dropSucc   bool
	boundCopy  verify.PackedState // stable backing for the seeded skip bound
	minViol    atomic.Pointer[verify.PackedState]
	freshTotal atomic.Int64
	tooLarge   atomic.Bool
}

// meshBatch is one level-tagged batch of decoded states crossing a mesh
// link, or a link failure surfaced into the owner's inbox. era tags the
// sender's recovery era (always 0 outside fault-tolerant runs): a
// receiver in a newer era drops the batch — the rollback already erased
// its accounting on both ends — and one in an older era parks it until
// its own recovery order arrives.
type meshBatch struct {
	from   int
	level  int
	era    int
	states []verify.PackedState
	err    error
}

// meshInbox is a worker's unbounded, mutex-guarded receive queue. Senders
// never block (so two workers flooding each other cannot deadlock) and
// nudge the notify channel so an idle owner wakes.
type meshInbox struct {
	mu     sync.Mutex
	q      []meshBatch
	notify chan struct{}
}

func newMeshInbox() *meshInbox {
	// The queue and the worker's drain spare ping-pong, so pre-sizing both
	// spares the early-level growth reallocations on every run.
	return &meshInbox{q: make([]meshBatch, 0, 32), notify: make(chan struct{}, 1)}
}

func (ib *meshInbox) push(b meshBatch) {
	ib.mu.Lock()
	ib.q = append(ib.q, b)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// drain swaps the queue out against spare, returning the pending batches.
func (ib *meshInbox) drain(spare []meshBatch) []meshBatch {
	ib.mu.Lock()
	out := ib.q
	ib.q = spare[:0]
	ib.mu.Unlock()
	return out
}

// batchPool recycles state slices between senders, receivers and level
// buckets, keeping the steady-state mesh allocation-light.
var batchPool sync.Pool

func getBatch() []verify.PackedState {
	if b, _ := batchPool.Get().([]verify.PackedState); b != nil {
		return b[:0]
	}
	return make([]verify.PackedState, 0, meshBatchTarget)
}

func putBatch(b []verify.PackedState) {
	if cap(b) > 0 {
		batchPool.Put(b[:0])
	}
}

// meshLink is one directed data link to a peer. send takes ownership of
// states and returns the bytes shipped (raw width on loopback, encoded
// batch size on TCP). wantFilter reports whether the sender-side
// recent-state filter pays on this link: probing costs more than the
// receiver-side dedup it saves when no real wire is crossed, so loopback
// links decline it and TCP links (where every state costs bytes) take it.
type meshLink interface {
	send(era, level int, states []verify.PackedState) (int, error)
	wantFilter() bool
	close() error
}

// meshEnv wires a worker into its cluster's data plane: the loopback
// group registry or the TCP host (register own inbox, dial peers).
type meshEnv interface {
	connect(job *Job, inbox *meshInbox, exp *verify.Expander) (links []meshLink, cleanup func(), err error)
}

// meshWorker is one node of the mesh search. Its control flow is
// single-goroutine — the transport's serve loop calls Init/Poll, and all
// routing, milestone and accounting state is touched only from those
// calls (peer readers touch nothing but the inbox) — but inside a poll
// the orchestrator fans expansion and absorption across a pool of lanes
// (workers > 1): the lanes share only the striped visited set and a few
// chunk-scoped atomics, everything else they touch is lane-private, and
// the orchestrator merges their output back single-threaded.
type meshWorker struct {
	id, n   int
	job     *Job // what the worker was built for (reuse compatibility)
	exp     *verify.Expander
	words   int
	budget  int
	visited *verify.StateSet
	esc     *verify.ExpandScratch
	hsucc   []verify.HashedState
	lanes   []*meshLane // nil when workers == 1 (serial expansion)

	// Parallel fan-out machinery: the persistent lane crew, the reusable
	// task, and — for auto-width jobs (Job.Workers == 0) — the contention-
	// aware tuner deciding how many of the pooled lanes wake per fan-out,
	// fed by windows of parallel-expansion throughput. contFlushed and
	// stealsFlushed mark how much of the visited set's cumulative
	// contention ledger has already been folded into the engine telemetry
	// (the set and crew survive re-Inits, so shutdown flushes deltas).
	crew          laneCrew
	ptask         meshPTask
	tuner         *verify.LaneTuner
	tunStates     int
	tunElapsed    time.Duration
	tunRetries    int64
	contFlushed   verify.SetStats
	stealsFlushed int64

	inbox   *meshInbox
	spareQ  []meshBatch
	links   []meshLink
	filters []sendFilter
	cleanup func()

	// Worker-local batch recycling (orchestrator goroutine only): free is
	// the slice free list fed by absorbed inbox batches and drained
	// buckets, spareBuckets the big frontier buckets retired — the next
	// big levels are built in them, the way the local drivers swap
	// frontier and spare instead of allocating per level. It is a small
	// stack, not a single slot: the commit rule keeps a window of levels
	// live at once, and they retire in bursts.
	free         [][]verify.PackedState
	spareBuckets [][]verify.PackedState
	sparePending [][]verify.PackedState // retired deferral-list backbone

	// Level-indexed search state. buckets[l][:cursors[l]] is expanded;
	// pending holds batches deferred by the commit rule (tag > final+1) —
	// whole slices, ownership transferred, so deferral never copies.
	buckets  [][]verify.PackedState
	cursors  []int
	pending  [][][]verify.PackedState
	freshAt  []int // fresh commits per level (set pre-sizing)
	final    int   // highest level known final (coordinator-published)
	outBuf   [][]verify.PackedState
	outLevel int // tag of the buffered sends (expand level + 1)

	// Cumulative accounting, snapshotted into every poll response.
	sentByLevel []int
	recvByLevel []int
	fresh       int
	transitions int
	maxFresh    int
	routed      int
	filtered    int
	wireBytes   int
	linkStates  []int
	linkBytes   []int
	tooLarge    bool
	err         error

	// Own minimum violation (reported) and the skip bound (own merged
	// with the coordinator's broadcast; never reported back).
	haveViol   bool
	violLevel  int
	violState  verify.PackedState
	violApp    int
	haveBound  bool
	boundLevel int
	boundState verify.PackedState

	// Fault tolerance (ft.go). owners is the routing table (default
	// contiguous, rewritten by Recover); era is the worker's recovery
	// epoch; ckptLevel the highest level fully persisted as checkpoint
	// segments (-1 = none); ftTrans attributes transitions per
	// (level, shard) so segments carry exact counts; deadPeers suppresses
	// sends to nodes known dead; linkDown is the cumulative dead-peer
	// report for the coordinator; futureQ parks batches from peers already
	// in a newer era until this worker's own recovery order arrives.
	ft        bool
	ckptOn    bool
	ckptDir   string // per-session segment directory
	owners    [numShards]uint8
	era       int
	ckptLevel int
	ftTrans   [][numShards]int64
	deadPeers []bool
	linkDown  []int
	futureQ   []meshBatch

	finished bool
	waitT    *time.Timer
	lastSnap meshDigest
	haveSnap bool

	// Snapshot responses are double-buffered: the coordinator reads round
	// k's response while the worker builds round k+1 into the other
	// buffer, so the per-poll counter copies reuse their backing arrays
	// instead of allocating on every epoch.
	snapResp [2]Response
	snapFlip int
	// initResp backs reinit's Init reply the same way: by the time a
	// follow-up job re-Inits the worker, the previous reply is long
	// consumed.
	initResp Response
}

// meshLane is one expansion goroutine's private state: its own scratch
// arena (SuccessorsHashedInto overwrites it per call, so lanes never
// share one), per-destination staging buffers for peer-owned successors,
// and the chunk's fresh commits and deferred states. Lanes never touch
// the filters, send buffers, level buckets or epoch counters — the
// orchestrator owns those and folds the lanes' staging in after the
// chunk barrier.
type meshLane struct {
	esc  *verify.ExpandScratch
	succ []verify.HashedState   // per-state expansion scratch
	out  [][]verify.HashedState // peer-owned successors, staged per destination
	next []verify.PackedState   // fresh self-owned commits of this chunk
	defr []verify.PackedState   // self-owned successors awaiting the commit rule

	trans     int
	ftt       [numShards]int64 // per-shard transitions of this chunk (checkpointing only)
	haveViol  bool
	violState verify.PackedState
	violApp   int
}

// reset clears a lane's per-run state for reuse by a follow-up job,
// keeping its scratch arena and the staging buffers' capacity. The
// orchestrator recycles defr itself before calling this (lanes have no
// access to the free list).
func (ln *meshLane) reset() {
	ln.next = ln.next[:0]
	ln.defr = nil
	for d := range ln.out {
		ln.out[d] = ln.out[d][:0]
	}
	ln.trans = 0
	ln.haveViol, ln.violState, ln.violApp = false, verify.PackedState{}, -1
}

// meshDigest summarizes a snapshot for the long-poll "news" check: a
// worker answers an outstanding poll as soon as its digest moves.
type meshDigest struct {
	fresh, transitions, routed, filtered int
	sent, recv, pendingN                 int
	drained, maxFresh                    int
	idle, tooLarge, haveErr, haveViol    bool
	violLevel                            int
	violState                            verify.PackedState
}

// newMeshWorker builds a node for a mesh job and wires its data links
// through env, seeding the initial state on its owner. A previous worker
// whose job is compatible is reinitialized in place instead, reusing its
// expander, visited partition, lane pool and batch memory.
func newMeshWorker(job *Job, env meshEnv, prev *meshWorker) (*meshWorker, *Response, error) {
	if job.Proto != protoVersion {
		return nil, nil, fmt.Errorf("dverify: coordinator speaks protocol %d, this worker speaks %d (rebuild the older side)",
			job.Proto, protoVersion)
	}
	if job.NumNodes < 1 || job.NodeID < 0 || job.NodeID >= job.NumNodes {
		return nil, nil, fmt.Errorf("dverify: node %d of %d is not a valid placement", job.NodeID, job.NumNodes)
	}
	if prev != nil && jobsCompatible(prev.job, job) {
		return prev.reinit(job, env)
	}
	profs := make([]*switching.Profile, len(job.Profiles))
	for i := range job.Profiles {
		profs[i] = &job.Profiles[i]
	}
	exp, err := verify.NewExpander(profs, verify.Config{
		MaxDisturbances:   job.MaxDisturbances,
		Policy:            job.Policy,
		NondetTies:        job.NondetTies,
		SymmetryReduction: job.SymmetryReduction,
	})
	if err != nil {
		return nil, nil, err
	}
	budget := job.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	workers := effectiveWorkers(job.Workers)
	w := &meshWorker{
		id:         job.NodeID,
		n:          job.NumNodes,
		job:        job,
		exp:        exp,
		words:      exp.StateWords(),
		budget:     budget,
		esc:        exp.NewScratch(),
		inbox:      newMeshInbox(),
		spareQ:     make([]meshBatch, 0, 32),
		filters:    make([]sendFilter, job.NumNodes),
		outBuf:     make([][]verify.PackedState, job.NumNodes),
		linkStates: make([]int, job.NumNodes),
		linkBytes:  make([]int, job.NumNodes),
		outLevel:   -1,
		violApp:    -1,
		ckptLevel:  -1,
	}
	w.applyFT(job)
	if workers > 1 {
		// The lane pool shares the visited partition, so it must be the
		// striped set; the serial worker keeps the cheaper unsharded one.
		w.visited = exp.NewShardedSet(1 << 16)
		w.lanes = make([]*meshLane, workers)
		for i := range w.lanes {
			w.lanes[i] = &meshLane{
				esc:     exp.NewScratch(),
				out:     make([][]verify.HashedState, job.NumNodes),
				violApp: -1,
			}
		}
		w.crew.body = w.lanePass
		if job.Workers <= 0 {
			w.tuner = verify.NewLaneTuner(workers)
		}
	} else {
		w.visited = exp.NewSet(1 << 16)
	}
	for d := range w.outBuf {
		if d != w.id {
			w.outBuf[d] = getBatch()
		}
	}
	links, cleanup, err := env.connect(job, w.inbox, exp)
	if err != nil {
		return nil, nil, err
	}
	w.links, w.cleanup = links, cleanup
	for d, l := range links {
		if d != w.id && l != nil && l.wantFilter() {
			w.filters[d] = newSendFilter()
		}
	}
	resp := &Response{Proto: protoVersion, ViolApp: -1}
	if err := w.seedOrRestore(job, resp); err != nil {
		w.shutdown()
		return nil, nil, err
	}
	return w, resp, nil
}

// applyFT fixes the job's fault-tolerance knobs into the worker: the
// routing table, the era and the checkpoint location. Called from both
// build paths before any state is seeded.
func (w *meshWorker) applyFT(job *Job) {
	w.ft = job.FT
	w.owners = ownerTable(job.Owners, job.NumNodes)
	w.era = job.Era
	w.ckptOn = job.FT && job.CheckpointDir != ""
	if w.ckptOn {
		w.ckptDir = ckptSessionDir(job.CheckpointDir, job.Session)
	} else {
		w.ckptDir = ""
	}
	if job.FT && w.deadPeers == nil {
		w.deadPeers = make([]bool, job.NumNodes)
	}
}

// seedOrRestore starts the worker's search state: a fresh run (Era 0)
// seeds the initial state on its owner; a replacement worker joining a
// recovered run (Era > 0) restores its owned shards from checkpoint
// segments instead.
func (w *meshWorker) seedOrRestore(job *Job, resp *Response) error {
	if job.FT && job.Era > 0 {
		if err := w.restore(job.Cut); err != nil {
			return err
		}
		resp.Fresh, resp.Next = w.fresh, 0
		return nil
	}
	if init := w.exp.Initial(); int(w.owners[w.exp.Hash(init)>>58]) == w.id {
		w.ensureLevel(0)
		w.visited.Add(init)
		w.buckets[0] = append(w.buckets[0], init)
		w.freshAt[0] = 1
		w.fresh, resp.Fresh, resp.Next = 1, 1, 1
	}
	return nil
}

// reinit rebuilds the worker in place for a compatible follow-up job: the
// expander and scratch arenas, the visited partition (cleared, not
// reallocated — the dominant per-run allocation), the lane pool, the batch
// free list and the level backbones all survive. A standing cluster
// re-verifying a slot — a daemon serving successive coordinators, or the
// bench loop — re-Inits without restarting the steady state from zero.
// The previous run's links are already down (Init goes through
// handler.reset, and shutdown is idempotent); its session registration is
// gone, so nothing can reach the inbox while it is swept. Leftover
// frontier, deferral and send memory — a violating or over-budget run
// stops with all three parked — feeds the free list, then the data plane
// reconnects under the new session.
func (w *meshWorker) reinit(job *Job, env meshEnv) (*meshWorker, *Response, error) {
	w.shutdown()
	w.job = job
	w.budget = job.MaxStates
	if w.budget <= 0 {
		w.budget = defaultMaxStates
	}

	for l := range w.buckets {
		if cap(w.buckets[l]) > 0 {
			w.recycleBucket(l)
		}
		w.cursors[l] = 0
		for _, b := range w.pending[l] {
			w.putBatch(b)
		}
		w.pending[l] = nil
		w.freshAt[l], w.sentByLevel[l], w.recvByLevel[l] = 0, 0, 0
	}
	w.buckets, w.cursors, w.pending = w.buckets[:0], w.cursors[:0], w.pending[:0]
	w.freshAt, w.sentByLevel, w.recvByLevel = w.freshAt[:0], w.sentByLevel[:0], w.recvByLevel[:0]
	for d := range w.outBuf {
		if w.outBuf[d] != nil {
			w.outBuf[d] = w.outBuf[d][:0]
		} else if d != w.id {
			w.outBuf[d] = w.getBatch()
		}
	}
	w.outLevel = -1
	w.inbox.mu.Lock()
	q := w.inbox.q
	w.inbox.q = w.inbox.q[:0]
	w.inbox.mu.Unlock()
	for _, b := range q {
		if b.err == nil {
			w.putBatch(b.states)
		}
	}
	select {
	case <-w.inbox.notify:
	default:
	}
	for _, ln := range w.lanes {
		if ln.defr != nil {
			w.putBatch(ln.defr)
		}
		ln.reset()
	}
	if w.lanes != nil && job.Workers <= 0 {
		w.tuner = verify.NewLaneTuner(len(w.lanes))
	} else {
		w.tuner = nil
	}
	w.tunStates, w.tunElapsed = 0, 0
	w.tunRetries = w.visited.Stats().Retries
	w.visited.Reset()
	w.fresh, w.transitions, w.maxFresh = 0, 0, 0
	w.routed, w.filtered, w.wireBytes = 0, 0, 0
	clear(w.linkStates)
	clear(w.linkBytes)
	w.tooLarge, w.err = false, nil
	w.haveViol, w.violLevel, w.violState, w.violApp = false, 0, verify.PackedState{}, -1
	w.haveBound, w.boundLevel, w.boundState = false, 0, verify.PackedState{}
	w.final = 0
	w.finished = false
	w.lastSnap, w.haveSnap = meshDigest{}, false
	w.ftTrans = w.ftTrans[:0]
	w.ckptLevel = -1
	if w.deadPeers != nil {
		clear(w.deadPeers)
	}
	w.linkDown = w.linkDown[:0]
	for _, b := range w.futureQ {
		if b.err == nil {
			w.putBatch(b.states)
		}
	}
	w.futureQ = w.futureQ[:0]
	w.applyFT(job)

	links, cleanup, err := env.connect(job, w.inbox, w.exp)
	if err != nil {
		return nil, nil, err
	}
	w.links, w.cleanup = links, cleanup
	for d, l := range links {
		switch want := d != w.id && l != nil && l.wantFilter(); {
		case want && w.filters[d].slots == nil:
			w.filters[d] = newSendFilter()
		case want:
			clear(w.filters[d].slots)
		default:
			w.filters[d] = sendFilter{}
		}
	}
	resp := &w.initResp
	*resp = Response{Proto: protoVersion, ViolApp: -1}
	if err := w.seedOrRestore(job, resp); err != nil {
		w.shutdown()
		return nil, nil, err
	}
	return w, resp, nil
}

// getBatch draws a batch slice from the worker's free list, falling back
// to the shared pool. Orchestrator goroutine only — the list is what
// keeps a node's steady-state batch traffic allocation-free without
// sync.Pool round-trips (whose misses grew per-op allocations with the
// node count; inbox batches absorbed here refill the list the sends
// drain).
func (w *meshWorker) getBatch() []verify.PackedState {
	if n := len(w.free); n > 0 {
		b := w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		return b
	}
	return getBatch()
}

// putBatch recycles a batch slice into the worker's free list (overflow
// spills to the shared pool). Orchestrator goroutine only.
func (w *meshWorker) putBatch(b []verify.PackedState) {
	if cap(b) == 0 {
		return
	}
	if len(w.free) < meshFreeBatches {
		w.free = append(w.free, b[:0])
		return
	}
	putBatch(b)
}

// ensureLevel grows the level-indexed slices to hold level l. The
// initial capacity covers typical search depths in one allocation per
// slice; deeper runs fall back to append's doubling.
func (w *meshWorker) ensureLevel(l int) {
	if w.buckets == nil {
		n := l + 1
		if n < 64 {
			n = 64
		}
		w.buckets = make([][]verify.PackedState, 0, n)
		w.cursors = make([]int, 0, n)
		w.pending = make([][][]verify.PackedState, 0, n)
		w.freshAt = make([]int, 0, n)
		w.sentByLevel = make([]int, 0, n)
		w.recvByLevel = make([]int, 0, n)
	}
	for len(w.buckets) <= l {
		w.buckets = append(w.buckets, nil)
		w.cursors = append(w.cursors, 0)
		w.pending = append(w.pending, nil)
		w.freshAt = append(w.freshAt, 0)
		w.sentByLevel = append(w.sentByLevel, 0)
		w.recvByLevel = append(w.recvByLevel, 0)
	}
}

// absorb applies the commit rule to a level-tagged batch, taking
// ownership of the slice: levels ≤ final+1 enter the visited set (fresh
// states join their bucket) and the slice is recycled; later tags defer
// the whole slice uncopied; levels beyond the violation bound are dropped
// (they can never reach the verdict). Committable batches big enough to
// beat the spawn barrier fan across the lane pool into the striped set.
func (w *meshWorker) absorb(level int, states []verify.PackedState) {
	if w.haveBound && level > w.boundLevel {
		w.putBatch(states)
		return
	}
	w.ensureLevel(level)
	if level > w.final+1 {
		if w.pending[level] == nil && w.sparePending != nil {
			w.pending[level], w.sparePending = w.sparePending, nil
		}
		w.pending[level] = append(w.pending[level], states)
		return
	}
	w.visited.Reserve(len(states))
	if w.lanes != nil && len(states) >= meshParallelThreshold && !w.tooLarge {
		w.absorbParallel(level, states)
		w.putBatch(states)
		return
	}
	for _, s := range states {
		w.commit1(level, s, w.exp.Hash(s))
		if w.tooLarge {
			return
		}
	}
	w.putBatch(states)
}

// absorbParallel is the contention-free absorb path: the crew's lanes claim
// chunks of the batch from the work-stealing queue, hash each state once and
// insert it into the lock-free striped visited set, staging fresh commits
// lane-locally; the orchestrator folds the stages into the level bucket
// afterwards, so the bucket and the per-level counters never see concurrent
// writers.
func (w *meshWorker) absorbParallel(level int, states []verify.PackedState) {
	active := w.activeLanes()
	t := &w.ptask
	t.mode = laneTaskAbsorb
	t.states = states
	t.freshTotal.Store(int64(w.fresh))
	t.tooLarge.Store(false)
	w.crew.ensure(w.lanes)
	w.crew.fan(active, len(states), meshLaneChunk)
	t.states = nil
	w.commitMerged(level, t.tooLarge.Load(), active)
}

// activeLanes is how many pooled lanes the next fan-out wakes: all of them
// on fixed-width jobs, the tuner's current pick on auto-width ones.
func (w *meshWorker) activeLanes() int {
	if w.tuner == nil {
		return len(w.lanes)
	}
	if a := w.tuner.Lanes(); a < len(w.lanes) {
		return a
	}
	return len(w.lanes)
}

// tuneWindow accumulates parallel-expansion throughput for the autotuner
// and hands it a sample once the window is big enough to be a signal.
func (w *meshWorker) tuneWindow(states int, elapsed time.Duration) {
	w.tunStates += states
	w.tunElapsed += elapsed
	if w.tunStates < meshTuneWindow {
		return
	}
	r := w.visited.Stats().Retries
	w.tuner.Observe(w.tunStates, w.tunElapsed, r-w.tunRetries)
	w.tunRetries = r
	w.tunStates, w.tunElapsed = 0, 0
}

// commitMerged folds the active lanes' fresh commits of one parallel pass
// into the level bucket and the counters the serial commit1 maintains.
func (w *meshWorker) commitMerged(level int, tooLarge bool, active int) {
	if tooLarge {
		w.tooLarge = true
	}
	total := 0
	for _, ln := range w.lanes[:active] {
		total += len(ln.next)
	}
	if total == 0 {
		return
	}
	if len(w.buckets[level]) == 0 && cap(w.buckets[level]) == 0 {
		w.buckets[level] = w.newBucket(level)
	}
	for _, ln := range w.lanes[:active] {
		w.buckets[level] = append(w.buckets[level], ln.next...)
		ln.next = ln.next[:0]
	}
	w.fresh += total
	w.freshAt[level] += total
	if level > w.maxFresh {
		w.maxFresh = level
	}
	if w.haveBound && level > w.boundLevel {
		// Committed beyond the verdict level: counted, never expanded.
		w.cursors[level] = len(w.buckets[level])
	}
}

// commit1 commits a single state under the same rule as absorb. h must be
// the expander's hash of s (expansion already computed it for routing, so
// the visited probe never mixes twice).
func (w *meshWorker) commit1(level int, s verify.PackedState, h uint64) {
	if w.tooLarge || (w.haveBound && level > w.boundLevel) {
		return
	}
	w.ensureLevel(level)
	if level > w.final+1 {
		lst := w.pending[level]
		if lst == nil && w.sparePending != nil {
			lst, w.sparePending = w.sparePending, nil
		}
		if n := len(lst); n == 0 || len(lst[n-1]) == cap(lst[n-1]) {
			lst = append(lst, w.getBatch())
		}
		lst[len(lst)-1] = append(lst[len(lst)-1], s)
		w.pending[level] = lst
		return
	}
	if w.visited.AddHashed(s, h) {
		// fresh tracks the set cardinality exactly (every counted add bumps
		// it), so the budget check never takes the striped set's 64 locks.
		if w.fresh+1 > w.budget {
			w.tooLarge = true
			return
		}
		if len(w.buckets[level]) == 0 && cap(w.buckets[level]) == 0 {
			w.buckets[level] = w.newBucket(level)
		}
		w.buckets[level] = append(w.buckets[level], s)
		w.fresh++
		w.freshAt[level]++
		if level > w.maxFresh {
			w.maxFresh = level
		}
	}
}

// newBucket sizes a level's frontier bucket from the previous level's
// fresh count, so big levels fill without repeated growth copies. Big
// levels reuse spare buckets retired by recycleBucket when one fits —
// the frontier/spare swap of the local drivers. Best fit, so a small
// level does not squat in a peak-sized buffer the next big level needs.
func (w *meshWorker) newBucket(level int) []verify.PackedState {
	if level > 0 && w.freshAt[level-1] > meshBatchTarget {
		n := w.freshAt[level-1] + w.freshAt[level-1]/4
		best := -1
		for i, sb := range w.spareBuckets {
			if cap(sb) >= n && (best < 0 || cap(sb) < cap(w.spareBuckets[best])) {
				best = i
			}
		}
		if best >= 0 {
			b := w.spareBuckets[best]
			last := len(w.spareBuckets) - 1
			w.spareBuckets[best] = w.spareBuckets[last]
			w.spareBuckets[last] = nil
			w.spareBuckets = w.spareBuckets[:last]
			return b
		}
		// Double the headroom: frontier sizes climb through the rising
		// phase of the search, so a bucket sized to just this level would
		// be too small to recycle into the next one — every big level of
		// every run would then allocate its frontier anew. With the slack,
		// a retired bucket absorbs the next level's growth and the
		// frontier/spare swap holds through the climb.
		return make([]verify.PackedState, 0, 2*n)
	}
	return w.getBatch()
}

// meshSpareBuckets bounds the retired big-bucket stack: the pipelined
// commit rule keeps a few levels in flight, so a retire burst of that
// depth must fit or the next run's climb re-allocates what was dropped.
const meshSpareBuckets = 32

// recycleBucket retires a drained, final-level bucket: batch-sized ones
// feed the free list, bigger ones become the spare the next big level is
// built in, so resident memory tracks the frontier, not the whole
// visited set — and steady-state levels allocate nothing.
func (w *meshWorker) recycleBucket(l int) {
	b := w.buckets[l]
	w.buckets[l] = w.buckets[l][:0:0]
	w.cursors[l] = 0
	if cap(b) > meshBatchTarget {
		if len(w.spareBuckets) < meshSpareBuckets {
			w.spareBuckets = append(w.spareBuckets, b[:0])
			return
		}
		small := 0
		for i := range w.spareBuckets {
			if cap(w.spareBuckets[i]) < cap(w.spareBuckets[small]) {
				small = i
			}
		}
		if cap(b) > cap(w.spareBuckets[small]) {
			w.spareBuckets[small] = b[:0]
		}
		return
	}
	w.putBatch(b)
}

// setFinal raises the node's final-level knowledge, releasing deferred
// commits level by ascending level (the order the commit-rule proof
// relies on: pending level L+1 flushes only once level L is final).
func (w *meshWorker) setFinal(f int) {
	for w.final < f {
		w.final++
		l := w.final + 1
		if l < len(w.pending) && len(w.pending[l]) > 0 {
			batches := w.pending[l]
			w.pending[l] = nil
			for _, b := range batches {
				w.absorb(l, b)
			}
			// A flushed level never refills, but the next level defers the
			// same way: keep the larger list backbone as the shared spare.
			if cap(batches) > cap(w.sparePending) {
				for i := range batches {
					batches[i] = nil
				}
				w.sparePending = batches[:0]
			}
		}
	}
}

// noteViol records a violation found while expanding one of this node's
// bucket states, keeping the (level, state) minimum.
func (w *meshWorker) noteViol(level int, s verify.PackedState, app int) {
	if !w.haveViol || level < w.violLevel || (level == w.violLevel && verify.LessState(s, w.violState)) {
		w.haveViol, w.violLevel, w.violState, w.violApp = true, level, s, app
	}
	w.noteBound(level, s)
}

// noteBound tightens the skip bound (own findings merged with the
// coordinator's broadcast) and drops work that can no longer matter.
func (w *meshWorker) noteBound(level int, s verify.PackedState) {
	if w.haveBound && (w.boundLevel < level || (w.boundLevel == level && verify.LessState(w.boundState, s))) {
		return
	}
	w.haveBound, w.boundLevel, w.boundState = true, level, s
	for l := level + 1; l < len(w.buckets); l++ {
		if len(w.buckets[l]) > 0 {
			w.cursors[l] = len(w.buckets[l])
		}
		for _, b := range w.pending[l] {
			w.putBatch(b)
		}
		w.pending[l] = nil
	}
}

// drainInbox absorbs everything queued on the node's mesh links. A link
// failure poisons a non-FT run; under fault tolerance it marks the peer
// dead and is reported to the coordinator via the snapshot's LinkDown.
// Era-tagged batches from a past era are dropped (the rollback erased
// their accounting on both ends); batches from a future era are parked
// until this worker's own recovery order arrives, so nothing a recovered
// peer sent ahead of our rollback is ever lost.
func (w *meshWorker) drainInbox() {
	batches := w.inbox.drain(w.spareQ)
	for i := range batches {
		b := &batches[i]
		if b.err != nil {
			if w.ft {
				w.noteLinkDown(b.from)
			} else if w.err == nil {
				w.err = b.err
			}
			continue
		}
		if b.era != w.era {
			if b.era > w.era {
				w.futureQ = append(w.futureQ, *b)
			} else {
				w.putBatch(b.states)
			}
			b.states = nil
			continue
		}
		w.ensureLevel(b.level)
		w.recvByLevel[b.level] += len(b.states)
		w.absorb(b.level, b.states)
		b.states = nil
	}
	w.spareQ = batches[:0]
}

// noteLinkDown records a dead peer: no further sends are attempted and
// the coordinator learns via the next snapshot's LinkDown report.
func (w *meshWorker) noteLinkDown(peer int) {
	if peer < 0 || peer >= w.n {
		return
	}
	if w.deadPeers == nil {
		w.deadPeers = make([]bool, w.n)
	}
	if !w.deadPeers[peer] {
		w.deadPeers[peer] = true
		w.linkDown = append(w.linkDown, peer)
	}
}

// expandable returns the lowest level with unexpanded committed work,
// skipping (and marking drained) levels beyond the violation bound.
func (w *meshWorker) expandable() int {
	for l := range w.buckets {
		if w.cursors[l] < len(w.buckets[l]) {
			if w.haveBound && l > w.boundLevel {
				w.cursors[l] = len(w.buckets[l])
				continue
			}
			return l
		}
	}
	return -1
}

// expandChunk expands up to n states (per lane when parallel) from the
// lowest available bucket, routing foreign successors over the mesh and
// committing self-owned ones locally. Returns false when no work was
// available.
func (w *meshWorker) expandChunk(n int) bool {
	l := w.expandable()
	if l < 0 {
		return false
	}
	if w.outLevel != l+1 {
		w.flushOut()
		w.outLevel = l + 1
		// Pre-size the visited partition for the coming level from the
		// fresh-state trajectory (the local drivers' levelReserve
		// heuristic), so commits inside a level rarely rehash.
		est := w.freshAt[l]
		if l > 0 && w.freshAt[l-1] > 0 {
			est = w.freshAt[l] * w.freshAt[l] / w.freshAt[l-1]
			if max := 8 * w.freshAt[l]; est > max {
				est = max
			}
		}
		w.visited.Reserve(est)
	}
	if w.lanes != nil && len(w.buckets[l])-w.cursors[l] >= meshParallelThreshold && !w.tooLarge {
		w.expandParallel(l, n)
	} else {
		w.expandSerial(l, n)
	}
	if w.cursors[l] == len(w.buckets[l]) && len(w.buckets[l]) > 0 && l <= w.final {
		// The bucket is drained and — level final — can never refill. With
		// checkpointing on, the bucket is the segment payload: keep it until
		// the sweep has persisted the level (maybeCheckpoint recycles it).
		if !w.ckptOn || l <= w.ckptLevel {
			w.recycleBucket(l)
		}
	}
	return true
}

// expandSerial is the single-goroutine expansion loop: hash each
// successor once during the packing sweep, then reuse the hash for shard
// routing, the send filter and the visited probe.
func (w *meshWorker) expandSerial(l, n int) {
	for i := 0; i < n && w.cursors[l] < len(w.buckets[l]); i++ {
		if w.tooLarge {
			return
		}
		s := w.buckets[l][w.cursors[l]]
		w.cursors[l]++
		if w.haveBound && l == w.boundLevel && verify.LessState(w.boundState, s) {
			continue
		}
		succ, violApp := w.exp.SuccessorsHashedInto(s, w.esc, w.hsucc[:0])
		w.hsucc = succ[:0]
		if violApp >= 0 {
			w.noteViol(l, s, violApp)
			continue
		}
		w.transitions += len(succ)
		if w.ckptOn {
			w.ftTransAdd(l, w.exp.Hash(s), len(succ))
		}
		if w.haveBound && l+1 > w.boundLevel {
			continue // successors beyond the verdict level
		}
		for _, ns := range succ {
			if dst := int(w.owners[ns.H>>58]); dst != w.id {
				if w.filters[dst].slots != nil && w.filters[dst].seen(ns.S, ns.H) {
					w.filtered++
				} else {
					w.outBuf[dst] = append(w.outBuf[dst], ns.S)
					if len(w.outBuf[dst]) >= meshBatchTarget {
						w.flushDest(dst)
					}
				}
			} else {
				w.commit1(l+1, ns.S, ns.H)
			}
		}
	}
}

// expandParallel fans a claim of up to n-states-per-active-lane across the
// crew. Two facts are frozen for the whole chunk on the orchestrator
// side — whether level l+1 is committable (commit rule) and whether it is
// beyond the violation bound — because only the orchestrator ever moves
// them. A violation found mid-chunk therefore cannot retract the chunk's
// other successors, which is safe: counts are only compared on
// schedulable runs, and the minimum violator of the first violating
// level can never be suppressed by a larger one (the skip bound only
// drops states *greater* than the recorded minimum).
func (w *meshWorker) expandParallel(l, n int) {
	active := w.activeLanes()
	lo := w.cursors[l]
	hi := min(lo+n*active, len(w.buckets[l]))
	t := &w.ptask
	t.mode = laneTaskExpand
	t.states = w.buckets[l][lo:hi]
	w.cursors[l] = hi
	t.commitOK = l+1 <= w.final+1
	t.dropSucc = w.haveBound && l+1 > w.boundLevel
	if t.commitOK {
		w.ensureLevel(l + 1)
	}
	t.minViol.Store(nil)
	if w.haveBound && l == w.boundLevel {
		t.boundCopy = w.boundState
		t.minViol.Store(&t.boundCopy)
	}
	t.freshTotal.Store(int64(w.fresh))
	t.tooLarge.Store(false)
	for _, ln := range w.lanes[:active] {
		if !t.commitOK && ln.defr == nil {
			ln.defr = w.getBatch()
		}
	}
	w.crew.ensure(w.lanes)
	var start time.Time
	if w.tuner != nil {
		start = time.Now()
	}
	w.crew.fan(active, len(t.states), meshLaneChunk)
	if w.tuner != nil {
		w.tuneWindow(len(t.states), time.Since(start))
	}
	t.states = nil
	w.mergeLanes(l, t.commitOK, t.tooLarge.Load(), active)
}

// lanePass is the crew body: one wake of one lane, dispatched on the
// worker's current task.
func (w *meshWorker) lanePass(lane int, ln *meshLane) {
	if w.ptask.mode == laneTaskAbsorb {
		w.laneAbsorb(lane, ln)
		return
	}
	w.laneExpand(lane, ln)
}

// laneAbsorb is one lane's share of a parallel absorb: claim chunks from
// the work queue, hash each state once, insert into the lock-free striped
// set, stage fresh commits lane-locally.
func (w *meshWorker) laneAbsorb(lane int, ln *meshLane) {
	t := &w.ptask
	budget := int64(w.budget)
	ln.next = ln.next[:0]
	for {
		lo, hi, ok := w.crew.wq.Next(lane)
		if !ok || t.tooLarge.Load() {
			return
		}
		for _, s := range t.states[lo:hi] {
			if w.visited.AddHashed(s, w.exp.Hash(s)) {
				if t.freshTotal.Add(1) > budget {
					t.tooLarge.Store(true)
					return
				}
				ln.next = append(ln.next, s)
			}
		}
	}
}

// laneExpand is one lane's share of a parallel expansion chunk: claim
// ranges from the work-stealing queue, expand each state through the
// lane's own scratch (hashing during packing), and stage everything
// lane-locally — peer-owned successors per destination, self-owned ones
// either straight into the striped visited set (committable levels) or
// into the deferred batch. The only shared writes are the striped set,
// the task atomics and the minimum-violator CAS.
func (w *meshWorker) laneExpand(lane int, ln *meshLane) {
	t := &w.ptask
	ln.trans, ln.haveViol = 0, false
	ln.next = ln.next[:0]
	if w.ckptOn {
		clear(ln.ftt[:])
	}
	budget := int64(w.budget)
	for {
		lo, hi, ok := w.crew.wq.Next(lane)
		if !ok || t.tooLarge.Load() {
			return
		}
		for _, s := range t.states[lo:hi] {
			if mv := t.minViol.Load(); mv != nil && verify.LessState(*mv, s) {
				continue // a smaller violator at this level already wins
			}
			succ, violApp := w.exp.SuccessorsHashedInto(s, ln.esc, ln.succ[:0])
			ln.succ = succ[:0]
			if violApp >= 0 {
				if !ln.haveViol || verify.LessState(s, ln.violState) {
					ln.haveViol, ln.violState, ln.violApp = true, s, violApp
				}
				for { // tighten the shared skip bound (runParallel idiom)
					mv := t.minViol.Load()
					if mv != nil && !verify.LessState(s, *mv) {
						break
					}
					ns := s
					if t.minViol.CompareAndSwap(mv, &ns) {
						break
					}
				}
				continue
			}
			ln.trans += len(succ)
			if w.ckptOn {
				ln.ftt[w.exp.Hash(s)>>58] += int64(len(succ))
			}
			if t.dropSucc {
				continue // successors beyond the verdict level
			}
			for _, ns := range succ {
				if dst := int(w.owners[ns.H>>58]); dst != w.id {
					ln.out[dst] = append(ln.out[dst], ns)
				} else if !t.commitOK {
					ln.defr = append(ln.defr, ns.S)
				} else if w.visited.AddHashed(ns.S, ns.H) {
					if t.freshTotal.Add(1) > budget {
						t.tooLarge.Store(true)
						return
					}
					ln.next = append(ln.next, ns.S)
				}
			}
		}
	}
}

// mergeLanes folds a parallel chunk's lane staging back into the
// orchestrator's single-threaded state: transitions and the violation
// minimum first (tightening the bound), then the fresh commits (or the
// deferred batches, ownership transferred uncopied), and finally the
// staged peer routes — pushed through each destination's recent-state
// filter into the coalesced send buffer by this one goroutine, so the
// per-level sent counts the epoch tracker sums stay exact.
func (w *meshWorker) mergeLanes(l int, commitOK, tooLarge bool, active int) {
	level := l + 1
	w.ensureLevel(level)
	for _, ln := range w.lanes[:active] {
		w.transitions += ln.trans
		if w.ckptOn && ln.trans > 0 {
			w.ftTransMerge(l, &ln.ftt)
		}
		if ln.haveViol {
			w.noteViol(l, ln.violState, ln.violApp)
		}
	}
	if commitOK {
		w.commitMerged(level, tooLarge, active)
	} else {
		for _, ln := range w.lanes[:active] {
			if ln.defr == nil {
				continue
			}
			if len(ln.defr) > 0 && !(w.haveBound && level > w.boundLevel) {
				w.pending[level] = append(w.pending[level], ln.defr)
			} else {
				w.putBatch(ln.defr)
			}
			ln.defr = nil
		}
	}
	if w.haveBound && level > w.boundLevel {
		// The chunk's own violations doomed its successors: drop the
		// staged routes, exactly as the serial path skips them.
		for _, ln := range w.lanes[:active] {
			for d := range ln.out {
				ln.out[d] = ln.out[d][:0]
			}
		}
		return
	}
	for d := range w.outBuf {
		if d == w.id {
			continue
		}
		for _, ln := range w.lanes[:active] {
			for _, ns := range ln.out[d] {
				if w.filters[d].slots != nil && w.filters[d].seen(ns.S, ns.H) {
					w.filtered++
					continue
				}
				w.outBuf[d] = append(w.outBuf[d], ns.S)
				if len(w.outBuf[d]) >= meshBatchTarget {
					w.flushDest(d)
				}
			}
			ln.out[d] = ln.out[d][:0]
		}
	}
}

// flushDest ships one destination's buffered successors as a level-tagged
// batch, updating the epoch and wire accounting. Under fault tolerance a
// failed (or known-dead) destination drops the batch and marks the link
// down instead of poisoning the run: the coordinator's recovery rolls
// every counter back past the loss, so an uncounted drop can never skew
// the sent/recv sums that drive termination.
func (w *meshWorker) flushDest(d int) {
	states := w.outBuf[d]
	if len(states) == 0 {
		return
	}
	w.outBuf[d] = w.getBatch()
	if w.ft && w.deadPeers[d] {
		w.putBatch(states)
		return
	}
	n, level := len(states), w.outLevel
	w.ensureLevel(level)
	bytes, err := w.links[d].send(w.era, level, states)
	if err != nil {
		if w.ft {
			w.noteLinkDown(d)
			return
		}
		if w.err == nil {
			w.err = fmt.Errorf("mesh link to node %d: %v", d, err)
		}
	}
	w.sentByLevel[level] += n
	w.routed += n
	w.linkStates[d] += n
	w.wireBytes += bytes
	w.linkBytes[d] += bytes
}

// flushOut ships every buffered destination batch.
func (w *meshWorker) flushOut() {
	if w.outLevel < 0 {
		return
	}
	for d := range w.outBuf {
		if d != w.id {
			w.flushDest(d)
		}
	}
}

// drained computes the highest level L with every bucket ≤ L expanded,
// capped at final+1 (deeper buckets may still be refilled by peers).
func (w *meshWorker) drained() int {
	d := -1
	for l := 0; l <= w.final+1; l++ {
		if l < len(w.buckets) && w.cursors[l] < len(w.buckets[l]) {
			if !(w.haveBound && l > w.boundLevel) {
				break
			}
		}
		d = l
	}
	return d
}

// idle reports quiescence under the node's current milestone knowledge.
func (w *meshWorker) idle() bool {
	if w.expandable() >= 0 || len(w.futureQ) > 0 {
		return false
	}
	for d, b := range w.outBuf {
		if d != w.id && len(b) > 0 {
			return false
		}
	}
	for l, lst := range w.pending {
		if len(lst) > 0 && !(w.haveBound && l > w.boundLevel) {
			return false
		}
	}
	w.inbox.mu.Lock()
	empty := len(w.inbox.q) == 0
	w.inbox.mu.Unlock()
	return empty
}

// digest captures the snapshot fields the long-poll news check compares.
func (w *meshWorker) digest() meshDigest {
	pendingN := 0
	for _, lst := range w.pending {
		for _, b := range lst {
			pendingN += len(b)
		}
	}
	sent, recv := 0, 0
	for l := range w.sentByLevel {
		sent += w.sentByLevel[l]
		recv += w.recvByLevel[l]
	}
	return meshDigest{
		fresh: w.fresh, transitions: w.transitions, routed: w.routed, filtered: w.filtered,
		sent: sent, recv: recv, pendingN: pendingN,
		drained: w.drained(), maxFresh: w.maxFresh,
		idle: w.idle(), tooLarge: w.tooLarge, haveErr: w.err != nil, haveViol: w.haveViol,
		violLevel: w.violLevel, violState: w.violState,
	}
}

// snapshot builds a poll response from the cumulative counters, reusing
// the flip buffer's slices (see snapResp).
func (w *meshWorker) snapshot() *Response {
	resp := &w.snapResp[w.snapFlip]
	w.snapFlip ^= 1
	*resp = Response{
		Proto:        protoVersion,
		SentByLevel:  append(resp.SentByLevel[:0], w.sentByLevel...),
		RecvByLevel:  append(resp.RecvByLevel[:0], w.recvByLevel...),
		FreshByLevel: append(resp.FreshByLevel[:0], w.freshAt...),
		Links:        resp.Links[:0],
		Drained:      w.drained(),
		Idle:         w.idle(),
		MaxFresh:     w.maxFresh,
		Fresh:        w.fresh,
		Transitions:  w.transitions,
		Routed:       w.routed,
		Filtered:     w.filtered,
		RawBytes:     8 * w.words * (w.routed + w.filtered),
		WireBytes:    w.wireBytes,
		TooLarge:     w.tooLarge,
		ViolApp:      -1,
		Era:          w.era,
		Ckpt:         w.ckptLevel,
		LinkDown:     append(resp.LinkDown[:0], w.linkDown...),
	}
	if w.err != nil {
		resp.Err = w.err.Error()
	}
	if w.haveViol {
		resp.Viol = true
		resp.ViolLevel, resp.ViolState, resp.ViolApp = w.violLevel, w.violState, w.violApp
	}
	for d := range w.linkStates {
		if d != w.id && (w.linkStates[d] > 0 || w.linkBytes[d] > 0) {
			resp.Links = append(resp.Links, verify.LinkWire{
				From: w.id, To: d, States: w.linkStates[d], Bytes: w.linkBytes[d],
			})
		}
	}
	w.lastSnap, w.haveSnap = w.digest(), true
	return resp
}

// poll is one control-plane epoch on the worker side: absorb the
// coordinator's milestone knowledge, then expand and exchange until there
// is news (or the poll budget runs out), and answer with a snapshot.
func (w *meshWorker) poll(ctl *Control) *Response {
	if ctl != nil {
		if ctl.Recover != nil && w.ft && ctl.Recover.Era > w.era {
			w.recoverTo(ctl.Recover)
		}
		if ctl.Finish {
			w.shutdown()
			w.removeCkpt()
			return w.snapshot()
		}
		w.setFinal(ctl.Final)
		if ctl.HaveViol {
			w.noteBound(ctl.ViolLevel, ctl.ViolState)
		}
	}
	if w.finished {
		return w.snapshot()
	}
	deadline := time.Now().Add(meshPollBudget)
	for {
		w.drainInbox()
		if w.err != nil || w.tooLarge {
			break
		}
		if w.haveViol && (!w.haveSnap || !w.lastSnap.haveViol ||
			w.violLevel != w.lastSnap.violLevel || w.violState != w.lastSnap.violState) {
			break // a new minimum violation is always news
		}
		if !w.expandChunk(meshChunk) {
			w.flushOut()
			if !w.haveSnap || w.digest() != w.lastSnap {
				break
			}
			if !w.waitData(deadline) {
				break
			}
			continue
		}
		if time.Now().After(deadline) {
			w.flushOut()
			break
		}
	}
	w.maybeCheckpoint()
	return w.snapshot()
}

// waitData blocks until a mesh batch arrives or the poll deadline passes,
// reporting whether it is worth looping again.
func (w *meshWorker) waitData(deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	if d > meshIdleWait {
		d = meshIdleWait
	}
	if w.waitT == nil {
		w.waitT = time.NewTimer(d)
	} else {
		w.waitT.Reset(d)
	}
	select {
	case <-w.inbox.notify:
		if !w.waitT.Stop() {
			select {
			case <-w.waitT.C:
			default:
			}
		}
		return true
	case <-w.waitT.C:
		return false
	}
}

// shutdown tears the node's data plane down (idempotent): links closed,
// registry entry released. The session's cumulative counters fold into the
// worker-side metrics here — once per session, zero hot-path cost.
func (w *meshWorker) shutdown() {
	if w.finished {
		return
	}
	w.finished = true
	obsSessions.Inc()
	obsFresh.Add(uint64(w.fresh))
	obsWireBytes.Add(uint64(w.wireBytes))
	obsRoutedStates.Add(uint64(w.routed))
	obsFilteredStates.Add(uint64(w.filtered))
	w.crew.stop()
	if w.lanes != nil {
		// Contention deltas since the last flush: the sharded set and the
		// steal counter survive session reinit, so fold only this session's
		// share into the engine telemetry (Overflows reset with the set, so
		// the raw value is already the session's).
		s := w.visited.Stats()
		verify.FlushContention(verify.SetStats{
			Probes:    s.Probes - w.contFlushed.Probes,
			Retries:   s.Retries - w.contFlushed.Retries,
			Overflows: s.Overflows,
		}, int64(w.transitions), w.crew.wq.Steals()-w.stealsFlushed)
		w.contFlushed = s
		w.stealsFlushed = w.crew.wq.Steals()
	}
	for _, l := range w.links {
		if l != nil {
			l.close()
		}
	}
	if w.cleanup != nil {
		w.cleanup()
	}
}

// meshTracker is the coordinator's milestone state over one mesh run. It
// is pure bookkeeping (no I/O), so the epoch/termination invariants are
// unit-testable against adversarial snapshot interleavings.
type meshTracker struct {
	n           int
	final       int // highest level with final membership everywhere
	done        int // highest level fully expanded everywhere
	sent, recv  []int
	drained     []int
	idle        []bool
	gone        []bool // evicted nodes: excluded from every milestone
	maxLevel    int
	maxFresh    int
	fresh       int
	transitions int
	tooLarge    bool
	haveViol    bool
	violLevel   int
	violState   verify.PackedState
	violApp     int
	wire        verify.WireStats
}

func newMeshTracker(n int) *meshTracker {
	return &meshTracker{n: n, final: 0, done: -1, drained: make([]int, n), idle: make([]bool, n), violApp: -1}
}

// observe folds one full poll round into the tracker. Counters are
// cumulative, so the round replaces (never accumulates) totals. Nil
// responses (evicted nodes on a fault-tolerant run) are skipped — their
// shards' counters live in the survivors after the rollback.
func (t *meshTracker) observe(resps []*Response) {
	t.sent = t.sent[:0]
	t.recv = t.recv[:0]
	t.fresh, t.transitions, t.maxFresh = 0, 0, 0
	t.wire = verify.WireStats{Links: t.wire.Links[:0]}
	for i, r := range resps {
		if r == nil {
			continue
		}
		t.drained[i] = r.Drained
		t.idle[i] = r.Idle
		t.fresh += r.Fresh
		t.transitions += r.Transitions
		if r.MaxFresh > t.maxFresh {
			t.maxFresh = r.MaxFresh
		}
		t.tooLarge = t.tooLarge || r.TooLarge
		for l, v := range r.SentByLevel {
			for len(t.sent) <= l {
				t.sent = append(t.sent, 0)
			}
			t.sent[l] += v
		}
		for l, v := range r.RecvByLevel {
			for len(t.recv) <= l {
				t.recv = append(t.recv, 0)
			}
			t.recv[l] += v
		}
		if r.Viol && (!t.haveViol || r.ViolLevel < t.violLevel ||
			(r.ViolLevel == t.violLevel && verify.LessState(r.ViolState, t.violState))) {
			t.haveViol, t.violLevel, t.violState, t.violApp = true, r.ViolLevel, r.ViolState, r.ViolApp
		}
		t.wire.Add(verify.WireStats{
			RoutedStates:   r.Routed,
			FilteredStates: r.Filtered,
			RawBytes:       r.RawBytes,
			WireBytes:      r.WireBytes,
			Links:          r.Links,
		})
	}
	t.maxLevel = t.maxFresh
	if len(t.sent)-1 > t.maxLevel {
		t.maxLevel = len(t.sent) - 1
	}
	if len(t.recv)-1 > t.maxLevel {
		t.maxLevel = len(t.recv) - 1
	}
}

func (t *meshTracker) sumAt(counts []int, l int) int {
	if l < len(counts) {
		return counts[l]
	}
	return 0
}

// advance raises the done/final milestones as far as the last observed
// round justifies. done(L) needs final(L) and every worker drained ≤ L;
// final(L+1) needs done(L) — sends tagged L+1 are then finished — plus
// matching cluster-wide sent/recv sums at L+1.
func (t *meshTracker) advance() {
	for {
		d := t.final
		for i, w := range t.drained {
			if t.gone != nil && t.gone[i] {
				continue
			}
			if w < d {
				d = w
			}
		}
		if d > t.done {
			t.done = d
			continue
		}
		if t.done == t.final && t.final < t.maxLevel+1 &&
			t.sumAt(t.sent, t.final+1) == t.sumAt(t.recv, t.final+1) {
			t.final++
			continue
		}
		return
	}
}

// rebase rewinds the tracker to a recovery cut: levels through the cut
// were restored from checkpoints (final membership), the cut level is
// the new frontier awaiting re-expansion. Cumulative totals and per-level
// sums are replaced wholesale by the next observe round — the workers'
// reset zeroed the counters these sums mirror — and the sticky budget
// flag is cleared because restore re-derives it from the restored
// membership. Violation knowledge survives: a found violation is a
// property of the state space, and the workers keep theirs too.
func (t *meshTracker) rebase(cut int) {
	t.final = cut
	if t.final < 0 {
		t.final = 0
	}
	t.done = -1
	t.sent, t.recv = t.sent[:0], t.recv[:0]
	t.maxLevel = 0
	t.tooLarge = false
}

// terminated reports whether the verdict is final: a violation whose
// level is fully expanded, or cluster-wide quiescence with every level's
// sent/recv sums matching (no state in flight, nothing left to expand).
func (t *meshTracker) terminated() bool {
	if t.haveViol && t.done >= t.violLevel {
		return true
	}
	for i, ok := range t.idle {
		if t.gone != nil && t.gone[i] {
			continue
		}
		if !ok {
			return false
		}
	}
	for l := 0; l <= t.maxLevel; l++ {
		if t.sumAt(t.sent, l) != t.sumAt(t.recv, l) {
			return false
		}
	}
	return true
}

// control renders the tracker's knowledge for the next poll round.
// controlInto fills c with the tracker's current milestones. The
// coordinator reuses one Control across rounds (workers read it inside
// the call and never retain it), so the poll loop allocates none.
func (t *meshTracker) controlInto(c *Control) {
	*c = Control{Final: t.final, Done: t.done}
	if t.haveViol {
		c.HaveViol, c.ViolLevel, c.ViolState = true, t.violLevel, t.violState
	}
}

// foldMeshTrace folds the final poll round into the run trace: each
// worker's cumulative per-level fresh commits sum (across nodes) to the
// global frontier size of every BFS level — the same per-level counts the
// local drivers record — plus one NodeSpan per worker and the epoch count.
// Per-level transitions are not attributed in the mesh (workers count them
// per session, not per level), so the spans carry states only.
func foldMeshTrace(trace *obs.Trace, resps []*Response, epochs int) {
	if trace == nil {
		return
	}
	for i, r := range resps {
		if r == nil {
			continue // evicted node; its levels live in the survivors
		}
		for l, v := range r.FreshByLevel {
			if v > 0 {
				trace.AddLevel(l, v, 0)
			}
		}
		sent, recv := 0, 0
		for _, v := range r.SentByLevel {
			sent += v
		}
		for _, v := range r.RecvByLevel {
			recv += v
		}
		trace.AddNode(i, r.Fresh, r.MaxFresh, sent, recv)
	}
	trace.SetEpochs(epochs)
}

// newSessionID draws a random mesh-rendezvous token; daemons serving
// several coordinators key their link registries by it.
func newSessionID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 1
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id
}

// meshPoller keeps one long-lived call goroutine per node so the poll
// loop's rounds reuse the same machinery instead of spawning goroutines
// and result slices every epoch (those per-round allocations grew with
// the node count). Rounds stay concurrent — workers long-poll inside
// Call, so a sequential round would serialize the cluster.
//
// Fault-tolerant runs add liveness bookkeeping: every dispatched call
// carries a sequence number, collectFT bounds its wait with
// meshDeathTimeout, and an answer to a call the poller has given up on —
// or one issued against a transport since replaced by adopt — is
// discarded by sequence mismatch, so a slow reply from a declared-dead
// worker can never be mistaken for a current one.
type meshPoller struct {
	reqs     []chan pollReq
	done     chan pollResult
	errs     []error
	alive    []bool
	inflight []bool
	seqs     []uint64
	seq      uint64
}

type pollReq struct {
	req *Request
	seq uint64
}

type pollResult struct {
	i    int
	seq  uint64
	resp *Response
	err  error
}

func newMeshPoller(nodes []Transport) *meshPoller {
	n := len(nodes)
	p := &meshPoller{
		reqs:     make([]chan pollReq, n),
		done:     make(chan pollResult, 4*n),
		errs:     make([]error, n),
		alive:    make([]bool, n),
		inflight: make([]bool, n),
		seqs:     make([]uint64, n),
	}
	for i, tr := range nodes {
		p.alive[i] = true
		p.reqs[i] = p.spawn(i, tr)
	}
	return p
}

func (p *meshPoller) spawn(i int, tr Transport) chan pollReq {
	ch := make(chan pollReq)
	go func() {
		for pr := range ch {
			resp, err := tr.Call(pr.req)
			p.done <- pollResult{i: i, seq: pr.seq, resp: resp, err: err}
		}
	}()
	return ch
}

func (p *meshPoller) send(i int, req *Request) {
	p.seq++
	p.seqs[i] = p.seq
	p.inflight[i] = true
	p.reqs[i] <- pollReq{req, p.seq}
}

// round sends one request to every node (the request is shared and must
// not be mutated until the round completes) and collects the responses
// into resps, mirroring fanout's error contract. Non-fault-tolerant
// rounds only — every node is alive and a failure poisons the run.
func (p *meshPoller) round(resps []*Response, req *Request) error {
	for i := range p.reqs {
		p.send(i, req)
	}
	return p.collect(resps)
}

// roundFn is round with a per-node request — Init carries each node's ID.
func (p *meshPoller) roundFn(resps []*Response, req func(i int) *Request) error {
	for i := range p.reqs {
		p.send(i, req(i))
	}
	return p.collect(resps)
}

func (p *meshPoller) collect(resps []*Response) error {
	n := 0
	for _, f := range p.inflight {
		if f {
			n++
		}
	}
	for n > 0 {
		r := <-p.done
		if !p.inflight[r.i] || r.seq != p.seqs[r.i] {
			continue // answer to an abandoned call
		}
		p.inflight[r.i] = false
		n--
		resps[r.i], p.errs[r.i] = r.resp, r.err
	}
	for i, err := range p.errs {
		if !p.alive[i] {
			continue
		}
		if err != nil {
			return &nodeError{i, err}
		}
		if resps[i].Err != "" {
			return &nodeError{i, errors.New(resps[i].Err)}
		}
	}
	return nil
}

// roundFT is the fault-tolerant round: requests go to live nodes only,
// the collect is bounded by meshDeathTimeout, and instead of failing the
// run it returns the indices of nodes that died this round: transport
// error, worker-reported Err, or timeout.
func (p *meshPoller) roundFT(resps []*Response, reqf func(i int) *Request) []int {
	for i := range p.reqs {
		resps[i] = nil
		if p.alive[i] {
			p.send(i, reqf(i))
		}
	}
	return p.collectFT(resps)
}

// roundSubset is roundFT over an explicit index set — recovery phases
// address replacement Inits and survivor Recover polls separately.
// Entries of resps outside idxs are left untouched.
func (p *meshPoller) roundSubset(resps []*Response, idxs []int, reqf func(i int) *Request) []int {
	for _, i := range idxs {
		resps[i] = nil
		if p.alive[i] {
			p.send(i, reqf(i))
		}
	}
	return p.collectFT(resps)
}

func (p *meshPoller) collectFT(resps []*Response) (dead []int) {
	n := 0
	for _, f := range p.inflight {
		if f {
			n++
		}
	}
	timer := time.NewTimer(meshDeathTimeout)
	defer timer.Stop()
	for n > 0 {
		select {
		case r := <-p.done:
			if !p.inflight[r.i] || r.seq != p.seqs[r.i] {
				continue
			}
			p.inflight[r.i] = false
			n--
			if r.err != nil || r.resp.Err != "" {
				dead = append(dead, r.i)
				continue
			}
			resps[r.i] = r.resp
		case <-timer.C:
			// Unanswered workers are declared dead; their eventual answers
			// are discarded by the sequence check. Workers answer every
			// poll within meshPollBudget, so only a dead or wedged node
			// ever trips this.
			for i, f := range p.inflight {
				if f {
					p.inflight[i] = false
					dead = append(dead, i)
				}
			}
			return dead
		}
	}
	return dead
}

// evict marks a node dead: it is skipped by every later round.
func (p *meshPoller) evict(i int) {
	p.alive[i] = false
}

// adopt replaces node i's transport with a late-joining spare: the old
// call channel is closed (its goroutine exits after any in-flight call,
// whose answer the sequence check discards) and a fresh goroutine
// serves the replacement under the same node index.
func (p *meshPoller) adopt(i int, tr Transport) {
	close(p.reqs[i])
	p.reqs[i] = p.spawn(i, tr)
	p.alive[i] = true
	p.inflight[i] = false
}

func (p *meshPoller) close() {
	for _, ch := range p.reqs {
		close(ch)
	}
}

// meshFT is the coordinator's fault-tolerance state over one mesh run:
// who last checkpointed and answered what, the current era and ownership
// table, and the spare transports still available for adoption. deadWire
// preserves evicted nodes' final wire totals — true traffic the rollback
// cannot re-attribute (survivors keep only their own wire counters).
type meshFT struct {
	job        Job // Init template for adopting replacement workers
	poller     *meshPoller
	tr         *meshTracker
	trace      *obs.Trace
	lastCkpt   []int
	lastSnap   []*Response
	era        int
	owners     []uint8
	spares     []Transport
	deadWire   verify.WireStats
	recoveries int
}

func newMeshFT(job Job, poller *meshPoller, tr *meshTracker, trace *obs.Trace, spares []Transport) *meshFT {
	n := job.NumNodes
	ft := &meshFT{
		job:      job,
		poller:   poller,
		tr:       tr,
		trace:    trace,
		lastCkpt: make([]int, n),
		lastSnap: make([]*Response, n),
		owners:   job.Owners,
		spares:   spares,
	}
	for i := range ft.lastCkpt {
		ft.lastCkpt[i] = -1
	}
	tr.gone = make([]bool, n)
	return ft
}

// note records a healthy round's checkpoint watermarks and snapshots.
// The snapshot pointers stay valid after a node dies: workers
// double-buffer their responses, and a dead node is never polled again,
// so the buffer a retained snapshot lives in is not rewritten.
func (ft *meshFT) note(resps []*Response) {
	for i, r := range resps {
		if r != nil {
			ft.lastCkpt[i] = r.Ckpt
			ft.lastSnap[i] = r
		}
	}
}

// foldLinkDown turns worker-reported dead links into coordinator death
// verdicts: a severed link is indistinguishable from (and treated as)
// the death of its far end, so the run converges on a surviving
// component instead of hanging on a partition.
func (ft *meshFT) foldLinkDown(resps []*Response) (dead []int) {
	for i, r := range resps {
		if r == nil || !ft.poller.alive[i] {
			continue
		}
		for _, j := range r.LinkDown {
			if j >= 0 && j < len(ft.poller.alive) && ft.poller.alive[j] {
				dead = append(dead, j)
			}
		}
	}
	return dead
}

// recover is the takeover loop. Each iteration evicts the newly dead,
// adopts spares into the freed slots when available, reassigns orphaned
// shards to the survivors, rolls the cluster back to the deepest cut
// every relevant checkpoint supports, and issues the mixed recovery
// round — Recover-tagged polls to survivors, restore-Inits to adoptions.
// Deaths during that round feed the next iteration: the double-fault
// case is just a second lap.
func (ft *meshFT) recover(resps []*Response, dead []int) error {
	p, t := ft.poller, ft.tr
	adoptedNow := make([]bool, len(p.alive))
	for len(dead) > 0 {
		cut := 1 << 30
		any := false
		for _, d := range dead {
			if !p.alive[d] {
				continue // duplicate report
			}
			any = true
			p.evict(d)
			t.gone[d] = true
			adoptedNow[d] = false
			if s := ft.lastSnap[d]; s != nil {
				ft.deadWire.Add(verify.WireStats{
					RoutedStates:   s.Routed,
					FilteredStates: s.Filtered,
					RawBytes:       s.RawBytes,
					WireBytes:      s.WireBytes,
				})
				// Folded once; a replacement adopted into this slot must
				// not inherit (and re-fold) its predecessor's snapshot.
				ft.lastSnap[d] = nil
			}
			// The cut can be no deeper than what the dead node persisted:
			// its shards restore from its segments.
			if ft.lastCkpt[d] < cut {
				cut = ft.lastCkpt[d]
			}
		}
		if !any {
			return nil
		}
		// Adopt spares into freed slots in index order: a replacement
		// inherits the dead node's ID and shard set, so slots we can
		// refill need no reassignment.
		for _, d := range dead {
			if len(ft.spares) == 0 {
				break
			}
			if !p.alive[d] {
				p.adopt(d, ft.spares[0])
				ft.spares = ft.spares[1:]
				t.gone[d] = false
				adoptedNow[d] = true
			}
		}
		live := 0
		for _, ok := range p.alive {
			if ok {
				live++
			}
		}
		if live == 0 {
			return errors.New("dverify: every worker dead and no spares left; run unrecoverable")
		}
		// Survivors can restore only what they persisted themselves.
		for i, ok := range p.alive {
			if ok && !adoptedNow[i] && ft.lastCkpt[i] < cut {
				cut = ft.lastCkpt[i]
			}
		}
		owners, moved := reassignOwners(ft.owners, p.alive)
		ft.owners = owners
		ft.era++
		t.rebase(cut)
		var deadSet []int
		for i, ok := range p.alive {
			if !ok {
				deadSet = append(deadSet, i)
			}
		}
		// Adoption Inits go first and must complete before any survivor
		// receives its Recover order: a survivor's post-rollback expansion
		// can route states to the replacement immediately, so the
		// replacement's inbox has to be registered before the first
		// survivor rolls back. A replacement dying (or reporting a stale
		// protocol) during its Init feeds the next lap before the
		// survivors ever saw this era.
		var adoptIdx, survIdx []int
		for i, ok := range p.alive {
			switch {
			case !ok:
			case adoptedNow[i]:
				adoptIdx = append(adoptIdx, i)
			default:
				survIdx = append(survIdx, i)
			}
		}
		if len(adoptIdx) > 0 {
			next := p.roundSubset(resps, adoptIdx, func(i int) *Request {
				j := ft.job
				j.NodeID = i
				j.Owners = owners
				j.Era = ft.era
				j.Cut = cut
				return &Request{Kind: KindInit, Job: &j}
			})
			for _, i := range adoptIdx {
				if r := resps[i]; r != nil && p.alive[i] {
					if r.Proto != protoVersion {
						next = append(next, i) // stale replacement build: treat as dead
						continue
					}
					ft.lastCkpt[i] = cut
					ft.lastSnap[i] = r
					adoptedNow[i] = false
				}
			}
			if len(next) > 0 {
				dead = next
				continue
			}
		}
		var recCtl Control
		t.controlInto(&recCtl)
		recCtl.Recover = &Recover{Era: ft.era, Owners: owners, Cut: cut, Dead: deadSet}
		next := p.roundSubset(resps, survIdx, func(int) *Request {
			return &Request{Kind: KindPoll, Ctl: &recCtl}
		})
		for _, i := range survIdx {
			if r := resps[i]; r != nil && p.alive[i] {
				ft.lastCkpt[i] = cut
				ft.lastSnap[i] = r
			}
		}
		next = append(next, ft.foldLinkDown(resps)...)
		ft.recoveries++
		obsRecoveries.Inc()
		obsShardsReassigned.Add(uint64(moved))
		ft.trace.AddFailover(ft.era, deadSet, cut, moved)
		dead = next
	}
	return nil
}

// verifyMesh drives the mesh topology: Init wires the worker↔worker
// links, then the coordinator runs the poll/epoch control plane until the
// tracker proves termination, and a Finish round collects final counters.
// trace (nil-safe) gains the per-level frontier sizes (from the workers'
// FreshByLevel snapshots), one NodeSpan per worker and the epoch count.
//
// With job.FT set, the poll loop runs fault-tolerantly: deaths detected
// by transport error, worker Err, timeout or peer LinkDown reports feed
// meshFT.recover, and the run completes with the exact verdict as long
// as at least one worker (or adopted spare) survives each takeover. The
// Init round stays fail-fast — fault tolerance covers the run, not its
// setup. plan (nil-safe) is the deterministic fault-injection harness;
// its kills fire against tracker milestones before poll rounds.
func verifyMesh(job Job, nodes []Transport, peers []string, trace *obs.Trace, plan *faultPlan) (verify.Result, error) {
	res := verify.Result{Schedulable: true, Bounded: job.MaxDisturbances > 0}
	job.Mesh = true
	job.Session = newSessionID()
	job.Peers = peers
	if job.FT {
		job.Owners = defaultOwners(job.NumNodes)
		if job.CheckpointDir != "" {
			// Coordinator-side sweep of the session's segments: covers runs
			// where no worker reached a clean Finish (shared-filesystem
			// clusters; on remote workers this is a no-op locally and the
			// daemons clean up on their next session).
			defer os.RemoveAll(ckptSessionDir(job.CheckpointDir, job.Session))
		}
	}
	poller := newMeshPoller(nodes)
	defer poller.close()
	resps := make([]*Response, len(nodes))
	if err := poller.roundFn(resps, func(i int) *Request {
		j := job
		j.NodeID = i
		return &Request{Kind: KindInit, Job: &j}
	}); err != nil {
		return res, err
	}
	for i, r := range resps {
		if r.Proto != protoVersion {
			return res, fmt.Errorf("dverify: node %d speaks protocol %d, coordinator %d (restart verifyd with the current build)",
				i, r.Proto, protoVersion)
		}
	}

	tr := newMeshTracker(len(nodes))
	var ft *meshFT
	if job.FT {
		var spares []Transport
		if plan != nil {
			spares = plan.spares
		}
		ft = newMeshFT(job, poller, tr, trace, spares)
	}
	var ctl Control
	finish := func() ([]*Response, error) {
		tr.controlInto(&ctl)
		ctl.Finish = true
		freq := &Request{Kind: KindPoll, Ctl: &ctl}
		if ft != nil {
			// The verdict is already determined (quiescence, or a settled
			// violation), so a death during the finish round cannot change
			// it: substitute the node's last snapshot — identical, by
			// quiescence, to the answer it would have given.
			for _, d := range poller.roundFT(resps, func(int) *Request { return freq }) {
				resps[d] = ft.lastSnap[d]
			}
			return resps, nil
		}
		if err := poller.round(resps, freq); err != nil {
			return nil, err
		}
		return resps, nil
	}
	req := &Request{Kind: KindPoll, Ctl: &ctl}
	epochs := 0
	for {
		if ft != nil {
			plan.fire(tr.final, ft.recoveries)
		} else {
			plan.fire(tr.final, 0)
		}
		tr.controlInto(&ctl)
		if ft != nil {
			dead := poller.roundFT(resps, func(int) *Request { return req })
			dead = append(dead, ft.foldLinkDown(resps)...)
			epochs++
			if len(dead) > 0 {
				if err := ft.recover(resps, dead); err != nil {
					return res, err
				}
				continue // tracker rebased; observe a fresh round first
			}
			ft.note(resps)
		} else {
			if err := poller.round(resps, req); err != nil {
				// The run is poisoned; surviving workers tear down when their
				// session ends (transport Close / next Init).
				return res, err
			}
			epochs++
		}
		tr.observe(resps)
		tr.advance()
		if tr.tooLarge && !tr.haveViol {
			// Report the partial exploration like the relay path does —
			// budget-busted admission checks still count their states and
			// wire volume.
			if final, ferr := finish(); ferr == nil {
				tr.observe(final)
			}
			res.States, res.Transitions = tr.fresh, tr.transitions
			res.Depth, res.Wire = tr.maxFresh, tr.wire
			if ft != nil {
				res.Wire.Add(ft.deadWire)
			}
			return res, verify.ErrTooLarge
		}
		if tr.terminated() || (tr.tooLarge && tr.haveViol) {
			// As in the relay path, a recorded violation is preferred over
			// ErrTooLarge when the budget trips: the verdict is sound, but
			// on the budget edge the violator may not be the level minimum
			// a larger budget would report.
			final, err := finish()
			if err != nil {
				return res, err
			}
			tr.observe(final)
			foldMeshTrace(trace, final, epochs+1)
			res.States = tr.fresh
			res.Transitions = tr.transitions
			res.Wire = tr.wire
			if ft != nil {
				res.Wire.Add(ft.deadWire)
			}
			if tr.haveViol {
				res.Schedulable = false
				res.Violator = tr.violApp
				res.Depth = tr.violLevel
			} else {
				res.Depth = tr.maxFresh
			}
			return res, nil
		}
	}
}
