package dverify

import (
	"sync"

	"tightcps/internal/verify"
)

// laneCrew is the persistent lane-goroutine pool behind a parallel worker's
// expansion fan-out. The old fan-out spawned len(lanes) goroutines per chunk
// with per-call atomics and closures — several heap allocations per chunk,
// hundreds of chunks per run, which is exactly the multi-lane allocation
// leak the bench gate pins (VerifyS1Loopback2x4 at ~12k allocs/op against
// ~80 for one lane). The crew spawns its goroutines once, parks them on
// per-lane wake channels, and hands tasks over through state the owner
// keeps on itself: a fan-out is wg.Add + n channel sends + wg.Wait, nothing
// else.
//
// Ownership: the orchestrator writes the task parameters and resets the
// shared atomics before waking anyone (the channel send publishes them);
// lanes read the task through the body closure and write only lane-private
// staging plus the designated shared atomics; wg.Wait publishes the lanes'
// staging back. Work is claimed from the embedded WorkQueue — each active
// lane owns a partition and steals from the busiest peer when it drains.
//
// stop() parks nothing: it closes the wake channels and the goroutines
// exit. Owners stop the crew at session teardown (mesh shutdown, relay
// handler reset) and ensure() respawns it lazily on the next parallel
// fan-out, so a standing worker pays one spawn set per session, not per
// chunk.
type laneCrew struct {
	body    func(lane int, ln *meshLane) // set once by the owner
	wake    []chan struct{}
	wg      sync.WaitGroup
	wq      verify.WorkQueue
	running bool
}

// ensure spawns the lane goroutines if they are not already parked on their
// wake channels. Orchestrator goroutine only.
func (c *laneCrew) ensure(lanes []*meshLane) {
	if c.running {
		return
	}
	if len(c.wake) != len(lanes) {
		c.wake = make([]chan struct{}, len(lanes))
	}
	for i := range lanes {
		ch := make(chan struct{}, 1)
		c.wake[i] = ch
		go func(lane int, ln *meshLane, ch chan struct{}) {
			for range ch {
				c.body(lane, ln)
				c.wg.Done()
			}
		}(i, lanes[i], ch)
	}
	c.running = true
}

// fan runs the current task on the first active lanes over items work units
// and blocks until all of them finish. Orchestrator goroutine only.
func (c *laneCrew) fan(active, items, chunk int) {
	c.wq.Reset(items, active, chunk)
	c.wg.Add(active)
	for i := 0; i < active; i++ {
		c.wake[i] <- struct{}{}
	}
	c.wg.Wait()
}

// stop terminates the lane goroutines. Idempotent; ensure() respawns.
func (c *laneCrew) stop() {
	if !c.running {
		return
	}
	for _, ch := range c.wake {
		close(ch)
	}
	c.running = false
}
