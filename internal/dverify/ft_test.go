package dverify

// Fault-matrix tests for the fault-tolerant distributed search: kill a
// worker at a deterministic level across {loopback, TCP} × {2, 4 nodes}
// × {mesh, relay}, and assert the run still finishes with a verdict,
// state count, depth and minimal violator bit-identical to the local
// parallel search — plus the double-fault, crash-during-checkpoint,
// spare-adoption, severed-link, death-timeout and degraded (no
// checkpoint directory) recovery paths.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tightcps/internal/obs"
	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// ftCase is one profile set of the fault matrix: loosePair explores a
// deep schedulable space (recovery mid-search, exhaustive counts must
// survive the rollback), overload2 violates near the root (recovery
// races the violation short-circuit).
var ftCases = []struct {
	name    string
	ps      func() []*switching.Profile
	atLevel int // fire the kill when the coordinator first knows this level
}{
	{"loosePair", func() []*switching.Profile {
		return []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	}, 2},
	{"overload2", func() []*switching.Profile {
		return []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}
	}, 0},
}

// ftConfig is the shared fault-tolerant run configuration.
func ftConfig(t *testing.T, topo verify.DistTopology, trace *obs.Trace) verify.Config {
	t.Helper()
	return verify.Config{
		NondetTies:     true,
		Workers:        2,
		DistTopology:   topo,
		FaultTolerance: true,
		CheckpointDir:  t.TempDir(),
		RunTrace:       trace,
	}
}

// runFT runs one fault-injected verification over a fresh loopback
// cluster and asserts the exact-equivalence acceptance criterion.
func runFT(t *testing.T, label string, ps []*switching.Profile, nodes int, topo verify.DistTopology, mkPlan func(ts []Transport) *faultPlan) *obs.Trace {
	t.Helper()
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 2})
	if err != nil {
		t.Fatalf("%s: local: %v", label, err)
	}
	trace := obs.NewTrace("")
	cfg := ftConfig(t, topo, trace)
	ts := Loopback(nodes)
	defer Close(ts)
	plan := mkPlan(ts)
	dist, err := verifyWithFaults(ps, cfg, ts[:nodes], plan)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	checkMatchesLocal(t, label, dist, local)
	fired := false
	for _, f := range plan.faults {
		fired = fired || f.fired
	}
	if fired && len(trace.Failovers) == 0 {
		t.Errorf("%s: fault fired but the trace recorded no failover", label)
	}
	return trace
}

// TestFTKillOneWorker is the core acceptance matrix on loopback
// clusters: for both topologies, 2- and 4-node clusters, first and last
// victim, on a deep schedulable space and a near-root violation, killing
// the victim at a deterministic level must leave the verdict, counts,
// depth and minimal violator bit-identical to the local search.
func TestFTKillOneWorker(t *testing.T) {
	recBefore := obsRecoveries.Value()
	for _, tc := range ftCases {
		for _, topo := range []verify.DistTopology{verify.TopologyMesh, verify.TopologyRelay} {
			for _, nodes := range []int{2, 4} {
				for _, victim := range []int{0, nodes - 1} {
					label := fmt.Sprintf("%s: %s nodes=%d victim=%d", tc.name, topo, nodes, victim)
					runFT(t, label, tc.ps(), nodes, topo, func(ts []Transport) *faultPlan {
						lt := ts[victim].(*loopTransport)
						return &faultPlan{faults: []fault{{atLevel: tc.atLevel, kill: lt.die}}}
					})
				}
			}
		}
	}
	if obsRecoveries.Value() == recBefore {
		t.Error("recovery counter did not move across the kill matrix")
	}
}

// TestFTKillEveryVictim sweeps every victim slot of a 4-node mesh — the
// "killing any one worker" acceptance clause, including interior nodes
// whose shard range has live neighbours on both sides.
func TestFTKillEveryVictim(t *testing.T) {
	ps := fleet(6, 5, 2, 4, 20)
	for victim := 0; victim < 4; victim++ {
		label := fmt.Sprintf("narrow6: mesh nodes=4 victim=%d", victim)
		runFT(t, label, ps, 4, verify.TopologyMesh, func(ts []Transport) *faultPlan {
			lt := ts[victim].(*loopTransport)
			return &faultPlan{faults: []fault{{atLevel: 3, kill: lt.die}}}
		})
	}
}

// TestFTSpareAdoption: a replacement worker waiting in the wings is
// adopted into the dead node's slot, so the recovered cluster is whole
// again — the failover records an empty residual dead set and zero
// reassigned shards (the spare inherits the victim's exact shard range).
func TestFTSpareAdoption(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	trace := runFT(t, "spare adoption", ps, 4, verify.TopologyMesh, func(ts []Transport) *faultPlan {
		lt := ts[2].(*loopTransport)
		return &faultPlan{
			faults: []fault{{atLevel: 2, kill: lt.die}},
			spares: []Transport{newSpareOf(ts)},
		}
	})
	if len(trace.Failovers) == 0 {
		t.Fatal("no failover recorded")
	}
	f := trace.Failovers[0]
	if len(f.Dead) != 0 {
		t.Errorf("adopted takeover should leave no residual dead set, got %v", f.Dead)
	}
	if f.Shards != 0 {
		t.Errorf("adopted takeover reassigns no shards, got %d", f.Shards)
	}
}

// newSpareOf mints an extra loopback transport in the same group as an
// existing cluster, so a replacement worker can join its session mesh.
func newSpareOf(ts []Transport) Transport {
	g := ts[0].(*loopTransport).group
	lt := &loopTransport{
		group: g,
		req:   make(chan *Request),
		resp:  make(chan *Response, 1),
		kill:  make(chan struct{}),
	}
	go lt.serve()
	return lt
}

// TestFTDoubleFault: a second worker dies while the takeover from the
// first death is still settling. The simultaneous variant loses two
// nodes in one round; the sequential variant arms the second kill to
// fire only after the first recovery completed.
func TestFTDoubleFault(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	t.Run("simultaneous", func(t *testing.T) {
		runFT(t, "double fault (same round)", ps, 4, verify.TopologyMesh, func(ts []Transport) *faultPlan {
			l1, l2 := ts[1].(*loopTransport), ts[2].(*loopTransport)
			return &faultPlan{faults: []fault{{atLevel: 2, kill: func() { l1.die(); l2.die() }}}}
		})
	})
	t.Run("sequential", func(t *testing.T) {
		trace := runFT(t, "double fault (mid-takeover)", ps, 4, verify.TopologyMesh, func(ts []Transport) *faultPlan {
			l1, l2 := ts[1].(*loopTransport), ts[2].(*loopTransport)
			return &faultPlan{faults: []fault{
				{atLevel: 2, kill: l1.die},
				{atLevel: 0, afterRecoveries: 1, kill: l2.die},
			}}
		})
		if len(trace.Failovers) < 2 {
			t.Errorf("want two failovers (one per death), got %d", len(trace.Failovers))
		}
	})
}

// TestFTCrashDuringCheckpoint: a worker whose checkpoint sweep fails
// mid-level (disk death) reports the error, is declared dead, and the
// survivors restore from its last *completed* level — the tmp+rename
// segment discipline means the partial sweep left nothing misleading.
func TestFTCrashDuringCheckpoint(t *testing.T) {
	ckptWriteHook = func(node, level, shard int) error {
		if node == 1 && level >= 2 {
			return errors.New("injected: disk gone mid-sweep")
		}
		return nil
	}
	defer func() { ckptWriteHook = nil }()
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	trace := runFT(t, "crash during checkpoint", ps, 4, verify.TopologyMesh, func(ts []Transport) *faultPlan {
		return &faultPlan{} // the hook is the fault; no transport kill
	})
	if len(trace.Failovers) == 0 {
		t.Fatal("checkpoint write failure did not surface as a failover")
	}
}

// TestFTDegradedNoCheckpointDir: fault tolerance without a checkpoint
// directory still finishes exactly — recovery degrades to a full
// restart of the search on the survivors (cut −1).
func TestFTDegradedNoCheckpointDir(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace("")
	cfg := verify.Config{
		NondetTies: true, Workers: 2, DistTopology: verify.TopologyMesh,
		FaultTolerance: true, RunTrace: trace,
	}
	ts := Loopback(2)
	defer Close(ts)
	lt := ts[1].(*loopTransport)
	plan := &faultPlan{faults: []fault{{atLevel: 2, kill: lt.die}}}
	dist, err := verifyWithFaults(ps, cfg, ts, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesLocal(t, "degraded (no checkpoint dir)", dist, local)
	if len(trace.Failovers) == 0 {
		t.Fatal("no failover recorded")
	}
	if got := trace.Failovers[0].Cut; got != -1 {
		t.Errorf("without checkpoints the cut must be -1 (full restart), got %d", got)
	}
}

// TestFTSeverLink: a severed worker↔worker link (sends fail, both ends
// alive) is reported by the sender and treated by the coordinator as
// the death of the far end — the run converges on the surviving
// component instead of hanging.
func TestFTSeverLink(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace("")
	cfg := ftConfig(t, verify.TopologyMesh, trace)
	ts := Loopback(2)
	defer Close(ts)
	var severed atomic.Bool
	loopGroupOf(t, ts).failSend = func(from, to int) error {
		if severed.Load() && from == 0 && to == 1 {
			return errors.New("injected: link severed")
		}
		return nil
	}
	plan := &faultPlan{faults: []fault{{atLevel: 2, kill: func() { severed.Store(true) }}}}
	dist, err := verifyWithFaults(ps, cfg, ts, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesLocal(t, "severed link", dist, local)
	if len(trace.Failovers) == 0 {
		t.Fatal("severed link did not surface as a failover")
	}
}

// TestFTDelayedDeliveryNoFalsePositive: delayed, reordered deliveries
// under fault tolerance must recover nothing — slow is not dead. The
// run completes exactly, with zero failovers.
func TestFTDelayedDeliveryNoFalsePositive(t *testing.T) {
	ps := fleet(6, 5, 2, 4, 20)
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 4} {
		trace := obs.NewTrace("")
		cfg := ftConfig(t, verify.TopologyMesh, trace)
		ts := Loopback(nodes)
		g := loopGroupOf(t, ts)
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(int64(nodes) * 1317))
		g.deliver = func(from, to int, b meshBatch, push func(meshBatch)) bool {
			mu.Lock()
			d := time.Duration(rng.Intn(3)) * time.Millisecond
			mu.Unlock()
			time.AfterFunc(d, func() { push(b) })
			return true
		}
		dist, err := Verify(ps, cfg, ts)
		Close(ts)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		checkMatchesLocal(t, fmt.Sprintf("delayed delivery nodes=%d", nodes), dist, local)
		if len(trace.Failovers) != 0 {
			t.Errorf("nodes=%d: delay alone must not trigger recovery, got %d failovers", nodes, len(trace.Failovers))
		}
	}
}

// TestFTTCPKill runs the kill matrix over real TCP daemons sharing one
// checkpoint directory: mesh on 2 and 4 nodes, relay on 2, with the
// victim's listener and every accepted connection severed mid-run — the
// in-process stand-in for SIGKILLing a verifyd.
func TestFTTCPKill(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	local, err := verify.Slot(ps, verify.Config{NondetTies: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	matrix := []struct {
		nodes  int
		victim int
		topo   verify.DistTopology
	}{
		{2, 1, verify.TopologyMesh},
		{4, 2, verify.TopologyMesh},
		{2, 1, verify.TopologyRelay},
	}
	for _, m := range matrix {
		label := fmt.Sprintf("tcp %s nodes=%d victim=%d", m.topo, m.nodes, m.victim)
		listeners := make([]*trackingListener, m.nodes)
		addrs := make([]string, m.nodes)
		for i := range listeners {
			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			l := &trackingListener{Listener: raw}
			listeners[i] = l
			addrs[i] = raw.Addr().String()
			go Serve(l, nil)
			t.Cleanup(func() { l.kill() })
		}
		ts, err := Dial(addrs, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		trace := obs.NewTrace("")
		cfg := ftConfig(t, m.topo, trace)
		victim := listeners[m.victim]
		plan := &faultPlan{faults: []fault{{atLevel: 2, kill: victim.kill}}}
		done := make(chan struct{})
		var dist verify.Result
		var verr error
		go func() {
			dist, verr = verifyWithFaults(ps, cfg, ts, plan)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("%s: recovery hung", label)
		}
		Close(ts)
		if verr != nil {
			t.Fatalf("%s: %v", label, verr)
		}
		checkMatchesLocal(t, label, dist, local)
		if plan.faults[0].fired && len(trace.Failovers) == 0 {
			t.Errorf("%s: kill fired but no failover recorded", label)
		}
	}
}

// hangTransport answers its first call normally, then blocks until
// released — a wedged worker, from the coordinator's point of view.
type hangTransport struct {
	calls   int
	release chan struct{}
}

func (h *hangTransport) Call(req *Request) (*Response, error) {
	h.calls++
	if h.calls >= 2 {
		<-h.release
	}
	return &Response{Proto: protoVersion}, nil
}

func (h *hangTransport) Close() error { return nil }

// okTransport answers every call immediately.
type okTransport struct{}

func (okTransport) Call(req *Request) (*Response, error) {
	return &Response{Proto: protoVersion}, nil
}

func (okTransport) Close() error { return nil }

// TestFTPollerDeathTimeout pins the liveness layer in isolation: a
// worker that stops answering is declared dead once meshDeathTimeout
// elapses, its eventual late answer is discarded by the sequence check,
// and the survivors' rounds continue unharmed.
func TestFTPollerDeathTimeout(t *testing.T) {
	saved := meshDeathTimeout
	meshDeathTimeout = 100 * time.Millisecond
	defer func() { meshDeathTimeout = saved }()

	hang := &hangTransport{release: make(chan struct{})}
	p := newMeshPoller([]Transport{okTransport{}, hang})
	defer p.close()
	resps := make([]*Response, 2)

	req := func(int) *Request { return &Request{Kind: KindPoll, Ctl: &Control{}} }
	if dead := p.roundFT(resps, req); len(dead) != 0 {
		t.Fatalf("healthy round declared deaths: %v", dead)
	}
	if dead := p.roundFT(resps, req); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("hung worker not declared dead: %v", dead)
	}
	p.evict(1)

	// Release the wedged call: its late answer must be discarded, not
	// misattributed to a later round.
	close(hang.release)
	for i := 0; i < 3; i++ {
		if dead := p.roundFT(resps, req); len(dead) != 0 {
			t.Fatalf("round %d after eviction declared deaths: %v", i, dead)
		}
		if resps[1] != nil {
			t.Fatal("evicted node produced a response")
		}
		if resps[0] == nil {
			t.Fatal("survivor's response went missing")
		}
	}
}
