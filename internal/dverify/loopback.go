package dverify

import (
	"errors"
	"fmt"
	"sync"

	"tightcps/internal/verify"
)

// Loopback returns transports to n in-process worker nodes, each served by
// its own goroutine over unbuffered channels. It is the test and
// single-machine form of the cluster: protocol, partitioning and the mesh
// exchange are exactly those of the TCP transport, with channel handoff in
// place of gob framing — mesh links push decoded state batches straight
// into the peer's inbox, so loopback clusters pay no codec cost. Close the
// transports (dverify.Close) to stop the worker goroutines.
func Loopback(n int) []Transport {
	g := &loopGroup{sessions: map[uint64]*loopSession{}}
	ts := make([]Transport, n)
	for i := range ts {
		lt := &loopTransport{
			group: g,
			req:   make(chan *Request),
			resp:  make(chan *Response, 1),
			kill:  make(chan struct{}),
		}
		go lt.serve()
		ts[i] = lt
	}
	return ts
}

// loopGroup is the in-process mesh rendezvous shared by one Loopback
// cluster: workers register their inboxes per session at Init and resolve
// peers through it. The hooks inject link faults and delivery interleavings
// for tests; they are copied into sessions created after they are set.
type loopGroup struct {
	mu       sync.Mutex
	sessions map[uint64]*loopSession

	// failSend, when non-nil, may veto a link send (simulating a broken
	// worker↔worker connection).
	failSend func(from, to int) error
	// deliver, when non-nil, intercepts a link delivery; it may delay or
	// reorder by calling push later (from any goroutine). Returning false
	// falls back to direct delivery.
	deliver func(from, to int, b meshBatch, push func(meshBatch)) bool
}

// loopSession is one run's worth of registered worker inboxes.
type loopSession struct {
	g        *loopGroup
	id       uint64
	inboxes  []*meshInbox
	refs     int
	failSend func(from, to int) error
	deliver  func(from, to int, b meshBatch, push func(meshBatch)) bool
}

// join registers a node's inbox in the session (creating it on first use).
func (g *loopGroup) join(job *Job, inbox *meshInbox) (*loopSession, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.sessions[job.Session]
	if s == nil {
		s = &loopSession{
			g:        g,
			id:       job.Session,
			inboxes:  make([]*meshInbox, job.NumNodes),
			failSend: g.failSend,
			deliver:  g.deliver,
		}
		g.sessions[job.Session] = s
	}
	if len(s.inboxes) != job.NumNodes {
		return nil, fmt.Errorf("dverify: session %#x sized for %d nodes, node %d expects %d",
			job.Session, len(s.inboxes), job.NodeID, job.NumNodes)
	}
	if s.inboxes[job.NodeID] != nil && job.Era == 0 {
		return nil, fmt.Errorf("dverify: node %d already registered in session %#x", job.NodeID, job.Session)
	}
	// Era > 0 is a takeover Init: a replacement worker adopts a dead
	// node's slot. The dead worker's registration (if its teardown has not
	// run yet) is displaced — leave is identity-checked, so the late
	// teardown cannot unregister the replacement.
	s.inboxes[job.NodeID] = inbox
	s.refs++
	return s, nil
}

// leave drops a node's registration, deleting the session with the last.
// The inbox identity check keeps a dead worker's late teardown from
// unregistering the replacement that displaced it.
func (s *loopSession) leave(id int, inbox *meshInbox) {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	if s.inboxes[id] == inbox {
		s.inboxes[id] = nil
	}
	if s.refs--; s.refs == 0 {
		delete(s.g.sessions, s.id)
	}
}

// peer resolves a destination inbox.
func (s *loopSession) peer(to int) *meshInbox {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	return s.inboxes[to]
}

// loopLink is one directed in-process mesh link: a push into the peer's
// inbox, no serialization. Reported bytes are the raw fixed-width volume
// (nothing is encoded, so nothing is saved beyond the sender filter).
type loopLink struct {
	sess     *loopSession
	from, to int
	words    int
}

func (l *loopLink) send(era, level int, states []verify.PackedState) (int, error) {
	if hook := l.sess.failSend; hook != nil {
		if err := hook(l.from, l.to); err != nil {
			return 0, err
		}
	}
	ib := l.sess.peer(l.to)
	if ib == nil {
		return 0, fmt.Errorf("peer node %d is not registered in this session", l.to)
	}
	b := meshBatch{from: l.from, level: level, era: era, states: states}
	bytes := 8 * l.words * len(states)
	if hook := l.sess.deliver; hook != nil && hook(l.from, l.to, b, ib.push) {
		return bytes, nil
	}
	ib.push(b)
	return bytes, nil
}

// wantFilter declines the sender filter: an in-process push ships no
// bytes, so suppressing duplicates costs more than the owner's dedup.
func (l *loopLink) wantFilter() bool { return false }

func (l *loopLink) close() error { return nil }

// loopEnv wires a loopback worker into its group's session registry.
type loopEnv struct{ g *loopGroup }

func (e loopEnv) connect(job *Job, inbox *meshInbox, exp *verify.Expander) ([]meshLink, func(), error) {
	sess, err := e.g.join(job, inbox)
	if err != nil {
		return nil, nil, err
	}
	// One backing array for all n−1 links: per-link allocations would give
	// every re-Init an n² term across the cluster.
	links := make([]meshLink, job.NumNodes)
	ls := make([]loopLink, job.NumNodes)
	for d := range links {
		if d != job.NodeID {
			ls[d] = loopLink{sess: sess, from: job.NodeID, to: d, words: exp.StateWords()}
			links[d] = &ls[d]
		}
	}
	id := job.NodeID
	return links, func() { sess.leave(id, inbox) }, nil
}

// loopTransport is one coordinator↔goroutine link. Call and Close must not
// race each other (the coordinator is strictly sequential per transport).
// kill is the fault-injection guillotine: closing it makes every Call
// fail immediately and stops the serve loop after its in-flight request —
// the in-process analogue of SIGKILLing a verifyd (the worker's teardown
// still runs, standing in for the OS reclaiming a dead process's
// sockets; its checkpoint segments stay on disk either way).
type loopTransport struct {
	group    *loopGroup
	req      chan *Request
	resp     chan *Response // buffered: an abandoned call must not wedge serve
	kill     chan struct{}
	killOnce sync.Once
	closed   bool
}

// serve is the worker goroutine: one handler per transport lifetime,
// serving requests until Close shuts the request channel or a fault
// kills the worker. Any live mesh worker is torn down on exit so its
// session registration never leaks.
func (lt *loopTransport) serve() {
	h := handler{env: loopEnv{lt.group}}
	defer h.reset()
	for {
		select {
		case req, ok := <-lt.req:
			if !ok {
				return
			}
			lt.resp <- h.handle(req)
		case <-lt.kill:
			return
		}
	}
}

func (lt *loopTransport) Call(req *Request) (*Response, error) {
	if lt.closed {
		return nil, errors.New("loopback transport is closed")
	}
	select {
	case lt.req <- req:
	case <-lt.kill:
		return nil, errors.New("loopback worker was killed")
	}
	select {
	case resp := <-lt.resp:
		return resp, nil
	case <-lt.kill:
		return nil, errors.New("loopback worker was killed")
	}
}

// die kills the worker goroutine (idempotent); used by the
// fault-injection harness.
func (lt *loopTransport) die() {
	lt.killOnce.Do(func() { close(lt.kill) })
}

func (lt *loopTransport) Close() error {
	if !lt.closed {
		lt.closed = true
		close(lt.req)
	}
	return nil
}
