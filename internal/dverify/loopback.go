package dverify

import "errors"

// Loopback returns transports to n in-process worker nodes, each served by
// its own goroutine over unbuffered channels. It is the test and
// single-machine form of the cluster: the protocol, partitioning and level
// barriers are exactly those of the TCP transport, with channel handoff in
// place of gob framing. Close the transports (dverify.Close) to stop the
// worker goroutines.
func Loopback(n int) []Transport {
	ts := make([]Transport, n)
	for i := range ts {
		lt := &loopTransport{
			req:  make(chan *Request),
			resp: make(chan *Response),
		}
		go lt.serve()
		ts[i] = lt
	}
	return ts
}

// loopTransport is one coordinator↔goroutine link. Call and Close must not
// race each other (the coordinator is strictly sequential per transport).
type loopTransport struct {
	req    chan *Request
	resp   chan *Response
	closed bool
}

// serve is the worker goroutine: one handler per transport lifetime,
// serving requests until Close shuts the request channel.
func (lt *loopTransport) serve() {
	var h handler
	for req := range lt.req {
		lt.resp <- h.handle(req)
	}
}

func (lt *loopTransport) Call(req *Request) (*Response, error) {
	if lt.closed {
		return nil, errors.New("loopback transport is closed")
	}
	lt.req <- req
	return <-lt.resp, nil
}

func (lt *loopTransport) Close() error {
	if !lt.closed {
		lt.closed = true
		close(lt.req)
	}
	return nil
}
