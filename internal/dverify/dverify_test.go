package dverify

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"tightcps/internal/switching"
	"tightcps/internal/verify"
)

// prof mirrors the synthetic profile helper of the verify tests: constant
// dwell tables, the knobs that matter being T*w, Tdw−/Tdw+ and r.
func prof(name string, twStar, dm, dp, r int) *switching.Profile {
	n := twStar + 1
	minT := make([]int, n)
	plusT := make([]int, n)
	for i := range minT {
		minT[i] = dm
		plusT[i] = dp
	}
	return &switching.Profile{Name: name, TwStar: twStar, TdwMinus: minT, TdwPlus: plusT,
		R: r, Granularity: 1, JStar: twStar + dp, JAtMin: make([]int, n), JBest: make([]int, n)}
}

func fleet(n, twStar, dm, dp, r int) []*switching.Profile {
	out := make([]*switching.Profile, n)
	for i := range out {
		out[i] = prof(fmt.Sprintf("F%d", i), twStar, dm, dp, r)
	}
	return out
}

// verifyOver runs the distributed search over a fresh loopback cluster.
func verifyOver(t *testing.T, nodes int, ps []*switching.Profile, cfg verify.Config) (verify.Result, error) {
	t.Helper()
	ts := Loopback(nodes)
	defer Close(ts)
	return Verify(ps, cfg, ts)
}

// equivalenceCases is the distributed-vs-local matrix shared by the
// topology tests: schedulable and violating sets on both encodings, at
// the n = 6/7/12 boundaries, with and without the symmetry quotient.
var equivalenceCases = []struct {
	name string
	ps   func() []*switching.Profile
	sym  bool
	md   int // MaxDisturbances (0 = exact)
}{
	{"single", func() []*switching.Profile { return []*switching.Profile{prof("A", 5, 2, 4, 20)} }, false, 0},
	{"overload2", func() []*switching.Profile {
		return []*switching.Profile{prof("A", 0, 3, 5, 20), prof("B", 0, 3, 5, 20)}
	}, false, 0},
	{"loosePair", func() []*switching.Profile {
		return []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	}, false, 0},
	{"asymTriple", func() []*switching.Profile {
		return []*switching.Profile{prof("A", 2, 2, 3, 15), prof("B", 6, 2, 4, 25), prof("C", 9, 3, 5, 30)}
	}, false, 0},
	{"narrow6", func() []*switching.Profile { return fleet(6, 5, 2, 4, 20) }, false, 0},
	// Wide-encoding cases. The unquotiented schedulable 7-app spaces run
	// to millions of states, so the exhaustive-count checks ride the
	// symmetry quotient (canonicalisation happens inside the shared
	// expansion core, identically on every node) and the bounded mode
	// (6 apps × 11-bit lanes no longer fit one word).
	{"het7sym", func() []*switching.Profile { return append(fleet(6, 7, 1, 2, 8), prof("X", 4, 2, 3, 12)) }, true, 0},
	{"fleet7sym", func() []*switching.Profile { return fleet(7, 6, 1, 2, 10) }, true, 0},
	{"fleet9sym", func() []*switching.Profile { return fleet(9, 8, 1, 2, 9) }, true, 0},
	{"wideBounded6", func() []*switching.Profile { return fleet(6, 5, 2, 4, 20) }, false, 2},
	{"overload7", func() []*switching.Profile { return fleet(7, 2, 1, 2, 5) }, false, 0},
	{"overload12", func() []*switching.Profile { return fleet(12, 1, 1, 2, 6) }, false, 0},
}

// checkMatchesLocal asserts one distributed result against the local
// parallel search: bit-identical verdict; on exhaustively-searched
// (schedulable) sets identical state/transition/depth counts; on
// violations the same minimal violator (minimum violating packed state of
// the first violating level) and the same first-violating-level depth.
func checkMatchesLocal(t *testing.T, label string, dist, local verify.Result) {
	t.Helper()
	if dist.Schedulable != local.Schedulable {
		t.Errorf("%s: schedulable=%v, local=%v", label, dist.Schedulable, local.Schedulable)
	}
	if local.Schedulable {
		if dist.States != local.States || dist.Transitions != local.Transitions || dist.Depth != local.Depth {
			t.Errorf("%s: counts (%d,%d,%d), local (%d,%d,%d)", label,
				dist.States, dist.Transitions, dist.Depth, local.States, local.Transitions, local.Depth)
		}
	} else {
		if dist.Violator != local.Violator {
			t.Errorf("%s: violator=%d, local parallel=%d", label, dist.Violator, local.Violator)
		}
		if dist.Depth != local.Depth {
			t.Errorf("%s: violation depth=%d, local=%d", label, dist.Depth, local.Depth)
		}
	}
	if dist.Bounded != local.Bounded {
		t.Errorf("%s: bounded=%v, local=%v", label, dist.Bounded, local.Bounded)
	}
}

// TestLoopbackMatchesLocal is the distributed-vs-local equivalence matrix
// of the issue, run on both exchange topologies: 1/2/4 loopback nodes
// must reproduce the local results bit-identically over the pipelined
// mesh and over the level-synchronous relay.
func TestLoopbackMatchesLocal(t *testing.T) {
	for _, tc := range equivalenceCases {
		ps := tc.ps()
		cfg := verify.Config{NondetTies: true, SymmetryReduction: tc.sym, MaxDisturbances: tc.md, Workers: 4}
		local, err := verify.Slot(ps, cfg)
		if err != nil {
			t.Fatalf("%s: local: %v", tc.name, err)
		}
		for _, topo := range []verify.DistTopology{verify.TopologyMesh, verify.TopologyRelay} {
			cfg := cfg
			cfg.DistTopology = topo
			for _, nodes := range []int{1, 2, 4} {
				dist, err := verifyOver(t, nodes, ps, cfg)
				if err != nil {
					t.Fatalf("%s: %s nodes=%d: %v", tc.name, topo, nodes, err)
				}
				checkMatchesLocal(t, fmt.Sprintf("%s: %s nodes=%d", tc.name, topo, nodes), dist, local)
			}
		}
	}
}

// TestBoundedModeMatches covers the accelerated (bounded-disturbance)
// model through the distributed path.
func TestBoundedModeMatches(t *testing.T) {
	ps := []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}
	cfg := verify.Config{NondetTies: true, MaxDisturbances: verify.BoundFor(ps), Workers: 2}
	local, err := verify.Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := verifyOver(t, 3, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Bounded || dist.Schedulable != local.Schedulable || dist.States != local.States {
		t.Fatalf("bounded distributed %+v, local %+v", dist, local)
	}
}

// TestPerNodeBudgetScalesCapacity pins the distribution lever: under the
// same MaxStates, the single-node run must reject with ErrTooLarge while a
// 4-node cluster — whose budget is per node — completes the search and
// reproduces the unbounded counts.
func TestPerNodeBudgetScalesCapacity(t *testing.T) {
	ps := fleet(4, 6, 1, 2, 10)
	cfg := verify.Config{NondetTies: true, Workers: 2}
	full, err := verify.Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Schedulable {
		t.Fatalf("expected a schedulable set, got %+v", full)
	}
	cfg.MaxStates = full.States * 2 / 3
	if _, err := verify.Slot(ps, cfg); !errors.Is(err, verify.ErrTooLarge) {
		t.Fatalf("local run under budget %d: want ErrTooLarge, got %v", cfg.MaxStates, err)
	}
	busted, err := verifyOver(t, 1, ps, cfg)
	if !errors.Is(err, verify.ErrTooLarge) {
		t.Fatalf("1-node run under budget %d: want ErrTooLarge, got %v", cfg.MaxStates, err)
	}
	if busted.States == 0 {
		t.Fatalf("budget-busted run reported no partial exploration (want States > 0 like the local search)")
	}
	dist, err := verifyOver(t, 4, ps, cfg)
	if err != nil {
		t.Fatalf("4-node run under per-node budget %d: %v", cfg.MaxStates, err)
	}
	if !dist.Schedulable || dist.States != full.States {
		t.Fatalf("4-node run %+v, unbounded local %+v", dist, full)
	}
}

// startWorker serves one verifyd-equivalent worker on an ephemeral
// loopback port, returning its address.
func startWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, nil)
	return l.Addr().String()
}

// TestTCPEndToEnd drives the gob transport against two in-process workers,
// reusing the connections for a second job to cover the Init reset.
func TestTCPEndToEnd(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t)}
	ts, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(ts)

	cfg := verify.Config{NondetTies: true}
	for _, tc := range []struct {
		name string
		ps   []*switching.Profile
	}{
		{"schedulable", []*switching.Profile{prof("A", 8, 2, 4, 40), prof("B", 8, 2, 4, 40)}},
		{"violating", fleet(7, 2, 1, 2, 5)},
	} {
		local, err := verify.Slot(tc.ps, cfg)
		if err != nil {
			t.Fatalf("%s: local: %v", tc.name, err)
		}
		dist, err := Verify(tc.ps, cfg, ts)
		if err != nil {
			t.Fatalf("%s: tcp: %v", tc.name, err)
		}
		if dist.Schedulable != local.Schedulable {
			t.Errorf("%s: tcp schedulable=%v, local=%v", tc.name, dist.Schedulable, local.Schedulable)
		}
		if local.Schedulable && dist.States != local.States {
			t.Errorf("%s: tcp states=%d, local=%d", tc.name, dist.States, local.States)
		}
	}
}

// flakyTransport fails every Call after the first failAfter ones,
// simulating a worker crash mid-protocol.
type flakyTransport struct {
	inner     Transport
	calls     int
	failAfter int
}

func (f *flakyTransport) Call(req *Request) (*Response, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, errors.New("simulated worker crash")
	}
	return f.inner.Call(req)
}

func (f *flakyTransport) Close() error { return f.inner.Close() }

// TestWorkerFailureMidLevelErrorsCleanly injects a worker failure after
// init (i.e. during the level exchange) and requires a clean error — not a
// hang — naming the failed node.
func TestWorkerFailureMidLevelErrorsCleanly(t *testing.T) {
	ts := Loopback(2)
	defer Close(ts)
	ts[1] = &flakyTransport{inner: ts[1], failAfter: 1} // init succeeds, first step fails

	done := make(chan error, 1)
	go func() {
		_, err := Verify(fleet(3, 6, 1, 2, 10), verify.Config{NondetTies: true}, ts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "node 1") {
			t.Fatalf("want an error naming node 1, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after worker failure")
	}
}

// TestWorkerDisconnectTCP kills a TCP worker's connection mid-run: the
// coordinator must surface the transport error instead of blocking on the
// level barrier.
func TestWorkerDisconnectTCP(t *testing.T) {
	// A "worker" that serves exactly one request, then drops the link.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1)
		conn.Read(buf)
		conn.Close()
	}()

	addrs := []string{startWorker(t), l.Addr().String()}
	ts, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(ts)

	done := make(chan error, 1)
	go func() {
		_, err := Verify(fleet(3, 6, 1, 2, 10), verify.Config{NondetTies: true}, ts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "node 1") {
			t.Fatalf("want an error naming node 1, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after TCP worker disconnect")
	}
}

// errTransport answers every call with a worker-side error response.
type errTransport struct{ msg string }

func (e *errTransport) Call(*Request) (*Response, error) { return &Response{Err: e.msg}, nil }
func (e *errTransport) Close() error                     { return nil }

// TestWorkerErrResponse propagates worker-side Err responses as
// coordinator errors.
func TestWorkerErrResponse(t *testing.T) {
	ts := []Transport{&errTransport{msg: "boom"}}
	if _, err := Verify(fleet(2, 6, 1, 2, 10), verify.Config{}, ts); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want the worker error surfaced, got %v", err)
	}
}

// TestConfigValidation rejects tracing and bad cluster sizes up front.
func TestConfigValidation(t *testing.T) {
	ps := fleet(2, 6, 1, 2, 10)
	if _, err := Verify(ps, verify.Config{Trace: true}, Loopback(1)); err == nil {
		t.Error("Trace accepted")
	}
	if _, err := Verify(ps, verify.Config{}, nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := Verify(append(fleet(12, 1, 1, 2, 6), prof("X", 1, 1, 2, 6)), verify.Config{}, Loopback(1)); !errors.Is(err, verify.ErrEncoding) {
		t.Errorf("13-app set: want ErrEncoding, got %v", err)
	}
}

// TestRunnerHooksIntoVerifySlot exercises the verify.Config.Distributed
// seam end to end: verify.Slot with the hook set must return the
// distributed result.
func TestRunnerHooksIntoVerifySlot(t *testing.T) {
	ts := Loopback(2)
	defer Close(ts)
	ps := append(fleet(6, 7, 1, 2, 8), prof("X", 4, 2, 3, 12))
	cfg := verify.Config{NondetTies: true, SymmetryReduction: true, Workers: 2}
	local, err := verify.Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Distributed = Runner(ts)
	dist, err := verify.Slot(ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Schedulable != local.Schedulable || dist.States != local.States {
		t.Fatalf("hooked %+v, local %+v", dist, local)
	}
}
