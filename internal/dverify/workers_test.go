package dverify

import (
	"fmt"
	"testing"

	"tightcps/internal/verify"
)

// TestWorkerPoolMatrixMatchesLocal is the concurrent-absorb matrix of the
// multi-core mesh work: 2- and 4-node clusters on both exchange
// topologies, with per-node expansion pools of 1 and 4 lanes, must
// reproduce the local search bit-identically — verdict, exhaustive
// counts, depth and minimal violator — on both encodings, with and
// without the symmetry quotient. Exhaustive counts and depth coincide
// with the sequential search; the violator follows the parallel
// searches' minimum-violating-state tie-break (the sequential search
// short-circuits at the first violator in expansion order instead), so
// the ground truth is the local parallel search, as in the main matrix.
// Run under -race this drives the striped visited set, the chunk atomics
// and the lane merge from genuinely concurrent goroutines on every node.
func TestWorkerPoolMatrixMatchesLocal(t *testing.T) {
	sel := map[string]bool{
		"overload2":    true, // narrow, violating at level 1
		"narrow6":      true, // narrow, schedulable, largest one-word fleet
		"het7sym":      true, // wide, schedulable, symmetry quotient
		"wideBounded6": true, // wide via bounded-disturbance lanes
		"overload12":   true, // wide, violating, deepest fan-out
	}
	for _, tc := range equivalenceCases {
		if !sel[tc.name] {
			continue
		}
		ps := tc.ps()
		local, err := verify.Slot(ps, verify.Config{
			NondetTies: true, SymmetryReduction: tc.sym, MaxDisturbances: tc.md, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s: local: %v", tc.name, err)
		}
		seq, err := verify.Slot(ps, verify.Config{
			NondetTies: true, SymmetryReduction: tc.sym, MaxDisturbances: tc.md, Workers: 1,
		})
		if err != nil {
			t.Fatalf("%s: local sequential: %v", tc.name, err)
		}
		if local.Schedulable && (seq.States != local.States || seq.Transitions != local.Transitions || seq.Depth != local.Depth) {
			t.Fatalf("%s: local parallel (%d,%d,%d) disagrees with sequential (%d,%d,%d)", tc.name,
				local.States, local.Transitions, local.Depth, seq.States, seq.Transitions, seq.Depth)
		}
		for _, topo := range []verify.DistTopology{verify.TopologyMesh, verify.TopologyRelay} {
			for _, nodes := range []int{2, 4} {
				// workers = 0 is the autotuned GOMAXPROCS pool: per-node lane
				// counts may move between levels, the verdict must not.
				for _, workers := range []int{0, 1, 4} {
					cfg := verify.Config{
						NondetTies: true, SymmetryReduction: tc.sym, MaxDisturbances: tc.md,
						Workers: workers, DistTopology: topo,
					}
					dist, err := verifyOver(t, nodes, ps, cfg)
					if err != nil {
						t.Fatalf("%s: %s nodes=%d workers=%d: %v", tc.name, topo, nodes, workers, err)
					}
					checkMatchesLocal(t, fmt.Sprintf("%s: %s nodes=%d workers=%d", tc.name, topo, nodes, workers), dist, local)
				}
			}
		}
	}
}
